// Data-mining scenario (the paper's kNN benchmark): build a kd-tree over a
// projected high-dimensional dataset and find every point's k nearest
// neighbors -- a *guided* traversal with two call sets, so lockstep needs
// the section-4.3 equivalence annotation and the warp majority vote.
//
// The example contrasts the guided non-lockstep run with the voted
// lockstep run and shows that both return the same neighbors.
//
// Usage: ./examples/knn_search [--points=N] [--k=K] [--no-sorted]
#include <cmath>
#include <cstdio>

#include "bench_algos/knn/knn.h"
#include "core/cpu_executors.h"
#include "core/gpu_executors.h"
#include "core/schedule.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace tt;
  Cli cli("knn_search: guided k-nearest-neighbor with call-set voting");
  cli.add_int("points", 8192, "dataset size");
  cli.add_int("k", 8, "neighbors per query");
  cli.add_flag("sorted", true, "spatially sort the queries first");
  if (!cli.parse(argc, argv)) return 0;

  // Mnist-like manifold data, projected 784-d -> 7-d.
  const auto n = static_cast<std::size_t>(cli.get_int("points"));
  PointSet pts = gen_mnist_like(n, 7, 77);
  pts.permute(cli.get_flag("sorted") ? tree_order(pts, 8)
                                     : shuffled_order(n, 77));
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  KnnKernel kernel(tree, pts, static_cast<int>(cli.get_int("k")), space);

  // Static analysis: guided, two call sets; lockstep becomes legal only
  // because KnnKernel carries the kCallSetsEquivalent annotation.
  ir::AnalysisReport report = ir::analyze(knn_ir());
  std::printf("knn: %zu call sets -> %s; lockstep legal via annotation: %s\n",
              report.call_sets.size(),
              report.cls == ir::TraversalClass::kGuided ? "guided" : "unguided",
              KnnKernel::kCallSetsEquivalent ? "yes" : "no");

  DeviceConfig cfg;
  auto gn = run_gpu_sim(kernel, space, cfg,
                        GpuMode::from(Variant::kAutoNolockstep));
  auto gl = run_gpu_sim(kernel, space, cfg,
                        GpuMode::from(Variant::kAutoLockstep));
  std::printf("non-lockstep: %.3f ms, %.0f nodes/point\n", gn.time.total_ms,
              gn.avg_nodes());
  std::printf("lockstep+vote: %.3f ms, %.0f nodes/warp, %llu votes\n",
              gl.time.total_ms, gl.avg_nodes(),
              static_cast<unsigned long long>(gl.stats.votes));

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < n; ++i) {
    float a = gn.results[i].kth_d2, b = gl.results[i].kth_d2;
    if (std::abs(a - b) > 1e-4f * std::max(1.f, std::max(a, b))) ++mismatches;
  }
  std::printf("result mismatches between variants: %zu\n", mismatches);

  // A couple of example answers.
  for (std::size_t i = 0; i < 3 && i < n; ++i)
    std::printf("query %zu: kth-neighbor distance %.4f\n", i,
                std::sqrt(gn.results[i].kth_d2));
  return mismatches == 0 ? 0 : 1;
}
