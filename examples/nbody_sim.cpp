// N-body simulation (the paper's Barnes-Hut scenario): integrate a Plummer
// cluster for several timesteps. Each step rebuilds the octree, computes
// forces with the lockstep autoropes GPU kernel (BH is unguided, so
// lockstep is always legal) and advances the bodies with leapfrog.
//
// Usage: ./examples/nbody_sim [--bodies=N] [--steps=N] [--theta=X]
#include <cmath>
#include <cstdio>

#include "bench_algos/bh/barnes_hut.h"
#include "core/cpu_executors.h"
#include "core/gpu_executors.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/octree.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace tt;
  Cli cli("nbody_sim: Barnes-Hut n-body simulation on the simulated GPU");
  cli.add_int("bodies", 8192, "number of bodies");
  cli.add_int("steps", 5, "timesteps (the paper runs 5)");
  cli.add_double("theta", 0.5, "opening angle");
  cli.add_double("dt", 0.0125, "timestep length");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::size_t>(cli.get_int("bodies"));
  BodySet bodies = gen_plummer(n, 2024);
  // Sort bodies spatially once up front so warps get similar traversals.
  {
    auto perm = morton_order(bodies.pos);
    bodies.pos.permute(perm);
    std::vector<float> m(n), v(3 * n);
    for (std::size_t j = 0; j < n; ++j) {
      m[j] = bodies.mass[perm[j]];
      for (int d = 0; d < 3; ++d)
        v[d * n + j] = bodies.vel[d * n + perm[j]];
    }
    bodies.mass = std::move(m);
    bodies.vel = std::move(v);
  }

  const auto theta = static_cast<float>(cli.get_double("theta"));
  const auto dt = static_cast<float>(cli.get_double("dt"));
  double total_gpu_ms = 0;

  for (int step = 0; step < cli.get_int("steps"); ++step) {
    Octree tree = build_octree(bodies.pos, bodies.mass);
    GpuAddressSpace space;
    BarnesHutKernel kernel(tree, bodies.pos, theta, 1e-4f, space);
    auto gpu = run_gpu_sim(kernel, space, DeviceConfig{},
                           GpuMode::from(Variant::kAutoLockstep));
    total_gpu_ms += gpu.time.total_ms;
    bh_integrate(bodies.pos, bodies.vel, gpu.results, dt);

    // Diagnostics: cluster's RMS radius (should evolve smoothly, not blow
    // up) and the traversal stats for this step.
    double r2_sum = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (int d = 0; d < 3; ++d)
        r2_sum += static_cast<double>(bodies.pos.at(i, d)) *
                  bodies.pos.at(i, d);
    std::printf(
        "step %d: rms radius %.3f | tree %lld nodes, depth %d | "
        "gpu %.3f ms, %.0f nodes/warp, %.1f%% lanes active\n",
        step, std::sqrt(r2_sum / n),
        static_cast<long long>(tree.topo.n_nodes), tree.topo.max_depth(),
        gpu.time.total_ms, gpu.avg_nodes(),
        100.0 * static_cast<double>(gpu.stats.active_lane_sum) /
            (static_cast<double>(gpu.stats.warp_steps) * 32.0));
  }
  std::printf("total modelled traversal time over %lld steps: %.3f ms\n",
              static_cast<long long>(cli.get_int("steps")), total_gpu_ms);
  return 0;
}
