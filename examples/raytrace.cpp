// Ray tracer (the graphics workload from the paper's introduction): render
// a procedural triangle scene through the BVH traversal kernel and write a
// PPM image. Primary camera rays are coherent, so the lockstep (packet)
// variant is the natural choice; the example reports the work-expansion
// numbers that justify it.
//
// Usage: ./examples/raytrace [--width=W] [--height=H] [--tris=N]
//                            [--out=render.ppm]
#include <cmath>
#include <cstdio>
#include <fstream>

#include "bench_algos/ray/ray_bvh.h"
#include "core/cpu_executors.h"
#include "core/gpu_executors.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace tt;
  Cli cli("raytrace: render a BVH scene with the lockstep traversal kernel");
  cli.add_int("width", 160, "image width");
  cli.add_int("height", 120, "image height");
  cli.add_int("tris", 4000, "triangles in the procedural scene");
  cli.add_string("out", "render.ppm", "output PPM path");
  if (!cli.parse(argc, argv)) return 0;

  const int w = static_cast<int>(cli.get_int("width"));
  const int h = static_cast<int>(cli.get_int("height"));
  TriangleMesh mesh =
      gen_triangle_scene(static_cast<std::size_t>(cli.get_int("tris")), 7);
  Bvh bvh = build_bvh(mesh, 4);
  std::printf("scene: %zu triangles, BVH %lld nodes (depth %d)\n",
              mesh.tris.size(), static_cast<long long>(bvh.topo.n_nodes),
              bvh.topo.max_depth());

  auto rays = gen_camera_rays(w, h, {0.5f, 0.5f, -1.6f}, {0.5f, 0.5f, 0.5f});
  GpuAddressSpace space;
  RayBvhKernel kernel(bvh, mesh, rays, space);

  // Simulated-GPU pass for the performance story...
  DeviceConfig cfg;
  auto gl = run_gpu_sim(kernel, space, cfg,
                        GpuMode::from(Variant::kAutoLockstep));
  auto gn = run_gpu_sim(kernel, space, cfg,
                        GpuMode::from(Variant::kAutoNolockstep));
  std::printf("lockstep:     %.3f ms modelled (%llu DRAM txns)\n",
              gl.time.total_ms,
              static_cast<unsigned long long>(gl.stats.dram_transactions));
  std::printf("non-lockstep: %.3f ms modelled (%llu DRAM txns)\n",
              gn.time.total_ms,
              static_cast<unsigned long long>(gn.stats.dram_transactions));

  // ...and the actual image from the CPU run (identical results).
  auto cpu = run_cpu(kernel, CpuVariant::kAutoropes, 2);
  std::ofstream ppm(cli.get_string("out"), std::ios::binary);
  ppm << "P6\n" << w << " " << h << "\n255\n";
  std::size_t hits = 0;
  for (int y = h - 1; y >= 0; --y) {
    for (int x = 0; x < w; ++x) {
      const RayHit& hit = cpu.results[static_cast<std::size_t>(y) * w + x];
      unsigned char rgb[3] = {8, 10, 24};  // background
      if (hit.tri >= 0) {
        ++hits;
        const Triangle& t = mesh.tris[static_cast<std::size_t>(hit.tri)];
        Vec3 n = cross(t.v1 - t.v0, t.v2 - t.v0);
        float len = std::sqrt(dot(n, n));
        float shade =
            len > 0 ? std::fabs(n.z) / len : 0.f;  // headlight shading
        float depth = 1.0f / (1.0f + hit.t);
        rgb[0] = static_cast<unsigned char>(40 + 180 * shade * depth);
        rgb[1] = static_cast<unsigned char>(40 + 140 * shade * depth);
        rgb[2] = static_cast<unsigned char>(60 + 100 * depth);
      }
      ppm.write(reinterpret_cast<const char*>(rgb), 3);
    }
  }
  std::printf("rendered %dx%d (%zu/%zu rays hit) -> %s\n", w, h, hits,
              rays.size(), cli.get_string("out").c_str());
  return 0;
}
