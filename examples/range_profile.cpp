// Density profiling with point correlation (the paper's data-mining
// scenario): sweep the correlation radius over a clustered 2-d "city"
// dataset and report how the neighbor counts -- and the traversal cost --
// grow with the radius. Demonstrates the radius/truncation trade-off the
// paper discusses in section 6.3 (smaller radius => earlier truncation =>
// better lockstep load balance).
//
// Usage: ./examples/range_profile [--points=N] [--trace]
//
// Also demonstrates the observability layer: --trace runs the smallest
// radius with a TraceSink attached and prints the first warp's event
// stream plus a metrics-registry digest.
#include <cstdio>

#include "bench_algos/pc/point_correlation.h"
#include "core/cpu_executors.h"
#include "core/gpu_executors.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spatial/kdtree.h"
#include "util/cli.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace tt;
  Cli cli("range_profile: correlation-radius sweep over clustered 2-d data");
  cli.add_int("points", 8192, "dataset size");
  cli.add_flag("trace", false,
               "print warp 0's trace events and a metrics digest for the "
               "smallest radius");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::size_t>(cli.get_int("points"));
  PointSet pts = gen_geocity_like(n, 11);
  pts.permute(morton_order(pts));
  KdTree tree = build_kdtree(pts, 8);
  float base = pc_pick_radius(pts, 8, 11);

  std::printf("%10s %14s %14s %12s %14s\n", "radius", "mean neighbors",
              "max neighbors", "gpu ms (L)", "nodes/warp");
  bool first = true;
  for (float scale : {0.5f, 1.0f, 2.0f, 4.0f, 8.0f}) {
    float r = base * scale;
    GpuAddressSpace space;
    PointCorrelationKernel kernel(tree, pts, r, space);
    obs::TraceSink sink(256);
    obs::TraceSink* trace =
        first && cli.get_flag("trace") ? &sink : nullptr;
    auto gpu = run_gpu_sim(kernel, space, DeviceConfig{},
                           GpuMode::from(Variant::kAutoLockstep), trace);
    RunningStats stats;
    std::uint32_t max_c = 0;
    for (auto c : gpu.results) {
      stats.add(c);
      max_c = std::max(max_c, c);
    }
    std::printf("%10.4f %14.1f %14u %12.3f %14.0f\n", r, stats.mean(), max_c,
                gpu.time.total_ms, gpu.avg_nodes());
    if (trace) {
      std::printf("\nwarp 0 trace (first 20 of %zu events, %llu dropped):\n",
                  trace->events_for(0).size(),
                  static_cast<unsigned long long>(trace->dropped_for(0)));
      std::size_t shown = 0;
      for (const obs::TraceEvent& e : trace->events_for(0)) {
        if (shown++ == 20) break;
        std::printf("  seq=%-5u %-8s node=%-6u mask=%08x depth=%u\n", e.seq,
                    obs::trace_event_name(e.kind), e.node, e.mask, e.depth);
      }
      obs::MetricsRegistry reg;
      obs::register_kernel_stats(reg, gpu.stats, "gpu/auto_lockstep/");
      std::printf("metrics: %zu entries, lane_visits=%llu warp_pops=%llu\n\n",
                  reg.size(),
                  static_cast<unsigned long long>(
                      reg.counter("gpu/auto_lockstep/lane_visits")),
                  static_cast<unsigned long long>(
                      reg.counter("gpu/auto_lockstep/warp_pops")));
    }
    first = false;
  }
  return 0;
}
