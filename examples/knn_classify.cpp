// k-nearest-neighbor classification -- the data-mining application behind
// the paper's kNN benchmark, taken all the way to an end result: classify
// every point of an mnist-like dataset by the majority label of its k
// nearest neighbors (leave-one-out) and report the accuracy.
//
// The traversal runs on the simulated GPU (guided + voted lockstep); the
// classification itself is a trivial CPU epilogue over the returned
// neighbor ids -- exactly the prologue/epilogue split of section 5.2.
//
// Usage: ./examples/knn_classify [--points=N] [--k=K]
#include <array>
#include <cstdio>

#include "bench_algos/knn/knn.h"
#include "core/gpu_executors.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace tt;
  Cli cli("knn_classify: leave-one-out kNN classification of mnist-like data");
  cli.add_int("points", 8192, "dataset size");
  cli.add_int("k", 8, "neighbors per query");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::size_t>(cli.get_int("points"));
  const int k_neighbors = static_cast<int>(cli.get_int("k"));
  LabeledPoints data = gen_mnist_like_labeled(n, 7, 123);

  // Spatially sort points (and their labels, via the same permutation).
  auto perm = tree_order(data.points, 8);
  data.points.permute(perm);
  {
    std::vector<int> relabeled(n);
    for (std::size_t j = 0; j < n; ++j) relabeled[j] = data.labels[perm[j]];
    data.labels = std::move(relabeled);
  }

  KdTree tree = build_kdtree(data.points, 8);
  GpuAddressSpace space;
  KnnKernel kernel(tree, data.points, k_neighbors, space);
  auto gpu = run_gpu_sim(kernel, space, DeviceConfig{},
                         GpuMode::from(Variant::kAutoLockstep));
  std::printf("traversal: %.3f ms modelled, %.0f nodes/warp\n",
              gpu.time.total_ms, gpu.avg_nodes());

  // Epilogue: majority vote over neighbor labels.
  std::size_t correct = 0;
  std::array<int, 10> votes{};
  for (std::size_t i = 0; i < n; ++i) {
    votes.fill(0);
    const KnnResult& r = gpu.results[i];
    for (int h = 0; h < r.found; ++h)
      ++votes[static_cast<std::size_t>(
          data.labels[static_cast<std::size_t>(r.ids[h])])];
    int best = 0;
    for (int c = 1; c < 10; ++c)
      if (votes[static_cast<std::size_t>(c)] >
          votes[static_cast<std::size_t>(best)])
        best = c;
    if (best == data.labels[i]) ++correct;
  }
  double accuracy = static_cast<double>(correct) / static_cast<double>(n);
  std::printf("leave-one-out accuracy: %.1f%% (%zu / %zu)\n",
              100.0 * accuracy, correct, n);
  // The synthetic classes overlap, but a working kNN should beat chance
  // (10%) by a wide margin.
  return accuracy > 0.5 ? 0 : 1;
}
