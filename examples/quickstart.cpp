// Quickstart: the whole pipeline on one page.
//
// 1. Describe the traversal's structure (IR) and let the static call-set
//    analysis classify it (section 3.2.1).
// 2. Build the tree and the traversal kernel.
// 3. Let the runtime profiler decide lockstep vs non-lockstep (section 4.4)
//    and run the chosen variant on the simulated GPU.
// 4. Cross-check against the plain recursive CPU run.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "bench_algos/pc/point_correlation.h"
#include "core/cpu_executors.h"
#include "core/gpu_executors.h"
#include "core/schedule.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"

int main() {
  using namespace tt;

  // --- 1. static analysis of the traversal structure -------------------
  ir::AnalysisReport report = ir::analyze(pc_ir());
  std::printf("point-correlation: %zu call set(s), %s, %s\n",
              report.call_sets.size(),
              report.pseudo_tail_recursive ? "pseudo-tail-recursive"
                                           : "needs restructuring",
              report.cls == ir::TraversalClass::kUnguided ? "unguided"
                                                          : "guided");

  // --- 2. data, tree, kernel ------------------------------------------
  PointSet pts = gen_covtype_like(8192, 7, /*seed=*/1);
  pts.permute(tree_order(pts, 8));  // spatial sort (section 4.4)
  KdTree tree = build_kdtree(pts, /*leaf_size=*/8);
  float radius = pc_pick_radius(pts, /*target neighbors=*/32, 1);
  GpuAddressSpace space;
  PointCorrelationKernel kernel(tree, pts, radius, space);

  // --- 3. choose a variant and run on the simulated GPU ----------------
  VariantDecision decision = decide_variant(kernel, report,
                                            /*annotated equivalent=*/false);
  std::printf("profiler similarity %.2f -> %s traversal\n",
              decision.profiled_similarity,
              decision.lockstep ? "lockstep" : "non-lockstep");
  GpuRun<PointCorrelationKernel> gpu =
      run_gpu_sim(kernel, space, DeviceConfig{}, decision.mode());
  std::printf("GPU(sim): %.3f ms modelled, %.0f nodes/point avg, "
              "%llu DRAM transactions\n",
              gpu.time.total_ms, gpu.avg_nodes(),
              static_cast<unsigned long long>(gpu.stats.dram_transactions));

  // --- 4. validate against the recursive CPU implementation ------------
  CpuRun<PointCorrelationKernel> cpu =
      run_cpu(kernel, CpuVariant::kRecursive, /*threads=*/2);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < pts.size(); ++i)
    if (cpu.results[i] != gpu.results[i]) ++mismatches;
  std::printf("CPU(2T): %.3f ms measured; %zu result mismatches\n",
              cpu.wall_ms, mismatches);
  std::printf("point 0 has %u neighbors within r=%.3f\n", cpu.results[0],
              radius);
  return mismatches == 0 ? 0 : 1;
}
