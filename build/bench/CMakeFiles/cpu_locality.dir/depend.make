# Empty dependencies file for cpu_locality.
# This may be replaced when dependencies are built.
