file(REMOVE_RECURSE
  "CMakeFiles/cpu_locality.dir/cpu_locality.cpp.o"
  "CMakeFiles/cpu_locality.dir/cpu_locality.cpp.o.d"
  "cpu_locality"
  "cpu_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
