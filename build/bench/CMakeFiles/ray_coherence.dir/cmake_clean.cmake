file(REMOVE_RECURSE
  "CMakeFiles/ray_coherence.dir/ray_coherence.cpp.o"
  "CMakeFiles/ray_coherence.dir/ray_coherence.cpp.o.d"
  "ray_coherence"
  "ray_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ray_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
