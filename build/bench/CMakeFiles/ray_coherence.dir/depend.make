# Empty dependencies file for ray_coherence.
# This may be replaced when dependencies are built.
