file(REMOVE_RECURSE
  "CMakeFiles/micro_simt.dir/micro_simt.cpp.o"
  "CMakeFiles/micro_simt.dir/micro_simt.cpp.o.d"
  "micro_simt"
  "micro_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
