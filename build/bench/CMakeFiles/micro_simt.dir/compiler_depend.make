# Empty compiler generated dependencies file for micro_simt.
# This may be replaced when dependencies are built.
