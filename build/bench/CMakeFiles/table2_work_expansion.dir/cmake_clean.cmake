file(REMOVE_RECURSE
  "CMakeFiles/table2_work_expansion.dir/table2_work_expansion.cpp.o"
  "CMakeFiles/table2_work_expansion.dir/table2_work_expansion.cpp.o.d"
  "table2_work_expansion"
  "table2_work_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_work_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
