# Empty compiler generated dependencies file for table2_work_expansion.
# This may be replaced when dependencies are built.
