file(REMOVE_RECURSE
  "CMakeFiles/ablation_ropes.dir/ablation_ropes.cpp.o"
  "CMakeFiles/ablation_ropes.dir/ablation_ropes.cpp.o.d"
  "ablation_ropes"
  "ablation_ropes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ropes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
