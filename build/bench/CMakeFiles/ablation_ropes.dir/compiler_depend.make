# Empty compiler generated dependencies file for ablation_ropes.
# This may be replaced when dependencies are built.
