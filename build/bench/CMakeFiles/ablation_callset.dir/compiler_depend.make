# Empty compiler generated dependencies file for ablation_callset.
# This may be replaced when dependencies are built.
