file(REMOVE_RECURSE
  "CMakeFiles/ablation_callset.dir/ablation_callset.cpp.o"
  "CMakeFiles/ablation_callset.dir/ablation_callset.cpp.o.d"
  "ablation_callset"
  "ablation_callset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_callset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
