file(REMOVE_RECURSE
  "CMakeFiles/algos_test.dir/algos/bh_test.cpp.o"
  "CMakeFiles/algos_test.dir/algos/bh_test.cpp.o.d"
  "CMakeFiles/algos_test.dir/algos/cross_input_test.cpp.o"
  "CMakeFiles/algos_test.dir/algos/cross_input_test.cpp.o.d"
  "CMakeFiles/algos_test.dir/algos/harness_test.cpp.o"
  "CMakeFiles/algos_test.dir/algos/harness_test.cpp.o.d"
  "CMakeFiles/algos_test.dir/algos/kernel_details_test.cpp.o"
  "CMakeFiles/algos_test.dir/algos/kernel_details_test.cpp.o.d"
  "CMakeFiles/algos_test.dir/algos/knn_test.cpp.o"
  "CMakeFiles/algos_test.dir/algos/knn_test.cpp.o.d"
  "CMakeFiles/algos_test.dir/algos/nn_test.cpp.o"
  "CMakeFiles/algos_test.dir/algos/nn_test.cpp.o.d"
  "CMakeFiles/algos_test.dir/algos/pc_test.cpp.o"
  "CMakeFiles/algos_test.dir/algos/pc_test.cpp.o.d"
  "CMakeFiles/algos_test.dir/algos/ray_test.cpp.o"
  "CMakeFiles/algos_test.dir/algos/ray_test.cpp.o.d"
  "CMakeFiles/algos_test.dir/algos/vp_test.cpp.o"
  "CMakeFiles/algos_test.dir/algos/vp_test.cpp.o.d"
  "algos_test"
  "algos_test.pdb"
  "algos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
