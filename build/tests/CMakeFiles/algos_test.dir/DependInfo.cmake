
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algos/bh_test.cpp" "tests/CMakeFiles/algos_test.dir/algos/bh_test.cpp.o" "gcc" "tests/CMakeFiles/algos_test.dir/algos/bh_test.cpp.o.d"
  "/root/repo/tests/algos/cross_input_test.cpp" "tests/CMakeFiles/algos_test.dir/algos/cross_input_test.cpp.o" "gcc" "tests/CMakeFiles/algos_test.dir/algos/cross_input_test.cpp.o.d"
  "/root/repo/tests/algos/harness_test.cpp" "tests/CMakeFiles/algos_test.dir/algos/harness_test.cpp.o" "gcc" "tests/CMakeFiles/algos_test.dir/algos/harness_test.cpp.o.d"
  "/root/repo/tests/algos/kernel_details_test.cpp" "tests/CMakeFiles/algos_test.dir/algos/kernel_details_test.cpp.o" "gcc" "tests/CMakeFiles/algos_test.dir/algos/kernel_details_test.cpp.o.d"
  "/root/repo/tests/algos/knn_test.cpp" "tests/CMakeFiles/algos_test.dir/algos/knn_test.cpp.o" "gcc" "tests/CMakeFiles/algos_test.dir/algos/knn_test.cpp.o.d"
  "/root/repo/tests/algos/nn_test.cpp" "tests/CMakeFiles/algos_test.dir/algos/nn_test.cpp.o" "gcc" "tests/CMakeFiles/algos_test.dir/algos/nn_test.cpp.o.d"
  "/root/repo/tests/algos/pc_test.cpp" "tests/CMakeFiles/algos_test.dir/algos/pc_test.cpp.o" "gcc" "tests/CMakeFiles/algos_test.dir/algos/pc_test.cpp.o.d"
  "/root/repo/tests/algos/ray_test.cpp" "tests/CMakeFiles/algos_test.dir/algos/ray_test.cpp.o" "gcc" "tests/CMakeFiles/algos_test.dir/algos/ray_test.cpp.o.d"
  "/root/repo/tests/algos/vp_test.cpp" "tests/CMakeFiles/algos_test.dir/algos/vp_test.cpp.o" "gcc" "tests/CMakeFiles/algos_test.dir/algos/vp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tt_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
