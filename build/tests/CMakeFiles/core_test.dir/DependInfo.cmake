
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/determinism_test.cpp" "tests/CMakeFiles/core_test.dir/core/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/determinism_test.cpp.o.d"
  "/root/repo/tests/core/executor_equivalence_test.cpp" "tests/CMakeFiles/core_test.dir/core/executor_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/executor_equivalence_test.cpp.o.d"
  "/root/repo/tests/core/figure3_test.cpp" "tests/CMakeFiles/core_test.dir/core/figure3_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/figure3_test.cpp.o.d"
  "/root/repo/tests/core/lockstep_properties_test.cpp" "tests/CMakeFiles/core_test.dir/core/lockstep_properties_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/lockstep_properties_test.cpp.o.d"
  "/root/repo/tests/core/micro_kernel_test.cpp" "tests/CMakeFiles/core_test.dir/core/micro_kernel_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/micro_kernel_test.cpp.o.d"
  "/root/repo/tests/core/profiler_test.cpp" "tests/CMakeFiles/core_test.dir/core/profiler_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/profiler_test.cpp.o.d"
  "/root/repo/tests/core/rope_stack_test.cpp" "tests/CMakeFiles/core_test.dir/core/rope_stack_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/rope_stack_test.cpp.o.d"
  "/root/repo/tests/core/ropes_resume_test.cpp" "tests/CMakeFiles/core_test.dir/core/ropes_resume_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ropes_resume_test.cpp.o.d"
  "/root/repo/tests/core/schedule_test.cpp" "tests/CMakeFiles/core_test.dir/core/schedule_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/schedule_test.cpp.o.d"
  "/root/repo/tests/core/static_ropes_test.cpp" "tests/CMakeFiles/core_test.dir/core/static_ropes_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/static_ropes_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tt_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
