file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/determinism_test.cpp.o"
  "CMakeFiles/core_test.dir/core/determinism_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/executor_equivalence_test.cpp.o"
  "CMakeFiles/core_test.dir/core/executor_equivalence_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/figure3_test.cpp.o"
  "CMakeFiles/core_test.dir/core/figure3_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/lockstep_properties_test.cpp.o"
  "CMakeFiles/core_test.dir/core/lockstep_properties_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/micro_kernel_test.cpp.o"
  "CMakeFiles/core_test.dir/core/micro_kernel_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/profiler_test.cpp.o"
  "CMakeFiles/core_test.dir/core/profiler_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/rope_stack_test.cpp.o"
  "CMakeFiles/core_test.dir/core/rope_stack_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/ropes_resume_test.cpp.o"
  "CMakeFiles/core_test.dir/core/ropes_resume_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/schedule_test.cpp.o"
  "CMakeFiles/core_test.dir/core/schedule_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/static_ropes_test.cpp.o"
  "CMakeFiles/core_test.dir/core/static_ropes_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
