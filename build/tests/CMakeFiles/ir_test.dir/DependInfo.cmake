
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir/callset_test.cpp" "tests/CMakeFiles/ir_test.dir/ir/callset_test.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/callset_test.cpp.o.d"
  "/root/repo/tests/ir/fuzz_test.cpp" "tests/CMakeFiles/ir_test.dir/ir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/fuzz_test.cpp.o.d"
  "/root/repo/tests/ir/interpreter_test.cpp" "tests/CMakeFiles/ir_test.dir/ir/interpreter_test.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/interpreter_test.cpp.o.d"
  "/root/repo/tests/ir/ptr_restructure_test.cpp" "tests/CMakeFiles/ir_test.dir/ir/ptr_restructure_test.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/ptr_restructure_test.cpp.o.d"
  "/root/repo/tests/ir/rewriter_test.cpp" "tests/CMakeFiles/ir_test.dir/ir/rewriter_test.cpp.o" "gcc" "tests/CMakeFiles/ir_test.dir/ir/rewriter_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tt_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
