file(REMOVE_RECURSE
  "CMakeFiles/ir_test.dir/ir/callset_test.cpp.o"
  "CMakeFiles/ir_test.dir/ir/callset_test.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/fuzz_test.cpp.o"
  "CMakeFiles/ir_test.dir/ir/fuzz_test.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/interpreter_test.cpp.o"
  "CMakeFiles/ir_test.dir/ir/interpreter_test.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/ptr_restructure_test.cpp.o"
  "CMakeFiles/ir_test.dir/ir/ptr_restructure_test.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/rewriter_test.cpp.o"
  "CMakeFiles/ir_test.dir/ir/rewriter_test.cpp.o.d"
  "ir_test"
  "ir_test.pdb"
  "ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
