file(REMOVE_RECURSE
  "CMakeFiles/spatial_test.dir/spatial/bvh_test.cpp.o"
  "CMakeFiles/spatial_test.dir/spatial/bvh_test.cpp.o.d"
  "CMakeFiles/spatial_test.dir/spatial/kdtree_test.cpp.o"
  "CMakeFiles/spatial_test.dir/spatial/kdtree_test.cpp.o.d"
  "CMakeFiles/spatial_test.dir/spatial/linear_tree_test.cpp.o"
  "CMakeFiles/spatial_test.dir/spatial/linear_tree_test.cpp.o.d"
  "CMakeFiles/spatial_test.dir/spatial/octree_test.cpp.o"
  "CMakeFiles/spatial_test.dir/spatial/octree_test.cpp.o.d"
  "CMakeFiles/spatial_test.dir/spatial/point_set_test.cpp.o"
  "CMakeFiles/spatial_test.dir/spatial/point_set_test.cpp.o.d"
  "CMakeFiles/spatial_test.dir/spatial/relayout_test.cpp.o"
  "CMakeFiles/spatial_test.dir/spatial/relayout_test.cpp.o.d"
  "CMakeFiles/spatial_test.dir/spatial/vptree_test.cpp.o"
  "CMakeFiles/spatial_test.dir/spatial/vptree_test.cpp.o.d"
  "spatial_test"
  "spatial_test.pdb"
  "spatial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
