file(REMOVE_RECURSE
  "CMakeFiles/simt_test.dir/simt/address_space_test.cpp.o"
  "CMakeFiles/simt_test.dir/simt/address_space_test.cpp.o.d"
  "CMakeFiles/simt_test.dir/simt/coalescing_test.cpp.o"
  "CMakeFiles/simt_test.dir/simt/coalescing_test.cpp.o.d"
  "CMakeFiles/simt_test.dir/simt/cost_model_test.cpp.o"
  "CMakeFiles/simt_test.dir/simt/cost_model_test.cpp.o.d"
  "CMakeFiles/simt_test.dir/simt/executor_test.cpp.o"
  "CMakeFiles/simt_test.dir/simt/executor_test.cpp.o.d"
  "CMakeFiles/simt_test.dir/simt/l2cache_test.cpp.o"
  "CMakeFiles/simt_test.dir/simt/l2cache_test.cpp.o.d"
  "CMakeFiles/simt_test.dir/simt/transfer_model_test.cpp.o"
  "CMakeFiles/simt_test.dir/simt/transfer_model_test.cpp.o.d"
  "CMakeFiles/simt_test.dir/simt/warp_memory_test.cpp.o"
  "CMakeFiles/simt_test.dir/simt/warp_memory_test.cpp.o.d"
  "simt_test"
  "simt_test.pdb"
  "simt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
