# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/simt_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/algos_test[1]_include.cmake")
