# Empty dependencies file for range_profile.
# This may be replaced when dependencies are built.
