file(REMOVE_RECURSE
  "CMakeFiles/range_profile.dir/range_profile.cpp.o"
  "CMakeFiles/range_profile.dir/range_profile.cpp.o.d"
  "range_profile"
  "range_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
