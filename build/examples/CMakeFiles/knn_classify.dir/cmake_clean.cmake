file(REMOVE_RECURSE
  "CMakeFiles/knn_classify.dir/knn_classify.cpp.o"
  "CMakeFiles/knn_classify.dir/knn_classify.cpp.o.d"
  "knn_classify"
  "knn_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
