file(REMOVE_RECURSE
  "CMakeFiles/tt_ir.dir/core/ir/autoropes_rewriter.cpp.o"
  "CMakeFiles/tt_ir.dir/core/ir/autoropes_rewriter.cpp.o.d"
  "CMakeFiles/tt_ir.dir/core/ir/callset_analysis.cpp.o"
  "CMakeFiles/tt_ir.dir/core/ir/callset_analysis.cpp.o.d"
  "CMakeFiles/tt_ir.dir/core/ir/interpreter.cpp.o"
  "CMakeFiles/tt_ir.dir/core/ir/interpreter.cpp.o.d"
  "CMakeFiles/tt_ir.dir/core/ir/ptr_restructure.cpp.o"
  "CMakeFiles/tt_ir.dir/core/ir/ptr_restructure.cpp.o.d"
  "CMakeFiles/tt_ir.dir/core/ir/traversal_ir.cpp.o"
  "CMakeFiles/tt_ir.dir/core/ir/traversal_ir.cpp.o.d"
  "libtt_ir.a"
  "libtt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
