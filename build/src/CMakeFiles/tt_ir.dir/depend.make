# Empty dependencies file for tt_ir.
# This may be replaced when dependencies are built.
