
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ir/autoropes_rewriter.cpp" "src/CMakeFiles/tt_ir.dir/core/ir/autoropes_rewriter.cpp.o" "gcc" "src/CMakeFiles/tt_ir.dir/core/ir/autoropes_rewriter.cpp.o.d"
  "/root/repo/src/core/ir/callset_analysis.cpp" "src/CMakeFiles/tt_ir.dir/core/ir/callset_analysis.cpp.o" "gcc" "src/CMakeFiles/tt_ir.dir/core/ir/callset_analysis.cpp.o.d"
  "/root/repo/src/core/ir/interpreter.cpp" "src/CMakeFiles/tt_ir.dir/core/ir/interpreter.cpp.o" "gcc" "src/CMakeFiles/tt_ir.dir/core/ir/interpreter.cpp.o.d"
  "/root/repo/src/core/ir/ptr_restructure.cpp" "src/CMakeFiles/tt_ir.dir/core/ir/ptr_restructure.cpp.o" "gcc" "src/CMakeFiles/tt_ir.dir/core/ir/ptr_restructure.cpp.o.d"
  "/root/repo/src/core/ir/traversal_ir.cpp" "src/CMakeFiles/tt_ir.dir/core/ir/traversal_ir.cpp.o" "gcc" "src/CMakeFiles/tt_ir.dir/core/ir/traversal_ir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
