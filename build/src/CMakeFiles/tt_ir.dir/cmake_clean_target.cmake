file(REMOVE_RECURSE
  "libtt_ir.a"
)
