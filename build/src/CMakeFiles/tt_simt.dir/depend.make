# Empty dependencies file for tt_simt.
# This may be replaced when dependencies are built.
