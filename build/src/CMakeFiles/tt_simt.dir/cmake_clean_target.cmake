file(REMOVE_RECURSE
  "libtt_simt.a"
)
