file(REMOVE_RECURSE
  "CMakeFiles/tt_simt.dir/simt/coalescing.cpp.o"
  "CMakeFiles/tt_simt.dir/simt/coalescing.cpp.o.d"
  "CMakeFiles/tt_simt.dir/simt/cost_model.cpp.o"
  "CMakeFiles/tt_simt.dir/simt/cost_model.cpp.o.d"
  "CMakeFiles/tt_simt.dir/simt/executor.cpp.o"
  "CMakeFiles/tt_simt.dir/simt/executor.cpp.o.d"
  "CMakeFiles/tt_simt.dir/simt/l2cache.cpp.o"
  "CMakeFiles/tt_simt.dir/simt/l2cache.cpp.o.d"
  "libtt_simt.a"
  "libtt_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
