# Empty dependencies file for tt_data.
# This may be replaced when dependencies are built.
