file(REMOVE_RECURSE
  "CMakeFiles/tt_data.dir/data/generators.cpp.o"
  "CMakeFiles/tt_data.dir/data/generators.cpp.o.d"
  "CMakeFiles/tt_data.dir/data/projection.cpp.o"
  "CMakeFiles/tt_data.dir/data/projection.cpp.o.d"
  "CMakeFiles/tt_data.dir/data/sorting.cpp.o"
  "CMakeFiles/tt_data.dir/data/sorting.cpp.o.d"
  "libtt_data.a"
  "libtt_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
