
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/generators.cpp" "src/CMakeFiles/tt_data.dir/data/generators.cpp.o" "gcc" "src/CMakeFiles/tt_data.dir/data/generators.cpp.o.d"
  "/root/repo/src/data/projection.cpp" "src/CMakeFiles/tt_data.dir/data/projection.cpp.o" "gcc" "src/CMakeFiles/tt_data.dir/data/projection.cpp.o.d"
  "/root/repo/src/data/sorting.cpp" "src/CMakeFiles/tt_data.dir/data/sorting.cpp.o" "gcc" "src/CMakeFiles/tt_data.dir/data/sorting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tt_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
