file(REMOVE_RECURSE
  "libtt_data.a"
)
