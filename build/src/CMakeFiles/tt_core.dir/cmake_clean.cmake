file(REMOVE_RECURSE
  "CMakeFiles/tt_core.dir/core/profiler.cpp.o"
  "CMakeFiles/tt_core.dir/core/profiler.cpp.o.d"
  "CMakeFiles/tt_core.dir/core/rope_stack.cpp.o"
  "CMakeFiles/tt_core.dir/core/rope_stack.cpp.o.d"
  "CMakeFiles/tt_core.dir/core/schedule.cpp.o"
  "CMakeFiles/tt_core.dir/core/schedule.cpp.o.d"
  "CMakeFiles/tt_core.dir/core/static_ropes.cpp.o"
  "CMakeFiles/tt_core.dir/core/static_ropes.cpp.o.d"
  "libtt_core.a"
  "libtt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
