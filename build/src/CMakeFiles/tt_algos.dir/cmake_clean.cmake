file(REMOVE_RECURSE
  "CMakeFiles/tt_algos.dir/bench_algos/bh/barnes_hut.cpp.o"
  "CMakeFiles/tt_algos.dir/bench_algos/bh/barnes_hut.cpp.o.d"
  "CMakeFiles/tt_algos.dir/bench_algos/harness.cpp.o"
  "CMakeFiles/tt_algos.dir/bench_algos/harness.cpp.o.d"
  "CMakeFiles/tt_algos.dir/bench_algos/knn/knn.cpp.o"
  "CMakeFiles/tt_algos.dir/bench_algos/knn/knn.cpp.o.d"
  "CMakeFiles/tt_algos.dir/bench_algos/nn/nearest_neighbor.cpp.o"
  "CMakeFiles/tt_algos.dir/bench_algos/nn/nearest_neighbor.cpp.o.d"
  "CMakeFiles/tt_algos.dir/bench_algos/pc/point_correlation.cpp.o"
  "CMakeFiles/tt_algos.dir/bench_algos/pc/point_correlation.cpp.o.d"
  "CMakeFiles/tt_algos.dir/bench_algos/ray/ray_bvh.cpp.o"
  "CMakeFiles/tt_algos.dir/bench_algos/ray/ray_bvh.cpp.o.d"
  "CMakeFiles/tt_algos.dir/bench_algos/vp/vantage_point.cpp.o"
  "CMakeFiles/tt_algos.dir/bench_algos/vp/vantage_point.cpp.o.d"
  "libtt_algos.a"
  "libtt_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
