file(REMOVE_RECURSE
  "libtt_algos.a"
)
