
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_algos/bh/barnes_hut.cpp" "src/CMakeFiles/tt_algos.dir/bench_algos/bh/barnes_hut.cpp.o" "gcc" "src/CMakeFiles/tt_algos.dir/bench_algos/bh/barnes_hut.cpp.o.d"
  "/root/repo/src/bench_algos/harness.cpp" "src/CMakeFiles/tt_algos.dir/bench_algos/harness.cpp.o" "gcc" "src/CMakeFiles/tt_algos.dir/bench_algos/harness.cpp.o.d"
  "/root/repo/src/bench_algos/knn/knn.cpp" "src/CMakeFiles/tt_algos.dir/bench_algos/knn/knn.cpp.o" "gcc" "src/CMakeFiles/tt_algos.dir/bench_algos/knn/knn.cpp.o.d"
  "/root/repo/src/bench_algos/nn/nearest_neighbor.cpp" "src/CMakeFiles/tt_algos.dir/bench_algos/nn/nearest_neighbor.cpp.o" "gcc" "src/CMakeFiles/tt_algos.dir/bench_algos/nn/nearest_neighbor.cpp.o.d"
  "/root/repo/src/bench_algos/pc/point_correlation.cpp" "src/CMakeFiles/tt_algos.dir/bench_algos/pc/point_correlation.cpp.o" "gcc" "src/CMakeFiles/tt_algos.dir/bench_algos/pc/point_correlation.cpp.o.d"
  "/root/repo/src/bench_algos/ray/ray_bvh.cpp" "src/CMakeFiles/tt_algos.dir/bench_algos/ray/ray_bvh.cpp.o" "gcc" "src/CMakeFiles/tt_algos.dir/bench_algos/ray/ray_bvh.cpp.o.d"
  "/root/repo/src/bench_algos/vp/vantage_point.cpp" "src/CMakeFiles/tt_algos.dir/bench_algos/vp/vantage_point.cpp.o" "gcc" "src/CMakeFiles/tt_algos.dir/bench_algos/vp/vantage_point.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
