# Empty compiler generated dependencies file for tt_algos.
# This may be replaced when dependencies are built.
