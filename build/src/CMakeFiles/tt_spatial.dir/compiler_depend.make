# Empty compiler generated dependencies file for tt_spatial.
# This may be replaced when dependencies are built.
