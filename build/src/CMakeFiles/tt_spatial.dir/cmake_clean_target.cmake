file(REMOVE_RECURSE
  "libtt_spatial.a"
)
