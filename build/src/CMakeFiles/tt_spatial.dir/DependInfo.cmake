
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatial/bvh.cpp" "src/CMakeFiles/tt_spatial.dir/spatial/bvh.cpp.o" "gcc" "src/CMakeFiles/tt_spatial.dir/spatial/bvh.cpp.o.d"
  "/root/repo/src/spatial/kdtree.cpp" "src/CMakeFiles/tt_spatial.dir/spatial/kdtree.cpp.o" "gcc" "src/CMakeFiles/tt_spatial.dir/spatial/kdtree.cpp.o.d"
  "/root/repo/src/spatial/linearize.cpp" "src/CMakeFiles/tt_spatial.dir/spatial/linearize.cpp.o" "gcc" "src/CMakeFiles/tt_spatial.dir/spatial/linearize.cpp.o.d"
  "/root/repo/src/spatial/octree.cpp" "src/CMakeFiles/tt_spatial.dir/spatial/octree.cpp.o" "gcc" "src/CMakeFiles/tt_spatial.dir/spatial/octree.cpp.o.d"
  "/root/repo/src/spatial/relayout.cpp" "src/CMakeFiles/tt_spatial.dir/spatial/relayout.cpp.o" "gcc" "src/CMakeFiles/tt_spatial.dir/spatial/relayout.cpp.o.d"
  "/root/repo/src/spatial/vptree.cpp" "src/CMakeFiles/tt_spatial.dir/spatial/vptree.cpp.o" "gcc" "src/CMakeFiles/tt_spatial.dir/spatial/vptree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
