file(REMOVE_RECURSE
  "CMakeFiles/tt_spatial.dir/spatial/bvh.cpp.o"
  "CMakeFiles/tt_spatial.dir/spatial/bvh.cpp.o.d"
  "CMakeFiles/tt_spatial.dir/spatial/kdtree.cpp.o"
  "CMakeFiles/tt_spatial.dir/spatial/kdtree.cpp.o.d"
  "CMakeFiles/tt_spatial.dir/spatial/linearize.cpp.o"
  "CMakeFiles/tt_spatial.dir/spatial/linearize.cpp.o.d"
  "CMakeFiles/tt_spatial.dir/spatial/octree.cpp.o"
  "CMakeFiles/tt_spatial.dir/spatial/octree.cpp.o.d"
  "CMakeFiles/tt_spatial.dir/spatial/relayout.cpp.o"
  "CMakeFiles/tt_spatial.dir/spatial/relayout.cpp.o.d"
  "CMakeFiles/tt_spatial.dir/spatial/vptree.cpp.o"
  "CMakeFiles/tt_spatial.dir/spatial/vptree.cpp.o.d"
  "libtt_spatial.a"
  "libtt_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
