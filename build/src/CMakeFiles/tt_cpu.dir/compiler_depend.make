# Empty compiler generated dependencies file for tt_cpu.
# This may be replaced when dependencies are built.
