file(REMOVE_RECURSE
  "CMakeFiles/tt_cpu.dir/cpu/parallel.cpp.o"
  "CMakeFiles/tt_cpu.dir/cpu/parallel.cpp.o.d"
  "CMakeFiles/tt_cpu.dir/cpu/scaling_model.cpp.o"
  "CMakeFiles/tt_cpu.dir/cpu/scaling_model.cpp.o.d"
  "libtt_cpu.a"
  "libtt_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
