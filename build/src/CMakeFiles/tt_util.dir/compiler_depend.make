# Empty compiler generated dependencies file for tt_util.
# This may be replaced when dependencies are built.
