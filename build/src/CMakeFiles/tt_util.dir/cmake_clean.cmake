file(REMOVE_RECURSE
  "CMakeFiles/tt_util.dir/util/cli.cpp.o"
  "CMakeFiles/tt_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/tt_util.dir/util/csv.cpp.o"
  "CMakeFiles/tt_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/tt_util.dir/util/rng.cpp.o"
  "CMakeFiles/tt_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/tt_util.dir/util/stats.cpp.o"
  "CMakeFiles/tt_util.dir/util/stats.cpp.o.d"
  "libtt_util.a"
  "libtt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
