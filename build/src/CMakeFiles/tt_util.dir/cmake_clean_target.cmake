file(REMOVE_RECURSE
  "libtt_util.a"
)
