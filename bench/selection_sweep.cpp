// Threshold / sample-count sweep of the section-4.4 auto_select sampler.
//
// For every benchmark x {morton, tree, shuffled} point order, the ground
// truth is whichever autoropes composition the cost model says is faster
// for that cell. The sweep then asks, for each (samples, threshold)
// operating point: how often does the sampler's dispatch disagree with
// that ground truth (mis-selection rate), and how much modelled time does
// the sampling itself cost relative to the dispatched variant's runtime
// (overhead)? Thresholds apply to the similarity *lift* (adjacent-pair
// mean minus random-pair baseline; see core/profiler.h for why raw
// similarity is not comparable across kernels).
//
// The HeuristicFloor column counts cells where even a *perfect* sorted
// detector would disagree with the oracle: sortedness does not fully
// determine the modelled winner (lockstep can win on shuffled inputs when
// work expansion stays low, and vice versa). The sampler's own error is
// Misselects - HeuristicFloor; at the default operating point (32
// samples, lift threshold 0.15) it should be zero, and the sweep shows
// how far samples/threshold can move before that degrades.
//
// Kernels come from core's KernelFactory (name-keyed; builders registered
// by register_bench_kernels) and run through the type-erased batch API,
// so the sweep has no per-algo construction switch of its own.
#include <array>
#include <iostream>
#include <string>
#include <vector>

#include "bench_algos/register_kernels.h"
#include "bench_common.h"
#include "core/batch_scheduler.h"
#include "core/kernel_factory.h"
#include "core/profiler.h"
#include "util/csv.h"

using namespace tt;

namespace {

struct Cell {
  std::string name;            // "pc/covtype/morton"
  double mean_similarity = 0;  // per sample count, filled in the sweep
  double baseline_similarity = 0;
  double sampled_visits = 0;
  bool order_is_sorted = false;  // cell built with a spatial sort?
  bool best_is_lockstep = false;
  double best_cycles = 0;  // instr cycles of the faster composition
};

PointOrder kOrders[] = {PointOrder::kMorton, PointOrder::kTree,
                        PointOrder::kShuffled};

const char* factory_name(Algo a) {
  switch (a) {
    case Algo::kBH: return "bh";
    case Algo::kPC: return "pc";
    case Algo::kKNN: return "knn";
    case Algo::kNN: return "nn";
    case Algo::kVP: return "vp";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "selection_sweep: mis-selection rate and sampling overhead of the "
      "section-4.4 auto_select sampler across thresholds and sample "
      "counts, benchmarks x {morton, tree, shuffled} orders");
  benchx::add_common_flags(cli);
  return benchx::run_main(cli, argc, argv, "selection_sweep", [&]() -> int {
    register_bench_kernels();
    const std::uint64_t profile_seed =
        static_cast<std::uint64_t>(cli.get_int("profile-seed"));
    const std::vector<std::size_t> sample_counts{2, 4, 8, 16, 32, 64};
    const std::vector<double> thresholds{0.05, 0.10, 0.15, 0.20, 0.25,
                                         0.30, 0.35, 0.40, 0.45};

    // Per (cell, sample count): the measured mean similarity and visit
    // charge. Thresholding is then arithmetic, so one profile run per
    // sample count covers the whole threshold axis.
    std::vector<std::vector<Cell>> by_samples(sample_counts.size());
    for (Algo a : benchx::parse_algos(cli.get_string("benchmarks"))) {
      for (PointOrder order : kOrders) {
        if (a == Algo::kBH && order == PointOrder::kTree)
          continue;  // the harness never tree-orders 3-d bodies
        KernelRequest req;
        req.n = static_cast<std::size_t>(a == Algo::kBH ? cli.get_int("bodies")
                                                        : cli.get_int("points"));
        req.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
        req.k = static_cast<int>(cli.get_int("k"));
        req.pc_target_neighbors = cli.get_double("pc-neighbors");
        req.bh_theta = static_cast<float>(cli.get_double("theta"));
        req.order = order;
        std::string input = a == Algo::kBH ? "plummer" : "covtype";
        if (a != Algo::kBH && order == PointOrder::kMorton) {
          // Morton order needs <= 3 dimensions; sweep it on the uniform
          // 3-d variant of each tree benchmark.
          input = "uniform";
          req.dim = 3;
        }
        req.input = input;

        GpuAddressSpace space;
        auto handle =
            KernelFactory::instance().make(factory_name(a), req, space);
        const DeviceConfig dev;
        // Both autoropes compositions as one batch (isolated per-launch
        // measurements; byte-identical to solo runs by construction).
        std::array<LaunchSpec, 2> specs{
            LaunchSpec{handle, &space, GpuMode::from(Variant::kAutoLockstep)},
            LaunchSpec{handle, &space,
                       GpuMode::from(Variant::kAutoNolockstep)}};
        BatchRun run = run_gpu_batch(specs, dev);
        const LaunchResult& lock = run.launches[0];
        const LaunchResult& nolock = run.launches[1];
        const bool best_lockstep = lock.time.total_ms <= nolock.time.total_ms;
        for (std::size_t si = 0; si < sample_counts.size(); ++si) {
          ProfileReport p = handle->profile(sample_counts[si], profile_seed);
          Cell c;
          c.name = std::string(factory_name(a)) + "/" + input + "/" +
                   point_order_name(order);
          c.mean_similarity = p.mean_similarity;
          c.baseline_similarity = p.baseline_similarity;
          c.sampled_visits = static_cast<double>(p.sampled_visits);
          c.order_is_sorted = order != PointOrder::kShuffled;
          c.best_is_lockstep = best_lockstep;
          c.best_cycles = best_lockstep ? lock.stats.instr_cycles
                                        : nolock.stats.instr_cycles;
          by_samples[si].push_back(c);
        }
        std::cerr << "# profiled " << factory_name(a) << "/"
                  << point_order_name(order) << "\n";
      }
    }

    Table table({"Samples", "Threshold", "MisselectRate", "Misselects",
                 "HeuristicFloor", "Cells", "MeanOverhead%", "MaxOverhead%"});
    for (std::size_t si = 0; si < sample_counts.size(); ++si) {
      const std::vector<Cell>& cells = by_samples[si];
      if (cells.empty()) continue;
      for (double threshold : thresholds) {
        std::size_t miss = 0, floor = 0;
        double overhead_sum = 0, overhead_max = 0;
        for (const Cell& c : cells) {
          const bool picks_lockstep =
              c.mean_similarity - c.baseline_similarity >= threshold;
          if (picks_lockstep != c.best_is_lockstep) ++miss;
          if (c.order_is_sorted != c.best_is_lockstep) ++floor;
          // Same charge the auto_select variant applies in run_gpu_sim.
          const DeviceConfig dev;
          const double sampling_cycles =
              c.sampled_visits * (dev.c_visit + dev.c_step);
          const double overhead =
              c.best_cycles > 0 ? 100.0 * sampling_cycles / c.best_cycles : 0;
          overhead_sum += overhead;
          overhead_max = std::max(overhead_max, overhead);
        }
        table.add_row({std::to_string(sample_counts[si]),
                       fmt_fixed(threshold, 2),
                       fmt_fixed(static_cast<double>(miss) /
                                     static_cast<double>(cells.size()),
                                 3),
                       std::to_string(miss), std::to_string(floor),
                       std::to_string(cells.size()),
                       fmt_fixed(overhead_sum /
                                     static_cast<double>(cells.size()),
                                 3),
                       fmt_fixed(overhead_max, 3)});
      }
    }
    benchx::emit(table, cli.get_flag("csv"));

    obs::RunReport report = benchx::make_report(cli, "selection_sweep");
    report.add_table("selection_sweep", table);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    return 0;
  });
}
