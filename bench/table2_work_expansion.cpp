// Table 2 reproduction: average work expansion per warp of lockstep
// traversals -- (nodes visited by the lockstep warp) / (longest individual
// traversal in the warp) -- mean and standard deviation, for sorted and
// unsorted inputs.
#include <iostream>

#include "bench_common.h"
#include "util/csv.h"

using namespace tt;

int main(int argc, char** argv) {
  Cli cli(
      "table2_work_expansion: paper Table 2 -- per-warp lockstep work "
      "expansion, mean (stddev), sorted vs unsorted");
  benchx::add_common_flags(cli);
  return benchx::run_main(cli, argc, argv, "table2_work_expansion", [&]() -> int {
    benchx::ChromeTrace chrome(cli);
    Table table({"Benchmark", "Input", "Sorted", "Unsorted",
                 "AutoSel(sorted)", "AutoSel(unsorted)"});
    obs::RunReport report = benchx::make_report(cli, "table2_work_expansion");
    for (Algo a : benchx::parse_algos(cli.get_string("benchmarks"))) {
      for (InputKind in : inputs_for(a)) {
        std::string cells[2];
        std::string auto_cells[2];
        for (bool sorted : {true, false}) {
          BenchRow row = run_bench(
              benchx::config_from(cli, a, in, sorted, chrome.collector()));
          report.add_row(row);
          // Work expansion needs both autoropes variants; "-" when either
          // failed or was excluded by --variant.
          const bool have_both =
              row.result(Variant::kAutoLockstep).ok() &&
              row.result(Variant::kAutoNolockstep).ok();
          cells[sorted ? 0 : 1] =
              have_both ? fmt_fixed(row.work_expansion.mean, 2) + " (" +
                              fmt_fixed(row.work_expansion.stddev, 2) + ")"
                        : "-";
          // What the section-4.4 sampler decided for this cell: the
          // dispatched composition and the similarity lift (adjacent mean
          // minus random-pair baseline) it decided on. The work-expansion
          // columns explain the decision -- high expansion on unsorted
          // inputs is exactly why auto_select should pick N.
          const VariantResult& av = row.result(Variant::kAutoSelect);
          auto_cells[sorted ? 0 : 1] =
              av.ok() && av.selection
                  ? std::string(av.selection->chosen ==
                                        Variant::kAutoLockstep
                                    ? "L"
                                    : "N") +
                        " (lift " +
                        fmt_fixed(av.selection->mean_similarity -
                                      av.selection->baseline_similarity,
                                  2) +
                        ")"
                  : "-";
        }
        table.add_row({algo_name(a), input_name(in), cells[0], cells[1],
                       auto_cells[0], auto_cells[1]});
        std::cerr << "# done " << algo_name(a) << "/" << input_name(in)
                  << "\n";
      }
    }
    benchx::emit(table, cli.get_flag("csv"));
    report.add_table("table2_work_expansion", table);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    if (!chrome.write()) return 1;
    return 0;
  });
}
