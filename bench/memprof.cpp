// bench/memprof: the memory telescope. Per-buffer / per-field attribution
// of every 128-byte transaction a launch issued (simt/memory_attr.h,
// charged at the single WarpMemory::commit site), swept over kernels x
// variants x point orders:
//
//   memory_hot       -- the per-(kernel, variant) hot-buffer table: load
//                       groups, replayed loads, issued-vs-ideal segments
//                       (coalescing efficiency), L2-hit/DRAM splits and
//                       derived mem-stall cycles, ranked by DRAM traffic.
//   memory_fields    -- the per-field split of the node arrays: which
//                       *member* of the node record the stall cycles and
//                       DRAM bytes charge to.
//   memory_coalesce  -- the worst-coalesced buffers across the sweep
//                       (efficiency ascending): where replays and sparse
//                       segments come from.
//   layout_split     -- the paper's section-5 usage-based struct-splitting
//                       decision, measured instead of argued: PC run with
//                       split nodes0/nodes1 arrays vs one interleaved
//                       record, compared on per-visit node-array DRAM
//                       transactions. The decision is usage-based, and the
//                       table shows both directions: rope (stackless)
//                       traversal never touches nodes1 (children come from
//                       the rope table), so the split packs its hot bbox
//                       bytes densely and per-visit DRAM drops; the
//                       stack-based variants read both halves at every
//                       visit, so interleaving co-locates them and the
//                       split buys nothing there.
//
// With --json the report also carries the full run_bench rows; under
// --profile each ok variant embeds its schema-v9 "memory" block, whose
// row sums tools/json_validate re-checks against the aggregate
// KernelStats counters with exact equality. All emitted numbers are
// deterministic (modelled counters, no wall clock), so the report is
// byte-identical across OMP thread counts -- CI pins that.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_algos/harness.h"
#include "bench_algos/pc/point_correlation.h"
#include "bench_common.h"
#include "core/gpu_executors.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "obs/profile.h"
#include "spatial/kdtree.h"
#include "util/csv.h"

using namespace tt;

namespace {

// One swept measurement: the harness row's identity plus its attribution.
struct Swept {
  std::string kernel;
  std::string order;
  std::string variant;
  const MemoryAttribution* memory;
};

std::string fmt_eff(double eff) { return fmt_fixed(eff, 4); }

}  // namespace

int main(int argc, char** argv) {
  Cli cli("memprof: per-buffer / per-field memory-traffic attribution");
  benchx::add_common_flags(cli);
  cli.add_int("top", 8, "hot/worst-coalesced buffer rows per launch");
  return benchx::run_main(cli, argc, argv, "memprof", [&]() -> int {
    const auto top = static_cast<std::size_t>(cli.get_int("top"));
    obs::RunReport report = benchx::make_report(cli, "memprof");
    benchx::ChromeTrace chrome(cli);

    // -----------------------------------------------------------------
    // Kernel x variant x order sweep through the full harness (pc + nn,
    // the same pair the other smoke grids use). The rows land in the
    // --json report, so --profile exports every variant's "memory" block.
    // -----------------------------------------------------------------
    std::vector<BenchRow> rows;
    for (Algo a : {Algo::kPC, Algo::kNN})
      for (bool sorted : {true, false})
        rows.push_back(run_bench(benchx::config_from(
            cli, a, inputs_for(a).front(), sorted, chrome.collector())));
    for (const BenchRow& row : rows) report.add_row(row);

    std::vector<Swept> swept;
    for (const BenchRow& row : rows)
      for (Variant v : kAllVariants) {
        const VariantResult& r = row.result(v);
        if (!r.ok() || r.stats.memory.empty()) continue;
        swept.push_back({algo_name(row.config.algo),
                         row.config.sorted ? "sorted" : "unsorted",
                         variant_name(v), &r.stats.memory});
      }

    Table hot({"Kernel", "Order", "Variant", "Buffer", "Groups", "Replays",
               "Segs", "Eff", "L2 hit", "DRAM", "DRAM B", "Stall cyc"});
    for (const Swept& s : swept)
      for (const BufferTraffic* r : obs::hot_buffers(*s.memory, top))
        hot.add_row({s.kernel, s.order, s.variant, r->name,
                     std::to_string(r->load_groups),
                     std::to_string(r->replayed_loads),
                     std::to_string(r->issued_segments),
                     fmt_eff(r->coalescing_efficiency()),
                     std::to_string(r->l2_hit_transactions),
                     std::to_string(r->dram_transactions),
                     std::to_string(r->dram_bytes),
                     fmt_fixed(r->mem_stall_cycles, 1)});

    // Per-field split of the annotated buffers (the node arrays): stall
    // share by record member. One representative variant per family keeps
    // the table readable; the --json memory blocks carry all of them.
    Table fields({"Kernel", "Order", "Variant", "Buffer", "Field", "Txn",
                  "DRAM", "DRAM B", "Stall cyc", "Stall %"});
    for (const Swept& s : swept) {
      if (s.variant != variant_name(Variant::kAutoNolockstep)) continue;
      for (const BufferTraffic* r : s.memory->sorted_rows()) {
        if (r->fields.empty() || r->issued_segments == 0) continue;
        for (const FieldTraffic& f : r->fields) {
          const double share = r->mem_stall_cycles > 0
                                   ? 100.0 * f.mem_stall_cycles /
                                         r->mem_stall_cycles
                                   : 0.0;
          fields.add_row({s.kernel, s.order, s.variant, r->name, f.name,
                          fmt_fixed(f.transactions, 2),
                          fmt_fixed(f.dram, 2),
                          fmt_fixed(f.dram_bytes, 0),
                          fmt_fixed(f.mem_stall_cycles, 1),
                          fmt_fixed(share, 1)});
        }
      }
    }

    // The worst-coalesced sites across the whole sweep: one row per
    // (launch, buffer), efficiency ascending.
    struct Worst {
      const Swept* s;
      const BufferTraffic* r;
    };
    std::vector<Worst> worst;
    for (const Swept& s : swept)
      for (const BufferTraffic* r : s.memory->worst_coalesced(top))
        worst.push_back({&s, r});
    std::sort(worst.begin(), worst.end(), [](const Worst& a, const Worst& b) {
      const double ea = a.r->coalescing_efficiency();
      const double eb = b.r->coalescing_efficiency();
      if (ea != eb) return ea < eb;
      if (a.s->kernel != b.s->kernel) return a.s->kernel < b.s->kernel;
      if (a.s->order != b.s->order) return a.s->order < b.s->order;
      if (a.s->variant != b.s->variant) return a.s->variant < b.s->variant;
      return a.r->name < b.r->name;
    });
    if (worst.size() > top) worst.resize(top);
    Table coalesce({"Kernel", "Order", "Variant", "Buffer", "Eff", "Issued",
                    "Ideal", "Replays"});
    for (const Worst& w : worst)
      coalesce.add_row({w.s->kernel, w.s->order, w.s->variant, w.r->name,
                        fmt_eff(w.r->coalescing_efficiency()),
                        std::to_string(w.r->issued_segments),
                        std::to_string(w.r->ideal_segments),
                        std::to_string(w.r->replayed_loads)});

    // -----------------------------------------------------------------
    // The section-5 struct-splitting decision, reproduced from
    // measurements: PC with split nodes0/nodes1 vs one interleaved
    // record, compared on per-visit node-array DRAM transactions.
    // -----------------------------------------------------------------
    Table layout({"Order", "Variant", "Layout", "Node DRAM", "Lane visits",
                  "DRAM/visit"});
    const auto n = static_cast<std::size_t>(cli.get_int("points"));
    for (bool sorted : {true, false}) {
      PointSet pts = gen_covtype_like(n, 7, 42);
      auto perm = sorted ? tree_order(pts, 8) : shuffled_order(n, 42);
      pts.permute(perm);
      KdTree tree = build_kdtree(pts, 8);
      const float r =
          pc_pick_radius(pts, cli.get_double("pc-neighbors"), 42);
      for (Variant v : {Variant::kAutoLockstep, Variant::kAutoNolockstep,
                        Variant::kStacklessLockstep}) {
        if (!benchx::variant_enabled(cli, v)) continue;
        for (NodeLayout lay : {NodeLayout::kSplit, NodeLayout::kInterleaved}) {
          GpuAddressSpace space;
          PointCorrelationKernel k(tree, pts, r, space, lay);
          auto g = run_gpu_sim(k, space, DeviceConfig{}, GpuMode::from(v));
          std::uint64_t node_dram = 0;
          for (const BufferTraffic& row : g.stats.memory.rows())
            if (row.name == "pc_nodes" || row.name == "pc_nodes0" ||
                row.name == "pc_nodes1")
              node_dram += row.dram_transactions;
          const double per_visit =
              g.stats.lane_visits > 0
                  ? static_cast<double>(node_dram) /
                        static_cast<double>(g.stats.lane_visits)
                  : 0.0;
          layout.add_row({sorted ? "sorted" : "unsorted", variant_name(v),
                          lay == NodeLayout::kSplit ? "split" : "interleaved",
                          std::to_string(node_dram),
                          std::to_string(g.stats.lane_visits),
                          fmt_fixed(per_visit, 4)});
        }
      }
    }

    const bool csv = cli.get_flag("csv");
    std::cout << "== memory_hot ==\n";
    benchx::emit(hot, csv);
    std::cout << "\n== memory_fields ==\n";
    benchx::emit(fields, csv);
    std::cout << "\n== memory_coalesce ==\n";
    benchx::emit(coalesce, csv);
    std::cout << "\n== layout_split ==\n";
    benchx::emit(layout, csv);

    report.add_table("memory_hot", hot);
    report.add_table("memory_fields", fields);
    report.add_table("memory_coalesce", coalesce);
    report.add_table("layout_split", layout);
    if (!chrome.write()) return 1;
    if (!benchx::maybe_write_report(cli, report)) return 1;
    return 0;
  });
}
