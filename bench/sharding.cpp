// Sharding harness: the Table 1 kernels run across a simulated
// multi-device group (core/device_group.h). Each kernel's point range is
// chunked at warp granularity, chunks are assigned to devices by the
// selected policy (work-stealing by default), and every device overlaps
// its pipelined chunk uploads with compute. Reported: per-kernel
// single-device-vs-makespan comparison, per-device chunk / steal / busy
// accounting with copy/compute overlap attribution, and the devices x
// chunk-size scaling sweep. Sharded results are verified byte-identical
// to the single-device baseline inside run_sharded, so a wrong merge
// fails the run instead of skewing the numbers. All times are modelled
// milliseconds: the whole report is deterministic and byte-identical
// across OMP_NUM_THREADS settings.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/csv.h"

using namespace tt;

namespace {

// "1,2,4" -> {1,2,4}; rejects empties, zeros and junk.
std::vector<std::size_t> parse_device_list(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    std::size_t parsed = 0;
    try {
      std::size_t used = 0;
      parsed = static_cast<std::size_t>(std::stoull(tok, &used));
      if (used != tok.size()) parsed = 0;
    } catch (const std::exception&) {
      parsed = 0;
    }
    if (parsed == 0)
      throw std::invalid_argument(
          "--devices wants a comma-separated list of positive device "
          "counts (e.g. 1,2,4); got '" +
          tok + "'");
    out.push_back(parsed);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

// Aggregate one run into a sweep point: summed transfer attribution over
// every kernel's device shards.
ShardingSweepPoint sweep_point(const ShardingRunSummary& s) {
  ShardingSweepPoint p;
  p.devices = s.devices;
  p.chunk_points = s.chunk_points;
  p.single_device_ms = s.single_device_ms();
  p.makespan_ms = s.makespan_ms();
  p.speedup = s.speedup();
  for (const ShardingKernelReport& k : s.kernels)
    for (const DeviceShard& d : k.devices) {
      p.copy_in_ms += d.transfer.copy_in_ms;
      p.overlap_ms += d.transfer.overlap_ms;
      p.exposed_ms += d.transfer.exposed_ms;
    }
  p.overlap_efficiency = p.copy_in_ms > 0 ? p.overlap_ms / p.copy_in_ms : 0.0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "sharding: the Table 1 kernels across a simulated multi-device "
      "group -- work-stealing chunk assignment, pipelined copy/compute "
      "overlap per device, and the devices x chunk-size scaling sweep");
  benchx::add_common_flags(cli);
  cli.add_string("devices", "1,2,4",
                 "comma-separated device counts to sweep; the largest is "
                 "the headline run");
  cli.add_int("shard-chunk", 1024,
              "points per pipelined upload chunk (smaller = more overlap, "
              "more per-chunk launch overhead)");
  cli.add_string("shard-policy", "work_stealing",
                 "chunk->device assignment: round_robin, sequential or "
                 "work_stealing");
  cli.add_string("shard-variant", "auto_select",
                 "the composition every sharded launch simulates");
  cli.add_flag("sweep", true,
               "also sweep devices x chunk size (--no-sweep to skip)");

  return benchx::run_main(cli, argc, argv, "sharding", [&]() -> int {
    benchx::ChromeTrace chrome(cli);
    const std::vector<std::size_t> device_counts =
        parse_device_list(cli.get_string("devices"));
    const std::size_t headline_devices =
        *std::max_element(device_counts.begin(), device_counts.end());
    if (cli.get_int("shard-chunk") <= 0)
      throw std::invalid_argument("--shard-chunk must be >= 1");

    ShardingConfig cfg;
    for (Algo a : benchx::parse_algos(cli.get_string("benchmarks")))
      cfg.items.push_back(benchx::config_from(cli, a, inputs_for(a).front(),
                                              /*sorted=*/true));
    cfg.variant = variant_from_name(cli.get_string("shard-variant"));
    cfg.policy = batch_policy_from_name(cli.get_string("shard-policy"));
    cfg.devices = headline_devices;
    cfg.chunk_points =
        static_cast<std::size_t>(cli.get_int("shard-chunk"));
    cfg.chrome = chrome.collector();

    // Headline run at the largest device count (the only traced one).
    ShardingRunSummary summary = run_sharding(cfg);

    Table head({"Kernel", "Points", "Chunks", "Variant", "Solo(ms)",
                "Makespan(ms)", "Speedup"});
    bool any_failed = false;
    for (const ShardingKernelReport& k : summary.kernels) {
      if (!k.ok()) {
        any_failed = true;
        std::cerr << "sharding: " << k.error << "\n";
        head.add_row({k.kernel_name, std::to_string(k.n_points),
                      std::to_string(k.n_chunks), variant_name(k.variant),
                      "error", "error", "error"});
        continue;
      }
      head.add_row({k.kernel_name, std::to_string(k.n_points),
                    std::to_string(k.n_chunks), variant_name(k.variant),
                    fmt_fixed(k.single_device_ms, 3),
                    fmt_fixed(k.makespan_ms, 3), fmt_fixed(k.speedup, 2)});
    }
    head.add_row({"(pool)", "", "", "",
                  fmt_fixed(summary.single_device_ms(), 3),
                  fmt_fixed(summary.makespan_ms(), 3),
                  fmt_fixed(summary.speedup(), 2)});
    benchx::emit(head, cli.get_flag("csv"));

    Table dev_table({"Kernel", "Dev", "Chunks", "Points", "Rounds", "Steals",
                     "Compute(ms)", "CopyIn(ms)", "Overlap(ms)",
                     "Exposed(ms)", "Busy(ms)"});
    for (const ShardingKernelReport& k : summary.kernels) {
      if (!k.ok()) continue;
      for (const DeviceShard& d : k.devices)
        dev_table.add_row(
            {k.kernel_name, std::to_string(d.device),
             std::to_string(d.chunks), std::to_string(d.points),
             std::to_string(d.rounds), std::to_string(d.steals),
             fmt_fixed(d.time.total_ms, 3),
             fmt_fixed(d.transfer.copy_in_ms, 3),
             fmt_fixed(d.transfer.overlap_ms, 3),
             fmt_fixed(d.transfer.exposed_ms, 3), fmt_fixed(d.busy_ms, 3)});
    }
    benchx::emit(dev_table, cli.get_flag("csv"));

    std::cerr << "# sharding: " << summary.devices << " devices, chunk "
              << summary.chunk_points << " pts, pool solo "
              << fmt_fixed(summary.single_device_ms(), 3) << " ms -> makespan "
              << fmt_fixed(summary.makespan_ms(), 3) << " ms ("
              << fmt_fixed(summary.speedup(), 2) << "x)\n";

    obs::RunReport report = benchx::make_report(cli, "sharding");
    report.add_table("sharding", head);
    report.add_table("sharding_devices", dev_table);

    if (cli.get_flag("sweep")) {
      // Scaling curve: every requested device count x chunk size, same
      // workload, no tracing so the headline's trace stays clean.
      Table sweep_table({"Devices", "ChunkPts", "Solo(ms)", "Makespan(ms)",
                         "Speedup", "CopyIn(ms)", "Overlap(ms)",
                         "Exposed(ms)", "OverlapEff"});
      for (std::size_t n : device_counts)
        for (std::size_t chunk : {std::size_t{256}, std::size_t{1024},
                                  std::size_t{4096}}) {
          ShardingConfig sc = cfg;
          sc.devices = n;
          sc.chunk_points = chunk;
          sc.chrome = nullptr;
          const ShardingRunSummary sr = run_sharding(sc);
          for (const ShardingKernelReport& k : sr.kernels)
            if (!k.ok()) {
              any_failed = true;
              std::cerr << "sharding: sweep(" << n << "," << chunk
                        << "): " << k.error << "\n";
            }
          const ShardingSweepPoint p = sweep_point(sr);
          summary.sweep.push_back(p);
          sweep_table.add_row(
              {std::to_string(p.devices), std::to_string(p.chunk_points),
               fmt_fixed(p.single_device_ms, 3), fmt_fixed(p.makespan_ms, 3),
               fmt_fixed(p.speedup, 2), fmt_fixed(p.copy_in_ms, 3),
               fmt_fixed(p.overlap_ms, 3), fmt_fixed(p.exposed_ms, 3),
               fmt_fixed(p.overlap_efficiency, 3)});
        }
      benchx::emit(sweep_table, cli.get_flag("csv"));
      report.add_table("sharding_sweep", sweep_table);
    }

    report.set_sharding(summary);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    if (!chrome.write()) return 1;
    return any_failed ? 1 : 0;
  });
}
