// Ablation of the tree memory layout: the paper's left-biased DFS
// linearization (section 5.2) vs a BFS relayout. Node ids are simulated
// addresses, so the layout alone changes L2 reuse and coalescing; results
// are bit-identical by construction.
#include <iostream>

#include "bench_algos/pc/point_correlation.h"
#include "bench_common.h"
#include "core/gpu_executors.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"
#include "spatial/relayout.h"
#include "util/csv.h"

using namespace tt;

int main(int argc, char** argv) {
  Cli cli("ablation_linearization: DFS (paper) vs BFS tree layout");
  benchx::add_common_flags(cli);
  return benchx::run_main(cli, argc, argv, "ablation_linearization", [&]() -> int {
    Table table({"Order", "Variant", "Layout", "Time(ms)", "DRAM txn",
                 "L2 hits"});
    const auto n = static_cast<std::size_t>(cli.get_int("points"));
    for (bool sorted : {true, false}) {
      PointSet pts = gen_covtype_like(n, 7, 23);
      pts.permute(sorted ? tree_order(pts, 8) : shuffled_order(n, 23));
      KdTree dfs = build_kdtree(pts, 8);
      KdTree bfs = relayout_kdtree_bfs(dfs);
      float r = pc_pick_radius(pts, cli.get_double("pc-neighbors"), 23);
      DeviceConfig cfg;

      auto run_one = [&](const KdTree& tree, const char* layout,
                         bool lockstep) {
        const Variant v = lockstep ? Variant::kAutoLockstep
                                   : Variant::kAutoNolockstep;
        if (!benchx::variant_enabled(cli, v)) return;
        GpuAddressSpace space;
        PointCorrelationKernel k(tree, pts, r, space);
        auto g = run_gpu_sim(k, space, cfg, GpuMode::from(v));
        table.add_row({sorted ? "sorted" : "unsorted",
                       lockstep ? "L" : "N", layout,
                       fmt_fixed(g.time.total_ms, 3),
                       std::to_string(g.stats.dram_transactions),
                       std::to_string(g.stats.l2_hit_transactions)});
      };
      for (bool lockstep : {true, false}) {
        run_one(dfs, "dfs", lockstep);
        run_one(bfs, "bfs", lockstep);
      }
    }
    benchx::emit(table, cli.get_flag("csv"));
    obs::RunReport report = benchx::make_report(cli, "ablation_linearization");
    report.add_table("ablation_linearization", table);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    return 0;
  });
}
