// Supporting experiment for the paper's CPU-side locality claims
// (sections 4.4 and 6.2): replay each benchmark's traversal loads through
// an Opteron-like cache hierarchy and report hit rates for sorted vs
// unsorted inputs. Explains (a) why sorting also helps the CPU baseline
// and (b) why Geocity's short clustered traversals make the CPU look so
// strong on that input.
#include <iostream>

#include "bench_algos/pc/point_correlation.h"
#include "bench_algos/knn/knn.h"
#include "bench_common.h"
#include "cpu/cache_profile.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"
#include "util/csv.h"

using namespace tt;

int main(int argc, char** argv) {
  Cli cli("cpu_locality: CPU cache behaviour of the traversals, sorted vs "
          "unsorted (sections 4.4 / 6.2)");
  benchx::add_common_flags(cli);
  return benchx::run_main(cli, argc, argv, "cpu_locality", [&]() -> int {
    // CPU-only experiment: no GPU variant rows, but still reject a
    // misspelled --variant instead of silently ignoring it.
    benchx::parse_variant_filter(cli.get_string("variant"));
    const auto n = static_cast<std::size_t>(cli.get_int("points"));
    Table table({"Benchmark", "Input", "Order", "L1 hit%", "DRAM%",
                 "Accesses"});

    auto run_pc = [&](InputKind in) {
      for (bool sorted : {true, false}) {
        PointSet pts = in == InputKind::kGeocity
                           ? gen_geocity_like(n, 17)
                           : gen_covtype_like(n, 7, 17);
        pts.permute(sorted ? tree_order(pts, 8) : shuffled_order(n, 17));
        KdTree tree = build_kdtree(pts, 8);
        GpuAddressSpace space;
        float r = pc_pick_radius(pts, cli.get_double("pc-neighbors"), 17);
        PointCorrelationKernel k(tree, pts, r, space);
        CacheStats s = profile_cpu_cache(k, space);
        table.add_row({"PointCorrelation", input_name(in),
                       sorted ? "sorted" : "unsorted",
                       fmt_fixed(100 * s.l1_hit_rate(), 1),
                       fmt_fixed(100 * s.dram_rate(), 2),
                       std::to_string(s.accesses)});
      }
    };
    run_pc(InputKind::kCovtype);
    run_pc(InputKind::kGeocity);

    for (bool sorted : {true, false}) {
      PointSet pts = gen_mnist_like(n, 7, 18);
      pts.permute(sorted ? tree_order(pts, 8) : shuffled_order(n, 18));
      KdTree tree = build_kdtree(pts, 8);
      GpuAddressSpace space;
      KnnKernel k(tree, pts, static_cast<int>(cli.get_int("k")), space);
      CacheStats s = profile_cpu_cache(k, space);
      table.add_row({"kNearestNeighbor", "Mnist",
                     sorted ? "sorted" : "unsorted",
                     fmt_fixed(100 * s.l1_hit_rate(), 1),
                     fmt_fixed(100 * s.dram_rate(), 2),
                     std::to_string(s.accesses)});
    }
    benchx::emit(table, cli.get_flag("csv"));
    obs::RunReport report = benchx::make_report(cli, "cpu_locality");
    report.add_table("cpu_locality", table);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    return 0;
  });
}
