// Fused-vs-sequential sweep of the two shipped kernel compositions
// (core/kernel_compose.h):
//
//   fused(rope_knn+rope_nn)     -- k-NN and NN point queries over one
//                                  kd-tree, answered in a single rope walk
//   fused(barnes_hut+barnes_hut) -- two consecutive BH timesteps' force
//                                  passes over a refit (not rebuilt) octree
//
// For every eligible variant the fused kernel runs next to its sequential
// baseline -- the same constituents back to back under the same variant,
// counters summed -- and the sweep reports the merged-truncation visit
// savings, the visit / mem_stall cycle deltas, the shared-load elision
// count, and the byte-identity verdict (fused Result{a,b} must reproduce
// the solo results exactly; a mismatch fails the run). auto_select is
// skipped: it dispatches to one of the compositions already measured and
// would only add its sampling charge to the comparison. Ineligible
// variants (BH's fanout-8 octree cannot index_walk) appear as failed rows
// carrying the canonical kernel_variant_ineligible_reason string.
//
// --json emits the schema-v8 "fusion" block; tools/json_validate re-derives
// the fused-visits <= summed-constituent-visits invariant from it, and
// scripts/bench_snapshot.sh distills the run into BENCH_fusion.json.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_algos/bh/barnes_hut.h"
#include "bench_algos/pq/point_queries.h"
#include "bench_common.h"
#include "core/cpu_executors.h"
#include "core/gpu_executors.h"
#include "core/kernel_compose.h"
#include "data/generators.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"
#include "util/csv.h"

using namespace tt;

namespace {

TimeBreakdown sum_time(const TimeBreakdown& x, const TimeBreakdown& y) {
  TimeBreakdown t;
  t.compute_ms = x.compute_ms + y.compute_ms;
  t.memory_ms = x.memory_ms + y.memory_ms;
  t.total_ms = x.total_ms + y.total_ms;
  t.memory_bound = t.memory_ms > t.compute_ms;
  t.imbalance = std::max(x.imbalance, y.imbalance);
  return t;
}

// Fused Result{a,b} vs the solo results, byte-for-byte (the Result
// structs are padding-free and the fused finish memsets its slots).
template <class F, class RA, class RB>
bool byte_identical(const std::vector<F>& fused, const std::vector<RA>& a,
                    const std::vector<RB>& b) {
  if (fused.size() != a.size() || fused.size() != b.size()) return false;
  for (std::size_t i = 0; i < fused.size(); ++i) {
    if (std::memcmp(&fused[i].a, &a[i], sizeof(RA)) != 0) return false;
    if (std::memcmp(&fused[i].b, &b[i], sizeof(RB)) != 0) return false;
  }
  return true;
}

template <class A, class B>
obs::FusionPairReport measure_pair(const A& a, const B& b,
                                   const FusedKernel<A, B>& fused,
                                   GpuAddressSpace& space, const Cli& cli) {
  obs::FusionPairReport pr;
  pr.fused_name = FusedKernel<A, B>::kName;
  pr.first_name = A::kName;
  pr.second_name = B::kName;
  pr.n_points = fused.num_points();
  const DeviceConfig dev;
  for (Variant v : kAllVariants) {
    if (v == Variant::kAutoSelect) continue;
    if (!benchx::variant_enabled(cli, v)) continue;
    obs::FusionVariantRow row;
    row.variant = v;
    const std::string why = kernel_variant_ineligible_reason(fused, v);
    if (!why.empty()) {
      row.ok = false;
      row.error = why;
      pr.variants.push_back(row);
      continue;
    }
    const GpuMode mode = GpuMode::from(v);
    auto ga = run_gpu_sim(a, space, dev, mode);
    auto gb = run_gpu_sim(b, space, dev, mode);
    auto gf = run_gpu_sim(fused, space, dev, mode);
    row.fused = gf.stats;
    row.fused_time = gf.time;
    row.sequential = ga.stats;
    row.sequential.merge(gb.stats);
    row.sequential_time = sum_time(ga.time, gb.time);
    row.byte_identical = byte_identical(gf.results, ga.results, gb.results);
    pr.variants.push_back(row);
  }
  return pr;
}

void add_rows(Table& table, const obs::FusionPairReport& pr) {
  for (const obs::FusionVariantRow& r : pr.variants) {
    if (!r.ok) {
      table.add_row({pr.fused_name, variant_name(r.variant), "-", "-", "-",
                     "-", "-", "-", "-", "-", "ineligible"});
      continue;
    }
    const double seq_visits = static_cast<double>(r.sequential.lane_visits);
    const double saved_pct =
        seq_visits > 0
            ? 100.0 *
                  (seq_visits - static_cast<double>(r.fused.lane_visits)) /
                  seq_visits
            : 0;
    table.add_row({pr.fused_name, variant_name(r.variant),
                   std::to_string(r.fused.lane_visits),
                   std::to_string(r.sequential.lane_visits),
                   fmt_fixed(saved_pct, 1),
                   fmt_fixed(r.visit_cycles_saved(), 0),
                   fmt_fixed(r.mem_stall_cycles_saved(), 0),
                   std::to_string(r.fused.shared_loads_elided),
                   fmt_fixed(r.fused_time.total_ms, 3),
                   fmt_fixed(r.sequential_time.total_ms, 3),
                   r.byte_identical ? "yes" : "MISMATCH"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "fusion: fused traversal kernels (core/kernel_compose.h) against "
      "their sequential baselines -- per pair and per variant, the "
      "merged-truncation visit savings, visit / mem_stall cycle deltas, "
      "shared-load elision and the byte-identity verdict");
  benchx::add_common_flags(cli);
  return benchx::run_main(cli, argc, argv, "fusion", [&]() -> int {
    const std::uint64_t seed =
        static_cast<std::uint64_t>(cli.get_int("seed"));
    const std::size_t n_points =
        static_cast<std::size_t>(cli.get_int("points"));
    const std::size_t n_bodies =
        static_cast<std::size_t>(cli.get_int("bodies"));
    const int k = static_cast<int>(cli.get_int("k"));
    const float theta = static_cast<float>(cli.get_double("theta"));

    obs::FusionRunSummary summary;

    // Pair 1: k-NN + NN over one kd-tree, one rope walk.
    {
      PointSet pts = gen_covtype_like(n_points, 7, seed);
      KdTree tree = build_kdtree(pts, 8);
      GpuAddressSpace space;
      RopeKnnKernel knn(tree, pts, k, space);
      RopeNnKernel nn(tree, pts, space);
      auto fused = fuse(knn, nn);
      summary.pairs.push_back(measure_pair(knn, nn, fused, space, cli));
      std::cerr << "# measured " << summary.pairs.back().fused_name << "\n";
    }

    // Pair 2: consecutive BH timesteps' force passes; the second step's
    // octree is refit from the first (same partition, so the twin kernel
    // shares the child-index records and the fused walk elides the
    // duplicate loads).
    {
      BodySet bodies = gen_plummer(n_bodies, seed);
      Octree tree0 = build_octree(bodies.pos, bodies.mass);
      GpuAddressSpace space;
      BarnesHutKernel a(tree0, bodies.pos, theta, 1e-4f, space);
      auto forces = run_cpu(a, CpuVariant::kRecursive, 1).results;
      PointSet pos1 = bodies.pos;
      std::vector<float> vel = bodies.vel;
      bh_integrate(pos1, vel, forces, 0.0125f);
      Octree tree1 = tree0;
      refit_octree(tree1, pos1, bodies.mass);
      BarnesHutKernel b(tree1, pos1, theta, 1e-4f, space, a);
      auto fused = fuse(a, b);
      summary.pairs.push_back(measure_pair(a, b, fused, space, cli));
      std::cerr << "# measured " << summary.pairs.back().fused_name << "\n";
    }

    bool all_identical = true;
    for (const auto& pr : summary.pairs)
      for (const auto& r : pr.variants)
        if (r.ok && !r.byte_identical) all_identical = false;

    Table table({"Pair", "Variant", "FusedVisits", "SeqVisits", "Saved%",
                 "VisitCyclesSaved", "MemStallCyclesSaved", "ElidedLoads",
                 "FusedMs", "SeqMs", "Identical"});
    for (const auto& pr : summary.pairs) add_rows(table, pr);
    benchx::emit(table, cli.get_flag("csv"));

    obs::RunReport report = benchx::make_report(cli, "fusion");
    report.set_fusion(summary);
    report.add_table("fusion", table);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    if (!all_identical) {
      std::cerr << "fusion: fused results diverged from the sequential "
                   "baselines (see the Identical column)\n";
      return 2;
    }
    return 0;
  });
}
