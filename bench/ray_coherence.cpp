// Extension experiment: ray/BVH traversal (the paper's introductory
// graphics scenario) under coherent (camera) vs incoherent (random) rays.
// Coherence plays the role sorting plays for the point benchmarks: it is
// what makes lockstep ("packet") traversal profitable (cf. Gunther et al.,
// discussed in the paper's related work).
#include <iostream>

#include "bench_algos/ray/ray_bvh.h"
#include "bench_common.h"
#include "core/gpu_executors.h"
#include "util/csv.h"

using namespace tt;

int main(int argc, char** argv) {
  Cli cli("ray_coherence: lockstep vs non-lockstep for coherent and "
          "incoherent rays over a BVH");
  benchx::add_common_flags(cli);
  cli.add_int("tris", 8192, "triangles in the procedural scene");
  cli.add_int("rays", 16384, "rays to trace");
  return benchx::run_main(cli, argc, argv, "ray_coherence", [&]() -> int {
    TriangleMesh mesh = gen_triangle_scene(
        static_cast<std::size_t>(cli.get_int("tris")), 31);
    Bvh bvh = build_bvh(mesh, 4);
    const auto n_rays = static_cast<std::size_t>(cli.get_int("rays"));
    int side = 1;
    while (static_cast<std::size_t>(side) * side < n_rays) ++side;

    Table table({"Rays", "Type", "Time(ms)", "AvgNodes", "DRAM txn",
                 "ActiveLanes%"});
    DeviceConfig cfg;
    for (bool coherent : {true, false}) {
      auto rays = coherent
                      ? gen_camera_rays(side, side, {0.5f, 0.5f, -1.6f},
                                        {0.5f, 0.5f, 0.5f})
                      : gen_random_rays(
                            static_cast<std::size_t>(side) * side, 31);
      GpuAddressSpace space;
      RayBvhKernel k(bvh, mesh, rays, space);
      for (bool lockstep : {true, false}) {
        const Variant v = lockstep ? Variant::kAutoLockstep
                                   : Variant::kAutoNolockstep;
        if (!benchx::variant_enabled(cli, v)) continue;
        auto g = run_gpu_sim(k, space, cfg, GpuMode::from(v));
        table.add_row(
            {coherent ? "camera (coherent)" : "random (incoherent)",
             lockstep ? "L" : "N", fmt_fixed(g.time.total_ms, 3),
             fmt_fixed(g.avg_nodes(), 0),
             std::to_string(g.stats.dram_transactions),
             fmt_fixed(100.0 *
                           static_cast<double>(g.stats.active_lane_sum) /
                           (static_cast<double>(g.stats.warp_steps) * 32.0),
                       1)});
      }
    }
    benchx::emit(table, cli.get_flag("csv"));
    obs::RunReport report = benchx::make_report(cli, "ray_coherence");
    report.add_table("ray_coherence", table);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    return 0;
  });
}
