// Shared plumbing for the paper-experiment binaries: CLI -> BenchConfig,
// algorithm-list parsing, and cell-size defaults per benchmark.
#pragma once

#include <array>
#include <initializer_list>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_algos/harness.h"
#include "core/variant.h"
#include "obs/chrome_trace.h"
#include "obs/run_report.h"
#include "util/cli.h"
#include "util/csv.h"

namespace tt::benchx {

inline std::vector<Algo> parse_algos(const std::string& spec) {
  if (spec == "all")
    return {Algo::kBH, Algo::kPC, Algo::kKNN, Algo::kNN, Algo::kVP};
  std::vector<Algo> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    std::string tok = spec.substr(pos, comma == std::string::npos
                                           ? std::string::npos
                                           : comma - pos);
    if (tok == "bh")
      out.push_back(Algo::kBH);
    else if (tok == "pc")
      out.push_back(Algo::kPC);
    else if (tok == "knn")
      out.push_back(Algo::kKNN);
    else if (tok == "nn")
      out.push_back(Algo::kNN);
    else if (tok == "vp")
      out.push_back(Algo::kVP);
    else
      throw std::invalid_argument("unknown benchmark: " + tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

// The --variant spec as a VariantSet ("all" or a comma-separated list of
// canonical names; VariantSet::from_names rejects unknown spellings,
// listing the valid ones in its error).
inline VariantSet parse_variant_filter(const std::string& spec) {
  return VariantSet::from_names(spec);
}

// True when --variant enables `v`. Binaries with per-variant rows use this
// to skip rows; run_bench-based binaries inherit the filter through
// BenchConfig::variants instead (see config_from).
inline bool variant_enabled(const Cli& cli, Variant v) {
  return parse_variant_filter(cli.get_string("variant")).contains(v);
}

// For experiments whose measurement inherently compares specific variants:
// validates the filter spelling and rejects a filter that excludes any of
// the variants the experiment cannot do without.
inline void require_variants(const Cli& cli,
                             std::initializer_list<Variant> needed) {
  for (Variant v : needed)
    if (!variant_enabled(cli, v))
      throw std::invalid_argument(
          std::string("this experiment compares across variants and needs ") +
          variant_name(v) + "; relax the --variant filter");
}

inline void add_common_flags(Cli& cli) {
  cli.add_string("benchmarks", "all",
                 "comma-separated subset of bh,pc,knn,nn,vp");
  cli.add_string("variant", "all",
                 "comma-separated GPU variants to simulate "
                 "(auto_lockstep,auto_nolockstep,rec_lockstep,"
                 "rec_nolockstep,auto_select,stackless_lockstep,"
                 "stackless_nolockstep,index_walk); excluded variants are "
                 "skipped");
  cli.add_int("points", 8192, "points per tree-benchmark input");
  cli.add_int("bodies", 16384, "bodies for Barnes-Hut");
  cli.add_int("seed", 42, "master RNG seed");
  cli.add_int("k", 8, "k for k-nearest-neighbor");
  cli.add_double("pc-neighbors", 32.0,
                 "target mean matches per query for the PC radius");
  cli.add_double("theta", 0.5, "Barnes-Hut opening angle");
  cli.add_int("bh-steps", 1,
              "Barnes-Hut timesteps (the paper integrates 5)");
  cli.add_flag("verify", false,
               "cross-check all variants' results agree (slower)");
  cli.add_int("profile-samples", 32,
              "auto_select: adjacent traversal pairs the section-4.4 "
              "sampler draws per launch (must be >= 1)");
  cli.add_int("profile-seed", 1,
              "auto_select: deterministic seed for the sampler");
  cli.add_flag("csv", false, "emit CSV instead of an aligned table");
  cli.add_flag("profile", false,
               "collect the cycle-attribution profiler (per-layer bucket "
               "split, divergence histogram, hot nodes) and embed it in "
               "the --json report's \"profile\" blocks");
  cli.add_string("chrome-trace", "",
                 "write every GPU launch's per-warp event stream as Chrome "
                 "trace-event JSON to this path (load in Perfetto / "
                 "chrome://tracing; one process track per launch)");
  cli.add_string("json", "",
                 "also write a treetrav.run_report JSON file to this path");
  cli.add_flag("json-volatile", false,
               "include measured wall-clock values in the --json report "
               "(breaks byte-identical output across runs)");
}

// RunReport pre-wired from the common flags: seed, volatile toggle and the
// device model every harness runs with (BenchConfig's default DeviceConfig).
inline obs::RunReport make_report(const Cli& cli,
                                  const std::string& generator) {
  obs::RunReport report(generator);
  report.set_seed(static_cast<std::uint64_t>(cli.get_int("seed")));
  report.set_include_volatile(cli.get_flag("json-volatile"));
  // --profile also unlocks the schema-v9 per-buffer "memory" attribution
  // blocks (attribution is always collected; export is opt-in).
  report.set_include_memory(cli.get_flag("profile"));
  report.set_device(DeviceConfig{});
  return report;
}

// The collector behind --chrome-trace: owns an obs::ChromeTraceCollector
// when the flag carries a path, a null collector() otherwise -- so harness
// wiring (BenchConfig::chrome = tracer.collector()) is unconditional.
class ChromeTrace {
 public:
  explicit ChromeTrace(const Cli& cli)
      : path_(cli.get_string("chrome-trace")),
        collector_(path_.empty()
                       ? nullptr
                       : std::make_unique<obs::ChromeTraceCollector>()) {}

  [[nodiscard]] obs::ChromeTraceCollector* collector() const {
    return collector_.get();
  }

  // Writes the merged trace when --chrome-trace=<path> was given. Returns
  // false (after printing the reason to stderr) on I/O failure.
  [[nodiscard]] bool write() const {
    if (!collector_) return true;
    std::string err;
    if (!collector_->write_file(path_, &err)) {
      std::cerr << "chrome trace: " << err << "\n";
      return false;
    }
    std::cerr << "# wrote " << path_ << " (" << collector_->total_events()
              << " trace events, " << collector_->n_launches()
              << " launches)\n";
    return true;
  }

 private:
  std::string path_;
  std::unique_ptr<obs::ChromeTraceCollector> collector_;
};

// Writes the report when --json=<path> was given. Returns false (after
// printing the reason to stderr) on I/O failure so main can exit nonzero.
inline bool maybe_write_report(const Cli& cli, const obs::RunReport& report) {
  const std::string& path = cli.get_string("json");
  if (path.empty()) return true;
  std::string err;
  if (!report.write_file(path, &err)) {
    std::cerr << "json report: " << err << "\n";
    return false;
  }
  std::cerr << "# wrote " << path << "\n";
  return true;
}

inline BenchConfig config_from(const Cli& cli, Algo a, InputKind in,
                               bool sorted,
                               obs::ChromeTraceCollector* chrome = nullptr) {
  BenchConfig c;
  c.algo = a;
  c.input = in;
  c.n = static_cast<std::size_t>(a == Algo::kBH ? cli.get_int("bodies")
                                                : cli.get_int("points"));
  c.sorted = sorted;
  c.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  c.k = static_cast<int>(cli.get_int("k"));
  c.pc_target_neighbors = cli.get_double("pc-neighbors");
  c.bh_theta = static_cast<float>(cli.get_double("theta"));
  c.bh_timesteps = static_cast<int>(cli.get_int("bh-steps"));
  c.verify = cli.get_flag("verify");
  const long long samples = cli.get_int("profile-samples");
  if (samples <= 0)
    throw std::invalid_argument(
        "--profile-samples must be >= 1: the auto_select sampler needs at "
        "least one traversal pair to decide a dispatch");
  c.profile_samples = static_cast<std::size_t>(samples);
  c.profile_seed = static_cast<std::uint64_t>(cli.get_int("profile-seed"));
  c.variants = parse_variant_filter(cli.get_string("variant"));
  c.profile = cli.get_flag("profile");
  c.chrome = chrome;
  return c;
}

inline void emit(const Table& table, bool csv) {
  if (csv)
    table.write_csv(std::cout);
  else
    table.write_aligned(std::cout);
}

// Shared main() scaffold: parse the flags (returning 0 when --help printed
// usage), run `body`, and report any exception as "<name>: <what>" with
// exit code 1. One copy of the parse + try/catch every experiment binary
// used to hand-roll; unknown flags self-diagnose through Cli's
// list-the-valid-flags error.
template <class Body>
int run_main(Cli& cli, int argc, const char* const* argv,
             const std::string& name, Body&& body) {
  try {
    if (!cli.parse(argc, argv)) return 0;
    return body();
  } catch (const std::exception& e) {
    std::cerr << name << ": " << e.what() << "\n";
    return 1;
  }
}

}  // namespace tt::benchx
