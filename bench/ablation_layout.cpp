// Ablation of the section-5.2 storage design choices:
//
//  (a) interleaved vs contiguous per-thread rope stacks (non-lockstep):
//      the paper interleaves so that lanes at the same level hit the same
//      128-byte segment; a contiguous per-lane layout destroys that.
//  (b) shared-memory vs global-memory per-warp stack (lockstep): the paper
//      stores the warp stack in shared memory ("use shared memory to
//      maintain the rope stack once per warp").
//
// Reported: modelled time and DRAM transactions per configuration.
#include <iostream>

#include "bench_algos/pc/point_correlation.h"
#include "bench_common.h"
#include "core/gpu_executors.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"
#include "util/csv.h"

using namespace tt;

int main(int argc, char** argv) {
  Cli cli("ablation_layout: stack-layout design choices of section 5.2");
  benchx::add_common_flags(cli);
  return benchx::run_main(cli, argc, argv, "ablation_layout", [&]() -> int {
    Table table({"Order", "Variant", "Stack", "Time(ms)", "DRAM txn",
                 "L2 hits"});
    const auto n = static_cast<std::size_t>(cli.get_int("points"));
    for (bool sorted : {true, false}) {
      PointSet pts = gen_covtype_like(n, 7, 42);
      auto perm = sorted ? tree_order(pts, 8) : shuffled_order(n, 42);
      pts.permute(perm);
      KdTree tree = build_kdtree(pts, 8);
      float r = pc_pick_radius(pts, cli.get_double("pc-neighbors"), 42);
      GpuAddressSpace space;
      PointCorrelationKernel k(tree, pts, r, space);
      DeviceConfig cfg;

      struct Cfg {
        const char* variant;
        const char* stack;
        GpuMode mode;
      };
      GpuMode contiguous = GpuMode::from(Variant::kAutoNolockstep);
      contiguous.contiguous_stack = true;
      GpuMode global_stack = GpuMode::from(Variant::kAutoLockstep);
      global_stack.lockstep_stack_global = true;
      GpuMode grid_stride = GpuMode::from(Variant::kAutoLockstep);
      grid_stride.grid_limit = 112;  // 14 SMs x 8 warps: Figure 9b's loop
      const Cfg cfgs[] = {
          {"autoropes-N", "interleaved", GpuMode::from(Variant::kAutoNolockstep)},
          {"autoropes-N", "contiguous", contiguous},
          {"autoropes-L", "shared-mem", GpuMode::from(Variant::kAutoLockstep)},
          {"autoropes-L", "global", global_stack},
          {"autoropes-L", "grid-stride", grid_stride},
      };
      for (const Cfg& c : cfgs) {
        if (!benchx::variant_enabled(cli, c.mode.variant())) continue;
        auto g = run_gpu_sim(k, space, cfg, c.mode);
        table.add_row({sorted ? "sorted" : "unsorted", c.variant, c.stack,
                       fmt_fixed(g.time.total_ms, 3),
                       std::to_string(g.stats.dram_transactions),
                       std::to_string(g.stats.l2_hit_transactions)});
      }
    }
    benchx::emit(table, cli.get_flag("csv"));
    obs::RunReport report = benchx::make_report(cli, "ablation_layout");
    report.add_table("ablation_layout", table);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    return 0;
  });
}
