// Figures 10 and 11 reproduction: CPU performance relative to the GPU
// (GPU == 1.0) as the CPU thread count sweeps 1..32, for the lockstep and
// non-lockstep variants of every benchmark/input pair.
//
// Figure 10 is the sorted sweep, Figure 11 the unsorted one; select with
// --sorted / --no-sorted (default runs both). The CPU curve is anchored on
// the real measured single-thread time and extended with the documented
// near-linear scaling model (src/cpu/scaling_model.h); values > 1 mean the
// CPU outperforms the simulated GPU at that thread count.
#include <iostream>

#include "bench_common.h"
#include "util/csv.h"

using namespace tt;

namespace {

const std::vector<int> kThreads{1, 2, 4, 8, 12, 16, 20, 24, 32};

void sweep_rows(Table& table, const BenchRow& row) {
  for (bool lockstep : {true, false}) {
    if (!row.result(lockstep ? Variant::kAutoLockstep
                             : Variant::kAutoNolockstep)
             .ok())
      continue;  // failed or excluded by --variant
    auto sweep = cpu_sweep(row, lockstep, kThreads);
    std::vector<std::string> cells{
        algo_name(row.config.algo), input_name(row.config.input),
        row.config.sorted ? "sorted" : "unsorted", lockstep ? "L" : "N"};
    for (const CpuSweepPoint& p : sweep)
      cells.push_back(fmt_fixed(p.ratio_vs_gpu, 3));
    table.add_row(std::move(cells));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "fig10_cpu_scaling: paper Figures 10 (sorted) and 11 (unsorted) -- "
      "CPU-vs-GPU performance ratio per CPU thread count");
  benchx::add_common_flags(cli);
  cli.add_flag("sorted", true, "run the sorted sweep (Figure 10)");
  cli.add_flag("unsorted", true, "run the unsorted sweep (Figure 11)");
  return benchx::run_main(cli, argc, argv, "fig10_cpu_scaling", [&]() -> int {
    benchx::ChromeTrace chrome(cli);
    std::vector<std::string> header{"Benchmark", "Input", "Order", "Type"};
    for (int t : kThreads) header.push_back("T" + std::to_string(t));
    Table table(header);
    obs::RunReport report = benchx::make_report(cli, "fig10_cpu_scaling");
    for (Algo a : benchx::parse_algos(cli.get_string("benchmarks")))
      for (InputKind in : inputs_for(a))
        for (bool sorted : {true, false}) {
          if (sorted && !cli.get_flag("sorted")) continue;
          if (!sorted && !cli.get_flag("unsorted")) continue;
          BenchRow row = run_bench(
              benchx::config_from(cli, a, in, sorted, chrome.collector()));
          report.add_row(row);
          sweep_rows(table, row);
          std::cerr << "# done " << algo_name(a) << "/" << input_name(in)
                    << (sorted ? " sorted" : " unsorted") << "\n";
        }
    benchx::emit(table, cli.get_flag("csv"));
    report.add_table("fig10_cpu_scaling", table, /*volatile_data=*/true);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    if (!chrome.write()) return 1;
    std::cerr << "# ratio > 1: CPU faster than GPU at that thread count\n";
    return 0;
  });
}
