// Table 1 reproduction: performance summary of the transformed traversals.
//
// For every benchmark x input x {sorted, unsorted} x {lockstep (L),
// non-lockstep (N)} this prints: modelled GPU traversal time, average
// nodes visited per point (per warp for L), speedup vs the 1-thread and
// modelled 32-thread CPU runs, and the improvement of the autoropes GPU
// variant over the equivalent naive recursive GPU variant -- the same
// columns as the paper's Table 1.
//
// Absolute times come from the SIMT machine's cost model (DESIGN.md
// section 2), so only ratios and orderings are comparable to the paper.
#include <iostream>

#include "bench_common.h"
#include "util/csv.h"

using namespace tt;

namespace {

void add_rows(Table& table, const BenchRow& row) {
  auto variant_row = [&](bool lockstep) {
    const VariantResult& v = row.result(lockstep ? Variant::kAutoLockstep
                                                 : Variant::kAutoNolockstep);
    if (!v.ok()) {
      const bool skipped = v.error.rfind("skipped", 0) == 0;
      if (skipped) return;  // --variant filtered this row out entirely
      table.add_row({
          algo_name(row.config.algo),
          input_name(row.config.input),
          row.config.sorted ? "sorted" : "unsorted",
          lockstep ? "L" : "N",
          "FAILED", "-", "-", "-", "-", "-",
      });
      return;
    }
    // vsRecurse needs the matching recursive variant; it may have failed
    // or been excluded by --variant.
    const VariantResult& rec = row.result(lockstep ? Variant::kRecLockstep
                                                   : Variant::kRecNolockstep);
    table.add_row({
        algo_name(row.config.algo),
        input_name(row.config.input),
        row.config.sorted ? "sorted" : "unsorted",
        lockstep ? "L" : "N",
        fmt_fixed(v.time_ms, 3),
        fmt_fixed(v.avg_nodes, 0),
        fmt_fixed(row.speedup_vs_1(v), 2),
        fmt_fixed(row.speedup_vs_32(v), 2),
        rec.ok() ? fmt_percent(row.improvement_vs_recursive(lockstep)) : "-",
        fmt_fixed(row.transfer_ms(), 3),
    });
  };
  variant_row(true);
  variant_row(false);

  // auto_select (section 4.4): Type shows the launch decision -- "A[L]"
  // when the sampler dispatched to lockstep, "A[N]" for non-lockstep --
  // and Time(ms) includes the charged sampling cost, so this row being
  // close to the better of L/N *is* the claim the variant makes.
  const VariantResult& av = row.result(Variant::kAutoSelect);
  if (!av.ok()) {
    if (av.error.rfind("skipped", 0) == 0) return;
    table.add_row({
        algo_name(row.config.algo),
        input_name(row.config.input),
        row.config.sorted ? "sorted" : "unsorted",
        "A[?]",
        "FAILED", "-", "-", "-", "-", "-",
    });
    return;
  }
  const bool chose_lockstep =
      av.selection && av.selection->chosen == Variant::kAutoLockstep;
  const VariantResult& rec = row.result(
      chose_lockstep ? Variant::kRecLockstep : Variant::kRecNolockstep);
  table.add_row({
      algo_name(row.config.algo),
      input_name(row.config.input),
      row.config.sorted ? "sorted" : "unsorted",
      chose_lockstep ? "A[L]" : "A[N]",
      fmt_fixed(av.time_ms, 3),
      fmt_fixed(av.avg_nodes, 0),
      fmt_fixed(row.speedup_vs_1(av), 2),
      fmt_fixed(row.speedup_vs_32(av), 2),
      rec.ok() ? fmt_percent(rec.time_ms / av.time_ms - 1.0) : "-",
      fmt_fixed(row.transfer_ms(), 3),
  });
}

// --batch: the selected benchmarks (first input of each, sorted) as ONE
// batched launch through the closed-batch mode of core/serving.h's
// session API (harness run_batch). Per-kernel numbers are
// byte-identical to the solo rows; what changes is the launch/transfer
// accounting, which the summary lines below the table report.
int run_batched(const Cli& cli, obs::RunReport& report,
                const benchx::ChromeTrace& chrome) {
  BatchConfig bc;
  bc.variant = variant_from_name(cli.get_string("batch-variant"));
  bc.policy = batch_policy_from_name(cli.get_string("batch-policy"));
  const long long grid_limit = cli.get_int("batch-grid-limit");
  if (grid_limit < 0)
    throw std::invalid_argument("--batch-grid-limit must be >= 0");
  bc.grid_limit = static_cast<std::size_t>(grid_limit);
  bc.profile = cli.get_flag("profile");
  bc.chrome = chrome.collector();
  for (Algo a : benchx::parse_algos(cli.get_string("benchmarks")))
    bc.items.push_back(
        benchx::config_from(cli, a, inputs_for(a).front(), /*sorted=*/true));

  BatchResult b = run_batch(bc);
  report.set_batch(b);

  Table table({"Kernel", "Benchmark", "Input", "Type", "Time(ms)", "AvgNodes",
               "SoloXfer(ms)"});
  for (const BatchKernelRow& k : b.kernels) {
    if (!k.result.ok()) {
      table.add_row({k.kernel_name, algo_name(k.config.algo),
                     input_name(k.config.input), "-", "FAILED", "-", "-"});
      continue;
    }
    std::string type = variant_name(bc.variant);
    if (k.result.selection)
      type = k.result.selection->chosen == Variant::kAutoLockstep ? "A[L]"
                                                                  : "A[N]";
    table.add_row({
        k.kernel_name,
        algo_name(k.config.algo),
        input_name(k.config.input),
        type,
        fmt_fixed(k.result.time_ms, 3),
        fmt_fixed(k.avg_nodes, 0),
        fmt_fixed(k.solo_transfer_ms(b.transfer), 3),
    });
  }
  benchx::emit(table, cli.get_flag("csv"));
  report.add_table("table1_batch", table);

  std::cerr << "# batch: " << b.kernels.size() << " kernels, policy "
            << batch_policy_name(b.policy) << ", residency " << b.residency
            << ", " << b.total_chunks << " chunks over " << b.rounds
            << " rounds (" << b.switches << " kernel switches)\n"
            << "# transfer: amortized " << fmt_fixed(b.amortized_transfer_ms(), 3)
            << " ms vs summed solo " << fmt_fixed(b.summed_solo_transfer_ms(), 3)
            << " ms\n";

  int failed = 0;
  for (const BatchKernelRow& k : b.kernels)
    if (!k.result.ok()) {
      std::cerr << "# batch kernel failed: " << k.result.error << "\n";
      ++failed;
    }

  if (cli.get_int("devices") < 1)
    throw std::invalid_argument("--devices must be >= 1");
  if (cli.get_int("shard-chunk") < 1)
    throw std::invalid_argument("--shard-chunk must be >= 1");
  if (cli.get_int("devices") > 1) {
    // Re-run the same items sharded across the device group; the merged
    // results are byte-identical to the batch by the sharding contract,
    // so this only adds the multi-device makespan accounting.
    ShardingConfig sc;
    sc.items = bc.items;
    sc.variant = bc.variant;
    sc.policy = bc.policy;
    sc.devices = static_cast<std::size_t>(cli.get_int("devices"));
    sc.chunk_points = static_cast<std::size_t>(cli.get_int("shard-chunk"));
    sc.grid_limit = bc.grid_limit;
    ShardingRunSummary sharded = run_sharding(sc);
    for (const ShardingKernelReport& k : sharded.kernels)
      if (!k.ok()) {
        std::cerr << "# sharded kernel failed: " << k.error << "\n";
        ++failed;
      }
    std::cerr << "# sharded: " << sharded.devices << " devices, solo "
              << fmt_fixed(sharded.single_device_ms(), 3)
              << " ms -> makespan " << fmt_fixed(sharded.makespan_ms(), 3)
              << " ms (" << fmt_fixed(sharded.speedup(), 2) << "x)\n";
    report.set_sharding(sharded);
  }

  if (!benchx::maybe_write_report(cli, report)) return 1;
  if (!chrome.write()) return 1;
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "table1: paper Table 1 -- per-variant traversal time, avg nodes, "
      "speedups vs CPU, improvement vs recursive GPU");
  benchx::add_common_flags(cli);
  cli.add_flag("batch", false,
               "run the selected benchmarks (first input, sorted) as one "
               "batched multi-kernel launch instead of the per-row grid");
  cli.add_string("batch-policy", "round_robin",
                 "batch chunk interleaving: round_robin or sequential "
                 "(accounting only; results are identical)");
  cli.add_string("batch-variant", "auto_select",
                 "the composition every batched launch simulates");
  cli.add_int("batch-grid-limit", 0,
              "Figure 9b strip-mining limit per launch (0 = no limit)");
  cli.add_int("devices", 1,
              "--batch only: also shard each batched kernel across this "
              "many simulated devices (core/device_group.h) and embed the "
              "schema-v6 \"devices\" block in the --json report");
  cli.add_int("shard-chunk", 1024,
              "--batch only: points per pipelined upload chunk for the "
              "--devices sharded run");
  return benchx::run_main(cli, argc, argv, "table1", [&]() -> int {
    benchx::ChromeTrace chrome(cli);
    if (cli.get_flag("batch")) {
      obs::RunReport report = benchx::make_report(cli, "table1");
      return run_batched(cli, report, chrome);
    }
    Table table({"Benchmark", "Input", "Order", "Type", "Time(ms)",
                 "AvgNodes", "vs1T", "vs32T", "vsRecurse", "Xfer(ms)"});
    obs::RunReport report = benchx::make_report(cli, "table1");
    for (Algo a : benchx::parse_algos(cli.get_string("benchmarks"))) {
      auto analysis = analysis_for(a);
      std::cerr << "# " << algo_name(a) << ": "
                << analysis.call_sets.size() << " call set(s), "
                << (analysis.cls == ir::TraversalClass::kUnguided ? "unguided"
                                                                  : "guided")
                << "\n";
      for (InputKind in : inputs_for(a))
        for (bool sorted : {true, false}) {
          BenchRow row = run_bench(
              benchx::config_from(cli, a, in, sorted, chrome.collector()));
          add_rows(table, row);
          report.add_row(row);
          std::cerr << "# done " << algo_name(a) << "/" << input_name(in)
                    << (sorted ? " sorted" : " unsorted")
                    << " (cpu t1 " << fmt_fixed(row.cpu_t1_ms, 1)
                    << " ms)\n";
        }
    }
    benchx::emit(table, cli.get_flag("csv"));
    report.add_table("table1", table, /*volatile_data=*/true);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    if (!chrome.write()) return 1;
    return 0;
  });
}
