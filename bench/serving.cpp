// Serving harness: open-loop traffic over the admission--dispatch layer
// (core/serving.h). Queries drawn from a pool of prepared benchmark
// kernels arrive on a Poisson or bursty (on-off) trace and are admitted
// into a ServingSession, which drains them in waves on the configured
// cadence. Reported: throughput, p50/p95/p99 modelled latency,
// queue-depth / occupancy telemetry, per-drain records, and the
// drain-cadence sweep showing the batching-delay vs transfer-amortization
// trade-off. All times are modelled milliseconds, so the whole report is
// deterministic for a given seed (and byte-identical across
// OMP_NUM_THREADS settings).
//
// Identical resubmissions of a (kernel, mode) pair replay the first
// execution's measurements -- exact, because batching is results-neutral
// -- so traces with millions of queries cost O(pool size) simulations.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/serving.h"
#include "util/csv.h"
#include "util/rng.h"

using namespace tt;

namespace {

struct PoolEntry {
  BenchConfig config;
  std::unique_ptr<PreparedKernel> kernel;
};

// Mean solo service time (one amortized round trip + modelled compute) of
// the pool -- the capacity estimate behind --rate-qps=0's auto rate.
double probe_mean_service_ms(const std::vector<PoolEntry>& pool,
                             const DeviceConfig& device,
                             const TransferModel& transfer,
                             const GpuMode& mode) {
  std::vector<LaunchSpec> specs;
  specs.reserve(pool.size());
  for (const PoolEntry& e : pool) {
    LaunchSpec s;
    s.kernel = e.kernel->handle;
    s.space = &e.kernel->space;
    s.mode = mode;
    specs.push_back(s);
  }
  const LaunchPool probe = run_launch_pool(specs, device);
  double sum = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const LaunchResult& r = probe.launches[i];
    sum += (r.ok() ? r.time.total_ms : 0.0) +
           transfer.round_trip_ms(pool[i].kernel->upload_bytes,
                                  pool[i].kernel->download_bytes, 1);
  }
  return sum / static_cast<double>(pool.size());
}

// One full session over the fixed (trace, pick) sequence; `chrome` only on
// the headline run so sweep points don't pollute the trace file.
ServingReport run_session(const std::vector<PoolEntry>& pool,
                          const std::vector<double>& trace,
                          const std::vector<std::size_t>& picks,
                          const ServingConfig& cfg, const GpuMode& mode) {
  ServingSession session(cfg);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const PoolEntry& e = pool[picks[i]];
    QuerySet q;
    q.spec.kernel = e.kernel->handle;
    q.spec.space = &e.kernel->space;
    q.spec.mode = mode;
    q.upload_bytes = e.kernel->upload_bytes;
    q.download_bytes = e.kernel->download_bytes;
    session.submit(std::move(q), trace[i]);
  }
  session.flush();
  return session.report();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "serving: open-loop arrival traffic through the ServingSession "
      "admission layer -- throughput, p50/p95/p99 modelled latency, queue "
      "telemetry, and the drain-cadence sweep");
  benchx::add_common_flags(cli);
  cli.add_int("queries", 512, "queries to submit");
  cli.add_string("arrivals", "poisson",
                 "arrival process: poisson or bursty (on-off modulated)");
  cli.add_double("rate-qps", 0.0,
                 "mean arrival rate in queries per modelled second "
                 "(0 = auto: --utilization of the probed pool capacity)");
  cli.add_double("utilization", 0.7,
                 "auto-rate target: fraction of the pool's probed solo "
                 "service capacity");
  cli.add_double("burst-on-ms", 2.0, "bursty: ON-window length");
  cli.add_double("burst-off-ms", 2.0, "bursty: silent gap between windows");
  cli.add_double("burst-factor", 4.0,
                 "bursty: ON-window rate as a multiple of the mean rate "
                 "(duty-cycle corrected)");
  cli.add_int("drain-max-batch", 8,
              "admission wave size that triggers an immediate drain");
  cli.add_double("drain-max-delay-ms", 0.25,
                 "longest a pending query may wait before its wave drains");
  cli.add_int("queue-capacity", 4096,
              "ring-buffer admission queue capacity (full = drop)");
  cli.add_int("devices", 1,
              "simulated device count; each wave dispatches to the "
              "least-loaded device (1 = the single-device model)");
  cli.add_int("shard-chunk", 0,
              "points per pipelined upload chunk: each wave's copy-in "
              "overlaps its compute and only the exposed portion is "
              "charged (0 = synchronous single-shot round trip)");
  cli.add_string("batch-policy", "round_robin",
                 "wave chunk interleaving: round_robin or sequential");
  cli.add_string("serve-variant", "auto_select",
                 "the composition every served launch simulates");
  cli.add_flag("sweep", true,
               "also sweep the drain cadence (--no-sweep to skip)");

  return benchx::run_main(cli, argc, argv, "serving", [&]() -> int {
    benchx::ChromeTrace chrome(cli);
    const auto n_queries = static_cast<std::size_t>(cli.get_int("queries"));
    if (cli.get_int("queries") <= 0)
      throw std::invalid_argument("--queries must be >= 1");
    const std::string arrivals = cli.get_string("arrivals");
    if (arrivals != "poisson" && arrivals != "bursty")
      throw std::invalid_argument("--arrivals must be poisson or bursty");
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

    // The query pool: one prepared kernel per selected benchmark (first
    // input of each, sorted) -- the same cells table1 --batch runs.
    std::vector<PoolEntry> pool;
    for (Algo a : benchx::parse_algos(cli.get_string("benchmarks"))) {
      PoolEntry e;
      e.config =
          benchx::config_from(cli, a, inputs_for(a).front(), /*sorted=*/true);
      e.kernel = prepare_kernel(e.config);
      pool.push_back(std::move(e));
    }

    GpuMode mode = GpuMode::from(variant_from_name(
        cli.get_string("serve-variant")));
    mode.profile_samples = pool.front().config.profile_samples;
    mode.profile_seed = pool.front().config.profile_seed;

    const DeviceConfig device;
    const TransferModel transfer;

    double rate_qps = cli.get_double("rate-qps");
    if (rate_qps <= 0) {
      const double mean_ms =
          probe_mean_service_ms(pool, device, transfer, mode);
      rate_qps = cli.get_double("utilization") * 1e3 / mean_ms;
      std::cerr << "# auto rate: pool mean service "
                << fmt_fixed(mean_ms, 3) << " ms -> "
                << fmt_fixed(rate_qps, 1) << " qps at utilization "
                << fmt_fixed(cli.get_double("utilization"), 2) << "\n";
    }

    // Arrival trace + per-query pool picks, fixed once so the headline
    // session and every sweep point serve the identical workload.
    std::vector<double> trace;
    if (arrivals == "poisson") {
      trace = poisson_trace(n_queries, rate_qps, seed);
    } else {
      const double on_ms = cli.get_double("burst-on-ms");
      const double off_ms = cli.get_double("burst-off-ms");
      const double factor = cli.get_double("burst-factor");
      // ON-rate such that the duty-cycle-weighted mean stays rate_qps
      // when factor == (on+off)/on; larger factors burst harder.
      trace = bursty_trace(n_queries, rate_qps * factor, on_ms, off_ms, seed);
    }
    std::vector<std::size_t> picks(n_queries);
    Pcg32 pick_rng(seed, 0x9015e7);
    for (std::size_t i = 0; i < n_queries; ++i)
      picks[i] = pick_rng.next_below(static_cast<std::uint32_t>(pool.size()));

    ServingConfig scfg;
    scfg.device = device;
    scfg.transfer = transfer;
    scfg.policy = batch_policy_from_name(cli.get_string("batch-policy"));
    const long long max_batch = cli.get_int("drain-max-batch");
    if (max_batch <= 0)
      throw std::invalid_argument("--drain-max-batch must be >= 1");
    scfg.drain.max_batch = static_cast<std::size_t>(max_batch);
    scfg.drain.max_delay_ms = cli.get_double("drain-max-delay-ms");
    if (scfg.drain.max_delay_ms < 0)
      throw std::invalid_argument("--drain-max-delay-ms must be >= 0");
    const long long capacity = cli.get_int("queue-capacity");
    if (capacity <= 0)
      throw std::invalid_argument("--queue-capacity must be >= 1");
    scfg.queue_capacity = static_cast<std::size_t>(capacity);
    if (cli.get_int("devices") <= 0)
      throw std::invalid_argument("--devices must be >= 1");
    scfg.devices = static_cast<std::size_t>(cli.get_int("devices"));
    if (cli.get_int("shard-chunk") < 0)
      throw std::invalid_argument("--shard-chunk must be >= 0");
    scfg.shard_chunk = static_cast<std::size_t>(cli.get_int("shard-chunk"));
    scfg.chrome = chrome.collector();

    ServingRunSummary summary;
    summary.arrivals = arrivals;
    summary.rate_qps = rate_qps;
    summary.n_queries = n_queries;
    summary.devices = scfg.devices;
    summary.shard_chunk = scfg.shard_chunk;
    summary.drain = scfg.drain;
    summary.policy = scfg.policy;
    summary.variant = mode.variant();
    summary.queue_capacity = scfg.queue_capacity;
    summary.transfer = transfer;
    summary.report = run_session(pool, trace, picks, scfg, mode);
    const ServingReport& r = summary.report;

    Table head({"Metric", "Value"});
    head.add_row({"queries", std::to_string(r.submitted)});
    head.add_row({"completed", std::to_string(r.completed)});
    head.add_row({"dropped", std::to_string(r.dropped)});
    head.add_row({"failed", std::to_string(r.failed)});
    head.add_row({"drains", std::to_string(r.drains.size())});
    head.add_row({"devices", std::to_string(r.devices)});
    head.add_row({"throughput (qps)", fmt_fixed(r.throughput_qps(), 1)});
    head.add_row({"occupancy", fmt_fixed(r.occupancy(), 3)});
    head.add_row({"latency p50 (ms)", fmt_fixed(r.latency.p50, 3)});
    head.add_row({"latency p95 (ms)", fmt_fixed(r.latency.p95, 3)});
    head.add_row({"latency p99 (ms)", fmt_fixed(r.latency.p99, 3)});
    head.add_row({"queue delay p50 (ms)", fmt_fixed(r.queue_delay.p50, 3)});
    head.add_row({"queue depth max", std::to_string(r.queue_depth_max)});
    head.add_row({"queue depth mean", fmt_fixed(r.queue_depth.mean, 2)});
    head.add_row(
        {"transfer amortized (ms)", fmt_fixed(r.amortized_transfer_ms(), 3)});
    head.add_row({"transfer summed solo (ms)",
                  fmt_fixed(r.summed_solo_transfer_ms(), 3)});
    benchx::emit(head, cli.get_flag("csv"));

    Table pool_table(
        {"Kernel", "Benchmark", "Input", "Points", "Upload(B)",
         "Download(B)"});
    for (const PoolEntry& e : pool)
      pool_table.add_row({e.kernel->handle->name(), algo_name(e.config.algo),
                          input_name(e.config.input),
                          std::to_string(e.config.n),
                          std::to_string(e.kernel->upload_bytes),
                          std::to_string(e.kernel->download_bytes)});

    std::cerr << "# serving: " << arrivals << " arrivals at "
              << fmt_fixed(rate_qps, 1) << " qps, " << r.drains.size()
              << " drains, throughput " << fmt_fixed(r.throughput_qps(), 1)
              << " qps, p50/p95/p99 " << fmt_fixed(r.latency.p50, 3) << "/"
              << fmt_fixed(r.latency.p95, 3) << "/"
              << fmt_fixed(r.latency.p99, 3) << " ms\n";

    if (cli.get_flag("sweep")) {
      // The drain-cadence trade-off: longer max-delay forms bigger waves
      // (fewer launch overheads, more transfer saved) at the price of
      // queueing latency. Identical workload at every point.
      Table sweep_table({"MaxDelay(ms)", "Drains", "MeanBatch", "p50(ms)",
                         "p95(ms)", "p99(ms)", "Thru(qps)",
                         "XferSaved(ms)"});
      for (double delay_ms : {0.0, 0.1, 0.25, 0.5, 1.0, 2.0}) {
        ServingConfig sc = scfg;
        sc.chrome = nullptr;
        sc.drain.max_delay_ms = delay_ms;
        const ServingReport sr = run_session(pool, trace, picks, sc, mode);
        ServingSweepPoint p;
        p.max_delay_ms = delay_ms;
        p.max_batch = sc.drain.max_batch;
        p.drains = sr.drains.size();
        p.mean_batch = sr.drains.empty()
                           ? 0
                           : static_cast<double>(sr.completed) /
                                 static_cast<double>(sr.drains.size());
        p.p50_ms = sr.latency.p50;
        p.p95_ms = sr.latency.p95;
        p.p99_ms = sr.latency.p99;
        p.throughput_qps = sr.throughput_qps();
        p.transfer_saved_ms =
            sr.summed_solo_transfer_ms() - sr.amortized_transfer_ms();
        summary.sweep.push_back(p);
        sweep_table.add_row(
            {fmt_fixed(p.max_delay_ms, 2), std::to_string(p.drains),
             fmt_fixed(p.mean_batch, 2), fmt_fixed(p.p50_ms, 3),
             fmt_fixed(p.p95_ms, 3), fmt_fixed(p.p99_ms, 3),
             fmt_fixed(p.throughput_qps, 1),
             fmt_fixed(p.transfer_saved_ms, 3)});
      }
      benchx::emit(sweep_table, cli.get_flag("csv"));

      obs::RunReport report = benchx::make_report(cli, "serving");
      report.set_serving(summary);
      report.add_table("serving", head);
      report.add_table("serving_pool", pool_table);
      report.add_table("serving_sweep", sweep_table);
      if (!benchx::maybe_write_report(cli, report)) return 1;
    } else {
      obs::RunReport report = benchx::make_report(cli, "serving");
      report.set_serving(summary);
      report.add_table("serving", head);
      report.add_table("serving_pool", pool_table);
      if (!benchx::maybe_write_report(cli, report)) return 1;
    }
    if (!chrome.write()) return 1;
    return r.failed == 0 ? 0 : 1;
  });
}
