// google-benchmark microbenchmarks of the substrate hot paths: the
// coalescing model, the L2 simulator, warp-memory commit, tree builds and
// the CPU-side traversal executors. These guard the *simulator's own*
// performance (host seconds per simulated event), which bounds how large
// an input the experiment binaries can afford.
#include <benchmark/benchmark.h>

#include "bench_algos/pc/point_correlation.h"
#include "core/cpu_executors.h"
#include "data/generators.h"
#include "simt/coalescing.h"
#include "simt/l2cache.h"
#include "simt/warp_memory.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"
#include "spatial/vptree.h"
#include "util/rng.h"

namespace tt {
namespace {

void BM_CoalescingCoalesced(benchmark::State& state) {
  std::vector<LaneAccess> acc;
  for (int l = 0; l < 32; ++l)
    acc.push_back({static_cast<std::uint64_t>(l) * 4, 4});
  std::vector<std::uint64_t> segs;
  for (auto _ : state)
    benchmark::DoNotOptimize(segments_touched(acc, 128, segs));
}
BENCHMARK(BM_CoalescingCoalesced);

void BM_CoalescingScattered(benchmark::State& state) {
  std::vector<LaneAccess> acc;
  Pcg32 rng(1);
  for (int l = 0; l < 32; ++l) acc.push_back({rng.next_u64() % (1 << 26), 20});
  std::vector<std::uint64_t> segs;
  for (auto _ : state)
    benchmark::DoNotOptimize(segments_touched(acc, 128, segs));
}
BENCHMARK(BM_CoalescingScattered);

void BM_L2Access(benchmark::State& state) {
  L2Cache l2(16 * 1024, 128, 16);
  Pcg32 rng(2);
  std::uint64_t sink = 0;
  for (auto _ : state) sink += l2.access(rng.next_u64() % (1 << 22));
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_L2Access);

void BM_WarpMemoryCommit(benchmark::State& state) {
  GpuAddressSpace space;
  DeviceConfig cfg;
  cfg.model_l2 = false;
  KernelStats stats;
  BufferId buf = space.register_buffer("b", 8, 1 << 20);
  WarpMemory mem(space, cfg, nullptr, stats);
  Pcg32 rng(3);
  for (auto _ : state) {
    for (int l = 0; l < 32; ++l) mem.lane_load(l, buf, rng.next_below(1 << 20));
    mem.commit();
  }
}
BENCHMARK(BM_WarpMemoryCommit);

void BM_BuildKdTree(benchmark::State& state) {
  PointSet pts = gen_covtype_like(static_cast<std::size_t>(state.range(0)), 7, 4);
  for (auto _ : state) {
    KdTree t = build_kdtree(pts, 8);
    benchmark::DoNotOptimize(t.topo.n_nodes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildKdTree)->Arg(1024)->Arg(8192);

void BM_BuildOctree(benchmark::State& state) {
  BodySet b = gen_plummer(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    Octree t = build_octree(b.pos, b.mass);
    benchmark::DoNotOptimize(t.topo.n_nodes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildOctree)->Arg(1024)->Arg(8192);

void BM_BuildVpTree(benchmark::State& state) {
  PointSet pts = gen_uniform(static_cast<std::size_t>(state.range(0)), 7, 6);
  for (auto _ : state) {
    VpTree t = build_vptree(pts, 6);
    benchmark::DoNotOptimize(t.topo.n_nodes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildVpTree)->Arg(1024)->Arg(8192);

void BM_CpuTraversal(benchmark::State& state) {
  // Real CPU traversal throughput (visits/second), recursive vs autoropes.
  static PointSet pts = gen_covtype_like(4096, 7, 7);
  static KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  float r = pc_pick_radius(pts, 32, 7);
  PointCorrelationKernel k(tree, pts, r, space);
  auto variant =
      state.range(0) == 0 ? CpuVariant::kRecursive : CpuVariant::kAutoropes;
  std::uint64_t visits = 0;
  for (auto _ : state) {
    auto run = run_cpu(k, variant, 1);
    visits += run.total_visits;
    benchmark::DoNotOptimize(run.results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(visits));
  state.SetLabel(state.range(0) == 0 ? "recursive" : "autoropes");
}
BENCHMARK(BM_CpuTraversal)->Arg(0)->Arg(1);

}  // namespace
}  // namespace tt
