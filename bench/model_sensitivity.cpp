// Robustness check for the simulator substitution (DESIGN.md section 6):
// the paper's qualitative conclusions should not hinge on the cost-model
// constants. This sweeps memory bandwidth, per-transaction compute cost
// proxies and the recursion overhead across 0.5x..2x and reports, for a
// representative cell (PC covtype), whether each headline ordering holds:
//
//   O1  sorted lockstep beats sorted non-lockstep
//   O2  autoropes-L beats recursive-L (positive "improvement vs recurse")
//   O3  sorted lockstep beats unsorted lockstep
//   O4  static ropes have fewer DRAM transactions than autoropes-N
#include <iostream>

#include "bench_algos/pc/point_correlation.h"
#include "bench_common.h"
#include "core/gpu_executors.h"
#include "core/ropes_executor.h"
#include "core/static_ropes.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"
#include "util/csv.h"

using namespace tt;

namespace {

struct Probe {
  double al_sorted, an_sorted, rl_sorted, al_unsorted;
  std::uint64_t ropes_dram, auto_dram;
};

Probe probe(std::size_t n, const DeviceConfig& cfg) {
  Probe p{};
  for (bool sorted : {true, false}) {
    PointSet pts = gen_covtype_like(n, 7, 42);
    pts.permute(sorted ? tree_order(pts, 8) : shuffled_order(n, 42));
    KdTree tree = build_kdtree(pts, 8);
    float r = pc_pick_radius(pts, 24, 42);
    GpuAddressSpace space;
    PointCorrelationKernel k(tree, pts, r, space);
    auto al = run_gpu_sim(k, space, cfg, GpuMode::from(Variant::kAutoLockstep));
    if (sorted) {
      auto an =
          run_gpu_sim(k, space, cfg, GpuMode::from(Variant::kAutoNolockstep));
      auto rl =
          run_gpu_sim(k, space, cfg, GpuMode::from(Variant::kRecLockstep));
      StaticRopes ropes = install_ropes(tree.topo);
      auto rp = run_gpu_ropes_sim(k, space, cfg, false, ropes);
      p.al_sorted = al.time.total_ms;
      p.an_sorted = an.time.total_ms;
      p.rl_sorted = rl.time.total_ms;
      p.ropes_dram = rp.stats.dram_transactions;
      p.auto_dram = an.stats.dram_transactions;
    } else {
      p.al_unsorted = al.time.total_ms;
    }
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("model_sensitivity: do the headline orderings survive 0.5x..2x "
          "perturbations of the cost-model constants?");
  benchx::add_common_flags(cli);
  try {
    if (!cli.parse(argc, argv)) return 0;
    // The headline orderings compare across variants, so a --variant
    // filter that removes any of them would make the check meaningless.
    benchx::require_variants(cli, {Variant::kAutoLockstep,
                                   Variant::kAutoNolockstep,
                                   Variant::kRecLockstep});
    const auto n = static_cast<std::size_t>(cli.get_int("points"));
    Table table({"Perturbation", "Scale", "O1 L<N", "O2 auto<rec",
                 "O3 sorted<unsorted", "O4 ropes<auto"});
    int violations = 0;

    auto emit = [&](const char* name, double scale, const DeviceConfig& cfg) {
      Probe p = probe(n, cfg);
      bool o1 = p.al_sorted < p.an_sorted;
      bool o2 = p.al_sorted < p.rl_sorted;
      bool o3 = p.al_sorted < p.al_unsorted;
      bool o4 = p.ropes_dram < p.auto_dram;
      violations += !o1 + !o2 + !o3 + !o4;
      auto yn = [](bool b) { return std::string(b ? "yes" : "NO"); };
      table.add_row({name, fmt_fixed(scale, 2), yn(o1), yn(o2), yn(o3),
                     yn(o4)});
    };

    emit("baseline", 1.0, DeviceConfig{});
    for (double s : {0.5, 2.0}) {
      DeviceConfig cfg;
      cfg.mem_bandwidth_gbps *= s;
      emit("mem_bandwidth", s, cfg);
    }
    for (double s : {0.5, 2.0}) {
      DeviceConfig cfg;
      cfg.c_visit *= s;
      cfg.c_step *= s;
      emit("compute_costs", s, cfg);
    }
    for (double s : {0.5, 2.0}) {
      DeviceConfig cfg;
      cfg.c_call *= s;
      cfg.frame_bytes = static_cast<int>(cfg.frame_bytes * s);
      emit("recursion_overhead", s, cfg);
    }
    for (double s : {0.5, 2.0}) {
      DeviceConfig cfg;
      cfg.l2_bytes = static_cast<std::size_t>(cfg.l2_bytes * s);
      emit("l2_capacity", s, cfg);
    }
    benchx::emit(table, cli.get_flag("csv"));
    obs::RunReport report = benchx::make_report(cli, "model_sensitivity");
    report.add_table("model_sensitivity", table);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    std::cerr << "# ordering violations: " << violations << "\n";
    return violations == 0 ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "model_sensitivity: " << e.what() << "\n";
    return 1;
  }
}
