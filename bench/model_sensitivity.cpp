// Robustness check for the simulator substitution (DESIGN.md section 6):
// the paper's qualitative conclusions should not hinge on the cost-model
// constants. This sweeps memory bandwidth, per-transaction compute cost
// proxies and the recursion overhead across 0.5x..2x and reports, for a
// representative cell (PC covtype), whether each headline ordering holds:
//
//   O1  sorted lockstep beats sorted non-lockstep
//   O2  autoropes-L beats recursive-L (positive "improvement vs recurse")
//   O3  sorted lockstep beats unsorted lockstep
//   O4  static ropes have fewer DRAM transactions than autoropes-N
//
// Beyond the global sweeps, the cycle-attribution profiler (obs/profile.h)
// lets this probe each *layer* separately: stack traffic (c_smem -> the
// StackPolicy's kStack bucket), step control (c_step -> kStep) and warp
// votes (c_vote -> kVote) are perturbed on their own, and a per-layer
// share table plus a margin analysis report which layer each ordering is
// actually sensitive to -- an ordering can only flip under a layer's
// perturbation in proportion to the bucket-cycle gap between the two
// compositions it compares.
#include <array>
#include <cmath>
#include <iostream>

#include "bench_algos/pc/point_correlation.h"
#include "bench_common.h"
#include "core/gpu_executors.h"
#include "core/ropes_executor.h"
#include "core/static_ropes.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"
#include "util/csv.h"

using namespace tt;

namespace {

// One composition's measurement: modelled time plus the per-layer cycle
// split the attribution invariant guarantees sums to instr_cycles.
struct VariantProbe {
  double time_ms = 0;
  double instr_cycles = 0;
  std::array<double, kNumCycleBuckets> buckets{};
};

struct Probe {
  VariantProbe al_sorted, an_sorted, rl_sorted, al_unsorted;
  std::uint64_t ropes_dram = 0, auto_dram = 0;
};

template <class Run>
VariantProbe variant_probe(const Run& g) {
  VariantProbe v;
  v.time_ms = g.time.total_ms;
  v.instr_cycles = g.stats.instr_cycles;
  v.buckets = g.stats.cycle_buckets;
  return v;
}

// `chrome` non-null only for the baseline probe: its four launches make a
// compact reference timeline; tracing every perturbation would multiply
// the file by the sweep count without adding information.
Probe probe(std::size_t n, const DeviceConfig& cfg,
            obs::ChromeTraceCollector* chrome) {
  Probe p{};
  auto sink = [&](const char* label) -> obs::TraceSink* {
    return chrome ? &chrome->begin_launch(std::string("pc_covtype/") + label)
                  : nullptr;
  };
  for (bool sorted : {true, false}) {
    PointSet pts = gen_covtype_like(n, 7, 42);
    pts.permute(sorted ? tree_order(pts, 8) : shuffled_order(n, 42));
    KdTree tree = build_kdtree(pts, 8);
    float r = pc_pick_radius(pts, 24, 42);
    GpuAddressSpace space;
    PointCorrelationKernel k(tree, pts, r, space);
    if (sorted) {
      auto al = run_gpu_sim(k, space, cfg,
                            GpuMode::from(Variant::kAutoLockstep),
                            sink("auto_lockstep_sorted"));
      auto an = run_gpu_sim(k, space, cfg,
                            GpuMode::from(Variant::kAutoNolockstep),
                            sink("auto_nolockstep_sorted"));
      auto rl = run_gpu_sim(k, space, cfg,
                            GpuMode::from(Variant::kRecLockstep),
                            sink("rec_lockstep_sorted"));
      StaticRopes ropes = install_ropes(tree.topo);
      auto rp = run_gpu_ropes_sim(k, space, cfg, false, ropes);
      p.al_sorted = variant_probe(al);
      p.an_sorted = variant_probe(an);
      p.rl_sorted = variant_probe(rl);
      p.ropes_dram = rp.stats.dram_transactions;
      p.auto_dram = an.stats.dram_transactions;
    } else {
      auto al = run_gpu_sim(k, space, cfg,
                            GpuMode::from(Variant::kAutoLockstep),
                            sink("auto_lockstep_unsorted"));
      p.al_unsorted = variant_probe(al);
    }
  }
  return p;
}

double share(const VariantProbe& v, CycleBucket b) {
  return v.instr_cycles == 0
             ? 0.0
             : v.buckets[static_cast<std::size_t>(b)] / v.instr_cycles;
}

// Which layer an ordering is sensitive to: the bucket with the largest
// cycle gap between the compared compositions. Scaling that bucket's
// constant by s moves the instruction-cycle margin by (s - 1) * gap, so
// the largest gap is the lever that flips the ordering first.
struct LayerSensitivity {
  CycleBucket bucket = CycleBucket::kVisit;
  double gap = 0;       // bucket_b - bucket_a, cycles
  double margin = 0;    // instr_b - instr_a, cycles (positive: a wins)
};

LayerSensitivity most_sensitive_layer(const VariantProbe& a,
                                      const VariantProbe& b) {
  LayerSensitivity s;
  s.margin = b.instr_cycles - a.instr_cycles;
  double best = -1;
  for (std::size_t i = 0; i < kNumCycleBuckets; ++i) {
    const double gap = b.buckets[i] - a.buckets[i];
    if (std::abs(gap) > best) {
      best = std::abs(gap);
      s.bucket = static_cast<CycleBucket>(i);
      s.gap = gap;
    }
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("model_sensitivity: do the headline orderings survive 0.5x..2x "
          "perturbations of the cost-model constants -- globally and per "
          "executor layer (stack / step / vote)?");
  benchx::add_common_flags(cli);
  return benchx::run_main(cli, argc, argv, "model_sensitivity", [&]() -> int {
    // The headline orderings compare across variants, so a --variant
    // filter that removes any of them would make the check meaningless.
    benchx::require_variants(cli, {Variant::kAutoLockstep,
                                   Variant::kAutoNolockstep,
                                   Variant::kRecLockstep});
    benchx::ChromeTrace chrome(cli);
    const auto n = static_cast<std::size_t>(cli.get_int("points"));
    Table table({"Perturbation", "Scale", "O1 L<N", "O2 auto<rec",
                 "O3 sorted<unsorted", "O4 ropes<auto"});
    int violations = 0;
    Probe baseline{};

    auto emit = [&](const char* name, double scale, const DeviceConfig& cfg,
                    bool is_baseline = false) {
      Probe p = probe(n, cfg, is_baseline ? chrome.collector() : nullptr);
      if (is_baseline) baseline = p;
      bool o1 = p.al_sorted.time_ms < p.an_sorted.time_ms;
      bool o2 = p.al_sorted.time_ms < p.rl_sorted.time_ms;
      bool o3 = p.al_sorted.time_ms < p.al_unsorted.time_ms;
      bool o4 = p.ropes_dram < p.auto_dram;
      violations += !o1 + !o2 + !o3 + !o4;
      auto yn = [](bool b) { return std::string(b ? "yes" : "NO"); };
      table.add_row({name, fmt_fixed(scale, 2), yn(o1), yn(o2), yn(o3),
                     yn(o4)});
    };

    emit("baseline", 1.0, DeviceConfig{}, /*is_baseline=*/true);
    for (double s : {0.5, 2.0}) {
      DeviceConfig cfg;
      cfg.mem_bandwidth_gbps *= s;
      emit("mem_bandwidth", s, cfg);
    }
    for (double s : {0.5, 2.0}) {
      DeviceConfig cfg;
      cfg.c_visit *= s;
      cfg.c_step *= s;
      emit("compute_costs", s, cfg);
    }
    for (double s : {0.5, 2.0}) {
      DeviceConfig cfg;
      cfg.c_call *= s;
      cfg.frame_bytes = static_cast<int>(cfg.frame_bytes * s);
      emit("recursion_overhead", s, cfg);
    }
    for (double s : {0.5, 2.0}) {
      DeviceConfig cfg;
      cfg.l2_bytes = static_cast<std::size_t>(cfg.l2_bytes * s);
      emit("l2_capacity", s, cfg);
    }
    // Per-layer sweeps: each perturbs ONE executor layer's constant --
    // the charge sites are exclusive to that layer (kernel_stats.h), so
    // any ordering flip here is attributable to that layer alone.
    for (double s : {0.5, 2.0}) {
      DeviceConfig cfg;
      cfg.c_smem *= s;
      emit("stack_layer(c_smem)", s, cfg);
    }
    for (double s : {0.5, 2.0}) {
      DeviceConfig cfg;
      cfg.c_step *= s;
      emit("step_layer(c_step)", s, cfg);
    }
    for (double s : {0.5, 2.0}) {
      DeviceConfig cfg;
      cfg.c_vote *= s;
      emit("vote_layer(c_vote)", s, cfg);
    }
    benchx::emit(table, cli.get_flag("csv"));

    // Where each composition spends its instruction cycles at baseline:
    // one row per StackPolicy x ConvergencePolicy cell of the probe, one
    // column per CycleBucket share. This is the evidence behind the
    // per-layer sweep results -- a layer with a negligible share cannot
    // flip an ordering at 0.5x..2x.
    Table layers({"Cell", "visit%", "step%", "vote%", "call%", "stack%",
                  "mem_stall%", "InstrCycles"});
    auto layer_row = [&](const char* cell, const VariantProbe& v) {
      auto pct = [&](CycleBucket b) {
        return fmt_fixed(share(v, b) * 100.0, 1);
      };
      layers.add_row({cell, pct(CycleBucket::kVisit), pct(CycleBucket::kStep),
                      pct(CycleBucket::kVote), pct(CycleBucket::kCall),
                      pct(CycleBucket::kStack), pct(CycleBucket::kMemStall),
                      fmt_fixed(v.instr_cycles, 0)});
    };
    layer_row("auto_lockstep/sorted", baseline.al_sorted);
    layer_row("auto_nolockstep/sorted", baseline.an_sorted);
    layer_row("rec_lockstep/sorted", baseline.rl_sorted);
    layer_row("auto_lockstep/unsorted", baseline.al_unsorted);
    std::cerr << "# baseline per-layer cycle shares (attribution: buckets "
                 "sum to instr_cycles exactly)\n";
    benchx::emit(layers, cli.get_flag("csv"));

    // Margin analysis: the layer whose bucket-cycle gap between the two
    // compared compositions is largest is the one the ordering is most
    // sensitive to.
    auto describe = [&](const char* ord, const VariantProbe& a,
                        const VariantProbe& b) {
      LayerSensitivity s = most_sensitive_layer(a, b);
      std::cerr << "# " << ord << ": instr margin "
                << fmt_fixed(s.margin, 0) << " cycles; most sensitive layer "
                << cycle_bucket_name(s.bucket) << " (gap "
                << fmt_fixed(s.gap, 0) << " cycles)\n";
    };
    describe("O1 L<N", baseline.al_sorted, baseline.an_sorted);
    describe("O2 auto<rec", baseline.al_sorted, baseline.rl_sorted);
    describe("O3 sorted<unsorted", baseline.al_sorted, baseline.al_unsorted);
    std::cerr << "# O4 ropes<auto compares DRAM transactions; instruction-"
                 "layer constants cannot affect it\n";

    obs::RunReport report = benchx::make_report(cli, "model_sensitivity");
    report.add_table("model_sensitivity", table);
    report.add_table("model_sensitivity_layers", layers);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    if (!chrome.write()) return 1;
    std::cerr << "# ordering violations: " << violations << "\n";
    return violations == 0 ? 0 : 2;
  });
}
