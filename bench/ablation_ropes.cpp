// Ablation: statically-installed ropes (prior work, section 3 / Figure 2)
// vs the paper's autoropes, on the two unguided benchmarks (PC, BH).
//
// The trade the paper describes:
//   + ropes traverse with no stack at all (no stack traffic, fewer cycles)
//   - they need a preprocessing pass over the tree (install time reported)
//   - they only exist for unguided traversals, and any stack-carried
//     argument must be recomputable from the node (BH needs node depths).
#include <iostream>

#include "bench_algos/bh/barnes_hut.h"
#include "bench_algos/pc/point_correlation.h"
#include "bench_common.h"
#include "core/gpu_executors.h"
#include "core/ropes_executor.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"
#include "util/csv.h"

using namespace tt;

namespace {

template <RopeCompatibleKernel K>
void compare(const Cli& cli, Table& table, const std::string& bench,
             bool sorted, const K& k, GpuAddressSpace& space,
             const LinearTree& topo) {
  DeviceConfig cfg;
  StaticRopes ropes = install_ropes(topo);
  for (bool lockstep : {true, false}) {
    const Variant v =
        lockstep ? Variant::kAutoLockstep : Variant::kAutoNolockstep;
    if (!benchx::variant_enabled(cli, v)) continue;
    auto ar = run_gpu_sim(k, space, cfg, GpuMode::from(v));
    auto rp = run_gpu_ropes_sim(k, space, cfg, lockstep, ropes);
    table.add_row({bench, sorted ? "sorted" : "unsorted",
                   lockstep ? "L" : "N", "autoropes",
                   fmt_fixed(ar.time.total_ms, 3),
                   std::to_string(ar.stats.dram_transactions), "0"});
    table.add_row({bench, sorted ? "sorted" : "unsorted",
                   lockstep ? "L" : "N", "static-ropes",
                   fmt_fixed(rp.time.total_ms, 3),
                   std::to_string(rp.stats.dram_transactions),
                   fmt_fixed(rp.install_ms, 3)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("ablation_ropes: prior-work static ropes vs autoropes (section 3)");
  benchx::add_common_flags(cli);
  return benchx::run_main(cli, argc, argv, "ablation_ropes", [&]() -> int {
    Table table({"Benchmark", "Order", "Type", "Technique", "Time(ms)",
                 "DRAM txn", "Install(ms)"});
    const auto n = static_cast<std::size_t>(cli.get_int("points"));
    for (bool sorted : {true, false}) {
      {
        PointSet pts = gen_covtype_like(n, 7, 21);
        pts.permute(sorted ? tree_order(pts, 8) : shuffled_order(n, 21));
        KdTree tree = build_kdtree(pts, 8);
        float r = pc_pick_radius(pts, cli.get_double("pc-neighbors"), 21);
        GpuAddressSpace space;
        PointCorrelationKernel k(tree, pts, r, space);
        compare(cli, table, "PointCorrelation", sorted, k, space, tree.topo);
      }
      {
        BodySet b = gen_plummer(n, 22);
        if (sorted) b.pos.permute(morton_order(b.pos));
        Octree tree = build_octree(b.pos, b.mass);
        GpuAddressSpace space;
        BarnesHutKernel k(tree, b.pos,
                          static_cast<float>(cli.get_double("theta")), 1e-4f,
                          space);
        compare(cli, table, "Barnes-Hut", sorted, k, space, tree.topo);
      }
    }
    benchx::emit(table, cli.get_flag("csv"));
    obs::RunReport report = benchx::make_report(cli, "ablation_ropes");
    report.add_table("ablation_ropes", table);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    return 0;
  });
}
