// Ablation: statically-installed ropes (prior work, section 3 / Figure 2)
// vs the paper's autoropes, on the two unguided benchmarks (PC, BH).
//
// The trade the paper describes:
//   + ropes traverse with no stack at all (no stack traffic, fewer cycles)
//   - they need a preprocessing pass over the tree (install time reported)
//   - they only exist for unguided traversals, and any stack-carried
//     argument must be recomputable from the node (BH needs node depths).
//
// The second table sweeps the stackless variant family (escape-index
// ropes and, on fanout-2 trees, Wald-style index arithmetic) against the
// shared-memory node cache that reuses the bytes the per-warp rope stack
// would have occupied: cache off, fixed capacities, and the default
// sizing ("auto", stack-footprint bytes capped by shared_mem_per_sm).
// Each row reports the cache hit rate, the profiler's stack bucket
// (identically zero for stackless compositions -- nothing pushes), and
// the modelled speedup over the same convergence policy running on the
// per-warp shared-memory rope stack.
#include <cstddef>
#include <iostream>

#include "bench_algos/bh/barnes_hut.h"
#include "bench_algos/pc/point_correlation.h"
#include "bench_common.h"
#include "core/gpu_executors.h"
#include "core/ropes_executor.h"
#include "core/static_ropes.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"
#include "util/csv.h"

using namespace tt;

namespace {

template <RopeCompatibleKernel K>
void compare(const Cli& cli, Table& table, const std::string& bench,
             bool sorted, const K& k, GpuAddressSpace& space,
             const LinearTree& topo) {
  DeviceConfig cfg;
  StaticRopes ropes = install_ropes(topo);
  for (bool lockstep : {true, false}) {
    const Variant v =
        lockstep ? Variant::kAutoLockstep : Variant::kAutoNolockstep;
    if (!benchx::variant_enabled(cli, v)) continue;
    auto ar = run_gpu_sim(k, space, cfg, GpuMode::from(v));
    auto rp = run_gpu_ropes_sim(k, space, cfg, lockstep, ropes);
    table.add_row({bench, sorted ? "sorted" : "unsorted",
                   lockstep ? "L" : "N", "autoropes",
                   fmt_fixed(ar.time.total_ms, 3),
                   std::to_string(ar.stats.dram_transactions), "0"});
    table.add_row({bench, sorted ? "sorted" : "unsorted",
                   lockstep ? "L" : "N", "static-ropes",
                   fmt_fixed(rp.time.total_ms, 3),
                   std::to_string(rp.stats.dram_transactions),
                   fmt_fixed(rp.install_ms, 3)});
  }
}

// The stackless x cache-capacity sweep. Each eligible stackless variant
// runs with the node cache off, at fixed capacities, and at the default
// sizing; the baseline for the speedup column is the autoropes
// composition with the same convergence policy (per-warp shared-memory
// rope stack). Kernels that cannot carry ropes contribute no rows.
template <RopeCompatibleKernel K>
void stackless_sweep(const Cli& cli, Table& table, const std::string& bench,
                     bool sorted, const K& k, GpuAddressSpace& space) {
  if constexpr (StacklessCompatibleKernel<K>) {
    DeviceConfig cfg;
    struct CachePoint {
      const char* label;  // "Cache(KiB)" cell
      bool enabled;
      std::size_t bytes;  // 0 => default sizing
    };
    constexpr CachePoint kPoints[] = {{"off", false, 0},
                                      {"2", true, 2 * 1024},
                                      {"8", true, 8 * 1024},
                                      {"32", true, 32 * 1024},
                                      {"auto", true, 0}};
    for (Variant v : {Variant::kStacklessLockstep,
                      Variant::kStacklessNolockstep, Variant::kIndexWalk}) {
      if (!kernel_variant_eligible<K>(v)) continue;
      if (!benchx::variant_enabled(cli, v)) continue;
      const Variant base_v = variant_is_lockstep(v)
                                 ? Variant::kAutoLockstep
                                 : Variant::kAutoNolockstep;
      auto base = run_gpu_sim(k, space, cfg, GpuMode::from(base_v));
      for (const CachePoint& pt : kPoints) {
        GpuMode mode = GpuMode::from(v);
        mode.smem_node_cache = pt.enabled;
        mode.cache_bytes = pt.bytes;
        auto run = run_gpu_sim(k, space, cfg, mode);
        const std::uint64_t lookups =
            run.stats.smem_cache_hits + run.stats.smem_cache_misses;
        const double hit_pct =
            lookups == 0 ? 0.0
                         : 100.0 * static_cast<double>(run.stats.smem_cache_hits) /
                               static_cast<double>(lookups);
        table.add_row(
            {bench, sorted ? "sorted" : "unsorted", variant_name(v), pt.label,
             fmt_fixed(run.time.total_ms, 3),
             std::to_string(run.stats.dram_transactions), fmt_fixed(hit_pct, 1),
             fmt_fixed(run.stats.bucket_cycles(CycleBucket::kStack), 0),
             fmt_fixed(base.time.total_ms / run.time.total_ms, 3)});
      }
    }
  } else {
    (void)cli;
    (void)table;
    (void)bench;
    (void)sorted;
    (void)k;
    (void)space;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("ablation_ropes: prior-work static ropes vs autoropes (section 3)");
  benchx::add_common_flags(cli);
  return benchx::run_main(cli, argc, argv, "ablation_ropes", [&]() -> int {
    Table table({"Benchmark", "Order", "Type", "Technique", "Time(ms)",
                 "DRAM txn", "Install(ms)"});
    Table sweep({"Benchmark", "Order", "Variant", "Cache(KiB)", "Time(ms)",
                 "DRAM txn", "Hit%", "Stack cyc", "Speedup vs stack"});
    const auto n = static_cast<std::size_t>(cli.get_int("points"));
    for (bool sorted : {true, false}) {
      {
        PointSet pts = gen_covtype_like(n, 7, 21);
        pts.permute(sorted ? tree_order(pts, 8) : shuffled_order(n, 21));
        KdTree tree = build_kdtree(pts, 8);
        float r = pc_pick_radius(pts, cli.get_double("pc-neighbors"), 21);
        GpuAddressSpace space;
        PointCorrelationKernel k(tree, pts, r, space);
        compare(cli, table, "PointCorrelation", sorted, k, space, tree.topo);
        stackless_sweep(cli, sweep, "PointCorrelation", sorted, k, space);
      }
      {
        BodySet b = gen_plummer(n, 22);
        if (sorted) b.pos.permute(morton_order(b.pos));
        Octree tree = build_octree(b.pos, b.mass);
        GpuAddressSpace space;
        BarnesHutKernel k(tree, b.pos,
                          static_cast<float>(cli.get_double("theta")), 1e-4f,
                          space);
        compare(cli, table, "Barnes-Hut", sorted, k, space, tree.topo);
        stackless_sweep(cli, sweep, "Barnes-Hut", sorted, k, space);
      }
    }
    benchx::emit(table, cli.get_flag("csv"));
    if (sweep.rows() > 0) {
      std::cout << "\n";
      benchx::emit(sweep, cli.get_flag("csv"));
    }
    obs::RunReport report = benchx::make_report(cli, "ablation_ropes");
    report.add_table("ablation_ropes", table);
    report.add_table("stackless_cache_sweep", sweep);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    return 0;
  });
}
