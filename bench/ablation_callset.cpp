// Ablation of the section-4.3 dynamic single-call-set reduction: for the
// guided kNN benchmark, compare
//
//   vote     -- lockstep with the per-node warp majority vote (the paper's
//               transformation),
//   static   -- lockstep forced to one statically chosen call set for the
//               whole traversal (what a compiler without the dynamic vote
//               would have to do),
//   none (N) -- non-lockstep, every lane follows its own preferred order.
//
// The paper argues the dynamic vote beats the static choice because
// different warps can adopt different orders; the numbers here quantify
// that via visited nodes and modelled time.
#include <iostream>

#include "bench_algos/knn/knn.h"
#include "bench_common.h"
#include "core/gpu_executors.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"
#include "util/csv.h"

using namespace tt;

namespace {

struct StaticOrderKernel : KnnKernel {
  using KnnKernel::KnnKernel;
  [[nodiscard]] int choose_callset(NodeId, const State&) const {
    return 0;  // always left-first, regardless of the query
  }
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli("ablation_callset: majority vote vs static call set (section 4.3)");
  benchx::add_common_flags(cli);
  return benchx::run_main(cli, argc, argv, "ablation_callset", [&]() -> int {
    Table table(
        {"Order", "CallSetPolicy", "Time(ms)", "AvgNodes", "LaneVisits"});
    const auto n = static_cast<std::size_t>(cli.get_int("points"));
    const int k_neighbors = static_cast<int>(cli.get_int("k"));
    for (bool sorted : {true, false}) {
      PointSet pts = gen_covtype_like(n, 7, 7);
      auto perm = sorted ? tree_order(pts, 8) : shuffled_order(n, 7);
      pts.permute(perm);
      KdTree tree = build_kdtree(pts, 8);
      GpuAddressSpace space;
      KnnKernel voted(tree, pts, k_neighbors, space);
      StaticOrderKernel fixed(tree, pts, k_neighbors, space);
      DeviceConfig cfg;

      auto emit_row = [&](const char* policy, auto& g) {
        table.add_row({sorted ? "sorted" : "unsorted", policy,
                       fmt_fixed(g.time.total_ms, 3),
                       fmt_fixed(g.avg_nodes(), 0),
                       std::to_string(g.stats.lane_visits)});
      };
      if (benchx::variant_enabled(cli, Variant::kAutoLockstep)) {
        auto gv = run_gpu_sim(voted, space, cfg,
                              GpuMode::from(Variant::kAutoLockstep));
        emit_row("vote (L)", gv);
        auto gs = run_gpu_sim(fixed, space, cfg,
                              GpuMode::from(Variant::kAutoLockstep));
        emit_row("static (L)", gs);
      }
      if (benchx::variant_enabled(cli, Variant::kAutoNolockstep)) {
        auto gn = run_gpu_sim(voted, space, cfg,
                              GpuMode::from(Variant::kAutoNolockstep));
        emit_row("per-lane (N)", gn);
      }
    }
    benchx::emit(table, cli.get_flag("csv"));
    obs::RunReport report = benchx::make_report(cli, "ablation_callset");
    report.add_table("ablation_callset", table);
    if (!benchx::maybe_write_report(cli, report)) return 1;
    return 0;
  });
}
