// Validates a treetrav.run_report JSON file: parses it, checks the schema
// tag and the presence/shape of the sections every report must carry.
// Exit 0 on success; nonzero with a diagnostic on stderr otherwise. Used
// by the table1_json_validate ctest and scripts/check.sh.
//
// --golden <golden.json> <report.json> instead byte-compares the two
// files after normalizing the git_sha value (the only field allowed to
// differ across commits); the behavior-preservation fixture test uses it
// to pin the executor refactor to the pre-refactor report.
#include <cstring>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/run_report.h"

using tt::obs::JsonValue;

namespace {

int fail(const std::string& msg) {
  std::cerr << "json_validate: " << msg << "\n";
  return 1;
}

bool slurp(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

std::string normalize_git_sha(const std::string& s) {
  static const std::regex re("\"git_sha\": \"[0-9a-f]*\"");
  return std::regex_replace(s, re, "\"git_sha\": \"<sha>\"");
}

// Byte-compare golden vs report modulo git_sha; on mismatch print the
// first differing line of each side for a usable diagnostic.
int compare_golden(const char* golden_path, const char* report_path) {
  std::string golden, report;
  if (!slurp(golden_path, &golden))
    return fail(std::string("cannot open ") + golden_path);
  if (!slurp(report_path, &report))
    return fail(std::string("cannot open ") + report_path);
  golden = normalize_git_sha(golden);
  report = normalize_git_sha(report);
  if (golden == report) {
    std::cout << "json_validate: " << report_path << " matches golden "
              << golden_path << "\n";
    return 0;
  }
  std::istringstream ga(golden), rb(report);
  std::string gl, rl;
  std::size_t line = 0;
  for (;;) {
    ++line;
    bool have_g = static_cast<bool>(std::getline(ga, gl));
    bool have_r = static_cast<bool>(std::getline(rb, rl));
    if (!have_g && !have_r) break;
    if (!have_g) gl = "<end of file>";
    if (!have_r) rl = "<end of file>";
    if (gl != rl) {
      std::cerr << "json_validate: golden mismatch at line " << line << "\n"
                << "  golden: " << gl << "\n"
                << "  report: " << rl << "\n";
      return 1;
    }
  }
  return fail("golden mismatch (content differs)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::strcmp(argv[1], "--golden") == 0)
    return compare_golden(argv[2], argv[3]);
  if (argc != 2) {
    std::cerr << "usage: json_validate <report.json>\n"
              << "       json_validate --golden <golden.json> <report.json>\n";
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) return fail(std::string("cannot open ") + argv[1]);
  std::ostringstream buf;
  buf << in.rdbuf();

  try {
    auto root = tt::obs::json_parse(buf.str());
    if (!root->is_object()) return fail("root is not an object");
    const JsonValue* schema = root->find("schema");
    if (!schema) return fail("missing \"schema\"");
    if (schema->as_string() != tt::obs::kRunReportSchema)
      return fail("schema is \"" + schema->as_string() + "\", expected \"" +
                  tt::obs::kRunReportSchema + "\"");
    if (!root->find("generator")) return fail("missing \"generator\"");
    if (!root->find("git_sha")) return fail("missing \"git_sha\"");
    const JsonValue* rows = root->find("rows");
    if (!rows || !rows->is_array()) return fail("missing \"rows\" array");
    const JsonValue* tables = root->find("tables");
    if (!tables || !tables->is_array())
      return fail("missing \"tables\" array");

    for (std::size_t i = 0; i < rows->arr_v.size(); ++i) {
      const JsonValue& row = *rows->arr_v[i];
      const std::string at = "rows[" + std::to_string(i) + "]";
      if (!row.find("config")) return fail(at + ": missing \"config\"");
      const JsonValue* variants = row.find("variants");
      if (!variants || !variants->is_object())
        return fail(at + ": missing \"variants\" object");
      for (tt::Variant v : tt::kAllVariants) {
        const JsonValue* vr = variants->find(tt::variant_name(v));
        if (!vr) return fail(at + ": missing variant " + tt::variant_name(v));
        if (!vr->find("stats"))
          return fail(at + "." + tt::variant_name(v) + ": missing \"stats\"");
        if (!vr->find("time"))
          return fail(at + "." + tt::variant_name(v) + ": missing \"time\"");
      }
      const JsonValue* metrics = row.find("metrics");
      if (!metrics || !metrics->is_object())
        return fail(at + ": missing \"metrics\" object");
      if (!metrics->find("counters"))
        return fail(at + ".metrics: missing \"counters\"");
    }
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  std::cout << "json_validate: " << argv[1] << " OK\n";
  return 0;
}
