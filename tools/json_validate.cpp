// Validates a treetrav.run_report JSON file: parses it, checks the schema
// tag and the presence/shape of the sections every report must carry.
// Exit 0 on success; nonzero with a diagnostic on stderr otherwise. Used
// by the table1_json_validate ctest and scripts/check.sh.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/run_report.h"

using tt::obs::JsonValue;

namespace {

int fail(const std::string& msg) {
  std::cerr << "json_validate: " << msg << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: json_validate <report.json>\n";
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) return fail(std::string("cannot open ") + argv[1]);
  std::ostringstream buf;
  buf << in.rdbuf();

  try {
    auto root = tt::obs::json_parse(buf.str());
    if (!root->is_object()) return fail("root is not an object");
    const JsonValue* schema = root->find("schema");
    if (!schema) return fail("missing \"schema\"");
    if (schema->as_string() != tt::obs::kRunReportSchema)
      return fail("schema is \"" + schema->as_string() + "\", expected \"" +
                  tt::obs::kRunReportSchema + "\"");
    if (!root->find("generator")) return fail("missing \"generator\"");
    if (!root->find("git_sha")) return fail("missing \"git_sha\"");
    const JsonValue* rows = root->find("rows");
    if (!rows || !rows->is_array()) return fail("missing \"rows\" array");
    const JsonValue* tables = root->find("tables");
    if (!tables || !tables->is_array())
      return fail("missing \"tables\" array");

    for (std::size_t i = 0; i < rows->arr_v.size(); ++i) {
      const JsonValue& row = *rows->arr_v[i];
      const std::string at = "rows[" + std::to_string(i) + "]";
      if (!row.find("config")) return fail(at + ": missing \"config\"");
      const JsonValue* variants = row.find("variants");
      if (!variants || !variants->is_object())
        return fail(at + ": missing \"variants\" object");
      for (tt::Variant v : tt::kAllVariants) {
        const JsonValue* vr = variants->find(tt::variant_name(v));
        if (!vr) return fail(at + ": missing variant " + tt::variant_name(v));
        if (!vr->find("stats"))
          return fail(at + "." + tt::variant_name(v) + ": missing \"stats\"");
        if (!vr->find("time"))
          return fail(at + "." + tt::variant_name(v) + ": missing \"time\"");
      }
      const JsonValue* metrics = row.find("metrics");
      if (!metrics || !metrics->is_object())
        return fail(at + ": missing \"metrics\" object");
      if (!metrics->find("counters"))
        return fail(at + ".metrics: missing \"counters\"");
    }
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  std::cout << "json_validate: " << argv[1] << " OK\n";
  return 0;
}
