// Validates a treetrav.run_report JSON file: parses it, checks the schema
// tag and the presence/shape of the sections every report must carry
// (including the auto_select "selection" block introduced by schema v2,
// the optional cycle-attribution "profile" block introduced by v4 --
// whose attribution invariant, bucket sum == instr_cycles, is re-checked
// here with exact equality against the report's own stats -- and the
// optional "serving" block introduced by v5, whose latency percentiles
// must be monotone, queue gauges non-negative, and per-drain query counts
// must sum to the completed total, and the optional "devices" block
// introduced by v6, whose per-device chunk/point counts must sum to each
// kernel's totals, whose overlap can never exceed the copy-in it hides,
// and whose makespan must be the slowest device's busy time, bounded by
// the summed per-device time).
// Validation is version-aware: the current schema (v9) and the two
// previous ones (v8, v7) are accepted in full validation -- plus v6,
// which the committed sharding fixture pins and must keep validating
// bit-for-bit -- with the v7-only stackless variant blocks required only
// from v7 on, the v8 "fusion" block (bench/fusion: fused traversal
// kernels vs their sequential baselines) checked for shape plus its
// defining invariants (every ok row must be byte_identical, the fused
// walk's visit count can never exceed the constituents' sum, re-derived
// here from the two stats blocks, and the reported visit cycle savings
// must be non-negative), and the v9 per-buffer "memory" attribution block
// re-derived against the holder's own stats: across rows, the L2-hit /
// DRAM / smem-cache / load-group sums must reconstruct the aggregate
// KernelStats counters with EXACT equality (every accumulated value is a
// multiple of 2^-7, see simt/memory_attr.h), each row's issued segments
// must split exactly into its smem-hit/L2/DRAM outcomes with coalescing
// efficiency in (0, 1], per-field rows must sum to their buffer's row,
// and (when profiled) the summed mem-stall cycles must equal the
// mem_stall cycle bucket.
// For v7 reports, an ok stackless variant must show zero stack footprint
// (peak_stack_entries == 0 and, when profiled, an empty stack bucket).
// Exit 0 on success; nonzero with a diagnostic on stderr otherwise. Used
// by the table1_json_validate ctest and scripts/check.sh.
//
// --golden <golden.json> <report.json> compares the two files on the four
// *legacy* variants only: both sides are parsed, auto_select variant
// blocks and gpu/auto_select/* metric entries are pruned, the schema tag
// and git_sha are normalized, and the trees are re-serialized through the
// canonical JsonWriter before byte comparison. That lets a golden fixture
// captured before auto_select existed (schema v1) keep pinning the legacy
// variants' behavior while reports grow new sections (the v7 smem_cache_*
// and v8 shared_loads_elided stats members and the v9 per-variant
// "memory" blocks are likewise pruned).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/variant.h"
#include "obs/json.h"
#include "obs/run_report.h"
#include "simt/kernel_stats.h"

using tt::obs::JsonValue;
using tt::obs::JsonValuePtr;
using tt::obs::JsonWriter;

namespace {

int fail(const std::string& msg) {
  std::cerr << "json_validate: " << msg << "\n";
  return 1;
}

bool slurp(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool is_legacy_variant_name(const std::string& name) {
  for (tt::Variant v : tt::kLegacyVariants)
    if (name == tt::variant_name(v)) return true;
  return false;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------
// Canonical re-serialization of a parsed tree (insertion order preserved,
// numbers through json_number's shortest round-trip form) -- both sides
// of the golden comparison pass through this, so formatting differences
// between writer generations cannot produce false mismatches.
// ---------------------------------------------------------------------
void write_value(JsonWriter& w, const JsonValue& v);

void write_member(JsonWriter& w, const std::string& k, const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNull: w.member_null(k); break;
    case JsonValue::Type::kBool: w.member(k, v.bool_v); break;
    case JsonValue::Type::kNumber: w.member(k, v.num_v); break;
    case JsonValue::Type::kString: w.member(k, v.str_v); break;
    case JsonValue::Type::kArray:
      w.member_array(k);
      for (const JsonValuePtr& e : v.arr_v) write_value(w, *e);
      w.end_array();
      break;
    case JsonValue::Type::kObject:
      w.member_object(k);
      for (const auto& [mk, mv] : v.obj_v) write_member(w, mk, *mv);
      w.end_object();
      break;
  }
}

void write_value(JsonWriter& w, const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNull: w.value_null(); break;
    case JsonValue::Type::kBool: w.value(v.bool_v); break;
    case JsonValue::Type::kNumber: w.value(v.num_v); break;
    case JsonValue::Type::kString: w.value(v.str_v); break;
    case JsonValue::Type::kArray:
      w.begin_array();
      for (const JsonValuePtr& e : v.arr_v) write_value(w, *e);
      w.end_array();
      break;
    case JsonValue::Type::kObject:
      w.begin_object();
      for (const auto& [mk, mv] : v.obj_v) write_member(w, mk, *mv);
      w.end_object();
      break;
  }
}

JsonValue* find_mut(JsonValue& obj, const std::string& k) {
  if (!obj.is_object()) return nullptr;
  for (auto& [mk, mv] : obj.obj_v)
    if (mk == k) return mv.get();
  return nullptr;
}

void set_string(JsonValue& root, const std::string& k, const char* value) {
  if (JsonValue* v = find_mut(root, k)) {
    v->type = JsonValue::Type::kString;
    v->str_v = value;
  }
}

// True for metric keys the v4 profiler added: gpu/<variant>/profile/* and
// gpu/batch/<kernel>/profile/*.
bool is_profile_metric(const std::string& key) {
  return starts_with(key, "gpu/") &&
         key.find("/profile/") != std::string::npos;
}

// Reduce a parsed report to the legacy-variant view the golden fixture
// captures: drop non-legacy variant blocks, gpu/<non-legacy>/* metric
// entries, environment-dependent cpu keys, and normalize schema + git_sha.
void prune_to_legacy(JsonValue& root) {
  set_string(root, "schema", "<schema>");
  set_string(root, "git_sha", "<sha>");
  // Top-level blocks the fixture predates: batch (v3), serving (v5),
  // devices (v6), fusion (v8).
  std::erase_if(root.obj_v, [](const auto& member) {
    return member.first == "batch" || member.first == "serving" ||
           member.first == "devices" || member.first == "fusion";
  });
  JsonValue* rows = find_mut(root, "rows");
  if (!rows || !rows->is_array()) return;
  for (const JsonValuePtr& rowp : rows->arr_v) {
    JsonValue& row = *rowp;
    if (JsonValue* cpu = find_mut(row, "cpu")) {
      // Older fixtures emitted the host thread count unconditionally;
      // current reports gate it behind --json-volatile.
      std::erase_if(cpu->obj_v, [](const auto& member) {
        return member.first == "threads_measured";
      });
    }
    if (JsonValue* variants = find_mut(row, "variants")) {
      std::erase_if(variants->obj_v, [](const auto& member) {
        return !is_legacy_variant_name(member.first);
      });
      // v4 added the optional per-variant "profile" block (--profile), v9
      // the optional "memory" attribution block; v7 added the smem_cache_*
      // counters and v8 shared_loads_elided to every stats block.
      for (auto& [name, vr] : variants->obj_v) {
        if (!vr->is_object()) continue;
        std::erase_if(vr->obj_v, [](const auto& member) {
          return member.first == "profile" || member.first == "memory";
        });
        if (JsonValue* stats = find_mut(*vr, "stats"))
          std::erase_if(stats->obj_v, [](const auto& member) {
            return member.first == "smem_cache_hits" ||
                   member.first == "smem_cache_misses" ||
                   member.first == "shared_loads_elided";
          });
      }
    }
    if (JsonValue* transfer = find_mut(row, "transfer")) {
      // v3 added the per-row launch count.
      std::erase_if(transfer->obj_v, [](const auto& member) {
        return member.first == "launches";
      });
    }
    if (JsonValue* metrics = find_mut(row, "metrics")) {
      for (const char* section : {"counters", "gauges", "histograms"}) {
        JsonValue* sec = find_mut(*metrics, section);
        if (!sec) continue;
        std::erase_if(sec->obj_v, [](const auto& member) {
          if (member.first == "transfer/launches") return true;  // v3
          if (is_profile_metric(member.first)) return true;      // v4
          if (!starts_with(member.first, "gpu/")) return false;
          const std::string variant =
              member.first.substr(4, member.first.find('/', 4) - 4);
          return !is_legacy_variant_name(variant);
        });
      }
    }
  }
}

// Compare golden vs report on the legacy-variant view; on mismatch print
// the first differing canonical line of each side for a usable diagnostic.
int compare_golden(const char* golden_path, const char* report_path) {
  std::string golden_text, report_text;
  if (!slurp(golden_path, &golden_text))
    return fail(std::string("cannot open ") + golden_path);
  if (!slurp(report_path, &report_text))
    return fail(std::string("cannot open ") + report_path);

  std::string golden, report;
  try {
    auto gp = tt::obs::json_parse(golden_text);
    prune_to_legacy(*gp);
    std::ostringstream gs;
    {
      JsonWriter w(gs);
      write_value(w, *gp);
    }
    golden = gs.str();
    auto rp = tt::obs::json_parse(report_text);
    prune_to_legacy(*rp);
    std::ostringstream rs;
    {
      JsonWriter w(rs);
      write_value(w, *rp);
    }
    report = rs.str();
  } catch (const std::exception& e) {
    return fail(std::string("golden compare parse error: ") + e.what());
  }

  if (golden == report) {
    std::cout << "json_validate: " << report_path
              << " matches golden (legacy variants) " << golden_path << "\n";
    return 0;
  }
  std::istringstream ga(golden), rb(report);
  std::string gl, rl;
  std::size_t line = 0;
  for (;;) {
    ++line;
    bool have_g = static_cast<bool>(std::getline(ga, gl));
    bool have_r = static_cast<bool>(std::getline(rb, rl));
    if (!have_g && !have_r) break;
    if (!have_g) gl = "<end of file>";
    if (!have_r) rl = "<end of file>";
    if (gl != rl) {
      std::cerr << "json_validate: golden mismatch at canonical line " << line
                << "\n"
                << "  golden: " << gl << "\n"
                << "  report: " << rl << "\n";
      return 1;
    }
  }
  return fail("golden mismatch (content differs)");
}

// The auto_select variant of an ok row must carry the full v2 selection
// block, and the chosen composition must be one it can dispatch to.
int check_selection(const std::string& at, const JsonValue& vr) {
  const JsonValue* sel = vr.find("selection");
  if (!sel || !sel->is_object())
    return fail(at + ": ok auto_select without \"selection\" block");
  for (const char* field : {"mean_similarity", "baseline_similarity",
                            "samples", "threshold", "chosen",
                            "sampling_cycles"})
    if (!sel->find(field))
      return fail(at + ".selection: missing \"" + field + "\"");
  const std::string& chosen = sel->find("chosen")->as_string();
  if (chosen != tt::variant_name(tt::Variant::kAutoLockstep) &&
      chosen != tt::variant_name(tt::Variant::kAutoNolockstep))
    return fail(at + ".selection: chosen is \"" + chosen +
                "\", expected an autoropes composition");
  return 0;
}

// The optional v4 "profile" block of a variant (or batch-kernel) object
// `holder`: shape plus the attribution invariant, checked with EXACT
// equality -- every cycle charge is an integer-valued double, so the
// bucket split must reconstruct instr_cycles with ==, and the divergence
// histogram must account for every warp step and active lane. When the
// holder also carries a "stats" block, the profile must agree with it.
int check_profile(const std::string& at, const JsonValue& holder) {
  const JsonValue* p = holder.find("profile");
  if (!p) return 0;  // --profile is opt-in
  if (!p->is_object()) return fail(at + ".profile: not an object");
  for (const char* field : {"instr_cycles", "memory_cycles", "warp_steps",
                            "active_lane_sum", "buckets", "depth_histogram",
                            "hot_nodes"})
    if (!p->find(field))
      return fail(at + ".profile: missing \"" + field + "\"");

  const JsonValue* buckets = p->find("buckets");
  if (!buckets->is_object())
    return fail(at + ".profile.buckets: not an object");
  if (buckets->obj_v.size() != tt::kNumCycleBuckets)
    return fail(at + ".profile.buckets: expected " +
                std::to_string(tt::kNumCycleBuckets) + " buckets, got " +
                std::to_string(buckets->obj_v.size()));
  double bucket_sum = 0;
  for (std::size_t b = 0; b < tt::kNumCycleBuckets; ++b) {
    const char* name = tt::cycle_bucket_name(static_cast<tt::CycleBucket>(b));
    const JsonValue* v = buckets->find(name);
    if (!v)
      return fail(at + ".profile.buckets: missing \"" + name + "\"");
    if (v->as_number() < 0)
      return fail(at + ".profile.buckets." + name + ": negative");
    bucket_sum += v->as_number();
  }
  const double instr = p->find("instr_cycles")->as_number();
  if (bucket_sum != instr)
    return fail(at + ".profile: attribution broken -- buckets sum to " +
                std::to_string(bucket_sum) + " but instr_cycles is " +
                std::to_string(instr));

  const JsonValue* hist = p->find("depth_histogram");
  if (!hist->is_array())
    return fail(at + ".profile.depth_histogram: not an array");
  std::uint64_t steps = 0, active = 0;
  for (std::size_t d = 0; d < hist->arr_v.size(); ++d) {
    const JsonValue& bin = *hist->arr_v[d];
    const std::string bat =
        at + ".profile.depth_histogram[" + std::to_string(d) + "]";
    for (const char* field :
         {"depth", "steps", "active_lane_sum", "truncated_lanes",
          "mean_active"})
      if (!bin.find(field)) return fail(bat + ": missing \"" + field + "\"");
    if (bin.find("depth")->as_uint() != d)
      return fail(bat + ": depth is not dense/ascending");
    steps += bin.find("steps")->as_uint();
    active += bin.find("active_lane_sum")->as_uint();
  }
  // An empty histogram means the launch ran without a collector attached
  // (bucket split only); a populated one must reconcile exactly.
  if (!hist->arr_v.empty()) {
    if (steps != p->find("warp_steps")->as_uint())
      return fail(at + ".profile: depth_histogram steps sum to " +
                  std::to_string(steps) + " but warp_steps is " +
                  std::to_string(p->find("warp_steps")->as_uint()));
    if (active != p->find("active_lane_sum")->as_uint())
      return fail(at + ".profile: depth_histogram active-lane sum " +
                  "disagrees with active_lane_sum");
  }

  const JsonValue* hot = p->find("hot_nodes");
  if (!hot->is_array()) return fail(at + ".profile.hot_nodes: not an array");
  std::uint64_t prev_visits = 0;
  for (std::size_t i = 0; i < hot->arr_v.size(); ++i) {
    const JsonValue& n = *hot->arr_v[i];
    const std::string nat = at + ".profile.hot_nodes[" + std::to_string(i) +
                            "]";
    for (const char* field :
         {"node", "warp_visits", "active_lane_sum", "truncated_lanes",
          "mean_active_lanes", "truncation_rate"})
      if (!n.find(field)) return fail(nat + ": missing \"" + field + "\"");
    const std::uint64_t visits = n.find("warp_visits")->as_uint();
    if (i > 0 && visits > prev_visits)
      return fail(nat + ": hot_nodes not ranked by warp_visits desc");
    prev_visits = visits;
  }

  // Cross-check against the holder's own stats block: the profile is a
  // decomposition of those totals, not an independent measurement.
  if (const JsonValue* stats = holder.find("stats")) {
    if (stats->find("instr_cycles") &&
        stats->find("instr_cycles")->as_number() != instr)
      return fail(at + ".profile: instr_cycles disagrees with stats");
    if (stats->find("warp_steps") &&
        stats->find("warp_steps")->as_uint() !=
            p->find("warp_steps")->as_uint())
      return fail(at + ".profile: warp_steps disagrees with stats");
  }
  return 0;
}

// The optional v9 "memory" block of a variant (or batch-kernel) object
// `holder`: per-buffer traffic attribution, re-derived with EXACT
// equality -- the transaction size is a power of two, so every per-field
// share is a dyadic rational and the sums cannot drift (the same
// discipline as the cycle buckets). Checks, per row: the issued segments
// split exactly into smem-hit / L2-hit / DRAM outcomes, ideal <= issued
// with the reported coalescing efficiency == ideal/issued in (0, 1],
// replays bounded by load groups, and the field rows (including the
// implicit "(other)" share) summing to the row measure by measure. Across
// rows: the table must reconstruct the holder's aggregate stats counters,
// and -- when the holder also carries a profile -- the summed mem-stall
// cycles must equal the mem_stall cycle bucket.
int check_memory(const std::string& at, const JsonValue& holder) {
  const JsonValue* m = holder.find("memory");
  if (!m) return 0;  // exported only under --profile
  if (!m->is_object()) return fail(at + ".memory: not an object");
  const JsonValue* buffers = m->find("buffers");
  if (!buffers || !buffers->is_array())
    return fail(at + ".memory: missing \"buffers\" array");

  double sum_groups = 0, sum_l2 = 0, sum_dram = 0, sum_dram_bytes = 0;
  double sum_smem_hits = 0, sum_smem_misses = 0, sum_stall = 0;
  std::string prev_name;
  for (std::size_t i = 0; i < buffers->arr_v.size(); ++i) {
    const JsonValue& b = *buffers->arr_v[i];
    const std::string bat =
        at + ".memory.buffers[" + std::to_string(i) + "]";
    for (const char* field :
         {"name", "elem_bytes", "load_groups", "replayed_loads",
          "issued_segments", "ideal_segments", "coalescing_efficiency",
          "l2_hit_transactions", "dram_transactions", "dram_bytes",
          "smem_cache_hits", "smem_cache_misses", "mem_stall_cycles"})
      if (!b.find(field)) return fail(bat + ": missing \"" + field + "\"");
    const std::string& name = b.find("name")->as_string();
    if (i > 0 && !(prev_name < name))
      return fail(bat + ": buffers not sorted by name");
    prev_name = name;

    const double groups = b.find("load_groups")->as_number();
    const double replayed = b.find("replayed_loads")->as_number();
    const double issued = b.find("issued_segments")->as_number();
    const double ideal = b.find("ideal_segments")->as_number();
    const double l2 = b.find("l2_hit_transactions")->as_number();
    const double dram = b.find("dram_transactions")->as_number();
    const double dram_bytes = b.find("dram_bytes")->as_number();
    const double smem_hits = b.find("smem_cache_hits")->as_number();
    const double smem_misses = b.find("smem_cache_misses")->as_number();
    const double stall = b.find("mem_stall_cycles")->as_number();
    if (replayed > groups)
      return fail(bat + ": replayed_loads exceeds load_groups");
    if (issued != smem_hits + l2 + dram)
      return fail(bat + ": issued_segments (" + std::to_string(issued) +
                  ") do not split into smem-hit + L2-hit + DRAM outcomes");
    if (ideal > issued)
      return fail(bat + ": ideal_segments exceeds issued_segments");
    const double eff = b.find("coalescing_efficiency")->as_number();
    if (issued > 0) {
      if (eff != ideal / issued)
        return fail(bat + ": coalescing_efficiency is not "
                    "ideal_segments / issued_segments");
      if (!(eff > 0 && eff <= 1))
        return fail(bat + ": coalescing_efficiency " + std::to_string(eff) +
                    " outside (0, 1]");
    }
    sum_groups += groups;
    sum_l2 += l2;
    sum_dram += dram;
    sum_dram_bytes += dram_bytes;
    sum_smem_hits += smem_hits;
    sum_smem_misses += smem_misses;
    sum_stall += stall;

    if (const JsonValue* fields = b.find("fields")) {
      if (!fields->is_array()) return fail(bat + ".fields: not an array");
      double ft = 0, fl2 = 0, fdram = 0, fbytes = 0, fsmem = 0, fstall = 0;
      for (std::size_t j = 0; j < fields->arr_v.size(); ++j) {
        const JsonValue& f = *fields->arr_v[j];
        const std::string fat = bat + ".fields[" + std::to_string(j) + "]";
        for (const char* field :
             {"name", "offset", "bytes", "transactions", "l2_hit", "dram",
              "dram_bytes", "smem_cache_hits", "mem_stall_cycles"})
          if (!f.find(field))
            return fail(fat + ": missing \"" + field + "\"");
        ft += f.find("transactions")->as_number();
        fl2 += f.find("l2_hit")->as_number();
        fdram += f.find("dram")->as_number();
        fbytes += f.find("dram_bytes")->as_number();
        fsmem += f.find("smem_cache_hits")->as_number();
        fstall += f.find("mem_stall_cycles")->as_number();
      }
      if (ft != issued)
        return fail(bat + ": field transactions sum to " +
                    std::to_string(ft) + " but the row issued " +
                    std::to_string(issued) + " segments");
      if (fl2 != l2 || fdram != dram || fbytes != dram_bytes ||
          fsmem != smem_hits || fstall != stall)
        return fail(bat + ": field rows do not sum to the buffer row "
                    "(l2/dram/bytes/smem/stall)");
    }
  }

  // The table is a decomposition of the holder's aggregate counters --
  // exact equality, not tolerance.
  if (const JsonValue* stats = holder.find("stats")) {
    auto mismatch = [&](const char* key, double got) -> bool {
      const JsonValue* v = stats->find(key);
      return v && v->as_number() != got;
    };
    if (mismatch("load_instructions", sum_groups))
      return fail(at + ".memory: load_groups sum disagrees with "
                  "stats.load_instructions");
    if (mismatch("l2_hit_transactions", sum_l2))
      return fail(at + ".memory: L2-hit sum disagrees with stats");
    if (mismatch("dram_transactions", sum_dram))
      return fail(at + ".memory: DRAM transaction sum disagrees with stats");
    if (mismatch("dram_bytes", sum_dram_bytes))
      return fail(at + ".memory: DRAM byte sum disagrees with stats");
    if (mismatch("smem_cache_hits", sum_smem_hits))
      return fail(at + ".memory: smem-cache hit sum disagrees with stats");
    if (mismatch("smem_cache_misses", sum_smem_misses))
      return fail(at + ".memory: smem-cache miss sum disagrees with stats");
  }
  if (const JsonValue* p = holder.find("profile")) {
    if (p->is_object())
      if (const JsonValue* buckets = p->find("buckets"))
        if (const JsonValue* ms = buckets->find(
                tt::cycle_bucket_name(tt::CycleBucket::kMemStall)))
          if (ms->as_number() != sum_stall)
            return fail(at + ".memory: mem_stall_cycles sum to " +
                        std::to_string(sum_stall) +
                        " but the profile's mem_stall bucket is " +
                        std::to_string(ms->as_number()));
  }
  return 0;
}

// The optional v3 batch block: schedule accounting, per-kernel rows and
// the amortized-vs-summed transfer split must all be present and shaped
// right when the block exists at all.
int check_batch(const JsonValue& batch) {
  if (!batch.is_object()) return fail("\"batch\" is not an object");
  for (const char* field : {"variant", "policy", "residency", "total_chunks",
                            "rounds", "switches"})
    if (!batch.find(field))
      return fail(std::string("batch: missing \"") + field + "\"");
  const JsonValue* kernels = batch.find("kernels");
  if (!kernels || !kernels->is_array())
    return fail("batch: missing \"kernels\" array");
  for (std::size_t i = 0; i < kernels->arr_v.size(); ++i) {
    const JsonValue& k = *kernels->arr_v[i];
    const std::string at = "batch.kernels[" + std::to_string(i) + "]";
    for (const char* field :
         {"kernel", "config", "ok", "time_ms", "avg_nodes", "stats", "time",
          "upload_bytes", "download_bytes", "solo_transfer_ms"})
      if (!k.find(field))
        return fail(at + ": missing \"" + field + "\"");
    if (!k.find("ok")->as_bool() && !k.find("error"))
      return fail(at + ": failed kernel without \"error\"");
    if (int rc = check_profile(at, k); rc != 0) return rc;
    if (int rc = check_memory(at, k); rc != 0) return rc;
  }
  const JsonValue* transfer = batch.find("transfer");
  if (!transfer || !transfer->is_object())
    return fail("batch: missing \"transfer\" object");
  for (const char* field : {"upload_bytes", "download_bytes", "pcie_gbps",
                            "launch_overhead_ms", "amortized_ms",
                            "summed_solo_ms"})
    if (!transfer->find(field))
      return fail(std::string("batch.transfer: missing \"") + field + "\"");
  if (kernels->arr_v.size() >= 2 &&
      !(transfer->find("amortized_ms")->num_v <
        transfer->find("summed_solo_ms")->num_v))
    return fail("batch.transfer: amortized_ms is not strictly below "
                "summed_solo_ms (the batch saved nothing)");
  if (!batch.find("metrics"))
    return fail("batch: missing \"metrics\" object");
  return 0;
}

// A percentile summary (latency_ms / queue_delay_ms): all fields present,
// non-negative, and monotone p50 <= p95 <= p99 <= max.
int check_latency_summary(const std::string& at, const JsonValue& s) {
  if (!s.is_object()) return fail(at + ": not an object");
  for (const char* field : {"count", "mean", "p50", "p95", "p99", "max"})
    if (!s.find(field)) return fail(at + ": missing \"" + field + "\"");
  const double p50 = s.find("p50")->as_number();
  const double p95 = s.find("p95")->as_number();
  const double p99 = s.find("p99")->as_number();
  const double mx = s.find("max")->as_number();
  if (p50 < 0) return fail(at + ".p50: negative");
  if (!(p50 <= p95 && p95 <= p99 && p99 <= mx))
    return fail(at + ": percentiles not monotone (p50 " +
                std::to_string(p50) + ", p95 " + std::to_string(p95) +
                ", p99 " + std::to_string(p99) + ", max " +
                std::to_string(mx) + ")");
  return 0;
}

// The optional v5 serving block: admission accounting must balance
// (completed + dropped == submitted, per-drain query counts sum to
// completed), both percentile summaries must be monotone, and every queue
// gauge must be non-negative.
int check_serving(const JsonValue& serving) {
  if (!serving.is_object()) return fail("\"serving\" is not an object");
  for (const char* field :
       {"arrivals", "rate_qps", "queries", "devices", "shard_chunk",
        "variant", "policy",
        "drain_policy", "queue_capacity", "submitted", "completed",
        "dropped", "failed", "span_ms", "throughput_qps", "occupancy",
        "latency_ms", "queue_delay_ms", "queue", "transfer", "drains",
        "metrics"})
    if (!serving.find(field))
      return fail(std::string("serving: missing \"") + field + "\"");

  const std::uint64_t submitted = serving.find("submitted")->as_uint();
  const std::uint64_t completed = serving.find("completed")->as_uint();
  const std::uint64_t dropped = serving.find("dropped")->as_uint();
  const std::uint64_t failed = serving.find("failed")->as_uint();
  if (completed + dropped != submitted)
    return fail("serving: completed " + std::to_string(completed) +
                " + dropped " + std::to_string(dropped) +
                " != submitted " + std::to_string(submitted) +
                " (was the session flushed?)");
  if (failed > completed)
    return fail("serving: failed exceeds completed");

  if (int rc = check_latency_summary("serving.latency_ms",
                                     *serving.find("latency_ms")))
    return rc;
  if (int rc = check_latency_summary("serving.queue_delay_ms",
                                     *serving.find("queue_delay_ms")))
    return rc;

  const JsonValue* queue = serving.find("queue");
  if (!queue->is_object()) return fail("serving.queue: not an object");
  for (const char* field : {"depth_max", "depth_mean", "depth_stddev"}) {
    const JsonValue* v = queue->find(field);
    if (!v) return fail(std::string("serving.queue: missing \"") + field +
                        "\"");
    if (v->as_number() < 0)
      return fail(std::string("serving.queue.") + field + ": negative");
  }
  if (serving.find("occupancy")->as_number() < 0)
    return fail("serving.occupancy: negative");

  const JsonValue* drains = serving.find("drains");
  if (!drains->is_array()) return fail("serving.drains: not an array");
  std::uint64_t drained = 0;
  double prev_dispatch = 0;
  for (std::size_t i = 0; i < drains->arr_v.size(); ++i) {
    const JsonValue& d = *drains->arr_v[i];
    const std::string at = "serving.drains[" + std::to_string(i) + "]";
    for (const char* field :
         {"trigger_ms", "dispatch_ms", "device", "queries",
          "queue_depth_before", "cold_launches", "transfer_ms",
          "solo_transfer_ms", "compute_ms", "service_ms", "residency",
          "total_chunks", "rounds", "switches"})
      if (!d.find(field)) return fail(at + ": missing \"" + field + "\"");
    const std::uint64_t q = d.find("queries")->as_uint();
    if (q == 0) return fail(at + ": empty drain");
    if (d.find("device")->as_uint() >= serving.find("devices")->as_uint())
      return fail(at + ": device index out of range");
    drained += q;
    const double dispatch = d.find("dispatch_ms")->as_number();
    if (dispatch < d.find("trigger_ms")->as_number())
      return fail(at + ": dispatch_ms precedes trigger_ms");
    if (i > 0 && dispatch < prev_dispatch)
      return fail(at + ": dispatch times not non-decreasing");
    prev_dispatch = dispatch;
    if (d.find("transfer_ms")->as_number() >
        d.find("solo_transfer_ms")->as_number() + 1e-9)
      return fail(at + ": amortized transfer exceeds summed solo transfer");
  }
  if (drained != completed)
    return fail("serving.drains: per-drain queries sum to " +
                std::to_string(drained) + " but completed is " +
                std::to_string(completed));

  if (const JsonValue* sweep = serving.find("sweep")) {
    if (!sweep->is_array()) return fail("serving.sweep: not an array");
    for (std::size_t i = 0; i < sweep->arr_v.size(); ++i) {
      const JsonValue& p = *sweep->arr_v[i];
      const std::string at = "serving.sweep[" + std::to_string(i) + "]";
      for (const char* field :
           {"max_delay_ms", "max_batch", "drains", "mean_batch", "p50_ms",
            "p95_ms", "p99_ms", "throughput_qps", "transfer_saved_ms"})
        if (!p.find(field)) return fail(at + ": missing \"" + field + "\"");
      if (!(p.find("p50_ms")->as_number() <=
                p.find("p95_ms")->as_number() &&
            p.find("p95_ms")->as_number() <= p.find("p99_ms")->as_number()))
        return fail(at + ": percentiles not monotone");
      if (p.find("transfer_saved_ms")->as_number() < -1e-9)
        return fail(at + ": negative transfer_saved_ms");
    }
  }
  return 0;
}

// The optional v6 devices block: per-device work must sum to each
// kernel's totals, pipelined overlap can only hide copy-in time, every
// device's busy time must decompose into exposed transfer + compute, and
// the makespan must be exactly the slowest device's clock -- never more
// than the summed per-device time (sharding cannot create work).
int check_devices(const JsonValue& devices) {
  if (!devices.is_object()) return fail("\"devices\" is not an object");
  for (const char* field :
       {"devices", "chunk_points", "policy", "variant", "single_device_ms",
        "makespan_ms", "speedup", "kernels", "transfer", "sweep", "metrics"})
    if (!devices.find(field))
      return fail(std::string("devices: missing \"") + field + "\"");
  const std::uint64_t n_devices = devices.find("devices")->as_uint();
  if (n_devices == 0) return fail("devices.devices: must be >= 1");

  const JsonValue* kernels = devices.find("kernels");
  if (!kernels->is_array()) return fail("devices.kernels: not an array");
  double kernel_makespan_sum = 0;
  double kernel_single_sum = 0;
  for (std::size_t i = 0; i < kernels->arr_v.size(); ++i) {
    const JsonValue& k = *kernels->arr_v[i];
    const std::string at = "devices.kernels[" + std::to_string(i) + "]";
    for (const char* field :
         {"kernel", "ok", "points", "chunks", "variant", "single_device_ms",
          "makespan_ms", "speedup", "per_device"})
      if (!k.find(field)) return fail(at + ": missing \"" + field + "\"");
    if (!k.find("ok")->as_bool()) {
      if (!k.find("error")) return fail(at + ": failed kernel without error");
      continue;
    }
    const JsonValue* per = k.find("per_device");
    if (!per->is_array()) return fail(at + ".per_device: not an array");
    if (per->arr_v.size() != n_devices)
      return fail(at + ".per_device: " + std::to_string(per->arr_v.size()) +
                  " entries for " + std::to_string(n_devices) + " devices");
    std::uint64_t chunks = 0, points = 0;
    double busy_sum = 0, busy_max = 0;
    for (std::size_t d = 0; d < per->arr_v.size(); ++d) {
      const JsonValue& dev = *per->arr_v[d];
      const std::string dat = at + ".per_device[" + std::to_string(d) + "]";
      for (const char* field :
           {"device", "chunks", "points", "rounds", "steals", "cost",
            "upload_bytes", "download_bytes", "copy_chunks", "compute_ms",
            "copy_in_ms", "copy_out_ms", "overlap_ms", "exposed_ms",
            "busy_ms"})
        if (!dev.find(field)) return fail(dat + ": missing \"" + field + "\"");
      if (dev.find("device")->as_uint() != d)
        return fail(dat + ": device indices not dense/ascending");
      chunks += dev.find("chunks")->as_uint();
      points += dev.find("points")->as_uint();
      const double overlap = dev.find("overlap_ms")->as_number();
      const double copy_in = dev.find("copy_in_ms")->as_number();
      const double exposed = dev.find("exposed_ms")->as_number();
      const double compute = dev.find("compute_ms")->as_number();
      const double busy = dev.find("busy_ms")->as_number();
      if (overlap < 0) return fail(dat + ".overlap_ms: negative");
      if (overlap > copy_in + 1e-9)
        return fail(dat + ": overlap_ms exceeds copy_in_ms (overlap can "
                    "only hide upload time)");
      if (std::abs(busy - (exposed + compute)) > 1e-9)
        return fail(dat + ": busy_ms != exposed_ms + compute_ms");
      busy_sum += busy;
      busy_max = std::max(busy_max, busy);
    }
    if (chunks != k.find("chunks")->as_uint())
      return fail(at + ": per-device chunks sum to " +
                  std::to_string(chunks) + " but kernel has " +
                  std::to_string(k.find("chunks")->as_uint()));
    if (points != k.find("points")->as_uint())
      return fail(at + ": per-device points sum to " +
                  std::to_string(points) + " but kernel has " +
                  std::to_string(k.find("points")->as_uint()));
    const double makespan = k.find("makespan_ms")->as_number();
    if (std::abs(makespan - busy_max) > 1e-9)
      return fail(at + ": makespan_ms is not the slowest device's busy_ms");
    if (makespan > busy_sum + 1e-9)
      return fail(at + ": makespan_ms exceeds summed per-device busy time");
    kernel_makespan_sum += makespan;
    kernel_single_sum += k.find("single_device_ms")->as_number();
  }
  if (std::abs(devices.find("makespan_ms")->as_number() -
               kernel_makespan_sum) > 1e-9)
    return fail("devices.makespan_ms: does not sum the per-kernel makespans");
  if (std::abs(devices.find("single_device_ms")->as_number() -
               kernel_single_sum) > 1e-9)
    return fail("devices.single_device_ms: does not sum the per-kernel "
                "baselines");

  const JsonValue* sweep = devices.find("sweep");
  if (!sweep->is_array()) return fail("devices.sweep: not an array");
  for (std::size_t i = 0; i < sweep->arr_v.size(); ++i) {
    const JsonValue& p = *sweep->arr_v[i];
    const std::string at = "devices.sweep[" + std::to_string(i) + "]";
    for (const char* field :
         {"devices", "chunk_points", "single_device_ms", "makespan_ms",
          "speedup", "copy_in_ms", "overlap_ms", "exposed_ms",
          "overlap_efficiency"})
      if (!p.find(field)) return fail(at + ": missing \"" + field + "\"");
    if (p.find("overlap_ms")->as_number() >
        p.find("copy_in_ms")->as_number() + 1e-9)
      return fail(at + ": overlap_ms exceeds copy_in_ms");
    const double eff = p.find("overlap_efficiency")->as_number();
    if (eff < 0 || eff > 1 + 1e-9)
      return fail(at + ": overlap_efficiency outside [0, 1]");
  }
  return 0;
}

// The optional v8 fusion block: per pair x variant, an ok row must be
// byte_identical to its sequential baseline, the fused walk's visit count
// is re-derived to be bounded by the constituents' sum (the union can
// never exceed it), and the reported visit / mem_stall savings must be
// non-negative and <= the sequential totals they were carved from.
int check_fusion(const JsonValue& fusion) {
  if (!fusion.is_object()) return fail("\"fusion\" is not an object");
  const JsonValue* pairs = fusion.find("pairs");
  if (!pairs || !pairs->is_array())
    return fail("fusion: missing \"pairs\" array");
  if (!fusion.find("metrics"))
    return fail("fusion: missing \"metrics\" object");
  for (std::size_t i = 0; i < pairs->arr_v.size(); ++i) {
    const JsonValue& p = *pairs->arr_v[i];
    const std::string at = "fusion.pairs[" + std::to_string(i) + "]";
    for (const char* field : {"fused", "first", "second", "points",
                              "variants"})
      if (!p.find(field)) return fail(at + ": missing \"" + field + "\"");
    const JsonValue* variants = p.find("variants");
    if (!variants->is_array()) return fail(at + ".variants: not an array");
    std::size_t ok_rows = 0;
    for (std::size_t j = 0; j < variants->arr_v.size(); ++j) {
      const JsonValue& r = *variants->arr_v[j];
      const std::string vat = at + ".variants[" + std::to_string(j) + "]";
      if (!r.find("variant")) return fail(vat + ": missing \"variant\"");
      if (!r.find("ok")) return fail(vat + ": missing \"ok\"");
      if (!r.find("ok")->as_bool()) {
        if (!r.find("error")) return fail(vat + ": failed row without error");
        continue;
      }
      ++ok_rows;
      for (const char* field :
           {"byte_identical", "fused_stats", "fused_time",
            "sequential_stats", "sequential_time", "visit_cycles_saved",
            "mem_stall_cycles_saved"})
        if (!r.find(field)) return fail(vat + ": missing \"" + field + "\"");
      if (!r.find("byte_identical")->as_bool())
        return fail(vat + ": fused results are not byte-identical to the "
                    "sequential baseline");
      const JsonValue* fs = r.find("fused_stats");
      const JsonValue* ss = r.find("sequential_stats");
      if (!fs->is_object() || !ss->is_object())
        return fail(vat + ": stats blocks are not objects");
      const std::uint64_t fused_visits = fs->find("lane_visits")->as_uint();
      const std::uint64_t seq_visits = ss->find("lane_visits")->as_uint();
      if (fused_visits > seq_visits)
        return fail(vat + ": fused walk visits " +
                    std::to_string(fused_visits) +
                    " nodes but the constituents' sum is " +
                    std::to_string(seq_visits) +
                    " (the union cannot exceed the sum)");
      // Visit savings are sign-guaranteed (the union walk charges fewer
      // visits than the sum); mem_stall savings are reported but not
      // sign-checked -- better fused locality can legitimately trade DRAM
      // transactions for more L2-hit stalls on an individual row.
      if (r.find("visit_cycles_saved")->as_number() < 0)
        return fail(vat + ": negative visit_cycles_saved");
    }
    if (ok_rows == 0)
      return fail(at + ": no ok variant rows (nothing was measured)");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::strcmp(argv[1], "--golden") == 0)
    return compare_golden(argv[2], argv[3]);
  if (argc != 2) {
    std::cerr << "usage: json_validate <report.json>\n"
              << "       json_validate --golden <golden.json> <report.json>\n";
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) return fail(std::string("cannot open ") + argv[1]);
  std::ostringstream buf;
  buf << in.rdbuf();

  try {
    auto root = tt::obs::json_parse(buf.str());
    if (!root->is_object()) return fail("root is not an object");
    const JsonValue* schema = root->find("schema");
    if (!schema) return fail("missing \"schema\"");
    // v8 (pre-memory) and v7 (pre-fusion) reports stay fully validatable,
    // as does v6 (pre-stackless): the committed sharding fixture is a v6
    // one and must keep passing.
    constexpr const char* kV8Schema = "treetrav.run_report/v8";
    constexpr const char* kV7Schema = "treetrav.run_report/v7";
    constexpr const char* kV6Schema = "treetrav.run_report/v6";
    const bool is_v7_plus = schema->as_string() == tt::obs::kRunReportSchema ||
                            schema->as_string() == kV8Schema ||
                            schema->as_string() == kV7Schema;
    if (!is_v7_plus && schema->as_string() != kV6Schema)
      return fail("schema is \"" + schema->as_string() + "\", expected \"" +
                  tt::obs::kRunReportSchema + "\" (or \"" + kV8Schema +
                  "\" / \"" + kV7Schema + "\" / \"" + kV6Schema + "\")");
    if (!root->find("generator")) return fail("missing \"generator\"");
    if (!root->find("git_sha")) return fail("missing \"git_sha\"");
    const JsonValue* rows = root->find("rows");
    if (!rows || !rows->is_array()) return fail("missing \"rows\" array");
    const JsonValue* tables = root->find("tables");
    if (!tables || !tables->is_array())
      return fail("missing \"tables\" array");

    for (std::size_t i = 0; i < rows->arr_v.size(); ++i) {
      const JsonValue& row = *rows->arr_v[i];
      const std::string at = "rows[" + std::to_string(i) + "]";
      if (!row.find("config")) return fail(at + ": missing \"config\"");
      const JsonValue* variants = row.find("variants");
      if (!variants || !variants->is_object())
        return fail(at + ": missing \"variants\" object");
      for (tt::Variant v : tt::kAllVariants) {
        // The stackless family only exists from v7 on.
        if (!is_v7_plus && tt::variant_is_stackless(v)) continue;
        const JsonValue* vr = variants->find(tt::variant_name(v));
        if (!vr) return fail(at + ": missing variant " + tt::variant_name(v));
        if (!vr->find("stats"))
          return fail(at + "." + tt::variant_name(v) + ": missing \"stats\"");
        if (!vr->find("time"))
          return fail(at + "." + tt::variant_name(v) + ": missing \"time\"");
        if (v == tt::Variant::kAutoSelect && vr->find("ok")->as_bool()) {
          int rc = check_selection(at + "." + tt::variant_name(v), *vr);
          if (rc != 0) return rc;
        }
        // A variant with no stack state can have no stack footprint: zero
        // peak depth and (when profiled) an empty stack bucket.
        if (tt::variant_is_stackless(v) && vr->find("ok")->as_bool()) {
          const std::string vat = at + "." + tt::variant_name(v);
          const JsonValue* stats = vr->find("stats");
          if (const JsonValue* peak = stats->find("peak_stack_entries"))
            if (peak->as_uint() != 0)
              return fail(vat + ": stackless variant reports " +
                          std::to_string(peak->as_uint()) +
                          " peak_stack_entries");
          if (const JsonValue* p = vr->find("profile"))
            if (p->is_object())
              if (const JsonValue* buckets = p->find("buckets"))
                if (const JsonValue* sb = buckets->find(
                        tt::cycle_bucket_name(tt::CycleBucket::kStack)))
                  if (sb->as_number() != 0)
                    return fail(vat + ": stackless variant charged " +
                                std::to_string(sb->as_number()) +
                                " cycles to the stack bucket");
        }
        if (int rc = check_profile(at + "." + tt::variant_name(v), *vr);
            rc != 0)
          return rc;
        if (int rc = check_memory(at + "." + tt::variant_name(v), *vr);
            rc != 0)
          return rc;
      }
      const JsonValue* metrics = row.find("metrics");
      if (!metrics || !metrics->is_object())
        return fail(at + ": missing \"metrics\" object");
      if (!metrics->find("counters"))
        return fail(at + ".metrics: missing \"counters\"");
    }
    if (const JsonValue* batch = root->find("batch")) {
      int rc = check_batch(*batch);
      if (rc != 0) return rc;
    }
    if (const JsonValue* serving = root->find("serving")) {
      int rc = check_serving(*serving);
      if (rc != 0) return rc;
    }
    if (const JsonValue* devices = root->find("devices")) {
      int rc = check_devices(*devices);
      if (rc != 0) return rc;
    }
    if (const JsonValue* fusion = root->find("fusion")) {
      int rc = check_fusion(*fusion);
      if (rc != 0) return rc;
    }
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  std::cout << "json_validate: " << argv[1] << " OK\n";
  return 0;
}
