#include "data/projection.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace tt {
namespace {

TEST(Projection, ShapeAndDeterminism) {
  std::vector<float> data(50 * 20);
  Pcg32 rng(1);
  for (auto& v : data) v = rng.next_float();
  PointSet a = random_projection(data, 50, 20, 7, 99);
  PointSet b = random_projection(data, 50, 20, 7, 99);
  EXPECT_EQ(a.dim(), 7);
  EXPECT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i)
    for (int d = 0; d < 7; ++d) EXPECT_FLOAT_EQ(a.at(i, d), b.at(i, d));
}

TEST(Projection, RejectsBadArgs) {
  std::vector<float> data(10);
  EXPECT_THROW(random_projection(data, 5, 2, 0, 1), std::invalid_argument);
  EXPECT_THROW(random_projection(data, 5, 2, kMaxDim + 1, 1),
               std::invalid_argument);
  EXPECT_THROW(random_projection(data, 5, 3, 2, 1), std::invalid_argument);
}

TEST(Projection, ApproximatelyPreservesDistances) {
  // Johnson-Lindenstrauss: with N(0, 1/k) entries, E[|Px - Py|^2] equals
  // |x - y|^2. Averaged over many pairs the ratio should be close to 1.
  constexpr std::size_t kN = 200;
  constexpr int kInDim = 64, kOutDim = 8;
  std::vector<float> data(kN * kInDim);
  Pcg32 rng(2);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  PointSet proj = random_projection(data, kN, kInDim, kOutDim, 7);

  double ratio_sum = 0;
  int pairs = 0;
  for (std::size_t i = 0; i + 1 < kN; i += 2) {
    double orig = 0;
    for (int d = 0; d < kInDim; ++d) {
      double delta = static_cast<double>(data[i * kInDim + d]) -
                     data[(i + 1) * kInDim + d];
      orig += delta * delta;
    }
    double got = 0;
    for (int d = 0; d < kOutDim; ++d) {
      double delta =
          static_cast<double>(proj.at(i, d)) - proj.at(i + 1, d);
      got += delta * delta;
    }
    ratio_sum += got / orig;
    ++pairs;
  }
  EXPECT_NEAR(ratio_sum / pairs, 1.0, 0.2);
}

TEST(Projection, DifferentSeedsGiveDifferentMatrices) {
  std::vector<float> data(10 * 4, 1.f);
  PointSet a = random_projection(data, 10, 4, 3, 1);
  PointSet b = random_projection(data, 10, 4, 3, 2);
  EXPECT_NE(a.at(0, 0), b.at(0, 0));
}

}  // namespace
}  // namespace tt
