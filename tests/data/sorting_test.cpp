#include "data/sorting.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/generators.h"

namespace tt {
namespace {

bool is_permutation_of_identity(const std::vector<std::uint32_t>& perm) {
  std::vector<std::uint32_t> s = perm;
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < s.size(); ++i)
    if (s[i] != i) return false;
  return true;
}

double adjacent_distance_sum(const PointSet& p,
                             const std::vector<std::uint32_t>& perm) {
  double total = 0;
  float q[kMaxDim];
  for (std::size_t j = 0; j + 1 < perm.size(); ++j) {
    p.gather(perm[j], q);
    total += std::sqrt(p.sq_dist(perm[j + 1], q));
  }
  return total;
}

TEST(Morton, IsAPermutation) {
  PointSet p = gen_uniform(1000, 2, 1);
  EXPECT_TRUE(is_permutation_of_identity(morton_order(p)));
  PointSet p3 = gen_uniform(1000, 3, 2);
  EXPECT_TRUE(is_permutation_of_identity(morton_order(p3)));
}

TEST(Morton, RejectsHighDim) {
  PointSet p = gen_uniform(10, 5, 3);
  EXPECT_THROW(morton_order(p), std::invalid_argument);
}

TEST(Morton, ImprovesSpatialLocality) {
  PointSet p = gen_uniform(5000, 2, 4);
  auto sorted = morton_order(p);
  auto shuffled = shuffled_order(p.size(), 99);
  EXPECT_LT(adjacent_distance_sum(p, sorted),
            0.25 * adjacent_distance_sum(p, shuffled));
}

TEST(TreeOrder, IsAPermutation) {
  PointSet p = gen_uniform(777, 7, 5);
  EXPECT_TRUE(is_permutation_of_identity(tree_order(p, 8)));
}

TEST(TreeOrder, ImprovesSpatialLocality) {
  PointSet p = gen_covtype_like(3000, 7, 6);
  auto sorted = tree_order(p, 8);
  auto shuffled = shuffled_order(p.size(), 98);
  EXPECT_LT(adjacent_distance_sum(p, sorted),
            0.5 * adjacent_distance_sum(p, shuffled));
}

TEST(Shuffled, IsAPermutationAndSeedDeterministic) {
  auto a = shuffled_order(500, 7);
  auto b = shuffled_order(500, 7);
  auto c = shuffled_order(500, 8);
  EXPECT_TRUE(is_permutation_of_identity(a));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Identity, IsIdentity) {
  auto id = identity_order(10);
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(id[i], i);
}

TEST(Morton, OrdersQuadrantsCorrectly) {
  // Four points, one per quadrant: Morton order with y in bit 1, x in bit 0
  // visits (0,0), (1,0), (0,1), (1,1) given our d-shift convention.
  PointSet p(2, 4);
  float xs[4] = {0.f, 1.f, 0.f, 1.f};
  float ys[4] = {0.f, 0.f, 1.f, 1.f};
  for (std::size_t i = 0; i < 4; ++i) {
    p.set(i, 0, xs[i]);
    p.set(i, 1, ys[i]);
  }
  auto perm = morton_order(p);
  // First point must be the origin corner, last the far corner.
  EXPECT_EQ(perm.front(), 0u);
  EXPECT_EQ(perm.back(), 3u);
}

}  // namespace
}  // namespace tt
