#include "data/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace tt {
namespace {

TEST(Plummer, ShapeAndDeterminism) {
  BodySet a = gen_plummer(500, 1);
  BodySet b = gen_plummer(500, 1);
  EXPECT_EQ(a.pos.size(), 500u);
  EXPECT_EQ(a.pos.dim(), 3);
  EXPECT_EQ(a.mass.size(), 500u);
  EXPECT_EQ(a.vel.size(), 1500u);
  for (std::size_t i = 0; i < 500; ++i)
    for (int d = 0; d < 3; ++d) EXPECT_FLOAT_EQ(a.pos.at(i, d), b.pos.at(i, d));
}

TEST(Plummer, CentrallyConcentrated) {
  BodySet b = gen_plummer(5000, 2);
  // Plummer half-mass radius ~ 1.3; most bodies well inside r = 3.
  int inside = 0;
  for (std::size_t i = 0; i < 5000; ++i) {
    double r2 = 0;
    for (int d = 0; d < 3; ++d)
      r2 += static_cast<double>(b.pos.at(i, d)) * b.pos.at(i, d);
    if (r2 < 9.0) ++inside;
  }
  EXPECT_GT(inside, 4000);
}

TEST(Plummer, EqualMasses) {
  BodySet b = gen_plummer(100, 3);
  for (float m : b.mass) EXPECT_FLOAT_EQ(m, 0.01f);
}

TEST(RandomBodies, InUnitCube) {
  BodySet b = gen_random_bodies(1000, 4);
  for (std::size_t i = 0; i < 1000; ++i)
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(b.pos.at(i, d), 0.f);
      EXPECT_LT(b.pos.at(i, d), 1.f);
    }
}

TEST(Uniform, MomentsRoughlyUniform) {
  PointSet p = gen_uniform(20000, 4, 5);
  for (int d = 0; d < 4; ++d) {
    RunningStats rs;
    for (std::size_t i = 0; i < p.size(); ++i) rs.add(p.at(i, d));
    EXPECT_NEAR(rs.mean(), 0.5, 0.02);
    EXPECT_NEAR(rs.variance(), 1.0 / 12.0, 0.01);
  }
}

TEST(CovtypeLike, ShapeAndSpread) {
  PointSet p = gen_covtype_like(2000, 7, 6);
  EXPECT_EQ(p.dim(), 7);
  EXPECT_EQ(p.size(), 2000u);
  RunningStats rs;
  for (std::size_t i = 0; i < p.size(); ++i) rs.add(p.at(i, 0));
  EXPECT_GT(rs.summary().stddev, 0.1);  // non-degenerate
}

TEST(MnistLike, Clustered) {
  // Clustered data: mean nearest-cluster distance much below the overall
  // spread. Cheap proxy: variance of coordinates exceeds variance within a
  // random small neighborhood... just check determinism and spread here;
  // the traversal-level behavior is covered by the benchmark tests.
  PointSet a = gen_mnist_like(500, 7, 7);
  PointSet b = gen_mnist_like(500, 7, 7);
  for (int d = 0; d < 7; ++d)
    EXPECT_FLOAT_EQ(a.at(17, d), b.at(17, d));
}

TEST(GeocityLike, TwoDimensionalAndClustered) {
  PointSet p = gen_geocity_like(20000, 8);
  EXPECT_EQ(p.dim(), 2);
  // Clustering: the top-populated cell of a coarse grid should hold far
  // more than the uniform share of points.
  constexpr int kGrid = 32;
  std::vector<int> cells(kGrid * kGrid, 0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    int gx = std::min(kGrid - 1, std::max(0, static_cast<int>(
                                                 p.at(i, 0) / 360.0 * kGrid)));
    int gy = std::min(
        kGrid - 1,
        std::max(0, static_cast<int>((p.at(i, 1) + 60.0) / 130.0 * kGrid)));
    ++cells[gy * kGrid + gx];
  }
  int max_cell = 0;
  for (int c : cells) max_cell = std::max(max_cell, c);
  double uniform_share = 20000.0 / (kGrid * kGrid);
  EXPECT_GT(max_cell, 10 * uniform_share);
}

TEST(Generators, SeedsChangeOutput) {
  PointSet a = gen_uniform(100, 3, 1);
  PointSet b = gen_uniform(100, 3, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < 100 && !any_diff; ++i)
    if (a.at(i, 0) != b.at(i, 0)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace tt
