// Full-grid integration sweep: every benchmark x input x order cell runs
// through the harness with verification on (all six executors must agree),
// and the row's derived metrics must be internally consistent. This is the
// paper's whole evaluation grid as one parameterized test suite.
#include <gtest/gtest.h>

#include <tuple>

#include "bench_algos/harness.h"

namespace tt {
namespace {

using Cell = std::tuple<Algo, InputKind, bool>;

std::vector<Cell> all_cells() {
  std::vector<Cell> cells;
  for (Algo a : {Algo::kBH, Algo::kPC, Algo::kKNN, Algo::kNN, Algo::kVP})
    for (InputKind in : inputs_for(a))
      for (bool sorted : {true, false}) cells.emplace_back(a, in, sorted);
  return cells;
}

class GridCell : public ::testing::TestWithParam<Cell> {};

TEST_P(GridCell, VerifiedAndConsistent) {
  auto [algo, input, sorted] = GetParam();
  BenchConfig cfg;
  cfg.algo = algo;
  cfg.input = input;
  cfg.sorted = sorted;
  cfg.n = 384;
  cfg.verify = true;  // throws on any cross-variant result mismatch
  cfg.pc_target_neighbors = 10;
  cfg.k = 4;

  BenchRow row = run_bench(cfg);

  // Work accounting invariants.
  EXPECT_GT(row.cpu_visits, 0u);
  EXPECT_EQ(row.result(Variant::kAutoNolockstep).stats.lane_visits,
            row.cpu_visits)
      << "per-lane GPU visits must equal the CPU recursion's";
  EXPECT_GE(row.result(Variant::kAutoLockstep).stats.lane_visits,
            row.result(Variant::kAutoNolockstep).stats.lane_visits)
      << "lockstep lanes ride along in the union traversal";
  EXPECT_GE(row.work_expansion.mean, 1.0);
  // Every variant either succeeded with positive, finite time or recorded
  // a graceful eligibility skip (stackless variants on guided kernels /
  // index_walk on non-binary trees). Legacy variants never skip.
  for (Variant v : kAllVariants) {
    const VariantResult& r = row.result(v);
    if (!r.ok() && variant_is_stackless(v)) {
      EXPECT_EQ(r.error.rfind("skipped:", 0), 0u)
          << variant_name(v) << ": " << r.error;
      continue;
    }
    EXPECT_TRUE(r.ok()) << variant_name(v) << ": " << r.error;
    EXPECT_GT(r.time_ms, 0.0) << variant_name(v);
    EXPECT_LT(r.time_ms, 1e6) << variant_name(v);
  }
  // Recursive variants pay calls; autoropes never do.
  EXPECT_EQ(row.result(Variant::kAutoLockstep).stats.calls, 0u);
  EXPECT_GT(row.result(Variant::kRecNolockstep).stats.calls, 0u);
}

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  auto [algo, input, sorted] = info.param;
  std::string s = algo_name(algo) + "_" + input_name(input) +
                  (sorted ? "_sorted" : "_unsorted");
  std::string out;
  for (char c : s)
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9'))
      out += c;
    else
      out += '_';
  return out;
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, GridCell, ::testing::ValuesIn(all_cells()),
                         cell_name);

}  // namespace
}  // namespace tt
