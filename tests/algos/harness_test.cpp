#include "bench_algos/harness.h"

#include <gtest/gtest.h>

namespace tt {
namespace {

BenchConfig small_config(Algo a, InputKind in, bool sorted) {
  BenchConfig c;
  c.algo = a;
  c.input = in;
  c.n = 512;
  c.sorted = sorted;
  c.verify = true;  // the harness cross-checks every variant
  c.pc_target_neighbors = 12;
  return c;
}

TEST(Harness, NamesAndGrids) {
  EXPECT_EQ(algo_name(Algo::kBH), "Barnes-Hut");
  EXPECT_EQ(input_name(InputKind::kGeocity), "Geocity");
  EXPECT_EQ(inputs_for(Algo::kBH).size(), 2u);
  EXPECT_EQ(inputs_for(Algo::kPC).size(), 4u);
}

TEST(Harness, AnalysisMatchesPaperClassification) {
  EXPECT_EQ(analysis_for(Algo::kBH).cls, ir::TraversalClass::kUnguided);
  EXPECT_EQ(analysis_for(Algo::kPC).cls, ir::TraversalClass::kUnguided);
  EXPECT_EQ(analysis_for(Algo::kKNN).call_sets.size(), 2u);
  EXPECT_EQ(analysis_for(Algo::kNN).cls, ir::TraversalClass::kGuided);
  EXPECT_EQ(analysis_for(Algo::kVP).cls, ir::TraversalClass::kGuided);
}

TEST(Harness, PcRowIsInternallyConsistent) {
  BenchRow row = run_bench(small_config(Algo::kPC, InputKind::kUniform, true));
  EXPECT_GT(row.cpu_t1_ms, 0.0);
  const VariantResult& al = row.result(Variant::kAutoLockstep);
  const VariantResult& an = row.result(Variant::kAutoNolockstep);
  EXPECT_GT(al.time_ms, 0.0);
  EXPECT_GT(an.time_ms, 0.0);
  EXPECT_GT(row.result(Variant::kRecNolockstep).time_ms, 0.0);
  // Lockstep union traversal >= per-point traversal on average.
  EXPECT_GE(al.avg_nodes, an.avg_nodes);
  // Work expansion is at least 1 by construction.
  EXPECT_GE(row.work_expansion.mean, 1.0);
  // Speedup columns derive from the stored numbers.
  EXPECT_NEAR(row.speedup_vs_1(al), row.cpu_t1_ms / al.time_ms, 1e-12);
}

TEST(Harness, BhRowRuns) {
  BenchRow row =
      run_bench(small_config(Algo::kBH, InputKind::kPlummer, true));
  EXPECT_GT(row.result(Variant::kAutoLockstep).stats.lane_visits, 0u);
  EXPECT_GT(row.result(Variant::kRecLockstep).stats.calls, 0u);
}

TEST(Harness, BhMultiTimestepAccumulates) {
  BenchConfig one = small_config(Algo::kBH, InputKind::kPlummer, true);
  BenchConfig three = one;
  three.bh_timesteps = 3;
  BenchRow r1 = run_bench(one);
  BenchRow r3 = run_bench(three);
  // Time and visits accumulate across steps; per-step averages stay in the
  // per-step range.
  EXPECT_GT(r3.result(Variant::kAutoLockstep).time_ms,
            2.0 * r1.result(Variant::kAutoLockstep).time_ms);
  EXPECT_GT(r3.cpu_visits, 2 * r1.cpu_visits);
  EXPECT_LT(r3.result(Variant::kAutoLockstep).avg_nodes,
            2.0 * r1.result(Variant::kAutoLockstep).avg_nodes);
  EXPECT_GE(r3.work_expansion.mean, 1.0);
}

TEST(Harness, BhMultiTimestepTransferCountsEachLaunch) {
  BenchConfig one = small_config(Algo::kBH, InputKind::kPlummer, true);
  BenchConfig three = one;
  three.bh_timesteps = 3;
  BenchRow r1 = run_bench(one);
  BenchRow r3 = run_bench(three);
  // Each timestep re-uploads the rebuilt octree and is its own kernel
  // launch; the transfer column must say so explicitly instead of folding
  // three launches into one round trip.
  EXPECT_EQ(r1.launches, 1);
  EXPECT_EQ(r3.launches, 3);
  EXPECT_GT(r3.upload_bytes, r1.upload_bytes);
  EXPECT_DOUBLE_EQ(r3.transfer_ms(),
                   r3.transfer.round_trip_ms(r3.upload_bytes,
                                             r3.download_bytes, 3));
  EXPECT_GT(r3.transfer_ms(),
            r3.transfer.round_trip_ms(r3.upload_bytes, r3.download_bytes, 1));
}

TEST(Harness, VariantFilterSkipsDisabledVariants) {
  BenchConfig c = small_config(Algo::kPC, InputKind::kUniform, true);
  c.verify = false;  // verification needs every variant's results
  c.variants = VariantSet::from_names("auto_lockstep,rec_lockstep");
  BenchRow row = run_bench(c);
  EXPECT_TRUE(row.result(Variant::kAutoLockstep).ok());
  EXPECT_TRUE(row.result(Variant::kRecLockstep).ok());
  for (Variant v : {Variant::kAutoNolockstep, Variant::kRecNolockstep,
                    Variant::kAutoSelect}) {
    const VariantResult& r = row.result(v);
    EXPECT_FALSE(r.ok()) << variant_name(v);
    EXPECT_EQ(r.error.rfind("skipped", 0), 0u) << r.error;
    EXPECT_EQ(r.time_ms, 0.0);
  }
}

TEST(Harness, GuidedAlgosRunBothOrders) {
  for (Algo a : {Algo::kKNN, Algo::kNN, Algo::kVP}) {
    BenchRow row = run_bench(small_config(a, InputKind::kUniform, false));
    EXPECT_GT(row.result(Variant::kAutoLockstep).stats.votes, 0u)
        << algo_name(a);
  }
}

TEST(Harness, BodyInputForTreeAlgoThrows) {
  BenchConfig c = small_config(Algo::kPC, InputKind::kPlummer, true);
  EXPECT_THROW(run_bench(c), std::invalid_argument);
}

TEST(Harness, CpuSweepMonotone) {
  BenchRow row = run_bench(small_config(Algo::kPC, InputKind::kUniform, true));
  auto sweep = cpu_sweep(row, /*lockstep=*/true, {1, 2, 4, 8, 16, 32});
  ASSERT_EQ(sweep.size(), 6u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LT(sweep[i].cpu_ms, sweep[i - 1].cpu_ms);
    EXPECT_GT(sweep[i].ratio_vs_gpu, sweep[i - 1].ratio_vs_gpu);
  }
  EXPECT_NEAR(sweep[0].cpu_ms, row.cpu_t1_ms, 1e-9);
}

TEST(Harness, SortedImprovesLockstepExpansion) {
  BenchRow s = run_bench(small_config(Algo::kPC, InputKind::kCovtype, true));
  BenchRow u = run_bench(small_config(Algo::kPC, InputKind::kCovtype, false));
  EXPECT_LT(s.work_expansion.mean, u.work_expansion.mean);
}

}  // namespace
}  // namespace tt
