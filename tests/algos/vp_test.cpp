#include "bench_algos/vp/vantage_point.h"

#include <gtest/gtest.h>

#include "core/cpu_executors.h"
#include "data/generators.h"
#include "spatial/vptree.h"

namespace tt {
namespace {

TEST(Vp, MatchesBruteForceAcrossInputs) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    PointSet pts = gen_mnist_like(300, 7, seed);
    VpTree tree = build_vptree(pts, seed);
    GpuAddressSpace space;
    VpKernel k(tree, pts, space);
    auto run = run_cpu(k, CpuVariant::kRecursive, 1);
    auto brute = vp_brute_force(pts, pts);
    for (std::size_t i = 0; i < pts.size(); ++i)
      EXPECT_NEAR(run.results[i].best_d, brute[i].best_d,
                  1e-3 * std::max(1.f, brute[i].best_d))
          << "seed " << seed << " i " << i;
  }
}

TEST(Vp, GeocityMatchesBruteForce) {
  PointSet pts = gen_geocity_like(400, 4);
  VpTree tree = build_vptree(pts, 4);
  GpuAddressSpace space;
  VpKernel k(tree, pts, space);
  auto run = run_cpu(k, CpuVariant::kAutoropes, 1);
  auto brute = vp_brute_force(pts, pts);
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_NEAR(run.results[i].best_d, brute[i].best_d,
                1e-3 * std::max(1.f, brute[i].best_d))
        << i;
}

struct NoPruneKernel : VpKernel {
  using VpKernel::VpKernel;
  template <class Mem>
  int children(NodeId n, const UArg& ua, int cs, const State& st,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    int cnt = VpKernel::children(n, ua, cs, st, out, mem, lane);
    for (int i = 0; i < cnt; ++i) out[i].larg = {0.f};
    return cnt;
  }
};

TEST(Vp, TriangleBoundIsSound) {
  // Disabling the |d - mu| bound must not change results.
  PointSet pts = gen_uniform(400, 3, 5);
  VpTree tree = build_vptree(pts, 5);
  GpuAddressSpace space;
  VpKernel pruned(tree, pts, space);
  NoPruneKernel full(tree, pts, space);
  auto rp = run_cpu(pruned, CpuVariant::kRecursive, 1);
  auto rf = run_cpu(full, CpuVariant::kRecursive, 1);
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_FLOAT_EQ(rp.results[i].best_d, rf.results[i].best_d) << i;
  EXPECT_LE(rp.total_visits, rf.total_visits);
}

TEST(Vp, RejectsDimMismatch) {
  PointSet pts = gen_uniform(64, 3, 6);
  VpTree tree = build_vptree(pts, 6);
  GpuAddressSpace space;
  PointSet wrong(2, 64);
  EXPECT_THROW(VpKernel(tree, wrong, space), std::invalid_argument);
}

TEST(Vp, SinglePointHasInfiniteDistance) {
  PointSet pts(3, 1);
  VpTree tree = build_vptree(pts, 7);
  GpuAddressSpace space;
  VpKernel k(tree, pts, space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  EXPECT_TRUE(std::isinf(run.results[0].best_d));
}

}  // namespace
}  // namespace tt
