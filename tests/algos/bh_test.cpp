#include "bench_algos/bh/barnes_hut.h"

#include <gtest/gtest.h>

#include "core/cpu_executors.h"
#include "data/generators.h"
#include "spatial/octree.h"

namespace tt {
namespace {

TEST(BarnesHut, RejectsBadParams) {
  BodySet b = gen_plummer(32, 1);
  Octree tree = build_octree(b.pos, b.mass);
  GpuAddressSpace space;
  EXPECT_THROW(BarnesHutKernel(tree, b.pos, 0.f, 1e-4f, space),
               std::invalid_argument);
  PointSet wrong(2, 32);
  EXPECT_THROW(BarnesHutKernel(tree, wrong, 0.5f, 1e-4f, space),
               std::invalid_argument);
}

TEST(BarnesHut, LargerThetaVisitsFewerNodes) {
  BodySet b = gen_plummer(2000, 2);
  Octree tree = build_octree(b.pos, b.mass);
  GpuAddressSpace s1, s2;
  BarnesHutKernel tight(tree, b.pos, 0.3f, 1e-4f, s1);
  BarnesHutKernel loose(tree, b.pos, 1.0f, 1e-4f, s2);
  auto rt = run_cpu(tight, CpuVariant::kRecursive, 1);
  auto rl = run_cpu(loose, CpuVariant::kRecursive, 1);
  EXPECT_GT(rt.total_visits, rl.total_visits);
}

TEST(BarnesHut, TwoBodySymmetry) {
  PointSet pos(3, 2);
  pos.set(0, 0, 0.f);
  pos.set(1, 0, 1.f);
  std::vector<float> mass{1.f, 1.f};
  Octree tree = build_octree(pos, mass);
  GpuAddressSpace space;
  BarnesHutKernel k(tree, pos, 0.5f, 0.f, space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  // Equal masses: forces are equal and opposite along x.
  EXPECT_FLOAT_EQ(run.results[0].ax, -run.results[1].ax);
  EXPECT_GT(run.results[0].ax, 0.f);  // body 0 pulled toward body 1
  EXPECT_FLOAT_EQ(run.results[0].ay, 0.f);
}

TEST(BarnesHut, SelfContributionIsZero) {
  PointSet pos(3, 1);
  std::vector<float> mass{5.f};
  Octree tree = build_octree(pos, mass);
  GpuAddressSpace space;
  BarnesHutKernel k(tree, pos, 0.5f, 1e-4f, space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  EXPECT_FLOAT_EQ(run.results[0].ax, 0.f);
  EXPECT_FLOAT_EQ(run.results[0].ay, 0.f);
  EXPECT_FLOAT_EQ(run.results[0].az, 0.f);
}

TEST(BarnesHut, IntegrateMovesBodies) {
  BodySet b = gen_random_bodies(10, 3);
  std::vector<BhForce> acc(10, BhForce{1.f, 0.f, 0.f});
  float x0 = b.pos.at(0, 0);
  float v0 = b.vel[0];
  bh_integrate(b.pos, b.vel, acc, 0.5f);
  EXPECT_FLOAT_EQ(b.vel[0], v0 + 0.5f);
  EXPECT_FLOAT_EQ(b.pos.at(0, 0), x0 + b.vel[0] * 0.5f);
}

TEST(BarnesHut, IntegrateRejectsMismatch) {
  BodySet b = gen_random_bodies(10, 4);
  std::vector<BhForce> acc(9);
  EXPECT_THROW(bh_integrate(b.pos, b.vel, acc, 0.1f), std::invalid_argument);
}

TEST(BarnesHut, MultiTimestepSimulationRuns) {
  BodySet b = gen_plummer(300, 5);
  for (int step = 0; step < 3; ++step) {
    Octree tree = build_octree(b.pos, b.mass);
    GpuAddressSpace space;
    BarnesHutKernel k(tree, b.pos, 0.5f, 1e-4f, space);
    auto run = run_cpu(k, CpuVariant::kAutoropes, 2);
    bh_integrate(b.pos, b.vel, run.results, 0.025f);
  }
  // The cluster should not have exploded: bulk of mass within r = 20.
  int inside = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    double r2 = 0;
    for (int d = 0; d < 3; ++d)
      r2 += static_cast<double>(b.pos.at(i, d)) * b.pos.at(i, d);
    if (r2 < 400) ++inside;
  }
  EXPECT_GT(inside, 250);
}

TEST(BarnesHut, DsqQuartersPerLevel) {
  BodySet b = gen_plummer(64, 6);
  Octree tree = build_octree(b.pos, b.mass);
  GpuAddressSpace space;
  BarnesHutKernel k(tree, b.pos, 0.5f, 1e-4f, space);
  NoopMem mem;
  auto st = k.init(0, mem, 0);
  Child<BarnesHutKernel::UArg, Empty> out[8];
  int cnt = k.children(0, k.root_uarg(), 0, st, out, mem, 0);
  ASSERT_GT(cnt, 0);
  EXPECT_FLOAT_EQ(out[0].uarg.dsq, k.root_uarg().dsq * 0.25f);
}

}  // namespace
}  // namespace tt
