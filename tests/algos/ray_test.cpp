#include "bench_algos/ray/ray_bvh.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/cpu_executors.h"
#include "core/gpu_executors.h"
#include "core/ir/callset_analysis.h"

namespace tt {
namespace {

struct Scene {
  TriangleMesh mesh;
  Bvh bvh;
  GpuAddressSpace space;

  explicit Scene(std::size_t tris, std::uint64_t seed)
      : mesh(gen_triangle_scene(tris, seed)), bvh(build_bvh(mesh, 4)) {}
};

TEST(RayBvh, ClassifiedGuidedTwoCallSets) {
  auto report = ir::analyze(ray_ir());
  EXPECT_EQ(report.call_sets.size(), 2u);
  EXPECT_EQ(report.cls, ir::TraversalClass::kGuided);
  EXPECT_TRUE(report.pseudo_tail_recursive);
}

TEST(RayBvh, MatchesBruteForceCameraRays) {
  Scene s(400, 1);
  auto rays = gen_camera_rays(16, 16, {0.5f, 0.5f, -2}, {0.5f, 0.5f, 0.5f});
  RayBvhKernel k(s.bvh, s.mesh, rays, s.space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  auto brute = ray_brute_force(s.mesh, rays);
  ASSERT_EQ(run.results.size(), brute.size());
  for (std::size_t i = 0; i < brute.size(); ++i) {
    if (std::isinf(brute[i].t)) {
      EXPECT_TRUE(std::isinf(run.results[i].t)) << i;
    } else {
      EXPECT_NEAR(run.results[i].t, brute[i].t, 1e-4f) << i;
      EXPECT_EQ(run.results[i].tri, brute[i].tri) << i;
    }
  }
}

TEST(RayBvh, MatchesBruteForceRandomRays) {
  Scene s(300, 2);
  auto rays = gen_random_rays(200, 2);
  RayBvhKernel k(s.bvh, s.mesh, rays, s.space);
  auto run = run_cpu(k, CpuVariant::kAutoropes, 1);
  auto brute = ray_brute_force(s.mesh, rays);
  for (std::size_t i = 0; i < brute.size(); ++i) {
    if (std::isinf(brute[i].t))
      EXPECT_TRUE(std::isinf(run.results[i].t)) << i;
    else
      EXPECT_NEAR(run.results[i].t, brute[i].t, 1e-4f) << i;
  }
}

TEST(RayBvh, AllVariantsAgree) {
  Scene s(500, 3);
  auto rays = gen_camera_rays(20, 16, {0.5f, 0.5f, -2}, {0.5f, 0.5f, 0.5f});
  RayBvhKernel k(s.bvh, s.mesh, rays, s.space);
  auto cpu = run_cpu(k, CpuVariant::kRecursive, 1);
  DeviceConfig cfg;
  for (Variant v : kAllVariants) {
    // Guided two-call-set traversal: the stackless rope walkers don't
    // apply (kernel_variant_eligible is false), only the stack family.
    if (!kernel_variant_eligible<RayBvhKernel>(v)) continue;
    auto gpu = run_gpu_sim(k, s.space, cfg, GpuMode::from(v));
    for (std::size_t i = 0; i < rays.size(); ++i) {
      if (std::isinf(cpu.results[i].t))
        EXPECT_TRUE(std::isinf(gpu.results[i].t)) << i;
      else
        EXPECT_NEAR(gpu.results[i].t, cpu.results[i].t, 1e-4f) << i;
    }
  }
}

TEST(RayBvh, NearFirstOrderPrunesBetter) {
  Scene s(800, 4);
  auto rays = gen_camera_rays(24, 24, {0.5f, 0.5f, -2}, {0.5f, 0.5f, 0.5f});
  struct FarFirst : RayBvhKernel {
    using RayBvhKernel::RayBvhKernel;
    [[nodiscard]] int choose_callset(NodeId n, const State& st) const {
      return 1 - RayBvhKernel::choose_callset(n, st);
    }
  };
  RayBvhKernel good(s.bvh, s.mesh, rays, s.space);
  FarFirst bad(s.bvh, s.mesh, rays, s.space);
  auto rg = run_cpu(good, CpuVariant::kRecursive, 1);
  auto rb = run_cpu(bad, CpuVariant::kRecursive, 1);
  EXPECT_LT(rg.total_visits, rb.total_visits);
}

TEST(RayBvh, CoherentRaysLockstepBeatsIncoherent) {
  // The packet-tracing story: coherent camera rays keep a warp together
  // (low work expansion); random rays do not.
  Scene s(1000, 5);
  auto coherent = gen_camera_rays(32, 32, {0.5f, 0.5f, -2}, {0.5f, 0.5f, 0.5f});
  auto incoherent = gen_random_rays(coherent.size(), 5);
  DeviceConfig cfg;

  auto expansion = [&](const std::vector<Ray>& rays) {
    RayBvhKernel k(s.bvh, s.mesh, rays, s.space);
    auto gn = run_gpu_sim(k, s.space, cfg, GpuMode{true, false});
    auto gl = run_gpu_sim(k, s.space, cfg, GpuMode{true, true});
    double total = 0;
    for (std::size_t w = 0; w < gl.per_warp_pops.size(); ++w) {
      std::uint32_t longest = 1;
      for (std::size_t i = w * 32;
           i < std::min<std::size_t>((w + 1) * 32, rays.size()); ++i)
        longest = std::max(longest, gn.per_point_visits[i]);
      total += static_cast<double>(gl.per_warp_pops[w]) / longest;
    }
    return total / static_cast<double>(gl.per_warp_pops.size());
  };
  EXPECT_LT(expansion(coherent), expansion(incoherent));
}

TEST(RayBvh, MissingSceneRaysMiss) {
  Scene s(50, 6);
  // Rays starting beyond the scene pointing away never hit.
  std::vector<Ray> rays{{{5, 5, 5}, {1, 0, 0}}, {{-5, -5, -5}, {0, -1, 0}}};
  RayBvhKernel k(s.bvh, s.mesh, rays, s.space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  EXPECT_TRUE(std::isinf(run.results[0].t));
  EXPECT_EQ(run.results[0].tri, -1);
  EXPECT_TRUE(std::isinf(run.results[1].t));
}

}  // namespace
}  // namespace tt
