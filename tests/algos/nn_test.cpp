#include "bench_algos/nn/nearest_neighbor.h"

#include <gtest/gtest.h>

#include "core/cpu_executors.h"
#include "data/generators.h"
#include "spatial/kdtree.h"

namespace tt {
namespace {

TEST(Nn, RejectsDimMismatch) {
  PointSet pts = gen_uniform(64, 3, 1);
  KdTreeNN tree = build_kdtree_nn(pts);
  GpuAddressSpace space;
  PointSet wrong(5, 64);
  EXPECT_THROW(NnKernel(tree, wrong, space), std::invalid_argument);
}

TEST(Nn, MatchesBruteForceAcrossInputs) {
  for (std::uint64_t seed : {2u, 3u, 4u}) {
    PointSet pts = gen_covtype_like(350, 7, seed);
    KdTreeNN tree = build_kdtree_nn(pts);
    GpuAddressSpace space;
    NnKernel k(tree, pts, space);
    auto run = run_cpu(k, CpuVariant::kRecursive, 1);
    auto brute = nn_brute_force(pts, pts);
    for (std::size_t i = 0; i < pts.size(); ++i)
      EXPECT_NEAR(run.results[i].best_d2, brute[i].best_d2,
                  1e-4 * std::max(1.f, brute[i].best_d2))
          << "seed " << seed << " i " << i;
  }
}

TEST(Nn, TwoPoints) {
  PointSet pts(2, 2);
  pts.set(0, 0, 0.f);
  pts.set(1, 0, 3.f);
  pts.set(1, 1, 4.f);
  KdTreeNN tree = build_kdtree_nn(pts);
  GpuAddressSpace space;
  NnKernel k(tree, pts, space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  EXPECT_FLOAT_EQ(run.results[0].best_d2, 25.f);
  EXPECT_FLOAT_EQ(run.results[1].best_d2, 25.f);
}

struct NoPruneKernel : NnKernel {
  using NnKernel::NnKernel;
  template <class Mem>
  int children(NodeId n, const UArg& ua, int cs, const State& st,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    int cnt = NnKernel::children(n, ua, cs, st, out, mem, lane);
    for (int i = 0; i < cnt; ++i) out[i].larg = {0.f};
    return cnt;
  }
};

TEST(Nn, PruningBoundIsSound) {
  // With pruning disabled (bound forced to 0) the result must not change,
  // only the visit count may grow: proves the LArg bound never cuts off
  // the true nearest neighbor.
  PointSet pts = gen_uniform(500, 4, 5);
  KdTreeNN tree = build_kdtree_nn(pts);
  GpuAddressSpace space;
  NnKernel pruned(tree, pts, space);
  NoPruneKernel full(tree, pts, space);
  auto rp = run_cpu(pruned, CpuVariant::kRecursive, 1);
  auto rf = run_cpu(full, CpuVariant::kRecursive, 1);
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_FLOAT_EQ(rp.results[i].best_d2, rf.results[i].best_d2) << i;
  EXPECT_LT(rp.total_visits, rf.total_visits);
}

struct WrongOrderKernel : NnKernel {
  using NnKernel::NnKernel;
  [[nodiscard]] int choose_callset(NodeId n, const State& st) const {
    return 1 - NnKernel::choose_callset(n, st);
  }
};

TEST(Nn, GuidedOrderReducesVisits) {
  PointSet pts = gen_uniform(600, 5, 6);
  KdTreeNN tree = build_kdtree_nn(pts);
  GpuAddressSpace space;
  NnKernel good(tree, pts, space);
  WrongOrderKernel bad(tree, pts, space);
  auto rg = run_cpu(good, CpuVariant::kRecursive, 1);
  auto rb = run_cpu(bad, CpuVariant::kRecursive, 1);
  EXPECT_LT(rg.total_visits, rb.total_visits);
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_FLOAT_EQ(rg.results[i].best_d2, rb.results[i].best_d2);
}

}  // namespace
}  // namespace tt
