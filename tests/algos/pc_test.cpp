#include "bench_algos/pc/point_correlation.h"

#include <gtest/gtest.h>

#include "core/cpu_executors.h"
#include "data/generators.h"
#include "spatial/kdtree.h"

namespace tt {
namespace {

TEST(PointCorrelation, RejectsBadParams) {
  PointSet pts = gen_uniform(64, 3, 1);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  EXPECT_THROW(PointCorrelationKernel(tree, pts, -1.f, space),
               std::invalid_argument);
  PointSet wrong(4, 64);
  EXPECT_THROW(PointCorrelationKernel(tree, wrong, 0.1f, space),
               std::invalid_argument);
}

TEST(PointCorrelation, RadiusZeroCountsCoincidentOnly) {
  PointSet pts = gen_uniform(128, 3, 2);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  PointCorrelationKernel k(tree, pts, 0.f, space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  for (auto c : run.results) EXPECT_EQ(c, 0u);  // distinct random points
}

TEST(PointCorrelation, HugeRadiusCountsEverything) {
  PointSet pts = gen_uniform(200, 3, 3);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  PointCorrelationKernel k(tree, pts, 100.f, space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  for (auto c : run.results) EXPECT_EQ(c, 199u);
}

// Parameterized monotonicity sweep: growing radius never shrinks counts
// and never shrinks visited nodes (truncation monotonicity).
class PcRadiusSweep : public ::testing::TestWithParam<double> {};

TEST_P(PcRadiusSweep, CountsAndVisitsMonotone) {
  static PointSet pts = gen_covtype_like(600, 7, 4);
  static KdTree tree = build_kdtree(pts, 8);
  float r = static_cast<float>(GetParam());
  GpuAddressSpace s1, s2;
  PointCorrelationKernel small(tree, pts, r, s1);
  PointCorrelationKernel big(tree, pts, r * 1.5f, s2);
  auto rs = run_cpu(small, CpuVariant::kRecursive, 1);
  auto rb = run_cpu(big, CpuVariant::kRecursive, 1);
  std::uint64_t total_s = 0, total_b = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_LE(rs.results[i], rb.results[i]) << i;
    total_s += rs.results[i];
    total_b += rb.results[i];
  }
  EXPECT_LE(total_s, total_b);
  EXPECT_LE(rs.total_visits, rb.total_visits);
}

INSTANTIATE_TEST_SUITE_P(Radii, PcRadiusSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4, 0.8, 1.6));

TEST(PointCorrelation, PickRadiusHitsTarget) {
  PointSet pts = gen_uniform(4000, 3, 5);
  float r = pc_pick_radius(pts, 50, 5);
  auto brute = pc_brute_force(pts, pts, r);
  double mean = 0;
  for (auto c : brute) mean += c;
  mean /= static_cast<double>(brute.size());
  EXPECT_GT(mean, 10.0);
  EXPECT_LT(mean, 250.0);  // order of magnitude is what matters
}

TEST(PointCorrelation, CountSymmetry) {
  // 2-point correlation is symmetric: sum of counts == 2 * (pairs in r).
  PointSet pts = gen_uniform(300, 2, 6);
  KdTree tree = build_kdtree(pts, 4);
  GpuAddressSpace space;
  PointCorrelationKernel k(tree, pts, 0.1f, space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  std::uint64_t total = 0;
  for (auto c : run.results) total += c;
  EXPECT_EQ(total % 2, 0u);
}

TEST(PointCorrelation, LeafSizeDoesNotChangeResults) {
  PointSet pts = gen_covtype_like(500, 7, 7);
  GpuAddressSpace s1, s2;
  KdTree t1 = build_kdtree(pts, 1);
  KdTree t2 = build_kdtree(pts, 32);
  PointCorrelationKernel k1(t1, pts, 0.5f, s1);
  PointCorrelationKernel k2(t2, pts, 0.5f, s2);
  auto r1 = run_cpu(k1, CpuVariant::kRecursive, 1);
  auto r2 = run_cpu(k2, CpuVariant::kRecursive, 1);
  EXPECT_EQ(r1.results, r2.results);
}

}  // namespace
}  // namespace tt
