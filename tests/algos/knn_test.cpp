#include "bench_algos/knn/knn.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/cpu_executors.h"
#include "data/generators.h"
#include "spatial/kdtree.h"
#include "util/rng.h"

namespace tt {
namespace {

TEST(KnnHeap, FillsThenCaps) {
  KnnHeap h;
  h.k = 3;
  EXPECT_EQ(h.worst(), std::numeric_limits<float>::infinity());
  h.push(5.f);
  h.push(1.f);
  EXPECT_EQ(h.worst(), std::numeric_limits<float>::infinity());  // not full
  h.push(3.f);
  EXPECT_FLOAT_EQ(h.worst(), 5.f);
  h.push(2.f);  // evicts 5
  EXPECT_FLOAT_EQ(h.worst(), 3.f);
  h.push(10.f);  // ignored
  EXPECT_FLOAT_EQ(h.worst(), 3.f);
}

TEST(KnnHeap, MatchesSortReference) {
  Pcg32 rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    int k = 1 + static_cast<int>(rng.next_below(kMaxK));
    KnnHeap h;
    h.k = k;
    std::vector<float> all;
    for (int i = 0; i < 100; ++i) {
      float v = rng.next_float();
      h.push(v);
      all.push_back(v);
    }
    std::sort(all.begin(), all.end());
    EXPECT_FLOAT_EQ(h.worst(), all[k - 1]) << "k=" << k;
    // Heap contents are exactly the k smallest.
    std::vector<float> heap_vals(h.d2, h.d2 + h.size);
    std::sort(heap_vals.begin(), heap_vals.end());
    for (int i = 0; i < k; ++i) EXPECT_FLOAT_EQ(heap_vals[i], all[i]);
  }
}

TEST(Knn, RejectsBadK) {
  PointSet pts = gen_uniform(64, 3, 2);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  EXPECT_THROW(KnnKernel(tree, pts, 0, space), std::invalid_argument);
  EXPECT_THROW(KnnKernel(tree, pts, kMaxK + 1, space), std::invalid_argument);
  EXPECT_THROW(KnnKernel(tree, pts, 64, space), std::invalid_argument);
}

TEST(Knn, K1EqualsNearestNeighborDistance) {
  PointSet pts = gen_uniform(256, 4, 3);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  KnnKernel k(tree, pts, 1, space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  auto brute = knn_brute_force(pts, pts, 1);
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_NEAR(run.results[i].kth_d2, brute[i].kth_d2, 1e-5f) << i;
}

// Parameterized over k: result always matches brute force.
class KnnKSweep : public ::testing::TestWithParam<int> {};

TEST_P(KnnKSweep, MatchesBruteForce) {
  static PointSet pts = gen_mnist_like(400, 7, 4);
  static KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  KnnKernel k(tree, pts, GetParam(), space);
  auto run = run_cpu(k, CpuVariant::kAutoropes, 1);
  auto brute = knn_brute_force(pts, pts, GetParam());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR(run.results[i].kth_d2, brute[i].kth_d2,
                1e-4 * std::max(1.f, brute[i].kth_d2))
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnKSweep, ::testing::Values(1, 2, 4, 8, 16));

TEST(Knn, NeighborIdsMatchBruteForce) {
  PointSet pts = gen_uniform(300, 4, 9);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  KnnKernel k(tree, pts, 5, space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  auto brute = knn_brute_force(pts, pts, 5);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    ASSERT_EQ(run.results[i].found, 5) << i;
    // Same neighbor sets (order-free comparison).
    std::vector<std::int32_t> a(run.results[i].ids, run.results[i].ids + 5);
    std::vector<std::int32_t> b(brute[i].ids, brute[i].ids + 5);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << i;
  }
}

TEST(Knn, FoundCapsAtAvailablePoints) {
  PointSet pts = gen_uniform(4, 3, 10);
  KdTree tree = build_kdtree(pts, 2);
  GpuAddressSpace space;
  KnnKernel k(tree, pts, 3, space);
  auto run = run_cpu(k, CpuVariant::kAutoropes, 1);
  for (const auto& r : run.results) EXPECT_EQ(r.found, 3);  // n-1 = 3
}

TEST(Knn, GuidedOrderIsAnOptimizationOnly) {
  // Forcing the "wrong" static call set changes visit counts, not results
  // (section 4.3's semantic-equivalence claim, checked dynamically).
  PointSet pts = gen_uniform(300, 5, 5);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;

  struct WrongOrderKernel : KnnKernel {
    using KnnKernel::KnnKernel;
    [[nodiscard]] int choose_callset(NodeId n, const State& st) const {
      return 1 - KnnKernel::choose_callset(n, st);  // always the far child
    }
  };
  KnnKernel good(tree, pts, 4, space);
  WrongOrderKernel bad(tree, pts, 4, space);
  auto rg = run_cpu(good, CpuVariant::kRecursive, 1);
  auto rb = run_cpu(bad, CpuVariant::kRecursive, 1);
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_NEAR(rg.results[i].kth_d2, rb.results[i].kth_d2, 1e-5f);
  // The good order should prune better on average.
  EXPECT_LT(rg.total_visits, rb.total_visits);
}

}  // namespace
}  // namespace tt
