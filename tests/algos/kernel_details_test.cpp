// Kernel-internal details not covered by the black-box equivalence suites.
#include <gtest/gtest.h>

#include <cmath>

#include "bench_algos/bh/barnes_hut.h"
#include "bench_algos/nn/nearest_neighbor.h"
#include "bench_algos/vp/vantage_point.h"
#include "core/cpu_executors.h"
#include "data/generators.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"
#include "spatial/vptree.h"

namespace tt {
namespace {

TEST(BhDetails, UargAtMatchesStackPropagation) {
  BodySet b = gen_plummer(500, 1);
  Octree tree = build_octree(b.pos, b.mass);
  GpuAddressSpace space;
  BarnesHutKernel k(tree, b.pos, 0.5f, 1e-4f, space);
  // uarg_at(n) must equal root_dsq * 0.25^depth(n) -- what the rope stack
  // would have delivered.
  for (NodeId n = 0; n < tree.topo.n_nodes; n += 37) {
    float expect = k.root_uarg().dsq;
    for (int d = 0; d < tree.topo.depth[n]; ++d) expect *= 0.25f;
    EXPECT_FLOAT_EQ(k.uarg_at(n).dsq, expect) << n;
  }
}

TEST(BhDetails, ThetaSweepErrorDecreases) {
  BodySet b = gen_plummer(400, 2);
  Octree tree = build_octree(b.pos, b.mass);
  auto brute = bh_brute_force(b.pos, b.mass, 1e-4f);
  double prev_err = 1e30;
  for (float theta : {1.2f, 0.6f, 0.3f}) {
    GpuAddressSpace space;
    BarnesHutKernel k(tree, b.pos, theta, 1e-4f, space);
    auto run = run_cpu(k, CpuVariant::kAutoropes, 2);
    double err = 0;
    for (std::size_t i = 0; i < 400; ++i) {
      double dx = run.results[i].ax - brute[i].ax;
      double dy = run.results[i].ay - brute[i].ay;
      double dz = run.results[i].az - brute[i].az;
      err += std::sqrt(dx * dx + dy * dy + dz * dz);
    }
    EXPECT_LT(err, prev_err) << "theta " << theta;
    prev_err = err;
  }
}

TEST(NnDetails, FarChildCarriesPlaneBound) {
  PointSet pts = gen_uniform(100, 3, 3);
  KdTreeNN tree = build_kdtree_nn(pts);
  GpuAddressSpace space;
  NnKernel k(tree, pts, space);
  NoopMem mem;
  auto st = k.init(0, mem, 0);
  // Visit the root to set up state, then enumerate children.
  (void)k.visit(0, {}, {}, st, mem, 0);
  Child<NnKernel::UArg, NnKernel::LArg> out[2];
  int cs = k.choose_callset(0, st);
  int cnt = k.children(0, {}, cs, st, out, mem, 0);
  ASSERT_EQ(cnt, 2);
  // The near child is visited first with a zero bound; the far child's
  // bound is the squared plane distance (> 0 almost surely).
  EXPECT_FLOAT_EQ(out[0].larg.min_d2, 0.f);
  EXPECT_GT(out[1].larg.min_d2, 0.f);
  int sd = tree.split_dim[0];
  float sv = tree.coords[static_cast<std::size_t>(sd)];
  float plane = st.q[sd] - sv;
  EXPECT_FLOAT_EQ(out[1].larg.min_d2, plane * plane);
}

TEST(VpDetails, BoundsFollowTriangleInequality) {
  PointSet pts = gen_uniform(200, 4, 4);
  VpTree tree = build_vptree(pts, 4);
  GpuAddressSpace space;
  VpKernel k(tree, pts, space);
  NoopMem mem;
  auto st = k.init(5, mem, 0);
  ASSERT_TRUE(k.visit(0, {}, {}, st, mem, 0));
  Child<VpKernel::UArg, VpKernel::LArg> out[2];
  int cs = k.choose_callset(0, st);
  int cnt = k.children(0, {}, cs, st, out, mem, 0);
  float mu = tree.mu[0];
  float d = st.last_d;
  for (int i = 0; i < cnt; ++i) {
    // Each bound is |d - mu|-shaped and never negative.
    EXPECT_GE(out[i].larg.min_d, 0.f);
    EXPECT_LE(out[i].larg.min_d, std::max(d - mu, mu - d) + 1e-5f);
  }
  // Inside-first iff the query is within mu of the vantage point.
  EXPECT_EQ(cs, d < mu ? 0 : 1);
}

TEST(VpDetails, SelfExclusionWorks) {
  // The query point is in the tree; its own entry must not be its NN.
  PointSet pts = gen_uniform(50, 3, 5);
  VpTree tree = build_vptree(pts, 5);
  GpuAddressSpace space;
  VpKernel k(tree, pts, space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  for (const auto& r : run.results) EXPECT_GT(r.best_d, 0.f);
}

}  // namespace
}  // namespace tt
