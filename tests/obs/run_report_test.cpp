// RunReport tests: byte-identical repeated emission, parse-back equality
// against the BenchRow it was built from, schema tagging, and the
// volatile-field gating that the determinism guarantee rests on.
#include "obs/run_report.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace tt::obs {
namespace {

BenchRow sample_row() {
  BenchRow row;
  row.config.algo = Algo::kPC;
  row.config.input = InputKind::kUniform;
  row.config.n = 512;
  row.config.sorted = true;
  VariantResult& al = row.result(Variant::kAutoLockstep);
  al.time_ms = 1.25;
  al.avg_nodes = 42.0;
  al.stats.lane_visits = 1000;
  al.stats.warp_pops = 50;
  al.stats.votes = 60;
  al.stats.instr_cycles = 123.5;
  al.time.compute_ms = 1.25;
  al.time.memory_ms = 0.75;
  al.time.total_ms = 1.25;
  al.sim_wall_ms = 9.0;  // volatile: excluded by default
  VariantResult& rl = row.result(Variant::kRecLockstep);
  rl.error = "rope stack overflow (warp 3)";
  row.cpu_t1_ms = 77.0;  // volatile
  row.cpu_visits = 1000;
  row.upload_bytes = 4096;
  row.download_bytes = 2048;
  row.work_expansion = Summary{16, 1.5, 0.25, 1.0, 2.0};
  return row;
}

RunReport sample_report(bool include_volatile = false) {
  RunReport rep("unit_test");
  rep.set_seed(42);
  rep.set_device(DeviceConfig{});
  rep.set_include_volatile(include_volatile);
  rep.add_row(sample_row());
  Table t({"A", "B"});
  t.add_row({"x", "1"});
  rep.add_table("demo", t);
  Table wall({"Bench", "vs1T"});
  wall.add_row({"pc", "284.53"});  // derived from a measured wall time
  rep.add_table("speedups", wall, /*volatile_data=*/true);
  return rep;
}

TEST(RunReport, RepeatedEmissionIsByteIdentical) {
  RunReport rep = sample_report();
  EXPECT_EQ(rep.to_string(), rep.to_string());
  RunReport again = sample_report();
  EXPECT_EQ(rep.to_string(), again.to_string());
}

TEST(RunReport, ParseBackMatchesSource) {
  RunReport rep = sample_report();
  auto root = json_parse(rep.to_string());

  ASSERT_TRUE(root->is_object());
  EXPECT_EQ(root->find("schema")->as_string(), kRunReportSchema);
  EXPECT_EQ(root->find("generator")->as_string(), "unit_test");
  EXPECT_EQ(root->find("seed")->as_uint(), 42u);
  ASSERT_NE(root->find("git_sha"), nullptr);

  const JsonValue* device = root->find("device");
  ASSERT_TRUE(device && device->is_object());
  EXPECT_EQ(device->find("warp_size")->as_uint(), 32u);
  EXPECT_DOUBLE_EQ(device->find("mem_bandwidth_gbps")->as_number(), 144.0);

  const JsonValue* rows = root->find("rows");
  ASSERT_TRUE(rows && rows->is_array());
  ASSERT_EQ(rows->arr_v.size(), 1u);
  const JsonValue& row = *rows->arr_v[0];
  EXPECT_EQ(row.find("config")->find("algo")->as_string(), "PointCorrelation");
  EXPECT_EQ(row.find("config")->find("n")->as_uint(), 512u);

  const JsonValue* al = row.find("variants")->find("auto_lockstep");
  ASSERT_NE(al, nullptr);
  EXPECT_TRUE(al->find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(al->find("time_ms")->as_number(), 1.25);
  EXPECT_EQ(al->find("stats")->find("lane_visits")->as_uint(), 1000u);
  EXPECT_EQ(al->find("stats")->find("warp_pops")->as_uint(), 50u);
  EXPECT_DOUBLE_EQ(al->find("time")->find("memory_ms")->as_number(), 0.75);
  // Volatile fields excluded by default.
  EXPECT_EQ(al->find("sim_wall_ms"), nullptr);
  EXPECT_EQ(row.find("cpu")->find("t1_ms"), nullptr);

  const JsonValue* rl = row.find("variants")->find("rec_lockstep");
  ASSERT_NE(rl, nullptr);
  EXPECT_FALSE(rl->find("ok")->as_bool());
  EXPECT_EQ(rl->find("error")->as_string(), "rope stack overflow (warp 3)");

  // Per-row metrics registry is embedded and consistent with the stats.
  const JsonValue* metrics = row.find("metrics");
  ASSERT_TRUE(metrics && metrics->is_object());
  EXPECT_EQ(metrics->find("counters")
                ->find("gpu/auto_lockstep/lane_visits")
                ->as_uint(),
            1000u);
  // Failed variants contribute no metrics.
  EXPECT_EQ(metrics->find("counters")->find("gpu/rec_lockstep/lane_visits"),
            nullptr);

  const JsonValue* tables = root->find("tables");
  ASSERT_TRUE(tables && tables->is_array());
  ASSERT_EQ(tables->arr_v.size(), 1u) << "volatile table must be gated out";
  EXPECT_EQ(tables->arr_v[0]->find("name")->as_string(), "demo");
  EXPECT_EQ(tables->arr_v[0]->find("rows")->arr_v[0]->arr_v[1]->as_string(),
            "1");
}

TEST(RunReport, VolatileFlagIncludesWallClockFields) {
  auto root = json_parse(sample_report(/*include_volatile=*/true).to_string());
  const JsonValue& row = *root->find("rows")->arr_v[0];
  const JsonValue* al = row.find("variants")->find("auto_lockstep");
  ASSERT_NE(al->find("sim_wall_ms"), nullptr);
  EXPECT_DOUBLE_EQ(al->find("sim_wall_ms")->as_number(), 9.0);
  EXPECT_DOUBLE_EQ(row.find("cpu")->find("t1_ms")->as_number(), 77.0);
  const JsonValue* tables = root->find("tables");
  ASSERT_EQ(tables->arr_v.size(), 2u);
  EXPECT_EQ(tables->arr_v[1]->find("name")->as_string(), "speedups");
}

TEST(RunReport, MetricsForRowMergesAllSubsystems) {
  MetricsRegistry reg = metrics_for_row(sample_row());
  EXPECT_EQ(reg.counter("gpu/auto_lockstep/votes"), 60u);
  EXPECT_EQ(reg.counter("transfer/upload_bytes"), 4096u);
  EXPECT_TRUE(reg.has_gauge("cpu/beta"));
  EXPECT_FALSE(reg.has_counter("gpu/rec_lockstep/votes"))
      << "failed variant must not register";
  // Succeeded-but-untouched variants register zeros (still present).
  EXPECT_TRUE(reg.has_counter("gpu/auto_nolockstep/lane_visits"));
}

TEST(RunReport, WriteFileRoundTrips) {
  RunReport rep = sample_report();
  std::string path = ::testing::TempDir() + "run_report_test.json";
  std::string err;
  ASSERT_TRUE(rep.write_file(path, &err)) << err;
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), rep.to_string());
  EXPECT_FALSE(rep.write_file("/nonexistent-dir/x/y.json", &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace tt::obs
