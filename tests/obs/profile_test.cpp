// Cycle-attribution profiler tests: collector aggregation, commutative
// merge (the OMP-scheduling-independence contract), exact reconciliation
// of make_profile_report against KernelStats for every variant on a
// two-warp micro kernel, hot-node semantics, timestep accumulation, and
// the "profiling is unobservable" guarantee.
#include "obs/profile.h"

#include <gtest/gtest.h>

#include <omp.h>

#include <sstream>

#include "core/gpu_executors.h"
#include "core/static_ropes.h"
#include "core/traversal_kernel.h"
#include "obs/json.h"
#include "spatial/linear_tree.h"

namespace tt {
namespace {

using obs::ProfileCollector;
using obs::ProfileReport;
using obs::ProfileSink;
using obs::TraceEventKind;

// root(0) -> {left(1), right(2)}, both leaves.
LinearTree tiny_tree() {
  LinearTree t;
  t.fanout = 2;
  NodeId root = t.add_node(kNullNode, 0);
  NodeId l = t.add_node(root, 1);
  t.set_child(root, 0, l);
  NodeId r = t.add_node(root, 1);
  t.set_child(root, 1, r);
  t.validate();
  return t;
}

// Same shape as the trace tests' micro kernel: visits the whole tiny tree
// for even point ids; odd ids truncate at the root.
class MicroKernel {
 public:
  struct State {
    std::uint32_t pid = 0;
    std::uint32_t descents = 0;
  };
  using Result = std::uint32_t;
  using UArg = Empty;
  using LArg = Empty;
  static constexpr int kFanout = 2;
  static constexpr int kNumCallSets = 1;
  static constexpr bool kCallSetsEquivalent = true;

  MicroKernel(const LinearTree& tree, std::size_t n_points, bool odd_truncates,
              GpuAddressSpace& space)
      : tree_(&tree), n_(n_points), odd_truncates_(odd_truncates) {
    nodes0_ = space.register_buffer("micro_nodes0", 4,
                                    static_cast<std::uint64_t>(tree.n_nodes));
    nodes1_ = space.register_buffer("micro_nodes1", 8,
                                    static_cast<std::uint64_t>(tree.n_nodes));
    queries_ = space.register_buffer("micro_queries", 4, n_points);
    ropes_ = install_ropes(tree);
  }

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_points() const { return n_; }
  [[nodiscard]] UArg root_uarg() const { return {}; }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] int stack_bound() const { return 8; }

  template <class Mem>
  State init(std::uint32_t pid, Mem& mem, int lane) const {
    mem.lane_load(lane, queries_, pid);
    return State{pid, 0};
  }

  template <class Mem>
  bool visit(NodeId n, const UArg&, const LArg&, State& st, Mem& mem,
             int lane) const {
    mem.lane_load(lane, nodes0_, static_cast<std::uint64_t>(n));
    if (odd_truncates_ && (st.pid & 1u)) return false;
    if (tree_->is_leaf(n)) return false;
    ++st.descents;
    return true;
  }

  [[nodiscard]] int choose_callset(NodeId, const State&) const { return 0; }

  template <class Mem>
  int children(NodeId n, const UArg&, int, const State&,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    mem.lane_load(lane, nodes1_, static_cast<std::uint64_t>(n));
    int cnt = 0;
    for (int k = 0; k < 2; ++k)
      if (tree_->child(n, k) != kNullNode) out[cnt++].node = tree_->child(n, k);
    return cnt;
  }

  [[nodiscard]] Result finish(const State& st) const { return st.descents; }

  // Stackless-variant support: the all-variants reconciliation sweep
  // covers the rope walkers, so the kernel carries its own ropes.
  [[nodiscard]] UArg uarg_at(NodeId) const { return {}; }
  [[nodiscard]] const StaticRopes& ropes() const { return ropes_; }
  [[nodiscard]] std::vector<std::int32_t> node_buffers() const {
    return {nodes0_, nodes1_};
  }

 private:
  const LinearTree* tree_;
  std::size_t n_;
  bool odd_truncates_;
  BufferId nodes0_, nodes1_, queries_;
  StaticRopes ropes_;
};

std::string report_json(const ProfileReport& p) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  obs::write_profile_json(w, p);
  return os.str();
}

TEST(ProfileCollector, AggregatesStepsAndEvents) {
  ProfileCollector c;
  c.on_step(0, 4);
  c.on_step(0, 2);
  c.on_step(3, 1);
  ASSERT_EQ(c.depth_bins().size(), 4u);
  EXPECT_EQ(c.depth_bins()[0].steps, 2u);
  EXPECT_EQ(c.depth_bins()[0].active_lane_sum, 6u);
  EXPECT_EQ(c.depth_bins()[1].steps, 0u);
  EXPECT_EQ(c.depth_bins()[3].steps, 1u);
  EXPECT_EQ(c.depth_bins()[3].active_lane_sum, 1u);

  // kVisit with a warp-uniform node feeds the hot-node table; kTruncate
  // charges both the node and the depth bin; other kinds are ignored, and
  // anonymous (node == 0xffffffff) visits keep the table unchanged.
  c.on_event(TraceEventKind::kVisit, 7, 0xfu, 0, 0);
  c.on_event(TraceEventKind::kVisit, 7, 0x3u, 1, 0);
  c.on_event(TraceEventKind::kTruncate, 7, 0x1u, 0, 0);
  c.on_event(TraceEventKind::kVisit, 0xffffffffu, 0xfu, 0, 0);
  c.on_event(TraceEventKind::kPop, 9, 0xfu, 0, 0);
  c.on_event(TraceEventKind::kVote, 9, 0xfu, 0, 1);
  ASSERT_EQ(c.nodes().size(), 1u);
  const auto& agg = c.nodes().at(7);
  EXPECT_EQ(agg.warp_visits, 2u);
  EXPECT_EQ(agg.active_lane_sum, 6u);
  EXPECT_EQ(agg.truncated_lanes, 1u);
  EXPECT_EQ(c.depth_bins()[0].truncated_lanes, 1u);

  c.clear();
  EXPECT_TRUE(c.depth_bins().empty());
  EXPECT_TRUE(c.nodes().empty());
}

TEST(ProfileCollector, MergeIsCommutative) {
  // The determinism story under OpenMP: merged() folds per-thread
  // collectors with integer sums, so fold order must not matter.
  ProfileCollector a, b;
  a.on_step(0, 4);
  a.on_step(2, 3);
  a.on_event(TraceEventKind::kVisit, 1, 0xfu, 0, 0);
  a.on_event(TraceEventKind::kTruncate, 2, 0x3u, 1, 0);
  b.on_step(0, 1);
  b.on_step(5, 2);
  b.on_event(TraceEventKind::kVisit, 2, 0x7u, 1, 0);
  b.on_event(TraceEventKind::kVisit, 9, 0x1u, 3, 0);

  ProfileCollector ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  ASSERT_EQ(ab.depth_bins().size(), ba.depth_bins().size());
  for (std::size_t d = 0; d < ab.depth_bins().size(); ++d) {
    EXPECT_EQ(ab.depth_bins()[d].steps, ba.depth_bins()[d].steps) << d;
    EXPECT_EQ(ab.depth_bins()[d].active_lane_sum,
              ba.depth_bins()[d].active_lane_sum)
        << d;
    EXPECT_EQ(ab.depth_bins()[d].truncated_lanes,
              ba.depth_bins()[d].truncated_lanes)
        << d;
  }
  ASSERT_EQ(ab.nodes().size(), ba.nodes().size());
  for (const auto& [node, agg] : ab.nodes()) {
    const auto& other = ba.nodes().at(node);
    EXPECT_EQ(agg.warp_visits, other.warp_visits) << node;
    EXPECT_EQ(agg.active_lane_sum, other.active_lane_sum) << node;
    EXPECT_EQ(agg.truncated_lanes, other.truncated_lanes) << node;
  }
}

TEST(ProfileSink, MergedIsIndependentOfThreadAssignment) {
  // The same events spread across one vs four per-thread collectors must
  // fold to the same merged collector -- the OMP-scheduling contract.
  auto feed = [](ProfileCollector& c, int i) {
    c.on_step(static_cast<std::uint32_t>(i % 3), 1 + i % 4);
    c.on_event(TraceEventKind::kVisit, static_cast<std::uint32_t>(i % 5),
               0xfu, static_cast<std::uint32_t>(i % 3), 0);
  };
  ProfileSink one, four;
  one.begin(1);
  four.begin(4);
  for (int i = 0; i < 64; ++i) {
    feed(one.collector(0), i);
    feed(four.collector(i % 4), i);
  }
  const ProfileCollector m1 = one.merged();
  const ProfileCollector m4 = four.merged();
  ASSERT_EQ(m1.depth_bins().size(), m4.depth_bins().size());
  for (std::size_t d = 0; d < m1.depth_bins().size(); ++d) {
    EXPECT_EQ(m1.depth_bins()[d].steps, m4.depth_bins()[d].steps) << d;
    EXPECT_EQ(m1.depth_bins()[d].active_lane_sum,
              m4.depth_bins()[d].active_lane_sum)
        << d;
  }
  ASSERT_EQ(m1.nodes().size(), m4.nodes().size());
  for (const auto& [node, agg] : m1.nodes())
    EXPECT_EQ(agg.warp_visits, m4.nodes().at(node).warp_visits) << node;
}

class ProfileVsCounters : public ::testing::TestWithParam<Variant> {};

TEST_P(ProfileVsCounters, ReportReconcilesExactly) {
  Variant v = GetParam();
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  // 64 points = 2 warps; odd lanes truncate at the root so masks diverge.
  MicroKernel k(tree, 64, /*odd_truncates=*/true, space);
  DeviceConfig cfg;
  ProfileSink sink;
  auto g = run_gpu_sim(k, space, cfg, GpuMode::from(v), nullptr, &sink);

  ASSERT_TRUE(g.profile.has_value()) << variant_name(v);
  const ProfileReport& p = *g.profile;
  EXPECT_TRUE(p.reconciles()) << variant_name(v);
  EXPECT_EQ(p.bucket_sum(), g.stats.instr_cycles) << variant_name(v);
  EXPECT_EQ(p.warp_steps, g.stats.warp_steps) << variant_name(v);
  EXPECT_EQ(p.active_lane_sum, g.stats.active_lane_sum) << variant_name(v);
  EXPECT_EQ(p.depth_steps(), g.stats.warp_steps) << variant_name(v);
  EXPECT_EQ(p.depth_active(), g.stats.active_lane_sum) << variant_name(v);
  EXPECT_GT(p.warp_steps, 0u);
  // Every variant executes visits, so the visit bucket is charged; the
  // memory axis is populated from the launch's DRAM traffic.
  EXPECT_GT(p.buckets[static_cast<std::size_t>(CycleBucket::kVisit)], 0.0);
  EXPECT_GT(p.memory_cycles, 0.0);

  // The JSON block is well-formed and internally consistent.
  auto j = obs::json_parse(report_json(p));
  ASSERT_TRUE(j->is_object());
  double jsum = 0;
  const obs::JsonValue* jb = j->find("buckets");
  ASSERT_NE(jb, nullptr);
  for (const auto& [name, val] : jb->obj_v) jsum += val->as_number();
  EXPECT_EQ(jsum, j->find("instr_cycles")->as_number()) << variant_name(v);
  std::uint64_t jsteps = 0;
  for (const auto& bin : j->find("depth_histogram")->arr_v)
    jsteps += bin->find("steps")->as_uint();
  EXPECT_EQ(jsteps, j->find("warp_steps")->as_uint()) << variant_name(v);
}

TEST_P(ProfileVsCounters, ProfilingIsUnobservable) {
  // Attaching a sink must not perturb the simulation or the model: stats
  // (including the bucket split) and results are identical either way.
  Variant v = GetParam();
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 64, true, space);
  DeviceConfig cfg;
  ProfileSink sink;
  auto with = run_gpu_sim(k, space, cfg, GpuMode::from(v), nullptr, &sink);
  auto without = run_gpu_sim(k, space, cfg, GpuMode::from(v));
  EXPECT_FALSE(without.profile.has_value());
  EXPECT_DOUBLE_EQ(with.stats.instr_cycles, without.stats.instr_cycles);
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b)
    EXPECT_DOUBLE_EQ(with.stats.cycle_buckets[b],
                     without.stats.cycle_buckets[b])
        << cycle_bucket_name(static_cast<CycleBucket>(b));
  EXPECT_EQ(with.stats.warp_steps, without.stats.warp_steps);
  EXPECT_EQ(with.stats.dram_transactions, without.stats.dram_transactions);
  EXPECT_EQ(with.results, without.results);
}

TEST_P(ProfileVsCounters, DeterministicAcrossThreadCounts) {
  // Byte-identical profile JSON under OMP_NUM_THREADS=1 vs max -- the
  // merged() determinism contract, end to end through run_gpu_sim.
  Variant v = GetParam();
  const int saved = omp_get_max_threads();
  std::string json[2];
  for (int pass = 0; pass < 2; ++pass) {
    omp_set_num_threads(pass == 0 ? 1 : saved);
    LinearTree tree = tiny_tree();
    GpuAddressSpace space;
    MicroKernel k(tree, 64, true, space);
    DeviceConfig cfg;
    ProfileSink sink;
    auto g = run_gpu_sim(k, space, cfg, GpuMode::from(v), nullptr, &sink);
    ASSERT_TRUE(g.profile.has_value());
    json[pass] = report_json(*g.profile);
  }
  omp_set_num_threads(saved);
  EXPECT_EQ(json[0], json[1]) << variant_name(v);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ProfileVsCounters,
                         ::testing::ValuesIn(kAllVariants),
                         [](const ::testing::TestParamInfo<Variant>& info) {
                           return std::string(variant_name(info.param));
                         });

TEST(ProfileReport, HotNodesRankedAndLockstepRootIsHottest) {
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 64, true, space);
  DeviceConfig cfg;
  ProfileSink sink;
  auto g = run_gpu_sim(k, space, cfg, GpuMode::from(Variant::kAutoLockstep),
                       nullptr, &sink);
  ASSERT_TRUE(g.profile.has_value());
  const auto& hot = g.profile->hot_nodes;
  ASSERT_FALSE(hot.empty());
  // Ranked by warp visits desc, node id asc on ties.
  for (std::size_t i = 1; i < hot.size(); ++i) {
    const bool ordered =
        hot[i - 1].warp_visits > hot[i].warp_visits ||
        (hot[i - 1].warp_visits == hot[i].warp_visits &&
         hot[i - 1].node < hot[i].node);
    EXPECT_TRUE(ordered) << "row " << i;
  }
  // Both warps visit the root exactly once; odd lanes truncate there.
  EXPECT_EQ(hot[0].node, 0u);
  EXPECT_EQ(hot[0].warp_visits, 2u);
  EXPECT_GT(hot[0].truncated_lanes, 0u);
  EXPECT_GT(hot[0].truncation_rate(), 0.0);
}

TEST(ProfileReport, PerLaneNolockstepTableIsEmptyByDesign) {
  // auto_nolockstep visits distinct nodes per lane, so its kVisit events
  // are anonymous and the hot-node table stays empty -- while the depth
  // histogram still reconciles (covered by ProfileVsCounters).
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 64, true, space);
  DeviceConfig cfg;
  ProfileSink sink;
  auto g = run_gpu_sim(k, space, cfg, GpuMode::from(Variant::kAutoNolockstep),
                       nullptr, &sink);
  ASSERT_TRUE(g.profile.has_value());
  EXPECT_TRUE(g.profile->hot_nodes.empty());
}

TEST(ProfileReport, MergeAccumulatesTimesteps) {
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 64, true, space);
  DeviceConfig cfg;
  ProfileSink sink;
  auto a = run_gpu_sim(k, space, cfg, GpuMode::from(Variant::kAutoLockstep),
                       nullptr, &sink);
  auto b = run_gpu_sim(k, space, cfg, GpuMode::from(Variant::kAutoLockstep),
                       nullptr, &sink);
  ASSERT_TRUE(a.profile && b.profile);
  ProfileReport sum = *a.profile;
  sum.merge(*b.profile);
  EXPECT_EQ(sum.instr_cycles, a.profile->instr_cycles * 2);
  EXPECT_EQ(sum.warp_steps, a.profile->warp_steps * 2);
  EXPECT_TRUE(sum.reconciles());
  ASSERT_FALSE(sum.hot_nodes.empty());
  EXPECT_EQ(sum.hot_nodes[0].warp_visits,
            a.profile->hot_nodes[0].warp_visits * 2);
}

TEST(ProfileReport, NullCollectorGivesBucketSplitOnly) {
  KernelStats stats;
  stats.charge(CycleBucket::kVisit, 24);
  stats.charge(CycleBucket::kStep, 8);
  DeviceConfig cfg;
  ProfileReport p = obs::make_profile_report(stats, cfg, nullptr);
  EXPECT_EQ(p.bucket_sum(), 32.0);
  EXPECT_EQ(p.instr_cycles, 32.0);
  EXPECT_TRUE(p.depth.empty());
  EXPECT_TRUE(p.hot_nodes.empty());
  EXPECT_TRUE(p.reconciles());
}

}  // namespace
}  // namespace tt
