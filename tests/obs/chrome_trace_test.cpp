// ChromeTraceCollector tests: the exported JSON is well-formed and loads
// as the Chrome trace-event object format, every trace event survives the
// export (metadata records excluded from the count), launches map to
// process tracks with per-warp thread rows, launch-scope events land on
// the dedicated "launch" row, and repeated runs serialize byte-identically.
#include "obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <bit>
#include <sstream>

#include "core/gpu_executors.h"
#include "core/traversal_kernel.h"
#include "obs/json.h"
#include "spatial/linear_tree.h"

namespace tt {
namespace {

using obs::ChromeTraceCollector;
using obs::JsonValue;
using obs::TraceSink;

// root(0) -> {left(1), right(2)}, both leaves.
LinearTree tiny_tree() {
  LinearTree t;
  t.fanout = 2;
  NodeId root = t.add_node(kNullNode, 0);
  NodeId l = t.add_node(root, 1);
  t.set_child(root, 0, l);
  NodeId r = t.add_node(root, 1);
  t.set_child(root, 1, r);
  t.validate();
  return t;
}

// Minimal kernel (same shape as the trace tests): odd point ids truncate
// at the root, even ids descend the whole tiny tree.
class MicroKernel {
 public:
  struct State {
    std::uint32_t pid = 0;
    std::uint32_t descents = 0;
  };
  using Result = std::uint32_t;
  using UArg = Empty;
  using LArg = Empty;
  static constexpr int kFanout = 2;
  static constexpr int kNumCallSets = 1;
  static constexpr bool kCallSetsEquivalent = true;

  MicroKernel(const LinearTree& tree, std::size_t n_points,
              GpuAddressSpace& space)
      : tree_(&tree), n_(n_points) {
    nodes0_ = space.register_buffer("micro_nodes0", 4,
                                    static_cast<std::uint64_t>(tree.n_nodes));
    nodes1_ = space.register_buffer("micro_nodes1", 8,
                                    static_cast<std::uint64_t>(tree.n_nodes));
    queries_ = space.register_buffer("micro_queries", 4, n_points);
  }

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_points() const { return n_; }
  [[nodiscard]] UArg root_uarg() const { return {}; }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] int stack_bound() const { return 8; }

  template <class Mem>
  State init(std::uint32_t pid, Mem& mem, int lane) const {
    mem.lane_load(lane, queries_, pid);
    return State{pid, 0};
  }

  template <class Mem>
  bool visit(NodeId n, const UArg&, const LArg&, State& st, Mem& mem,
             int lane) const {
    mem.lane_load(lane, nodes0_, static_cast<std::uint64_t>(n));
    if (st.pid & 1u) return false;
    if (tree_->is_leaf(n)) return false;
    ++st.descents;
    return true;
  }

  [[nodiscard]] int choose_callset(NodeId, const State&) const { return 0; }

  template <class Mem>
  int children(NodeId n, const UArg&, int, const State&,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    mem.lane_load(lane, nodes1_, static_cast<std::uint64_t>(n));
    int cnt = 0;
    for (int k = 0; k < 2; ++k)
      if (tree_->child(n, k) != kNullNode) out[cnt++].node = tree_->child(n, k);
    return cnt;
  }

  [[nodiscard]] Result finish(const State& st) const { return st.descents; }

 private:
  const LinearTree* tree_;
  std::size_t n_;
  BufferId nodes0_, nodes1_, queries_;
};

// Runs one launch per requested variant, each on its own track.
std::string collect(const std::vector<Variant>& variants,
                    ChromeTraceCollector& chrome) {
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 64, space);
  DeviceConfig cfg;
  for (Variant v : variants) {
    TraceSink& sink = chrome.begin_launch(std::string(variant_name(v)));
    run_gpu_sim(k, space, cfg, GpuMode::from(v), &sink);
  }
  std::ostringstream os;
  chrome.write_json(os);
  return os.str();
}

TEST(ChromeTrace, ExportsEveryEventWithPerLaunchTracks) {
  ChromeTraceCollector chrome;
  const std::string json =
      collect({Variant::kAutoLockstep, Variant::kAutoSelect}, chrome);
  ASSERT_EQ(chrome.n_launches(), 2u);

  auto j = obs::json_parse(json);
  ASSERT_TRUE(j->is_object());
  const JsonValue* events = j->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::size_t duration_events = 0;
  std::vector<std::string> process_names;
  bool saw_launch_row = false;
  bool saw_select = false;
  for (const auto& e : events->arr_v) {
    const std::string& ph = e->find("ph")->as_string();
    if (ph == "M") {
      if (e->find("name")->as_string() == "process_name")
        process_names.push_back(e->find("args")->find("name")->as_string());
      if (e->find("name")->as_string() == "thread_name" &&
          e->find("args")->find("name")->as_string() == "launch")
        saw_launch_row = true;
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++duration_events;
    // Every duration event carries the fields Perfetto renders on.
    EXPECT_NE(e->find("name"), nullptr);
    EXPECT_NE(e->find("pid"), nullptr);
    EXPECT_NE(e->find("tid"), nullptr);
    EXPECT_NE(e->find("ts"), nullptr);
    EXPECT_NE(e->find("dur"), nullptr);
    const JsonValue* args = e->find("args");
    ASSERT_NE(args, nullptr);
    const std::uint64_t mask = args->find("mask")->as_uint();
    EXPECT_EQ(args->find("active")->as_uint(),
              static_cast<std::uint64_t>(
                  std::popcount(static_cast<std::uint32_t>(mask))));
    if (e->find("name")->as_string() == "select") saw_select = true;
  }

  // Metadata excluded, the count matches the collector's; the auto_select
  // launch decision lands on the dedicated "launch" thread row.
  EXPECT_EQ(duration_events, chrome.total_events());
  EXPECT_TRUE(saw_select);
  EXPECT_TRUE(saw_launch_row);
  ASSERT_EQ(process_names.size(), 2u);
  EXPECT_EQ(process_names[0], "auto_lockstep");
  EXPECT_EQ(process_names[1], "auto_select");
  EXPECT_EQ(chrome.launch_name(0), "auto_lockstep");
  EXPECT_EQ(chrome.launch_name(1), "auto_select");
}

TEST(ChromeTrace, RepeatedRunsAreByteIdentical) {
  ChromeTraceCollector a, b;
  const std::string ja =
      collect({Variant::kAutoLockstep, Variant::kRecNolockstep}, a);
  const std::string jb =
      collect({Variant::kAutoLockstep, Variant::kRecNolockstep}, b);
  EXPECT_EQ(ja, jb);
}

TEST(ChromeTrace, EmptyCollectorIsStillValidJson) {
  ChromeTraceCollector chrome;
  std::ostringstream os;
  chrome.write_json(os);
  auto j = obs::json_parse(os.str());
  ASSERT_TRUE(j->is_object());
  const JsonValue* events = j->find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->arr_v.empty());
  EXPECT_EQ(chrome.total_events(), 0u);
}

TEST(ChromeTrace, WriteFileReportsIoFailure) {
  ChromeTraceCollector chrome;
  std::string err;
  EXPECT_FALSE(chrome.write_file("/nonexistent-dir/trace.json", &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace tt
