#include "obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace tt::obs {
namespace {

TEST(Json, EscapeControlAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, NumberFormattingIsShortestRoundTrip) {
  EXPECT_EQ(json_number(1.0), "1");
  EXPECT_EQ(json_number(0.1), "0.1");
  EXPECT_EQ(json_number(std::uint64_t{18446744073709551615ull}),
            "18446744073709551615");
  EXPECT_EQ(json_number(std::int64_t{-7}), "-7");
  EXPECT_EQ(json_number(std::nan("")), "null");
}

TEST(Json, WriterGoldenOutput) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.member("name", "t");
  w.member("n", std::uint64_t{3});
  w.member_array("xs");
  w.value(1.5);
  w.value(std::string("a"));
  w.value(true);
  w.end_array();
  w.member_object("inner");
  w.member("flag", false);
  w.end_object();
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"name\": \"t\",\n"
            "  \"n\": 3,\n"
            "  \"xs\": [\n"
            "    1.5,\n"
            "    \"a\",\n"
            "    true\n"
            "  ],\n"
            "  \"inner\": {\n"
            "    \"flag\": false\n"
            "  }\n"
            "}\n");
}

TEST(Json, ParseRoundTripPreservesValues) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.member("a", 2.5);
  w.member("b", std::uint64_t{42});
  w.member("s", "hi \"there\"\n");
  w.member_null("z");
  w.member_array("arr");
  w.value(false);
  w.end_array();
  w.end_object();

  auto v = json_parse(os.str());
  ASSERT_TRUE(v->is_object());
  EXPECT_DOUBLE_EQ(v->find("a")->as_number(), 2.5);
  EXPECT_EQ(v->find("b")->as_uint(), 42u);
  EXPECT_EQ(v->find("s")->as_string(), "hi \"there\"\n");
  EXPECT_TRUE(v->find("z")->is_null());
  ASSERT_TRUE(v->find("arr")->is_array());
  EXPECT_FALSE(v->find("arr")->arr_v[0]->as_bool());
  // Insertion order preserved.
  EXPECT_EQ(v->obj_v[0].first, "a");
  EXPECT_EQ(v->obj_v[4].first, "arr");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(json_parse("{"), std::runtime_error);
  EXPECT_THROW(json_parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json_parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(json_parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json_parse("nul"), std::runtime_error);
}

TEST(Json, ParseDecodesUnicodeEscapes) {
  auto v = json_parse("\"\\u0041\\u00e9\"");
  EXPECT_EQ(v->as_string(), "A\xc3\xa9");
}

}  // namespace
}  // namespace tt::obs
