#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.h"
#include "simt/cost_model.h"

namespace tt::obs {
namespace {

std::string to_json(const MetricsRegistry& reg) {
  std::ostringstream os;
  JsonWriter w(os);
  reg.write_json(w);
  return os.str();
}

TEST(Metrics, CountersAccumulateGaugesOverwrite) {
  MetricsRegistry reg;
  reg.add_counter("a/x", 3);
  reg.add_counter("a/x", 4);
  reg.set_gauge("a/g", 1.0);
  reg.set_gauge("a/g", 2.5);
  EXPECT_EQ(reg.counter("a/x"), 7u);
  EXPECT_DOUBLE_EQ(reg.gauge("a/g"), 2.5);
  EXPECT_THROW((void)reg.counter("missing"), std::out_of_range);
  EXPECT_THROW((void)reg.gauge("missing"), std::out_of_range);
}

TEST(Metrics, HistogramSummarizes) {
  MetricsRegistry reg;
  for (double x : {1.0, 2.0, 3.0, 4.0}) reg.observe("h", x);
  Summary s = reg.histogram("h");
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Metrics, MergeIsCommutative) {
  auto build_a = [] {
    MetricsRegistry r;
    r.add_counter("c", 5);
    r.add_counter("only_a", 1);
    r.set_gauge("g", 2.0);
    r.set_gauge("same", 7.0);
    r.observe("h", 1.0);
    r.observe("h", 3.0);
    return r;
  };
  auto build_b = [] {
    MetricsRegistry r;
    r.add_counter("c", 11);
    r.set_gauge("g", 9.0);  // conflicts with a's 2.0
    r.set_gauge("same", 7.0);
    r.observe("h", 5.0);
    return r;
  };

  MetricsRegistry ab = build_a();
  ab.merge(build_b());
  MetricsRegistry ba = build_b();
  ba.merge(build_a());

  EXPECT_EQ(to_json(ab), to_json(ba));
  EXPECT_EQ(ab.counter("c"), 16u);
  EXPECT_EQ(ab.counter("only_a"), 1u);
  EXPECT_DOUBLE_EQ(ab.gauge("g"), 9.0);  // max-on-conflict
  EXPECT_EQ(ab.gauge_conflicts(), 1u);
  EXPECT_EQ(ba.gauge_conflicts(), 1u);
  Summary s = ab.histogram("h");
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Metrics, MergeDeterministicAcrossRepetition) {
  // Same inputs merged in different groupings produce identical JSON --
  // the property the per-thread registry merge in a parallel run needs.
  std::vector<MetricsRegistry> parts(4);
  for (int i = 0; i < 4; ++i) {
    parts[i].add_counter("steps", static_cast<std::uint64_t>(10 + i));
    parts[i].observe("lat", 1.0 + i);
  }
  MetricsRegistry left;
  for (int i = 0; i < 4; ++i) left.merge(parts[i]);
  MetricsRegistry right;
  for (int i = 3; i >= 0; --i) right.merge(parts[i]);
  EXPECT_EQ(to_json(left), to_json(right));
  EXPECT_EQ(left.counter("steps"), 10u + 11u + 12u + 13u);
}

TEST(Metrics, KernelStatsExporterCoversAllCounters) {
  KernelStats s;
  s.load_instructions = 1;
  s.dram_transactions = 2;
  s.l2_hit_transactions = 3;
  s.dram_bytes = 256;
  s.instr_cycles = 99.5;
  s.warp_steps = 4;
  s.lane_visits = 100;
  s.warp_pops = 5;
  s.calls = 6;
  s.votes = 7;
  s.active_lane_sum = 64;
  s.peak_stack_entries = 9;

  MetricsRegistry reg;
  register_kernel_stats(reg, s, "gpu/auto_lockstep/");
  EXPECT_EQ(reg.counter("gpu/auto_lockstep/lane_visits"), 100u);
  EXPECT_EQ(reg.counter("gpu/auto_lockstep/warp_pops"), 5u);
  EXPECT_EQ(reg.counter("gpu/auto_lockstep/votes"), 7u);
  EXPECT_EQ(reg.counter("gpu/auto_lockstep/dram_bytes"), 256u);
  EXPECT_DOUBLE_EQ(reg.gauge("gpu/auto_lockstep/instr_cycles"), 99.5);
  EXPECT_DOUBLE_EQ(reg.gauge("gpu/auto_lockstep/mean_active_lanes"), 16.0);
}

TEST(Metrics, SubsystemExportersRegister) {
  MetricsRegistry reg;
  TimeBreakdown t;
  t.compute_ms = 1;
  t.memory_ms = 2;
  t.total_ms = 2;
  t.memory_bound = true;
  register_time_breakdown(reg, t, "gpu/x/");
  register_cpu_model(reg, CpuScalingModel{0.01}, "cpu/");
  register_transfer_model(reg, TransferModel{}, 1000, 500, "transfer/");

  EXPECT_DOUBLE_EQ(reg.gauge("gpu/x/total_ms"), 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("gpu/x/memory_bound"), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("cpu/beta"), 0.01);
  EXPECT_EQ(reg.counter("transfer/upload_bytes"), 1000u);
  EXPECT_EQ(reg.counter("transfer/download_bytes"), 500u);
  EXPECT_GT(reg.gauge("transfer/round_trip_ms"), 0.0);
}

}  // namespace
}  // namespace tt::obs
