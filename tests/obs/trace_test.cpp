// TraceSink / WarpTracer tests: ring-overflow semantics, deterministic
// merge order, and -- the load-bearing property -- exact reconciliation of
// the per-warp event stream against KernelStats counters for all four
// execution variants on a two-warp micro kernel.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <bit>
#include <sstream>

#include "core/gpu_executors.h"
#include "core/static_ropes.h"
#include "core/traversal_kernel.h"
#include "obs/json.h"
#include "spatial/linear_tree.h"

namespace tt {
namespace {

using obs::TraceEvent;
using obs::TraceEventKind;
using obs::TraceSink;
using obs::WarpTracer;

// root(0) -> {left(1), right(2)}, both leaves.
LinearTree tiny_tree() {
  LinearTree t;
  t.fanout = 2;
  NodeId root = t.add_node(kNullNode, 0);
  NodeId l = t.add_node(root, 1);
  t.set_child(root, 0, l);
  NodeId r = t.add_node(root, 1);
  t.set_child(root, 1, r);
  t.validate();
  return t;
}

// Same shape as the core micro-kernel tests: visits the whole tiny tree
// for even point ids; odd ids truncate at the root (forcing divergent
// masks into the trace).
class MicroKernel {
 public:
  struct State {
    std::uint32_t pid = 0;
    std::uint32_t descents = 0;
  };
  using Result = std::uint32_t;
  using UArg = Empty;
  using LArg = Empty;
  static constexpr int kFanout = 2;
  static constexpr int kNumCallSets = 1;
  static constexpr bool kCallSetsEquivalent = true;

  MicroKernel(const LinearTree& tree, std::size_t n_points, bool odd_truncates,
              GpuAddressSpace& space)
      : tree_(&tree), n_(n_points), odd_truncates_(odd_truncates) {
    nodes0_ = space.register_buffer("micro_nodes0", 4,
                                    static_cast<std::uint64_t>(tree.n_nodes));
    nodes1_ = space.register_buffer("micro_nodes1", 8,
                                    static_cast<std::uint64_t>(tree.n_nodes));
    queries_ = space.register_buffer("micro_queries", 4, n_points);
    ropes_ = install_ropes(tree);
  }

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_points() const { return n_; }
  [[nodiscard]] UArg root_uarg() const { return {}; }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] int stack_bound() const { return 8; }

  template <class Mem>
  State init(std::uint32_t pid, Mem& mem, int lane) const {
    mem.lane_load(lane, queries_, pid);
    return State{pid, 0};
  }

  template <class Mem>
  bool visit(NodeId n, const UArg&, const LArg&, State& st, Mem& mem,
             int lane) const {
    mem.lane_load(lane, nodes0_, static_cast<std::uint64_t>(n));
    if (odd_truncates_ && (st.pid & 1u)) return false;
    if (tree_->is_leaf(n)) return false;
    ++st.descents;
    return true;
  }

  [[nodiscard]] int choose_callset(NodeId, const State&) const { return 0; }

  template <class Mem>
  int children(NodeId n, const UArg&, int, const State&,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    mem.lane_load(lane, nodes1_, static_cast<std::uint64_t>(n));
    int cnt = 0;
    for (int k = 0; k < 2; ++k)
      if (tree_->child(n, k) != kNullNode) out[cnt++].node = tree_->child(n, k);
    return cnt;
  }

  [[nodiscard]] Result finish(const State& st) const { return st.descents; }

  // Stackless-variant support: the all-variants reconciliation sweep
  // covers the rope walkers, so the kernel carries its own ropes.
  [[nodiscard]] UArg uarg_at(NodeId) const { return {}; }
  [[nodiscard]] const StaticRopes& ropes() const { return ropes_; }
  [[nodiscard]] std::vector<std::int32_t> node_buffers() const {
    return {nodes0_, nodes1_};
  }

 private:
  const LinearTree* tree_;
  std::size_t n_;
  bool odd_truncates_;
  BufferId nodes0_, nodes1_, queries_;
  StaticRopes ropes_;
};

bool same_event(const TraceEvent& a, const TraceEvent& b) {
  return a.warp == b.warp && a.seq == b.seq && a.kind == b.kind &&
         a.node == b.node && a.mask == b.mask && a.depth == b.depth &&
         a.aux == b.aux;
}

TEST(TraceEventNames, ExhaustiveAndRoundTrip) {
  // Walks every kind in [0, kNumTraceEventKinds): each must have a real
  // name (adding a kind without extending trace_event_name trips the "?"
  // fallback here) and the name must round-trip through the inverse.
  for (std::size_t i = 0; i < obs::kNumTraceEventKinds; ++i) {
    const auto kind = static_cast<TraceEventKind>(i);
    const std::string name = obs::trace_event_name(kind);
    EXPECT_NE(name, "?") << "unnamed TraceEventKind " << i;
    EXPECT_EQ(obs::trace_event_kind_from_name(name), kind) << name;
  }
  try {
    obs::trace_event_kind_from_name("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error is actionable: it lists every valid name.
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
    for (std::size_t i = 0; i < obs::kNumTraceEventKinds; ++i)
      EXPECT_NE(
          msg.find(obs::trace_event_name(static_cast<TraceEventKind>(i))),
          std::string::npos)
          << msg;
  }
}

TEST(WarpTracerRing, KeepsMostRecentAndCountsDropped) {
  WarpTracer tr(4);
  tr.begin_warp(7);
  for (std::uint32_t i = 0; i < 10; ++i)
    tr.record(TraceEventKind::kVisit, i, 0xfu, i);
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 6u);
  auto events = tr.drain();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6u + i) << "oldest-first, most recent retained";
    EXPECT_EQ(events[i].warp, 7u);
  }
}

TEST(WarpTracerRing, BeginWarpResetsEverything) {
  WarpTracer tr(2);
  tr.begin_warp(0);
  tr.record(TraceEventKind::kPop, 0, 1, 0);
  tr.record(TraceEventKind::kPop, 0, 1, 0);
  tr.record(TraceEventKind::kPop, 0, 1, 0);
  EXPECT_EQ(tr.dropped(), 1u);
  tr.begin_warp(1);
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
  tr.record(TraceEventKind::kPop, 5, 3, 2);
  auto events = tr.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].warp, 1u);
  EXPECT_EQ(events[0].seq, 0u);  // per-warp sequence restarts
}

TEST(TraceSink, OverflowIsBoundedPerWarp) {
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 64, false, space);
  DeviceConfig cfg;
  TraceSink sink(2);  // far smaller than the event count per warp
  run_gpu_sim(k, space, cfg, GpuMode::from(Variant::kAutoLockstep), &sink);
  ASSERT_EQ(sink.n_warps(), 2u);
  for (std::uint32_t w = 0; w < 2; ++w) {
    EXPECT_EQ(sink.events_for(w).size(), 2u);
    EXPECT_GT(sink.dropped_for(w), 0u);
  }
  EXPECT_EQ(sink.total_events(), 4u);
}

struct Reconciliation {
  std::uint64_t visit_lanes = 0;
  std::uint64_t pops = 0;
  std::uint64_t votes = 0;
};

Reconciliation reconcile(const TraceSink& sink) {
  Reconciliation r;
  for (const TraceEvent& e : sink.merged()) {
    switch (e.kind) {
      case TraceEventKind::kVisit:
        r.visit_lanes += std::popcount(e.mask);
        break;
      case TraceEventKind::kPop:
        ++r.pops;
        break;
      case TraceEventKind::kVote:
        ++r.votes;
        break;
      default:
        break;
    }
  }
  return r;
}

class TraceVsCounters : public ::testing::TestWithParam<Variant> {};

TEST_P(TraceVsCounters, EventStreamMatchesKernelStatsExactly) {
  Variant v = GetParam();
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  // 64 points = 2 warps; odd lanes truncate at the root so masks diverge.
  MicroKernel k(tree, 64, /*odd_truncates=*/true, space);
  DeviceConfig cfg;
  TraceSink sink;  // default capacity comfortably holds every event
  auto g = run_gpu_sim(k, space, cfg, GpuMode::from(v), &sink);

  ASSERT_EQ(sink.n_warps(), 2u);
  EXPECT_EQ(sink.total_dropped(), 0u);

  Reconciliation r = reconcile(sink);
  EXPECT_EQ(r.visit_lanes, g.stats.lane_visits)
      << variant_name(v) << ": sum of popcount(visit masks)";
  EXPECT_EQ(r.votes, g.stats.votes) << variant_name(v);
  if (variant_is_lockstep(v) && variant_is_autoropes(v)) {
    EXPECT_EQ(r.pops, g.stats.warp_pops) << variant_name(v);
    // Per-warp breakdown agrees with the executor's per-warp pop counts.
    for (std::uint32_t w = 0; w < 2; ++w) {
      std::uint64_t pops_w = 0;
      for (const TraceEvent& e : sink.events_for(w))
        if (e.kind == TraceEventKind::kPop) ++pops_w;
      EXPECT_EQ(pops_w, g.per_warp_pops[w]) << variant_name(v) << " warp " << w;
    }
  }

  // Per-warp sequence numbers are dense and ordered; merged() is the
  // (warp, seq) sort.
  for (std::uint32_t w = 0; w < 2; ++w) {
    const auto& events = sink.events_for(w);
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].warp, w);
      EXPECT_EQ(events[i].seq, i);
    }
  }
  auto merged = sink.merged();
  EXPECT_EQ(merged.size(), sink.total_events());
  for (std::size_t i = 1; i < merged.size(); ++i) {
    bool sorted = merged[i - 1].warp < merged[i].warp ||
                  (merged[i - 1].warp == merged[i].warp &&
                   merged[i - 1].seq < merged[i].seq);
    EXPECT_TRUE(sorted) << "merged stream out of order at " << i;
  }
}

TEST_P(TraceVsCounters, RepeatedRunsProduceIdenticalTraces) {
  Variant v = GetParam();
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 64, true, space);
  DeviceConfig cfg;
  TraceSink a, b;
  run_gpu_sim(k, space, cfg, GpuMode::from(v), &a);
  run_gpu_sim(k, space, cfg, GpuMode::from(v), &b);
  auto ma = a.merged(), mb = b.merged();
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t i = 0; i < ma.size(); ++i)
    EXPECT_TRUE(same_event(ma[i], mb[i])) << variant_name(v) << " event " << i;

  std::ostringstream ja, jb;
  obs::JsonWriter wa(ja), wb(jb);
  a.write_json(wa);
  b.write_json(wb);
  EXPECT_EQ(ja.str(), jb.str());
}

INSTANTIATE_TEST_SUITE_P(AllVariants, TraceVsCounters,
                         ::testing::ValuesIn(kAllVariants),
                         [](const ::testing::TestParamInfo<Variant>& info) {
                           return std::string(variant_name(info.param));
                         });

TEST(TraceSink, NullTraceIsUnobservable) {
  // Tracing must not perturb the simulation: stats with and without a sink
  // attached are identical.
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 64, true, space);
  DeviceConfig cfg;
  TraceSink sink;
  auto with = run_gpu_sim(k, space, cfg, GpuMode::from(Variant::kAutoLockstep),
                          &sink);
  auto without =
      run_gpu_sim(k, space, cfg, GpuMode::from(Variant::kAutoLockstep));
  EXPECT_EQ(with.stats.lane_visits, without.stats.lane_visits);
  EXPECT_EQ(with.stats.dram_transactions, without.stats.dram_transactions);
  EXPECT_DOUBLE_EQ(with.stats.instr_cycles, without.stats.instr_cycles);
  EXPECT_EQ(with.results, without.results);
}

}  // namespace
}  // namespace tt
