#include "cpu/scaling_model.h"

#include <gtest/gtest.h>

#include "cpu/parallel.h"

namespace tt {
namespace {

TEST(ScalingModel, OneThreadIsIdentity) {
  CpuScalingModel m;
  EXPECT_DOUBLE_EQ(m.efficiency(1), 1.0);
  EXPECT_DOUBLE_EQ(m.time_ms(100.0, 1), 100.0);
  EXPECT_DOUBLE_EQ(m.speedup(1), 1.0);
}

TEST(ScalingModel, NearLinearByDefault) {
  CpuScalingModel m;  // beta = 0.01
  EXPECT_GT(m.speedup(32), 24.0);
  EXPECT_LT(m.speedup(32), 32.0);
}

TEST(ScalingModel, TimeMonotoneInThreads) {
  CpuScalingModel m;
  double prev = m.time_ms(100.0, 1);
  for (int t = 2; t <= 32; ++t) {
    double cur = m.time_ms(100.0, t);
    EXPECT_LT(cur, prev) << t;
    prev = cur;
  }
}

TEST(ScalingModel, BetaControlsDrag) {
  CpuScalingModel light{0.0};
  CpuScalingModel heavy{0.1};
  EXPECT_DOUBLE_EQ(light.speedup(16), 16.0);  // perfect scaling
  EXPECT_LT(heavy.speedup(16), light.speedup(16));
}

TEST(ScalingModel, RejectsBadThreads) {
  CpuScalingModel m;
  EXPECT_THROW((void)m.efficiency(0), std::invalid_argument);
}

TEST(Parallel, HardwareThreadsPositive) {
  EXPECT_GE(hardware_threads(), 1);
}

TEST(Parallel, ParallelForCoversRange) {
  std::vector<int> hits(1000, 0);
  parallel_for(1000, 2, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace tt
