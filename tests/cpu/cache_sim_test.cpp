#include "cpu/cache_sim.h"

#include <gtest/gtest.h>

#include "bench_algos/pc/point_correlation.h"
#include "cpu/cache_profile.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"

namespace tt {
namespace {

TEST(CacheMem, ColdMissWarmHit) {
  GpuAddressSpace space;
  BufferId b = space.register_buffer("b", 4, 1024);
  CacheMem mem(space, CpuCacheConfig{});
  mem.lane_load(0, b, 0);
  EXPECT_EQ(mem.stats().accesses, 1u);
  EXPECT_EQ(mem.stats().l1_miss, 1u);
  EXPECT_EQ(mem.stats().l3_miss, 1u);
  mem.lane_load(0, b, 1);  // same 64B line
  EXPECT_EQ(mem.stats().accesses, 2u);
  EXPECT_EQ(mem.stats().l1_miss, 1u);
}

TEST(CacheMem, MultiLineAccessCountsEachLine) {
  GpuAddressSpace space;
  BufferId b = space.register_buffer("wide", 256, 8);
  CacheMem mem(space, CpuCacheConfig{});
  mem.lane_load(0, b, 0);  // 256 bytes = 4 lines
  EXPECT_EQ(mem.stats().accesses, 4u);
}

TEST(CacheMem, L1EvictionFallsToL2) {
  CpuCacheConfig cfg;
  cfg.l1_bytes = 128;  // 2 lines, 2-way: one set
  cfg.l1_assoc = 2;
  GpuAddressSpace space;
  BufferId b = space.register_buffer("b", 64, 64);
  CacheMem mem(space, cfg);
  mem.lane_load(0, b, 0);
  mem.lane_load(0, b, 1);
  mem.lane_load(0, b, 2);  // evicts line 0 from L1
  mem.reset_stats();
  mem.lane_load(0, b, 0);  // L1 miss, L2 hit
  EXPECT_EQ(mem.stats().l1_miss, 1u);
  EXPECT_EQ(mem.stats().l2_miss, 0u);
}

TEST(CacheStats, RatesAndMerge) {
  CacheStats a;
  a.accesses = 100;
  a.l1_miss = 20;
  a.l3_miss = 5;
  EXPECT_DOUBLE_EQ(a.l1_hit_rate(), 0.8);
  EXPECT_DOUBLE_EQ(a.dram_rate(), 0.05);
  CacheStats b = a;
  a.merge(b);
  EXPECT_EQ(a.accesses, 200u);
  EXPECT_EQ(a.l1_miss, 40u);
}

TEST(CacheProfile, SortingImprovesCpuLocality) {
  // The CPU-side justification for section 4.4: sorted points reuse the
  // same tree regions back-to-back.
  auto l1_rate = [](bool sorted) {
    PointSet pts = gen_covtype_like(2000, 7, 9);
    pts.permute(sorted ? tree_order(pts, 8) : shuffled_order(pts.size(), 9));
    KdTree tree = build_kdtree(pts, 8);
    GpuAddressSpace space;
    float r = pc_pick_radius(pts, 16, 9);
    PointCorrelationKernel k(tree, pts, r, space);
    return profile_cpu_cache(k, space).l1_hit_rate();
  };
  EXPECT_GT(l1_rate(true), l1_rate(false));
}

TEST(CacheProfile, GeocityMoreLocalThanCovtype) {
  // Section 6.2's Geocity explanation: "traversals are very short,
  // promoting good locality and performance on the CPU" -- fewer total
  // loads and a higher L1 hit rate than the high-dimensional inputs.
  auto profile = [](PointSet pts, std::uint64_t seed) {
    pts.permute(tree_order(pts, 8));
    KdTree tree = build_kdtree(pts, 8);
    GpuAddressSpace space;
    float r = pc_pick_radius(pts, 16, seed);
    PointCorrelationKernel k(tree, pts, r, space);
    return profile_cpu_cache(k, space);
  };
  CacheStats geo = profile(gen_geocity_like(2000, 10), 10);
  CacheStats cov = profile(gen_covtype_like(2000, 7, 10), 10);
  EXPECT_LT(geo.accesses, cov.accesses / 2);
  EXPECT_GT(geo.l1_hit_rate(), cov.l1_hit_rate());
}

}  // namespace
}  // namespace tt
