// The lockstep-ropes resume rule (core/ropes_executor.h): a lane truncated
// at node n is masked until the warp's cursor reaches rope[n], then
// resumes. A synthetic kernel with per-lane truncation sets makes the
// reactivation pattern fully predictable.
#include <gtest/gtest.h>

#include <set>

#include "core/ropes_executor.h"
#include "core/static_ropes.h"
#include "spatial/linear_tree.h"

namespace tt {
namespace {

// Perfect binary tree of depth 2 in DFS ids:
//   0 -> {1 -> {2, 3}, 4 -> {5, 6}}
LinearTree depth2_tree() {
  LinearTree t;
  t.fanout = 2;
  NodeId n0 = t.add_node(kNullNode, 0);
  NodeId n1 = t.add_node(n0, 1);
  t.set_child(n0, 0, n1);
  NodeId n2 = t.add_node(n1, 2);
  t.set_child(n1, 0, n2);
  NodeId n3 = t.add_node(n1, 2);
  t.set_child(n1, 1, n3);
  NodeId n4 = t.add_node(n0, 1);
  t.set_child(n0, 1, n4);
  NodeId n5 = t.add_node(n4, 2);
  t.set_child(n4, 0, n5);
  NodeId n6 = t.add_node(n4, 2);
  t.set_child(n4, 1, n6);
  t.validate();
  return t;
}

// Lane truncates at the node ids listed in its truncation set; Result is
// the set of nodes the lane actually visited (encoded as a bitmask).
class TruncSetKernel {
 public:
  struct State {
    std::uint32_t pid = 0;
    std::uint32_t visited_mask = 0;
  };
  using Result = std::uint32_t;
  using UArg = Empty;
  using LArg = Empty;
  static constexpr int kFanout = 2;
  static constexpr int kNumCallSets = 1;
  static constexpr bool kCallSetsEquivalent = true;

  TruncSetKernel(const LinearTree& tree, std::size_t n,
                 std::vector<std::set<NodeId>> trunc, GpuAddressSpace& space)
      : tree_(&tree), n_(n), trunc_(std::move(trunc)) {
    nodes0_ = space.register_buffer("ts_nodes0", 4,
                                    static_cast<std::uint64_t>(tree.n_nodes));
    queries_ = space.register_buffer("ts_queries", 4, n);
  }

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_points() const { return n_; }
  [[nodiscard]] UArg root_uarg() const { return {}; }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] int stack_bound() const { return 16; }
  [[nodiscard]] UArg uarg_at(NodeId) const { return {}; }

  template <class Mem>
  State init(std::uint32_t pid, Mem& mem, int lane) const {
    mem.lane_load(lane, queries_, pid);
    return State{pid, 0};
  }

  template <class Mem>
  bool visit(NodeId n, const UArg&, const LArg&, State& st, Mem& mem,
             int lane) const {
    mem.lane_load(lane, nodes0_, static_cast<std::uint64_t>(n));
    st.visited_mask |= 1u << n;
    if (trunc_[st.pid].count(n)) return false;
    return !tree_->is_leaf(n);
  }

  [[nodiscard]] int choose_callset(NodeId, const State&) const { return 0; }

  template <class Mem>
  int children(NodeId n, const UArg&, int, const State&,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    mem.lane_load(lane, nodes0_, static_cast<std::uint64_t>(n));
    int cnt = 0;
    for (int k = 0; k < 2; ++k)
      if (tree_->child(n, k) != kNullNode)
        out[cnt++].node = tree_->child(n, k);
    return cnt;
  }

  [[nodiscard]] Result finish(const State& st) const {
    return st.visited_mask;
  }

 private:
  const LinearTree* tree_;
  std::size_t n_;
  std::vector<std::set<NodeId>> trunc_;
  BufferId nodes0_, queries_;
};

TEST(RopesResume, TruncatedLaneSkipsExactlyItsSubtree) {
  LinearTree t = depth2_tree();
  // Lane 0: truncates at node 1 -> must visit {0,1,4,5,6}, skipping {2,3}.
  // Lane 1: truncates nowhere -> visits everything.
  // Lane 2: truncates at root -> visits {0} only.
  std::vector<std::set<NodeId>> trunc{{1}, {}, {0}};
  GpuAddressSpace space;
  TruncSetKernel k(t, 3, trunc, space);
  StaticRopes ropes = install_ropes(t);
  DeviceConfig cfg;
  auto g = run_gpu_ropes_sim(k, space, cfg, /*lockstep=*/true, ropes);
  EXPECT_EQ(g.results[0], 0b1110011u);  // nodes 0,1,4,5,6
  EXPECT_EQ(g.results[1], 0b1111111u);  // all seven
  EXPECT_EQ(g.results[2], 0b0000001u);  // root only
}

TEST(RopesResume, MatchesNonLockstepVisitSets) {
  LinearTree t = depth2_tree();
  std::vector<std::set<NodeId>> trunc{{4}, {1, 5}, {2}, {}};
  GpuAddressSpace space;
  TruncSetKernel k(t, 4, trunc, space);
  StaticRopes ropes = install_ropes(t);
  DeviceConfig cfg;
  auto l = run_gpu_ropes_sim(k, space, cfg, true, ropes);
  auto n = run_gpu_ropes_sim(k, space, cfg, false, ropes);
  EXPECT_EQ(l.results, n.results);
  // And against the stack-based executor too.
  auto cpu = run_cpu_ropes(k, ropes);
  EXPECT_EQ(l.results, cpu);
}

TEST(RopesResume, WarpVisitsUnionExactlyOnce) {
  LinearTree t = depth2_tree();
  std::vector<std::set<NodeId>> trunc{{1}, {4}};
  GpuAddressSpace space;
  TruncSetKernel k(t, 2, trunc, space);
  StaticRopes ropes = install_ropes(t);
  DeviceConfig cfg;
  auto g = run_gpu_ropes_sim(k, space, cfg, true, ropes);
  // Union of the two lanes' traversals is the whole tree; the warp's
  // cursor passes each node at most once.
  EXPECT_EQ(g.stats.warp_pops, 7u);
}

}  // namespace
}  // namespace tt
