// Multi-device sharding (core/device_group.h): the contract is the same
// one batching pinned -- sharding is results-neutral. run_sharded's merged
// canonical-order results, visit counters and baseline stats must be
// byte-identical to the single-device run for every variant and device
// count, the per-device accounting must partition the launch exactly
// (chunks, points, bytes), and the modelled makespan must be the slowest
// device's pipelined busy time.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_algos/harness.h"
#include "bench_algos/nn/nearest_neighbor.h"
#include "bench_algos/pc/point_correlation.h"
#include "core/device_group.h"
#include "core/gpu_executors.h"
#include "data/generators.h"
#include "obs/chrome_trace.h"
#include "spatial/kdtree.h"

namespace tt {
namespace {

struct ShardFixture {
  PointSet pts;
  KdTree tree;
  GpuAddressSpace space;
  float radius = 0;
  std::unique_ptr<PointCorrelationKernel> pc;

  explicit ShardFixture(std::size_t n = 700) {
    pts = gen_covtype_like(n, 5, 1234);
    tree = build_kdtree(pts, 8);
    radius = pc_pick_radius(pts, 16, 1234);
    pc = std::make_unique<PointCorrelationKernel>(tree, pts, radius, space);
  }

  [[nodiscard]] LaunchSpec spec(Variant v) {
    LaunchSpec s;
    s.kernel = make_kernel_handle(*pc);
    s.space = &space;
    s.mode = GpuMode::from(v);
    s.mode.profile_samples = 8;
    return s;
  }
};

DeviceGroupConfig group_of(std::size_t devices,
                           BatchPolicy policy = BatchPolicy::kWorkStealing) {
  DeviceGroupConfig g;
  g.devices = devices;
  g.policy = policy;
  g.chunk_points = 128;
  return g;
}

// ---------------------------------------------------------------------
// Results-neutrality: every variant x device count x policy reproduces
// the solo run byte-for-byte.
// ---------------------------------------------------------------------

TEST(DeviceGroup, ByteIdenticalToSoloAllVariantsAllDeviceCounts) {
  ShardFixture f;
  DeviceConfig cfg;
  for (Variant v : kAllVariants) {
    SCOPED_TRACE(variant_name(v));
    GpuMode mode = GpuMode::from(v);
    mode.profile_samples = 8;
    auto solo = run_gpu_sim(*f.pc, f.space, cfg, mode);
    for (std::size_t devices : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
      SCOPED_TRACE("devices " + std::to_string(devices));
      ShardedRun r = run_sharded(f.spec(v), 1 << 20, 1 << 16,
                                 group_of(devices));
      // run_sharded re-verifies the merge against its own baseline; an
      // empty error already certifies byte-identity. Check against an
      // independently produced solo run anyway.
      ASSERT_TRUE(r.merged.ok()) << r.merged.error;
      ASSERT_EQ(r.merged.n_points, solo.results.size());
      EXPECT_EQ(0, std::memcmp(r.merged.results.data(), solo.results.data(),
                               r.merged.n_points * r.merged.result_stride));
      EXPECT_EQ(r.merged.per_point_visits, solo.per_point_visits);
      EXPECT_EQ(r.merged.per_warp_pops, solo.per_warp_pops);
      EXPECT_EQ(r.merged.stats.lane_visits, solo.stats.lane_visits);
      EXPECT_EQ(r.merged.stats.warp_pops, solo.stats.warp_pops);
      EXPECT_EQ(r.merged.time.total_ms, solo.time.total_ms);

      // The device shards partition the launch exactly.
      ASSERT_EQ(r.devices.size(), devices);
      std::size_t chunks = 0, points = 0;
      std::uint64_t up = 0, down = 0, lane_visits = 0, warp_pops = 0;
      double makespan = 0;
      for (const DeviceShard& d : r.devices) {
        chunks += d.chunks;
        points += d.points;
        up += d.upload_bytes;
        down += d.download_bytes;
        lane_visits += d.stats.lane_visits;
        warp_pops += d.stats.warp_pops;
        makespan = std::max(makespan, d.busy_ms);
        EXPECT_GE(d.transfer.overlap_ms, 0.0);
        EXPECT_LE(d.transfer.overlap_ms, d.transfer.copy_in_ms + 1e-12);
      }
      EXPECT_EQ(chunks, r.merged.n_warps);
      EXPECT_EQ(points, r.merged.n_points);
      EXPECT_EQ(up, 1u << 20);
      EXPECT_EQ(down, 1u << 16);
      EXPECT_EQ(lane_visits, solo.stats.lane_visits);
      EXPECT_EQ(warp_pops, solo.stats.warp_pops);
      EXPECT_EQ(r.makespan_ms, makespan);
      EXPECT_GT(r.speedup, 0.0);
    }
  }
}

TEST(DeviceGroup, PolicyOnlyShapesAccountingNotResults) {
  ShardFixture f;
  for (BatchPolicy policy : {BatchPolicy::kRoundRobin,
                             BatchPolicy::kSequential,
                             BatchPolicy::kWorkStealing}) {
    SCOPED_TRACE(batch_policy_name(policy));
    ShardedRun r = run_sharded(f.spec(Variant::kAutoNolockstep), 4096, 1024,
                               group_of(3, policy));
    EXPECT_TRUE(r.merged.ok()) << r.merged.error;
  }
}

// ---------------------------------------------------------------------
// N = 1: one shard that is exactly the single-device run.
// ---------------------------------------------------------------------

TEST(DeviceGroup, SingleDeviceShardMatchesBaselineExactly) {
  ShardFixture f;
  const std::uint64_t up = 6'000'000, down = 3'000'000;
  DeviceGroupConfig g = group_of(1);
  ShardedRun r = run_sharded(f.spec(Variant::kAutoNolockstep), up, down, g);
  ASSERT_TRUE(r.merged.ok()) << r.merged.error;
  ASSERT_EQ(r.devices.size(), 1u);
  const DeviceShard& d = r.devices[0];
  EXPECT_EQ(d.chunks, r.merged.n_warps);
  EXPECT_EQ(d.points, r.merged.n_points);
  EXPECT_EQ(d.steals, 0u);
  // The lone shard re-executes the identical launch: exact stats/time.
  EXPECT_EQ(d.stats.instr_cycles, r.merged.stats.instr_cycles);
  EXPECT_EQ(d.stats.lane_visits, r.merged.stats.lane_visits);
  EXPECT_EQ(d.time.total_ms, r.merged.time.total_ms);
  // single_device_ms charges the synchronous round trip; the pipelined
  // shard can only hide transfer under compute, never add to it.
  EXPECT_DOUBLE_EQ(r.single_device_ms,
                   r.merged.time.total_ms +
                       g.transfer.round_trip_ms(up, down, 1));
  EXPECT_LE(r.makespan_ms, r.single_device_ms + 1e-12);
  EXPECT_DOUBLE_EQ(d.busy_ms, d.transfer.exposed_ms + d.time.total_ms);
}

// More devices than warps: the excess devices idle at zero cost.
TEST(DeviceGroup, ExcessDevicesStayIdle) {
  ShardFixture f(80);  // 3 warps at warp_size 32
  ShardedRun r = run_sharded(f.spec(Variant::kAutoNolockstep), 1024, 256,
                             group_of(8));
  ASSERT_TRUE(r.merged.ok()) << r.merged.error;
  ASSERT_EQ(r.devices.size(), 8u);
  std::size_t idle = 0;
  for (const DeviceShard& d : r.devices)
    if (d.chunks == 0) {
      ++idle;
      EXPECT_EQ(d.points, 0u);
      EXPECT_EQ(d.upload_bytes, 0u);
      EXPECT_EQ(d.busy_ms, 0.0);
    }
  EXPECT_EQ(idle, 8u - r.merged.n_warps);
}

TEST(DeviceGroup, RejectsBadArguments) {
  ShardFixture f;
  EXPECT_THROW((void)run_sharded(f.spec(Variant::kAutoNolockstep), 0, 0,
                                 group_of(0)),
               std::invalid_argument);
  LaunchSpec empty;
  EXPECT_THROW((void)run_sharded(empty, 0, 0, group_of(2)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Chrome tracks: one "dev<i>/<kernel>" process per working device, with
// the pipelined copy chunks as launch-scope kCopy events.
// ---------------------------------------------------------------------

TEST(DeviceGroup, OpensPerDeviceChromeTracks) {
  ShardFixture f;
  obs::ChromeTraceCollector chrome;
  DeviceGroupConfig g = group_of(2);
  g.chrome = &chrome;
  ShardedRun r = run_sharded(f.spec(Variant::kAutoNolockstep), 1 << 20,
                             1 << 16, g);
  ASSERT_TRUE(r.merged.ok()) << r.merged.error;
  ASSERT_EQ(chrome.n_launches(), 2u);
  EXPECT_EQ(chrome.launch_name(0), "dev0/point_correlation");
  EXPECT_EQ(chrome.launch_name(1), "dev1/point_correlation");
  EXPECT_GT(chrome.total_events(), 0u);
}

// ---------------------------------------------------------------------
// Harness entry point.
// ---------------------------------------------------------------------

TEST(RunSharding, ShardsTheItemListAndSumsThePool) {
  ShardingConfig sc;
  for (Algo a : {Algo::kPC, Algo::kNN}) {
    BenchConfig c;
    c.algo = a;
    c.input = inputs_for(a).front();
    c.n = 256;
    c.profile_samples = 4;
    sc.items.push_back(c);
  }
  sc.devices = 4;
  sc.chunk_points = 64;
  ShardingRunSummary s = run_sharding(sc);
  ASSERT_EQ(s.kernels.size(), 2u);
  double solo = 0, makespan = 0;
  for (const ShardingKernelReport& k : s.kernels) {
    EXPECT_TRUE(k.ok()) << k.kernel_name << ": " << k.error;
    EXPECT_EQ(k.devices.size(), 4u);
    solo += k.single_device_ms;
    makespan += k.makespan_ms;
  }
  EXPECT_DOUBLE_EQ(s.single_device_ms(), solo);
  EXPECT_DOUBLE_EQ(s.makespan_ms(), makespan);
  EXPECT_GT(s.speedup(), 0.0);
}

TEST(RunSharding, EmptyItemListThrows) {
  ShardingConfig sc;
  EXPECT_THROW((void)run_sharding(sc), std::invalid_argument);
}

}  // namespace
}  // namespace tt
