// Batched multi-kernel launches (core/batch_scheduler.h): the contract is
// results-neutrality -- every launch's outputs and per-launch KernelStats
// are byte-identical to its solo run_gpu_sim run under every interleaving
// policy -- plus per-launch failure isolation and the schedule/transfer
// accounting the batch actually changes.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "bench_algos/harness.h"
#include "bench_algos/nn/nearest_neighbor.h"
#include "bench_algos/pc/point_correlation.h"
#include "core/batch_scheduler.h"
#include "core/gpu_executors.h"
#include "core/serving.h"
#include "core/traversal_kernel.h"
#include "data/generators.h"
#include "obs/trace.h"
#include "spatial/kdtree.h"
#include "spatial/linear_tree.h"

namespace tt {
namespace {

constexpr BatchPolicy kPolicies[] = {BatchPolicy::kRoundRobin,
                                     BatchPolicy::kSequential,
                                     BatchPolicy::kWorkStealing};

// ---------------------------------------------------------------------
// Policy names and pure schedule accounting.
// ---------------------------------------------------------------------

TEST(BatchPolicy, NamesRoundTrip) {
  for (BatchPolicy p : kPolicies)
    EXPECT_EQ(batch_policy_from_name(batch_policy_name(p)), p);
  EXPECT_THROW((void)batch_policy_from_name("zigzag"), std::invalid_argument);
}

// The error lists every valid spelling, matching variant_from_name's
// self-diagnosing behavior.
TEST(BatchPolicy, UnknownNameErrorListsValidSpellings) {
  try {
    (void)batch_policy_from_name("zigzag");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("zigzag"), std::string::npos) << msg;
    EXPECT_NE(msg.find("round_robin, sequential, work_stealing"),
              std::string::npos)
        << msg;
  }
}

// ---------------------------------------------------------------------
// Chunk -> device assignment (the sharding planner).
// ---------------------------------------------------------------------

TEST(AssignDevices, RoundRobinKeepsEveryChunkHome) {
  const double costs[] = {5, 1, 1, 5, 1, 1};
  DeviceAssignment a = assign_devices(costs, 2, BatchPolicy::kRoundRobin);
  ASSERT_EQ(a.device.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(a.device[i], i % 2);
  EXPECT_EQ(a.chunks[0], 3u);
  EXPECT_EQ(a.chunks[1], 3u);
  EXPECT_EQ(a.steals[0], 0u);
  EXPECT_EQ(a.steals[1], 0u);
  EXPECT_DOUBLE_EQ(a.load[0], 7.0);
  EXPECT_DOUBLE_EQ(a.load[1], 7.0);
}

TEST(AssignDevices, SequentialSplitsContiguousBlocks) {
  const double costs[] = {1, 1, 1, 1, 1, 1};
  DeviceAssignment a = assign_devices(costs, 3, BatchPolicy::kSequential);
  const std::uint32_t want[] = {0, 0, 1, 1, 2, 2};
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(a.device[i], want[i]) << i;
}

TEST(AssignDevices, WorkStealingIsGreedyEarliestFinish) {
  // Chunk 0 (cost 10) occupies device 0; the greedy then routes chunks 1
  // and 2 to device 1, so chunk 2 -- home device 0 -- counts as a steal.
  const double costs[] = {10, 1, 1, 1};
  DeviceAssignment a = assign_devices(costs, 2, BatchPolicy::kWorkStealing);
  ASSERT_EQ(a.device.size(), 4u);
  EXPECT_EQ(a.device[0], 0u);
  EXPECT_EQ(a.device[1], 1u);
  EXPECT_EQ(a.device[2], 1u);  // stolen from home device 0
  EXPECT_EQ(a.device[3], 1u);
  EXPECT_DOUBLE_EQ(a.load[0], 10.0);
  EXPECT_DOUBLE_EQ(a.load[1], 3.0);
  // Only chunk 2 landed off its home device (2 % 2 == 0), counted on the
  // device that took it.
  EXPECT_EQ(a.steals[0], 0u);
  EXPECT_EQ(a.steals[1], 1u);
}

TEST(AssignDevices, TiesBreakToLowestIndexDeterministically) {
  const double costs[] = {1, 1, 1, 1};
  DeviceAssignment a = assign_devices(costs, 4, BatchPolicy::kWorkStealing);
  // Equal costs: each chunk lands on the lowest-loaded (== lowest index
  // unfilled) device, which is its home -- zero steals, one chunk each.
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(a.chunks[d], 1u);
    EXPECT_EQ(a.steals[d], 0u);
  }
}

TEST(AssignDevices, ZeroDevicesThrows) {
  const double costs[] = {1.0};
  EXPECT_THROW((void)assign_devices(costs, 0, BatchPolicy::kWorkStealing),
               std::invalid_argument);
}

LaunchGeometry shape_of(std::size_t n_warps, std::size_t grid) {
  LaunchGeometry s;
  s.n_warps = n_warps;
  s.grid = grid;
  return s;
}

TEST(BatchScheduler, RoundRobinInterleavesWaves) {
  BatchScheduler sched(BatchPolicy::kRoundRobin);
  sched.add_launch(shape_of(4, 2));  // 2 waves of 2 chunks
  sched.add_launch(shape_of(3, 1));  // 3 waves of 1 chunk
  BatchSchedule s = sched.schedule();
  EXPECT_EQ(s.residency, 3u);
  EXPECT_EQ(s.total_chunks, 7u);
  EXPECT_EQ(s.rounds, 3u);  // max per-launch wave count
  // wave 0: L0{0,1} L1{0}; wave 1: L0{2,3} L1{1}; wave 2: L1{2}.
  const std::uint32_t want_launch[] = {0, 0, 1, 0, 0, 1, 1};
  const std::uint32_t want_chunk[] = {0, 1, 0, 2, 3, 1, 2};
  ASSERT_EQ(s.order.size(), 7u);
  for (std::size_t i = 0; i < s.order.size(); ++i) {
    EXPECT_EQ(s.order[i].launch, want_launch[i]) << "at " << i;
    EXPECT_EQ(s.order[i].chunk, want_chunk[i]) << "at " << i;
  }
  // Transitions in 0,0,1,0,0,1,1: at indices 2, 3 and 5.
  EXPECT_EQ(s.switches, 3u);
}

TEST(BatchScheduler, SequentialConcatenates) {
  BatchScheduler sched(BatchPolicy::kSequential);
  sched.add_launch(shape_of(4, 2));
  sched.add_launch(shape_of(3, 1));
  BatchSchedule s = sched.schedule();
  EXPECT_EQ(s.residency, 3u);
  EXPECT_EQ(s.total_chunks, 7u);
  EXPECT_EQ(s.rounds, 5u);  // 2 + 3 residency refills
  ASSERT_EQ(s.order.size(), 7u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(s.order[i].launch, 0u);
  for (std::size_t i = 4; i < 7; ++i) EXPECT_EQ(s.order[i].launch, 1u);
  EXPECT_EQ(s.switches, 1u);  // one boundary crossing
}

// ---------------------------------------------------------------------
// Solo-vs-batched byte identity.
// ---------------------------------------------------------------------

template <class K>
void expect_matches_solo(const LaunchResult& b, const GpuRun<K>& solo) {
  ASSERT_TRUE(b.ok()) << b.error;
  ASSERT_EQ(b.result_stride, sizeof(typename K::Result));
  ASSERT_EQ(b.n_points, solo.results.size());
  EXPECT_EQ(0, std::memcmp(b.results.data(), solo.results.data(),
                           b.n_points * b.result_stride));
  EXPECT_EQ(b.per_point_visits, solo.per_point_visits);
  EXPECT_EQ(b.per_warp_pops, solo.per_warp_pops);
  EXPECT_EQ(b.stats.load_instructions, solo.stats.load_instructions);
  EXPECT_EQ(b.stats.dram_transactions, solo.stats.dram_transactions);
  EXPECT_EQ(b.stats.l2_hit_transactions, solo.stats.l2_hit_transactions);
  EXPECT_EQ(b.stats.dram_bytes, solo.stats.dram_bytes);
  EXPECT_EQ(b.stats.instr_cycles, solo.stats.instr_cycles);
  EXPECT_EQ(b.stats.warp_steps, solo.stats.warp_steps);
  EXPECT_EQ(b.stats.lane_visits, solo.stats.lane_visits);
  EXPECT_EQ(b.stats.warp_pops, solo.stats.warp_pops);
  EXPECT_EQ(b.stats.calls, solo.stats.calls);
  EXPECT_EQ(b.stats.votes, solo.stats.votes);
  EXPECT_EQ(b.stats.active_lane_sum, solo.stats.active_lane_sum);
  EXPECT_EQ(b.stats.peak_stack_entries, solo.stats.peak_stack_entries);
  // Identical inputs through identical arithmetic: exact double equality.
  EXPECT_EQ(b.time.compute_ms, solo.time.compute_ms);
  EXPECT_EQ(b.time.memory_ms, solo.time.memory_ms);
  EXPECT_EQ(b.time.total_ms, solo.time.total_ms);
  EXPECT_EQ(b.time.imbalance, solo.time.imbalance);
  EXPECT_EQ(b.selection.has_value(), solo.selection.has_value());
  if (b.selection && solo.selection) {
    EXPECT_EQ(b.selection->chosen, solo.selection->chosen);
    EXPECT_EQ(b.selection->samples, solo.selection->samples);
    EXPECT_EQ(b.selection->mean_similarity, solo.selection->mean_similarity);
    EXPECT_EQ(b.selection->sampling_cycles, solo.selection->sampling_cycles);
  }
}

struct BatchFixtures {
  PointSet pc_pts;
  KdTree pc_tree;
  GpuAddressSpace pc_space;
  float pc_radius = 0;
  std::unique_ptr<PointCorrelationKernel> pc;

  PointSet nn_pts;
  KdTreeNN nn_tree;
  GpuAddressSpace nn_space;
  std::unique_ptr<NnKernel> nn;

  BatchFixtures() {
    pc_pts = gen_covtype_like(500, 7, 77);
    pc_tree = build_kdtree(pc_pts, 8);
    pc_radius = pc_pick_radius(pc_pts, 16, 77);
    pc = std::make_unique<PointCorrelationKernel>(pc_tree, pc_pts, pc_radius,
                                                  pc_space);
    nn_pts = gen_uniform(450, 5, 78);
    nn_tree = build_kdtree_nn(nn_pts);
    nn = std::make_unique<NnKernel>(nn_tree, nn_pts, nn_space);
  }
};

TEST(RunGpuBatch, ByteIdenticalToSoloAllVariantsAllPolicies) {
  BatchFixtures f;
  DeviceConfig cfg;
  for (Variant v : kAllVariants) {
    SCOPED_TRACE(variant_name(v));
    GpuMode mode = GpuMode::from(v);
    mode.profile_samples = 8;
    // NN is guided, so the stackless variants batch PC alone; the batch
    // scheduler itself is variant-agnostic either way.
    const bool nn_ok = kernel_variant_eligible<NnKernel>(v);
    auto solo_pc = run_gpu_sim(*f.pc, f.pc_space, cfg, mode);
    for (BatchPolicy policy : kPolicies) {
      SCOPED_TRACE(batch_policy_name(policy));
      std::vector<LaunchSpec> specs;
      specs.push_back(
          LaunchSpec{make_kernel_handle(*f.pc), &f.pc_space, mode, nullptr});
      if (nn_ok)
        specs.push_back(
            LaunchSpec{make_kernel_handle(*f.nn), &f.nn_space, mode, nullptr});
      BatchRun run = run_gpu_batch(specs, cfg, policy);
      ASSERT_EQ(run.launches.size(), nn_ok ? 2u : 1u);
      EXPECT_EQ(run.launches[0].kernel_name, "point_correlation");
      EXPECT_EQ(run.launches[0].batch_index, 0u);
      expect_matches_solo(run.launches[0], solo_pc);
      if (nn_ok) {
        auto solo_nn = run_gpu_sim(*f.nn, f.nn_space, cfg, mode);
        EXPECT_EQ(run.launches[1].kernel_name, "nearest_neighbor");
        EXPECT_EQ(run.launches[1].batch_index, 1u);
        expect_matches_solo(run.launches[1], solo_nn);
      }
    }
  }
}

TEST(RunGpuBatch, ByteIdenticalUnderStripMinedResidency) {
  BatchFixtures f;
  DeviceConfig cfg;
  GpuMode mode = GpuMode::from(Variant::kAutoNolockstep);
  mode.grid_limit = 3;  // Figure 9b: slots walk several chunks each
  auto solo_pc = run_gpu_sim(*f.pc, f.pc_space, cfg, mode);
  auto solo_nn = run_gpu_sim(*f.nn, f.nn_space, cfg, mode);
  for (BatchPolicy policy : kPolicies) {
    SCOPED_TRACE(batch_policy_name(policy));
    std::vector<LaunchSpec> specs;
    specs.push_back(
        LaunchSpec{make_kernel_handle(*f.pc), &f.pc_space, mode, nullptr});
    specs.push_back(
        LaunchSpec{make_kernel_handle(*f.nn), &f.nn_space, mode, nullptr});
    BatchRun run = run_gpu_batch(specs, cfg, policy);
    ASSERT_EQ(run.launches.size(), 2u);
    EXPECT_EQ(run.residency, 6u);  // two launches, grid 3 each
    expect_matches_solo(run.launches[0], solo_pc);
    expect_matches_solo(run.launches[1], solo_nn);
  }
}

TEST(RunGpuBatch, TypedResultViewChecksStride) {
  BatchFixtures f;
  DeviceConfig cfg;
  std::vector<LaunchSpec> specs;
  specs.push_back(LaunchSpec{make_kernel_handle(*f.nn), &f.nn_space,
                             GpuMode::from(Variant::kAutoNolockstep),
                             nullptr});
  BatchRun run = run_gpu_batch(specs, cfg);
  ASSERT_TRUE(run.launches[0].ok()) << run.launches[0].error;
  EXPECT_NE(run.launches[0].results_as<NnKernel::Result>(), nullptr);
  struct WrongSize {
    char pad[3];
  };
  EXPECT_EQ(run.launches[0].results_as<WrongSize>(), nullptr);
}

// ---------------------------------------------------------------------
// auto_select resolution inside a batch.
// ---------------------------------------------------------------------

TEST(RunGpuBatch, AutoSelectResolvesPerLaunchAndChargesSampling) {
  BatchFixtures f;
  DeviceConfig cfg;
  GpuMode mode = GpuMode::from(Variant::kAutoSelect);
  mode.profile_samples = 8;
  mode.profile_seed = 3;
  std::vector<LaunchSpec> specs;
  specs.push_back(
      LaunchSpec{make_kernel_handle(*f.pc), &f.pc_space, mode, nullptr});
  BatchRun run = run_gpu_batch(specs, cfg);
  ASSERT_TRUE(run.launches[0].ok()) << run.launches[0].error;
  ASSERT_TRUE(run.launches[0].selection.has_value());
  EXPECT_GT(run.launches[0].selection->sampling_cycles, 0.0);
  EXPECT_EQ(run.launches[0].selection->samples, 8u);
  // The executed composition is the resolved dispatch, never auto_select.
  EXPECT_NE(run.launches[0].variant, Variant::kAutoSelect);
  EXPECT_EQ(run.launches[0].variant, run.launches[0].selection->chosen);
}

TEST(RunGpuBatch, AutoSelectRejectsZeroSamples) {
  BatchFixtures f;
  DeviceConfig cfg;
  GpuMode mode = GpuMode::from(Variant::kAutoSelect);
  mode.profile_samples = 0;
  std::vector<LaunchSpec> specs;
  specs.push_back(
      LaunchSpec{make_kernel_handle(*f.pc), &f.pc_space, mode, nullptr});
  EXPECT_THROW(run_gpu_batch(specs, cfg), std::invalid_argument);
}

TEST(KernelHandle, PrepareRejectsUnresolvedAutoSelect) {
  BatchFixtures f;
  DeviceConfig cfg;
  auto handle = make_kernel_handle(*f.pc);
  EXPECT_EQ(std::string(handle->name()), "point_correlation");
  EXPECT_THROW(handle->prepare(f.pc_space, cfg,
                               GpuMode::from(Variant::kAutoSelect), nullptr,
                               nullptr, 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Per-launch overflow isolation.
// ---------------------------------------------------------------------

// Full binary tree deep enough that stack_bound() = 1 overflows every
// composition's stack while a sibling launch stays healthy.
class DeepKernel {
 public:
  struct State {
    std::uint32_t pid = 0;
  };
  using Result = std::uint32_t;
  using UArg = Empty;
  using LArg = Empty;
  static constexpr const char* kName = "deep_micro";
  static constexpr int kFanout = 2;
  static constexpr int kNumCallSets = 1;
  static constexpr bool kCallSetsEquivalent = true;

  DeepKernel(const LinearTree& tree, std::size_t n, GpuAddressSpace& space)
      : tree_(&tree), n_(n) {
    nodes_ = space.register_buffer("deep_nodes", 4,
                                   static_cast<std::uint64_t>(tree.n_nodes));
  }

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_points() const { return n_; }
  [[nodiscard]] UArg root_uarg() const { return {}; }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] int stack_bound() const { return 1; }

  template <class Mem>
  State init(std::uint32_t pid, Mem&, int) const {
    return State{pid};
  }

  template <class Mem>
  bool visit(NodeId n, const UArg&, const LArg&, State&, Mem& mem,
             int lane) const {
    mem.lane_load(lane, nodes_, static_cast<std::uint64_t>(n));
    return !tree_->is_leaf(n);
  }

  [[nodiscard]] int choose_callset(NodeId, const State&) const { return 0; }

  template <class Mem>
  int children(NodeId n, const UArg&, int, const State&,
               Child<UArg, LArg>* out, Mem&, int) const {
    int cnt = 0;
    for (int k = 0; k < 2; ++k)
      if (tree_->child(n, k) != kNullNode) out[cnt++].node = tree_->child(n, k);
    return cnt;
  }

  [[nodiscard]] Result finish(const State& st) const { return st.pid; }

 private:
  const LinearTree* tree_;
  std::size_t n_;
  BufferId nodes_;
};

// Left-biased DFS layout, as every real builder emits.
void grow_full_subtree(LinearTree& t, NodeId parent, int d, int depth) {
  if (d > depth) return;
  for (int k = 0; k < 2; ++k) {
    NodeId c = t.add_node(parent, d);
    t.set_child(parent, k, c);
    if (k == 0) grow_full_subtree(t, c, d + 1, depth);
  }
  // Right subtree after the whole left subtree (preorder).
  grow_full_subtree(t, t.child(parent, 1), d + 1, depth);
}

LinearTree full_binary_tree(int depth) {
  LinearTree t;
  t.fanout = 2;
  NodeId root = t.add_node(kNullNode, 0);
  grow_full_subtree(t, root, 1, depth);
  t.validate();
  return t;
}

TEST(RunGpuBatch, OverflowIsolatedToItsLaunch) {
  LinearTree deep = full_binary_tree(10);
  GpuAddressSpace deep_space;
  DeepKernel deep_k(deep, 64, deep_space);

  BatchFixtures f;
  DeviceConfig cfg;
  GpuMode mode = GpuMode::from(Variant::kAutoNolockstep);
  auto solo_nn = run_gpu_sim(*f.nn, f.nn_space, cfg, mode);
  // The deep kernel alone aborts its solo run...
  EXPECT_THROW(run_gpu_sim(deep_k, deep_space, cfg, mode), std::runtime_error);

  // ...but batched, it fails in place without poisoning the sibling.
  std::vector<LaunchSpec> specs;
  specs.push_back(
      LaunchSpec{make_kernel_handle(deep_k), &deep_space, mode, nullptr});
  specs.push_back(
      LaunchSpec{make_kernel_handle(*f.nn), &f.nn_space, mode, nullptr});
  BatchRun run = run_gpu_batch(specs, cfg);
  ASSERT_EQ(run.launches.size(), 2u);
  EXPECT_FALSE(run.launches[0].ok());
  EXPECT_NE(run.launches[0].error.find("kernel deep_micro (batch 0)"),
            std::string::npos)
      << run.launches[0].error;
  EXPECT_NE(run.launches[0].error.find("rope stack overflow"),
            std::string::npos);
  EXPECT_TRUE(run.launches[0].results.empty());
  EXPECT_EQ(run.launches[0].stats.lane_visits, 0u);
  expect_matches_solo(run.launches[1], solo_nn);
}

// ---------------------------------------------------------------------
// kChunk trace events carry the owning kernel id; solo traces never do.
// ---------------------------------------------------------------------

TEST(RunGpuBatch, ChunkTraceEventsCarryKernelId) {
  BatchFixtures f;
  DeviceConfig cfg;
  GpuMode mode = GpuMode::from(Variant::kAutoNolockstep);

  // Big rings: kChunk opens each chunk, so it would be the first event a
  // saturated ring drops.
  obs::TraceSink solo_trace(1 << 16);
  (void)run_gpu_sim(*f.nn, f.nn_space, cfg, mode, &solo_trace);
  for (const obs::TraceEvent& e : solo_trace.merged())
    EXPECT_NE(e.kind, obs::TraceEventKind::kChunk);

  obs::TraceSink pc_trace(1 << 16), nn_trace(1 << 16);
  std::vector<LaunchSpec> specs;
  specs.push_back(
      LaunchSpec{make_kernel_handle(*f.pc), &f.pc_space, mode, &pc_trace});
  specs.push_back(
      LaunchSpec{make_kernel_handle(*f.nn), &f.nn_space, mode, &nn_trace});
  BatchRun run = run_gpu_batch(specs, cfg);
  ASSERT_TRUE(run.launches[0].ok()) << run.launches[0].error;
  ASSERT_TRUE(run.launches[1].ok()) << run.launches[1].error;

  auto count_chunks = [](const obs::TraceSink& sink, std::uint32_t want_id) {
    std::size_t n = 0;
    for (const obs::TraceEvent& e : sink.merged())
      if (e.kind == obs::TraceEventKind::kChunk) {
        EXPECT_EQ(e.aux, want_id);
        ++n;
      }
    return n;
  };
  // One kChunk per logical warp, tagged with the launch's batch index.
  EXPECT_EQ(count_chunks(pc_trace, 0), run.launches[0].n_warps);
  EXPECT_EQ(count_chunks(nn_trace, 1), run.launches[1].n_warps);
}

// ---------------------------------------------------------------------
// Harness-level batch: amortized vs summed transfer accounting.
// ---------------------------------------------------------------------

TEST(RunBatch, AmortizedTransferStrictlyBelowSummedSolo) {
  BatchConfig bc = default_table1_batch();
  for (BenchConfig& item : bc.items) {
    item.n = 256;
    item.profile_samples = 4;
  }
  BatchResult b = run_batch(bc);
  ASSERT_EQ(b.kernels.size(), 5u);
  for (const BatchKernelRow& k : b.kernels)
    EXPECT_TRUE(k.result.ok()) << k.kernel_name << ": " << k.result.error;
  EXPECT_GT(b.upload_bytes, 0u);
  EXPECT_GT(b.download_bytes, 0u);
  EXPECT_LT(b.amortized_transfer_ms(), b.summed_solo_transfer_ms());
  // The saving is exactly the (N-1) launch overheads the batch skips.
  EXPECT_NEAR(b.summed_solo_transfer_ms() - b.amortized_transfer_ms(),
              static_cast<double>(b.kernels.size() - 1) *
                  b.transfer.launch_overhead_ms,
              1e-12);
}

TEST(RunBatch, EmptyBatchThrows) {
  BatchConfig bc;
  EXPECT_THROW(run_batch(bc), std::invalid_argument);
}

// ---------------------------------------------------------------------
// The closed-batch adapter: run_gpu_batch is now a ServingSession in
// closed-batch mode (core/serving.h). A hand-built session must produce
// the same BatchRun, byte for byte, as the adapter -- launches, results
// bytes, stats, and schedule accounting alike.
// ---------------------------------------------------------------------

TEST(ServingClosedBatch, SessionMatchesRunGpuBatchByteForByte) {
  BatchFixtures f;
  DeviceConfig cfg;
  GpuMode mode = GpuMode::from(Variant::kAutoNolockstep);
  for (BatchPolicy policy : kPolicies) {
    SCOPED_TRACE(batch_policy_name(policy));
    std::vector<LaunchSpec> specs;
    specs.push_back(
        LaunchSpec{make_kernel_handle(*f.pc), &f.pc_space, mode, nullptr});
    specs.push_back(
        LaunchSpec{make_kernel_handle(*f.nn), &f.nn_space, mode, nullptr});
    BatchRun adapter = run_gpu_batch(specs, cfg, policy);

    ServingSession session(
        ServingConfig::closed_batch(cfg, policy, specs.size()));
    for (const LaunchSpec& spec : specs) {
      QuerySet q;
      q.spec = spec;
      ASSERT_TRUE(session.submit(std::move(q), 0.0));
    }
    session.flush();
    BatchRun manual = session.take_closed_run();

    ASSERT_EQ(manual.launches.size(), adapter.launches.size());
    EXPECT_EQ(manual.policy, adapter.policy);
    EXPECT_EQ(manual.residency, adapter.residency);
    EXPECT_EQ(manual.total_chunks, adapter.total_chunks);
    EXPECT_EQ(manual.rounds, adapter.rounds);
    EXPECT_EQ(manual.switches, adapter.switches);
    for (std::size_t i = 0; i < manual.launches.size(); ++i) {
      const LaunchResult& m = manual.launches[i];
      const LaunchResult& a = adapter.launches[i];
      EXPECT_EQ(m.kernel_name, a.kernel_name);
      EXPECT_EQ(m.batch_index, a.batch_index);
      ASSERT_TRUE(m.ok()) << m.error;
      ASSERT_EQ(m.results.size(), a.results.size());
      EXPECT_EQ(0, std::memcmp(m.results.data(), a.results.data(),
                               m.results.size()));
      EXPECT_EQ(m.stats.instr_cycles, a.stats.instr_cycles);
      EXPECT_EQ(m.stats.warp_steps, a.stats.warp_steps);
      EXPECT_EQ(m.time.total_ms, a.time.total_ms);
    }
  }
}

// An empty closed batch stays legal through the adapter (no drain ever
// fires; take_closed_run still hands back a BatchRun with the policy set).
TEST(ServingClosedBatch, EmptySpecsYieldEmptyRun) {
  DeviceConfig cfg;
  BatchRun run = run_gpu_batch({}, cfg, BatchPolicy::kSequential);
  EXPECT_TRUE(run.launches.empty());
  EXPECT_EQ(run.policy, BatchPolicy::kSequential);
  EXPECT_EQ(run.total_chunks, 0u);
}

// Serving-mode sessions never keep result bytes; asking for the closed
// run is a programming error, not a silent empty answer.
TEST(ServingClosedBatch, TakeClosedRunRequiresKeepBatchResults) {
  BatchFixtures f;
  ServingConfig cfg;  // keep_batch_results defaults off
  ServingSession session(cfg);
  EXPECT_THROW((void)session.take_closed_run(), std::logic_error);
}

}  // namespace
}  // namespace tt
