// The paper's Figures 2 and 3, executed literally.
//
// Figure 2: a 7-node binary tree with ropes installed; "if a point's
// traversal is truncated at node 2, following the rope will correctly lead
// the point to the next node to visit, 5."
//
// Figure 3: the same traversal driven by a rope *stack*: "to start the
// traversal, node 1 is popped... children pushed in the order they will be
// traversed... at node 3 we see the benefit of ropes, as we can jump
// directly to node 4 by popping the rope from the top of the stack without
// backtracking up to node 2."
//
// Note: the paper numbers nodes 1..7 in its figure; our DFS ids are 0..6
// (paper node k == our node k-1).
#include <gtest/gtest.h>

#include "core/static_ropes.h"
#include "core/traversal_kernel.h"
#include "spatial/linear_tree.h"

namespace tt {
namespace {

// Paper numbering -> DFS ids:  1->0, 2->1, 3->2, 4->3, 5->4, 6->5, 7->6.
LinearTree figure2_tree() {
  LinearTree t;
  t.fanout = 2;
  NodeId n1 = t.add_node(kNullNode, 0);  // paper 1
  NodeId n2 = t.add_node(n1, 1);         // paper 2
  t.set_child(n1, 0, n2);
  NodeId n3 = t.add_node(n2, 2);         // paper 3
  t.set_child(n2, 0, n3);
  NodeId n4 = t.add_node(n2, 2);         // paper 4
  t.set_child(n2, 1, n4);
  NodeId n5 = t.add_node(n1, 1);         // paper 5
  t.set_child(n1, 1, n5);
  NodeId n6 = t.add_node(n5, 2);         // paper 6
  t.set_child(n5, 0, n6);
  NodeId n7 = t.add_node(n5, 2);         // paper 7
  t.set_child(n5, 1, n7);
  t.validate();
  return t;
}

TEST(Figure2, RopeFromNode2LeadsToNode5) {
  LinearTree t = figure2_tree();
  StaticRopes r = install_ropes(t);
  // Paper node 2 == id 1; paper node 5 == id 4.
  EXPECT_EQ(r.rope[1], 4);
  // Leaves' ropes: 3 -> 4, 4 -> 5, 6 -> 7, 7 -> end.
  EXPECT_EQ(r.rope[2], 3);
  EXPECT_EQ(r.rope[3], 4);
  EXPECT_EQ(r.rope[5], 6);
  EXPECT_EQ(r.rope[6], StaticRopes::kEndOfTraversal);
  EXPECT_EQ(r.rope[0], StaticRopes::kEndOfTraversal);
}

// Record every stack operation of an (un-truncated) autoropes traversal.
struct StackTrace {
  std::vector<std::string> ops;
};

StackTrace run_figure3(const LinearTree& t) {
  StackTrace trace;
  std::vector<NodeId> stk{0};
  trace.ops.push_back("push 1");
  while (!stk.empty()) {
    NodeId n = stk.back();
    stk.pop_back();
    trace.ops.push_back("pop " + std::to_string(n + 1));  // paper numbering
    if (t.is_leaf(n)) continue;
    // Children pushed in reverse visit order: right then left.
    for (int k = t.fanout - 1; k >= 0; --k) {
      NodeId c = t.child(n, k);
      if (c == kNullNode) continue;
      stk.push_back(c);
      trace.ops.push_back("push " + std::to_string(c + 1));
    }
  }
  return trace;
}

TEST(Figure3, StackDrivenTraversalOrder) {
  LinearTree t = figure2_tree();
  StackTrace trace = run_figure3(t);
  // "first 5, then 2" pushed at node 1; popping 2 next; at node 3 the pop
  // of 4 happens with no backtracking through 2.
  std::vector<std::string> expected{
      "push 1", "pop 1", "push 5", "push 2", "pop 2", "push 4",
      "push 3", "pop 3", "pop 4",  "pop 5",  "push 7", "push 6",
      "pop 6",  "pop 7",
  };
  EXPECT_EQ(trace.ops, expected);
}

TEST(Figure3, VisitOrderIsCanonicalDfs) {
  LinearTree t = figure2_tree();
  StackTrace trace = run_figure3(t);
  std::vector<int> visits;
  for (const std::string& op : trace.ops)
    if (op.rfind("pop ", 0) == 0) visits.push_back(std::stoi(op.substr(4)));
  EXPECT_EQ(visits, (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
}  // namespace tt
