// Structural properties the paper asserts about lockstep traversal
// (section 4.2) and about the memory behavior of the variants.
#include <gtest/gtest.h>

#include "bench_algos/knn/knn.h"
#include "bench_algos/pc/point_correlation.h"
#include "core/gpu_executors.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"

namespace tt {
namespace {

struct PcSetup {
  PointSet pts;
  KdTree tree;
  GpuAddressSpace space;
  float radius;

  explicit PcSetup(bool sorted, std::size_t n = 1024, std::uint64_t seed = 5)
      : pts(gen_covtype_like(n, 7, seed)), tree(), space() {
    auto perm = sorted ? tree_order(pts, 8) : shuffled_order(n, seed);
    pts.permute(perm);
    tree = build_kdtree(pts, 8);
    radius = pc_pick_radius(pts, 20, seed);
  }
};

TEST(Lockstep, WarpUnionAtLeastLongestLane) {
  PcSetup s(/*sorted=*/true);
  PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
  DeviceConfig cfg;
  auto gaN = run_gpu_sim(k, s.space, cfg, GpuMode{true, false});
  auto gaL = run_gpu_sim(k, s.space, cfg, GpuMode{true, true});
  ASSERT_EQ(gaL.per_warp_pops.size(), gaN.n_warps);
  for (std::size_t w = 0; w < gaL.per_warp_pops.size(); ++w) {
    std::uint32_t longest = 0;
    for (std::size_t i = w * 32; i < std::min<std::size_t>((w + 1) * 32,
                                                           k.num_points());
         ++i)
      longest = std::max(longest, gaN.per_point_visits[i]);
    EXPECT_GE(gaL.per_warp_pops[w], longest) << "warp " << w;
  }
}

TEST(Lockstep, VisitsEachNodeAtMostOncePerWarp) {
  // Autoropes guarantee (section 3): each node is visited at most once per
  // traversal; for a lockstep warp, at most once per warp. Union of visits
  // <= number of distinct nodes in the tree.
  PcSetup s(true, 512);
  PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
  DeviceConfig cfg;
  auto gaL = run_gpu_sim(k, s.space, cfg, GpuMode{true, true});
  for (auto pops : gaL.per_warp_pops)
    EXPECT_LE(pops, static_cast<std::uint32_t>(s.tree.topo.n_nodes));
}

TEST(Lockstep, SortingReducesWorkExpansion) {
  PcSetup sorted(true, 2048, 7);
  PcSetup unsorted(false, 2048, 7);
  DeviceConfig cfg;

  auto expansion = [&](PcSetup& s) {
    PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
    auto gaN = run_gpu_sim(k, s.space, cfg, GpuMode{true, false});
    auto gaL = run_gpu_sim(k, s.space, cfg, GpuMode{true, true});
    double total = 0;
    std::size_t warps = gaL.per_warp_pops.size();
    for (std::size_t w = 0; w < warps; ++w) {
      std::uint32_t longest = 1;
      for (std::size_t i = w * 32;
           i < std::min<std::size_t>((w + 1) * 32, k.num_points()); ++i)
        longest = std::max(longest, gaN.per_point_visits[i]);
      total += static_cast<double>(gaL.per_warp_pops[w]) / longest;
    }
    return total / static_cast<double>(warps);
  };

  EXPECT_LT(expansion(sorted), expansion(unsorted));
}

TEST(Lockstep, SortedLockstepCoalescesBetterThanNonLockstep) {
  // The core claim of section 4: lockstep keeps the warp on one node, so
  // node loads coalesce; non-lockstep lanes drift apart and issue more
  // transactions per visit.
  PcSetup s(true, 2048, 9);
  PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
  DeviceConfig cfg;
  auto gaN = run_gpu_sim(k, s.space, cfg, GpuMode{true, false});
  auto gaL = run_gpu_sim(k, s.space, cfg, GpuMode{true, true});
  double per_visit_N = static_cast<double>(gaN.stats.dram_transactions) /
                       static_cast<double>(gaN.stats.lane_visits);
  double per_visit_L = static_cast<double>(gaL.stats.dram_transactions) /
                       static_cast<double>(gaL.stats.lane_visits);
  EXPECT_LT(per_visit_L, per_visit_N);
}

TEST(Lockstep, GuidedMajorityVoteStillCorrectAndVotes) {
  PointSet pts = gen_uniform(512, 7, 11);
  auto perm = tree_order(pts, 8);
  pts.permute(perm);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  KnnKernel k(tree, pts, 4, space);
  DeviceConfig cfg;
  auto gaL = run_gpu_sim(k, space, cfg, GpuMode{true, true});
  EXPECT_GT(gaL.stats.votes, 0u);
  // Correctness of the vote variant is covered by the equivalence suite;
  // here: every warp terminated and produced pops.
  for (auto pops : gaL.per_warp_pops) EXPECT_GT(pops, 0u);
}

TEST(Lockstep, MaskedLanesDoNotVisit) {
  // Total active-lane visits in lockstep equals the sum over lanes of how
  // many stack entries had their mask bit set -- strictly fewer than
  // warp_pops * warp_size when traversals diverge.
  PcSetup s(false, 1024, 13);
  PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
  DeviceConfig cfg;
  auto gaL = run_gpu_sim(k, s.space, cfg, GpuMode{true, true});
  EXPECT_LT(gaL.stats.lane_visits, gaL.stats.warp_pops * 32);
  EXPECT_GT(gaL.stats.lane_visits, 0u);
}

TEST(Recursive, PaysCallOverheadOnDivergentInput) {
  // On *sorted* inputs naive recursion can actually win (the paper's
  // negative "Improv. vs Recurse" entries): hardware call-reconvergence
  // keeps similar traversals coalesced. The recursion penalty the paper
  // reports shows up once traversals diverge, so this property is asserted
  // on an unsorted input.
  PcSetup s(/*sorted=*/false, 512, 15);
  PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
  DeviceConfig cfg;
  auto gaN = run_gpu_sim(k, s.space, cfg, GpuMode{true, false});
  auto grN = run_gpu_sim(k, s.space, cfg, GpuMode{false, false});
  EXPECT_GT(grN.stats.calls, 0u);
  EXPECT_EQ(gaN.stats.calls, 0u);
  // Same semantic work...
  EXPECT_EQ(grN.stats.lane_visits, gaN.stats.lane_visits);
  // ...but more simulated time.
  EXPECT_GT(grN.time.total_ms, gaN.time.total_ms);
}

TEST(Recursive, LockstepVisitsMatchAutoropesLockstep) {
  PcSetup s(true, 512, 17);
  PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
  DeviceConfig cfg;
  auto gaL = run_gpu_sim(k, s.space, cfg, GpuMode{true, true});
  auto grL = run_gpu_sim(k, s.space, cfg, GpuMode{false, true});
  // The union traversal is the same set of (node, mask) visits.
  EXPECT_EQ(gaL.stats.lane_visits, grL.stats.lane_visits);
  EXPECT_EQ(gaL.stats.warp_pops, grL.stats.warp_pops);
}

}  // namespace
}  // namespace tt
