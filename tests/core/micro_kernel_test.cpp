// White-box accounting tests: a hand-built 3-node tree and a synthetic
// kernel make every event count predictable, pinning down the executor's
// transaction/cycle bookkeeping exactly (no statistical slack).
#include <gtest/gtest.h>

#include "core/gpu_executors.h"
#include "core/static_ropes.h"
#include "core/traversal_kernel.h"
#include "spatial/linear_tree.h"

namespace tt {
namespace {

// root(0) -> {left(1), right(2)}, both leaves.
LinearTree tiny_tree() {
  LinearTree t;
  t.fanout = 2;
  NodeId root = t.add_node(kNullNode, 0);
  NodeId l = t.add_node(root, 1);
  t.set_child(root, 0, l);
  NodeId r = t.add_node(root, 1);
  t.set_child(root, 1, r);
  t.validate();
  return t;
}

// Visits the whole tiny tree for even point ids; odd ids truncate at the
// root. Result = number of nodes this point visited without truncating.
class MicroKernel {
 public:
  struct State {
    std::uint32_t pid = 0;
    std::uint32_t descents = 0;
  };
  using Result = std::uint32_t;
  using UArg = Empty;
  using LArg = Empty;
  static constexpr int kFanout = 2;
  static constexpr int kNumCallSets = 1;
  static constexpr bool kCallSetsEquivalent = true;

  MicroKernel(const LinearTree& tree, std::size_t n_points, bool odd_truncates,
              GpuAddressSpace& space)
      : tree_(&tree), n_(n_points), odd_truncates_(odd_truncates) {
    nodes0_ = space.register_buffer("micro_nodes0", 4,
                                    static_cast<std::uint64_t>(tree.n_nodes));
    nodes1_ = space.register_buffer("micro_nodes1", 8,
                                    static_cast<std::uint64_t>(tree.n_nodes));
    queries_ = space.register_buffer("micro_queries", 4, n_points);
    ropes_ = install_ropes(tree);
  }

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_points() const { return n_; }
  [[nodiscard]] UArg root_uarg() const { return {}; }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] int stack_bound() const { return 8; }

  template <class Mem>
  State init(std::uint32_t pid, Mem& mem, int lane) const {
    mem.lane_load(lane, queries_, pid);
    return State{pid, 0};
  }

  template <class Mem>
  bool visit(NodeId n, const UArg&, const LArg&, State& st, Mem& mem,
             int lane) const {
    mem.lane_load(lane, nodes0_, static_cast<std::uint64_t>(n));
    if (odd_truncates_ && (st.pid & 1u)) return false;
    if (tree_->is_leaf(n)) return false;
    ++st.descents;
    return true;
  }

  [[nodiscard]] int choose_callset(NodeId, const State&) const { return 0; }

  template <class Mem>
  int children(NodeId n, const UArg&, int, const State&,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    mem.lane_load(lane, nodes1_, static_cast<std::uint64_t>(n));
    int cnt = 0;
    for (int k = 0; k < 2; ++k)
      if (tree_->child(n, k) != kNullNode) out[cnt++].node = tree_->child(n, k);
    return cnt;
  }

  [[nodiscard]] Result finish(const State& st) const { return st.descents; }

  // Stackless-variant support so the all-variants sweeps cover the rope
  // walkers too (the tiny tree makes their accounting just as exact).
  [[nodiscard]] UArg uarg_at(NodeId) const { return {}; }
  [[nodiscard]] const StaticRopes& ropes() const { return ropes_; }
  [[nodiscard]] std::vector<std::int32_t> node_buffers() const {
    return {nodes0_, nodes1_};
  }

 private:
  const LinearTree* tree_;
  std::size_t n_;
  bool odd_truncates_;
  BufferId nodes0_, nodes1_, queries_;
  StaticRopes ropes_;
};

DeviceConfig no_l2_config() {
  DeviceConfig cfg;
  cfg.model_l2 = false;
  return cfg;
}

TEST(MicroKernel, AutoropesNonLockstepExactCounts) {
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 32, /*odd_truncates=*/false, space);
  auto g = run_gpu_sim(k, space, no_l2_config(), GpuMode{true, false});

  // One warp, all lanes traverse root+left+right.
  EXPECT_EQ(g.n_warps, 1u);
  EXPECT_EQ(g.stats.lane_visits, 96u);
  EXPECT_EQ(g.stats.warp_steps, 3u);
  for (auto v : g.per_point_visits) EXPECT_EQ(v, 3u);

  // Transaction budget: init 1 (coalesced 32x4B) + 2 stack pushes + 3
  // stack pops + 3 node0 broadcasts + 1 node1 broadcast = 10, all 128B.
  // (The root seed-push costs nothing: it is written from registers.)
  EXPECT_EQ(g.stats.dram_transactions, 10u);
  EXPECT_EQ(g.stats.dram_bytes, 10u * 128u);
  // Fully converged: 32 active lanes at each of the 3 steps.
  EXPECT_EQ(g.stats.active_lane_sum, 96u);
}

TEST(MicroKernel, AutoropesLockstepExactCounts) {
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 32, false, space);
  auto g = run_gpu_sim(k, space, no_l2_config(), GpuMode{true, true});

  EXPECT_EQ(g.stats.warp_pops, 3u);
  EXPECT_EQ(g.per_warp_pops[0], 3u);
  EXPECT_EQ(g.stats.lane_visits, 96u);
  // Shared-memory stack: only init 1 + node0 x3 + node1 x1 = 5 transactions.
  EXPECT_EQ(g.stats.dram_transactions, 5u);
  EXPECT_EQ(g.stats.votes, 3u);  // one warp_and per pop
}

TEST(MicroKernel, TruncationMasksLanes) {
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 32, /*odd_truncates=*/true, space);

  auto gl = run_gpu_sim(k, space, no_l2_config(), GpuMode{true, true});
  // Root visited by 32 lanes; leaves by the 16 even lanes each.
  EXPECT_EQ(gl.stats.lane_visits, 64u);
  EXPECT_EQ(gl.stats.warp_pops, 3u);  // warp still walks the union
  EXPECT_EQ(gl.stats.active_lane_sum, 64u);

  auto gn = run_gpu_sim(k, space, no_l2_config(), GpuMode{true, false});
  EXPECT_EQ(gn.stats.lane_visits, 64u);
  for (std::size_t i = 0; i < 32; ++i)
    EXPECT_EQ(gn.per_point_visits[i], (i & 1u) ? 1u : 3u) << i;
  // Results identical across variants.
  EXPECT_EQ(gl.results, gn.results);
}

TEST(MicroKernel, PartialWarpHandled) {
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 40, false, space);  // 1 full warp + 8 lanes
  auto g = run_gpu_sim(k, space, no_l2_config(), GpuMode{true, true});
  EXPECT_EQ(g.n_warps, 2u);
  EXPECT_EQ(g.per_warp_pops.size(), 2u);
  EXPECT_EQ(g.per_warp_pops[1], 3u);
  EXPECT_EQ(g.stats.lane_visits, 120u);  // 40 points x 3 nodes
  for (auto r : g.results) EXPECT_EQ(r, 1u);  // one descent each (the root)
}

TEST(MicroKernel, RecursiveVariantsSameSemanticsMoreCost) {
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 32, true, space);
  auto ga = run_gpu_sim(k, space, no_l2_config(), GpuMode{true, false});
  auto gr = run_gpu_sim(k, space, no_l2_config(), GpuMode{false, false});
  EXPECT_EQ(ga.results, gr.results);
  EXPECT_EQ(gr.stats.lane_visits, ga.stats.lane_visits);
  EXPECT_GT(gr.stats.calls, 0u);
  // Frame traffic makes the recursive variant move more bytes.
  EXPECT_GT(gr.stats.dram_bytes, ga.stats.dram_bytes);
}

TEST(MicroKernel, GridStrideSameResultsSameVisits) {
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 200, true, space);
  GpuMode wide{true, true};
  GpuMode narrow{true, true};
  narrow.grid_limit = 2;  // 2 physical warps cover 7 chunks
  auto a = run_gpu_sim(k, space, no_l2_config(), wide);
  auto b = run_gpu_sim(k, space, no_l2_config(), narrow);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.stats.lane_visits, b.stats.lane_visits);
  EXPECT_EQ(a.per_warp_pops, b.per_warp_pops);  // per-chunk pops unchanged
}

TEST(MicroKernel, GridStrideReusesL2) {
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 2048, false, space);
  DeviceConfig cfg;  // L2 on
  GpuMode wide{true, true};
  GpuMode narrow{true, true};
  narrow.grid_limit = 4;
  auto a = run_gpu_sim(k, space, cfg, wide);
  auto b = run_gpu_sim(k, space, cfg, narrow);
  // Chunks sharing a physical warp's L2 slice re-hit the tiny tree.
  EXPECT_GT(b.stats.l2_hit_transactions, a.stats.l2_hit_transactions);
  EXPECT_LT(b.stats.dram_transactions, a.stats.dram_transactions);
  EXPECT_EQ(a.results, b.results);
}

TEST(MicroKernel, SingleLaneWarp) {
  LinearTree tree = tiny_tree();
  GpuAddressSpace space;
  MicroKernel k(tree, 1, false, space);
  for (Variant v : kAllVariants) {
    auto g = run_gpu_sim(k, space, no_l2_config(), GpuMode::from(v));
    ASSERT_EQ(g.results.size(), 1u);
    EXPECT_EQ(g.results[0], 1u);
    EXPECT_EQ(g.stats.lane_visits, 3u);
  }
}

}  // namespace
}  // namespace tt
