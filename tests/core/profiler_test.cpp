#include "core/profiler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "bench_algos/nn/nearest_neighbor.h"
#include "bench_algos/pc/point_correlation.h"
#include "bench_algos/vp/vantage_point.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"
#include "spatial/vptree.h"

namespace tt {
namespace {

TEST(Jaccard, Basics) {
  EXPECT_DOUBLE_EQ(traversal_jaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(traversal_jaccard({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(traversal_jaccard({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(traversal_jaccard({1, 2, 3}, {2, 3, 4}), 0.5);
}

TEST(Jaccard, DuplicatesIgnored) {
  EXPECT_DOUBLE_EQ(traversal_jaccard({1, 1, 2}, {2, 2, 1}), 1.0);
}

TEST(Jaccard, UnsortedInputsHandled) {
  EXPECT_DOUBLE_EQ(traversal_jaccard({3, 1, 2}, {2, 3, 1}), 1.0);
}

struct PcFixture {
  PointSet pts;
  KdTree tree;
  GpuAddressSpace space;
  float radius;

  explicit PcFixture(bool sorted)
      : pts(gen_covtype_like(2000, 7, 23)), tree(), space() {
    auto perm = sorted ? tree_order(pts, 8) : shuffled_order(pts.size(), 23);
    pts.permute(perm);
    tree = build_kdtree(pts, 8);
    radius = pc_pick_radius(pts, 20, 23);
  }
};

TEST(Profiler, RecordTraversalStartsAtRoot) {
  PcFixture s(true);
  PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
  auto visits = record_traversal(k, 0);
  ASSERT_FALSE(visits.empty());
  EXPECT_EQ(visits.front(), 0);
}

TEST(Profiler, SortedInputLooksSorted) {
  PcFixture s(true);
  PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
  ProfileReport r = profile_similarity(k, 32, 1);
  EXPECT_TRUE(r.looks_sorted);
  EXPECT_GT(r.lift(), kSimilarityLiftThreshold);
}

TEST(Profiler, ShuffledInputLooksUnsorted) {
  PcFixture s(false);
  PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
  ProfileReport r = profile_similarity(k, 32, 1);
  EXPECT_FALSE(r.looks_sorted);
  // On a shuffled input, adjacent points *are* a random pair, so the
  // adjacent mean should sit near the random-pair baseline.
  EXPECT_LT(std::abs(r.lift()), kSimilarityLiftThreshold);
  PcFixture sorted(true);
  PointCorrelationKernel ks(sorted.tree, sorted.pts, sorted.radius,
                            sorted.space);
  ProfileReport rs = profile_similarity(ks, 32, 1);
  EXPECT_GT(rs.mean_similarity, r.mean_similarity);
  EXPECT_GT(rs.lift(), r.lift());
}

TEST(Profiler, TinyInputTreatedAsSorted) {
  PointSet pts = gen_uniform(1, 3, 1);
  KdTree tree = build_kdtree(pts, 4);
  GpuAddressSpace space;
  PointCorrelationKernel k(tree, pts, 0.1f, space);
  ProfileReport r = profile_similarity(k, 8, 1);
  EXPECT_TRUE(r.looks_sorted);
  EXPECT_EQ(r.sampled_visits, 0u);  // nothing sampled => nothing charged
}

// Guided kernels (kNumCallSets > 1) route record_traversal through
// choose_callset; the sampler must still separate sorted from shuffled.

TEST(Profiler, GuidedNnSortedMoreSimilarThanShuffled) {
  PointSet pts = gen_covtype_like(2000, 7, 29);
  PointSet sorted = pts, shuffled = pts;
  sorted.permute(tree_order(sorted, 8));
  shuffled.permute(shuffled_order(shuffled.size(), 29));

  GpuAddressSpace space_s, space_u;
  KdTreeNN tree_s = build_kdtree_nn(sorted);
  KdTreeNN tree_u = build_kdtree_nn(shuffled);
  NnKernel ks(tree_s, sorted, space_s);
  NnKernel ku(tree_u, shuffled, space_u);
  static_assert(NnKernel::kNumCallSets > 1);

  ProfileReport rs = profile_similarity(ks, 32, 1);
  ProfileReport ru = profile_similarity(ku, 32, 1);
  EXPECT_GT(rs.mean_similarity, ru.mean_similarity);
  // Guided traversals never reach the raw similarity an unguided kernel
  // measures on sorted inputs, but the baseline-normalized lift still
  // classifies both orders correctly.
  EXPECT_TRUE(rs.looks_sorted);
  EXPECT_FALSE(ru.looks_sorted);
  EXPECT_GT(rs.sampled_visits, 0u);
  EXPECT_GT(ru.sampled_visits, 0u);
}

TEST(Profiler, GuidedVpSortedMoreSimilarThanShuffled) {
  PointSet pts = gen_covtype_like(2000, 7, 31);
  PointSet sorted = pts, shuffled = pts;
  sorted.permute(tree_order(sorted, 8));
  shuffled.permute(shuffled_order(shuffled.size(), 31));

  GpuAddressSpace space_s, space_u;
  VpTree tree_s = build_vptree(sorted, 7);
  VpTree tree_u = build_vptree(shuffled, 7);
  VpKernel ks(tree_s, sorted, space_s);
  VpKernel ku(tree_u, shuffled, space_u);
  static_assert(VpKernel::kNumCallSets > 1);

  ProfileReport rs = profile_similarity(ks, 32, 1);
  ProfileReport ru = profile_similarity(ku, 32, 1);
  EXPECT_GT(rs.mean_similarity, ru.mean_similarity);
  EXPECT_TRUE(rs.looks_sorted);
  EXPECT_FALSE(ru.looks_sorted);
}

TEST(Profiler, ThresholdBoundaryIsInclusive) {
  PcFixture s(true);
  PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
  ProfileReport base = profile_similarity(k, 16, 1);
  ASSERT_GT(base.lift(), 0.0);

  // lift >= threshold counts as sorted, so a threshold exactly at the
  // measured lift still selects lockstep...
  ProfileReport at = profile_similarity(k, 16, 1, base.lift());
  EXPECT_EQ(at.threshold, base.lift());
  EXPECT_TRUE(at.looks_sorted);

  // ...and the next representable threshold above the lift does not.
  ProfileReport above =
      profile_similarity(k, 16, 1, std::nextafter(base.lift(), 2.0));
  EXPECT_FALSE(above.looks_sorted);
}

TEST(Profiler, SampledVisitsGrowWithSamples) {
  PcFixture s(true);
  PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
  ProfileReport few = profile_similarity(k, 4, 1);
  ProfileReport many = profile_similarity(k, 64, 1);
  // Every sampled traversal visits at least the root, twice per pair.
  EXPECT_GE(few.sampled_visits, 2u * few.samples);
  EXPECT_GT(many.sampled_visits, few.sampled_visits);
}

}  // namespace
}  // namespace tt
