#include "core/profiler.h"

#include <gtest/gtest.h>

#include "bench_algos/pc/point_correlation.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"

namespace tt {
namespace {

TEST(Jaccard, Basics) {
  EXPECT_DOUBLE_EQ(traversal_jaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(traversal_jaccard({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(traversal_jaccard({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(traversal_jaccard({1, 2, 3}, {2, 3, 4}), 0.5);
}

TEST(Jaccard, DuplicatesIgnored) {
  EXPECT_DOUBLE_EQ(traversal_jaccard({1, 1, 2}, {2, 2, 1}), 1.0);
}

TEST(Jaccard, UnsortedInputsHandled) {
  EXPECT_DOUBLE_EQ(traversal_jaccard({3, 1, 2}, {2, 3, 1}), 1.0);
}

struct PcFixture {
  PointSet pts;
  KdTree tree;
  GpuAddressSpace space;
  float radius;

  explicit PcFixture(bool sorted)
      : pts(gen_covtype_like(2000, 7, 23)), tree(), space() {
    auto perm = sorted ? tree_order(pts, 8) : shuffled_order(pts.size(), 23);
    pts.permute(perm);
    tree = build_kdtree(pts, 8);
    radius = pc_pick_radius(pts, 20, 23);
  }
};

TEST(Profiler, RecordTraversalStartsAtRoot) {
  PcFixture s(true);
  PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
  auto visits = record_traversal(k, 0);
  ASSERT_FALSE(visits.empty());
  EXPECT_EQ(visits.front(), 0);
}

TEST(Profiler, SortedInputLooksSorted) {
  PcFixture s(true);
  PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
  ProfileReport r = profile_similarity(k, 32, 1);
  EXPECT_TRUE(r.looks_sorted);
  EXPECT_GT(r.mean_similarity, kSortedSimilarityThreshold);
}

TEST(Profiler, ShuffledInputLooksUnsorted) {
  PcFixture s(false);
  PointCorrelationKernel k(s.tree, s.pts, s.radius, s.space);
  ProfileReport r = profile_similarity(k, 32, 1);
  EXPECT_LT(r.mean_similarity, 0.9);  // strictly less similar than sorted
  PcFixture sorted(true);
  PointCorrelationKernel ks(sorted.tree, sorted.pts, sorted.radius,
                            sorted.space);
  ProfileReport rs = profile_similarity(ks, 32, 1);
  EXPECT_GT(rs.mean_similarity, r.mean_similarity);
}

TEST(Profiler, TinyInputTreatedAsSorted) {
  PointSet pts = gen_uniform(1, 3, 1);
  KdTree tree = build_kdtree(pts, 4);
  GpuAddressSpace space;
  PointCorrelationKernel k(tree, pts, 0.1f, space);
  ProfileReport r = profile_similarity(k, 8, 1);
  EXPECT_TRUE(r.looks_sorted);
}

}  // namespace
}  // namespace tt
