#include "core/schedule.h"

#include <gtest/gtest.h>

#include "bench_algos/knn/knn.h"
#include "bench_algos/pc/point_correlation.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"

namespace tt {
namespace {

TEST(LaunchShape, WarpCountRoundsUp) {
  DeviceConfig cfg;
  EXPECT_EQ(launch_shape(1, 8, 8, cfg).n_warps, 1u);
  EXPECT_EQ(launch_shape(32, 8, 8, cfg).n_warps, 1u);
  EXPECT_EQ(launch_shape(33, 8, 8, cfg).n_warps, 2u);
}

TEST(LaunchShape, ResidencyBoundedByDevice) {
  DeviceConfig cfg;
  LaunchShape s = launch_shape(1 << 20, 8, 8, cfg);
  EXPECT_EQ(s.resident_warps,
            static_cast<std::size_t>(cfg.max_resident_warps()));
}

TEST(LaunchShape, SharedMemoryLimitsOccupancy) {
  DeviceConfig cfg;
  // A giant per-warp stack squeezes occupancy to 1 warp per SM.
  LaunchShape s = launch_shape(1 << 20, 4096, 16, cfg);
  EXPECT_EQ(s.smem_stack_bytes, 4096u * 16u);
  EXPECT_LE(s.resident_warps, static_cast<std::size_t>(cfg.num_sms));
}

TEST(LaunchShape, OverflowingSmemFlagged) {
  DeviceConfig cfg;
  LaunchShape s = launch_shape(64, 100000, 16, cfg);
  EXPECT_FALSE(s.smem_fits);
}

struct PcFixture {
  PointSet pts;
  KdTree tree;
  GpuAddressSpace space;

  explicit PcFixture(bool sorted) : pts(gen_covtype_like(1500, 7, 29)) {
    auto perm = sorted ? tree_order(pts, 8) : shuffled_order(pts.size(), 29);
    pts.permute(perm);
    tree = build_kdtree(pts, 8);
  }
};

TEST(DecideVariant, UnguidedSortedPicksLockstep) {
  PcFixture s(true);
  float r = pc_pick_radius(s.pts, 20, 29);
  PointCorrelationKernel k(s.tree, s.pts, r, s.space);
  auto d = decide_variant(k, ir::analyze(pc_ir()), false);
  EXPECT_TRUE(d.legal_lockstep);
  EXPECT_TRUE(d.lockstep);
  EXPECT_TRUE(d.mode().autoropes);
}

TEST(DecideVariant, GuidedWithoutAnnotationNeverLockstep) {
  PcFixture s(true);
  KnnKernel k(s.tree, s.pts, 4, s.space);
  auto d = decide_variant(k, ir::analyze(knn_ir()),
                          /*callsets_annotated_equivalent=*/false);
  EXPECT_FALSE(d.legal_lockstep);
  EXPECT_FALSE(d.lockstep);
}

TEST(DecideVariant, GuidedWithAnnotationMayLockstep) {
  PcFixture s(true);
  KnnKernel k(s.tree, s.pts, 4, s.space);
  auto d = decide_variant(k, ir::analyze(knn_ir()), true);
  EXPECT_TRUE(d.legal_lockstep);
}

}  // namespace
}  // namespace tt
