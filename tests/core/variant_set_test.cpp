// VariantSet: the value type behind BenchConfig::variants and the
// --variant CLI filter (replaces the old bool-array + runs_variant pair).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/variant.h"

namespace tt {
namespace {

TEST(VariantSet, AllNoneOnly) {
  EXPECT_EQ(VariantSet::all().count(), static_cast<std::size_t>(kNumVariants));
  EXPECT_TRUE(VariantSet::none().empty());
  EXPECT_EQ(VariantSet::none().count(), 0u);
  VariantSet one = VariantSet::only(Variant::kRecLockstep);
  EXPECT_EQ(one.count(), 1u);
  EXPECT_TRUE(one.contains(Variant::kRecLockstep));
  EXPECT_FALSE(one.contains(Variant::kAutoLockstep));
  for (Variant v : kAllVariants) EXPECT_TRUE(VariantSet::all().contains(v));
}

TEST(VariantSet, AddRemoveChain) {
  VariantSet s;
  s.add(Variant::kAutoLockstep).add(Variant::kAutoSelect);
  EXPECT_EQ(s.count(), 2u);
  s.add(Variant::kAutoLockstep);  // idempotent
  EXPECT_EQ(s.count(), 2u);
  s.remove(Variant::kAutoLockstep);
  EXPECT_EQ(s, VariantSet::only(Variant::kAutoSelect));
  s.remove(Variant::kAutoSelect);
  EXPECT_TRUE(s.empty());
}

TEST(VariantSet, FromNamesParsesCsv) {
  VariantSet s = VariantSet::from_names("auto_lockstep,rec_nolockstep");
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(s.contains(Variant::kAutoLockstep));
  EXPECT_TRUE(s.contains(Variant::kRecNolockstep));
  EXPECT_FALSE(s.contains(Variant::kAutoSelect));
  EXPECT_EQ(VariantSet::from_names("all"), VariantSet::all());
  EXPECT_EQ(VariantSet::from_names("auto_select"),
            VariantSet::only(Variant::kAutoSelect));
}

TEST(VariantSet, FromNamesRejectsBadSpellings) {
  EXPECT_THROW((void)VariantSet::from_names(""), std::invalid_argument);
  EXPECT_THROW((void)VariantSet::from_names("lockstep"),
               std::invalid_argument);
  EXPECT_THROW((void)VariantSet::from_names("auto_lockstep,"),
               std::invalid_argument);
  EXPECT_THROW((void)VariantSet::from_names("auto_lockstep,,rec_lockstep"),
               std::invalid_argument);
}

TEST(VariantSet, IterationVisitsEnabledInEnumOrder) {
  VariantSet s = VariantSet::from_names("rec_lockstep,auto_nolockstep");
  std::vector<Variant> seen;
  for (Variant v : s) seen.push_back(v);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], Variant::kAutoNolockstep);  // enum order, not CSV order
  EXPECT_EQ(seen[1], Variant::kRecLockstep);
  std::size_t n = 0;
  for (Variant v : VariantSet::all()) {
    EXPECT_EQ(v, kAllVariants[n]);
    ++n;
  }
  EXPECT_EQ(n, static_cast<std::size_t>(kNumVariants));
  for (Variant v : VariantSet::none()) {
    (void)v;
    ADD_FAILURE() << "empty set iterated";
  }
}

// The stackless family has exactly one spelling everywhere: the parser
// accepts it, the error listing advertises it (that listing is what the
// --variant flag and the serving/batch name plumbing surface to users),
// and GpuMode round-trips it.
TEST(VariantSet, StacklessSpellingsParseAndErrorListsAllEight) {
  EXPECT_EQ(variant_from_name("stackless_lockstep"),
            Variant::kStacklessLockstep);
  EXPECT_EQ(variant_from_name("stackless_nolockstep"),
            Variant::kStacklessNolockstep);
  EXPECT_EQ(variant_from_name("index_walk"), Variant::kIndexWalk);
  VariantSet s = VariantSet::from_names("stackless_lockstep,index_walk");
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(s.contains(Variant::kStacklessLockstep));
  EXPECT_TRUE(s.contains(Variant::kIndexWalk));
  try {
    (void)variant_from_name("stackless");  // close, but not canonical
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (Variant v : kAllVariants)
      EXPECT_NE(msg.find(variant_name(v)), std::string::npos)
          << "error listing must include " << variant_name(v) << ": " << msg;
  }
  for (Variant v : {Variant::kStacklessLockstep, Variant::kStacklessNolockstep,
                    Variant::kIndexWalk}) {
    EXPECT_TRUE(variant_is_stackless(v));
    EXPECT_FALSE(variant_is_autoropes(v));
    EXPECT_EQ(GpuMode::from(v).variant(), v);
    EXPECT_TRUE(GpuMode::from(v).smem_node_cache);
  }
}

TEST(VariantSet, ToStringRoundTrips) {
  EXPECT_EQ(VariantSet::all().to_string(), "all");
  VariantSet s = VariantSet::from_names("auto_lockstep,rec_nolockstep");
  EXPECT_EQ(s.to_string(), "auto_lockstep,rec_nolockstep");
  EXPECT_EQ(VariantSet::from_names(s.to_string()), s);
  for (Variant v : kAllVariants) {
    VariantSet one = VariantSet::only(v);
    EXPECT_EQ(VariantSet::from_names(one.to_string()), one);
  }
}

}  // namespace
}  // namespace tt
