#include "core/static_ropes.h"

#include <gtest/gtest.h>

#include <array>
#include <random>
#include <span>
#include <vector>

#include "bench_algos/bh/barnes_hut.h"
#include "bench_algos/nn/nearest_neighbor.h"
#include "bench_algos/pc/point_correlation.h"
#include "core/batch_scheduler.h"
#include "core/cpu_executors.h"
#include "core/gpu_executors.h"
#include "core/launch.h"
#include "core/ropes_executor.h"
#include "data/generators.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"

namespace tt {
namespace {

TEST(StaticRopes, ChainTreeRopes) {
  // Chain a -> b -> c: every rope is end-of-traversal (no siblings).
  LinearTree t;
  t.fanout = 2;
  NodeId a = t.add_node(kNullNode, 0);
  NodeId b = t.add_node(a, 1);
  t.set_child(a, 0, b);
  NodeId c = t.add_node(b, 2);
  t.set_child(b, 0, c);
  StaticRopes r = install_ropes(t);
  EXPECT_EQ(r.rope[a], StaticRopes::kEndOfTraversal);
  EXPECT_EQ(r.rope[b], StaticRopes::kEndOfTraversal);
  EXPECT_EQ(r.rope[c], StaticRopes::kEndOfTraversal);
}

TEST(StaticRopes, BalancedTreeRopes) {
  // Figure 2's shape: root(0){ left(1){3,4}, right(2)... } in DFS ids:
  //   0 -> {1 -> {2, 3}, 4 -> {5, 6}}
  LinearTree t;
  t.fanout = 2;
  NodeId n0 = t.add_node(kNullNode, 0);
  NodeId n1 = t.add_node(n0, 1);
  t.set_child(n0, 0, n1);
  NodeId n2 = t.add_node(n1, 2);
  t.set_child(n1, 0, n2);
  NodeId n3 = t.add_node(n1, 2);
  t.set_child(n1, 1, n3);
  NodeId n4 = t.add_node(n0, 1);
  t.set_child(n0, 1, n4);
  NodeId n5 = t.add_node(n4, 2);
  t.set_child(n4, 0, n5);
  NodeId n6 = t.add_node(n4, 2);
  t.set_child(n4, 1, n6);
  StaticRopes r = install_ropes(t);
  // Skipping the left subtree lands on the right subtree (the paper's
  // "truncated at node 2 -> rope leads to node 5" example).
  EXPECT_EQ(r.rope[n1], n4);
  EXPECT_EQ(r.rope[n2], n3);
  EXPECT_EQ(r.rope[n3], n4);
  EXPECT_EQ(r.rope[n5], n6);
  EXPECT_EQ(r.rope[n6], StaticRopes::kEndOfTraversal);
  EXPECT_EQ(r.rope[n0], StaticRopes::kEndOfTraversal);
}

TEST(StaticRopes, RopesPointForward) {
  PointSet pts = gen_covtype_like(1000, 7, 1);
  KdTree tree = build_kdtree(pts, 8);
  StaticRopes r = install_ropes(tree.topo);
  for (NodeId n = 0; n < tree.topo.n_nodes; ++n) {
    if (r.rope[n] == StaticRopes::kEndOfTraversal) continue;
    EXPECT_GT(r.rope[n], n);
    EXPECT_LT(r.rope[n], tree.topo.n_nodes);
  }
}

TEST(StaticRopes, CpuRopeTraversalMatchesRecursive) {
  PointSet pts = gen_covtype_like(600, 7, 2);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  float r = pc_pick_radius(pts, 16, 2);
  PointCorrelationKernel k(tree, pts, r, space);
  StaticRopes ropes = install_ropes(tree.topo);
  auto rope_results = run_cpu_ropes(k, ropes);
  auto rec = run_cpu(k, CpuVariant::kRecursive, 1);
  EXPECT_EQ(rope_results, rec.results);
}

TEST(StaticRopes, GpuRopesMatchRecursiveBothVariants) {
  PointSet pts = gen_uniform(700, 7, 3);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  PointCorrelationKernel k(tree, pts, 0.3f, space);
  StaticRopes ropes = install_ropes(tree.topo);
  auto rec = run_cpu(k, CpuVariant::kRecursive, 1);
  DeviceConfig cfg;
  auto gn = run_gpu_ropes_sim(k, space, cfg, /*lockstep=*/false, ropes);
  auto gl = run_gpu_ropes_sim(k, space, cfg, /*lockstep=*/true, ropes);
  EXPECT_EQ(gn.results, rec.results);
  EXPECT_EQ(gl.results, rec.results);
}

TEST(StaticRopes, BarnesHutRopeTraversalMatches) {
  BodySet b = gen_plummer(600, 4);
  Octree tree = build_octree(b.pos, b.mass);
  GpuAddressSpace space;
  BarnesHutKernel k(tree, b.pos, 0.5f, 1e-4f, space);
  StaticRopes ropes = install_ropes(tree.topo);
  auto rec = run_cpu(k, CpuVariant::kRecursive, 1);
  DeviceConfig cfg;
  auto gn = run_gpu_ropes_sim(k, space, cfg, false, ropes);
  for (std::size_t i = 0; i < b.pos.size(); ++i) {
    EXPECT_NEAR(gn.results[i].ax, rec.results[i].ax,
                1e-4f * std::max(1.f, std::fabs(rec.results[i].ax)))
        << i;
  }
}

TEST(StaticRopes, LockstepVisitsUnionOnce) {
  // The lockstep rope warp visits each node at most once (DFS ids only
  // move forward), so warp pops <= tree size.
  PointSet pts = gen_geocity_like(512, 5);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  float r = pc_pick_radius(pts, 16, 5);
  PointCorrelationKernel k(tree, pts, r, space);
  StaticRopes ropes = install_ropes(tree.topo);
  DeviceConfig cfg;
  auto gl = run_gpu_ropes_sim(k, space, cfg, true, ropes);
  EXPECT_LE(gl.stats.warp_pops,
            gl.n_warps * static_cast<std::size_t>(tree.topo.n_nodes));
}

TEST(StaticRopes, NoStackTrafficComparedToAutoropes) {
  PointSet pts = gen_covtype_like(1024, 7, 6);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  float r = pc_pick_radius(pts, 16, 6);
  PointCorrelationKernel k(tree, pts, r, space);
  StaticRopes ropes = install_ropes(tree.topo);
  DeviceConfig cfg;
  auto rope_run = run_gpu_ropes_sim(k, space, cfg, false, ropes);
  auto auto_run = run_gpu_sim(k, space, cfg, GpuMode{true, false});
  // Same node visits, strictly less memory traffic (no rope stack).
  EXPECT_EQ(rope_run.stats.lane_visits, auto_run.stats.lane_visits);
  EXPECT_LT(rope_run.stats.dram_transactions,
            auto_run.stats.dram_transactions);
}

// Emits a random subtree rooted at a fresh node in left-biased DFS order
// (children recurse immediately, in ascending slot order, with random
// interior slot gaps -- slots keep semantic identity, so gaps are legal).
// Returns the subtree's node count; `subtree[n]` records it per node.
std::int64_t grow_random(LinearTree& t, std::mt19937& rng, NodeId parent,
                         int slot, int depth, int max_depth,
                         std::int64_t budget,
                         std::vector<std::int64_t>& subtree) {
  NodeId n = t.add_node(parent, depth);
  if (parent != kNullNode) t.set_child(parent, slot, n);
  subtree.push_back(1);
  if (depth < max_depth) {
    for (int s = 0; s < t.fanout; ++s) {
      if (t.n_nodes >= budget) break;
      if (rng() % 2 == 0) continue;  // random slot gap / child count
      subtree[n] +=
          grow_random(t, rng, n, s, depth + 1, max_depth, budget, subtree);
    }
  }
  return subtree[n];
}

// Fuzz the escape-index invariant across randomized shapes: every rope is
// either n + subtree_size(n) -- the next DFS id outside n's subtree -- or
// kEndOfTraversal, and kEndOfTraversal occurs exactly on the rightmost
// spine (the nodes whose subtree runs to the end of the DFS order). The
// stackless executor variants lean on this directly: descend is n+1,
// escape is rope[n], so the invariant is what makes them byte-identical
// to the stack-based compositions.
TEST(StaticRopes, FuzzEscapeIndexMatchesSubtreeSize) {
  std::mt19937 rng(20260809);
  for (int iter = 0; iter < 60; ++iter) {
    LinearTree t;
    t.fanout = std::array<int, 3>{2, 4, 8}[iter % 3];
    const int max_depth = 1 + static_cast<int>(rng() % 10);
    const std::int64_t budget = 1 + static_cast<std::int64_t>(rng() % 1500);
    std::vector<std::int64_t> subtree;
    grow_random(t, rng, kNullNode, 0, 0, max_depth, budget, subtree);
    ASSERT_NO_THROW(t.validate()) << "iter " << iter;
    StaticRopes r = install_ropes(t);
    ASSERT_EQ(r.rope.size(), static_cast<std::size_t>(t.n_nodes));

    // The rightmost spine, computed independently of ids: follow the last
    // present child from the root.
    std::vector<bool> spine(static_cast<std::size_t>(t.n_nodes), false);
    for (NodeId cur = 0; cur != kNullNode;) {
      spine[static_cast<std::size_t>(cur)] = true;
      NodeId last = kNullNode;
      for (int s = 0; s < t.fanout; ++s)
        if (t.child(cur, s) != kNullNode) last = t.child(cur, s);
      cur = last;
    }

    for (NodeId n = 0; n < t.n_nodes; ++n) {
      if (spine[static_cast<std::size_t>(n)]) {
        EXPECT_EQ(n + subtree[static_cast<std::size_t>(n)], t.n_nodes)
            << "iter " << iter << " node " << n;
        EXPECT_EQ(r.rope[n], StaticRopes::kEndOfTraversal)
            << "iter " << iter << " node " << n;
      } else {
        EXPECT_EQ(static_cast<std::int64_t>(r.rope[n]),
                  n + subtree[static_cast<std::size_t>(n)])
            << "iter " << iter << " node " << n;
      }
    }
  }
}

// One canonical ineligibility spelling everywhere: the free function is
// the single source, and every surface -- run_gpu_sim's throw, the launch
// API's throw, the type-erased handle, batched admission's error rows,
// the harness's "skipped:" rows (same call, see harness.cpp) -- renders
// exactly that string behind its own prefix.
TEST(VariantEligibility, OneCanonicalReasonAcrossSurfaces) {
  PointSet pts = gen_covtype_like(256, 7, 11);
  KdTreeNN tree = build_kdtree_nn(pts);
  GpuAddressSpace space;
  NnKernel k(tree, pts, space);  // guided => the whole stackless family
  DeviceConfig cfg;
  for (Variant v : {Variant::kStacklessLockstep, Variant::kStacklessNolockstep,
                    Variant::kIndexWalk}) {
    SCOPED_TRACE(variant_name(v));
    const std::string reason = kernel_variant_ineligible_reason(k, v);
    EXPECT_EQ(reason, std::string("variant ") + variant_name(v) +
                          " requires a stackless-compatible (unguided, "
                          "rope-carrying) kernel; nearest_neighbor is "
                          "ineligible");

    try {
      run_gpu_sim(k, space, cfg, GpuMode::from(v));
      FAIL() << "run_gpu_sim accepted an ineligible pairing";
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(e.what(), "run_gpu_sim: " + reason);
    }

    LaunchSpec spec;
    spec.kernel = make_kernel_handle(k);
    spec.space = &space;
    spec.mode = GpuMode::from(v);
    EXPECT_EQ(spec.kernel->variant_ineligible_reason(v), reason);
    BatchRun run = run_gpu_batch(std::span<const LaunchSpec>(&spec, 1), cfg);
    ASSERT_EQ(run.launches.size(), 1u);
    EXPECT_FALSE(run.launches[0].ok());
    EXPECT_EQ(run.launches[0].error, std::string("kernel ") +
                                         spec.kernel->name() +
                                         " (batch 0): " + reason);
  }
  // Eligible pairings report no reason at all.
  for (Variant v : kAllVariants) {
    if (!variant_is_stackless(v)) {
      EXPECT_EQ(kernel_variant_ineligible_reason(k, v), "") << variant_name(v);
    }
  }
}

// The runtime leg variant_eligible can't see: a stackless-compatible
// kernel whose rope array is empty (e.g. a BFS relayout stripped it).
struct RopelessPc : PointCorrelationKernel {
  using PointCorrelationKernel::PointCorrelationKernel;
  [[nodiscard]] const StaticRopes& ropes() const { return none_; }
  StaticRopes none_;
};

TEST(VariantEligibility, EmptyRopesReasonMatchesAcrossSurfaces) {
  PointSet pts = gen_uniform(200, 3, 12);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  float r = pc_pick_radius(pts, 16, 12);
  RopelessPc k(tree, pts, r, space);
  const Variant v = Variant::kStacklessNolockstep;
  const std::string reason = kernel_variant_ineligible_reason(k, v);
  EXPECT_EQ(reason,
            std::string("variant ") + variant_name(v) +
                " needs ropes installed over a left-biased DFS tree; kernel "
                "point_correlation carries none (non-DFS relayout?)");
  try {
    DeviceConfig cfg;
    run_gpu_sim(k, space, cfg, GpuMode::from(v));
    FAIL() << "run_gpu_sim accepted a ropeless stackless launch";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(e.what(), "run_gpu_sim: " + reason);
  }
  EXPECT_EQ(make_kernel_handle(k)->variant_ineligible_reason(v), reason);
}

TEST(StaticRopes, InstallCostReported) {
  BodySet b = gen_plummer(2000, 7);
  Octree tree = build_octree(b.pos, b.mass);
  StaticRopes r = install_ropes(tree.topo);
  EXPECT_GE(r.install_ms, 0.0);
  EXPECT_EQ(r.rope.size(), static_cast<std::size_t>(tree.topo.n_nodes));
}

}  // namespace
}  // namespace tt
