#include "core/static_ropes.h"

#include <gtest/gtest.h>

#include "bench_algos/bh/barnes_hut.h"
#include "bench_algos/pc/point_correlation.h"
#include "core/cpu_executors.h"
#include "core/gpu_executors.h"
#include "core/ropes_executor.h"
#include "data/generators.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"

namespace tt {
namespace {

TEST(StaticRopes, ChainTreeRopes) {
  // Chain a -> b -> c: every rope is end-of-traversal (no siblings).
  LinearTree t;
  t.fanout = 2;
  NodeId a = t.add_node(kNullNode, 0);
  NodeId b = t.add_node(a, 1);
  t.set_child(a, 0, b);
  NodeId c = t.add_node(b, 2);
  t.set_child(b, 0, c);
  StaticRopes r = install_ropes(t);
  EXPECT_EQ(r.rope[a], StaticRopes::kEndOfTraversal);
  EXPECT_EQ(r.rope[b], StaticRopes::kEndOfTraversal);
  EXPECT_EQ(r.rope[c], StaticRopes::kEndOfTraversal);
}

TEST(StaticRopes, BalancedTreeRopes) {
  // Figure 2's shape: root(0){ left(1){3,4}, right(2)... } in DFS ids:
  //   0 -> {1 -> {2, 3}, 4 -> {5, 6}}
  LinearTree t;
  t.fanout = 2;
  NodeId n0 = t.add_node(kNullNode, 0);
  NodeId n1 = t.add_node(n0, 1);
  t.set_child(n0, 0, n1);
  NodeId n2 = t.add_node(n1, 2);
  t.set_child(n1, 0, n2);
  NodeId n3 = t.add_node(n1, 2);
  t.set_child(n1, 1, n3);
  NodeId n4 = t.add_node(n0, 1);
  t.set_child(n0, 1, n4);
  NodeId n5 = t.add_node(n4, 2);
  t.set_child(n4, 0, n5);
  NodeId n6 = t.add_node(n4, 2);
  t.set_child(n4, 1, n6);
  StaticRopes r = install_ropes(t);
  // Skipping the left subtree lands on the right subtree (the paper's
  // "truncated at node 2 -> rope leads to node 5" example).
  EXPECT_EQ(r.rope[n1], n4);
  EXPECT_EQ(r.rope[n2], n3);
  EXPECT_EQ(r.rope[n3], n4);
  EXPECT_EQ(r.rope[n5], n6);
  EXPECT_EQ(r.rope[n6], StaticRopes::kEndOfTraversal);
  EXPECT_EQ(r.rope[n0], StaticRopes::kEndOfTraversal);
}

TEST(StaticRopes, RopesPointForward) {
  PointSet pts = gen_covtype_like(1000, 7, 1);
  KdTree tree = build_kdtree(pts, 8);
  StaticRopes r = install_ropes(tree.topo);
  for (NodeId n = 0; n < tree.topo.n_nodes; ++n) {
    if (r.rope[n] == StaticRopes::kEndOfTraversal) continue;
    EXPECT_GT(r.rope[n], n);
    EXPECT_LT(r.rope[n], tree.topo.n_nodes);
  }
}

TEST(StaticRopes, CpuRopeTraversalMatchesRecursive) {
  PointSet pts = gen_covtype_like(600, 7, 2);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  float r = pc_pick_radius(pts, 16, 2);
  PointCorrelationKernel k(tree, pts, r, space);
  StaticRopes ropes = install_ropes(tree.topo);
  auto rope_results = run_cpu_ropes(k, ropes);
  auto rec = run_cpu(k, CpuVariant::kRecursive, 1);
  EXPECT_EQ(rope_results, rec.results);
}

TEST(StaticRopes, GpuRopesMatchRecursiveBothVariants) {
  PointSet pts = gen_uniform(700, 7, 3);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  PointCorrelationKernel k(tree, pts, 0.3f, space);
  StaticRopes ropes = install_ropes(tree.topo);
  auto rec = run_cpu(k, CpuVariant::kRecursive, 1);
  DeviceConfig cfg;
  auto gn = run_gpu_ropes_sim(k, space, cfg, /*lockstep=*/false, ropes);
  auto gl = run_gpu_ropes_sim(k, space, cfg, /*lockstep=*/true, ropes);
  EXPECT_EQ(gn.results, rec.results);
  EXPECT_EQ(gl.results, rec.results);
}

TEST(StaticRopes, BarnesHutRopeTraversalMatches) {
  BodySet b = gen_plummer(600, 4);
  Octree tree = build_octree(b.pos, b.mass);
  GpuAddressSpace space;
  BarnesHutKernel k(tree, b.pos, 0.5f, 1e-4f, space);
  StaticRopes ropes = install_ropes(tree.topo);
  auto rec = run_cpu(k, CpuVariant::kRecursive, 1);
  DeviceConfig cfg;
  auto gn = run_gpu_ropes_sim(k, space, cfg, false, ropes);
  for (std::size_t i = 0; i < b.pos.size(); ++i) {
    EXPECT_NEAR(gn.results[i].ax, rec.results[i].ax,
                1e-4f * std::max(1.f, std::fabs(rec.results[i].ax)))
        << i;
  }
}

TEST(StaticRopes, LockstepVisitsUnionOnce) {
  // The lockstep rope warp visits each node at most once (DFS ids only
  // move forward), so warp pops <= tree size.
  PointSet pts = gen_geocity_like(512, 5);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  float r = pc_pick_radius(pts, 16, 5);
  PointCorrelationKernel k(tree, pts, r, space);
  StaticRopes ropes = install_ropes(tree.topo);
  DeviceConfig cfg;
  auto gl = run_gpu_ropes_sim(k, space, cfg, true, ropes);
  EXPECT_LE(gl.stats.warp_pops,
            gl.n_warps * static_cast<std::size_t>(tree.topo.n_nodes));
}

TEST(StaticRopes, NoStackTrafficComparedToAutoropes) {
  PointSet pts = gen_covtype_like(1024, 7, 6);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  float r = pc_pick_radius(pts, 16, 6);
  PointCorrelationKernel k(tree, pts, r, space);
  StaticRopes ropes = install_ropes(tree.topo);
  DeviceConfig cfg;
  auto rope_run = run_gpu_ropes_sim(k, space, cfg, false, ropes);
  auto auto_run = run_gpu_sim(k, space, cfg, GpuMode{true, false});
  // Same node visits, strictly less memory traffic (no rope stack).
  EXPECT_EQ(rope_run.stats.lane_visits, auto_run.stats.lane_visits);
  EXPECT_LT(rope_run.stats.dram_transactions,
            auto_run.stats.dram_transactions);
}

TEST(StaticRopes, InstallCostReported) {
  BodySet b = gen_plummer(2000, 7);
  Octree tree = build_octree(b.pos, b.mass);
  StaticRopes r = install_ropes(tree.topo);
  EXPECT_GE(r.install_ms, 0.0);
  EXPECT_EQ(r.rope.size(), static_cast<std::size_t>(tree.topo.n_nodes));
}

}  // namespace
}  // namespace tt
