// FusedKernel (core/kernel_compose.h) contract: a fused traversal is
// byte-identical to running its constituents sequentially -- per
// constituent, per point, under every eligible variant -- while walking
// the shared tree once. Covers both shipped instances (fused k-NN + NN
// over one kd-tree; fused consecutive BH timesteps over a refit octree),
// the merged-truncation work bounds, the shared-load elision stat, the
// refit-vs-rebuild contract, and the constructor's tree-sharing checks.
#include "core/kernel_compose.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_algos/bh/barnes_hut.h"
#include "bench_algos/pq/point_queries.h"
#include "core/cpu_executors.h"
#include "core/gpu_executors.h"
#include "data/generators.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"

namespace tt {
namespace {

// Per-element check that fused Result{a,b} reproduces the solo runs
// byte-for-byte (the Results are padding-free; the fused finish memsets).
template <class F, class RA, class RB>
void expect_matches_sequential(const std::vector<F>& fused,
                               const std::vector<RA>& a,
                               const std::vector<RB>& b) {
  ASSERT_EQ(fused.size(), a.size());
  ASSERT_EQ(fused.size(), b.size());
  for (std::size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&fused[i].a, &a[i], sizeof(RA))) << "point " << i;
    EXPECT_EQ(0, std::memcmp(&fused[i].b, &b[i], sizeof(RB))) << "point " << i;
  }
}

struct PqFixture {
  PointSet pts;
  KdTree tree;
  GpuAddressSpace space;
  RopeKnnKernel knn;
  RopeNnKernel nn;
  FusedKernel<RopeKnnKernel, RopeNnKernel> fused;

  explicit PqFixture(std::size_t n = 700, int dim = 7, std::uint64_t seed = 21,
                     int k = 8)
      : pts(gen_covtype_like(n, dim, seed)),
        tree(build_kdtree(pts, 8)),
        knn(tree, pts, k, space),
        nn(tree, pts, space),
        fused(fuse(knn, nn)) {}
};

TEST(KernelCompose, FusedNameAndEligibility) {
  PqFixture f;
  EXPECT_STREQ(decltype(f.fused)::kName, "fused(rope_knn+rope_nn)");
  // Fanout-2 stackless-compatible composition: every variant is eligible.
  for (Variant v : kAllVariants)
    EXPECT_EQ(kernel_variant_ineligible_reason(f.fused, v), "")
        << variant_name(v);
}

TEST(KernelCompose, FusedMatchesSequentialAllVariants) {
  PqFixture f;
  DeviceConfig cfg;
  // Solo baselines (variant-independent by the cross-variant contract).
  auto base_a =
      run_gpu_sim(f.knn, f.space, cfg, GpuMode::from(Variant::kAutoNolockstep));
  auto base_b =
      run_gpu_sim(f.nn, f.space, cfg, GpuMode::from(Variant::kAutoNolockstep));
  for (Variant v : kAllVariants) {
    SCOPED_TRACE(variant_name(v));
    auto g = run_gpu_sim(f.fused, f.space, cfg, GpuMode::from(v));
    expect_matches_sequential(g.results, base_a.results, base_b.results);
    // Exact cycle attribution holds for the fused kernel too.
    double raw = 0;
    for (double b : g.stats.cycle_buckets) raw += b;
    EXPECT_EQ(raw, g.stats.instr_cycles);
  }
}

TEST(KernelCompose, MergedTruncationWorkBounds) {
  PqFixture f;
  DeviceConfig cfg;
  const GpuMode mode = GpuMode::from(Variant::kAutoNolockstep);
  auto ga = run_gpu_sim(f.knn, f.space, cfg, mode);
  auto gb = run_gpu_sim(f.nn, f.space, cfg, mode);
  auto g = run_gpu_sim(f.fused, f.space, cfg, mode);
  ASSERT_EQ(g.per_point_visits.size(), ga.per_point_visits.size());
  ASSERT_EQ(g.per_point_visits.size(), gb.per_point_visits.size());
  std::uint64_t saved = 0;
  for (std::size_t i = 0; i < g.per_point_visits.size(); ++i) {
    // The fused walk visits the union of the constituents' node sets:
    // at least the larger, at most the sum.
    EXPECT_GE(g.per_point_visits[i],
              std::max(ga.per_point_visits[i], gb.per_point_visits[i]))
        << "point " << i;
    EXPECT_LE(g.per_point_visits[i],
              ga.per_point_visits[i] + gb.per_point_visits[i])
        << "point " << i;
    saved += ga.per_point_visits[i] + gb.per_point_visits[i] -
             g.per_point_visits[i];
  }
  // The two walks overlap heavily (same tree, same queries), so fusion
  // must actually save visits, not just bound them.
  EXPECT_GT(saved, 0u);
  EXPECT_LT(g.stats.lane_visits, ga.stats.lane_visits + gb.stats.lane_visits);
}

TEST(KernelCompose, SharedNodeLoadsServedOnce) {
  PqFixture f;
  DeviceConfig cfg;
  const GpuMode mode = GpuMode::from(Variant::kAutoNolockstep);
  auto ga = run_gpu_sim(f.knn, f.space, cfg, mode);
  auto g = run_gpu_sim(f.fused, f.space, cfg, mode);
  // Solo kernels never duplicate a load within a step; the fused kernel's
  // constituents hit the same node records and the duplicate is elided.
  EXPECT_EQ(ga.stats.shared_loads_elided, 0u);
  EXPECT_GT(g.stats.shared_loads_elided, 0u);
}

TEST(KernelCompose, FusedAgreesWithBruteForce) {
  PqFixture f(400, 5, 33, 6);
  DeviceConfig cfg;
  auto g = run_gpu_sim(f.fused, f.space, cfg,
                       GpuMode::from(Variant::kStacklessNolockstep));
  const auto knn_ref = pq_knn_brute_force(f.pts, 6);
  const auto nn_ref = pq_nn_brute_force(f.pts);
  expect_matches_sequential(g.results, knn_ref, nn_ref);
}

TEST(KernelCompose, FusedRunsDeterministically) {
  PqFixture f;
  DeviceConfig cfg;
  const GpuMode mode = GpuMode::from(Variant::kStacklessLockstep);
  auto g1 = run_gpu_sim(f.fused, f.space, cfg, mode);
  auto g2 = run_gpu_sim(f.fused, f.space, cfg, mode);
  ASSERT_EQ(g1.results.size(), g2.results.size());
  EXPECT_EQ(0, std::memcmp(g1.results.data(), g2.results.data(),
                           g1.results.size() * sizeof(g1.results[0])));
  EXPECT_EQ(g1.stats.instr_cycles, g2.stats.instr_cycles);
  EXPECT_EQ(g1.stats.shared_loads_elided, g2.stats.shared_loads_elided);
}

TEST(KernelCompose, CtorRejectsMismatchedPointCounts) {
  PqFixture f;
  GpuAddressSpace other_space;
  PointSet pts2 = gen_covtype_like(300, 7, 21);
  KdTree tree2 = build_kdtree(pts2, 8);
  RopeNnKernel nn2(tree2, pts2, other_space);
  try {
    (void)fuse(f.knn, nn2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("disagree on point count"),
              std::string::npos)
        << e.what();
  }
}

TEST(KernelCompose, CtorRejectsDifferentTrees) {
  PqFixture f;
  GpuAddressSpace other_space;
  // Same points, different granularity => different topology and ropes.
  KdTree tree2 = build_kdtree(f.pts, 32);
  RopeNnKernel nn2(tree2, f.pts, other_space);
  try {
    (void)fuse(f.knn, nn2);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("do not share a tree"),
              std::string::npos)
        << e.what();
  }
}

// ---- The BH timestep pair: fused forces over a refit octree. ----

struct BhStepFixture {
  BodySet bodies;
  PointSet pos1;
  std::vector<float> vel;
  Octree tree0;
  Octree tree1;
  GpuAddressSpace space;
  BarnesHutKernel a;
  BarnesHutKernel b;
  FusedKernel<BarnesHutKernel, BarnesHutKernel> fused;

  static Octree refit_copy(const Octree& t0, const PointSet& pos,
                           const std::vector<float>& mass) {
    Octree t = t0;
    refit_octree(t, pos, mass);
    return t;
  }

  static PointSet advance(const BarnesHutKernel& k, const BodySet& bodies,
                          std::vector<float>& vel, float dt) {
    auto forces = run_cpu(k, CpuVariant::kRecursive, 1).results;
    PointSet pos = bodies.pos;
    vel = bodies.vel;
    bh_integrate(pos, vel, forces, dt);
    return pos;
  }

  explicit BhStepFixture(std::size_t n = 500, std::uint64_t seed = 7)
      : bodies(gen_plummer(n, seed)),
        tree0(build_octree(bodies.pos, bodies.mass)),
        a(tree0, bodies.pos, 0.5f, 1e-4f, space),
        b((pos1 = advance(a, bodies, vel, 0.0125f),
           tree1 = refit_copy(tree0, pos1, bodies.mass), tree1),
          pos1, 0.5f, 1e-4f, space, a),
        fused(fuse(a, b)) {}
};

TEST(KernelCompose, FusedBhStepMatchesSequential) {
  BhStepFixture f;
  DeviceConfig cfg;
  auto base_a =
      run_gpu_sim(f.a, f.space, cfg, GpuMode::from(Variant::kAutoNolockstep));
  auto base_b =
      run_gpu_sim(f.b, f.space, cfg, GpuMode::from(Variant::kAutoNolockstep));
  for (Variant v : kAllVariants) {
    if (kernel_variant_ineligible_reason(f.fused, v) != "") continue;
    SCOPED_TRACE(variant_name(v));
    auto g = run_gpu_sim(f.fused, f.space, cfg, GpuMode::from(v));
    expect_matches_sequential(g.results, base_a.results, base_b.results);
  }
  // Fanout 8: only index_walk is out, spelled the canonical way.
  EXPECT_NE(
      kernel_variant_ineligible_reason(f.fused, Variant::kIndexWalk)
          .find("requires a fanout-2 tree"),
      std::string::npos);
}

TEST(KernelCompose, FusedBhStepSharesChildRecords) {
  BhStepFixture f;
  DeviceConfig cfg;
  auto g = run_gpu_sim(f.fused, f.space, cfg,
                       GpuMode::from(Variant::kAutoNolockstep));
  // The twin shares tree0's child-index records, so the fused walk elides
  // the duplicate child loads even though truncation records differ.
  EXPECT_GT(g.stats.shared_loads_elided, 0u);
}

TEST(KernelCompose, RefitWithUnchangedPositionsIsExact) {
  BodySet b = gen_plummer(400, 9);
  Octree t0 = build_octree(b.pos, b.mass);
  Octree t1 = t0;
  refit_octree(t1, b.pos, b.mass);
  // Refit mirrors the builder's accumulation arithmetic, so refitting
  // with the positions the tree was built from reproduces it exactly.
  EXPECT_EQ(t1.com_x, t0.com_x);
  EXPECT_EQ(t1.com_y, t0.com_y);
  EXPECT_EQ(t1.com_z, t0.com_z);
  EXPECT_EQ(t1.mass, t0.mass);
  EXPECT_EQ(t1.half_width, t0.half_width);
}

TEST(KernelCompose, RefitRejectsChangedBodyCount) {
  BodySet b = gen_plummer(300, 10);
  Octree t = build_octree(b.pos, b.mass);
  BodySet fewer = gen_plummer(200, 10);
  try {
    refit_octree(t, fewer.pos, fewer.mass);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("refit keeps the partition"),
              std::string::npos)
        << e.what();
  }
}

TEST(KernelCompose, TwinCtorRejectsRebuiltTree) {
  BodySet b = gen_plummer(300, 11);
  Octree t0 = build_octree(b.pos, b.mass);
  GpuAddressSpace space;
  BarnesHutKernel a(t0, b.pos, 0.5f, 1e-4f, space);
  // A rebuild (different leaf partition => different node count) is not a
  // refit; the twin constructor must refuse to share child records.
  BodySet b2 = gen_plummer(260, 11);
  Octree rebuilt = build_octree(b2.pos, b2.mass);
  EXPECT_THROW(BarnesHutKernel(rebuilt, b2.pos, 0.5f, 1e-4f, space, a),
               std::invalid_argument);
}

}  // namespace
}  // namespace tt
