// Randomized cross-variant equivalence: fuzzed inputs driven through one
// unguided kernel (point correlation) and one guided kernel (nearest
// neighbor, 2 equivalent call sets) must produce byte-identical Result
// vectors under all four StackPolicy x ConvergencePolicy compositions,
// auto_select must reproduce its chosen composition exactly (plus the
// charged sampling cycles), and the stackless family (escape-index
// ropes / index_walk, eligible kernels only) must match the baseline
// byte-for-byte with zero stack footprint -- with or without the
// shared-memory node cache.
// Alongside equality, checks the work-expansion invariant behind Table 2:
// a lockstep warp's union traversal pops at least as many nodes as the
// longest individual traversal among its member lanes -- and the
// cycle-attribution invariant behind the obs profiler: for every variant,
// the per-bucket split sums to instr_cycles EXACTLY (every charge is an
// integer-valued double), and the profiler's depth histogram reconciles
// with warp_steps / active_lane_sum.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>

#include "bench_algos/bh/barnes_hut.h"
#include "bench_algos/nn/nearest_neighbor.h"
#include "bench_algos/pc/point_correlation.h"
#include "bench_algos/pq/point_queries.h"
#include "core/cpu_executors.h"
#include "core/device_group.h"
#include "core/gpu_executors.h"
#include "core/kernel_compose.h"
#include "core/static_ropes.h"
#include "data/generators.h"
#include "obs/profile.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"

namespace tt {
namespace {

// The memory-attribution invariant (simt/memory_attr.h), exact for every
// variant: the per-buffer rows sum to the aggregate KernelStats counters
// with ==, each row's field shares close exactly (dyadic k/128 shares),
// every row's coalescing efficiency is in (0,1], and the summed per-row
// mem-stall cycles reconstruct the kMemStall cycle bucket -- commit() is
// the single charge site for both.
void check_memory_attribution(const KernelStats& st) {
  std::uint64_t groups = 0, l2hit = 0, dram = 0, bytes = 0, shits = 0,
                smiss = 0;
  double stall = 0;
  for (const BufferTraffic& r : st.memory.rows()) {
    groups += r.load_groups;
    l2hit += r.l2_hit_transactions;
    dram += r.dram_transactions;
    bytes += r.dram_bytes;
    shits += r.smem_cache_hits;
    smiss += r.smem_cache_misses;
    stall += r.mem_stall_cycles;
    EXPECT_LE(r.replayed_loads, r.load_groups) << r.name;
    EXPECT_LE(r.ideal_segments, r.issued_segments) << r.name;
    EXPECT_EQ(r.issued_segments, r.smem_cache_hits + r.l2_hit_transactions +
                                     r.dram_transactions)
        << r.name;
    if (r.issued_segments > 0) {
      EXPECT_GT(r.coalescing_efficiency(), 0.0) << r.name;
      EXPECT_LE(r.coalescing_efficiency(), 1.0) << r.name;
    }
    if (!r.fields.empty()) {
      double ft = 0, fl2 = 0, fdram = 0, fbytes = 0, fsmem = 0, fstall = 0;
      for (const FieldTraffic& f : r.fields) {
        ft += f.transactions;
        fl2 += f.l2_hit;
        fdram += f.dram;
        fbytes += f.dram_bytes;
        fsmem += f.smem_cache_hits;
        fstall += f.mem_stall_cycles;
      }
      EXPECT_EQ(ft, static_cast<double>(r.issued_segments)) << r.name;
      EXPECT_EQ(fl2, static_cast<double>(r.l2_hit_transactions)) << r.name;
      EXPECT_EQ(fdram, static_cast<double>(r.dram_transactions)) << r.name;
      EXPECT_EQ(fbytes, static_cast<double>(r.dram_bytes)) << r.name;
      EXPECT_EQ(fsmem, static_cast<double>(r.smem_cache_hits)) << r.name;
      EXPECT_EQ(fstall, r.mem_stall_cycles) << r.name;
    }
  }
  EXPECT_EQ(groups, st.load_instructions);
  EXPECT_EQ(l2hit, st.l2_hit_transactions);
  EXPECT_EQ(dram, st.dram_transactions);
  EXPECT_EQ(bytes, st.dram_bytes);
  EXPECT_EQ(shits, st.smem_cache_hits);
  EXPECT_EQ(smiss, st.smem_cache_misses);
  EXPECT_EQ(stall,
            st.cycle_buckets[static_cast<std::size_t>(CycleBucket::kMemStall)]);
}

// The attribution invariant, exact for every variant: the CycleBucket
// split reconstructs instr_cycles with ==, and the profiler's per-depth
// histogram accounts for every warp step and active lane.
template <class K>
void check_attribution(const GpuRun<K>& g) {
  ASSERT_TRUE(g.profile.has_value());
  const obs::ProfileReport& p = *g.profile;
  EXPECT_EQ(p.bucket_sum(), g.stats.instr_cycles);
  EXPECT_EQ(p.instr_cycles, g.stats.instr_cycles);
  EXPECT_EQ(p.warp_steps, g.stats.warp_steps);
  EXPECT_EQ(p.active_lane_sum, g.stats.active_lane_sum);
  EXPECT_EQ(p.depth_steps(), g.stats.warp_steps);
  EXPECT_EQ(p.depth_active(), g.stats.active_lane_sum);
  EXPECT_TRUE(p.reconciles());
  // The raw stats honor the same invariant even without a sink attached.
  double raw = 0;
  for (double b : g.stats.cycle_buckets) raw += b;
  EXPECT_EQ(raw, g.stats.instr_cycles);
  check_memory_attribution(g.stats);
}

// Deterministic parameter fuzzer (xorshift64) -- varies input size, shape,
// dimensionality and tree granularity across rounds.
std::uint64_t next(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

// Runs the kernel under all four variants, using auto_nolockstep as the
// baseline: every other composition must reproduce its Result vector
// byte-for-byte, and the lockstep compositions must satisfy the
// work-expansion bound against its per-point visit counts.
template <TraversalKernel K>
void check_all_variants(const K& k, GpuAddressSpace& space) {
  DeviceConfig cfg;
  obs::ProfileSink psink;
  auto base = run_gpu_sim(k, space, cfg,
                          GpuMode::from(Variant::kAutoNolockstep), nullptr,
                          &psink);
  ASSERT_EQ(base.results.size(), k.num_points());
  ASSERT_EQ(base.per_point_visits.size(), k.num_points());
  check_attribution(base);

  for (Variant v : {Variant::kAutoLockstep, Variant::kRecLockstep,
                    Variant::kRecNolockstep}) {
    SCOPED_TRACE(variant_name(v));
    auto g = run_gpu_sim(k, space, cfg, GpuMode::from(v), nullptr, &psink);
    check_attribution(g);
    ASSERT_EQ(g.results.size(), base.results.size());
    EXPECT_EQ(0, std::memcmp(g.results.data(), base.results.data(),
                             sizeof(typename K::Result) * base.results.size()));
    EXPECT_FALSE(g.selection.has_value());

    // Both non-lockstep schedules walk each point's own traversal, so
    // their per-point visit counts must agree exactly.
    if (v == Variant::kRecNolockstep) {
      EXPECT_EQ(g.per_point_visits, base.per_point_visits);
    }

    // Lockstep: the warp's union traversal contains every member lane's
    // traversal, so its pop count bounds each lane's visit count.
    if (!g.per_warp_pops.empty()) {
      const auto warp = static_cast<std::size_t>(cfg.warp_size);
      for (std::size_t w = 0; w < g.per_warp_pops.size(); ++w) {
        std::uint32_t longest = 0;
        const std::size_t begin = w * warp;
        const std::size_t end =
            std::min(base.per_point_visits.size(), begin + warp);
        for (std::size_t i = begin; i < end; ++i)
          longest = std::max(longest, base.per_point_visits[i]);
        EXPECT_GE(g.per_warp_pops[w], longest) << "warp " << w;
      }
    }
  }

  // The stackless family: byte-identical results with zero stack state.
  // PC is fully eligible (unguided, rope-carrying, fanout 2); guided
  // kernels skip the whole block through the eligibility trait.
  for (Variant v : {Variant::kStacklessLockstep, Variant::kStacklessNolockstep,
                    Variant::kIndexWalk}) {
    if (!kernel_variant_eligible<K>(v)) continue;
    SCOPED_TRACE(variant_name(v));
    auto g = run_gpu_sim(k, space, cfg, GpuMode::from(v), nullptr, &psink);
    check_attribution(g);
    ASSERT_EQ(g.results.size(), base.results.size());
    EXPECT_EQ(0, std::memcmp(g.results.data(), base.results.data(),
                             sizeof(typename K::Result) * base.results.size()));
    EXPECT_FALSE(g.selection.has_value());
    // No stack exists: nothing can push, spill, or deepen.
    EXPECT_EQ(g.stats.peak_stack_entries, 0u);
    EXPECT_EQ(
        g.profile->buckets[static_cast<std::size_t>(CycleBucket::kStack)], 0.0);
    // The per-lane stackless schedules walk each point's own traversal.
    if (!variant_is_lockstep(v)) {
      EXPECT_EQ(g.per_point_visits, base.per_point_visits);
    }
    // Disabling the node cache zeroes its counters without changing a
    // byte of the results (the cache is a cost model, not a semantics).
    GpuMode off = GpuMode::from(v);
    off.smem_node_cache = false;
    auto g_off = run_gpu_sim(k, space, cfg, off);
    EXPECT_EQ(g_off.stats.smem_cache_hits + g_off.stats.smem_cache_misses, 0u);
    check_memory_attribution(g_off.stats);
    EXPECT_EQ(0,
              std::memcmp(g_off.results.data(), base.results.data(),
                          sizeof(typename K::Result) * base.results.size()));
  }

  // auto_select must be byte-identical to whichever composition its
  // sampler dispatched to, and charge exactly the sampling cost on top.
  {
    SCOPED_TRACE("auto_select");
    GpuMode mode = GpuMode::from(Variant::kAutoSelect);
    auto g = run_gpu_sim(k, space, cfg, mode, nullptr, &psink);
    check_attribution(g);
    ASSERT_TRUE(g.selection.has_value());
    // The sampling charge lands in -- and only in -- the select bucket.
    EXPECT_EQ(g.profile->buckets[static_cast<std::size_t>(
                  CycleBucket::kSelect)],
              g.selection->sampling_cycles);
    const Variant chosen = g.selection->chosen;
    ASSERT_TRUE(chosen == Variant::kAutoLockstep ||
                chosen == Variant::kAutoNolockstep);
    SCOPED_TRACE(std::string("chose ") + variant_name(chosen));
    auto direct = run_gpu_sim(k, space, cfg, GpuMode::from(chosen));
    ASSERT_EQ(g.results.size(), direct.results.size());
    EXPECT_EQ(0, std::memcmp(g.results.data(), direct.results.data(),
                             sizeof(typename K::Result) * g.results.size()));
    EXPECT_EQ(g.per_point_visits, direct.per_point_visits);
    EXPECT_EQ(g.per_warp_pops, direct.per_warp_pops);
    EXPECT_DOUBLE_EQ(g.stats.instr_cycles, direct.stats.instr_cycles +
                                               g.selection->sampling_cycles);
  }
}

// The sharded axis: for every variant x device count, run_sharded's merge
// must be byte-identical to the unsharded auto_nolockstep baseline (the
// cross-variant contract composed with the sharding contract), and the
// per-device visit counters must sum to the merged run's totals -- no
// work invented or lost at the shard boundary.
template <TraversalKernel K>
void check_sharded_axis(const K& k, GpuAddressSpace& space) {
  DeviceConfig cfg;
  auto base = run_gpu_sim(k, space, cfg,
                          GpuMode::from(Variant::kAutoNolockstep));
  for (Variant v : kAllVariants) {
    // Stackless variants shard too, but only on eligible kernels (the
    // guided NN kernel must skip them rather than fail the launch pool).
    if (!kernel_variant_eligible<K>(v)) continue;
    SCOPED_TRACE(variant_name(v));
    for (std::size_t devices :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      SCOPED_TRACE("devices " + std::to_string(devices));
      LaunchSpec spec;
      spec.kernel = make_kernel_handle(k);
      spec.space = &space;
      spec.mode = GpuMode::from(v);
      spec.mode.profile_samples = 8;
      DeviceGroupConfig g;
      g.devices = devices;
      g.policy = BatchPolicy::kWorkStealing;
      g.chunk_points = 128;
      ShardedRun r = run_sharded(spec, 1 << 18, 1 << 14, g);
      // run_sharded already self-checks the merge against its own
      // baseline; ok() failing means the contract broke.
      ASSERT_TRUE(r.merged.ok()) << r.merged.error;
      ASSERT_EQ(r.merged.n_points, base.results.size());
      EXPECT_EQ(0, std::memcmp(r.merged.results.data(), base.results.data(),
                               r.merged.n_points * r.merged.result_stride));
      std::size_t chunks = 0, points = 0;
      std::uint64_t lane_visits = 0, warp_pops = 0;
      for (const DeviceShard& d : r.devices) {
        chunks += d.chunks;
        points += d.points;
        lane_visits += d.stats.lane_visits;
        warp_pops += d.stats.warp_pops;
      }
      EXPECT_EQ(chunks, r.merged.n_warps);
      EXPECT_EQ(points, r.merged.n_points);
      EXPECT_EQ(lane_visits, r.merged.stats.lane_visits);
      EXPECT_EQ(warp_pops, r.merged.stats.warp_pops);
      // The baseline's attribution table must reconcile, every device's
      // must reconcile in isolation, and folding the device tables through
      // the name-keyed MemoryAttribution::merge must preserve every
      // counter exactly (commutative integer / dyadic sums -- device
      // count and merge order cannot skew the table). Note the fold is
      // checked against the summed *device* counters, not the baseline's:
      // DRAM vs L2-hit splits are cache-state dependent and chunked
      // per-device launches legitimately see different L2 histories.
      check_memory_attribution(r.merged.stats);
      MemoryAttribution folded;
      std::uint64_t dev_dram = 0, dev_groups = 0, dev_segs = 0;
      for (const DeviceShard& d : r.devices) {
        check_memory_attribution(d.stats);
        folded.merge(d.stats.memory);
        dev_dram += d.stats.dram_transactions;
        dev_groups += d.stats.load_instructions;
        for (const BufferTraffic& row : d.stats.memory.rows())
          dev_segs += row.issued_segments;
      }
      std::uint64_t fold_dram = 0, fold_groups = 0, fold_segs = 0;
      for (const BufferTraffic& row : folded.rows()) {
        fold_dram += row.dram_transactions;
        fold_groups += row.load_groups;
        fold_segs += row.issued_segments;
      }
      EXPECT_EQ(fold_dram, dev_dram);
      EXPECT_EQ(fold_groups, dev_groups);
      EXPECT_EQ(fold_segs, dev_segs);
    }
  }
}

TEST(VariantFuzz, PointCorrelationUnguided) {
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::size_t n = 64 + next(s) % 700;
    const int dim = 2 + static_cast<int>(next(s) % 6);
    const std::uint64_t seed = next(s);
    PointSet pts = round % 2 == 0 ? gen_uniform(n, dim, seed)
                                  : gen_covtype_like(n, dim, seed);
    KdTree tree =
        build_kdtree(pts, 4 + static_cast<int>(next(s) % 8));
    GpuAddressSpace space;
    float r = pc_pick_radius(pts, 4.0 + static_cast<double>(next(s) % 24),
                             seed);
    PointCorrelationKernel k(tree, pts, r, space);
    check_all_variants(k, space);
  }
}

// Forces a rope-stack overflow and checks the error carries enough
// context to act on: kernel name, variant, warp id and the bound.
struct TinyBoundPc : PointCorrelationKernel {
  using PointCorrelationKernel::PointCorrelationKernel;
  [[nodiscard]] int stack_bound() const { return 1; }
};

TEST(VariantFuzz, OverflowErrorIsContextual) {
  PointSet pts = gen_uniform(200, 3, 99);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  float r = pc_pick_radius(pts, 16, 99);
  TinyBoundPc k(tree, pts, r, space);
  DeviceConfig cfg;
  try {
    run_gpu_sim(k, space, cfg, GpuMode::from(Variant::kAutoNolockstep));
    FAIL() << "expected rope stack overflow";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rope stack overflow"), std::string::npos) << msg;
    EXPECT_NE(msg.find("kernel point_correlation"), std::string::npos) << msg;
    EXPECT_NE(msg.find("variant auto_nolockstep"), std::string::npos) << msg;
    EXPECT_NE(msg.find("warp "), std::string::npos) << msg;
    EXPECT_NE(msg.find("stack_bound 1"), std::string::npos) << msg;
  }
}

TEST(VariantFuzz, NearestNeighborGuided) {
  std::uint64_t s = 0xda942042e4dd58b5ull;
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::size_t n = 64 + next(s) % 700;
    const int dim = 2 + static_cast<int>(next(s) % 6);
    const std::uint64_t seed = next(s);
    PointSet pts = round % 2 == 0 ? gen_covtype_like(n, dim, seed)
                                  : gen_mnist_like(n, dim, seed);
    KdTreeNN tree = build_kdtree_nn(pts);
    GpuAddressSpace space;
    NnKernel k(tree, pts, space);
    check_all_variants(k, space);
  }
}

TEST(VariantFuzz, PointCorrelationSharded) {
  std::uint64_t s = 0xa0761d6478bd642full;
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::size_t n = 96 + next(s) % 600;
    const int dim = 2 + static_cast<int>(next(s) % 6);
    const std::uint64_t seed = next(s);
    PointSet pts = round % 2 == 0 ? gen_uniform(n, dim, seed)
                                  : gen_covtype_like(n, dim, seed);
    KdTree tree = build_kdtree(pts, 4 + static_cast<int>(next(s) % 8));
    GpuAddressSpace space;
    float r = pc_pick_radius(pts, 4.0 + static_cast<double>(next(s) % 24),
                             seed);
    PointCorrelationKernel k(tree, pts, r, space);
    check_sharded_axis(k, space);
  }
}

TEST(VariantFuzz, NearestNeighborSharded) {
  std::uint64_t s = 0xe7037ed1a0b428dbull;
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::size_t n = 96 + next(s) % 600;
    const int dim = 2 + static_cast<int>(next(s) % 6);
    const std::uint64_t seed = next(s);
    PointSet pts = round % 2 == 0 ? gen_covtype_like(n, dim, seed)
                                  : gen_mnist_like(n, dim, seed);
    KdTreeNN tree = build_kdtree_nn(pts);
    GpuAddressSpace space;
    NnKernel k(tree, pts, space);
    check_sharded_axis(k, space);
  }
}

// Fused kernels are first-class citizens of the same sweeps: the
// composition (core/kernel_compose.h) must satisfy every contract the
// constituents do -- all-variant byte identity (including the stackless
// family with the node cache on and off), exact cycle attribution,
// auto_select reproduction, and the sharded {1, 2, 4}-device axis.
TEST(VariantFuzz, FusedPointQueriesAllVariants) {
  std::uint64_t s = 0x8bb84b93962eacc9ull;
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::size_t n = 96 + next(s) % 500;
    const int dim = 2 + static_cast<int>(next(s) % 6);
    const std::uint64_t seed = next(s);
    const int k = 1 + static_cast<int>(next(s) % kPqMaxK);
    PointSet pts = round % 2 == 0 ? gen_uniform(n, dim, seed)
                                  : gen_covtype_like(n, dim, seed);
    KdTree tree = build_kdtree(pts, 4 + static_cast<int>(next(s) % 8));
    GpuAddressSpace space;
    RopeKnnKernel knn(tree, pts, k, space);
    RopeNnKernel nn(tree, pts, space);
    auto fused = fuse(knn, nn);
    check_all_variants(fused, space);
  }
}

TEST(VariantFuzz, FusedPointQueriesSharded) {
  std::uint64_t s = 0x589965cc75374cc3ull;
  const std::size_t n = 96 + next(s) % 500;
  const int dim = 2 + static_cast<int>(next(s) % 6);
  const std::uint64_t seed = next(s);
  PointSet pts = gen_covtype_like(n, dim, seed);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  RopeKnnKernel knn(tree, pts, 8, space);
  RopeNnKernel nn(tree, pts, space);
  auto fused = fuse(knn, nn);
  check_sharded_axis(fused, space);
}

TEST(VariantFuzz, FusedBhTimestepPair) {
  std::uint64_t s = 0x1d8e4e27c47d124full;
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::size_t n = 128 + next(s) % 400;
    BodySet bodies = gen_plummer(n, next(s));
    Octree tree0 = build_octree(bodies.pos, bodies.mass);
    GpuAddressSpace space;
    BarnesHutKernel a(tree0, bodies.pos, 0.5f, 1e-4f, space);
    auto forces = run_cpu(a, CpuVariant::kRecursive, 1).results;
    PointSet pos1 = bodies.pos;
    std::vector<float> vel = bodies.vel;
    bh_integrate(pos1, vel, forces, 0.0125f);
    Octree tree1 = tree0;
    refit_octree(tree1, pos1, bodies.mass);
    BarnesHutKernel b(tree1, pos1, 0.5f, 1e-4f, space, a);
    auto fused = fuse(a, b);
    check_all_variants(fused, space);
  }
}

}  // namespace
}  // namespace tt
