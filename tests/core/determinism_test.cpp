// Reproducibility guarantees: simulations are bit-deterministic for a
// given seed regardless of host parallelism (per-warp L2 slices keep warp
// simulations independent), and the profiler agrees with the executors'
// own visit accounting.
#include <gtest/gtest.h>

#include "bench_algos/pc/point_correlation.h"
#include "bench_algos/vp/vantage_point.h"
#include "core/cpu_executors.h"
#include "core/gpu_executors.h"
#include "core/profiler.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"
#include "spatial/vptree.h"

namespace tt {
namespace {

TEST(Determinism, GpuSimStatsRepeatExactly) {
  PointSet pts = gen_covtype_like(1500, 7, 77);
  pts.permute(tree_order(pts, 8));
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  float r = pc_pick_radius(pts, 16, 77);
  PointCorrelationKernel k(tree, pts, r, space);
  DeviceConfig cfg;
  for (Variant v : kAllVariants) {
    GpuMode mode = GpuMode::from(v);
    auto a = run_gpu_sim(k, space, cfg, mode);
    auto b = run_gpu_sim(k, space, cfg, mode);
    EXPECT_EQ(a.stats.dram_transactions, b.stats.dram_transactions);
    EXPECT_EQ(a.stats.l2_hit_transactions, b.stats.l2_hit_transactions);
    EXPECT_EQ(a.stats.lane_visits, b.stats.lane_visits);
    EXPECT_DOUBLE_EQ(a.stats.instr_cycles, b.stats.instr_cycles);
    EXPECT_DOUBLE_EQ(a.time.total_ms, b.time.total_ms);
    EXPECT_EQ(a.results, b.results);
  }
}

TEST(Determinism, WholePipelineRepeatsFromSeed) {
  auto run_once = [] {
    PointSet pts = gen_mnist_like(800, 7, 5);
    pts.permute(shuffled_order(pts.size(), 5));
    KdTree tree = build_kdtree(pts, 8);
    GpuAddressSpace space;
    PointCorrelationKernel k(tree, pts, 0.5f, space);
    auto g = run_gpu_sim(k, space, DeviceConfig{}, GpuMode{true, true});
    return std::make_pair(g.stats.dram_transactions, g.results);
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Determinism, ProfilerMatchesExecutorVisitCounts) {
  PointSet pts = gen_uniform(640, 7, 6);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  PointCorrelationKernel k(tree, pts, 0.3f, space);
  auto cpu = run_cpu(k, CpuVariant::kAutoropes, 1, /*keep_per_point=*/true);
  for (std::uint32_t pid : {0u, 13u, 639u}) {
    auto visited = record_traversal(k, pid);
    EXPECT_EQ(visited.size(), cpu.per_point_visits[pid]) << pid;
  }
}

TEST(Determinism, GuidedKernelsRepeatToo) {
  PointSet pts = gen_geocity_like(900, 7);
  VpTree tree = build_vptree(pts, 7);
  GpuAddressSpace space;
  VpKernel k(tree, pts, space);
  DeviceConfig cfg;
  auto a = run_gpu_sim(k, space, cfg, GpuMode{true, true});
  auto b = run_gpu_sim(k, space, cfg, GpuMode{true, true});
  EXPECT_EQ(a.per_warp_pops, b.per_warp_pops);
  EXPECT_EQ(a.stats.votes, b.stats.votes);
}

}  // namespace
}  // namespace tt
