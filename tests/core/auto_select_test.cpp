// Acceptance test for the section-4.4 adaptive variant: for all five
// Table-1 benchmarks, auto_select must dispatch to lockstep on spatially
// sorted inputs (Morton and kd-tree leaf order) and to non-lockstep on
// shuffled inputs, reproduce the chosen composition's results
// byte-for-byte, and report total cycles = chosen-variant cycles +
// sampling cycles.
#include <gtest/gtest.h>

#include <cstring>

#include "bench_algos/kernel_builder.h"
#include "core/gpu_executors.h"
#include "obs/trace.h"

namespace tt {
namespace {

BenchConfig config_for(Algo a) {
  BenchConfig cfg;
  cfg.algo = a;
  cfg.input = a == Algo::kBH ? InputKind::kPlummer : InputKind::kCovtype;
  cfg.n = 2048;
  cfg.seed = 42;
  return cfg;
}

// Sorted-input cases the selection must classify as lockstep-worthy:
// Morton order applies to <= 3 dimensions (BH bodies; a 3-d uniform input
// for the tree benchmarks), kd-tree leaf order to the 7-dim Table-1
// inputs. Both spatial sorts must make adjacent traversals similar.
struct SortedCase {
  BenchConfig cfg;
  PointOrder order;
};

std::vector<SortedCase> sorted_cases(Algo a) {
  const BenchConfig base = config_for(a);
  if (a == Algo::kBH) return {{base, PointOrder::kMorton}};
  BenchConfig low_dim = base;
  low_dim.input = InputKind::kUniform;
  low_dim.dim = 3;
  return {{low_dim, PointOrder::kMorton}, {base, PointOrder::kTree}};
}

template <TraversalKernel K>
void expect_selects(const K& k, GpuAddressSpace& space, bool want_lockstep) {
  DeviceConfig cfg;
  GpuMode mode = GpuMode::from(Variant::kAutoSelect);
  obs::TraceSink trace;
  auto g = run_gpu_sim(k, space, cfg, mode, &trace);
  ASSERT_TRUE(g.selection.has_value());
  const SelectionInfo& sel = *g.selection;
  EXPECT_EQ(sel.chosen, want_lockstep ? Variant::kAutoLockstep
                                      : Variant::kAutoNolockstep)
      << "lift " << sel.mean_similarity - sel.baseline_similarity
      << " (mean " << sel.mean_similarity << ", baseline "
      << sel.baseline_similarity << ") vs threshold " << sel.threshold;
  EXPECT_EQ(sel.samples, mode.profile_samples);
  EXPECT_EQ(sel.threshold, kSimilarityLiftThreshold);
  EXPECT_GT(sel.sampling_cycles, 0.0);

  // Byte-identical to the dispatched composition, with exactly the
  // sampling cost charged on top of its cycles.
  auto direct = run_gpu_sim(k, space, cfg, GpuMode::from(sel.chosen));
  ASSERT_EQ(g.results.size(), direct.results.size());
  EXPECT_EQ(0, std::memcmp(g.results.data(), direct.results.data(),
                           sizeof(typename K::Result) * g.results.size()));
  EXPECT_EQ(g.per_point_visits, direct.per_point_visits);
  EXPECT_EQ(g.per_warp_pops, direct.per_warp_pops);
  EXPECT_DOUBLE_EQ(g.stats.instr_cycles,
                   direct.stats.instr_cycles + sel.sampling_cycles);
  EXPECT_GT(g.time.compute_ms, direct.time.compute_ms);

  // The launch decision lands in the trace as a single kSelect event.
  ASSERT_EQ(trace.launch_events().size(), 1u);
  const obs::TraceEvent& e = trace.launch_events().front();
  EXPECT_EQ(e.kind, obs::TraceEventKind::kSelect);
  EXPECT_EQ(e.aux, want_lockstep ? 1u : 0u);
  EXPECT_EQ(e.mask, sel.samples);
  EXPECT_EQ(trace.merged().size(), trace.total_events());
  EXPECT_EQ(trace.merged().back().kind, obs::TraceEventKind::kSelect);
}

class AutoSelectAcceptance : public ::testing::TestWithParam<Algo> {};

TEST_P(AutoSelectAcceptance, SortedOrdersPickLockstep) {
  for (const SortedCase& c : sorted_cases(GetParam())) {
    SCOPED_TRACE(point_order_name(c.order));
    GpuAddressSpace space;
    with_bench_kernel(c.cfg, c.order, space,
                      [&](const auto& k) { expect_selects(k, space, true); });
  }
}

TEST_P(AutoSelectAcceptance, ShuffledOrderPicksNonLockstep) {
  const BenchConfig cfg = config_for(GetParam());
  GpuAddressSpace space;
  with_bench_kernel(cfg, PointOrder::kShuffled, space,
                    [&](const auto& k) { expect_selects(k, space, false); });
}

TEST(AutoSelect, ZeroSamplesRejected) {
  const BenchConfig cfg = config_for(Algo::kPC);
  GpuAddressSpace space;
  with_bench_kernel(cfg, PointOrder::kTree, space, [&](const auto& k) {
    DeviceConfig dev;
    GpuMode mode = GpuMode::from(Variant::kAutoSelect);
    mode.profile_samples = 0;
    EXPECT_THROW(run_gpu_sim(k, space, dev, mode), std::invalid_argument);
  });
}

TEST(AutoSelect, DeterministicAcrossRuns) {
  const BenchConfig cfg = config_for(Algo::kNN);
  GpuAddressSpace space1, space2;
  SelectionInfo first;
  with_bench_kernel(cfg, PointOrder::kShuffled, space1, [&](const auto& k) {
    DeviceConfig dev;
    first = *run_gpu_sim(k, space1, dev, GpuMode::from(Variant::kAutoSelect))
                 .selection;
  });
  with_bench_kernel(cfg, PointOrder::kShuffled, space2, [&](const auto& k) {
    DeviceConfig dev;
    auto again =
        *run_gpu_sim(k, space2, dev, GpuMode::from(Variant::kAutoSelect))
             .selection;
    EXPECT_EQ(again.chosen, first.chosen);
    EXPECT_DOUBLE_EQ(again.mean_similarity, first.mean_similarity);
    EXPECT_DOUBLE_EQ(again.sampling_cycles, first.sampling_cycles);
  });
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, AutoSelectAcceptance,
                         ::testing::Values(Algo::kBH, Algo::kPC, Algo::kKNN,
                                           Algo::kNN, Algo::kVP),
                         [](const ::testing::TestParamInfo<Algo>& info) {
                           switch (info.param) {
                             case Algo::kBH: return "bh";
                             case Algo::kPC: return "pc";
                             case Algo::kKNN: return "knn";
                             case Algo::kNN: return "nn";
                             case Algo::kVP: return "vp";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace tt
