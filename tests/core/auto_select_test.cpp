// Acceptance test for the section-4.4 adaptive variant: for all five
// Table-1 benchmarks, auto_select must dispatch to lockstep on spatially
// sorted inputs (Morton and kd-tree leaf order) and to non-lockstep on
// shuffled inputs, reproduce the chosen composition's results
// byte-for-byte, and report total cycles = chosen-variant cycles +
// sampling cycles. Kernels come from core's KernelFactory and run through
// the type-erased batch API (one-launch batches are byte-identical to
// solo runs by the batching contract), which is also what pins the
// factory registry's name-keyed construction end to end.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "bench_algos/register_kernels.h"
#include "core/batch_scheduler.h"
#include "core/kernel_factory.h"
#include "core/profiler.h"
#include "obs/trace.h"

namespace tt {
namespace {

const char* kFactoryNames[] = {"bh", "pc", "knn", "nn", "vp"};

KernelRequest request_for() {
  register_bench_kernels();
  KernelRequest req;
  req.n = 2048;
  req.seed = 42;
  // The canonical Table-1 inputs: plummer for bh (builder default),
  // covtype for the tree benchmarks (builder default).
  return req;
}

// Sorted-input cases the selection must classify as lockstep-worthy:
// Morton order applies to <= 3 dimensions (BH bodies; a 3-d uniform input
// for the tree benchmarks), kd-tree leaf order to the 7-dim Table-1
// inputs. Both spatial sorts must make adjacent traversals similar.
std::vector<KernelRequest> sorted_requests(const std::string& name) {
  const KernelRequest base = request_for();
  if (name == std::string("bh")) {
    KernelRequest r = base;
    r.order = PointOrder::kMorton;
    return {r};
  }
  KernelRequest low_dim = base;
  low_dim.input = "uniform";
  low_dim.dim = 3;
  low_dim.order = PointOrder::kMorton;
  KernelRequest tree = base;
  tree.order = PointOrder::kTree;
  return {low_dim, tree};
}

KernelRequest shuffled_request() {
  KernelRequest req = request_for();
  req.order = PointOrder::kShuffled;
  return req;
}

// One-launch batch under variant `v`; the LaunchResult carries the same
// isolated measurements a solo run_gpu_sim would produce.
LaunchResult run_one(const std::shared_ptr<KernelHandle>& handle,
                     GpuAddressSpace& space, GpuMode mode,
                     obs::TraceSink* trace = nullptr) {
  LaunchSpec spec;
  spec.kernel = handle;
  spec.space = &space;
  spec.mode = mode;
  spec.trace = trace;
  BatchRun run = run_gpu_batch(std::span<const LaunchSpec>(&spec, 1),
                               DeviceConfig{});
  return std::move(run.launches.front());
}

void expect_selects(const std::shared_ptr<KernelHandle>& handle,
                    GpuAddressSpace& space, bool want_lockstep) {
  const GpuMode mode = GpuMode::from(Variant::kAutoSelect);
  obs::TraceSink trace;
  LaunchResult g = run_one(handle, space, mode, &trace);
  ASSERT_TRUE(g.ok()) << g.error;
  ASSERT_TRUE(g.selection.has_value());
  const SelectionInfo& sel = *g.selection;
  EXPECT_EQ(sel.chosen, want_lockstep ? Variant::kAutoLockstep
                                      : Variant::kAutoNolockstep)
      << "lift " << sel.mean_similarity - sel.baseline_similarity
      << " (mean " << sel.mean_similarity << ", baseline "
      << sel.baseline_similarity << ") vs threshold " << sel.threshold;
  EXPECT_EQ(sel.samples, mode.profile_samples);
  EXPECT_EQ(sel.threshold, kSimilarityLiftThreshold);
  EXPECT_GT(sel.sampling_cycles, 0.0);
  EXPECT_EQ(g.variant, sel.chosen);

  // Byte-identical to the dispatched composition, with exactly the
  // sampling cost charged on top of its cycles.
  LaunchResult direct = run_one(handle, space, GpuMode::from(sel.chosen));
  ASSERT_TRUE(direct.ok()) << direct.error;
  ASSERT_EQ(g.results.size(), direct.results.size());
  EXPECT_EQ(0, std::memcmp(g.results.data(), direct.results.data(),
                           g.results.size()));
  EXPECT_EQ(g.per_point_visits, direct.per_point_visits);
  EXPECT_EQ(g.per_warp_pops, direct.per_warp_pops);
  EXPECT_DOUBLE_EQ(g.stats.instr_cycles,
                   direct.stats.instr_cycles + sel.sampling_cycles);
  EXPECT_GT(g.time.compute_ms, direct.time.compute_ms);

  // The launch decision lands in the trace as a single kSelect event.
  ASSERT_EQ(trace.launch_events().size(), 1u);
  const obs::TraceEvent& e = trace.launch_events().front();
  EXPECT_EQ(e.kind, obs::TraceEventKind::kSelect);
  EXPECT_EQ(e.aux, want_lockstep ? 1u : 0u);
  EXPECT_EQ(e.mask, sel.samples);
  EXPECT_EQ(trace.merged().size(), trace.total_events());
  EXPECT_EQ(trace.merged().back().kind, obs::TraceEventKind::kSelect);
}

class AutoSelectAcceptance
    : public ::testing::TestWithParam<const char*> {};

TEST_P(AutoSelectAcceptance, SortedOrdersPickLockstep) {
  for (const KernelRequest& req : sorted_requests(GetParam())) {
    SCOPED_TRACE(point_order_name(req.order));
    GpuAddressSpace space;
    auto handle = KernelFactory::instance().make(GetParam(), req, space);
    expect_selects(handle, space, true);
  }
}

TEST_P(AutoSelectAcceptance, ShuffledOrderPicksNonLockstep) {
  GpuAddressSpace space;
  auto handle = KernelFactory::instance().make(
      GetParam(), shuffled_request(), space);
  expect_selects(handle, space, false);
}

TEST(AutoSelect, ZeroSamplesRejected) {
  KernelRequest req = request_for();
  req.order = PointOrder::kTree;
  GpuAddressSpace space;
  auto handle = KernelFactory::instance().make("pc", req, space);
  GpuMode mode = GpuMode::from(Variant::kAutoSelect);
  mode.profile_samples = 0;
  LaunchSpec spec;
  spec.kernel = handle;
  spec.space = &space;
  spec.mode = mode;
  EXPECT_THROW(run_gpu_batch(std::span<const LaunchSpec>(&spec, 1),
                             DeviceConfig{}),
               std::invalid_argument);
}

TEST(AutoSelect, DeterministicAcrossRuns) {
  const KernelRequest req = shuffled_request();
  GpuAddressSpace space1, space2;
  auto h1 = KernelFactory::instance().make("nn", req, space1);
  auto h2 = KernelFactory::instance().make("nn", req, space2);
  const GpuMode mode = GpuMode::from(Variant::kAutoSelect);
  LaunchResult first = run_one(h1, space1, mode);
  LaunchResult again = run_one(h2, space2, mode);
  ASSERT_TRUE(first.selection.has_value());
  ASSERT_TRUE(again.selection.has_value());
  EXPECT_EQ(again.selection->chosen, first.selection->chosen);
  EXPECT_DOUBLE_EQ(again.selection->mean_similarity,
                   first.selection->mean_similarity);
  EXPECT_DOUBLE_EQ(again.selection->sampling_cycles,
                   first.selection->sampling_cycles);
}

// The registry's unknown-name error lists the valid spellings, matching
// the variant_from_name convention.
TEST(KernelFactoryRegistry, UnknownNameListsValidSpellings) {
  register_bench_kernels();
  GpuAddressSpace space;
  try {
    (void)KernelFactory::instance().make("no_such_kernel", KernelRequest{},
                                         space);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("kernel_factory: unknown kernel 'no_such_kernel'"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("valid:"), std::string::npos) << what;
    for (const char* name :
         {"bh", "pc", "knn", "nn", "vp", "rope_knn", "rope_nn",
          "fused_knn_nn", "fused_bh_step"})
      EXPECT_NE(what.find(name), std::string::npos)
          << what << " missing " << name;
  }
}

TEST(KernelFactoryRegistry, NamesAreSortedAndComplete) {
  register_bench_kernels();
  const std::vector<std::string> names = KernelFactory::instance().names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* name :
       {"bh", "pc", "knn", "nn", "vp", "rope_knn", "rope_nn", "fused_knn_nn",
        "fused_bh_step"})
    EXPECT_TRUE(KernelFactory::instance().contains(name)) << name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, AutoSelectAcceptance,
                         ::testing::ValuesIn(kFactoryNames),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace tt
