#include "core/rope_stack.h"

#include <gtest/gtest.h>

namespace tt {
namespace {

TEST(RopeStack, InterleavedAdjacentLanesAdjacentBytes) {
  // Two lanes at the same level: entries 8 bytes apart (one entry size),
  // i.e. inside the same 128-byte segment -> coalesced stack traffic.
  auto a = interleaved_stack_offset(5, 3, 32, 8);
  auto b = interleaved_stack_offset(5, 4, 32, 8);
  EXPECT_EQ(b - a, 8u);
}

TEST(RopeStack, InterleavedLevelsWarpApart) {
  auto a = interleaved_stack_offset(0, 0, 32, 8);
  auto b = interleaved_stack_offset(1, 0, 32, 8);
  EXPECT_EQ(b - a, 32u * 8u);
}

TEST(RopeStack, ContiguousLanesFarApart) {
  // Same level, adjacent lanes: a whole per-lane block apart, so never in
  // one 128B segment when max_levels * entry_bytes > 128.
  auto a = contiguous_stack_offset(5, 3, 64, 8);
  auto b = contiguous_stack_offset(5, 4, 64, 8);
  EXPECT_EQ(b - a, 64u * 8u);
}

TEST(RopeStack, BoundGrowsWithDepthAndFanout) {
  EXPECT_EQ(rope_stack_bound(0, 2), 3);
  EXPECT_EQ(rope_stack_bound(10, 2), 13);
  EXPECT_GT(rope_stack_bound(10, 8), rope_stack_bound(10, 2));
}

TEST(RopeStack, BoundIsSufficientForBinaryTraversal) {
  // Worst case: every pop of a node at depth d pushes 2 children; the stack
  // holds at most depth+fanout-ish entries. Simulate the worst DFS.
  for (int depth = 1; depth <= 20; ++depth) {
    int bound = rope_stack_bound(depth, 2);
    // Explicit worst-case simulation on a complete binary tree of `depth`.
    struct E {
      int d;
    };
    std::vector<E> stk{{0}};
    std::size_t peak = 1;
    while (!stk.empty()) {
      E e = stk.back();
      stk.pop_back();
      if (e.d < depth) {
        stk.push_back({e.d + 1});
        stk.push_back({e.d + 1});
      }
      peak = std::max(peak, stk.size());
    }
    EXPECT_LE(peak, static_cast<std::size_t>(bound)) << "depth " << depth;
  }
}

}  // namespace
}  // namespace tt
