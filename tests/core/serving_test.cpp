// The admission--dispatch layer (core/serving.h): drain-policy triggers,
// ring-buffer drops, device backpressure, warm-replay exactness, arrival
// trace determinism, and the zero-delay sanity anchor -- a query served
// alone must pay exactly its solo transfer + modelled compute.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bench_algos/nn/nearest_neighbor.h"
#include "bench_algos/pc/point_correlation.h"
#include "core/gpu_executors.h"
#include "core/serving.h"
#include "data/generators.h"
#include "spatial/kdtree.h"

namespace tt {
namespace {

struct ServingFixtures {
  PointSet pc_pts;
  KdTree pc_tree;
  GpuAddressSpace pc_space;
  float pc_radius = 0;
  std::unique_ptr<PointCorrelationKernel> pc;

  PointSet nn_pts;
  KdTreeNN nn_tree;
  GpuAddressSpace nn_space;
  std::unique_ptr<NnKernel> nn;

  ServingFixtures() {
    pc_pts = gen_covtype_like(400, 7, 91);
    pc_tree = build_kdtree(pc_pts, 8);
    pc_radius = pc_pick_radius(pc_pts, 16, 91);
    pc = std::make_unique<PointCorrelationKernel>(pc_tree, pc_pts, pc_radius,
                                                  pc_space);
    nn_pts = gen_uniform(350, 5, 92);
    nn_tree = build_kdtree_nn(nn_pts);
    nn = std::make_unique<NnKernel>(nn_tree, nn_pts, nn_space);
  }

  [[nodiscard]] QuerySet pc_query(std::uint64_t up = 4096,
                                  std::uint64_t down = 1024) {
    QuerySet q;
    q.spec.kernel = make_kernel_handle(*pc);
    q.spec.space = &pc_space;
    q.spec.mode = GpuMode::from(Variant::kAutoNolockstep);
    q.upload_bytes = up;
    q.download_bytes = down;
    return q;
  }

  [[nodiscard]] QuerySet nn_query(std::uint64_t up = 2048,
                                  std::uint64_t down = 512) {
    QuerySet q;
    q.spec.kernel = make_kernel_handle(*nn);
    q.spec.space = &nn_space;
    q.spec.mode = GpuMode::from(Variant::kAutoNolockstep);
    q.upload_bytes = up;
    q.download_bytes = down;
    return q;
  }
};

ServingConfig relaxed_config() {
  ServingConfig cfg;
  cfg.drain.max_batch = 1;
  cfg.drain.max_delay_ms = 0;
  return cfg;
}

// ---------------------------------------------------------------------
// The sanity anchor: a query served alone, with no batching delay and an
// idle device, completes at exactly its solo transfer + modelled compute.
// ---------------------------------------------------------------------

TEST(ServingSession, ZeroDelayMatchesSoloTransferPlusCompute) {
  ServingFixtures f;
  const GpuMode mode = GpuMode::from(Variant::kAutoNolockstep);
  const auto solo = run_gpu_sim(*f.pc, f.pc_space, DeviceConfig{}, mode);

  ServingConfig cfg = relaxed_config();
  ServingSession session(cfg);
  // Arrivals spaced far wider than any service time: every wave finds the
  // device idle, so queueing contributes nothing.
  for (double arrival : {0.0, 100.0, 200.0})
    ASSERT_TRUE(session.submit(f.pc_query(), arrival));
  session.flush();

  const double expect =
      cfg.transfer.round_trip_ms(4096, 1024, 1) + solo.time.total_ms;
  ASSERT_EQ(session.latencies_ms().size(), 3u);
  for (double lat : session.latencies_ms()) EXPECT_EQ(lat, expect);
  for (double qd : session.queue_delays_ms()) EXPECT_EQ(qd, 0.0);

  const ServingReport r = session.report();
  EXPECT_EQ(r.submitted, 3u);
  EXPECT_EQ(r.completed, 3u);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(r.failed, 0u);
  ASSERT_EQ(r.drains.size(), 3u);
  for (const DrainRecord& d : r.drains) {
    EXPECT_EQ(d.n_queries, 1u);
    EXPECT_EQ(d.transfer_ms, d.solo_transfer_ms);  // wave of one saves nothing
    EXPECT_EQ(d.dispatch_ms, d.trigger_ms);
  }
  EXPECT_EQ(r.latency.p50, expect);
  EXPECT_EQ(r.latency.max, expect);
}

// ---------------------------------------------------------------------
// Drain-policy triggers.
// ---------------------------------------------------------------------

TEST(ServingSession, SizeTriggeredDrainsAdmitExactWaves) {
  ServingFixtures f;
  ServingConfig cfg;
  cfg.drain.max_batch = 2;
  cfg.drain.max_delay_ms = 100.0;
  ServingSession session(cfg);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(session.submit(f.pc_query(), 0.0));
  EXPECT_EQ(session.pending(), 0u);  // both waves fired at size 2
  session.flush();
  const ServingReport r = session.report();
  ASSERT_EQ(r.drains.size(), 2u);
  for (const DrainRecord& d : r.drains) {
    EXPECT_EQ(d.n_queries, 2u);
    EXPECT_EQ(d.trigger_ms, 0.0);
  }
}

TEST(ServingSession, DelayTriggeredDrainFiresAtDeadline) {
  ServingFixtures f;
  ServingConfig cfg;
  cfg.drain.max_batch = 100;
  cfg.drain.max_delay_ms = 0.5;
  ServingSession session(cfg);
  ASSERT_TRUE(session.submit(f.pc_query(), 0.0));
  EXPECT_EQ(session.pending(), 1u);
  // This arrival moves virtual time past the first query's deadline, so
  // the first wave fires at exactly arrival + max_delay -- without the
  // second query in it.
  ASSERT_TRUE(session.submit(f.pc_query(), 10.0));
  session.flush();
  const ServingReport r = session.report();
  ASSERT_EQ(r.drains.size(), 2u);
  EXPECT_EQ(r.drains[0].trigger_ms, 0.5);
  EXPECT_EQ(r.drains[0].n_queries, 1u);
  EXPECT_EQ(r.drains[1].trigger_ms, 10.5);
  EXPECT_EQ(r.drains[1].n_queries, 1u);
}

TEST(ServingSession, DeviceBusyDefersDispatchNotTrigger) {
  ServingFixtures f;
  ServingConfig cfg = relaxed_config();
  ServingSession session(cfg);
  // Both arrive at t=0; waves of one. The second wave's policy fires at 0
  // but the device is still serving the first, so dispatch waits.
  ASSERT_TRUE(session.submit(f.pc_query(), 0.0));
  ASSERT_TRUE(session.submit(f.pc_query(), 0.0));
  session.flush();
  const ServingReport r = session.report();
  ASSERT_EQ(r.drains.size(), 2u);
  EXPECT_EQ(r.drains[0].dispatch_ms, 0.0);
  EXPECT_EQ(r.drains[1].trigger_ms, 0.0);
  EXPECT_EQ(r.drains[1].dispatch_ms,
            r.drains[0].dispatch_ms + r.drains[0].service_ms);
  ASSERT_EQ(session.queue_delays_ms().size(), 2u);
  EXPECT_EQ(session.queue_delays_ms()[1], r.drains[0].service_ms);
}

// ---------------------------------------------------------------------
// Admission-queue overflow: full ring drops, counted, never silent.
// ---------------------------------------------------------------------

TEST(ServingSession, FullRingDropsAndCounts) {
  ServingFixtures f;
  ServingConfig cfg;
  cfg.drain.max_batch = 100;
  cfg.drain.max_delay_ms = 10.0;
  cfg.queue_capacity = 2;
  ServingSession session(cfg);
  EXPECT_TRUE(session.submit(f.pc_query(), 0.0));
  EXPECT_TRUE(session.submit(f.pc_query(), 0.0));
  EXPECT_FALSE(session.submit(f.pc_query(), 0.0));
  EXPECT_FALSE(session.submit(f.pc_query(), 0.0));
  session.flush();
  const ServingReport r = session.report();
  EXPECT_EQ(r.submitted, 4u);
  EXPECT_EQ(r.completed, 2u);
  EXPECT_EQ(r.dropped, 2u);
  ASSERT_EQ(r.drains.size(), 1u);
  EXPECT_EQ(r.drains[0].n_queries, 2u);
}

TEST(ServingSession, RejectsDecreasingArrivalsAndMissingKernel) {
  ServingFixtures f;
  ServingSession session(relaxed_config());
  ASSERT_TRUE(session.submit(f.pc_query(), 5.0));
  EXPECT_THROW(session.submit(f.pc_query(), 4.0), std::invalid_argument);
  QuerySet empty;
  EXPECT_THROW(session.submit(std::move(empty), 6.0), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Warm replay: identical resubmissions reuse the first execution's
// measurements exactly; turning reuse off changes nothing but the cold
// launch count. (Exact by the results-neutrality contract.)
// ---------------------------------------------------------------------

TEST(ServingSession, WarmReplayIsExact) {
  ServingFixtures f;
  // Replay requires identity: the same prepared handle resubmitted, as a
  // serving pool does. (A fresh handle per query is always cold.)
  const QuerySet proto = f.pc_query();
  auto run = [&](bool reuse) {
    ServingConfig cfg = relaxed_config();
    cfg.reuse_identical = reuse;
    ServingSession session(cfg);
    for (double arrival : {0.0, 100.0, 200.0, 300.0}) {
      QuerySet q = proto;
      EXPECT_TRUE(session.submit(std::move(q), arrival));
    }
    session.flush();
    return session;
  };
  ServingSession warm = run(true);
  ServingSession cold = run(false);
  ASSERT_EQ(warm.latencies_ms().size(), 4u);
  EXPECT_EQ(warm.latencies_ms(), cold.latencies_ms());

  const ServingReport wr = warm.report();
  const ServingReport cr = cold.report();
  ASSERT_EQ(wr.drains.size(), 4u);
  EXPECT_EQ(wr.drains[0].cold_launches, 1u);
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_EQ(wr.drains[i].cold_launches, 0u) << "drain " << i;
  for (const DrainRecord& d : cr.drains) EXPECT_EQ(d.cold_launches, 1u);
}

// ---------------------------------------------------------------------
// Determinism: the same trace through two sessions yields byte-identical
// per-query series (the property the CI OMP 1-vs-4 job pins end to end).
// ---------------------------------------------------------------------

TEST(ServingSession, SameTraceSameReport) {
  ServingFixtures f;
  const std::vector<double> trace = poisson_trace(48, 3000.0, 7);
  auto run = [&]() {
    ServingConfig cfg;
    cfg.drain.max_batch = 4;
    cfg.drain.max_delay_ms = 0.25;
    ServingSession session(cfg);
    for (std::size_t i = 0; i < trace.size(); ++i)
      EXPECT_TRUE(
          session.submit(i % 2 ? f.nn_query() : f.pc_query(), trace[i]));
    session.flush();
    return session;
  };
  ServingSession a = run();
  ServingSession b = run();
  EXPECT_EQ(a.latencies_ms(), b.latencies_ms());
  EXPECT_EQ(a.queue_delays_ms(), b.queue_delays_ms());
  const ServingReport ra = a.report();
  const ServingReport rb = b.report();
  ASSERT_EQ(ra.drains.size(), rb.drains.size());
  for (std::size_t i = 0; i < ra.drains.size(); ++i) {
    EXPECT_EQ(ra.drains[i].dispatch_ms, rb.drains[i].dispatch_ms);
    EXPECT_EQ(ra.drains[i].n_queries, rb.drains[i].n_queries);
    EXPECT_EQ(ra.drains[i].service_ms, rb.drains[i].service_ms);
  }
}

// Mixed-kernel waves amortize transfer: one wave of two distinct kernels
// pays one launch overhead instead of two.
TEST(ServingSession, WaveTransferAmortizesLaunchOverhead) {
  ServingFixtures f;
  ServingConfig cfg;
  cfg.drain.max_batch = 2;
  cfg.drain.max_delay_ms = 10.0;
  ServingSession session(cfg);
  ASSERT_TRUE(session.submit(f.pc_query(), 0.0));
  ASSERT_TRUE(session.submit(f.nn_query(), 0.0));
  session.flush();
  const ServingReport r = session.report();
  ASSERT_EQ(r.drains.size(), 1u);
  const DrainRecord& d = r.drains[0];
  EXPECT_EQ(d.n_queries, 2u);
  EXPECT_NEAR(d.solo_transfer_ms - d.transfer_ms,
              cfg.transfer.launch_overhead_ms, 1e-12);
  EXPECT_EQ(r.amortized_transfer_ms(), d.transfer_ms);
  EXPECT_EQ(r.summed_solo_transfer_ms(), d.solo_transfer_ms);
}

// ---------------------------------------------------------------------
// Percentile summary.
// ---------------------------------------------------------------------

TEST(SummarizeLatency, MatchesLinearInterpolation) {
  LatencySummary s = summarize_latency({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);   // rank 1.5 between 2 and 3
  EXPECT_DOUBLE_EQ(s.p95, 3.85);  // rank 2.85 between 3 and 4
  EXPECT_DOUBLE_EQ(s.p99, 3.97);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  const LatencySummary empty = summarize_latency({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.p99, 0.0);
}

// ---------------------------------------------------------------------
// Arrival-trace generators.
// ---------------------------------------------------------------------

TEST(ArrivalTraces, PoissonDeterministicMonotoneSeeded) {
  const auto a = poisson_trace(256, 1000.0, 5);
  const auto b = poisson_trace(256, 1000.0, 5);
  const auto c = poisson_trace(256, 1000.0, 6);
  ASSERT_EQ(a.size(), 256u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_GE(a[i], a[i - 1]) << "at " << i;
  // Mean inter-arrival should land near 1 ms at 1000 qps (law of large
  // numbers; generous tolerance, this is a smoke bound not a fit).
  EXPECT_NEAR(a.back() / static_cast<double>(a.size()), 1.0, 0.3);
  EXPECT_THROW((void)poisson_trace(8, 0.0, 1), std::invalid_argument);
}

TEST(ArrivalTraces, BurstyArrivalsLandInOnWindows) {
  const double on_ms = 2.0, off_ms = 3.0;
  const auto a = bursty_trace(200, 4000.0, on_ms, off_ms, 11);
  const auto b = bursty_trace(200, 4000.0, on_ms, off_ms, 11);
  EXPECT_EQ(a, b);
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_GE(a[i], a[i - 1]) << "at " << i;
  for (double t : a) {
    const double phase = std::fmod(t, on_ms + off_ms);
    EXPECT_LE(phase, on_ms + 1e-9) << "arrival " << t << " in OFF window";
  }
  EXPECT_THROW((void)bursty_trace(8, -1.0, 2.0, 2.0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)bursty_trace(8, 100.0, 0.0, 2.0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace tt
