// GpuMode::grid_limit (Figure 9b's strip-mined grid loop) under every
// variant: strip-mining changes scheduling and L2 reuse only, so results
// and work counters must be bit-identical to the one-chunk-per-warp grid.
// The engine drives the chunk loop uniformly for all StackPolicy x
// ConvergencePolicy compositions, so all four are exercised here.
#include <gtest/gtest.h>

#include <cstring>

#include "bench_algos/nn/nearest_neighbor.h"
#include "bench_algos/pc/point_correlation.h"
#include "core/gpu_executors.h"
#include "data/generators.h"
#include "spatial/kdtree.h"

namespace tt {
namespace {

template <TraversalKernel K>
void expect_grid_invariant(const K& k, GpuAddressSpace& space) {
  DeviceConfig cfg;
  for (Variant v : kAllVariants) {
    // Guided kernels (NN) can't run the stackless rope walkers; the grid
    // invariant still covers them through every eligible variant.
    if (!kernel_variant_eligible<K>(v)) continue;
    SCOPED_TRACE(variant_name(v));
    auto wide = run_gpu_sim(k, space, cfg, GpuMode::from(v));
    for (std::size_t grid : {std::size_t{1}, std::size_t{3}}) {
      SCOPED_TRACE("grid_limit " + std::to_string(grid));
      GpuMode narrow = GpuMode::from(v);
      narrow.grid_limit = grid;
      auto g = run_gpu_sim(k, space, cfg, narrow);
      ASSERT_EQ(g.results.size(), wide.results.size());
      EXPECT_EQ(0, std::memcmp(g.results.data(), wide.results.data(),
                               sizeof(typename K::Result) *
                                   wide.results.size()));
      EXPECT_EQ(g.per_point_visits, wide.per_point_visits);
      EXPECT_EQ(g.per_warp_pops, wide.per_warp_pops);
      EXPECT_EQ(g.stats.lane_visits, wide.stats.lane_visits);
      EXPECT_EQ(g.stats.warp_steps, wide.stats.warp_steps);
      EXPECT_EQ(g.stats.warp_pops, wide.stats.warp_pops);
      EXPECT_EQ(g.stats.calls, wide.stats.calls);
      EXPECT_EQ(g.stats.votes, wide.stats.votes);
    }
  }
}

TEST(GridLimit, PointCorrelationAllVariants) {
  PointSet pts = gen_covtype_like(500, 7, 77);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  float r = pc_pick_radius(pts, 16, 77);
  PointCorrelationKernel k(tree, pts, r, space);
  expect_grid_invariant(k, space);
}

TEST(GridLimit, NearestNeighborAllVariants) {
  PointSet pts = gen_uniform(450, 5, 78);
  KdTreeNN tree = build_kdtree_nn(pts);
  GpuAddressSpace space;
  NnKernel k(tree, pts, space);
  expect_grid_invariant(k, space);
}

}  // namespace
}  // namespace tt
