// Cross-variant semantic equivalence (the heart of sections 3.3/4): for
// every benchmark kernel, the CPU recursion, CPU autoropes, and all four
// simulated GPU variants must compute the same per-point results.
#include <gtest/gtest.h>

#include "bench_algos/bh/barnes_hut.h"
#include "bench_algos/knn/knn.h"
#include "bench_algos/nn/nearest_neighbor.h"
#include "bench_algos/pc/point_correlation.h"
#include "bench_algos/vp/vantage_point.h"
#include "core/cpu_executors.h"
#include "core/gpu_executors.h"
#include "data/generators.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"
#include "spatial/vptree.h"

namespace tt {
namespace {

constexpr std::size_t kN = 700;  // intentionally not a multiple of 32

template <TraversalKernel K, class Eq>
void expect_all_variants_equal(const K& k, GpuAddressSpace& space, Eq&& eq) {
  DeviceConfig cfg;
  auto cpu_rec = run_cpu(k, CpuVariant::kRecursive, 1);
  auto cpu_auto = run_cpu(k, CpuVariant::kAutoropes, 2);
  auto gaN = run_gpu_sim(k, space, cfg, GpuMode{true, false});
  auto gaL = run_gpu_sim(k, space, cfg, GpuMode{true, true});
  auto grN = run_gpu_sim(k, space, cfg, GpuMode{false, false});
  auto grL = run_gpu_sim(k, space, cfg, GpuMode{false, true});

  ASSERT_EQ(cpu_rec.results.size(), k.num_points());
  for (std::size_t i = 0; i < k.num_points(); ++i) {
    EXPECT_TRUE(eq(cpu_rec.results[i], cpu_auto.results[i])) << "cpu_auto " << i;
    EXPECT_TRUE(eq(cpu_rec.results[i], gaN.results[i])) << "autoropes-N " << i;
    EXPECT_TRUE(eq(cpu_rec.results[i], gaL.results[i])) << "autoropes-L " << i;
    EXPECT_TRUE(eq(cpu_rec.results[i], grN.results[i])) << "recursive-N " << i;
    EXPECT_TRUE(eq(cpu_rec.results[i], grL.results[i])) << "recursive-L " << i;
  }
}

bool near(float a, float b, float tol) {
  if (a == b) return true;
  float scale = std::max({1.0f, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

TEST(Equivalence, PointCorrelation) {
  PointSet pts = gen_covtype_like(kN, 7, 31);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  float r = pc_pick_radius(pts, 16, 31);
  PointCorrelationKernel k(tree, pts, r, space);
  expect_all_variants_equal(
      k, space, [](std::uint32_t a, std::uint32_t b) { return a == b; });
}

TEST(Equivalence, PointCorrelationMatchesBruteForce) {
  PointSet pts = gen_uniform(400, 3, 32);
  KdTree tree = build_kdtree(pts, 4);
  GpuAddressSpace space;
  PointCorrelationKernel k(tree, pts, 0.2f, space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  auto brute = pc_brute_force(pts, pts, 0.2f);
  EXPECT_EQ(run.results, brute);
}

TEST(Equivalence, Knn) {
  PointSet pts = gen_mnist_like(kN, 7, 33);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  KnnKernel k(tree, pts, 8, space);
  expect_all_variants_equal(k, space, [](const KnnResult& a, const KnnResult& b) {
    return near(a.kth_d2, b.kth_d2, 1e-4f) && near(a.sum_d2, b.sum_d2, 1e-3f);
  });
}

TEST(Equivalence, KnnMatchesBruteForce) {
  PointSet pts = gen_uniform(300, 5, 34);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  KnnKernel k(tree, pts, 4, space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  auto brute = knn_brute_force(pts, pts, 4);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE(near(run.results[i].kth_d2, brute[i].kth_d2, 1e-4f)) << i;
    EXPECT_TRUE(near(run.results[i].sum_d2, brute[i].sum_d2, 1e-3f)) << i;
  }
}

TEST(Equivalence, NearestNeighbor) {
  PointSet pts = gen_covtype_like(kN, 7, 35);
  KdTreeNN tree = build_kdtree_nn(pts);
  GpuAddressSpace space;
  NnKernel k(tree, pts, space);
  expect_all_variants_equal(k, space, [](const NnResult& a, const NnResult& b) {
    return near(a.best_d2, b.best_d2, 1e-4f);
  });
}

TEST(Equivalence, NearestNeighborMatchesBruteForce) {
  PointSet pts = gen_uniform(350, 4, 36);
  KdTreeNN tree = build_kdtree_nn(pts);
  GpuAddressSpace space;
  NnKernel k(tree, pts, space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  auto brute = nn_brute_force(pts, pts);
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_TRUE(near(run.results[i].best_d2, brute[i].best_d2, 1e-4f)) << i;
}

TEST(Equivalence, VantagePoint) {
  PointSet pts = gen_geocity_like(kN, 37);
  VpTree tree = build_vptree(pts, 37);
  GpuAddressSpace space;
  VpKernel k(tree, pts, space);
  expect_all_variants_equal(k, space, [](const VpResult& a, const VpResult& b) {
    return near(a.best_d, b.best_d, 1e-4f);
  });
}

TEST(Equivalence, VantagePointMatchesBruteForce) {
  PointSet pts = gen_uniform(320, 6, 38);
  VpTree tree = build_vptree(pts, 38);
  GpuAddressSpace space;
  VpKernel k(tree, pts, space);
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  auto brute = vp_brute_force(pts, pts);
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_TRUE(near(run.results[i].best_d, brute[i].best_d, 1e-4f)) << i;
}

TEST(Equivalence, BarnesHut) {
  BodySet b = gen_plummer(kN, 39);
  Octree tree = build_octree(b.pos, b.mass);
  GpuAddressSpace space;
  BarnesHutKernel k(tree, b.pos, 0.5f, 1e-4f, space);
  expect_all_variants_equal(k, space, [](const BhForce& x, const BhForce& y) {
    return near(x.ax, y.ax, 1e-4f) && near(x.ay, y.ay, 1e-4f) &&
           near(x.az, y.az, 1e-4f);
  });
}

TEST(Equivalence, BarnesHutApproximatesBruteForce) {
  BodySet b = gen_plummer(500, 40);
  Octree tree = build_octree(b.pos, b.mass);
  GpuAddressSpace space;
  BarnesHutKernel k(tree, b.pos, 0.3f, 1e-4f, space);  // tight theta
  auto run = run_cpu(k, CpuVariant::kRecursive, 1);
  auto brute = bh_brute_force(b.pos, b.mass, 1e-4f);
  // Relative error of the aggregate force magnitude should be small.
  double err = 0, ref = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    double dx = run.results[i].ax - brute[i].ax;
    double dy = run.results[i].ay - brute[i].ay;
    double dz = run.results[i].az - brute[i].az;
    err += std::sqrt(dx * dx + dy * dy + dz * dz);
    ref += std::sqrt(static_cast<double>(brute[i].ax) * brute[i].ax +
                     static_cast<double>(brute[i].ay) * brute[i].ay +
                     static_cast<double>(brute[i].az) * brute[i].az);
  }
  EXPECT_LT(err / ref, 0.05);  // within 5% on aggregate for theta=0.3
}

TEST(Equivalence, StackOverflowDetected) {
  // A kernel lying about its stack bound must be caught, not corrupted.
  PointSet pts = gen_uniform(64, 3, 41);
  KdTree tree = build_kdtree(pts, 1);
  GpuAddressSpace space;
  struct LyingKernel : PointCorrelationKernel {
    using PointCorrelationKernel::PointCorrelationKernel;
    [[nodiscard]] int stack_bound() const { return 1; }
  };
  LyingKernel k(tree, pts, 10.f, space);  // huge radius: full traversal
  DeviceConfig cfg;
  EXPECT_THROW(run_gpu_sim(k, space, cfg, GpuMode{true, false}),
               std::runtime_error);
}

}  // namespace
}  // namespace tt
