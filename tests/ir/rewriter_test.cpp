#include "core/ir/autoropes_rewriter.h"

#include <gtest/gtest.h>

#include "bench_algos/knn/knn.h"
#include "bench_algos/pc/point_correlation.h"

namespace tt {
namespace {

TEST(Rewriter, ReversesCallOrderIntoPushes) {
  ir::TraversalFunc out = ir::autoropes_rewrite(pc_ir());
  // Block 2 held calls {0 (left), 1 (right)}; pushes must be {right, left}.
  const ir::Block& b = out.blocks[2];
  ASSERT_EQ(b.stmts.size(), 2u);
  EXPECT_EQ(b.stmts[0].kind, ir::Stmt::Kind::kPush);
  EXPECT_EQ(b.stmts[1].kind, ir::Stmt::Kind::kPush);
  EXPECT_EQ(b.stmts[0].id, 1);  // right pushed first
  EXPECT_EQ(b.stmts[1].id, 0);  // left pushed second -> popped first
}

TEST(Rewriter, GuidedBothCallBlocksRewritten) {
  ir::TraversalFunc out = ir::autoropes_rewrite(knn_ir());
  EXPECT_EQ(out.blocks[3].stmts[0].id, 1);
  EXPECT_EQ(out.blocks[3].stmts[1].id, 0);
  EXPECT_EQ(out.blocks[4].stmts[0].id, 3);
  EXPECT_EQ(out.blocks[4].stmts[1].id, 2);
}

TEST(Rewriter, NonCallStatementsPreserved) {
  ir::TraversalFunc in = pc_ir();
  ir::TraversalFunc out = ir::autoropes_rewrite(in);
  ASSERT_EQ(out.blocks.size(), in.blocks.size());
  // The leaf-update block is untouched.
  EXPECT_EQ(out.blocks[3].stmts.size(), in.blocks[3].stmts.size());
  EXPECT_EQ(out.blocks[3].stmts[0].kind, ir::Stmt::Kind::kUpdate);
  EXPECT_NE(out.name, in.name);
}

TEST(Rewriter, RejectsNonPtr) {
  ir::TraversalFunc f;
  f.blocks.resize(1);
  ir::Stmt call;
  call.kind = ir::Stmt::Kind::kCall;
  ir::Stmt upd;
  upd.kind = ir::Stmt::Kind::kUpdate;
  f.blocks[0].stmts = {call, upd};
  f.blocks[0].term = ir::Block::Term::kReturn;
  EXPECT_THROW(ir::autoropes_rewrite(f), std::invalid_argument);
}

TEST(Rewriter, RejectsCallBlockWithoutReturn) {
  ir::TraversalFunc f;
  f.blocks.resize(2);
  ir::Stmt call;
  call.kind = ir::Stmt::Kind::kCall;
  f.blocks[0].stmts = {call};
  f.blocks[0].term = ir::Block::Term::kJump;
  f.blocks[0].succ_true = 1;
  f.blocks[1].term = ir::Block::Term::kReturn;
  EXPECT_THROW(ir::autoropes_rewrite(f), std::invalid_argument);
}

TEST(Rewriter, ArgExpressionsSurviveRewrite) {
  ir::TraversalFunc f;
  f.blocks.resize(1);
  ir::Stmt c0, c1;
  c0.kind = ir::Stmt::Kind::kCall;
  c0.id = 0;
  c0.arg_expr = 5;
  c1.kind = ir::Stmt::Kind::kCall;
  c1.id = 1;
  c1.arg_expr = 6;
  f.blocks[0].stmts = {c0, c1};
  f.blocks[0].term = ir::Block::Term::kReturn;
  ir::TraversalFunc out = ir::autoropes_rewrite(f);
  EXPECT_EQ(out.blocks[0].stmts[0].arg_expr, 6);  // reversed with the call
  EXPECT_EQ(out.blocks[0].stmts[1].arg_expr, 5);
}

}  // namespace
}  // namespace tt
