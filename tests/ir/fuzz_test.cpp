// Randomized structural tests of the IR analyses: generate random acyclic
// CFGs and check analysis invariants that must hold for *any* traversal
// body, plus pipeline equivalence whenever the function happens to be
// restructurable.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/ir/autoropes_rewriter.h"
#include "core/ir/callset_analysis.h"
#include "core/ir/interpreter.h"
#include "core/ir/ptr_restructure.h"
#include "util/rng.h"

namespace tt {
namespace {

// Random DAG-shaped traversal body: forward-only branch targets guarantee
// acyclicity; statements are random updates/calls.
ir::TraversalFunc random_func(std::uint64_t seed) {
  Pcg32 rng(seed, 51);
  ir::TraversalFunc f;
  f.name = "fuzz";
  int n_blocks = 2 + static_cast<int>(rng.next_below(5));
  f.blocks.resize(static_cast<std::size_t>(n_blocks));
  int next_call_id = 0;
  for (int b = 0; b < n_blocks; ++b) {
    ir::Block& blk = f.blocks[static_cast<std::size_t>(b)];
    int n_stmts = static_cast<int>(rng.next_below(4));
    for (int s = 0; s < n_stmts; ++s) {
      ir::Stmt st;
      if (rng.next_below(2)) {
        st.kind = ir::Stmt::Kind::kCall;
        st.id = next_call_id++;
        st.child_slot = static_cast<int>(rng.next_below(2));
        st.arg_expr = static_cast<int>(rng.next_below(3));
      } else {
        st.kind = ir::Stmt::Kind::kUpdate;
        st.id = static_cast<int>(rng.next_below(5));
      }
      blk.stmts.push_back(st);
    }
    if (b + 1 >= n_blocks || rng.next_below(3) == 0) {
      blk.term = ir::Block::Term::kReturn;
    } else if (rng.next_below(2)) {
      blk.term = ir::Block::Term::kJump;
      blk.succ_true =
          b + 1 + static_cast<int>(rng.next_below(
                      static_cast<std::uint32_t>(n_blocks - b - 1)));
    } else {
      blk.term = ir::Block::Term::kBranch;
      blk.cond = static_cast<int>(rng.next_below(4));
      blk.succ_true =
          b + 1 + static_cast<int>(rng.next_below(
                      static_cast<std::uint32_t>(n_blocks - b - 1)));
      blk.succ_false =
          b + 1 + static_cast<int>(rng.next_below(
                      static_cast<std::uint32_t>(n_blocks - b - 1)));
    }
  }
  return f;
}

LinearTree random_tree(std::uint64_t seed) {
  Pcg32 rng(seed, 52);
  LinearTree t;
  t.fanout = 2;
  auto build = [&](auto&& self, NodeId parent, int depth,
                   std::size_t budget) -> NodeId {
    NodeId id = t.add_node(parent, depth);
    if (budget <= 1) return id;
    std::size_t rest = budget - 1;
    std::size_t left = rng.next_below(static_cast<std::uint32_t>(rest + 1));
    if (left > 0) t.set_child(id, 0, self(self, id, depth + 1, left));
    if (rest - left > 0)
      t.set_child(id, 1, self(self, id, depth + 1, rest - left));
    return id;
  };
  build(build, kNullNode, 0, 30);
  return t;
}

ir::World world_for(const LinearTree& tree) {
  ir::World w;
  w.tree = &tree;
  w.cond = [](int id, NodeId n, std::int64_t& ps, std::int64_t arg) {
    return ((id * 3 + n * 7 + ps + arg * 5) & 7) < 4;
  };
  w.update = [](int id, NodeId n, std::int64_t& ps, std::int64_t arg) {
    ps = ps * 41 + id * 13 + n * 3 + arg;
  };
  w.child = [&tree](int slot, NodeId n, const std::int64_t&) {
    return tree.child(n, slot);
  };
  w.arg_fn = [](int expr, std::int64_t arg, NodeId n) {
    return arg / 2 + expr * 3 + n % 7;
  };
  return w;
}

class IrFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IrFuzz, AnalysisInvariants) {
  ir::TraversalFunc f = random_func(GetParam());
  ASSERT_NO_THROW(f.validate());

  auto sets = ir::enumerate_call_sets(f);
  // Call sets are distinct and never empty.
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_FALSE(sets[i].empty());
    for (std::size_t j = i + 1; j < sets.size(); ++j)
      EXPECT_NE(sets[i], sets[j]);
  }
  // Every id in a call set is a call statement in the function.
  std::vector<int> call_ids;
  for (const ir::Block& b : f.blocks)
    for (const ir::Stmt& s : b.stmts)
      if (s.kind == ir::Stmt::Kind::kCall) call_ids.push_back(s.id);
  for (const auto& cs : sets)
    for (int id : cs)
      EXPECT_NE(std::find(call_ids.begin(), call_ids.end(), id),
                call_ids.end());
  // Analysis is deterministic.
  EXPECT_EQ(sets, ir::enumerate_call_sets(f));
}

TEST_P(IrFuzz, PipelineEquivalenceWhenRestructurable) {
  ir::TraversalFunc f = random_func(GetParam() ^ 0x5555);
  if (!ir::can_restructure_to_ptr(f)) {
    EXPECT_THROW(ir::restructure_to_ptr(f), std::invalid_argument);
    return;
  }
  ir::TraversalFunc ptr = ir::restructure_to_ptr(f);
  EXPECT_TRUE(ir::is_pseudo_tail_recursive(ptr));
  ir::TraversalFunc iter = ir::autoropes_rewrite(ptr);

  LinearTree tree = random_tree(GetParam());
  ir::World w = world_for(tree);
  std::int64_t a = 9, b = 9;
  auto ta = ir::interpret_recursive(f, w, 0, 2, a);
  auto tb = ir::interpret_autoropes(iter, w, 0, 2, b);
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrFuzz,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace tt
