// The section-3.3 correctness argument, executed: on random trees, points
// and truncation functions, the autoropes rewrite visits exactly the same
// nodes in exactly the same order as the original recursion, with the same
// stack arguments and the same final point state.
#include "core/ir/interpreter.h"

#include <gtest/gtest.h>

#include "bench_algos/knn/knn.h"
#include "bench_algos/pc/point_correlation.h"
#include "core/ir/autoropes_rewriter.h"
#include "util/rng.h"

namespace tt {
namespace {

LinearTree random_binary_tree(std::size_t n_nodes, std::uint64_t seed) {
  // Random recursive splits, emitted in DFS order.
  Pcg32 rng(seed, 21);
  LinearTree t;
  t.fanout = 2;
  auto build = [&](auto&& self, NodeId parent, int depth,
                   std::size_t budget) -> NodeId {
    NodeId id = t.add_node(parent, depth);
    if (budget <= 1) return id;
    std::size_t rest = budget - 1;
    std::size_t left = rng.next_below(static_cast<std::uint32_t>(rest + 1));
    if (left > 0) t.set_child(id, 0, self(self, id, depth + 1, left));
    if (rest - left > 0)
      t.set_child(id, 1, self(self, id, depth + 1, rest - left));
    return id;
  };
  build(build, kNullNode, 0, n_nodes);
  t.validate();
  return t;
}

// Deterministic pseudo-random predicate from (id, node, point, arg).
bool chaos(int id, NodeId n, std::int64_t ps, std::int64_t arg) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(id) * 0xff51afd7ed558ccdULL;
  h ^= static_cast<std::uint64_t>(n) * 0xc4ceb9fe1a85ec53ULL;
  h ^= static_cast<std::uint64_t>(ps) * 0x2545f4914f6cdd1dULL;
  h ^= static_cast<std::uint64_t>(arg);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  return (h >> 13) & 1;
}

ir::World make_world(const LinearTree& tree) {
  ir::World w;
  w.tree = &tree;
  w.cond = [](int id, NodeId n, std::int64_t& ps, std::int64_t arg) {
    return chaos(id, n, ps, arg);
  };
  w.update = [](int id, NodeId n, std::int64_t& ps, std::int64_t arg) {
    ps = ps * 31 + id * 7 + n * 3 + arg;
  };
  w.child = [&tree](int slot, NodeId n, const std::int64_t&) {
    return tree.child(n, slot);
  };
  w.arg_fn = [](int expr, std::int64_t arg, NodeId n) {
    return arg * 2 + expr + n % 5;
  };
  return w;
}

class IrEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IrEquivalence, UnguidedTraceIdentical) {
  LinearTree tree = random_binary_tree(60, GetParam());
  ir::World w = make_world(tree);
  ir::TraversalFunc rec = pc_ir();
  ir::TraversalFunc iter = ir::autoropes_rewrite(rec);
  std::int64_t ps_rec = static_cast<std::int64_t>(GetParam());
  std::int64_t ps_iter = ps_rec;
  auto t_rec = ir::interpret_recursive(rec, w, 0, 1, ps_rec);
  auto t_iter = ir::interpret_autoropes(iter, w, 0, 1, ps_iter);
  EXPECT_EQ(t_rec, t_iter);
  EXPECT_EQ(ps_rec, ps_iter);
  EXPECT_FALSE(t_rec.empty());
}

TEST_P(IrEquivalence, GuidedTraceIdentical) {
  LinearTree tree = random_binary_tree(80, GetParam() ^ 0xabcdef);
  ir::World w = make_world(tree);
  ir::TraversalFunc rec = knn_ir();
  ir::TraversalFunc iter = ir::autoropes_rewrite(rec);
  std::int64_t ps_rec = 17;
  std::int64_t ps_iter = 17;
  auto t_rec = ir::interpret_recursive(rec, w, 0, 3, ps_rec);
  auto t_iter = ir::interpret_autoropes(iter, w, 0, 3, ps_iter);
  EXPECT_EQ(t_rec, t_iter);
  EXPECT_EQ(ps_rec, ps_iter);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrEquivalence,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(Interpreter, ArgsPropagateThroughStack) {
  // Two-level chain with an arg-halving expression: check the trace's args.
  LinearTree t;
  t.fanout = 2;
  NodeId a = t.add_node(kNullNode, 0);
  NodeId b = t.add_node(a, 1);
  t.set_child(a, 0, b);

  ir::TraversalFunc f;
  f.blocks.resize(1);
  ir::Stmt call;
  call.kind = ir::Stmt::Kind::kCall;
  call.id = 0;
  call.child_slot = 0;
  call.arg_expr = 0;
  f.blocks[0].stmts = {call};
  f.blocks[0].term = ir::Block::Term::kReturn;

  ir::World w;
  w.tree = &t;
  w.cond = [](int, NodeId, std::int64_t&, std::int64_t) { return false; };
  w.update = [](int, NodeId, std::int64_t&, std::int64_t) {};
  w.child = [&t](int slot, NodeId n, const std::int64_t&) {
    return t.child(n, slot);
  };
  w.arg_fn = [](int, std::int64_t arg, NodeId) { return arg / 4; };

  std::int64_t ps = 0;
  auto trace = ir::interpret_recursive(f, w, 0, 100, ps);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].arg, 100);
  EXPECT_EQ(trace[1].arg, 25);

  auto iter_trace =
      ir::interpret_autoropes(ir::autoropes_rewrite(f), w, 0, 100, ps);
  EXPECT_EQ(trace, iter_trace);
}

TEST(Interpreter, MissingChildSkipsCall) {
  LinearTree t;
  t.fanout = 2;
  t.add_node(kNullNode, 0);  // lone root, no children
  ir::World w = make_world(t);
  ir::TraversalFunc f = pc_ir();
  std::int64_t ps = 0;
  auto trace = ir::interpret_recursive(f, w, 0, 0, ps);
  EXPECT_EQ(trace.size(), 1u);
}

}  // namespace
}  // namespace tt
