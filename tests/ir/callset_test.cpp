// Call-set analysis on the paper's own examples: Figure 4 (one call set),
// Figure 5 (two call sets), Figure 9a (Barnes-Hut, eight calls in one set).
#include "core/ir/callset_analysis.h"

#include <gtest/gtest.h>

#include "bench_algos/bh/barnes_hut.h"
#include "bench_algos/knn/knn.h"
#include "bench_algos/nn/nearest_neighbor.h"
#include "bench_algos/pc/point_correlation.h"
#include "bench_algos/vp/vantage_point.h"

namespace tt {
namespace {

TEST(CallSets, Figure4HasOneCallSet) {
  auto sets = ir::enumerate_call_sets(pc_ir());
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0], (ir::CallSet{0, 1}));
}

TEST(CallSets, Figure5HasTwoCallSets) {
  auto sets = ir::enumerate_call_sets(knn_ir());
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0], (ir::CallSet{0, 1}));
  EXPECT_EQ(sets[1], (ir::CallSet{2, 3}));
}

TEST(CallSets, BarnesHutEightCallsOneSet) {
  auto sets = ir::enumerate_call_sets(bh_ir());
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].size(), 8u);
}

TEST(CallSets, AllBenchmarksPseudoTailRecursive) {
  EXPECT_TRUE(ir::is_pseudo_tail_recursive(bh_ir()));
  EXPECT_TRUE(ir::is_pseudo_tail_recursive(pc_ir()));
  EXPECT_TRUE(ir::is_pseudo_tail_recursive(knn_ir()));
  EXPECT_TRUE(ir::is_pseudo_tail_recursive(nn_ir()));
  EXPECT_TRUE(ir::is_pseudo_tail_recursive(vp_ir()));
}

TEST(CallSets, Classification) {
  EXPECT_EQ(ir::classify(bh_ir()), ir::TraversalClass::kUnguided);
  EXPECT_EQ(ir::classify(pc_ir()), ir::TraversalClass::kUnguided);
  EXPECT_EQ(ir::classify(knn_ir()), ir::TraversalClass::kGuided);
  EXPECT_EQ(ir::classify(nn_ir()), ir::TraversalClass::kGuided);
  EXPECT_EQ(ir::classify(vp_ir()), ir::TraversalClass::kGuided);
}

TEST(CallSets, NonPtrFunctionDetected) {
  // update AFTER a call: not pseudo-tail-recursive.
  ir::TraversalFunc f;
  f.name = "bad";
  f.blocks.resize(1);
  ir::Stmt call;
  call.kind = ir::Stmt::Kind::kCall;
  call.id = 0;
  ir::Stmt upd;
  upd.kind = ir::Stmt::Kind::kUpdate;
  upd.id = 0;
  f.blocks[0].stmts = {call, upd};
  f.blocks[0].term = ir::Block::Term::kReturn;
  EXPECT_FALSE(ir::is_pseudo_tail_recursive(f));
}

TEST(CallSets, PointDependentChildChoiceMakesGuided) {
  // Single call set but the call target depends on the point: guided.
  ir::TraversalFunc f;
  f.name = "single_dynamic";
  f.blocks.resize(1);
  ir::Stmt call;
  call.kind = ir::Stmt::Kind::kCall;
  call.id = 0;
  call.child_point_dependent = true;
  f.blocks[0].stmts = {call};
  f.blocks[0].term = ir::Block::Term::kReturn;
  ASSERT_EQ(ir::enumerate_call_sets(f).size(), 1u);
  EXPECT_EQ(ir::classify(f), ir::TraversalClass::kGuided);
}

TEST(CallSets, PathsWithoutCallsIgnored) {
  // Truncation-only path contributes no call set.
  auto sets = ir::enumerate_call_sets(pc_ir());
  for (const auto& cs : sets) EXPECT_FALSE(cs.empty());
}

TEST(CallSets, SharedCallSuffixDeduplicates) {
  // Two branch paths that end up executing the same single call: one set.
  ir::TraversalFunc f;
  f.name = "diamond";
  f.blocks.resize(4);
  f.blocks[0].term = ir::Block::Term::kBranch;
  f.blocks[0].cond = 0;
  f.blocks[0].succ_true = 1;
  f.blocks[0].succ_false = 2;
  ir::Stmt upd;
  upd.kind = ir::Stmt::Kind::kUpdate;
  f.blocks[1].stmts = {upd};
  f.blocks[1].term = ir::Block::Term::kJump;
  f.blocks[1].succ_true = 3;
  f.blocks[2].term = ir::Block::Term::kJump;
  f.blocks[2].succ_true = 3;
  ir::Stmt call;
  call.kind = ir::Stmt::Kind::kCall;
  call.id = 7;
  f.blocks[3].stmts = {call};
  f.blocks[3].term = ir::Block::Term::kReturn;
  auto sets = ir::enumerate_call_sets(f);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0], (ir::CallSet{7}));
}

TEST(CallSets, CyclicCfgRejected) {
  ir::TraversalFunc f;
  f.blocks.resize(2);
  f.blocks[0].term = ir::Block::Term::kJump;
  f.blocks[0].succ_true = 1;
  f.blocks[1].term = ir::Block::Term::kJump;
  f.blocks[1].succ_true = 0;
  EXPECT_THROW(ir::enumerate_call_sets(f), std::logic_error);
}

TEST(CallSets, AnalyzeBundlesEverything) {
  ir::AnalysisReport r = ir::analyze(knn_ir());
  EXPECT_EQ(r.call_sets.size(), 2u);
  EXPECT_TRUE(r.pseudo_tail_recursive);
  EXPECT_EQ(r.cls, ir::TraversalClass::kGuided);
  EXPECT_FALSE(r.lockstep_eligible);  // needs the annotation
  ir::AnalysisReport u = ir::analyze(bh_ir());
  EXPECT_TRUE(u.lockstep_eligible);
}

}  // namespace
}  // namespace tt
