// The section-3.2 restructuring: non-pseudo-tail-recursive traversals are
// rewritten so intervening work between recursive calls executes at the
// beginning of the latter call, after which the standard autoropes rewrite
// applies. Equivalence (same visits, same final point state) is checked
// against true recursion semantics on randomized trees.
#include "core/ir/ptr_restructure.h"

#include <gtest/gtest.h>

#include "core/ir/autoropes_rewriter.h"
#include "core/ir/callset_analysis.h"
#include "core/ir/interpreter.h"
#include "util/rng.h"

namespace tt {
namespace {

// recurse(left); update(1); recurse(right)   -- classic in-order traversal,
// not pseudo-tail-recursive.
ir::TraversalFunc inorder_ir() {
  ir::TraversalFunc f;
  f.name = "inorder";
  f.blocks.resize(2);
  f.blocks[0].term = ir::Block::Term::kBranch;  // if (leaf-ish) return
  f.blocks[0].cond = 0;
  f.blocks[0].succ_true = 1;
  f.blocks[0].succ_false = 1;  // both paths to the body for simplicity
  ir::Stmt pre;
  pre.kind = ir::Stmt::Kind::kUpdate;
  pre.id = 0;
  auto call = [](int id, int slot) {
    ir::Stmt s;
    s.kind = ir::Stmt::Kind::kCall;
    s.id = id;
    s.child_slot = slot;
    return s;
  };
  ir::Stmt mid;
  mid.kind = ir::Stmt::Kind::kUpdate;
  mid.id = 1;
  f.blocks[1].stmts = {pre, call(0, 0), mid, call(1, 1)};
  f.blocks[1].term = ir::Block::Term::kReturn;
  return f;
}

ir::TraversalFunc postorder_ir() {
  // recurse(left); recurse(right); update(2) -- trailing work, NOT
  // restructurable with the deferral scheme.
  ir::TraversalFunc f;
  f.name = "postorder";
  f.blocks.resize(1);
  auto call = [](int id, int slot) {
    ir::Stmt s;
    s.kind = ir::Stmt::Kind::kCall;
    s.id = id;
    s.child_slot = slot;
    return s;
  };
  ir::Stmt post;
  post.kind = ir::Stmt::Kind::kUpdate;
  post.id = 2;
  f.blocks[0].stmts = {call(0, 0), call(1, 1), post};
  f.blocks[0].term = ir::Block::Term::kReturn;
  return f;
}

LinearTree random_binary_tree(std::size_t n_nodes, std::uint64_t seed) {
  Pcg32 rng(seed, 31);
  LinearTree t;
  t.fanout = 2;
  auto build = [&](auto&& self, NodeId parent, int depth,
                   std::size_t budget) -> NodeId {
    NodeId id = t.add_node(parent, depth);
    if (budget <= 1) return id;
    std::size_t rest = budget - 1;
    std::size_t left = rng.next_below(static_cast<std::uint32_t>(rest + 1));
    if (left > 0) t.set_child(id, 0, self(self, id, depth + 1, left));
    if (rest - left > 0)
      t.set_child(id, 1, self(self, id, depth + 1, rest - left));
    return id;
  };
  build(build, kNullNode, 0, n_nodes);
  t.validate();
  return t;
}

ir::World make_world(const LinearTree& tree) {
  ir::World w;
  w.tree = &tree;
  w.cond = [](int id, NodeId n, std::int64_t& ps, std::int64_t arg) {
    return ((id * 7 + n * 13 + ps * 31 + arg) & 7) < 3;
  };
  w.update = [](int id, NodeId n, std::int64_t& ps, std::int64_t arg) {
    // Non-commutative so ordering mistakes are caught.
    ps = ps * 37 + id * 11 + n * 5 + arg * 3 + 1;
  };
  w.child = [&tree](int slot, NodeId n, const std::int64_t&) {
    return tree.child(n, slot);
  };
  w.arg_fn = [](int expr, std::int64_t arg, NodeId n) {
    return arg + expr + n % 3;
  };
  return w;
}

TEST(PtrRestructure, DetectsShapes) {
  EXPECT_TRUE(ir::can_restructure_to_ptr(inorder_ir()));
  EXPECT_FALSE(ir::can_restructure_to_ptr(postorder_ir()));
  EXPECT_THROW(ir::restructure_to_ptr(postorder_ir()), std::invalid_argument);
}

TEST(PtrRestructure, ProducesPseudoTailRecursion) {
  ir::TraversalFunc in = inorder_ir();
  EXPECT_FALSE(ir::is_pseudo_tail_recursive(in));
  ir::TraversalFunc out = ir::restructure_to_ptr(in);
  EXPECT_TRUE(ir::is_pseudo_tail_recursive(out));
  // The intervening update moved into the second call.
  const ir::Block& b = out.blocks[1];
  ASSERT_EQ(b.stmts.size(), 3u);  // pre-update, call, call
  EXPECT_EQ(b.stmts[0].kind, ir::Stmt::Kind::kUpdate);
  EXPECT_EQ(b.stmts[1].kind, ir::Stmt::Kind::kCall);
  EXPECT_TRUE(b.stmts[1].deferred_updates.empty());
  EXPECT_EQ(b.stmts[2].deferred_updates, std::vector<int>{1});
}

TEST(PtrRestructure, CallSetsUnchanged) {
  auto before = ir::enumerate_call_sets(inorder_ir());
  auto after = ir::enumerate_call_sets(ir::restructure_to_ptr(inorder_ir()));
  EXPECT_EQ(before, after);
}

class PtrEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PtrEquivalence, RestructureThenAutoropesMatchesOriginalRecursion) {
  LinearTree tree = random_binary_tree(70, GetParam());
  ir::World w = make_world(tree);
  ir::TraversalFunc original = inorder_ir();
  ir::TraversalFunc ptr = ir::restructure_to_ptr(original);
  ir::TraversalFunc iterative = ir::autoropes_rewrite(ptr);

  std::int64_t ps_orig = 5, ps_ptr = 5, ps_iter = 5;
  auto t_orig = ir::interpret_recursive(original, w, 0, 1, ps_orig);
  auto t_ptr = ir::interpret_recursive(ptr, w, 0, 1, ps_ptr);
  auto t_iter = ir::interpret_autoropes(iterative, w, 0, 1, ps_iter);

  EXPECT_EQ(t_orig, t_ptr);
  EXPECT_EQ(t_orig, t_iter);
  EXPECT_EQ(ps_orig, ps_ptr);      // identical update sequences...
  EXPECT_EQ(ps_orig, ps_iter);     // ...through the whole pipeline
}

INSTANTIATE_TEST_SUITE_P(Seeds, PtrEquivalence,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(PtrRestructure, MultipleInterveningUpdates) {
  // call; u1; u2; call -- both updates ride the second call, in order.
  ir::TraversalFunc f;
  f.blocks.resize(1);
  auto call = [](int id, int slot) {
    ir::Stmt s;
    s.kind = ir::Stmt::Kind::kCall;
    s.id = id;
    s.child_slot = slot;
    return s;
  };
  ir::Stmt u1, u2;
  u1.kind = u2.kind = ir::Stmt::Kind::kUpdate;
  u1.id = 1;
  u2.id = 2;
  f.blocks[0].stmts = {call(0, 0), u1, u2, call(1, 1)};
  f.blocks[0].term = ir::Block::Term::kReturn;
  ir::TraversalFunc out = ir::restructure_to_ptr(f);
  ASSERT_EQ(out.blocks[0].stmts.size(), 2u);
  EXPECT_EQ(out.blocks[0].stmts[1].deferred_updates,
            (std::vector<int>{1, 2}));

  LinearTree tree = random_binary_tree(40, 99);
  ir::World w = make_world(tree);
  std::int64_t a = 7, b = 7;
  auto ta = ir::interpret_recursive(f, w, 0, 0, a);
  auto tb = ir::interpret_autoropes(ir::autoropes_rewrite(out), w, 0, 0, b);
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(a, b);
}

TEST(PtrRestructure, SkippedCallStillRunsDeferredWork) {
  // Tree where the right child is absent: update 1 (deferred into the
  // right call) must still execute, with the parent's node.
  LinearTree t;
  t.fanout = 2;
  NodeId root = t.add_node(kNullNode, 0);
  NodeId left = t.add_node(root, 1);
  t.set_child(root, 0, left);

  ir::World w = make_world(t);
  ir::TraversalFunc original = inorder_ir();
  ir::TraversalFunc pipeline =
      ir::autoropes_rewrite(ir::restructure_to_ptr(original));
  std::int64_t a = 3, b = 3;
  ir::interpret_recursive(original, w, 0, 0, a);
  ir::interpret_autoropes(pipeline, w, 0, 0, b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tt
