#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tt {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"y", "2"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name,value\nx,1\ny,2\n");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"col1", "c2"});
  t.add_row({"longvalue", "7"});
  std::ostringstream os;
  t.write_aligned(os);
  std::string s = os.str();
  EXPECT_NE(s.find("col1"), std::string::npos);
  EXPECT_NE(s.find("longvalue"), std::string::npos);
  EXPECT_NE(s.find("7"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Format, Fixed) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(0.0, 1), "0.0");
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_percent(14.09), "1409%");
  EXPECT_EQ(fmt_percent(-0.26), "-26%");
}

TEST(Format, Scientific) {
  EXPECT_EQ(fmt_sci(12345.0, 2), "1.23e+04");
}

}  // namespace
}  // namespace tt
