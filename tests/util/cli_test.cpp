#include "util/cli.h"

#include <gtest/gtest.h>

namespace tt {
namespace {

Cli make_cli() {
  Cli cli("test");
  cli.add_flag("verbose", false, "chatty");
  cli.add_int("points", 100, "n");
  cli.add_double("theta", 0.5, "opening angle");
  cli.add_string("algo", "pc", "benchmark");
  return cli;
}

TEST(Cli, Defaults) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  EXPECT_TRUE(cli.parse(1, argv));
  EXPECT_FALSE(cli.get_flag("verbose"));
  EXPECT_EQ(cli.get_int("points"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("theta"), 0.5);
  EXPECT_EQ(cli.get_string("algo"), "pc");
}

TEST(Cli, EqualsSyntax) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--points=42", "--theta=0.25",
                        "--algo=bh", "--verbose"};
  EXPECT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("points"), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("theta"), 0.25);
  EXPECT_EQ(cli.get_string("algo"), "bh");
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, SpaceSyntax) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--points", "7"};
  EXPECT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("points"), 7);
}

TEST(Cli, NegatedFlag) {
  Cli cli("t");
  cli.add_flag("sorted", true, "x");
  const char* argv[] = {"prog", "--no-sorted"};
  EXPECT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(cli.get_flag("sorted"));
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

// The unknown-flag error enumerates every registered flag (the
// variant_from_name pattern), so a typo is self-diagnosing.
TEST(Cli, UnknownFlagErrorListsValidFlags) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus=1"};
  try {
    cli.parse(2, argv);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--bogus"), std::string::npos);
    EXPECT_NE(msg.find("--algo"), std::string::npos);
    EXPECT_NE(msg.find("--points"), std::string::npos);
    EXPECT_NE(msg.find("--theta"), std::string::npos);
    EXPECT_NE(msg.find("--verbose"), std::string::npos);
  }
}

TEST(Cli, BadIntThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--points=abc"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--points"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  testing::internal::CaptureStdout();
  EXPECT_FALSE(cli.parse(2, argv));
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("--points"), std::string::npos);
}

TEST(Cli, PositionalRejected) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, WrongTypeAccessIsLogicError) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_THROW((void)cli.get_int("verbose"), std::logic_error);
  EXPECT_THROW((void)cli.get_flag("points"), std::logic_error);
}

}  // namespace
}  // namespace tt
