#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

namespace tt {
namespace {

TEST(Pcg32, DeterministicForSeed) {
  Pcg32 a(123, 7), b(123, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, DistinctStreamsDiffer) {
  Pcg32 a(123, 1), b(123, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Pcg32, DistinctSeedsDiffer) {
  Pcg32 a(1, 7), b(2, 7);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 rng(99);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Pcg32, NextBelowRespectsBound) {
  Pcg32 rng(5);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Pcg32, NextBelowCoversRange) {
  Pcg32 rng(6);
  std::array<int, 8> hits{};
  for (int i = 0; i < 8000; ++i) ++hits[rng.next_below(8)];
  for (int h : hits) EXPECT_GT(h, 700);  // each bucket near 1000
}

TEST(Pcg32, UniformRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Pcg32, NormalMomentsApproximate) {
  Pcg32 rng(8);
  double sum = 0, sumsq = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.normal();
    sum += v;
    sumsq += v * v;
  }
  double mean = sum / kN;
  double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Pcg32, NormalWithParams) {
  Pcg32 rng(9);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / kN, 5.0, 0.02);
}

TEST(Pcg32, WorksWithStdShuffle) {
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  Pcg32 rng(10);
  std::shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));  // astronomically unlikely
}

}  // namespace
}  // namespace tt
