#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace tt {
namespace {

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(42.0);
  Summary s = rs.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(v);
  Summary s = rs.summary();
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Pcg32 rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.normal(3.0, 2.0);
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Summarize, SpanOverload) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_EQ(s.count, 3u);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(RunningStats, WelfordStableForLargeOffset) {
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) rs.add(1e9 + (i % 2));
  EXPECT_NEAR(rs.variance(), 0.25, 1e-6);
}

}  // namespace
}  // namespace tt
