#include "spatial/point_set.h"

#include <gtest/gtest.h>

#include <vector>

namespace tt {
namespace {

TEST(PointSet, RejectsBadDim) {
  EXPECT_THROW(PointSet(0, 4), std::invalid_argument);
  EXPECT_THROW(PointSet(kMaxDim + 1, 4), std::invalid_argument);
}

TEST(PointSet, SetAndGet) {
  PointSet p(3, 2);
  p.set(0, 0, 1.f);
  p.set(0, 1, 2.f);
  p.set(1, 2, 5.f);
  EXPECT_FLOAT_EQ(p.at(0, 0), 1.f);
  EXPECT_FLOAT_EQ(p.at(0, 1), 2.f);
  EXPECT_FLOAT_EQ(p.at(1, 2), 5.f);
  EXPECT_FLOAT_EQ(p.at(1, 0), 0.f);
}

TEST(PointSet, PlaneIsContiguousPerDimension) {
  PointSet p(2, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    p.set(i, 0, static_cast<float>(i));
    p.set(i, 1, static_cast<float>(10 + i));
  }
  auto x = p.plane(0);
  auto y = p.plane(1);
  ASSERT_EQ(x.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(x[i], static_cast<float>(i));
    EXPECT_FLOAT_EQ(y[i], static_cast<float>(10 + i));
  }
}

TEST(PointSet, Gather) {
  PointSet p(4, 2);
  for (int d = 0; d < 4; ++d) p.set(1, d, static_cast<float>(d * d));
  float out[4];
  p.gather(1, out);
  for (int d = 0; d < 4; ++d) EXPECT_FLOAT_EQ(out[d], static_cast<float>(d * d));
}

TEST(PointSet, PermuteReordersAllDims) {
  PointSet p(2, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    p.set(i, 0, static_cast<float>(i));
    p.set(i, 1, static_cast<float>(100 + i));
  }
  std::vector<std::uint32_t> perm{2, 0, 1};
  p.permute(perm);
  EXPECT_FLOAT_EQ(p.at(0, 0), 2.f);
  EXPECT_FLOAT_EQ(p.at(1, 0), 0.f);
  EXPECT_FLOAT_EQ(p.at(2, 0), 1.f);
  EXPECT_FLOAT_EQ(p.at(0, 1), 102.f);
}

TEST(PointSet, PermuteSizeMismatchThrows) {
  PointSet p(2, 3);
  std::vector<std::uint32_t> bad{0, 1};
  EXPECT_THROW(p.permute(bad), std::invalid_argument);
}

TEST(PointSet, SqDist) {
  PointSet p(2, 1);
  p.set(0, 0, 3.f);
  p.set(0, 1, 4.f);
  float q[2] = {0.f, 0.f};
  EXPECT_DOUBLE_EQ(p.sq_dist(0, q), 25.0);
}

}  // namespace
}  // namespace tt
