#include "spatial/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "data/generators.h"

namespace tt {
namespace {

TEST(KdTree, EmptyInputThrows) {
  PointSet empty(3, 0);
  EXPECT_THROW(build_kdtree(empty, 4), std::invalid_argument);
  EXPECT_THROW(build_kdtree_nn(empty), std::invalid_argument);
}

TEST(KdTree, BadLeafSizeThrows) {
  PointSet p = gen_uniform(10, 3, 1);
  EXPECT_THROW(build_kdtree(p, 0), std::invalid_argument);
}

TEST(KdTree, SinglePoint) {
  PointSet p(2, 1);
  p.set(0, 0, 1.f);
  KdTree t = build_kdtree(p, 4);
  EXPECT_EQ(t.topo.n_nodes, 1);
  EXPECT_TRUE(t.topo.is_leaf(0));
  EXPECT_EQ(t.leaf_begin[0], 0);
  EXPECT_EQ(t.leaf_end[0], 1);
}

TEST(KdTree, LeavesPartitionThePoints) {
  PointSet p = gen_uniform(500, 5, 2);
  KdTree t = build_kdtree(p, 8);
  std::vector<int> seen(500, 0);
  std::size_t total = 0;
  for (NodeId n = 0; n < t.topo.n_nodes; ++n) {
    if (!t.topo.is_leaf(n)) continue;
    EXPECT_LE(t.leaf_end[n] - t.leaf_begin[n], 8);
    for (std::int32_t i = t.leaf_begin[n]; i < t.leaf_end[n]; ++i) {
      ++seen[t.data_perm[static_cast<std::size_t>(i)]];
      ++total;
    }
  }
  EXPECT_EQ(total, 500u);
  for (int s : seen) EXPECT_EQ(s, 1);  // every point in exactly one leaf
}

TEST(KdTree, BoxesContainTheirPoints) {
  PointSet p = gen_uniform(300, 4, 3);
  KdTree t = build_kdtree(p, 4);
  for (NodeId n = 0; n < t.topo.n_nodes; ++n) {
    for (std::int32_t i = t.leaf_begin[n]; i < t.leaf_end[n]; ++i) {
      std::uint32_t pt = t.data_perm[static_cast<std::size_t>(i)];
      for (int d = 0; d < t.dim; ++d) {
        EXPECT_LE(t.bbox_min[static_cast<std::size_t>(n) * t.dim + d],
                  p.at(pt, d));
        EXPECT_GE(t.bbox_max[static_cast<std::size_t>(n) * t.dim + d],
                  p.at(pt, d));
      }
    }
  }
}

TEST(KdTree, ChildBoxesInsideParent) {
  PointSet p = gen_uniform(300, 3, 4);
  KdTree t = build_kdtree(p, 4);
  for (NodeId n = 0; n < t.topo.n_nodes; ++n) {
    for (int k = 0; k < 2; ++k) {
      NodeId c = t.topo.child(n, k);
      if (c == kNullNode) continue;
      for (int d = 0; d < t.dim; ++d) {
        EXPECT_GE(t.bbox_min[static_cast<std::size_t>(c) * t.dim + d],
                  t.bbox_min[static_cast<std::size_t>(n) * t.dim + d]);
        EXPECT_LE(t.bbox_max[static_cast<std::size_t>(c) * t.dim + d],
                  t.bbox_max[static_cast<std::size_t>(n) * t.dim + d]);
      }
    }
  }
}

TEST(KdTree, BoxSqDistZeroInside) {
  PointSet p = gen_uniform(100, 3, 5);
  KdTree t = build_kdtree(p, 8);
  float q[3] = {p.at(0, 0), p.at(0, 1), p.at(0, 2)};
  EXPECT_DOUBLE_EQ(t.box_sq_dist(0, q), 0.0);
}

TEST(KdTree, BoxSqDistOutside) {
  PointSet p(2, 2);
  p.set(0, 0, 0.f);
  p.set(0, 1, 0.f);
  p.set(1, 0, 1.f);
  p.set(1, 1, 1.f);
  KdTree t = build_kdtree(p, 2);
  float q[2] = {4.f, 5.f};  // dx=3, dy=4 from the box corner (1,1)
  EXPECT_DOUBLE_EQ(t.box_sq_dist(0, q), 25.0);
}

TEST(KdTree, IdenticalPointsTerminate) {
  PointSet p(3, 100);  // all zeros
  KdTree t = build_kdtree(p, 4);
  EXPECT_EQ(t.topo.n_nodes, 1);  // unsplittable slab becomes one big leaf
  EXPECT_EQ(t.leaf_end[0] - t.leaf_begin[0], 100);
}

TEST(KdTreeNN, EveryPointStoredExactlyOnce) {
  PointSet p = gen_uniform(257, 4, 6);
  KdTreeNN t = build_kdtree_nn(p);
  EXPECT_EQ(t.topo.n_nodes, 257);
  std::vector<int> seen(257, 0);
  for (NodeId n = 0; n < t.topo.n_nodes; ++n) ++seen[t.point_id[n]];
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(KdTreeNN, SplitInvariantHolds) {
  PointSet p = gen_uniform(200, 3, 7);
  KdTreeNN t = build_kdtree_nn(p);
  // DFS subtree extents: subtree of n spans ids [n, n + size(n)).
  std::vector<NodeId> subtree_end(static_cast<std::size_t>(t.topo.n_nodes));
  for (NodeId n = static_cast<NodeId>(t.topo.n_nodes) - 1; n >= 0; --n) {
    NodeId end = n + 1;
    for (int k = 0; k < 2; ++k) {
      NodeId c = t.topo.child(n, k);
      if (c != kNullNode) end = std::max(end, subtree_end[c]);
    }
    subtree_end[n] = end;
  }
  // Every node in the below (above) subtree has coord <= (>=) the node's
  // coord on its split dimension.
  for (NodeId n = 0; n < t.topo.n_nodes; ++n) {
    int sd = t.split_dim[n];
    float sv = t.coords[static_cast<std::size_t>(n) * t.dim + sd];
    NodeId below = t.topo.child(n, KdTreeNN::kBelow);
    NodeId above = t.topo.child(n, KdTreeNN::kAbove);
    if (below != kNullNode) {
      for (NodeId m = below; m < subtree_end[below]; ++m)
        ASSERT_LE(t.coords[static_cast<std::size_t>(m) * t.dim + sd], sv);
    }
    if (above != kNullNode) {
      for (NodeId m = above; m < subtree_end[above]; ++m)
        ASSERT_GE(t.coords[static_cast<std::size_t>(m) * t.dim + sd], sv);
    }
  }
}

TEST(KdTreeNN, CoordsMatchPointIds) {
  PointSet p = gen_uniform(64, 5, 8);
  KdTreeNN t = build_kdtree_nn(p);
  for (NodeId n = 0; n < t.topo.n_nodes; ++n)
    for (int d = 0; d < t.dim; ++d)
      EXPECT_FLOAT_EQ(t.coords[static_cast<std::size_t>(n) * t.dim + d],
                      p.at(static_cast<std::size_t>(t.point_id[n]), d));
}

}  // namespace
}  // namespace tt
