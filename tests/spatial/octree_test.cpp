#include "spatial/octree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"

namespace tt {
namespace {

TEST(Octree, RejectsBadInput) {
  PointSet p2(2, 4);
  std::vector<float> m(4, 1.f);
  EXPECT_THROW(build_octree(p2, m), std::invalid_argument);
  PointSet p3(3, 0);
  EXPECT_THROW(build_octree(p3, {}), std::invalid_argument);
  PointSet p(3, 4);
  std::vector<float> short_m(3, 1.f);
  EXPECT_THROW(build_octree(p, short_m), std::invalid_argument);
}

TEST(Octree, SingleBody) {
  PointSet p(3, 1);
  p.set(0, 0, 1.f);
  std::vector<float> m{2.f};
  Octree t = build_octree(p, m);
  EXPECT_EQ(t.topo.n_nodes, 1);
  EXPECT_FLOAT_EQ(t.mass[0], 2.f);
  EXPECT_FLOAT_EQ(t.com_x[0], 1.f);
}

TEST(Octree, MassConservation) {
  BodySet b = gen_plummer(1000, 3);
  Octree t = build_octree(b.pos, b.mass);
  double total = 0;
  for (std::size_t i = 0; i < 1000; ++i) total += b.mass[i];
  EXPECT_NEAR(t.mass[0], total, 1e-3 * total);
}

TEST(Octree, RootComIsGlobalCom) {
  BodySet b = gen_random_bodies(500, 4);
  Octree t = build_octree(b.pos, b.mass);
  double mx = 0, m = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    mx += static_cast<double>(b.mass[i]) * b.pos.at(i, 0);
    m += b.mass[i];
  }
  EXPECT_NEAR(t.com_x[0], mx / m, 1e-4);
}

TEST(Octree, EveryBodyInExactlyOneLeaf) {
  BodySet b = gen_plummer(700, 5);
  Octree t = build_octree(b.pos, b.mass);
  std::vector<int> seen(700, 0);
  for (NodeId n = 0; n < t.topo.n_nodes; ++n) {
    if (!t.topo.is_leaf(n)) continue;
    for (std::int32_t i = t.leaf_begin[n]; i < t.leaf_end[n]; ++i)
      ++seen[t.body_perm[static_cast<std::size_t>(i)]];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Octree, ParentMassEqualsChildSum) {
  BodySet b = gen_random_bodies(300, 6);
  Octree t = build_octree(b.pos, b.mass);
  for (NodeId n = 0; n < t.topo.n_nodes; ++n) {
    if (t.topo.is_leaf(n)) continue;
    double sum = 0;
    for (int o = 0; o < 8; ++o) {
      NodeId c = t.topo.child(n, o);
      if (c != kNullNode) sum += t.mass[c];
    }
    EXPECT_NEAR(t.mass[n], sum, 1e-5 * std::max(1.0, sum));
  }
}

TEST(Octree, HalfWidthHalvesPerLevel) {
  BodySet b = gen_random_bodies(300, 7);
  Octree t = build_octree(b.pos, b.mass);
  for (NodeId n = 1; n < t.topo.n_nodes; ++n) {
    NodeId p = t.topo.parent[n];
    EXPECT_FLOAT_EQ(t.half_width[n], t.half_width[p] * 0.5f);
  }
}

TEST(Octree, CoincidentBodiesBucketAtMaxDepth) {
  PointSet p(3, 50);  // all at origin
  std::vector<float> m(50, 1.f);
  Octree t = build_octree(p, m, /*max_depth=*/8);
  // No infinite recursion; the deepest node holds all 50 bodies.
  bool found_bucket = false;
  for (NodeId n = 0; n < t.topo.n_nodes; ++n)
    if (t.topo.is_leaf(n) && t.leaf_end[n] - t.leaf_begin[n] == 50)
      found_bucket = true;
  EXPECT_TRUE(found_bucket);
  EXPECT_LE(t.topo.max_depth(), 8);
}

TEST(Octree, ValidatesTopology) {
  BodySet b = gen_plummer(200, 8);
  Octree t = build_octree(b.pos, b.mass);
  EXPECT_NO_THROW(t.topo.validate());
  EXPECT_EQ(t.topo.fanout, 8);
}

}  // namespace
}  // namespace tt
