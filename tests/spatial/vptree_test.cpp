#include "spatial/vptree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/generators.h"

namespace tt {
namespace {

TEST(VpTree, RejectsEmpty) {
  PointSet p(3, 0);
  EXPECT_THROW(build_vptree(p, 1), std::invalid_argument);
}

TEST(VpTree, EveryPointIsVantageOnce) {
  PointSet p = gen_uniform(333, 4, 11);
  VpTree t = build_vptree(p, 1);
  EXPECT_EQ(t.topo.n_nodes, 333);
  std::vector<int> seen(333, 0);
  for (NodeId n = 0; n < t.topo.n_nodes; ++n) ++seen[t.point_id[n]];
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(VpTree, InsideOutsideInvariant) {
  PointSet p = gen_uniform(400, 3, 12);
  VpTree t = build_vptree(p, 13);
  // For each node: all vantage points in the inside subtree are within mu
  // of this node's vantage point; outside subtree at >= mu.
  for (NodeId n = 0; n < t.topo.n_nodes; ++n) {
    if (t.topo.is_leaf(n)) continue;
    float q[kMaxDim];
    for (int d = 0; d < t.dim; ++d)
      q[d] = t.coords[static_cast<std::size_t>(n) * t.dim + d];
    NodeId inside = t.topo.child(n, VpTree::kInside);
    NodeId outside = t.topo.child(n, VpTree::kOutside);
    auto dist_to = [&](NodeId m) {
      double d2 = 0;
      for (int d = 0; d < t.dim; ++d) {
        double delta =
            static_cast<double>(t.coords[static_cast<std::size_t>(m) * t.dim + d]) -
            q[d];
        d2 += delta * delta;
      }
      return std::sqrt(d2);
    };
    // Subtree DFS ranges: inside = [inside, outside or end).
    if (inside != kNullNode) {
      NodeId end = outside != kNullNode ? outside
                                        : static_cast<NodeId>(t.topo.n_nodes);
      // Sample the subtree (it can be large).
      for (NodeId m = inside; m < end; ++m)
        ASSERT_LE(dist_to(m), t.mu[n] + 1e-4) << "node " << m;
    }
  }
}

TEST(VpTree, OutsideSubtreeBeyondMu) {
  PointSet p = gen_uniform(200, 2, 13);
  VpTree t = build_vptree(p, 14);
  for (NodeId n = 0; n < t.topo.n_nodes; ++n) {
    NodeId outside = t.topo.child(n, VpTree::kOutside);
    if (outside == kNullNode) continue;
    float q[kMaxDim];
    for (int d = 0; d < t.dim; ++d)
      q[d] = t.coords[static_cast<std::size_t>(n) * t.dim + d];
    // The outside subtree occupies DFS ids [outside, end of n's subtree).
    // Its first node is enough for a spot check plus all direct elements:
    double d2 = 0;
    for (int d = 0; d < t.dim; ++d) {
      double delta =
          static_cast<double>(
              t.coords[static_cast<std::size_t>(outside) * t.dim + d]) -
          q[d];
      d2 += delta * delta;
    }
    EXPECT_GE(std::sqrt(d2), t.mu[n] - 1e-4);
  }
}

TEST(VpTree, DeterministicForSeed) {
  PointSet p = gen_uniform(100, 3, 14);
  VpTree a = build_vptree(p, 7);
  VpTree b = build_vptree(p, 7);
  EXPECT_EQ(a.point_id, b.point_id);
  EXPECT_EQ(a.mu, b.mu);
}

TEST(VpTree, DifferentSeedsDiffer) {
  PointSet p = gen_uniform(100, 3, 15);
  VpTree a = build_vptree(p, 7);
  VpTree b = build_vptree(p, 8);
  EXPECT_NE(a.point_id, b.point_id);
}

TEST(VpTree, TopologyValid) {
  PointSet p = gen_uniform(512, 5, 16);
  VpTree t = build_vptree(p, 17);
  EXPECT_NO_THROW(t.topo.validate());
}

}  // namespace
}  // namespace tt
