#include "spatial/relayout.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "bench_algos/pc/point_correlation.h"
#include "core/cpu_executors.h"
#include "core/static_ropes.h"
#include "data/generators.h"

namespace tt {
namespace {

TEST(Relayout, BfsOrderIsPermutationWithRootFirst) {
  PointSet pts = gen_uniform(300, 4, 1);
  KdTree tree = build_kdtree(pts, 8);
  auto order = bfs_order(tree.topo);
  EXPECT_EQ(order.front(), 0);
  std::vector<NodeId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId i = 0; i < tree.topo.n_nodes; ++i)
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Relayout, BfsVisitsShallowBeforeDeep) {
  PointSet pts = gen_uniform(300, 4, 2);
  KdTree tree = build_kdtree(pts, 8);
  auto order = bfs_order(tree.topo);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_GE(tree.topo.depth[order[i]], tree.topo.depth[order[i - 1]]);
}

TEST(Relayout, TopologyConsistentAfterRelayout) {
  PointSet pts = gen_uniform(257, 3, 3);
  KdTree tree = build_kdtree(pts, 4);
  LinearTree bfs = relayout(tree.topo, bfs_order(tree.topo));
  ASSERT_EQ(bfs.n_nodes, tree.topo.n_nodes);
  EXPECT_EQ(bfs.parent[0], kNullNode);
  for (NodeId n = 0; n < bfs.n_nodes; ++n) {
    for (int k = 0; k < bfs.fanout; ++k) {
      NodeId c = bfs.child(n, k);
      if (c == kNullNode) continue;
      EXPECT_EQ(bfs.parent[c], n);
      EXPECT_EQ(bfs.depth[c], bfs.depth[n] + 1);
      EXPECT_GT(c, n);  // BFS numbers parents before children
    }
  }
}

TEST(Relayout, KdTreeResultsIdentical) {
  PointSet pts = gen_covtype_like(800, 7, 4);
  KdTree dfs = build_kdtree(pts, 8);
  KdTree bfs = relayout_kdtree_bfs(dfs);
  float r = pc_pick_radius(pts, 16, 4);
  GpuAddressSpace s1, s2;
  PointCorrelationKernel k1(dfs, pts, r, s1);
  PointCorrelationKernel k2(bfs, pts, r, s2);
  auto r1 = run_cpu(k1, CpuVariant::kRecursive, 1);
  auto r2 = run_cpu(k2, CpuVariant::kRecursive, 1);
  EXPECT_EQ(r1.results, r2.results);
  EXPECT_EQ(r1.total_visits, r2.total_visits);
}

TEST(Relayout, StaticRopesRejectBfsLayout) {
  PointSet pts = gen_uniform(200, 3, 5);
  KdTree dfs = build_kdtree(pts, 8);
  KdTree bfs = relayout_kdtree_bfs(dfs);
  EXPECT_NO_THROW(install_ropes(dfs.topo));
  EXPECT_THROW(install_ropes(bfs.topo), std::invalid_argument);
}

TEST(Relayout, RejectsBadPermutation) {
  PointSet pts = gen_uniform(50, 3, 6);
  KdTree tree = build_kdtree(pts, 8);
  std::vector<NodeId> short_perm{0, 1};
  EXPECT_THROW(relayout(tree.topo, short_perm), std::invalid_argument);
}

}  // namespace
}  // namespace tt
