#include "spatial/linear_tree.h"

#include <gtest/gtest.h>

namespace tt {
namespace {

LinearTree chain3() {
  LinearTree t;
  t.fanout = 2;
  NodeId a = t.add_node(kNullNode, 0);
  NodeId b = t.add_node(a, 1);
  t.set_child(a, 0, b);
  NodeId c = t.add_node(b, 2);
  t.set_child(b, 0, c);
  return t;
}

TEST(LinearTree, ValidChainPasses) {
  LinearTree t = chain3();
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.max_depth(), 2);
  EXPECT_TRUE(t.is_leaf(2));
  EXPECT_FALSE(t.is_leaf(0));
}

TEST(LinearTree, SetChildTracksCount) {
  LinearTree t;
  t.fanout = 2;
  NodeId a = t.add_node(kNullNode, 0);
  EXPECT_EQ(t.n_children[a], 0);
  NodeId b = t.add_node(a, 1);
  t.set_child(a, 0, b);
  EXPECT_EQ(t.n_children[a], 1);
  NodeId c = t.add_node(a, 1);
  t.set_child(a, 1, c);
  EXPECT_EQ(t.n_children[a], 2);
}

TEST(LinearTree, RightOnlyChildAllowed) {
  LinearTree t;
  t.fanout = 2;
  NodeId a = t.add_node(kNullNode, 0);
  NodeId b = t.add_node(a, 1);
  t.set_child(a, 1, b);  // only the "above" slot
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.child(a, 0), kNullNode);
  EXPECT_EQ(t.child(a, 1), b);
}

TEST(LinearTree, DetectsEmptyTree) {
  LinearTree t;
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(LinearTree, DetectsParentMismatch) {
  LinearTree t = chain3();
  t.parent[2] = 0;  // corrupt
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(LinearTree, DetectsDepthMismatch) {
  LinearTree t = chain3();
  t.depth[2] = 7;
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(LinearTree, DetectsNotLeftBiased) {
  LinearTree t;
  t.fanout = 2;
  NodeId a = t.add_node(kNullNode, 0);
  NodeId b = t.add_node(a, 1);  // id 1
  NodeId c = t.add_node(a, 1);  // id 2
  // First child points at the *later* node: breaks DFS left-bias.
  t.set_child(a, 0, c);
  t.set_child(a, 1, b);
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(LinearTree, DetectsUnreachable) {
  LinearTree t = chain3();
  // Orphan node: reachable check should fire (node 3 has no parent link).
  t.add_node(2, 3);  // parent says 2, but 2 never links it
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(LinearTree, DetectsCountCorruption) {
  LinearTree t = chain3();
  t.n_children[0] = 2;
  EXPECT_THROW(t.validate(), std::logic_error);
}

}  // namespace
}  // namespace tt
