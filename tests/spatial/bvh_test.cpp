#include "spatial/bvh.h"

#include <gtest/gtest.h>

#include <cmath>

#include "bench_algos/ray/ray_bvh.h"

namespace tt {
namespace {

TEST(Vec3, Algebra) {
  Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_FLOAT_EQ(dot(a, b), 32.f);
  Vec3 c = cross(Vec3{1, 0, 0}, Vec3{0, 1, 0});
  EXPECT_FLOAT_EQ(c.z, 1.f);
  EXPECT_FLOAT_EQ((a + b).x, 5.f);
  EXPECT_FLOAT_EQ((b - a).y, 3.f);
  EXPECT_FLOAT_EQ((a * 2.f)[2], 6.f);
}

TEST(RayTriangle, DirectHit) {
  Triangle t{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}};
  float hit = ray_triangle({0.5f, 0.5f, 0}, {0, 0, 1}, t, 100.f);
  EXPECT_FLOAT_EQ(hit, 5.f);
}

TEST(RayTriangle, MissOutsideBarycentric) {
  Triangle t{{0, 0, 5}, {1, 0, 5}, {0, 1, 5}};
  EXPECT_TRUE(std::isinf(ray_triangle({2.f, 2.f, 0}, {0, 0, 1}, t, 100.f)));
}

TEST(RayTriangle, BehindOriginMisses) {
  Triangle t{{0, 0, -5}, {1, 0, -5}, {0, 1, -5}};
  EXPECT_TRUE(std::isinf(ray_triangle({0.2f, 0.2f, 0}, {0, 0, 1}, t, 100.f)));
}

TEST(RayTriangle, ParallelMisses) {
  Triangle t{{0, 0, 5}, {1, 0, 5}, {0, 1, 5}};
  EXPECT_TRUE(std::isinf(ray_triangle({0, 0, 0}, {1, 0, 0}, t, 100.f)));
}

TEST(RayTriangle, RespectsTMax) {
  Triangle t{{0, 0, 5}, {2, 0, 5}, {0, 2, 5}};
  EXPECT_TRUE(std::isinf(ray_triangle({0.5f, 0.5f, 0}, {0, 0, 1}, t, 4.f)));
}

TEST(Bvh, RejectsBadInput) {
  TriangleMesh empty;
  EXPECT_THROW(build_bvh(empty, 4), std::invalid_argument);
  TriangleMesh one = gen_triangle_scene(1, 1);
  EXPECT_THROW(build_bvh(one, 0), std::invalid_argument);
}

TEST(Bvh, LeavesPartitionTriangles) {
  TriangleMesh mesh = gen_triangle_scene(500, 2);
  Bvh bvh = build_bvh(mesh, 4);
  std::vector<int> seen(500, 0);
  for (NodeId n = 0; n < bvh.topo.n_nodes; ++n) {
    if (!bvh.topo.is_leaf(n)) continue;
    EXPECT_LE(bvh.leaf_end[n] - bvh.leaf_begin[n], 4);
    for (std::int32_t i = bvh.leaf_begin[n]; i < bvh.leaf_end[n]; ++i)
      ++seen[bvh.tri_perm[static_cast<std::size_t>(i)]];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Bvh, BoxesContainTriangles) {
  TriangleMesh mesh = gen_triangle_scene(300, 3);
  Bvh bvh = build_bvh(mesh, 4);
  for (NodeId n = 0; n < bvh.topo.n_nodes; ++n) {
    for (std::int32_t i = bvh.leaf_begin[n]; i < bvh.leaf_end[n]; ++i) {
      const Triangle& t = mesh.tris[bvh.tri_perm[static_cast<std::size_t>(i)]];
      for (const Vec3& v : {t.v0, t.v1, t.v2}) {
        EXPECT_GE(v.x, bvh.box_min_x[n] - 1e-5f);
        EXPECT_LE(v.x, bvh.box_max_x[n] + 1e-5f);
        EXPECT_GE(v.y, bvh.box_min_y[n] - 1e-5f);
        EXPECT_LE(v.y, bvh.box_max_y[n] + 1e-5f);
        EXPECT_GE(v.z, bvh.box_min_z[n] - 1e-5f);
        EXPECT_LE(v.z, bvh.box_max_z[n] + 1e-5f);
      }
    }
  }
}

TEST(Bvh, BoxEntrySemantics) {
  TriangleMesh mesh;
  mesh.tris.push_back({{1, 1, 1}, {2, 1, 2}, {1, 2, 1.5f}});
  Bvh bvh = build_bvh(mesh, 4);  // box [1,2] x [1,2] x [1,2]
  // Ray along +x starting inside the box's y/z range: enters at x == 1.
  float t = bvh.box_entry(0, {0, 1.5f, 1.5f}, {1, 1e12f, 1e12f}, 100.f);
  EXPECT_GT(t, 0.9f);
  EXPECT_LT(t, 1.1f);
  // Pointing away: missed.
  EXPECT_TRUE(std::isinf(
      bvh.box_entry(0, {0, 1.5f, 1.5f}, {-1, 1e12f, 1e12f}, 100.f)));
  // Beyond t_max: missed.
  EXPECT_TRUE(std::isinf(
      bvh.box_entry(0, {0, 1.5f, 1.5f}, {1, 1e12f, 1e12f}, 0.5f)));
}

TEST(Bvh, CameraRaysCoherent) {
  auto rays = gen_camera_rays(8, 8, {0.5f, 0.5f, -2}, {0.5f, 0.5f, 0.5f});
  ASSERT_EQ(rays.size(), 64u);
  // Adjacent rays nearly parallel.
  float d = dot(rays[0].dir, rays[1].dir) /
            std::sqrt(dot(rays[0].dir, rays[0].dir) *
                      dot(rays[1].dir, rays[1].dir));
  EXPECT_GT(d, 0.95f);
}

TEST(Bvh, CameraRaysRejectBadSize) {
  EXPECT_THROW(gen_camera_rays(0, 8, {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace tt
