#include "simt/executor.h"

#include <gtest/gtest.h>

#include "simt/warp_memory.h"

namespace tt {
namespace {

TEST(RunWarps, ReturnsPerWarpStatsInOrder) {
  DeviceConfig cfg;
  auto per_warp = run_warps(8, cfg, [](std::size_t w, KernelStats& s,
                                       L2Cache*) {
    s.lane_visits = w + 1;
    s.instr_cycles = 100.0 * (w + 1);
  });
  ASSERT_EQ(per_warp.size(), 8u);
  for (std::size_t w = 0; w < 8; ++w) {
    EXPECT_EQ(per_warp[w].lane_visits, w + 1);
    EXPECT_DOUBLE_EQ(per_warp[w].instr_cycles, 100.0 * (w + 1));
  }
}

TEST(RunWarps, MergeStatsSums) {
  DeviceConfig cfg;
  auto per_warp = run_warps(
      5, cfg, [](std::size_t, KernelStats& s, L2Cache*) { s.lane_visits = 2; });
  KernelStats total = merge_stats(per_warp);
  EXPECT_EQ(total.lane_visits, 10u);
}

TEST(RunWarps, InstrCyclesExtraction) {
  DeviceConfig cfg;
  auto per_warp = run_warps(3, cfg, [](std::size_t w, KernelStats& s,
                                       L2Cache*) { s.instr_cycles = 7.0 * w; });
  auto cycles = instr_cycles_of(per_warp);
  EXPECT_EQ(cycles, (std::vector<double>{0.0, 7.0, 14.0}));
}

TEST(RunWarps, ZeroWarpsIsEmpty) {
  DeviceConfig cfg;
  auto per_warp =
      run_warps(0, cfg, [](std::size_t, KernelStats&, L2Cache*) { FAIL(); });
  EXPECT_TRUE(per_warp.empty());
}

TEST(RunWarps, L2SlicesArePrivatePerWarp) {
  // Two warps touching the same address must BOTH miss: slices are not
  // shared (this is what makes the simulation order-independent).
  DeviceConfig cfg;
  cfg.model_l2 = true;
  GpuAddressSpace space;
  BufferId buf = space.register_buffer("b", 4, 1024);
  auto per_warp =
      run_warps(2, cfg, [&](std::size_t, KernelStats& s, L2Cache* l2) {
        WarpMemory mem(space, cfg, l2, s);
        for (int rep = 0; rep < 2; ++rep) {
          for (int l = 0; l < 32; ++l) mem.lane_load(l, buf, l);
          mem.commit();
        }
      });
  for (const KernelStats& s : per_warp) {
    EXPECT_EQ(s.dram_transactions, 1u);    // own cold miss
    EXPECT_EQ(s.l2_hit_transactions, 1u);  // own warm hit
  }
}

TEST(RunWarps, L2SliceResetsBetweenWarps) {
  // A host thread simulates many warps with one reused slice; warp N must
  // not inherit warp N-1's contents.
  DeviceConfig cfg;
  cfg.model_l2 = true;
  GpuAddressSpace space;
  BufferId buf = space.register_buffer("b", 4, 64);
  auto per_warp =
      run_warps(16, cfg, [&](std::size_t, KernelStats& s, L2Cache* l2) {
        WarpMemory mem(space, cfg, l2, s);
        mem.lane_load(0, buf, 0);
        mem.commit();
      });
  KernelStats total = merge_stats(per_warp);
  EXPECT_EQ(total.dram_transactions, 16u);  // every warp cold-misses
  EXPECT_EQ(total.l2_hit_transactions, 0u);
}

}  // namespace
}  // namespace tt
