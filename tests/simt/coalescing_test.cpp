#include "simt/coalescing.h"

#include <gtest/gtest.h>

#include <vector>

namespace tt {
namespace {

std::size_t count(std::vector<LaneAccess> accesses) {
  std::vector<std::uint64_t> segs;
  return segments_touched(accesses, 128, segs);
}

TEST(Coalescing, EmptyWarpNoTransactions) {
  EXPECT_EQ(count({}), 0u);
}

TEST(Coalescing, FullyCoalescedWarp) {
  // 32 lanes x 4B contiguous = one 128-byte segment.
  std::vector<LaneAccess> a;
  for (int l = 0; l < 32; ++l)
    a.push_back({static_cast<std::uint64_t>(l) * 4, 4});
  EXPECT_EQ(count(a), 1u);
}

TEST(Coalescing, BroadcastIsOneTransaction) {
  std::vector<LaneAccess> a(32, LaneAccess{4096, 4});
  EXPECT_EQ(count(a), 1u);
}

TEST(Coalescing, FullyScatteredWarp) {
  // Each lane in its own segment: 32 transactions.
  std::vector<LaneAccess> a;
  for (int l = 0; l < 32; ++l)
    a.push_back({static_cast<std::uint64_t>(l) * 4096, 4});
  EXPECT_EQ(count(a), 32u);
}

TEST(Coalescing, StraddlingAccessTouchesTwoSegments) {
  EXPECT_EQ(count({{120, 16}}), 2u);  // bytes 120..135 cross the 128 line
}

TEST(Coalescing, LargeElementSpansMultipleSegments) {
  EXPECT_EQ(count({{0, 256}}), 2u);
  EXPECT_EQ(count({{0, 257}}), 3u);
}

TEST(Coalescing, MisalignedContiguousCosts2) {
  // 32 x 4B starting at byte 64: covers [64, 192) = 2 segments.
  std::vector<LaneAccess> a;
  for (int l = 0; l < 32; ++l)
    a.push_back({64 + static_cast<std::uint64_t>(l) * 4, 4});
  EXPECT_EQ(count(a), 2u);
}

TEST(Coalescing, ZeroByteAccessIgnored) {
  EXPECT_EQ(count({{0, 0}}), 0u);
}

TEST(Coalescing, StridedEveryOtherSegment) {
  // 16-byte stride over 20-byte elements: overlapping pattern still counted
  // via distinct segments.
  std::vector<LaneAccess> a;
  for (int l = 0; l < 8; ++l)
    a.push_back({static_cast<std::uint64_t>(l) * 256, 20});
  EXPECT_EQ(count(a), 8u);
}

TEST(Coalescing, OutputVectorHoldsSegmentIds) {
  std::vector<std::uint64_t> segs;
  std::vector<LaneAccess> a{{0, 4}, {128, 4}, {300, 4}};
  EXPECT_EQ(segments_touched(a, 128, segs), 3u);
  EXPECT_EQ(segs, (std::vector<std::uint64_t>{0, 1, 2}));
}

}  // namespace
}  // namespace tt
