#include "simt/cost_model.h"

#include <gtest/gtest.h>

namespace tt {
namespace {

TEST(CostModel, ComputeBound) {
  DeviceConfig cfg;
  KernelStats s;
  s.instr_cycles = 14.0 * 1.15e6;  // 1 ms worth of cycles across 14 SMs
  s.dram_bytes = 0;
  TimeBreakdown t = estimate_time(s, cfg);
  EXPECT_NEAR(t.compute_ms, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(t.memory_ms, 0.0);
  EXPECT_FALSE(t.memory_bound);
  EXPECT_DOUBLE_EQ(t.total_ms, t.compute_ms);
}

TEST(CostModel, MemoryBound) {
  DeviceConfig cfg;
  KernelStats s;
  s.instr_cycles = 0;
  s.dram_bytes = static_cast<std::uint64_t>(144e6);  // 1 ms at 144 GB/s
  TimeBreakdown t = estimate_time(s, cfg);
  EXPECT_NEAR(t.memory_ms, 1.0, 1e-9);
  EXPECT_TRUE(t.memory_bound);
  EXPECT_DOUBLE_EQ(t.total_ms, t.memory_ms);
}

TEST(CostModel, TotalIsMax) {
  DeviceConfig cfg;
  KernelStats s;
  s.instr_cycles = 14.0 * 1.15e6 * 3;          // 3 ms compute
  s.dram_bytes = static_cast<std::uint64_t>(144e6);  // 1 ms memory
  TimeBreakdown t = estimate_time(s, cfg);
  EXPECT_NEAR(t.total_ms, 3.0, 1e-9);
  EXPECT_FALSE(t.memory_bound);
}

TEST(CostModel, MoreTransactionsMoreTime) {
  DeviceConfig cfg;
  KernelStats a, b;
  a.dram_bytes = 128 * 1000;
  b.dram_bytes = 128 * 32000;  // uncoalesced: 32x the traffic
  EXPECT_GT(estimate_time(b, cfg).total_ms, estimate_time(a, cfg).total_ms);
}

TEST(CostModel, SmallGridCannotUseAllSms) {
  DeviceConfig cfg;
  KernelStats s;
  s.instr_cycles = 1e6;
  double full = estimate_time(s, cfg).compute_ms;
  double one_warp = estimate_time(s, cfg, 1).compute_ms;
  EXPECT_NEAR(one_warp, full * cfg.num_sms, 1e-12);
  // At or above num_sms warps the full chip is assumed usable.
  EXPECT_DOUBLE_EQ(
      estimate_time(s, cfg, static_cast<std::size_t>(cfg.num_sms)).compute_ms,
      full);
}

TEST(CostModel, BalancedWarpsHaveNoImbalancePenalty) {
  DeviceConfig cfg;
  KernelStats s;
  std::vector<double> warps(static_cast<std::size_t>(cfg.num_sms) * 4, 1000.0);
  for (double c : warps) s.instr_cycles += c;
  TimeBreakdown t = estimate_time_balanced(warps, s, cfg);
  EXPECT_NEAR(t.imbalance, 1.0, 1e-12);
  EXPECT_NEAR(t.compute_ms, estimate_time(s, cfg).compute_ms, 1e-12);
}

TEST(CostModel, OneHotWarpSerializes) {
  DeviceConfig cfg;
  KernelStats s;
  std::vector<double> warps(static_cast<std::size_t>(cfg.num_sms), 0.0);
  warps[0] = 14000.0;  // all the work in one warp
  s.instr_cycles = 14000.0;
  TimeBreakdown t = estimate_time_balanced(warps, s, cfg);
  // Makespan = the single warp's cycles, not total / num_sms.
  EXPECT_NEAR(t.compute_ms, 14000.0 / (cfg.clock_ghz * 1e6), 1e-12);
  EXPECT_GT(t.imbalance, 10.0);
}

TEST(CostModel, ImbalanceNeverSpeedsUp) {
  DeviceConfig cfg;
  KernelStats s;
  std::vector<double> warps{100, 900, 50, 950, 500, 500, 100, 900,
                            100, 900, 50, 950, 500, 500, 100, 900};
  for (double c : warps) s.instr_cycles += c;
  EXPECT_GE(estimate_time_balanced(warps, s, cfg).compute_ms,
            estimate_time(s, cfg, warps.size()).compute_ms - 1e-12);
}

TEST(KernelStats, MergeAddsCounters) {
  KernelStats a, b;
  a.dram_transactions = 5;
  a.instr_cycles = 10;
  a.peak_stack_entries = 3;
  b.dram_transactions = 7;
  b.instr_cycles = 4;
  b.peak_stack_entries = 9;
  a.merge(b);
  EXPECT_EQ(a.dram_transactions, 12u);
  EXPECT_DOUBLE_EQ(a.instr_cycles, 14.0);
  EXPECT_EQ(a.peak_stack_entries, 9u);  // max, not sum
}

}  // namespace
}  // namespace tt
