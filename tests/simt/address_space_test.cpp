#include "simt/address_space.h"

#include <gtest/gtest.h>

namespace tt {
namespace {

TEST(AddressSpace, BuffersDoNotOverlap) {
  GpuAddressSpace s;
  BufferId a = s.register_buffer("a", 4, 100);
  BufferId b = s.register_buffer("b", 8, 50);
  std::uint64_t a_end = s.addr(a, 99) + 4;
  EXPECT_GE(s.addr(b, 0), a_end);
}

TEST(AddressSpace, AlignedTo256) {
  GpuAddressSpace s;
  s.register_buffer("a", 4, 3);  // 12 bytes
  BufferId b = s.register_buffer("b", 4, 1);
  EXPECT_EQ(s.addr(b, 0) % 256, 0u);
}

TEST(AddressSpace, ElementStride) {
  GpuAddressSpace s;
  BufferId a = s.register_buffer("a", 20, 10);
  EXPECT_EQ(s.addr(a, 3) - s.addr(a, 0), 60u);
  EXPECT_EQ(s.elem_bytes(a), 20u);
}

TEST(AddressSpace, RejectsZeroElementSize) {
  GpuAddressSpace s;
  EXPECT_THROW(s.register_buffer("z", 0, 4), std::invalid_argument);
}

TEST(AddressSpace, EnsureBufferIsIdempotent) {
  GpuAddressSpace s;
  BufferId a = s.ensure_buffer("stack", 8, 100);
  BufferId b = s.ensure_buffer("stack", 8, 100);
  EXPECT_EQ(a, b);
  EXPECT_EQ(s.num_buffers(), 1u);
  // Smaller requests reuse; a larger one must reallocate.
  EXPECT_EQ(s.ensure_buffer("stack", 8, 50), a);
  BufferId c = s.ensure_buffer("stack", 8, 200);
  EXPECT_NE(c, a);
  // Different element size is a different buffer.
  EXPECT_NE(s.ensure_buffer("stack", 4, 100), a);
}

TEST(AddressSpace, EnsureBufferResolvesToLatestGeneration) {
  GpuAddressSpace s;
  BufferId g0 = s.ensure_buffer("stack", 1, 100);
  BufferId g1 = s.ensure_buffer("stack", 1, 200);  // grows: new generation
  ASSERT_NE(g0, g1);
  // A later, smaller request must land on the generation a launch actually
  // addresses -- the newest one -- not on the abandoned first allocation.
  // (The old forward scan returned g0 here, which mis-keyed per-buffer
  // attribution for every relaunch after a growth.)
  EXPECT_EQ(s.ensure_buffer("stack", 1, 50), g1);
  EXPECT_EQ(s.ensure_buffer("stack", 1, 200), g1);
  EXPECT_EQ(s.num_buffers(), 2u);
}

TEST(AddressSpace, BufferAtMapsLiveBytesAndPadding) {
  GpuAddressSpace s;
  BufferId a = s.register_buffer("a", 4, 3);  // live [base, base+12)
  BufferId b = s.register_buffer("b", 8, 2);
  const std::uint64_t a0 = s.addr(a, 0), b0 = s.addr(b, 0);
  EXPECT_EQ(s.buffer_at(a0), a);
  EXPECT_EQ(s.buffer_at(a0 + 11), a);
  EXPECT_EQ(s.buffer_at(a0 + 12), -1);  // alignment padding before b
  EXPECT_EQ(s.buffer_at(b0 - 1), -1);
  EXPECT_EQ(s.buffer_at(b0), b);
  EXPECT_EQ(s.buffer_at(b0 + 16), -1);  // past the last live byte
}

TEST(AddressSpace, FieldValidationThrows) {
  GpuAddressSpace s;
  EXPECT_THROW(s.register_buffer("f", 16, 4, {{"empty", 0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(s.register_buffer("f", 16, 4, {{"oob", 12, 8}}),
               std::invalid_argument);
  EXPECT_THROW(
      s.register_buffer("f", 16, 4, {{"a", 0, 8}, {"b", 4, 8}}),
      std::invalid_argument);
  // Disjoint non-covering fields are fine (the gap becomes "(other)").
  BufferId ok = s.register_buffer("f", 16, 4, {{"a", 0, 4}, {"b", 8, 4}});
  EXPECT_EQ(s.fields(ok).size(), 2u);
}

TEST(AddressSpace, FieldOverlapAcrossSegmentBoundary) {
  GpuAddressSpace s;
  // 48-byte elements: bbox [0,24), payload [24,48). Elements straddle
  // 128-byte segment boundaries (128 % 48 != 0), which is exactly the case
  // the per-segment attribution has to split correctly.
  BufferId b = s.register_buffer("n", 48, 16,
                                 {{"bbox", 0, 24}, {"payload", 24, 24}});
  const std::uint64_t base = s.addr(b, 0);
  // Segment [base, base+128): elements 0,1 whole plus elem 2's head
  // [0,32) = all 24 bbox bytes + 8 payload bytes.
  EXPECT_EQ(s.field_overlap(b, 0, base, base + 128), 24u * 2 + 24u);
  EXPECT_EQ(s.field_overlap(b, 1, base, base + 128), 24u * 2 + 8u);
  // Next segment [base+128, base+256): elem 2's tail [32,48) = 16 payload,
  // elems 3,4 whole, elem 5's head [0,16) = 16 bbox.
  EXPECT_EQ(s.field_overlap(b, 0, base + 128, base + 256), 24u * 2 + 16u);
  EXPECT_EQ(s.field_overlap(b, 1, base + 128, base + 256),
            16u + 24u * 2);
  // The two fields tile every element, so across any range the shares sum
  // to the range's live bytes.
  for (std::uint64_t lo = 0; lo < 48 * 16; lo += 37) {
    const std::uint64_t hi = std::min<std::uint64_t>(lo + 128, 48 * 16);
    EXPECT_EQ(s.field_overlap(b, 0, base + lo, base + hi) +
                  s.field_overlap(b, 1, base + lo, base + hi),
              hi - lo);
  }
  // Ranges clamped to the live extent.
  EXPECT_EQ(s.field_overlap(b, 0, base + 48 * 16, base + 48 * 16 + 128), 0u);
}

TEST(AddressSpace, NamesAndFootprint) {
  GpuAddressSpace s;
  BufferId a = s.register_buffer("nodes0", 16, 4);
  EXPECT_EQ(s.name(a), "nodes0");
  EXPECT_EQ(s.num_buffers(), 1u);
  EXPECT_GE(s.footprint_bytes(), 64u);
}

}  // namespace
}  // namespace tt
