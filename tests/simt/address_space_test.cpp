#include "simt/address_space.h"

#include <gtest/gtest.h>

namespace tt {
namespace {

TEST(AddressSpace, BuffersDoNotOverlap) {
  GpuAddressSpace s;
  BufferId a = s.register_buffer("a", 4, 100);
  BufferId b = s.register_buffer("b", 8, 50);
  std::uint64_t a_end = s.addr(a, 99) + 4;
  EXPECT_GE(s.addr(b, 0), a_end);
}

TEST(AddressSpace, AlignedTo256) {
  GpuAddressSpace s;
  s.register_buffer("a", 4, 3);  // 12 bytes
  BufferId b = s.register_buffer("b", 4, 1);
  EXPECT_EQ(s.addr(b, 0) % 256, 0u);
}

TEST(AddressSpace, ElementStride) {
  GpuAddressSpace s;
  BufferId a = s.register_buffer("a", 20, 10);
  EXPECT_EQ(s.addr(a, 3) - s.addr(a, 0), 60u);
  EXPECT_EQ(s.elem_bytes(a), 20u);
}

TEST(AddressSpace, RejectsZeroElementSize) {
  GpuAddressSpace s;
  EXPECT_THROW(s.register_buffer("z", 0, 4), std::invalid_argument);
}

TEST(AddressSpace, EnsureBufferIsIdempotent) {
  GpuAddressSpace s;
  BufferId a = s.ensure_buffer("stack", 8, 100);
  BufferId b = s.ensure_buffer("stack", 8, 100);
  EXPECT_EQ(a, b);
  EXPECT_EQ(s.num_buffers(), 1u);
  // Smaller requests reuse; a larger one must reallocate.
  EXPECT_EQ(s.ensure_buffer("stack", 8, 50), a);
  BufferId c = s.ensure_buffer("stack", 8, 200);
  EXPECT_NE(c, a);
  // Different element size is a different buffer.
  EXPECT_NE(s.ensure_buffer("stack", 4, 100), a);
}

TEST(AddressSpace, NamesAndFootprint) {
  GpuAddressSpace s;
  BufferId a = s.register_buffer("nodes0", 16, 4);
  EXPECT_EQ(s.name(a), "nodes0");
  EXPECT_EQ(s.num_buffers(), 1u);
  EXPECT_GE(s.footprint_bytes(), 64u);
}

}  // namespace
}  // namespace tt
