#include "simt/warp_memory.h"

#include <gtest/gtest.h>

namespace tt {
namespace {

struct Fixture {
  GpuAddressSpace space;
  DeviceConfig cfg;
  KernelStats stats;
  BufferId buf4, buf20;

  Fixture() {
    cfg.model_l2 = false;
    buf4 = space.register_buffer("b4", 4, 10000);
    buf20 = space.register_buffer("b20", 20, 10000);
  }
};

TEST(WarpMemory, CoalescedWarpLoadIsOneTransaction) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  for (int l = 0; l < 32; ++l) mem.lane_load(l, f.buf4, l);
  mem.commit();
  EXPECT_EQ(f.stats.dram_transactions, 1u);
  EXPECT_EQ(f.stats.load_instructions, 1u);
  EXPECT_EQ(f.stats.dram_bytes, 128u);
}

TEST(WarpMemory, BroadcastIsOneTransaction) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  for (int l = 0; l < 32; ++l) mem.lane_load(l, f.buf4, 77);
  mem.commit();
  EXPECT_EQ(f.stats.dram_transactions, 1u);
}

TEST(WarpMemory, ScatteredWarpLoadSerializes) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  for (int l = 0; l < 32; ++l) mem.lane_load(l, f.buf4, l * 64);
  mem.commit();
  EXPECT_EQ(f.stats.dram_transactions, 32u);
}

TEST(WarpMemory, TwoBuffersAreSeparateInstructions) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  for (int l = 0; l < 32; ++l) {
    mem.lane_load(l, f.buf4, l);
    mem.lane_load(l, f.buf20, l);
  }
  mem.commit();
  EXPECT_EQ(f.stats.load_instructions, 2u);
  // 32 x 20B contiguous = 640 bytes = 5 segments; plus 1 for the 4B buffer.
  EXPECT_EQ(f.stats.dram_transactions, 6u);
}

TEST(WarpMemory, UnevenTripCountsReplayTheLoad) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  // Lane 0 reads three elements, others one: 3 load instructions.
  mem.lane_load(0, f.buf4, 0);
  mem.lane_load(0, f.buf4, 1);
  mem.lane_load(0, f.buf4, 2);
  for (int l = 1; l < 32; ++l) mem.lane_load(l, f.buf4, l);
  mem.commit();
  EXPECT_EQ(f.stats.load_instructions, 3u);
}

TEST(WarpMemory, L2FiltersRepeatedSegments) {
  Fixture f;
  f.cfg.model_l2 = true;
  L2Cache l2(64 * 1024, 128, 8);
  WarpMemory mem(f.space, f.cfg, &l2, f.stats);
  for (int rep = 0; rep < 3; ++rep) {
    for (int l = 0; l < 32; ++l) mem.lane_load(l, f.buf4, l);
    mem.commit();
  }
  EXPECT_EQ(f.stats.dram_transactions, 1u);      // first touch only
  EXPECT_EQ(f.stats.l2_hit_transactions, 2u);    // the two repeats
}

TEST(WarpMemory, RawAddressesWork) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  for (int l = 0; l < 32; ++l)
    mem.lane_load_raw(l, 1u << 20, 8);  // all lanes same 8 bytes
  mem.commit();
  EXPECT_EQ(f.stats.dram_transactions, 1u);
}

TEST(WarpMemory, CommitClearsPending) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  mem.lane_load(0, f.buf4, 0);
  mem.commit();
  mem.commit();  // nothing new
  EXPECT_EQ(f.stats.dram_transactions, 1u);
}

TEST(WarpMemory, AttributionRowsSumToAggregateCounters) {
  Fixture f;
  f.cfg.model_l2 = true;
  L2Cache l2(64 * 1024, 128, 8);
  WarpMemory mem(f.space, f.cfg, &l2, f.stats);
  for (int rep = 0; rep < 3; ++rep) {
    for (int l = 0; l < 32; ++l) {
      mem.lane_load(l, f.buf4, l);
      mem.lane_load(l, f.buf20, l * 7);  // strided: multiple segments
    }
    mem.commit();
  }
  std::uint64_t groups = 0, l2hit = 0, dram = 0, bytes = 0;
  for (const BufferTraffic& r : f.stats.memory.rows()) {
    groups += r.load_groups;
    l2hit += r.l2_hit_transactions;
    dram += r.dram_transactions;
    bytes += r.dram_bytes;
    EXPECT_GT(r.coalescing_efficiency(), 0.0);
    EXPECT_LE(r.coalescing_efficiency(), 1.0);
    EXPECT_LE(r.ideal_segments, r.issued_segments);
    EXPECT_EQ(r.issued_segments,
              r.smem_cache_hits + r.l2_hit_transactions +
                  r.dram_transactions);
  }
  EXPECT_EQ(f.stats.memory.rows().size(), 2u);
  EXPECT_EQ(groups, f.stats.load_instructions);
  EXPECT_EQ(l2hit, f.stats.l2_hit_transactions);
  EXPECT_EQ(dram, f.stats.dram_transactions);
  EXPECT_EQ(bytes, f.stats.dram_bytes);
}

TEST(WarpMemory, FieldSharesSumExactlyToTheRow) {
  Fixture f;
  // 48-byte node record straddling 128-byte segment boundaries, half
  // annotated: the implicit "(other)" share must absorb the payload bytes
  // so the field sums close exactly.
  BufferId nodes = f.space.register_buffer("nodes", 48, 64,
                                           {{"bbox", 0, 24}});
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  for (int l = 0; l < 32; ++l) mem.lane_load(l, nodes, l * 2);
  mem.commit();
  ASSERT_EQ(f.stats.memory.rows().size(), 1u);
  const BufferTraffic& r = f.stats.memory.rows()[0];
  ASSERT_EQ(r.fields.size(), 2u);  // bbox + "(other)"
  EXPECT_EQ(r.fields[0].name, "bbox");
  EXPECT_EQ(r.fields[1].name, "(other)");
  double txn = 0, dram = 0, bytes = 0;
  for (const FieldTraffic& ft : r.fields) {
    txn += ft.transactions;
    dram += ft.dram;
    bytes += ft.dram_bytes;
  }
  // Shares are dyadic rationals (k/128): the sums are exact, not approximate.
  EXPECT_EQ(txn, static_cast<double>(r.issued_segments));
  EXPECT_EQ(dram, static_cast<double>(r.dram_transactions));
  EXPECT_EQ(bytes, static_cast<double>(r.dram_bytes));
}

TEST(WarpMemory, RawAddressesChargeTheUnmappedRow) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  for (int l = 0; l < 32; ++l)
    mem.lane_load_raw(l, (1u << 26) + static_cast<std::uint64_t>(l) * 4, 4);
  mem.commit();
  ASSERT_EQ(f.stats.memory.rows().size(), 1u);
  EXPECT_EQ(f.stats.memory.rows()[0].name, "(unmapped)");
  EXPECT_EQ(f.stats.memory.rows()[0].dram_transactions,
            f.stats.dram_transactions);
}

TEST(WarpMemory, MergeFoldsRowsByName) {
  Fixture f;
  KernelStats other;
  {
    WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
    for (int l = 0; l < 32; ++l) mem.lane_load(l, f.buf4, l);
    mem.commit();
  }
  {
    WarpMemory mem(f.space, f.cfg, nullptr, other);
    for (int l = 0; l < 32; ++l) mem.lane_load(l, f.buf4, 1024 + l);
    mem.commit();
  }
  f.stats.memory.merge(other.memory);
  ASSERT_EQ(f.stats.memory.rows().size(), 1u);
  EXPECT_EQ(f.stats.memory.rows()[0].dram_transactions, 2u);
  EXPECT_EQ(f.stats.memory.rows()[0].load_groups, 2u);
}

}  // namespace
}  // namespace tt
