#include "simt/warp_memory.h"

#include <gtest/gtest.h>

namespace tt {
namespace {

struct Fixture {
  GpuAddressSpace space;
  DeviceConfig cfg;
  KernelStats stats;
  BufferId buf4, buf20;

  Fixture() {
    cfg.model_l2 = false;
    buf4 = space.register_buffer("b4", 4, 10000);
    buf20 = space.register_buffer("b20", 20, 10000);
  }
};

TEST(WarpMemory, CoalescedWarpLoadIsOneTransaction) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  for (int l = 0; l < 32; ++l) mem.lane_load(l, f.buf4, l);
  mem.commit();
  EXPECT_EQ(f.stats.dram_transactions, 1u);
  EXPECT_EQ(f.stats.load_instructions, 1u);
  EXPECT_EQ(f.stats.dram_bytes, 128u);
}

TEST(WarpMemory, BroadcastIsOneTransaction) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  for (int l = 0; l < 32; ++l) mem.lane_load(l, f.buf4, 77);
  mem.commit();
  EXPECT_EQ(f.stats.dram_transactions, 1u);
}

TEST(WarpMemory, ScatteredWarpLoadSerializes) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  for (int l = 0; l < 32; ++l) mem.lane_load(l, f.buf4, l * 64);
  mem.commit();
  EXPECT_EQ(f.stats.dram_transactions, 32u);
}

TEST(WarpMemory, TwoBuffersAreSeparateInstructions) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  for (int l = 0; l < 32; ++l) {
    mem.lane_load(l, f.buf4, l);
    mem.lane_load(l, f.buf20, l);
  }
  mem.commit();
  EXPECT_EQ(f.stats.load_instructions, 2u);
  // 32 x 20B contiguous = 640 bytes = 5 segments; plus 1 for the 4B buffer.
  EXPECT_EQ(f.stats.dram_transactions, 6u);
}

TEST(WarpMemory, UnevenTripCountsReplayTheLoad) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  // Lane 0 reads three elements, others one: 3 load instructions.
  mem.lane_load(0, f.buf4, 0);
  mem.lane_load(0, f.buf4, 1);
  mem.lane_load(0, f.buf4, 2);
  for (int l = 1; l < 32; ++l) mem.lane_load(l, f.buf4, l);
  mem.commit();
  EXPECT_EQ(f.stats.load_instructions, 3u);
}

TEST(WarpMemory, L2FiltersRepeatedSegments) {
  Fixture f;
  f.cfg.model_l2 = true;
  L2Cache l2(64 * 1024, 128, 8);
  WarpMemory mem(f.space, f.cfg, &l2, f.stats);
  for (int rep = 0; rep < 3; ++rep) {
    for (int l = 0; l < 32; ++l) mem.lane_load(l, f.buf4, l);
    mem.commit();
  }
  EXPECT_EQ(f.stats.dram_transactions, 1u);      // first touch only
  EXPECT_EQ(f.stats.l2_hit_transactions, 2u);    // the two repeats
}

TEST(WarpMemory, RawAddressesWork) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  for (int l = 0; l < 32; ++l)
    mem.lane_load_raw(l, 1u << 20, 8);  // all lanes same 8 bytes
  mem.commit();
  EXPECT_EQ(f.stats.dram_transactions, 1u);
}

TEST(WarpMemory, CommitClearsPending) {
  Fixture f;
  WarpMemory mem(f.space, f.cfg, nullptr, f.stats);
  mem.lane_load(0, f.buf4, 0);
  mem.commit();
  mem.commit();  // nothing new
  EXPECT_EQ(f.stats.dram_transactions, 1u);
}

}  // namespace
}  // namespace tt
