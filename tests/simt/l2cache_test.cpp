#include "simt/l2cache.h"

#include <gtest/gtest.h>

namespace tt {
namespace {

TEST(L2Cache, MissThenHit) {
  L2Cache c(16 * 1024, 128, 4);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(64));  // same line
  EXPECT_FALSE(c.access(128));
}

TEST(L2Cache, GeometryRoundsToPowerOfTwoSets) {
  L2Cache c(100 * 128 * 4, 128, 4);  // 100 sets -> rounds down to 64
  EXPECT_EQ(c.num_sets(), 64u);
}

TEST(L2Cache, TinyCapacityStillWorks) {
  L2Cache c(64, 128, 4);  // less than one line
  EXPECT_EQ(c.num_sets(), 1u);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
}

TEST(L2Cache, RejectsBadGeometry) {
  EXPECT_THROW(L2Cache(1024, 0, 4), std::invalid_argument);
  EXPECT_THROW(L2Cache(1024, 128, 0), std::invalid_argument);
}

TEST(L2Cache, LruEvictsOldest) {
  // 1 set x 2 ways of 128B lines.
  L2Cache c(256, 128, 2);
  ASSERT_EQ(c.num_sets(), 1u);
  EXPECT_FALSE(c.access(0));    // A
  EXPECT_FALSE(c.access(128));  // B
  EXPECT_TRUE(c.access(0));     // A hit, B is now LRU
  EXPECT_FALSE(c.access(256));  // C evicts B
  EXPECT_TRUE(c.access(0));     // A still resident
  EXPECT_FALSE(c.access(128));  // B was evicted
}

TEST(L2Cache, WorkingSetLargerThanCapacityThrashes) {
  L2Cache c(4 * 1024, 128, 4);  // 32 lines
  // Stream 64 distinct lines twice: second pass still misses (LRU).
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t line = 0; line < 64; ++line)
      EXPECT_FALSE(c.access(line * 128)) << "pass " << pass;
}

TEST(L2Cache, WorkingSetWithinCapacityAllHits) {
  L2Cache c(16 * 1024, 128, 16);  // 128 lines fully associative-ish
  for (std::uint64_t line = 0; line < 64; ++line) c.access(line * 128);
  for (std::uint64_t line = 0; line < 64; ++line)
    EXPECT_TRUE(c.access(line * 128));
}

TEST(L2Cache, ClearForgets) {
  L2Cache c(16 * 1024, 128, 4);
  c.access(0);
  EXPECT_TRUE(c.access(0));
  c.clear();
  EXPECT_FALSE(c.access(0));
}

}  // namespace
}  // namespace tt
