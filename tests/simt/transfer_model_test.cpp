#include "simt/transfer_model.h"

#include <gtest/gtest.h>

#include "bench_algos/pc/point_correlation.h"
#include "data/generators.h"
#include "spatial/kdtree.h"

namespace tt {
namespace {

TEST(TransferModel, Arithmetic) {
  TransferModel m;
  m.pcie_gbps = 6.0;
  m.launch_overhead_ms = 0.0;
  // 6 MB at 6 GB/s = 1 ms.
  EXPECT_NEAR(m.upload_ms(6'000'000), 1.0, 1e-9);
  EXPECT_NEAR(m.download_ms(3'000'000), 0.5, 1e-9);
  EXPECT_NEAR(m.round_trip_ms(6'000'000, 3'000'000), 1.5, 1e-9);
}

TEST(TransferModel, LaunchOverheadOnUploadOnly) {
  TransferModel m;
  m.launch_overhead_ms = 0.25;
  EXPECT_GE(m.upload_ms(0), 0.25);
  EXPECT_DOUBLE_EQ(m.download_ms(0), 0.0);
}

TEST(TransferModel, RoundTripChargesOverheadPerLaunch) {
  TransferModel m;
  m.launch_overhead_ms = 0.25;
  // launches = 1 is the historical single-shot value (upload_ms already
  // carries one overhead)...
  EXPECT_DOUBLE_EQ(m.round_trip_ms(6'000'000, 3'000'000, 1),
                   m.round_trip_ms(6'000'000, 3'000'000));
  // ...and every extra launch adds exactly one more overhead on the same
  // bytes (a multi-timestep run, or N solo launches vs one batch).
  EXPECT_DOUBLE_EQ(m.round_trip_ms(6'000'000, 3'000'000, 3),
                   m.round_trip_ms(6'000'000, 3'000'000, 1) + 2 * 0.25);
}

// ---------------------------------------------------------------------
// Pipelined mode (core/device_group.h's double-buffered timeline).
// ---------------------------------------------------------------------

TEST(PipelinedTransfer, OneChunkDegradesToSingleShotExactly) {
  TransferModel m;
  m.launch_overhead_ms = 0.25;
  const double compute = 1.7;
  for (std::size_t chunks : {std::size_t{0}, std::size_t{1}}) {
    PipelinedTransfer p =
        m.pipelined_round_trip(6'000'000, 3'000'000, compute, chunks);
    EXPECT_EQ(p.chunks, 1u);
    EXPECT_DOUBLE_EQ(p.overlap_ms, 0.0);
    EXPECT_DOUBLE_EQ(p.exposed_ms, m.round_trip_ms(6'000'000, 3'000'000, 1));
    EXPECT_DOUBLE_EQ(p.total_ms,
                     m.round_trip_ms(6'000'000, 3'000'000, 1) + compute);
  }
}

TEST(PipelinedTransfer, ComputeBoundHidesAllButTheFirstChunk) {
  TransferModel m;
  m.launch_overhead_ms = 0.0;
  // copy_in = 1 ms, compute = 4 ms, 4 chunks: u = 0.25 < c = 1, so the
  // overlap hides (chunks - 1) upload chunks = 0.75 ms.
  PipelinedTransfer p = m.pipelined_round_trip(6'000'000, 0, 4.0, 4);
  EXPECT_NEAR(p.copy_in_ms, 1.0, 1e-12);
  EXPECT_NEAR(p.overlap_ms, 0.75, 1e-12);
  EXPECT_NEAR(p.exposed_ms, 0.25, 1e-12);
  EXPECT_NEAR(p.total_ms, 4.25, 1e-12);
}

TEST(PipelinedTransfer, TransferBoundHidesComputeInstead) {
  TransferModel m;
  m.launch_overhead_ms = 0.0;
  // copy_in = 4 ms, compute = 1 ms, 4 chunks: c = 0.25 < u = 1, so only
  // (chunks - 1) compute chunks hide under the bus.
  PipelinedTransfer p = m.pipelined_round_trip(24'000'000, 0, 1.0, 4);
  EXPECT_NEAR(p.copy_in_ms, 4.0, 1e-12);
  EXPECT_NEAR(p.overlap_ms, 0.75, 1e-12);
  EXPECT_NEAR(p.total_ms, 4.0 + 1.0 - 0.75, 1e-12);
}

TEST(PipelinedTransfer, InvariantsAcrossChunkCounts) {
  TransferModel m;
  double prev_total = m.pipelined_round_trip(6'000'000, 3'000'000, 2.0, 1)
                          .total_ms;
  for (std::size_t chunks = 2; chunks <= 64; chunks *= 2) {
    PipelinedTransfer p =
        m.pipelined_round_trip(6'000'000, 3'000'000, 2.0, chunks);
    // total == exposed + compute by construction, overlap can never
    // exceed what it hides, and more chunks never slow the timeline.
    EXPECT_DOUBLE_EQ(p.total_ms, p.exposed_ms + p.compute_ms);
    EXPECT_LE(p.overlap_ms, p.copy_in_ms + 1e-12);
    EXPECT_LE(p.overlap_ms, p.compute_ms + 1e-12);
    EXPECT_LE(p.total_ms, prev_total + 1e-12);
    prev_total = p.total_ms;
  }
}

TEST(TransferModel, KernelFootprintDrivesUpload) {
  // The address space already tracks every registered device buffer, so
  // its footprint is the upload size for a kernel's working set.
  PointSet pts = gen_uniform(1000, 7, 1);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  PointCorrelationKernel k(tree, pts, 0.1f, space);
  TransferModel m;
  double up = m.upload_ms(space.footprint_bytes());
  EXPECT_GT(up, 0.0);
  // Footprint must cover at least the query coordinates.
  EXPECT_GE(space.footprint_bytes(), 7u * 1000u * 4u);
}

}  // namespace
}  // namespace tt
