#include "simt/transfer_model.h"

#include <gtest/gtest.h>

#include "bench_algos/pc/point_correlation.h"
#include "data/generators.h"
#include "spatial/kdtree.h"

namespace tt {
namespace {

TEST(TransferModel, Arithmetic) {
  TransferModel m;
  m.pcie_gbps = 6.0;
  m.launch_overhead_ms = 0.0;
  // 6 MB at 6 GB/s = 1 ms.
  EXPECT_NEAR(m.upload_ms(6'000'000), 1.0, 1e-9);
  EXPECT_NEAR(m.download_ms(3'000'000), 0.5, 1e-9);
  EXPECT_NEAR(m.round_trip_ms(6'000'000, 3'000'000), 1.5, 1e-9);
}

TEST(TransferModel, LaunchOverheadOnUploadOnly) {
  TransferModel m;
  m.launch_overhead_ms = 0.25;
  EXPECT_GE(m.upload_ms(0), 0.25);
  EXPECT_DOUBLE_EQ(m.download_ms(0), 0.0);
}

TEST(TransferModel, RoundTripChargesOverheadPerLaunch) {
  TransferModel m;
  m.launch_overhead_ms = 0.25;
  // launches = 1 is the historical single-shot value (upload_ms already
  // carries one overhead)...
  EXPECT_DOUBLE_EQ(m.round_trip_ms(6'000'000, 3'000'000, 1),
                   m.round_trip_ms(6'000'000, 3'000'000));
  // ...and every extra launch adds exactly one more overhead on the same
  // bytes (a multi-timestep run, or N solo launches vs one batch).
  EXPECT_DOUBLE_EQ(m.round_trip_ms(6'000'000, 3'000'000, 3),
                   m.round_trip_ms(6'000'000, 3'000'000, 1) + 2 * 0.25);
}

TEST(TransferModel, KernelFootprintDrivesUpload) {
  // The address space already tracks every registered device buffer, so
  // its footprint is the upload size for a kernel's working set.
  PointSet pts = gen_uniform(1000, 7, 1);
  KdTree tree = build_kdtree(pts, 8);
  GpuAddressSpace space;
  PointCorrelationKernel k(tree, pts, 0.1f, space);
  TransferModel m;
  double up = m.upload_ms(space.footprint_bytes());
  EXPECT_GT(up, 0.0);
  // Footprint must cover at least the query coordinates.
  EXPECT_GE(space.footprint_bytes(), 7u * 1000u * 4u);
}

}  // namespace
}  // namespace tt
