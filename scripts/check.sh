#!/usr/bin/env bash
# Full local gate: warnings-as-errors configure, build, test suite, and a
# smoke run of the JSON report path (table1 --json + schema validation).
# Run from anywhere; builds into <repo>/build.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure (RelWithDebInfo, -Werror) =="
cmake -S "$repo" -B "$build" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTREETRAV_WERROR=ON

echo "== build =="
cmake --build "$build" -j "$jobs"

echo "== ctest =="
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "== json report smoke =="
out=/tmp/t1.json
"$build/bench/table1" --benchmarks=pc --points=512 --json="$out"
"$build/tools/json_validate" "$out"

echo "check.sh: all gates passed"
