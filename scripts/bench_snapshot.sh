#!/usr/bin/env bash
# Perf-trajectory snapshot: run table1 on a small fixed grid and distill
# each cell's per-variant simulated instruction cycles + modelled time
# (deterministic) and host simulation wall-clock (volatile, machine-
# dependent) into BENCH_table1.json at the repo root. Commit the refreshed
# file alongside performance-relevant PRs so later PRs can diff both the
# modelled cost and the simulator's own speed against this baseline.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
out="${1:-$repo/BENCH_table1.json}"

if [[ ! -x "$build/bench/table1" ]]; then
  echo "== building table1 =="
  cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" --target table1
fi

raw="$(mktemp /tmp/bench_snapshot_XXXX.json)"
batch_raw="$(mktemp /tmp/bench_snapshot_batch_XXXX.json)"
trap 'rm -f "$raw" "$batch_raw"' EXIT

echo "== table1 (pc+nn, 512 points) =="
"$build/bench/table1" --benchmarks=pc,nn --points=512 \
  --json="$raw" --json-volatile >/dev/null

echo "== table1 --batch (all five, 512 points/bodies) =="
"$build/bench/table1" --batch --points=512 --bodies=512 \
  --json="$batch_raw" >/dev/null

python3 - "$raw" "$batch_raw" "$out" <<'PY'
import json, sys

raw_path, batch_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]
with open(raw_path) as f:
    report = json.load(f)
with open(batch_path) as f:
    batch_report = json.load(f)

snapshot = {
    "schema": "treetrav.bench_snapshot/v1",
    "source": "table1 --benchmarks=pc,nn --points=512",
    "git_sha": report.get("git_sha", "unknown"),
    "cells": [],
}
for row in report["rows"]:
    cfg = row["config"]
    cell = {
        "benchmark": cfg["algo"],
        "input": cfg["input"],
        "order": "sorted" if cfg["sorted"] else "unsorted",
        "n": cfg["n"],
        "variants": {},
    }
    for name, v in row["variants"].items():
        if not v.get("ok", False):
            cell["variants"][name] = {"error": v.get("error", "failed")}
            continue
        entry = {
            "instr_cycles": v["stats"]["instr_cycles"],
            "modelled_ms": v["time_ms"],
            "host_sim_wall_ms": v.get("sim_wall_ms"),
        }
        if "selection" in v:
            entry["selection"] = {
                "chosen": v["selection"]["chosen"],
                "mean_similarity": v["selection"]["mean_similarity"],
                "baseline_similarity": v["selection"]["baseline_similarity"],
                "sampling_cycles": v["selection"]["sampling_cycles"],
            }
        cell["variants"][name] = entry
    snapshot["cells"].append(cell)

# Batched columns: the five Table-1 kernels as one simulated launch.
# Per-kernel numbers equal the solo rows by contract; what this snapshot
# tracks is the schedule accounting and the amortized transfer saving.
b = batch_report.get("batch")
if b is not None:
    batch = {
        "source": "table1 --batch --points=512 --bodies=512",
        "policy": b["policy"],
        "variant": b["variant"],
        "residency": b["residency"],
        "total_chunks": b["total_chunks"],
        "rounds": b["rounds"],
        "switches": b["switches"],
        "transfer": {
            "amortized_ms": b["transfer"]["amortized_ms"],
            "summed_solo_ms": b["transfer"]["summed_solo_ms"],
        },
        "kernels": {},
    }
    for k in b["kernels"]:
        if not k.get("ok", False):
            batch["kernels"][k["kernel"]] = {"error": k.get("error", "failed")}
            continue
        batch["kernels"][k["kernel"]] = {
            "instr_cycles": k["stats"]["instr_cycles"],
            "modelled_ms": k["time_ms"],
            "solo_transfer_ms": k["solo_transfer_ms"],
        }
    snapshot["batch"] = batch

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out_path} ({len(snapshot['cells'])} cells)")
PY
