#!/usr/bin/env bash
# Perf-trajectory snapshot: run table1 on a small fixed grid and distill
# each cell's per-variant simulated instruction cycles + modelled time
# (deterministic) and host simulation wall-clock (volatile, machine-
# dependent) into BENCH_table1.json at the repo root. Commit the refreshed
# file alongside performance-relevant PRs so later PRs can diff both the
# modelled cost and the simulator's own speed against this baseline.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
out="${1:-$repo/BENCH_table1.json}"

if [[ ! -x "$build/bench/table1" ]]; then
  echo "== building table1 =="
  cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" --target table1
fi

raw="$(mktemp /tmp/bench_snapshot_XXXX.json)"
batch_raw="$(mktemp /tmp/bench_snapshot_batch_XXXX.json)"
trap 'rm -f "$raw" "$batch_raw"' EXIT

echo "== table1 (pc+nn, 512 points) =="
"$build/bench/table1" --benchmarks=pc,nn --points=512 \
  --json="$raw" --json-volatile >/dev/null

echo "== table1 --batch (all five, 512 points/bodies) =="
"$build/bench/table1" --batch --points=512 --bodies=512 \
  --json="$batch_raw" >/dev/null

python3 - "$raw" "$batch_raw" "$out" <<'PY'
import json, sys

raw_path, batch_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]
with open(raw_path) as f:
    report = json.load(f)
with open(batch_path) as f:
    batch_report = json.load(f)

snapshot = {
    "schema": "treetrav.bench_snapshot/v1",
    "source": "table1 --benchmarks=pc,nn --points=512",
    "git_sha": report.get("git_sha", "unknown"),
    "cells": [],
}
for row in report["rows"]:
    cfg = row["config"]
    cell = {
        "benchmark": cfg["algo"],
        "input": cfg["input"],
        "order": "sorted" if cfg["sorted"] else "unsorted",
        "n": cfg["n"],
        "variants": {},
    }
    for name, v in row["variants"].items():
        if not v.get("ok", False):
            cell["variants"][name] = {"error": v.get("error", "failed")}
            continue
        entry = {
            "instr_cycles": v["stats"]["instr_cycles"],
            "modelled_ms": v["time_ms"],
            "host_sim_wall_ms": v.get("sim_wall_ms"),
        }
        if "selection" in v:
            entry["selection"] = {
                "chosen": v["selection"]["chosen"],
                "mean_similarity": v["selection"]["mean_similarity"],
                "baseline_similarity": v["selection"]["baseline_similarity"],
                "sampling_cycles": v["selection"]["sampling_cycles"],
            }
        cell["variants"][name] = entry
    snapshot["cells"].append(cell)

# Batched columns: the five Table-1 kernels as one simulated launch.
# Per-kernel numbers equal the solo rows by contract; what this snapshot
# tracks is the schedule accounting and the amortized transfer saving.
b = batch_report.get("batch")
if b is not None:
    batch = {
        "source": "table1 --batch --points=512 --bodies=512",
        "policy": b["policy"],
        "variant": b["variant"],
        "residency": b["residency"],
        "total_chunks": b["total_chunks"],
        "rounds": b["rounds"],
        "switches": b["switches"],
        "transfer": {
            "amortized_ms": b["transfer"]["amortized_ms"],
            "summed_solo_ms": b["transfer"]["summed_solo_ms"],
        },
        "kernels": {},
    }
    for k in b["kernels"]:
        if not k.get("ok", False):
            batch["kernels"][k["kernel"]] = {"error": k.get("error", "failed")}
            continue
        batch["kernels"][k["kernel"]] = {
            "instr_cycles": k["stats"]["instr_cycles"],
            "modelled_ms": k["time_ms"],
            "solo_transfer_ms": k["solo_transfer_ms"],
        }
    snapshot["batch"] = batch

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out_path} ({len(snapshot['cells'])} cells)")
PY

# Serving baseline: the same pc+nn pool under an open-loop Poisson trace
# at a pinned rate, distilled into BENCH_serving.json -- headline
# percentiles, queue telemetry, and the drain-cadence sweep. Everything
# in it is modelled time, so the file only changes when behavior does.
serving_out="${2:-$repo/BENCH_serving.json}"
serving_raw="$(mktemp /tmp/bench_snapshot_serving_XXXX.json)"
trap 'rm -f "$raw" "$batch_raw" "$serving_raw"' EXIT

if [[ ! -x "$build/bench/serving" ]]; then
  echo "== building serving =="
  cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" --target serving
fi

echo "== serving (pc+nn pool, 256 queries, poisson @ 400 qps) =="
"$build/bench/serving" --benchmarks=pc,nn --points=512 --queries=256 \
  --rate-qps=400 --json="$serving_raw" >/dev/null

python3 - "$serving_raw" "$serving_out" <<'PY'
import json, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    report = json.load(f)

s = report["serving"]
snapshot = {
    "schema": "treetrav.bench_snapshot.serving/v1",
    "source": "serving --benchmarks=pc,nn --points=512 --queries=256 "
              "--rate-qps=400",
    "git_sha": report.get("git_sha", "unknown"),
    "arrivals": s["arrivals"],
    "rate_qps": s["rate_qps"],
    "queries": s["queries"],
    "drain_policy": s["drain_policy"],
    "completed": s["completed"],
    "dropped": s["dropped"],
    "drains": len(s["drains"]),
    "throughput_qps": s["throughput_qps"],
    "occupancy": s["occupancy"],
    "latency_ms": {k: s["latency_ms"][k] for k in ("p50", "p95", "p99", "max")},
    "queue_delay_p50_ms": s["queue_delay_ms"]["p50"],
    "queue": s["queue"],
    "transfer": {
        "amortized_ms": s["transfer"]["amortized_ms"],
        "summed_solo_ms": s["transfer"]["summed_solo_ms"],
    },
    "sweep": [
        {
            "max_delay_ms": p["max_delay_ms"],
            "drains": p["drains"],
            "mean_batch": p["mean_batch"],
            "p50_ms": p["p50_ms"],
            "p99_ms": p["p99_ms"],
            "transfer_saved_ms": p["transfer_saved_ms"],
        }
        for p in s["sweep"]
    ],
}
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out_path} ({len(snapshot['sweep'])} sweep points)")
PY

# Sharding baseline: the same pc+nn pool split across the simulated
# device group, distilled into BENCH_sharding.json -- per-kernel
# makespan speedup, per-device load balance, and the device-count x
# chunk-size sweep. All modelled time; changes only when behavior does.
sharding_out="${3:-$repo/BENCH_sharding.json}"
sharding_raw="$(mktemp /tmp/bench_snapshot_sharding_XXXX.json)"
trap 'rm -f "$raw" "$batch_raw" "$serving_raw" "$sharding_raw"' EXIT

if [[ ! -x "$build/bench/sharding" ]]; then
  echo "== building sharding =="
  cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" --target sharding
fi

echo "== sharding (pc+nn pool, 1,2,4 devices) =="
"$build/bench/sharding" --benchmarks=pc,nn --points=512 \
  --json="$sharding_raw" >/dev/null

python3 - "$sharding_raw" "$sharding_out" <<'PY'
import json, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    report = json.load(f)

d = report["devices"]
snapshot = {
    "schema": "treetrav.bench_snapshot.sharding/v1",
    "source": "sharding --benchmarks=pc,nn --points=512",
    "git_sha": report.get("git_sha", "unknown"),
    "devices": d["devices"],
    "chunk_points": d["chunk_points"],
    "policy": d["policy"],
    "variant": d["variant"],
    "single_device_ms": d["single_device_ms"],
    "makespan_ms": d["makespan_ms"],
    "speedup": d["speedup"],
    "kernels": {},
    "sweep": [
        {
            "devices": p["devices"],
            "chunk_points": p["chunk_points"],
            "speedup": p["speedup"],
            "overlap_efficiency": p["overlap_efficiency"],
        }
        for p in d["sweep"]
    ],
}
for k in d["kernels"]:
    if not k.get("ok", False):
        snapshot["kernels"][k["kernel"]] = {"error": k.get("error", "failed")}
        continue
    snapshot["kernels"][k["kernel"]] = {
        "points": k["points"],
        "chunks": k["chunks"],
        "variant": k["variant"],
        "single_device_ms": k["single_device_ms"],
        "makespan_ms": k["makespan_ms"],
        "speedup": k["speedup"],
        "per_device": [
            {
                "device": p["device"],
                "chunks": p["chunks"],
                "steals": p["steals"],
                "busy_ms": p["busy_ms"],
                "overlap_ms": p["overlap_ms"],
            }
            for p in k["per_device"]
        ],
    }
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out_path} ({len(snapshot['sweep'])} sweep points)")
PY

# Ropes baseline: the static-ropes-vs-autoropes ablation plus the
# stackless x cache-size sweep, distilled into BENCH_ropes.json -- per
# (benchmark, order, variant) the modelled time, DRAM transactions,
# node-cache hit rate, the stack bucket (pinned at zero for stackless
# compositions) and the speedup over the per-warp shared-memory stack.
# All modelled time; changes only when behavior does.
ropes_out="${4:-$repo/BENCH_ropes.json}"
ropes_raw="$(mktemp /tmp/bench_snapshot_ropes_XXXX.json)"
trap 'rm -f "$raw" "$batch_raw" "$serving_raw" "$sharding_raw" "$ropes_raw"' EXIT

if [[ ! -x "$build/bench/ablation_ropes" ]]; then
  echo "== building ablation_ropes =="
  cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" \
    --target ablation_ropes
fi

echo "== ablation_ropes (pc+bh, 512 points, stackless cache sweep) =="
"$build/bench/ablation_ropes" --points=512 --json="$ropes_raw" >/dev/null

python3 - "$ropes_raw" "$ropes_out" <<'PY'
import json, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    report = json.load(f)

tables = {t["name"]: t for t in report.get("tables", [])}

def rows_as_dicts(table):
    header = table["header"]
    return [dict(zip(header, cells)) for cells in table["rows"]]

snapshot = {
    "schema": "treetrav.bench_snapshot.ropes/v1",
    "source": "ablation_ropes --points=512",
    "git_sha": report.get("git_sha", "unknown"),
    "ablation": [
        {
            "benchmark": r["Benchmark"],
            "order": r["Order"],
            "type": r["Type"],
            "technique": r["Technique"],
            "modelled_ms": float(r["Time(ms)"]),
            "dram_transactions": int(r["DRAM txn"]),
            "install_ms": float(r["Install(ms)"]),
        }
        for r in rows_as_dicts(tables["ablation_ropes"])
    ],
    "stackless_sweep": [
        {
            "benchmark": r["Benchmark"],
            "order": r["Order"],
            "variant": r["Variant"],
            "cache_kib": r["Cache(KiB)"],
            "modelled_ms": float(r["Time(ms)"]),
            "dram_transactions": int(r["DRAM txn"]),
            "hit_rate_pct": float(r["Hit%"]),
            "stack_cycles": float(r["Stack cyc"]),
            "speedup_vs_stack": float(r["Speedup vs stack"]),
        }
        for r in rows_as_dicts(tables["stackless_cache_sweep"])
    ],
}
for p in snapshot["stackless_sweep"]:
    assert p["stack_cycles"] == 0.0, f"stackless row charged stack cycles: {p}"
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out_path} ({len(snapshot['stackless_sweep'])} sweep points)")
PY

# Fusion baseline: both fused traversal pairs (k-NN + NN over one kd-tree;
# consecutive BH timesteps over a refit octree) against their sequential
# baselines, distilled into BENCH_fusion.json -- per (pair, variant) the
# fused vs summed-constituent lane visits, the visit / mem_stall cycle
# savings, the shared-load elision count, and the byte-identity verdict.
# All modelled time; changes only when behavior does.
fusion_out="${FUSION_JSON:-$repo/BENCH_fusion.json}"
fusion_raw="$(mktemp /tmp/bench_snapshot_fusion_XXXX.json)"
trap 'rm -f "$raw" "$batch_raw" "$serving_raw" "$sharding_raw" "$ropes_raw" "$fusion_raw"' EXIT

if [[ ! -x "$build/bench/fusion" ]]; then
  echo "== building fusion =="
  cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" --target fusion
fi

echo "== fusion (both pairs, 512 points/bodies) =="
"$build/bench/fusion" --points=512 --bodies=512 \
  --json="$fusion_raw" >/dev/null

python3 - "$fusion_raw" "$fusion_out" <<'PY'
import json, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    report = json.load(f)

fu = report["fusion"]
snapshot = {
    "schema": "treetrav.bench_snapshot.fusion/v1",
    "source": "fusion --points=512 --bodies=512",
    "git_sha": report.get("git_sha", "unknown"),
    "pairs": [],
}
for pair in fu["pairs"]:
    entry = {
        "fused": pair["fused"],
        "first": pair["first"],
        "second": pair["second"],
        "points": pair["points"],
        "variants": {},
    }
    for v in pair["variants"]:
        if not v.get("ok", False):
            entry["variants"][v["variant"]] = {"error": v.get("error", "failed")}
            continue
        assert v["byte_identical"], f"fused results diverged: {v}"
        entry["variants"][v["variant"]] = {
            "fused_lane_visits": v["fused_stats"]["lane_visits"],
            "sequential_lane_visits": v["sequential_stats"]["lane_visits"],
            "shared_loads_elided": v["fused_stats"]["shared_loads_elided"],
            "visit_cycles_saved": v["visit_cycles_saved"],
            "mem_stall_cycles_saved": v["mem_stall_cycles_saved"],
            "fused_modelled_ms": v["fused_time"]["total_ms"],
            "sequential_modelled_ms": v["sequential_time"]["total_ms"],
        }
    snapshot["pairs"].append(entry)

# The snapshot's headline claim: fusion saves visit cycles on at least one
# pair under every measured variant (the merged walk is the union).
for pair in snapshot["pairs"]:
    ok_rows = [v for v in pair["variants"].values() if "error" not in v]
    assert ok_rows, f"no measured variants for {pair['fused']}"
    assert any(v["visit_cycles_saved"] > 0 for v in ok_rows), \
        f"no visit savings for {pair['fused']}"
with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out_path} ({len(snapshot['pairs'])} pairs)")
PY

# Memory-telescope baseline: the memprof per-buffer / per-field traffic
# attribution sweep, distilled into BENCH_memprof.json -- the hot-buffer
# table, the per-field node-array split, the worst-coalesced sites and the
# section-5 layout_split comparison (split nodes0/nodes1 vs one
# interleaved record, on per-visit node-array DRAM transactions). The
# headline assertion: for the rope (stackless) traversal -- whose hot set
# excludes the children half -- the split layout must reduce per-visit
# DRAM versus interleaved, in every measured point order. All counters are
# modelled; the file changes only when behavior does.
memprof_out="${MEMPROF_JSON:-$repo/BENCH_memprof.json}"
memprof_raw="$(mktemp /tmp/bench_snapshot_memprof_XXXX.json)"
trap 'rm -f "$raw" "$batch_raw" "$serving_raw" "$sharding_raw" "$ropes_raw" "$fusion_raw" "$memprof_raw"' EXIT

if [[ ! -x "$build/bench/memprof" ]]; then
  echo "== building memprof =="
  cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" --target memprof
fi

echo "== memprof (pc+nn sweep, 512 points, layout split) =="
"$build/bench/memprof" --points=512 --profile \
  --json="$memprof_raw" >/dev/null

python3 - "$memprof_raw" "$memprof_out" <<'PY'
import json, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    report = json.load(f)

tables = {t["name"]: t for t in report.get("tables", [])}

def rows_as_dicts(table):
    header = table["header"]
    return [dict(zip(header, cells)) for cells in table["rows"]]

snapshot = {
    "schema": "treetrav.bench_snapshot.memprof/v1",
    "source": "memprof --points=512 --profile",
    "git_sha": report.get("git_sha", "unknown"),
    "hot_buffers": [
        {
            "kernel": r["Kernel"],
            "order": r["Order"],
            "variant": r["Variant"],
            "buffer": r["Buffer"],
            "load_groups": int(r["Groups"]),
            "replayed_loads": int(r["Replays"]),
            "issued_segments": int(r["Segs"]),
            "coalescing_efficiency": float(r["Eff"]),
            "l2_hit_transactions": int(r["L2 hit"]),
            "dram_transactions": int(r["DRAM"]),
            "dram_bytes": int(r["DRAM B"]),
            "mem_stall_cycles": float(r["Stall cyc"]),
        }
        for r in rows_as_dicts(tables["memory_hot"])
    ],
    "node_fields": [
        {
            "kernel": r["Kernel"],
            "order": r["Order"],
            "buffer": r["Buffer"],
            "field": r["Field"],
            "transactions": float(r["Txn"]),
            "dram": float(r["DRAM"]),
            "dram_bytes": float(r["DRAM B"]),
            "mem_stall_cycles": float(r["Stall cyc"]),
            "stall_share_pct": float(r["Stall %"]),
        }
        for r in rows_as_dicts(tables["memory_fields"])
    ],
    "worst_coalesced": [
        {
            "kernel": r["Kernel"],
            "order": r["Order"],
            "variant": r["Variant"],
            "buffer": r["Buffer"],
            "coalescing_efficiency": float(r["Eff"]),
            "issued_segments": int(r["Issued"]),
            "ideal_segments": int(r["Ideal"]),
        }
        for r in rows_as_dicts(tables["memory_coalesce"])
    ],
    "layout_split": [
        {
            "order": r["Order"],
            "variant": r["Variant"],
            "layout": r["Layout"],
            "node_dram_transactions": int(r["Node DRAM"]),
            "lane_visits": int(r["Lane visits"]),
            "dram_per_visit": float(r["DRAM/visit"]),
        }
        for r in rows_as_dicts(tables["layout_split"])
    ],
}

for r in snapshot["hot_buffers"]:
    assert 0.0 < r["coalescing_efficiency"] <= 1.0, f"efficiency out of range: {r}"

# Headline: the usage-based split decision. Rope traversal never touches
# the children/leaf_range half, so the split layout's densely packed bbox
# bytes must cost less DRAM per visit than the interleaved record.
by_key = {}
for r in snapshot["layout_split"]:
    by_key[(r["order"], r["variant"], r["layout"])] = r["dram_per_visit"]
checked = 0
for (order, variant, layout), split_pv in by_key.items():
    if layout != "split" or not variant.startswith("stackless"):
        continue
    inter_pv = by_key[(order, variant, "interleaved")]
    assert split_pv < inter_pv, (
        f"split did not reduce per-visit DRAM for {order}/{variant}: "
        f"{split_pv} vs {inter_pv}")
    checked += 1
assert checked > 0, "no stackless layout_split rows to check"

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out_path} ({len(snapshot['layout_split'])} layout rows)")
PY
