#!/usr/bin/env bash
# Perf-trajectory snapshot: run table1 on a small fixed grid and distill
# each cell's per-variant simulated instruction cycles + modelled time
# (deterministic) and host simulation wall-clock (volatile, machine-
# dependent) into BENCH_table1.json at the repo root. Commit the refreshed
# file alongside performance-relevant PRs so later PRs can diff both the
# modelled cost and the simulator's own speed against this baseline.
#
# Usage: scripts/bench_snapshot.sh [output.json]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
out="${1:-$repo/BENCH_table1.json}"

if [[ ! -x "$build/bench/table1" ]]; then
  echo "== building table1 =="
  cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j "$(nproc 2>/dev/null || echo 4)" --target table1
fi

raw="$(mktemp /tmp/bench_snapshot_XXXX.json)"
trap 'rm -f "$raw"' EXIT

echo "== table1 (pc+nn, 512 points) =="
"$build/bench/table1" --benchmarks=pc,nn --points=512 \
  --json="$raw" --json-volatile >/dev/null

python3 - "$raw" "$out" <<'PY'
import json, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    report = json.load(f)

snapshot = {
    "schema": "treetrav.bench_snapshot/v1",
    "source": "table1 --benchmarks=pc,nn --points=512",
    "git_sha": report.get("git_sha", "unknown"),
    "cells": [],
}
for row in report["rows"]:
    cfg = row["config"]
    cell = {
        "benchmark": cfg["algo"],
        "input": cfg["input"],
        "order": "sorted" if cfg["sorted"] else "unsorted",
        "n": cfg["n"],
        "variants": {},
    }
    for name, v in row["variants"].items():
        if not v.get("ok", False):
            cell["variants"][name] = {"error": v.get("error", "failed")}
            continue
        entry = {
            "instr_cycles": v["stats"]["instr_cycles"],
            "modelled_ms": v["time_ms"],
            "host_sim_wall_ms": v.get("sim_wall_ms"),
        }
        if "selection" in v:
            entry["selection"] = {
                "chosen": v["selection"]["chosen"],
                "mean_similarity": v["selection"]["mean_similarity"],
                "baseline_similarity": v["selection"]["baseline_similarity"],
                "sampling_cycles": v["selection"]["sampling_cycles"],
            }
        cell["variants"][name] = entry
    snapshot["cells"].append(cell)

with open(out_path, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out_path} ({len(snapshot['cells'])} cells)")
PY
