// Point sorting (paper section 4.4): arranging points so that the 32
// points of a warp perform similar traversals. Sorting is the one
// application-specific knob the paper keeps outside the automatic
// transformations; these helpers provide the two standard orders plus the
// shuffle used to produce the "unsorted" inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "spatial/kdtree.h"
#include "spatial/point_set.h"

namespace tt {

// Morton (Z-order) sort for 2-d / 3-d data: interleaves quantized
// coordinate bits. Returns the permutation (new index j holds old point
// perm[j]); apply with PointSet::permute.
std::vector<std::uint32_t> morton_order(const PointSet& pts);

// General-dimension spatial sort: order points by the DFS rank of the
// kd-tree leaf that contains them (builds a scratch kd-tree over the
// points). This is the "traversal order" sort used for the 7-d inputs.
std::vector<std::uint32_t> tree_order(const PointSet& pts, int leaf_size);

// Fisher-Yates shuffle -- the paper's "unsorted" configuration.
std::vector<std::uint32_t> shuffled_order(std::size_t n, std::uint64_t seed);

// Identity permutation helper.
std::vector<std::uint32_t> identity_order(std::size_t n);

}  // namespace tt
