#include "data/projection.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace tt {

PointSet random_projection(std::span<const float> data, std::size_t n,
                           int in_dim, int out_dim, std::uint64_t seed) {
  if (out_dim <= 0 || out_dim > kMaxDim)
    throw std::invalid_argument("random_projection: bad out_dim");
  if (in_dim <= 0 || data.size() != n * static_cast<std::size_t>(in_dim))
    throw std::invalid_argument("random_projection: data size mismatch");

  Pcg32 rng(seed, 0x2545f4914f6cdd1dULL);
  const double scale = 1.0 / std::sqrt(static_cast<double>(out_dim));
  std::vector<float> m(static_cast<std::size_t>(in_dim) * out_dim);
  for (auto& v : m) v = static_cast<float>(rng.normal() * scale);

  PointSet out(out_dim, n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = data.data() + i * in_dim;
    for (int o = 0; o < out_dim; ++o) {
      double acc = 0.0;
      for (int d = 0; d < in_dim; ++d)
        acc += static_cast<double>(row[d]) *
               m[static_cast<std::size_t>(d) * out_dim + o];
      out.set(i, o, static_cast<float>(acc));
    }
  }
  return out;
}

}  // namespace tt
