// Input generators standing in for the paper's evaluation datasets.
//
// The paper uses: Plummer and Random (1M bodies) for Barnes-Hut; Covtype
// (580k x 54-d -> 200k x 7-d by random projection), Mnist (8.1M x 784-d ->
// 200k x 7-d), Random (200k x 7-d) and Geocity (200k 2-d city locations)
// for the kd/vp-tree benchmarks. The proprietary datasets are replaced by
// seeded synthetic equivalents that reproduce the traversal-relevant
// properties (dimensionality, clusteredness, projection pipeline); see
// DESIGN.md section 2 for the substitution rationale.
#pragma once

#include <cstdint>
#include <vector>

#include "spatial/point_set.h"

namespace tt {

struct BodySet {
  PointSet pos;             // 3-d
  std::vector<float> mass;
  std::vector<float> vel;   // [d * n + i], matching PointSet layout
};

// Plummer-model star cluster (the Lonestar class-C analog): radial density
// rho(r) ~ (1 + r^2)^{-5/2}, isotropic velocities, equal masses.
BodySet gen_plummer(std::size_t n, std::uint64_t seed);

// Uniform random bodies in the unit cube with random velocities.
BodySet gen_random_bodies(std::size_t n, std::uint64_t seed);

// Uniform random points in the unit hypercube.
PointSet gen_uniform(std::size_t n, int dim, std::uint64_t seed);

// Covtype-like: mixture of anisotropic Gaussian clusters in 54-d,
// random-projected to `out_dim` (7 in the paper).
PointSet gen_covtype_like(std::size_t n, int out_dim, std::uint64_t seed);

// Mnist-like: 10 "digit" clusters on a low-dimensional manifold embedded in
// 784-d, random-projected to `out_dim`.
PointSet gen_mnist_like(std::size_t n, int out_dim, std::uint64_t seed);

// Same generator with the class ("digit") of each point exposed, for the
// kNN-classification example.
struct LabeledPoints {
  PointSet points;
  std::vector<int> labels;
};
LabeledPoints gen_mnist_like_labeled(std::size_t n, int out_dim,
                                     std::uint64_t seed);

// Geocity-like: heavily clustered 2-d points; cluster populations follow a
// power law (a few big "cities", a long tail of towns).
PointSet gen_geocity_like(std::size_t n, std::uint64_t seed);

}  // namespace tt
