// Johnson-Lindenstrauss random projection, the dimensionality-reduction
// step the paper applies to Covtype (54-d -> 7-d) and Mnist (784-d -> 7-d).
//
// Source data may be arbitrarily high-dimensional, so the primary entry
// point takes a raw row-major matrix; PointSet (capped at kMaxDim) is only
// suitable for the projected output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "spatial/point_set.h"

namespace tt {

// Projects `n` points of dimension `in_dim` (row-major: data[i*in_dim + d])
// to out_dim using a dense Gaussian matrix with entries N(0, 1/out_dim)
// drawn from `seed`. Deterministic for a given (in_dim, out_dim, seed).
PointSet random_projection(std::span<const float> data, std::size_t n,
                           int in_dim, int out_dim, std::uint64_t seed);

}  // namespace tt
