#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/projection.h"
#include "util/rng.h"

namespace tt {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Uniform direction on the unit sphere.
void sphere_dir(Pcg32& rng, double out[3]) {
  double z = rng.uniform(-1.0, 1.0);
  double phi = rng.uniform(0.0, 2.0 * kPi);
  double r = std::sqrt(std::max(0.0, 1.0 - z * z));
  out[0] = r * std::cos(phi);
  out[1] = r * std::sin(phi);
  out[2] = z;
}

}  // namespace

BodySet gen_plummer(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed, 1);
  BodySet b{PointSet(3, n), std::vector<float>(n, 1.0f / n),
            std::vector<float>(3 * n)};
  for (std::size_t i = 0; i < n; ++i) {
    // Radius from the Plummer cumulative mass profile (Aarseth et al. 1974):
    // r = (u^{-2/3} - 1)^{-1/2} with u uniform, clipped to the 99% sphere.
    double u = rng.uniform(1e-6, 1.0);
    double r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    r = std::min(r, 8.0);
    double dir[3];
    sphere_dir(rng, dir);
    for (int d = 0; d < 3; ++d)
      b.pos.set(i, d, static_cast<float>(r * dir[d]));

    // Velocity from the isotropic distribution via von Neumann rejection:
    // g(q) = q^2 (1-q^2)^{7/2}, v = q * v_escape(r).
    double q = 0.0, g = 0.1;
    while (g > q * q * std::pow(1.0 - q * q, 3.5)) {
      q = rng.uniform(0.0, 1.0);
      g = rng.uniform(0.0, 0.1);
    }
    double vesc = std::sqrt(2.0) * std::pow(1.0 + r * r, -0.25);
    double vdir[3];
    sphere_dir(rng, vdir);
    for (int d = 0; d < 3; ++d)
      b.vel[static_cast<std::size_t>(d) * n + i] =
          static_cast<float>(q * vesc * vdir[d]);
  }
  return b;
}

BodySet gen_random_bodies(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed, 2);
  BodySet b{PointSet(3, n), std::vector<float>(n, 1.0f / n),
            std::vector<float>(3 * n)};
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d) {
      b.pos.set(i, d, rng.next_float());
      b.vel[static_cast<std::size_t>(d) * n + i] =
          static_cast<float>(rng.uniform(-0.01, 0.01));
    }
  }
  return b;
}

PointSet gen_uniform(std::size_t n, int dim, std::uint64_t seed) {
  Pcg32 rng(seed, 3);
  PointSet p(dim, n);
  for (std::size_t i = 0; i < n; ++i)
    for (int d = 0; d < dim; ++d) p.set(i, d, rng.next_float());
  return p;
}

PointSet gen_covtype_like(std::size_t n, int out_dim, std::uint64_t seed) {
  // Forest-cover records: 54 attributes, 7 cover types; we mimic with 7
  // anisotropic Gaussian clusters of unequal population whose per-dimension
  // scales differ (elevation-like columns dominate).
  constexpr int kInDim = 54;
  constexpr int kClusters = 7;
  Pcg32 rng(seed, 4);

  double center[kClusters][kInDim];
  double sigma[kClusters][kInDim];
  for (int c = 0; c < kClusters; ++c)
    for (int d = 0; d < kInDim; ++d) {
      center[c][d] = rng.normal() * 2.0;
      sigma[c][d] = 0.15 + rng.next_double() * (d < 10 ? 1.2 : 0.3);
    }
  // Population weights ~ the real covtype imbalance (two dominant classes).
  const double weights[kClusters] = {0.36, 0.49, 0.06, 0.01, 0.02, 0.03, 0.03};

  std::vector<float> raw(n * kInDim);
  for (std::size_t i = 0; i < n; ++i) {
    double u = rng.next_double(), acc = 0.0;
    int c = kClusters - 1;
    for (int k = 0; k < kClusters; ++k) {
      acc += weights[k];
      if (u < acc) {
        c = k;
        break;
      }
    }
    for (int d = 0; d < kInDim; ++d)
      raw[i * kInDim + d] =
          static_cast<float>(center[c][d] + rng.normal() * sigma[c][d]);
  }
  return random_projection(raw, n, kInDim, out_dim, seed ^ 0xc0417e);
}

PointSet gen_mnist_like(std::size_t n, int out_dim, std::uint64_t seed) {
  return gen_mnist_like_labeled(n, out_dim, seed).points;
}

LabeledPoints gen_mnist_like_labeled(std::size_t n, int out_dim,
                                     std::uint64_t seed) {
  // Handwritten digits live near a low-dimensional manifold inside 784-d
  // pixel space: we synthesize 10 classes, each a random affine image of a
  // 12-d latent Gaussian, plus small isotropic pixel noise.
  constexpr int kInDim = 784;
  constexpr int kLatent = 12;
  constexpr int kClasses = 10;
  Pcg32 rng(seed, 5);

  // Per-class frame: origin + latent basis. Basis entries are sparse-ish to
  // keep generation at O(latent * in_dim) but the images still overlap.
  std::vector<float> origin(kClasses * kInDim);
  std::vector<float> basis(kClasses * kLatent * kInDim);
  for (auto& v : origin) v = static_cast<float>(rng.normal() * 1.5);
  for (auto& v : basis) v = static_cast<float>(rng.normal() * 0.6);

  std::vector<float> raw(n * kInDim);
  std::vector<float> latent(kLatent);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    int c = static_cast<int>(rng.next_below(kClasses));
    labels[i] = c;
    for (int l = 0; l < kLatent; ++l)
      latent[l] = static_cast<float>(rng.normal());
    const float* o = &origin[static_cast<std::size_t>(c) * kInDim];
    const float* bmat =
        &basis[static_cast<std::size_t>(c) * kLatent * kInDim];
    float* row = &raw[i * kInDim];
    for (int d = 0; d < kInDim; ++d) row[d] = o[d];
    for (int l = 0; l < kLatent; ++l) {
      const float* brow = bmat + static_cast<std::size_t>(l) * kInDim;
      for (int d = 0; d < kInDim; ++d) row[d] += latent[l] * brow[d];
    }
    for (int d = 0; d < kInDim; ++d)
      row[d] += static_cast<float>(rng.normal() * 0.05);
  }
  return {random_projection(raw, n, kInDim, out_dim, seed ^ 0x3a157),
          std::move(labels)};
}

PointSet gen_geocity_like(std::size_t n, std::uint64_t seed) {
  // City locations: cluster populations follow a Zipf-like power law, and
  // each "city" is a tight 2-d Gaussian blob; a small uniform background
  // stands in for rural locations.
  Pcg32 rng(seed, 6);
  constexpr int kCities = 64;
  double cx[kCities], cy[kCities], cw[kCities], spread[kCities];
  double total = 0.0;
  for (int c = 0; c < kCities; ++c) {
    cx[c] = rng.uniform(0.0, 360.0);
    cy[c] = rng.uniform(-60.0, 70.0);
    cw[c] = 1.0 / std::pow(c + 1.0, 1.1);  // Zipf populations
    spread[c] = 0.02 + 0.2 * rng.next_double();
    total += cw[c];
  }
  PointSet p(2, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_double() < 0.05) {  // rural background
      p.set(i, 0, static_cast<float>(rng.uniform(0.0, 360.0)));
      p.set(i, 1, static_cast<float>(rng.uniform(-60.0, 70.0)));
      continue;
    }
    double u = rng.uniform(0.0, total), acc = 0.0;
    int c = kCities - 1;
    for (int k = 0; k < kCities; ++k) {
      acc += cw[k];
      if (u < acc) {
        c = k;
        break;
      }
    }
    p.set(i, 0, static_cast<float>(cx[c] + rng.normal() * spread[c]));
    p.set(i, 1, static_cast<float>(cy[c] + rng.normal() * spread[c]));
  }
  return p;
}

}  // namespace tt
