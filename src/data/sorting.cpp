#include "data/sorting.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace tt {
namespace {

// Spread the low 21 bits of v so consecutive bits land 3 apart.
std::uint64_t spread3(std::uint64_t v) {
  v &= 0x1fffff;
  v = (v | v << 32) & 0x1f00000000ffffULL;
  v = (v | v << 16) & 0x1f0000ff0000ffULL;
  v = (v | v << 8) & 0x100f00f00f00f00fULL;
  v = (v | v << 4) & 0x10c30c30c30c30c3ULL;
  v = (v | v << 2) & 0x1249249249249249ULL;
  return v;
}

std::uint64_t spread2(std::uint64_t v) {
  v &= 0xffffffff;
  v = (v | v << 16) & 0x0000ffff0000ffffULL;
  v = (v | v << 8) & 0x00ff00ff00ff00ffULL;
  v = (v | v << 4) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | v << 2) & 0x3333333333333333ULL;
  v = (v | v << 1) & 0x5555555555555555ULL;
  return v;
}

}  // namespace

std::vector<std::uint32_t> morton_order(const PointSet& pts) {
  const int dim = pts.dim();
  if (dim != 2 && dim != 3)
    throw std::invalid_argument("morton_order supports 2-d and 3-d only");

  float lo[3], hi[3];
  for (int d = 0; d < dim; ++d) {
    lo[d] = std::numeric_limits<float>::infinity();
    hi[d] = -std::numeric_limits<float>::infinity();
  }
  for (std::size_t i = 0; i < pts.size(); ++i)
    for (int d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], pts.at(i, d));
      hi[d] = std::max(hi[d], pts.at(i, d));
    }

  const double bits = dim == 2 ? 4294967295.0 : 2097151.0;  // 32 / 21 bits
  std::vector<std::uint64_t> code(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::uint64_t c = 0;
    for (int d = 0; d < dim; ++d) {
      double range = static_cast<double>(hi[d]) - lo[d];
      double t = range > 0 ? (pts.at(i, d) - lo[d]) / range : 0.0;
      auto q = static_cast<std::uint64_t>(t * bits);
      c |= (dim == 2 ? spread2(q) : spread3(q)) << d;
    }
    code[i] = c;
  }
  std::vector<std::uint32_t> perm(pts.size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(), [&](std::uint32_t a, std::uint32_t b) {
    return code[a] < code[b];
  });
  return perm;
}

std::vector<std::uint32_t> tree_order(const PointSet& pts, int leaf_size) {
  KdTree t = build_kdtree(pts, leaf_size);
  // data_perm already lists points leaf-by-leaf in DFS order.
  std::vector<std::uint32_t> perm(t.data_perm.begin(), t.data_perm.end());
  return perm;
}

std::vector<std::uint32_t> shuffled_order(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  Pcg32 rng(seed, 7);
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

std::vector<std::uint32_t> identity_order(std::size_t n) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  return perm;
}

}  // namespace tt
