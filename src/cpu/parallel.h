// Thin OpenMP wrappers for the CPU-side (real, measured) parallelism.
#pragma once

#include <cstdint>

namespace tt {

// Hardware threads available to this process.
int hardware_threads();

// Runs fn(i) for i in [0, n) on n_threads OpenMP threads.
template <class Fn>
void parallel_for(std::int64_t n, int n_threads, Fn&& fn) {
#pragma omp parallel for num_threads(n_threads) schedule(dynamic, 256)
  for (std::int64_t i = 0; i < n; ++i) fn(i);
}

}  // namespace tt
