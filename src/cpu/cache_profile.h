// Replay a kernel's traversal loads through the CPU cache simulator.
//
// Points run back-to-back on one simulated core (as one CPU thread would
// execute them), so consecutive-point locality -- the thing sorting buys
// on the CPU -- shows up directly in the hit rates.
#pragma once

#include "core/traversal_kernel.h"
#include "cpu/cache_sim.h"

namespace tt {

template <TraversalKernel K>
CacheStats profile_cpu_cache(const K& k, const GpuAddressSpace& space,
                             const CpuCacheConfig& cfg = {}) {
  CacheMem mem(space, cfg);
  std::vector<Child<typename K::UArg, typename K::LArg>> stk;
  Child<typename K::UArg, typename K::LArg> out[K::kFanout];
  for (std::uint32_t pid = 0; pid < k.num_points(); ++pid) {
    typename K::State st = k.init(pid, mem, 0);
    stk.clear();
    stk.push_back({k.root(), k.root_uarg(), k.root_larg()});
    while (!stk.empty()) {
      auto top = stk.back();
      stk.pop_back();
      if (!k.visit(top.node, top.uarg, top.larg, st, mem, 0)) continue;
      int cs = K::kNumCallSets > 1 ? k.choose_callset(top.node, st) : 0;
      int cnt = k.children(top.node, top.uarg, cs, st, out, mem, 0);
      for (int i = cnt - 1; i >= 0; --i) stk.push_back(out[i]);
    }
  }
  return mem.stats();
}

}  // namespace tt
