#include "cpu/parallel.h"

#include <omp.h>

namespace tt {

int hardware_threads() { return omp_get_max_threads(); }

}  // namespace tt
