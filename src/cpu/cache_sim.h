// CPU cache-hierarchy simulator, reusing the same per-access hooks the
// kernels already expose through their Mem template parameter.
//
// Purpose: the paper explains several CPU-side effects by locality ("the
// Geocity input performs especially well on the CPU ... traversals are
// very short, promoting good locality", section 6.2). CacheMem lets us
// *measure* that claim for any kernel by replaying its loads through an
// Opteron-like L1/L2/L3 hierarchy, and anchors the documented CPU scaling
// model with a miss-rate term.
#pragma once

#include <cstdint>

#include "simt/address_space.h"
#include "simt/l2cache.h"

namespace tt {

// Opteron 6176-ish geometry (the paper's CPU): 64KB 2-way L1D, 512KB
// 16-way L2, 6MB 48-way shared L3; 64-byte lines.
struct CpuCacheConfig {
  std::size_t l1_bytes = 64 * 1024;
  int l1_assoc = 2;
  std::size_t l2_bytes = 512 * 1024;
  int l2_assoc = 16;
  std::size_t l3_bytes = 6 * 1024 * 1024;
  int l3_assoc = 48;
  int line_bytes = 64;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_miss = 0;
  std::uint64_t l2_miss = 0;
  std::uint64_t l3_miss = 0;  // DRAM accesses

  [[nodiscard]] double l1_hit_rate() const {
    return accesses ? 1.0 - static_cast<double>(l1_miss) / accesses : 0.0;
  }
  [[nodiscard]] double dram_rate() const {
    return accesses ? static_cast<double>(l3_miss) / accesses : 0.0;
  }
  void merge(const CacheStats& o) {
    accesses += o.accesses;
    l1_miss += o.l1_miss;
    l2_miss += o.l2_miss;
    l3_miss += o.l3_miss;
  }
};

// Drop-in Mem recorder for kernels running on the CPU: every lane_load is
// resolved to a byte address via the same GpuAddressSpace the kernel
// registered its buffers in (addresses are just labels; reuse is what
// matters) and walked through the hierarchy. The simple set-associative
// LRU model from simt/l2cache.h serves for every level.
class CacheMem {
 public:
  CacheMem(const GpuAddressSpace& space, const CpuCacheConfig& cfg)
      : space_(&space),
        l1_(cfg.l1_bytes, cfg.line_bytes, cfg.l1_assoc),
        l2_(cfg.l2_bytes, cfg.line_bytes, cfg.l2_assoc),
        l3_(cfg.l3_bytes, cfg.line_bytes, cfg.l3_assoc) {}

  void lane_load(int /*lane*/, BufferId buf, std::uint64_t idx) {
    touch(space_->addr(buf, idx), static_cast<std::uint32_t>(space_->elem_bytes(buf)));
  }
  void lane_load_raw(int /*lane*/, std::uint64_t addr, std::uint32_t bytes) {
    touch(addr, bytes);
  }
  std::uint64_t commit() { return 0; }

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  void touch(std::uint64_t addr, std::uint32_t bytes) {
    // Walk each 64-byte line of the access through L1 -> L2 -> L3.
    std::uint64_t first = addr / 64, last = (addr + (bytes ? bytes : 1) - 1) / 64;
    for (std::uint64_t line = first; line <= last; ++line) {
      std::uint64_t a = line * 64;
      ++stats_.accesses;
      if (l1_.access(a)) continue;
      ++stats_.l1_miss;
      if (l2_.access(a)) continue;
      ++stats_.l2_miss;
      if (l3_.access(a)) continue;
      ++stats_.l3_miss;
    }
  }

  const GpuAddressSpace* space_;
  L2Cache l1_, l2_, l3_;
  CacheStats stats_;
};

}  // namespace tt
