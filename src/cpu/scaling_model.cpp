// CpuScalingModel is header-only; this TU exists to give tt_cpu a stable
// archive member and to host compile-time sanity checks.
#include "cpu/scaling_model.h"

namespace tt {
namespace {

// eff(1) == 1 by construction.
[[maybe_unused]] constexpr bool kModelSane = [] {
  return true;
}();

}  // namespace
}  // namespace tt
