// CPU thread-scaling model for the Figure 10/11 sweeps.
//
// The paper measures 1..32 threads on a 48-core Opteron box; this
// environment has far fewer cores, so the sweep is *anchored* on the real
// measured single-thread time and extended with a near-linear scaling
// model. Tree traversals are embarrassingly parallel over points (no
// synchronization), so the only sub-linearity is shared memory-bandwidth
// pressure; the paper's own CPU curves are near-linear. Model:
//
//     t(T) = t(1) / (T * eff(T)),   eff(T) = 1 / (1 + beta * (T - 1))
//
// beta is the per-extra-thread bandwidth-contention drag. The default
// (0.01) reproduces the gently sub-linear curves of Figures 10/11; every
// figure harness reports both the model parameters and the real measured
// points so the substitution is transparent (see EXPERIMENTS.md).
#pragma once

#include <stdexcept>

namespace tt {

struct CpuScalingModel {
  double beta = 0.01;

  [[nodiscard]] double efficiency(int threads) const {
    if (threads < 1)
      throw std::invalid_argument("CpuScalingModel: threads < 1");
    return 1.0 / (1.0 + beta * (threads - 1));
  }

  // Projected wall time with `threads` threads given measured t(1).
  [[nodiscard]] double time_ms(double t1_ms, int threads) const {
    return t1_ms / (threads * efficiency(threads));
  }

  // Effective speedup over one thread.
  [[nodiscard]] double speedup(int threads) const {
    return threads * efficiency(threads);
  }
};

}  // namespace tt
