#include "spatial/relayout.h"

#include <stdexcept>

namespace tt {

std::vector<NodeId> bfs_order(const LinearTree& tree) {
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(tree.n_nodes));
  order.push_back(0);
  for (std::size_t head = 0; head < order.size(); ++head) {
    NodeId n = order[head];
    for (int k = 0; k < tree.fanout; ++k) {
      NodeId c = tree.child(n, k);
      if (c != kNullNode) order.push_back(c);
    }
  }
  if (order.size() != static_cast<std::size_t>(tree.n_nodes))
    throw std::logic_error("bfs_order: tree not fully reachable");
  return order;
}

LinearTree relayout(const LinearTree& tree,
                    std::span<const NodeId> new_to_old) {
  const auto n = static_cast<std::size_t>(tree.n_nodes);
  if (new_to_old.size() != n)
    throw std::invalid_argument("relayout: permutation size mismatch");
  std::vector<NodeId> old_to_new(n, kNullNode);
  for (std::size_t i = 0; i < n; ++i)
    old_to_new[static_cast<std::size_t>(new_to_old[i])] =
        static_cast<NodeId>(i);

  LinearTree out;
  out.fanout = tree.fanout;
  out.n_nodes = tree.n_nodes;
  out.children.assign(n * tree.fanout, kNullNode);
  out.n_children.resize(n);
  out.parent.resize(n);
  out.depth.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    NodeId old_id = new_to_old[i];
    out.n_children[i] = tree.n_children[static_cast<std::size_t>(old_id)];
    out.depth[i] = tree.depth[static_cast<std::size_t>(old_id)];
    NodeId p = tree.parent[static_cast<std::size_t>(old_id)];
    out.parent[i] = p == kNullNode ? kNullNode
                                   : old_to_new[static_cast<std::size_t>(p)];
    for (int k = 0; k < tree.fanout; ++k) {
      NodeId c = tree.child(old_id, k);
      if (c != kNullNode)
        out.children[i * tree.fanout + k] =
            old_to_new[static_cast<std::size_t>(c)];
    }
  }
  return out;
}

KdTree relayout_kdtree_bfs(const KdTree& tree) {
  std::vector<NodeId> order = bfs_order(tree.topo);
  KdTree out;
  out.topo = relayout(tree.topo, order);
  out.dim = tree.dim;
  out.data_perm = tree.data_perm;  // leaf slices index the same array
  const auto n = static_cast<std::size_t>(tree.topo.n_nodes);
  out.bbox_min.resize(n * tree.dim);
  out.bbox_max.resize(n * tree.dim);
  out.split_dim.resize(n);
  out.split_val.resize(n);
  out.leaf_begin.resize(n);
  out.leaf_end.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto old_id = static_cast<std::size_t>(order[i]);
    for (int d = 0; d < tree.dim; ++d) {
      out.bbox_min[i * tree.dim + d] = tree.bbox_min[old_id * tree.dim + d];
      out.bbox_max[i * tree.dim + d] = tree.bbox_max[old_id * tree.dim + d];
    }
    out.split_dim[i] = tree.split_dim[old_id];
    out.split_val[i] = tree.split_val[old_id];
    out.leaf_begin[i] = tree.leaf_begin[old_id];
    out.leaf_end[i] = tree.leaf_end[old_id];
  }
  return out;
}

}  // namespace tt
