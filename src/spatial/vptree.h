// Vantage-point tree (Yianilos 1993), the structure behind the paper's VP
// benchmark. Every node holds a vantage point and a threshold radius mu:
// the inside child covers points with dist(vp, x) <= mu, the outside child
// the rest. Nearest-neighbor truncation compares |dist(q, vp) - mu| with
// the current best distance.
#pragma once

#include <cstdint>
#include <vector>

#include "spatial/linear_tree.h"
#include "spatial/point_set.h"

namespace tt {

struct VpTree {
  LinearTree topo;
  int dim = 0;

  std::vector<std::int32_t> point_id;  // vantage point at each node
  std::vector<float> coords;           // its coordinates [node * dim + d]
  std::vector<float> mu;               // threshold radius (0 at leaves)

  static constexpr int kInside = 0;
  static constexpr int kOutside = 1;
};

// Vantage points are chosen deterministically from `seed` (the classic
// construction samples candidates; we pick a random element of the range).
VpTree build_vptree(const PointSet& pts, std::uint64_t seed);

}  // namespace tt
