#include "spatial/kdtree.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace tt {

double KdTree::box_sq_dist(NodeId n, const float* q) const {
  const float* lo = &bbox_min[static_cast<std::size_t>(n) * dim];
  const float* hi = &bbox_max[static_cast<std::size_t>(n) * dim];
  double s = 0.0;
  for (int d = 0; d < dim; ++d) {
    double diff = 0.0;
    if (q[d] < lo[d])
      diff = static_cast<double>(lo[d]) - q[d];
    else if (q[d] > hi[d])
      diff = static_cast<double>(q[d]) - hi[d];
    s += diff * diff;
  }
  return s;
}

namespace {

struct KdBuilder {
  const PointSet& pts;
  int leaf_size;
  KdTree out;

  void payload_reserve() {
    // payload vectors grow with add_node; keep them in sync by appending.
  }

  NodeId emit_node(NodeId parent, std::int32_t depth, std::int32_t begin,
                   std::int32_t end) {
    NodeId id = out.topo.add_node(parent, depth);
    const int dim = out.dim;
    out.bbox_min.resize(out.bbox_min.size() + dim,
                        std::numeric_limits<float>::infinity());
    out.bbox_max.resize(out.bbox_max.size() + dim,
                        -std::numeric_limits<float>::infinity());
    out.split_dim.push_back(-1);
    out.split_val.push_back(0.f);
    out.leaf_begin.push_back(begin);
    out.leaf_end.push_back(end);
    float* lo = &out.bbox_min[static_cast<std::size_t>(id) * dim];
    float* hi = &out.bbox_max[static_cast<std::size_t>(id) * dim];
    for (std::int32_t i = begin; i < end; ++i) {
      for (int d = 0; d < dim; ++d) {
        float v = pts.at(out.data_perm[i], d);
        lo[d] = std::min(lo[d], v);
        hi[d] = std::max(hi[d], v);
      }
    }
    return id;
  }

  NodeId build(NodeId parent, std::int32_t depth, std::int32_t begin,
               std::int32_t end) {
    NodeId id = emit_node(parent, depth, begin, end);
    if (end - begin <= leaf_size) return id;

    const int dim = out.dim;
    const float* lo = &out.bbox_min[static_cast<std::size_t>(id) * dim];
    const float* hi = &out.bbox_max[static_cast<std::size_t>(id) * dim];
    int widest = 0;
    float extent = -1.f;
    for (int d = 0; d < dim; ++d) {
      float e = hi[d] - lo[d];
      if (e > extent) {
        extent = e;
        widest = d;
      }
    }
    // Degenerate slab (all points identical): keep as a (large) leaf rather
    // than recursing forever on an unsplittable range.
    if (extent <= 0.f) return id;

    std::int32_t mid = begin + (end - begin) / 2;
    auto key = [&](std::uint32_t p) { return pts.at(p, widest); };
    std::nth_element(out.data_perm.begin() + begin, out.data_perm.begin() + mid,
                     out.data_perm.begin() + end,
                     [&](std::uint32_t a, std::uint32_t b) { return key(a) < key(b); });
    float sv = key(out.data_perm[mid]);
    // If the median value ties across the boundary, nth_element still gives
    // a valid partition by position; the box test stays conservative.
    out.split_dim[id] = widest;
    out.split_val[id] = sv;
    // Interior nodes do not own points directly; their slice is their
    // children's union (kept for diagnostics).
    NodeId left = build(id, depth + 1, begin, mid);
    out.topo.set_child(id, 0, left);
    NodeId right = build(id, depth + 1, mid, end);
    out.topo.set_child(id, 1, right);
    return id;
  }
};

}  // namespace

KdTree build_kdtree(const PointSet& pts, int leaf_size) {
  if (pts.empty()) throw std::invalid_argument("build_kdtree: empty input");
  if (leaf_size < 1) throw std::invalid_argument("build_kdtree: leaf_size < 1");
  KdBuilder b{pts, leaf_size, {}};
  b.out.dim = pts.dim();
  b.out.topo.fanout = 2;
  b.out.data_perm.resize(pts.size());
  std::iota(b.out.data_perm.begin(), b.out.data_perm.end(), 0u);
  b.build(kNullNode, 0, 0, static_cast<std::int32_t>(pts.size()));
  b.out.topo.validate();
  return std::move(b.out);
}

namespace {

struct KdNNBuilder {
  const PointSet& pts;
  KdTreeNN out;
  std::vector<std::uint32_t> perm;

  NodeId build(NodeId parent, std::int32_t depth, std::int32_t begin,
               std::int32_t end) {
    // Median along the cycling dimension becomes this node's point.
    int d = depth % out.dim;
    std::int32_t mid = begin + (end - begin) / 2;
    std::nth_element(perm.begin() + begin, perm.begin() + mid,
                     perm.begin() + end, [&](std::uint32_t a, std::uint32_t b) {
                       return pts.at(a, d) < pts.at(b, d);
                     });
    NodeId id = out.topo.add_node(parent, depth);
    std::uint32_t p = perm[mid];
    out.point_id.push_back(static_cast<std::int32_t>(p));
    for (int k = 0; k < out.dim; ++k) out.coords.push_back(pts.at(p, k));
    out.split_dim.push_back(d);

    if (mid > begin) {
      NodeId below = build(id, depth + 1, begin, mid);
      out.topo.set_child(id, KdTreeNN::kBelow, below);
    }
    if (end > mid + 1) {
      NodeId above = build(id, depth + 1, mid + 1, end);
      out.topo.set_child(id, KdTreeNN::kAbove, above);
    }
    return id;
  }
};

}  // namespace

KdTreeNN build_kdtree_nn(const PointSet& pts) {
  if (pts.empty()) throw std::invalid_argument("build_kdtree_nn: empty input");
  KdNNBuilder b{pts, {}, {}};
  b.out.dim = pts.dim();
  b.out.topo.fanout = 2;
  b.perm.resize(pts.size());
  std::iota(b.perm.begin(), b.perm.end(), 0u);
  b.build(kNullNode, 0, 0, static_cast<std::int32_t>(pts.size()));
  b.out.topo.validate();
  return std::move(b.out);
}

}  // namespace tt
