// Linearized tree topology shared by all tree kinds.
//
// The paper (section 5.2) copies the tree to the GPU as "an identical
// linearized copy ... using a left-biased linearization". Builders in this
// library emit nodes directly in left-biased depth-first order: node 0 is
// the root, a node's first (leftmost) child subtree immediately follows it.
// Children indices are stored explicitly per node (the nodes1 partial
// struct of Figure 9b); payloads live in per-algorithm SoA arrays indexed
// by these DFS node ids.
#pragma once

#include <cstdint>
#include <vector>

namespace tt {

using NodeId = std::int32_t;
inline constexpr NodeId kNullNode = -1;

struct LinearTree {
  int fanout = 2;           // maximum out-degree (2 for kd/vp, 8 for oct)
  std::int64_t n_nodes = 0;

  // children[node * fanout + k]; kNullNode when absent. Slots keep their
  // semantic identity (e.g. slot 0 = left / below-split), so interior gaps
  // are allowed: an NN-style kd-node may have only a right child.
  std::vector<NodeId> children;
  std::vector<std::uint8_t> n_children;  // count of present children; 0 => leaf
  std::vector<NodeId> parent;            // kNullNode for root
  std::vector<std::int32_t> depth;       // root = 0

  [[nodiscard]] bool is_leaf(NodeId n) const { return n_children[n] == 0; }
  [[nodiscard]] NodeId child(NodeId n, int k) const {
    return children[static_cast<std::size_t>(n) * fanout + k];
  }

  // Appends a node, returns its id; children are linked by the builder via
  // set_child once the child subtree has been emitted.
  NodeId add_node(NodeId parent_id, std::int32_t node_depth) {
    NodeId id = static_cast<NodeId>(n_nodes++);
    children.resize(children.size() + fanout, kNullNode);
    n_children.push_back(0);
    parent.push_back(parent_id);
    depth.push_back(node_depth);
    return id;
  }
  void set_child(NodeId n, int k, NodeId c) {
    auto& slot = children[static_cast<std::size_t>(n) * fanout + k];
    if (slot == kNullNode && c != kNullNode) ++n_children[n];
    slot = c;
  }

  [[nodiscard]] std::int32_t max_depth() const;

  // Structural validation used by tests and builders:
  //  * exactly one root (node 0), every other node reachable from it
  //  * parent/child links are mutually consistent
  //  * DFS left-bias: the first present child of n is n+1
  // Throws std::logic_error describing the first violation.
  void validate() const;
};

}  // namespace tt
