#include "spatial/linear_tree.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace tt {

std::int32_t LinearTree::max_depth() const {
  std::int32_t m = 0;
  for (auto d : depth) m = std::max(m, d);
  return m;
}

void LinearTree::validate() const {
  auto fail = [](const std::string& what) {
    throw std::logic_error("LinearTree::validate: " + what);
  };
  if (n_nodes == 0) fail("empty tree");
  if (static_cast<std::int64_t>(parent.size()) != n_nodes ||
      static_cast<std::int64_t>(depth.size()) != n_nodes ||
      static_cast<std::int64_t>(n_children.size()) != n_nodes ||
      static_cast<std::int64_t>(children.size()) != n_nodes * fanout)
    fail("array sizes inconsistent with n_nodes");
  if (parent[0] != kNullNode) fail("node 0 must be the root");
  if (depth[0] != 0) fail("root depth must be 0");

  std::vector<bool> seen(static_cast<std::size_t>(n_nodes), false);
  seen[0] = true;
  for (NodeId n = 0; n < n_nodes; ++n) {
    int present = 0;
    NodeId first_child = kNullNode;
    for (int k = 0; k < fanout; ++k) {
      NodeId c = child(n, k);
      if (c == kNullNode) continue;
      ++present;
      if (first_child == kNullNode) first_child = c;
      if (c <= n || c >= n_nodes) fail("child id out of DFS range");
      if (parent[c] != n) fail("parent link mismatch");
      if (depth[c] != depth[n] + 1) fail("depth link mismatch");
      if (seen[c]) fail("node has two parents");
      seen[c] = true;
    }
    if (present != n_children[n]) fail("n_children count mismatch");
    if (present > 0 && first_child != n + 1)
      fail("not left-biased: first child of " + std::to_string(n) + " is " +
           std::to_string(first_child));
  }
  for (NodeId n = 0; n < n_nodes; ++n)
    if (!seen[n]) {
      std::ostringstream ss;
      ss << "node " << n << " unreachable from root";
      fail(ss.str());
    }
}

}  // namespace tt
