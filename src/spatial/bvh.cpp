#include "spatial/bvh.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace tt {

namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();
}

float Bvh::box_entry(NodeId n, const Vec3& o, const Vec3& inv_d,
                     float t_max) const {
  const auto i = static_cast<std::size_t>(n);
  float t0 = 0.f, t1 = t_max;
  const float lo[3] = {box_min_x[i], box_min_y[i], box_min_z[i]};
  const float hi[3] = {box_max_x[i], box_max_y[i], box_max_z[i]};
  const float oo[3] = {o.x, o.y, o.z};
  const float id[3] = {inv_d.x, inv_d.y, inv_d.z};
  for (int a = 0; a < 3; ++a) {
    float ta = (lo[a] - oo[a]) * id[a];
    float tb = (hi[a] - oo[a]) * id[a];
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) return kInf;
  }
  return t0;
}

namespace {

struct BvhBuilder {
  const TriangleMesh& mesh;
  int leaf_size;
  Bvh out;

  NodeId emit_node(NodeId parent, std::int32_t depth, std::int32_t begin,
                   std::int32_t end) {
    NodeId id = out.topo.add_node(parent, depth);
    float lo[3] = {kInf, kInf, kInf};
    float hi[3] = {-kInf, -kInf, -kInf};
    for (std::int32_t i = begin; i < end; ++i) {
      const Triangle& t = mesh.tris[out.tri_perm[static_cast<std::size_t>(i)]];
      for (const Vec3& v : {t.v0, t.v1, t.v2})
        for (int a = 0; a < 3; ++a) {
          lo[a] = std::min(lo[a], v[a]);
          hi[a] = std::max(hi[a], v[a]);
        }
    }
    out.box_min_x.push_back(lo[0]);
    out.box_min_y.push_back(lo[1]);
    out.box_min_z.push_back(lo[2]);
    out.box_max_x.push_back(hi[0]);
    out.box_max_y.push_back(hi[1]);
    out.box_max_z.push_back(hi[2]);
    out.leaf_begin.push_back(begin);
    out.leaf_end.push_back(end);
    return id;
  }

  NodeId build(NodeId parent, std::int32_t depth, std::int32_t begin,
               std::int32_t end) {
    NodeId id = emit_node(parent, depth, begin, end);
    if (end - begin <= leaf_size) return id;

    // Split at the median centroid of the widest centroid axis.
    float lo[3] = {kInf, kInf, kInf}, hi[3] = {-kInf, -kInf, -kInf};
    for (std::int32_t i = begin; i < end; ++i) {
      Vec3 c = mesh.tris[out.tri_perm[static_cast<std::size_t>(i)]].centroid();
      for (int a = 0; a < 3; ++a) {
        lo[a] = std::min(lo[a], c[a]);
        hi[a] = std::max(hi[a], c[a]);
      }
    }
    int axis = 0;
    float extent = -1.f;
    for (int a = 0; a < 3; ++a)
      if (hi[a] - lo[a] > extent) {
        extent = hi[a] - lo[a];
        axis = a;
      }
    if (extent <= 0.f) return id;  // coincident centroids: keep as leaf

    std::int32_t mid = begin + (end - begin) / 2;
    std::nth_element(out.tri_perm.begin() + begin, out.tri_perm.begin() + mid,
                     out.tri_perm.begin() + end,
                     [&](std::uint32_t a, std::uint32_t b) {
                       return mesh.tris[a].centroid()[axis] <
                              mesh.tris[b].centroid()[axis];
                     });
    NodeId left = build(id, depth + 1, begin, mid);
    out.topo.set_child(id, 0, left);
    NodeId right = build(id, depth + 1, mid, end);
    out.topo.set_child(id, 1, right);
    return id;
  }
};

}  // namespace

Bvh build_bvh(const TriangleMesh& mesh, int leaf_size) {
  if (mesh.tris.empty()) throw std::invalid_argument("build_bvh: empty mesh");
  if (leaf_size < 1) throw std::invalid_argument("build_bvh: leaf_size < 1");
  BvhBuilder b{mesh, leaf_size, {}};
  b.out.topo.fanout = 2;
  b.out.tri_perm.resize(mesh.tris.size());
  std::iota(b.out.tri_perm.begin(), b.out.tri_perm.end(), 0u);
  b.build(kNullNode, 0, 0, static_cast<std::int32_t>(mesh.tris.size()));
  b.out.topo.validate();
  return std::move(b.out);
}

float ray_triangle(const Vec3& o, const Vec3& d, const Triangle& tri,
                   float t_max) {
  constexpr float kEps = 1e-7f;
  Vec3 e1 = tri.v1 - tri.v0;
  Vec3 e2 = tri.v2 - tri.v0;
  Vec3 p = cross(d, e2);
  float det = dot(e1, p);
  if (std::fabs(det) < kEps) return kInf;  // parallel
  float inv_det = 1.0f / det;
  Vec3 s = o - tri.v0;
  float u = dot(s, p) * inv_det;
  if (u < 0.f || u > 1.f) return kInf;
  Vec3 q = cross(s, e1);
  float v = dot(d, q) * inv_det;
  if (v < 0.f || u + v > 1.f) return kInf;
  float t = dot(e2, q) * inv_det;
  return (t > kEps && t < t_max) ? t : kInf;
}

}  // namespace tt
