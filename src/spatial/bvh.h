// Bounding-volume hierarchy over triangles -- the graphics substrate from
// the paper's introduction ("a bounding-volume hierarchy that captures the
// spatial distribution of objects in a scene" traversed by rays) and the
// structure targeted by the prior-work rope papers it generalizes.
//
// Median split on the widest axis of centroid extent; leaves own a slice
// of a permuted triangle array (<= leaf_size triangles).
#pragma once

#include <cstdint>
#include <vector>

#include "spatial/linear_tree.h"

namespace tt {

struct Vec3 {
  float x = 0, y = 0, z = 0;

  friend Vec3 operator+(Vec3 a, Vec3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
  friend Vec3 operator-(Vec3 a, Vec3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
  friend Vec3 operator*(Vec3 a, float s) { return {a.x * s, a.y * s, a.z * s}; }
  [[nodiscard]] float operator[](int i) const { return i == 0 ? x : i == 1 ? y : z; }
};

inline float dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
inline Vec3 cross(Vec3 a, Vec3 b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

struct Triangle {
  Vec3 v0, v1, v2;
  [[nodiscard]] Vec3 centroid() const {
    return (v0 + v1 + v2) * (1.0f / 3.0f);
  }
};

struct TriangleMesh {
  std::vector<Triangle> tris;
};

struct Bvh {
  LinearTree topo;  // fanout 2

  // Per-node AABB (SoA xyz) and leaf slices into tri_perm.
  std::vector<float> box_min_x, box_min_y, box_min_z;
  std::vector<float> box_max_x, box_max_y, box_max_z;
  std::vector<std::int32_t> leaf_begin, leaf_end;
  std::vector<std::uint32_t> tri_perm;

  // Slab test: entry distance of ray (o, inv_d) into node n's box, or
  // +inf when the box is missed within [0, t_max].
  [[nodiscard]] float box_entry(NodeId n, const Vec3& o, const Vec3& inv_d,
                                float t_max) const;
};

Bvh build_bvh(const TriangleMesh& mesh, int leaf_size);

// Möller-Trumbore; returns hit distance t in (eps, t_max) or +inf.
float ray_triangle(const Vec3& o, const Vec3& d, const Triangle& tri,
                   float t_max);

}  // namespace tt
