// Point-set container used by every benchmark.
//
// Points are stored structure-of-arrays (coordinate-major), which is also
// the GPU-side layout the paper prescribes (section 5.2): adjacent lanes of
// a warp process adjacent points, so per-dimension contiguous storage makes
// the initial point load coalesce.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace tt {

// Dimensions are runtime values (the paper's inputs range from 2-d geocity
// to 7-d random projections); kMaxDim bounds fixed-size scratch buffers.
inline constexpr int kMaxDim = 8;

class PointSet {
 public:
  PointSet() = default;
  PointSet(int dim, std::size_t n) : dim_(dim), n_(n), coords_(dim * n, 0.f) {
    if (dim <= 0 || dim > kMaxDim) throw std::invalid_argument("bad dim");
  }

  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }

  [[nodiscard]] float at(std::size_t i, int d) const {
    return coords_[static_cast<std::size_t>(d) * n_ + i];
  }
  void set(std::size_t i, int d, float v) {
    coords_[static_cast<std::size_t>(d) * n_ + i] = v;
  }

  // Whole coordinate plane for dimension d (size() floats).
  [[nodiscard]] std::span<const float> plane(int d) const {
    return {coords_.data() + static_cast<std::size_t>(d) * n_, n_};
  }

  // Copy point i into `out[0..dim)`.
  void gather(std::size_t i, float* out) const {
    for (int d = 0; d < dim_; ++d) out[d] = at(i, d);
  }

  // Reorder points so new position j holds old point perm[j].
  void permute(std::span<const std::uint32_t> perm);

  [[nodiscard]] double sq_dist(std::size_t i, const float* q) const {
    double s = 0.0;
    for (int d = 0; d < dim_; ++d) {
      double diff = static_cast<double>(at(i, d)) - q[d];
      s += diff * diff;
    }
    return s;
  }

 private:
  int dim_ = 0;
  std::size_t n_ = 0;
  std::vector<float> coords_;  // [d * n_ + i]
};

inline void PointSet::permute(std::span<const std::uint32_t> perm) {
  if (perm.size() != n_) throw std::invalid_argument("perm size mismatch");
  std::vector<float> next(coords_.size());
  for (int d = 0; d < dim_; ++d) {
    const std::size_t base = static_cast<std::size_t>(d) * n_;
    for (std::size_t j = 0; j < n_; ++j) next[base + j] = coords_[base + perm[j]];
  }
  coords_ = std::move(next);
}

}  // namespace tt
