// Tree re-linearization. The paper copies trees to the GPU "using a
// left-biased linearization" (section 5.2); this module provides the BFS
// alternative so bench/ablation_linearization can quantify that choice.
// Node ids are addresses in the simulated memory, so the layout directly
// changes coalescing and cache behaviour -- semantics are unaffected.
//
// Note: a BFS-laid-out tree no longer satisfies the left-bias invariant
// (first child == n+1), so LinearTree::validate runs with the layout check
// relaxed, and the static-ropes stackless traversal (which *depends* on
// the DFS property) refuses such trees.
#pragma once

#include <span>
#include <vector>

#include "spatial/kdtree.h"
#include "spatial/linear_tree.h"

namespace tt {

// Breadth-first numbering: new_to_old[new_id] = old node id.
std::vector<NodeId> bfs_order(const LinearTree& tree);

// Rebuild the topology under the given numbering (any permutation with
// parents before children).
LinearTree relayout(const LinearTree& tree,
                    std::span<const NodeId> new_to_old);

// KdTree with all per-node payloads moved to BFS ids.
KdTree relayout_kdtree_bfs(const KdTree& tree);

}  // namespace tt
