// Two kd-tree flavours used by the paper's benchmarks.
//
// KdTree (bucket leaves) backs Point Correlation and k-Nearest-Neighbor:
// interior nodes carry the bounding box of their subtree (the truncation
// test is box-to-query distance); leaves own a contiguous slice of a
// permuted point array. Splits are at the median of the widest box
// dimension.
//
// KdTreeNN ("a different implementation of the kd-tree structure", section
// 6.1.2) backs Nearest-Neighbor: the classic formulation where every node
// stores one data point and a splitting hyperplane through it; the
// truncation test is hyperplane distance against the current best.
#pragma once

#include <cstdint>
#include <vector>

#include "spatial/linear_tree.h"
#include "spatial/point_set.h"

namespace tt {

struct KdTree {
  LinearTree topo;
  int dim = 0;

  // Interior + leaf payloads, indexed by node id (SoA, [node * dim + d]).
  std::vector<float> bbox_min;
  std::vector<float> bbox_max;
  std::vector<std::int32_t> split_dim;  // -1 at leaves
  std::vector<float> split_val;

  // Leaves: data_perm[leaf_begin[n] .. leaf_end[n]) are the point ids held
  // by leaf n (indices into the PointSet the tree was built over).
  std::vector<std::int32_t> leaf_begin;
  std::vector<std::int32_t> leaf_end;
  std::vector<std::uint32_t> data_perm;

  // Squared minimum distance from query q (dim floats) to node's box.
  [[nodiscard]] double box_sq_dist(NodeId n, const float* q) const;
};

// leaf_size >= 1; throws std::invalid_argument on empty input.
KdTree build_kdtree(const PointSet& pts, int leaf_size);

struct KdTreeNN {
  LinearTree topo;
  int dim = 0;

  std::vector<std::int32_t> point_id;   // the point stored at each node
  std::vector<float> coords;            // its coordinates [node * dim + d]
  std::vector<std::int32_t> split_dim;  // cycling dimension

  static constexpr int kBelow = 0;  // child slot semantics
  static constexpr int kAbove = 1;
};

KdTreeNN build_kdtree_nn(const PointSet& pts);

}  // namespace tt
