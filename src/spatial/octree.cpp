#include "spatial/octree.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace tt {
namespace {

struct OctBuilder {
  const PointSet& pos;
  std::span<const float> masses;
  int max_depth;
  Octree out;

  NodeId emit_node(NodeId parent, std::int32_t depth, std::int32_t begin,
                   std::int32_t end, float half_width) {
    NodeId id = out.topo.add_node(parent, depth);
    out.com_x.push_back(0.f);
    out.com_y.push_back(0.f);
    out.com_z.push_back(0.f);
    out.mass.push_back(0.f);
    out.half_width.push_back(half_width);
    out.leaf_begin.push_back(begin);
    out.leaf_end.push_back(end);
    return id;
  }

  void accumulate_leaf_com(NodeId id) {
    double mx = 0, my = 0, mz = 0, m = 0;
    for (std::int32_t i = out.leaf_begin[id]; i < out.leaf_end[id]; ++i) {
      std::uint32_t b = out.body_perm[i];
      double w = masses[b];
      mx += w * pos.at(b, 0);
      my += w * pos.at(b, 1);
      mz += w * pos.at(b, 2);
      m += w;
    }
    out.mass[id] = static_cast<float>(m);
    if (m > 0) {
      out.com_x[id] = static_cast<float>(mx / m);
      out.com_y[id] = static_cast<float>(my / m);
      out.com_z[id] = static_cast<float>(mz / m);
    }
  }

  NodeId build(NodeId parent, std::int32_t depth, std::int32_t begin,
               std::int32_t end, float cx, float cy, float cz,
               float half_width) {
    NodeId id = emit_node(parent, depth, begin, end, half_width);
    if (end - begin <= 1 || depth >= max_depth) {
      accumulate_leaf_com(id);
      return id;
    }

    // Partition bodies into octants around the cell center. An in-place
    // 3-pass split (x, then y, then z) keeps the permutation contiguous.
    std::int32_t bounds[9];
    bounds[0] = begin;
    bounds[8] = end;
    auto part = [&](std::int32_t lo, std::int32_t hi, int d, float pivot) {
      auto it = std::partition(
          out.body_perm.begin() + lo, out.body_perm.begin() + hi,
          [&](std::uint32_t b) { return pos.at(b, d) < pivot; });
      return static_cast<std::int32_t>(it - out.body_perm.begin());
    };
    bounds[4] = part(begin, end, 0, cx);
    bounds[2] = part(bounds[0], bounds[4], 1, cy);
    bounds[6] = part(bounds[4], bounds[8], 1, cy);
    bounds[1] = part(bounds[0], bounds[2], 2, cz);
    bounds[3] = part(bounds[2], bounds[4], 2, cz);
    bounds[5] = part(bounds[4], bounds[6], 2, cz);
    bounds[7] = part(bounds[6], bounds[8], 2, cz);

    float q = half_width * 0.5f;
    double mx = 0, my = 0, mz = 0, m = 0;
    for (int o = 0; o < 8; ++o) {
      std::int32_t lo = bounds[o], hi = bounds[o + 1];
      if (lo == hi) continue;
      float ox = (o & 4) ? cx + q : cx - q;
      float oy = (o & 2) ? cy + q : cy - q;
      float oz = (o & 1) ? cz + q : cz - q;
      NodeId c = build(id, depth + 1, lo, hi, ox, oy, oz, q);
      out.topo.set_child(id, o, c);
      double w = out.mass[c];
      mx += w * out.com_x[c];
      my += w * out.com_y[c];
      mz += w * out.com_z[c];
      m += w;
    }
    out.mass[id] = static_cast<float>(m);
    if (m > 0) {
      out.com_x[id] = static_cast<float>(mx / m);
      out.com_y[id] = static_cast<float>(my / m);
      out.com_z[id] = static_cast<float>(mz / m);
    }
    return id;
  }
};

}  // namespace

Octree build_octree(const PointSet& pos, std::span<const float> masses,
                    int max_depth) {
  if (pos.dim() != 3) throw std::invalid_argument("build_octree: dim != 3");
  if (pos.empty()) throw std::invalid_argument("build_octree: empty input");
  if (masses.size() != pos.size())
    throw std::invalid_argument("build_octree: masses size mismatch");

  float lo[3], hi[3];
  for (int d = 0; d < 3; ++d) {
    lo[d] = std::numeric_limits<float>::infinity();
    hi[d] = -std::numeric_limits<float>::infinity();
  }
  for (std::size_t i = 0; i < pos.size(); ++i)
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], pos.at(i, d));
      hi[d] = std::max(hi[d], pos.at(i, d));
    }
  float width = 0.f;
  for (int d = 0; d < 3; ++d) width = std::max(width, hi[d] - lo[d]);
  // Nudge the cube outward so boundary bodies partition consistently.
  width = width > 0 ? width * 1.0001f : 1.f;

  OctBuilder b{pos, masses, max_depth, {}};
  b.out.topo.fanout = 8;
  b.out.root_width = width;
  b.out.body_perm.resize(pos.size());
  std::iota(b.out.body_perm.begin(), b.out.body_perm.end(), 0u);
  b.build(kNullNode, 0, 0, static_cast<std::int32_t>(pos.size()),
          (lo[0] + hi[0]) * 0.5f, (lo[1] + hi[1]) * 0.5f,
          (lo[2] + hi[2]) * 0.5f, width * 0.5f);
  b.out.topo.validate();
  return std::move(b.out);
}

namespace {

// Mirrors OctBuilder's accumulation order exactly: leaves sum their
// body_perm slice, interiors sum present children in slot order, both in
// double with one float cast at the end.
void refit_node(Octree& t, const PointSet& pos, std::span<const float> masses,
                NodeId id) {
  if (t.topo.is_leaf(id)) {
    double mx = 0, my = 0, mz = 0, m = 0;
    for (std::int32_t i = t.leaf_begin[id]; i < t.leaf_end[id]; ++i) {
      std::uint32_t b = t.body_perm[i];
      double w = masses[b];
      mx += w * pos.at(b, 0);
      my += w * pos.at(b, 1);
      mz += w * pos.at(b, 2);
      m += w;
    }
    t.mass[id] = static_cast<float>(m);
    if (m > 0) {
      t.com_x[id] = static_cast<float>(mx / m);
      t.com_y[id] = static_cast<float>(my / m);
      t.com_z[id] = static_cast<float>(mz / m);
    }
    return;
  }
  double mx = 0, my = 0, mz = 0, m = 0;
  for (int o = 0; o < 8; ++o) {
    NodeId c = t.topo.child(id, o);
    if (c == kNullNode) continue;
    refit_node(t, pos, masses, c);
    double w = t.mass[c];
    mx += w * t.com_x[c];
    my += w * t.com_y[c];
    mz += w * t.com_z[c];
    m += w;
  }
  t.mass[id] = static_cast<float>(m);
  if (m > 0) {
    t.com_x[id] = static_cast<float>(mx / m);
    t.com_y[id] = static_cast<float>(my / m);
    t.com_z[id] = static_cast<float>(mz / m);
  }
}

}  // namespace

void refit_octree(Octree& tree, const PointSet& pos,
                  std::span<const float> masses) {
  if (pos.dim() != 3) throw std::invalid_argument("refit_octree: dim != 3");
  if (pos.size() != tree.body_perm.size())
    throw std::invalid_argument(
        "refit_octree: body count differs from the built tree (refit keeps "
        "the partition; rebuild instead)");
  if (masses.size() != pos.size())
    throw std::invalid_argument("refit_octree: masses size mismatch");
  if (tree.topo.n_nodes == 0)
    throw std::invalid_argument("refit_octree: empty tree");
  refit_node(tree, pos, masses, 0);
}

}  // namespace tt
