// Barnes-Hut octree over 3-d bodies.
//
// Interior nodes hold the center of mass and total mass of their subtree;
// leaves hold a slice of a permuted body array (normally a single body, but
// coincident bodies are kept together in a bucket rather than splitting
// forever). The root cell is the bounding cube of all bodies; the paper's
// traversal carries the squared cell size down the tree as a rope-stack
// argument (Figure 9), so nodes do not need to store their size -- we still
// record it for validation and for CPU reference code.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "spatial/linear_tree.h"
#include "spatial/point_set.h"

namespace tt {

struct Octree {
  LinearTree topo;  // fanout 8; child slot = octant index

  std::vector<float> com_x, com_y, com_z;  // center of mass
  std::vector<float> mass;                 // total subtree mass
  std::vector<float> half_width;           // cell half-extent
  std::vector<std::int32_t> leaf_begin;    // bodies of leaf n:
  std::vector<std::int32_t> leaf_end;      //   body_perm[begin..end)
  std::vector<std::uint32_t> body_perm;

  float root_width = 0.f;  // full edge length of the root cell
};

// `pos` must be 3-d; masses.size() == pos.size(). max_depth bounds the
// subdivision (coincident bodies otherwise recurse forever).
Octree build_octree(const PointSet& pos, std::span<const float> masses,
                    int max_depth = 32);

// Refit: recompute mass and center of mass for every cell from updated
// body positions/masses WITHOUT rebuilding -- topology, cell geometry
// (half_width / root_width), leaf slices and body_perm are kept from
// build time. This is the timestep-fusion contract (DESIGN.md section
// 3.5): consecutive Barnes-Hut force passes share node ids and escape
// ropes exactly when the tree is refit, the standard small-step
// approximation (bodies are summarized by the cell they occupied at
// build time). The accumulation replicates build_octree's bit for bit --
// leaf COM in double over the leaf's body_perm slice, interior COM in
// double over present children in slot order -- so a refit of unchanged
// bodies reproduces the built tree's floats exactly.
void refit_octree(Octree& tree, const PointSet& pos,
                  std::span<const float> masses);

}  // namespace tt
