#include "spatial/vptree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace tt {
namespace {

struct VpBuilder {
  const PointSet& pts;
  Pcg32 rng;
  VpTree out;
  std::vector<std::uint32_t> perm;

  NodeId build(NodeId parent, std::int32_t depth, std::int32_t begin,
               std::int32_t end) {
    // Pick the vantage point and swap it to the front of the range.
    std::int32_t pick =
        begin + static_cast<std::int32_t>(
                    rng.next_below(static_cast<std::uint32_t>(end - begin)));
    std::swap(perm[begin], perm[pick]);
    std::uint32_t vp = perm[begin];

    NodeId id = out.topo.add_node(parent, depth);
    out.point_id.push_back(static_cast<std::int32_t>(vp));
    float q[kMaxDim];
    pts.gather(vp, q);
    for (int d = 0; d < out.dim; ++d) out.coords.push_back(q[d]);
    out.mu.push_back(0.f);

    std::int32_t rest_begin = begin + 1;
    if (rest_begin >= end) return id;  // leaf: vantage point only

    // Median distance from the vantage point splits inside/outside.
    std::int32_t mid = rest_begin + (end - rest_begin) / 2;
    auto dist = [&](std::uint32_t p) {
      return std::sqrt(pts.sq_dist(p, q));
    };
    std::nth_element(perm.begin() + rest_begin, perm.begin() + mid,
                     perm.begin() + end, [&](std::uint32_t a, std::uint32_t b) {
                       return dist(a) < dist(b);
                     });
    out.mu[id] = static_cast<float>(dist(perm[mid]));

    if (mid > rest_begin) {
      NodeId inside = build(id, depth + 1, rest_begin, mid);
      out.topo.set_child(id, VpTree::kInside, inside);
    }
    NodeId outside = build(id, depth + 1, mid, end);
    out.topo.set_child(id, VpTree::kOutside, outside);
    return id;
  }
};

}  // namespace

VpTree build_vptree(const PointSet& pts, std::uint64_t seed) {
  if (pts.empty()) throw std::invalid_argument("build_vptree: empty input");
  VpBuilder b{pts, Pcg32(seed, 0x9e3779b97f4a7c15ULL), {}, {}};
  b.out.dim = pts.dim();
  b.out.topo.fanout = 2;
  b.perm.resize(pts.size());
  std::iota(b.perm.begin(), b.perm.end(), 0u);
  b.build(kNullNode, 0, 0, static_cast<std::int32_t>(pts.size()));
  b.out.topo.validate();
  return std::move(b.out);
}

}  // namespace tt
