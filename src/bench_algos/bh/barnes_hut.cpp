#include "bench_algos/bh/barnes_hut.h"

#include <cmath>
#include <stdexcept>

#include "core/rope_stack.h"

namespace tt {

BarnesHutKernel::BarnesHutKernel(const Octree& tree, const PointSet& bodies,
                                 float theta, float eps2,
                                 GpuAddressSpace& space)
    : tree_(&tree), bodies_(&bodies), eps2_(eps2) {
  if (bodies.dim() != 3)
    throw std::invalid_argument("BarnesHutKernel: bodies must be 3-d");
  if (theta <= 0) throw std::invalid_argument("BarnesHutKernel: theta <= 0");
  float w = tree.root_width;
  root_dsq_ = (w * w) / (theta * theta);
  stack_bound_ = rope_stack_bound(tree.topo.max_depth(), 8);
  ropes_ = try_install_ropes(tree.topo);
  // Usage-split node records (section 5.2): nodes0 = the truncation-test
  // fields (center of mass, mass, type: 20 bytes), nodes1 = child indices.
  // Field maps feed the per-field traffic attribution (simt/memory_attr.h).
  nodes0_ = space.register_buffer(
      "bh_nodes0", 20, static_cast<std::uint64_t>(tree.topo.n_nodes),
      {{"com", 0, 12}, {"mass", 12, 4}, {"type", 16, 4}});
  nodes1_ = space.register_buffer(
      "bh_nodes1", 32, static_cast<std::uint64_t>(tree.topo.n_nodes),
      {{"children", 0, 32}});
  queries_ = space.register_buffer("bh_bodies", 4, 3 * bodies.size());
}

BarnesHutKernel::BarnesHutKernel(const Octree& tree, const PointSet& bodies,
                                 float theta, float eps2,
                                 GpuAddressSpace& space,
                                 const BarnesHutKernel& prev)
    : tree_(&tree), bodies_(&bodies), eps2_(eps2) {
  if (bodies.dim() != 3)
    throw std::invalid_argument("BarnesHutKernel: bodies must be 3-d");
  if (theta <= 0) throw std::invalid_argument("BarnesHutKernel: theta <= 0");
  if (tree.topo.n_nodes != prev.tree_->topo.n_nodes)
    throw std::invalid_argument(
        "BarnesHutKernel: twin tree has a different node count; it was "
        "rebuilt, not refit (refit_octree keeps the topology)");
  float w = tree.root_width;
  root_dsq_ = (w * w) / (theta * theta);
  stack_bound_ = rope_stack_bound(tree.topo.max_depth(), 8);
  ropes_ = try_install_ropes(tree.topo);
  // Truncation-test records and body positions are per-timestep; the
  // child-index records are byte-identical under refit and shared with
  // the previous pass so a fused walk loads them once.
  nodes0_ = space.register_buffer(
      "bh_nodes0_next", 20, static_cast<std::uint64_t>(tree.topo.n_nodes),
      {{"com", 0, 12}, {"mass", 12, 4}, {"type", 16, 4}});
  nodes1_ = prev.nodes1_;
  queries_ = space.register_buffer("bh_bodies_next", 4, 3 * bodies.size());
}

std::vector<BhForce> bh_brute_force(const PointSet& pos,
                                    std::span<const float> masses,
                                    float eps2) {
  const std::size_t n = pos.size();
  std::vector<BhForce> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    double ax = 0, ay = 0, az = 0;
    for (std::size_t j = 0; j < n; ++j) {
      double dx = pos.at(j, 0) - pos.at(i, 0);
      double dy = pos.at(j, 1) - pos.at(i, 1);
      double dz = pos.at(j, 2) - pos.at(i, 2);
      double dr2 = dx * dx + dy * dy + dz * dz + eps2;
      double f = masses[j] / (dr2 * std::sqrt(dr2));
      ax += dx * f;
      ay += dy * f;
      az += dz * f;
    }
    out[i] = {static_cast<float>(ax), static_cast<float>(ay),
              static_cast<float>(az)};
  }
  return out;
}

void bh_integrate(PointSet& pos, std::vector<float>& vel,
                  std::span<const BhForce> acc, float dt) {
  const std::size_t n = pos.size();
  if (acc.size() != n || vel.size() != 3 * n)
    throw std::invalid_argument("bh_integrate: size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    const float a[3] = {acc[i].ax, acc[i].ay, acc[i].az};
    for (int d = 0; d < 3; ++d) {
      float& v = vel[static_cast<std::size_t>(d) * n + i];
      v += a[d] * dt;
      pos.set(i, d, pos.at(i, d) + v * dt);
    }
  }
}

ir::TraversalFunc bh_ir() {
  // Figure 9a:
  //   if (!far_enough(root,p) && root.type != LEAF)  -> block 1 (8 calls)
  //   else                                           -> block 2 (update)
  ir::TraversalFunc f;
  f.name = "barnes_hut";
  f.blocks.resize(3);
  f.blocks[0].term = ir::Block::Term::kBranch;
  f.blocks[0].cond = 0;  // "!far_enough && !leaf"
  f.blocks[0].cond_point_dependent = true;  // truncation depends on the body
  f.blocks[0].succ_true = 1;
  f.blocks[0].succ_false = 2;
  for (int o = 0; o < 8; ++o) {
    ir::Stmt call;
    call.kind = ir::Stmt::Kind::kCall;
    call.id = o;
    call.child_slot = o;  // fixed octant order: point-independent
    call.child_point_dependent = false;
    call.arg_expr = 0;  // dsq' = dsq * 0.25
    f.blocks[1].stmts.push_back(call);
  }
  f.blocks[1].term = ir::Block::Term::kReturn;
  ir::Stmt upd;
  upd.kind = ir::Stmt::Kind::kUpdate;
  upd.id = 0;
  f.blocks[2].stmts.push_back(upd);
  f.blocks[2].term = ir::Block::Term::kReturn;
  return f;
}

}  // namespace tt
