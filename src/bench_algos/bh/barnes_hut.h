// Barnes-Hut force computation (paper section 6.1.2, Figure 9).
//
// Unguided traversal, single call set, fanout 8. The squared opening size
// `dsq` is the canonical *traversal-variant argument*: it only depends on
// the level, so it rides the rope stack as a warp-uniform UArg and is
// quartered per level exactly as in Figure 9b.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "core/ir/traversal_ir.h"
#include "core/static_ropes.h"
#include "core/traversal_kernel.h"
#include "simt/address_space.h"
#include "spatial/octree.h"
#include "spatial/point_set.h"

namespace tt {

struct BhForce {
  float ax = 0, ay = 0, az = 0;
  friend bool operator==(const BhForce&, const BhForce&) = default;
};

class BarnesHutKernel {
 public:
  struct State {
    float px, py, pz;
    float ax = 0, ay = 0, az = 0;
    std::uint32_t self = 0;
  };
  using Result = BhForce;
  struct UArg {
    float dsq;
  };
  using LArg = Empty;
  static constexpr int kFanout = 8;
  static constexpr const char* kName = "barnes_hut";
  static constexpr int kNumCallSets = 1;
  static constexpr bool kCallSetsEquivalent = true;  // trivially: one set

  // `bodies` are the query bodies in launch order; the octree must be built
  // over the same positions. theta is the opening angle; eps2 the Plummer
  // softening added to squared distances.
  BarnesHutKernel(const Octree& tree, const PointSet& bodies, float theta,
                  float eps2, GpuAddressSpace& space);

  // Timestep-fusion twin: the NEXT timestep's force pass over a REFIT of
  // `prev`'s tree (spatial/octree.h refit_octree -- same topology, node
  // ids and escape ropes; updated masses/centers). The twin shares
  // prev's child-index records (nodes1), which refit keeps byte-
  // identical, so a fused walk (core/kernel_compose.h) loads them once;
  // the truncation-test records and body positions differ per timestep
  // and get their own buffers. Throws std::invalid_argument when `tree`
  // is not a refit of prev's (node count differs => it was rebuilt).
  BarnesHutKernel(const Octree& tree, const PointSet& bodies, float theta,
                  float eps2, GpuAddressSpace& space,
                  const BarnesHutKernel& prev);

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_points() const { return bodies_->size(); }
  [[nodiscard]] UArg root_uarg() const { return {root_dsq_}; }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] int stack_bound() const { return stack_bound_; }

  template <class Mem>
  State init(std::uint32_t pid, Mem& mem, int lane) const {
    // Three coalesced SoA plane loads (x, y, z).
    const std::size_t n = bodies_->size();
    for (int d = 0; d < 3; ++d)
      mem.lane_load(lane, queries_, static_cast<std::uint64_t>(d) * n + pid);
    State s;
    s.px = bodies_->at(pid, 0);
    s.py = bodies_->at(pid, 1);
    s.pz = bodies_->at(pid, 2);
    s.self = pid;
    return s;
  }

  template <class Mem>
  bool visit(NodeId n, const UArg& ua, const LArg&, State& st, Mem& mem,
             int lane) const {
    mem.lane_load(lane, nodes0_, static_cast<std::uint64_t>(n));
    float dx = tree_->com_x[n] - st.px;
    float dy = tree_->com_y[n] - st.py;
    float dz = tree_->com_z[n] - st.pz;
    float dr2 = dx * dx + dy * dy + dz * dz;
    bool far = dr2 >= ua.dsq;
    if (!far && !tree_->topo.is_leaf(n)) return true;  // descend
    // Treat the node as a single mass (interior: its center of mass). A
    // zero denominator only occurs for the body's own unsoftened leaf,
    // which contributes no force.
    float denom2 = dr2 + eps2_;
    if (denom2 > 0.f) {
      float inv = 1.0f / (denom2 * std::sqrt(denom2));
      float f = tree_->mass[n] * inv;
      st.ax += dx * f;
      st.ay += dy * f;
      st.az += dz * f;
    }
    return false;
  }

  [[nodiscard]] int choose_callset(NodeId, const State&) const { return 0; }

  template <class Mem>
  int children(NodeId n, const UArg& ua, int /*callset*/, const State&,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    mem.lane_load(lane, nodes1_, static_cast<std::uint64_t>(n));
    int cnt = 0;
    for (int o = 0; o < 8; ++o) {
      NodeId c = tree_->topo.child(n, o);
      if (c == kNullNode) continue;
      out[cnt].node = c;
      out[cnt].uarg = UArg{ua.dsq * 0.25f};
      ++cnt;
    }
    return cnt;
  }

  [[nodiscard]] Result finish(const State& st) const {
    return {st.ax, st.ay, st.az};
  }

  // For the static-ropes (stackless) baseline: with no rope stack to carry
  // dsq, it must be recomputable from the node alone -- possible here only
  // because the tree records depths (exactly the kind of extra knowledge
  // the paper notes prior-work ropes depend on).
  [[nodiscard]] UArg uarg_at(NodeId n) const {
    float dsq = root_dsq_;
    for (std::int32_t d = 0; d < tree_->topo.depth[n]; ++d) dsq *= 0.25f;
    return {dsq};
  }

  [[nodiscard]] const Octree& tree() const { return *tree_; }

  // Stackless-variant support (StacklessCompatibleKernel): ropes installed
  // over this timestep's octree at construction (the multi-timestep driver
  // reconstructs the kernel per rebuild, so they always match the tree),
  // plus the node buffers the shared-memory cache may front.
  [[nodiscard]] const StaticRopes& ropes() const { return ropes_; }
  [[nodiscard]] std::vector<std::int32_t> node_buffers() const {
    return {nodes0_, nodes1_};
  }

 private:
  const Octree* tree_;
  const PointSet* bodies_;
  float eps2_;
  float root_dsq_;
  int stack_bound_;
  StaticRopes ropes_;
  BufferId nodes0_, nodes1_, queries_;
};

// Brute-force O(n^2) force reference for accuracy tests.
std::vector<BhForce> bh_brute_force(const PointSet& pos,
                                    std::span<const float> masses, float eps2);

// Leapfrog integration step used by the multi-timestep driver.
void bh_integrate(PointSet& pos, std::vector<float>& vel,
                  std::span<const BhForce> acc, float dt);

// IR description of the recursive body (Figure 9a), for the static
// analyses: one call set of eight calls, child choice point-independent.
ir::TraversalFunc bh_ir();

}  // namespace tt
