#include "bench_algos/ray/ray_bvh.h"

#include <cmath>
#include <stdexcept>

#include "core/rope_stack.h"
#include "util/rng.h"

namespace tt {

RayBvhKernel::RayBvhKernel(const Bvh& bvh, const TriangleMesh& mesh,
                           const std::vector<Ray>& rays,
                           GpuAddressSpace& space)
    : bvh_(&bvh), mesh_(&mesh), rays_(&rays) {
  stack_bound_ = rope_stack_bound(bvh.topo.max_depth(), 2);
  // nodes0: the AABB (24 bytes); nodes1: children + leaf range. Field
  // maps feed the per-field traffic attribution (simt/memory_attr.h).
  nodes0_ = space.register_buffer(
      "bvh_nodes0", 24, static_cast<std::uint64_t>(bvh.topo.n_nodes),
      {{"aabb_min", 0, 12}, {"aabb_max", 12, 12}});
  nodes1_ = space.register_buffer(
      "bvh_nodes1", 16, static_cast<std::uint64_t>(bvh.topo.n_nodes),
      {{"children", 0, 8}, {"leaf_range", 8, 8}});
  tris_buf_ = space.register_buffer("bvh_tris", 36, mesh.tris.size());
  rays_buf_ = space.register_buffer("rays", 24, rays.size());
}

std::vector<RayHit> ray_brute_force(const TriangleMesh& mesh,
                                    const std::vector<Ray>& rays) {
  std::vector<RayHit> out(rays.size());
  for (std::size_t i = 0; i < rays.size(); ++i) {
    RayHit h;
    for (std::size_t t = 0; t < mesh.tris.size(); ++t) {
      float d = ray_triangle(rays[i].origin, rays[i].dir, mesh.tris[t], h.t);
      if (d < h.t) {
        h.t = d;
        h.tri = static_cast<std::int32_t>(t);
      }
    }
    out[i] = h;
  }
  return out;
}

TriangleMesh gen_triangle_scene(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed, 41);
  constexpr int kObjects = 24;
  Vec3 center[kObjects];
  float size[kObjects];
  for (int o = 0; o < kObjects; ++o) {
    center[o] = {rng.next_float(), rng.next_float(), rng.next_float()};
    size[o] = 0.02f + 0.08f * rng.next_float();
  }
  TriangleMesh mesh;
  mesh.tris.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    int o = static_cast<int>(rng.next_below(kObjects));
    Vec3 base = {center[o].x + static_cast<float>(rng.normal()) * size[o],
                 center[o].y + static_cast<float>(rng.normal()) * size[o],
                 center[o].z + static_cast<float>(rng.normal()) * size[o]};
    auto jitter = [&] {
      return Vec3{(rng.next_float() - 0.5f) * size[o],
                  (rng.next_float() - 0.5f) * size[o],
                  (rng.next_float() - 0.5f) * size[o]};
    };
    mesh.tris.push_back({base, base + jitter(), base + jitter()});
  }
  return mesh;
}

std::vector<Ray> gen_camera_rays(int width, int height, Vec3 eye,
                                 Vec3 look_at) {
  if (width <= 0 || height <= 0)
    throw std::invalid_argument("gen_camera_rays: bad image size");
  Vec3 fwd = look_at - eye;
  float len = std::sqrt(dot(fwd, fwd));
  fwd = fwd * (1.0f / (len > 0 ? len : 1.f));
  Vec3 up{0, 1, 0};
  Vec3 right = cross(fwd, up);
  float rlen = std::sqrt(dot(right, right));
  right = right * (1.0f / (rlen > 0 ? rlen : 1.f));
  Vec3 cam_up = cross(right, fwd);

  std::vector<Ray> rays;
  rays.reserve(static_cast<std::size_t>(width) * height);
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x) {
      float u = (static_cast<float>(x) + 0.5f) / width - 0.5f;
      float v = (static_cast<float>(y) + 0.5f) / height - 0.5f;
      Vec3 dir = fwd + right * u + cam_up * v;
      rays.push_back({eye, dir});
    }
  return rays;
}

std::vector<Ray> gen_random_rays(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed, 43);
  std::vector<Ray> rays;
  rays.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 o{rng.next_float(), rng.next_float(), rng.next_float()};
    Vec3 d{static_cast<float>(rng.normal()), static_cast<float>(rng.normal()),
           static_cast<float>(rng.normal())};
    rays.push_back({o, d});
  }
  return rays;
}

ir::TraversalFunc ray_ir() {
  // Same guided shape as kNN's Figure 5 (guard, leaf update, near-first or
  // far-first descent).
  ir::TraversalFunc f;
  f.name = "ray_bvh";
  f.blocks.resize(7);
  f.blocks[0].term = ir::Block::Term::kBranch;  // if (box missed) return
  f.blocks[0].cond = 0;
  f.blocks[0].cond_point_dependent = true;
  f.blocks[0].succ_true = 6;
  f.blocks[0].succ_false = 1;
  f.blocks[1].term = ir::Block::Term::kBranch;  // if (leaf) intersect;return
  f.blocks[1].cond = 1;
  f.blocks[1].cond_point_dependent = false;
  f.blocks[1].succ_true = 5;
  f.blocks[1].succ_false = 2;
  f.blocks[2].term = ir::Block::Term::kBranch;  // if (enters left first)
  f.blocks[2].cond = 2;
  f.blocks[2].cond_point_dependent = true;
  f.blocks[2].succ_true = 3;
  f.blocks[2].succ_false = 4;
  auto call = [](int id, int slot) {
    ir::Stmt s;
    s.kind = ir::Stmt::Kind::kCall;
    s.id = id;
    s.child_slot = slot;
    return s;
  };
  f.blocks[3].stmts = {call(0, 0), call(1, 1)};
  f.blocks[3].term = ir::Block::Term::kReturn;
  f.blocks[4].stmts = {call(2, 1), call(3, 0)};
  f.blocks[4].term = ir::Block::Term::kReturn;
  ir::Stmt upd;
  upd.kind = ir::Stmt::Kind::kUpdate;
  upd.id = 0;
  f.blocks[5].stmts.push_back(upd);
  f.blocks[5].term = ir::Block::Term::kReturn;
  f.blocks[6].term = ir::Block::Term::kReturn;
  return f;
}

}  // namespace tt
