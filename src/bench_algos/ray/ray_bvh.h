// Ray / BVH closest-hit traversal -- the graphics workload the paper's
// introduction motivates ("rays traverse the tree to determine which
// object(s) they intersect") and the domain of the prior-work rope papers
// (Popov et al., Hapala et al.).
//
// Guided traversal with two call sets: each ray descends into the child
// whose box it enters first. The call sets are semantically equivalent
// (any order finds the same closest hit), so the section-4.3 vote enables
// lockstep; ray packets (coherent camera rays) are the classic case where
// lockstep/packet traversal pays off.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/ir/traversal_ir.h"
#include "core/traversal_kernel.h"
#include "simt/address_space.h"
#include "spatial/bvh.h"

namespace tt {

struct Ray {
  Vec3 origin;
  Vec3 dir;  // need not be normalized
};

struct RayHit {
  float t = std::numeric_limits<float>::infinity();
  std::int32_t tri = -1;
  friend bool operator==(const RayHit&, const RayHit&) = default;
};

class RayBvhKernel {
 public:
  struct State {
    Vec3 o, d, inv_d;
    float t_best = std::numeric_limits<float>::infinity();
    std::int32_t tri = -1;
  };
  using Result = RayHit;
  using UArg = Empty;
  using LArg = Empty;
  static constexpr int kFanout = 2;
  static constexpr const char* kName = "ray_bvh";
  static constexpr int kNumCallSets = 2;
  static constexpr bool kCallSetsEquivalent = true;

  RayBvhKernel(const Bvh& bvh, const TriangleMesh& mesh,
               const std::vector<Ray>& rays, GpuAddressSpace& space);

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_points() const { return rays_->size(); }
  [[nodiscard]] UArg root_uarg() const { return {}; }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] int stack_bound() const { return stack_bound_; }

  template <class Mem>
  State init(std::uint32_t pid, Mem& mem, int lane) const {
    mem.lane_load(lane, rays_buf_, pid);
    const Ray& r = (*rays_)[pid];
    State s;
    s.o = r.origin;
    s.d = r.dir;
    auto safe_inv = [](float v) {
      return 1.0f / (v == 0.f ? 1e-12f : v);
    };
    s.inv_d = {safe_inv(r.dir.x), safe_inv(r.dir.y), safe_inv(r.dir.z)};
    return s;
  }

  template <class Mem>
  bool visit(NodeId n, const UArg&, const LArg&, State& st, Mem& mem,
             int lane) const {
    mem.lane_load(lane, nodes0_, static_cast<std::uint64_t>(n));
    if (bvh_->box_entry(n, st.o, st.inv_d, st.t_best) ==
        std::numeric_limits<float>::infinity())
      return false;
    if (!bvh_->topo.is_leaf(n)) return true;
    for (std::int32_t i = bvh_->leaf_begin[n]; i < bvh_->leaf_end[n]; ++i) {
      mem.lane_load(lane, tris_buf_, static_cast<std::uint64_t>(i));
      auto tri = bvh_->tri_perm[static_cast<std::size_t>(i)];
      float t = ray_triangle(st.o, st.d, mesh_->tris[tri], st.t_best);
      if (t < st.t_best) {
        st.t_best = t;
        st.tri = static_cast<std::int32_t>(tri);
      }
    }
    return false;
  }

  // Call set 0: left child first. A ray prefers the child whose box it
  // enters earlier.
  [[nodiscard]] int choose_callset(NodeId n, const State& st) const {
    NodeId l = bvh_->topo.child(n, 0);
    NodeId r = bvh_->topo.child(n, 1);
    if (l == kNullNode || r == kNullNode) return 0;
    float tl = bvh_->box_entry(l, st.o, st.inv_d, st.t_best);
    float tr = bvh_->box_entry(r, st.o, st.inv_d, st.t_best);
    return tl <= tr ? 0 : 1;
  }

  template <class Mem>
  int children(NodeId n, const UArg&, int callset, const State&,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    mem.lane_load(lane, nodes1_, static_cast<std::uint64_t>(n));
    NodeId l = bvh_->topo.child(n, 0);
    NodeId r = bvh_->topo.child(n, 1);
    NodeId first = callset == 0 ? l : r;
    NodeId second = callset == 0 ? r : l;
    int cnt = 0;
    if (first != kNullNode) out[cnt++].node = first;
    if (second != kNullNode) out[cnt++].node = second;
    return cnt;
  }

  [[nodiscard]] Result finish(const State& st) const {
    return {st.t_best, st.tri};
  }

 private:
  const Bvh* bvh_;
  const TriangleMesh* mesh_;
  const std::vector<Ray>* rays_;
  int stack_bound_;
  BufferId nodes0_, nodes1_, tris_buf_, rays_buf_;
};

// Brute-force closest hit over all triangles.
std::vector<RayHit> ray_brute_force(const TriangleMesh& mesh,
                                    const std::vector<Ray>& rays);

// Procedural scene: `n` triangles clustered around random "objects" in the
// unit cube (a synthetic stand-in for a real scene's spatial structure).
TriangleMesh gen_triangle_scene(std::size_t n, std::uint64_t seed);

// Coherent primary rays from a pinhole camera (one per pixel, row-major) --
// the "sorted" input of graphics workloads.
std::vector<Ray> gen_camera_rays(int width, int height, Vec3 eye,
                                 Vec3 look_at);

// Incoherent rays: random origins/directions (the "unsorted" input).
std::vector<Ray> gen_random_rays(std::size_t n, std::uint64_t seed);

ir::TraversalFunc ray_ir();

}  // namespace tt
