#include "bench_algos/register_kernels.h"

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "bench_algos/bh/barnes_hut.h"
#include "bench_algos/knn/knn.h"
#include "bench_algos/nn/nearest_neighbor.h"
#include "bench_algos/pc/point_correlation.h"
#include "bench_algos/pq/point_queries.h"
#include "bench_algos/vp/vantage_point.h"
#include "core/cpu_executors.h"
#include "core/kernel_compose.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"
#include "spatial/vptree.h"

namespace tt {

std::vector<std::uint32_t> order_permutation(const PointSet& pts,
                                             PointOrder order, int leaf_size,
                                             std::uint64_t seed) {
  switch (order) {
    case PointOrder::kMorton: return morton_order(pts);
    case PointOrder::kTree: return tree_order(pts, leaf_size);
    case PointOrder::kShuffled:
      return shuffled_order(pts.size(), seed ^ 0x5bd1e995);
  }
  throw std::logic_error("order_permutation: bad order");
}

namespace {

// Input generation for the point benchmarks. "" = the canonical Table-1
// input (covtype); unknown spellings throw listing the valid ones,
// matching the factory's own unknown-name convention.
PointSet make_points(const KernelRequest& req) {
  const std::string in = req.input.empty() ? "covtype" : req.input;
  PointSet pts = [&] {
    if (in == "covtype") return gen_covtype_like(req.n, req.dim, req.seed);
    if (in == "mnist") return gen_mnist_like(req.n, req.dim, req.seed);
    if (in == "uniform") return gen_uniform(req.n, req.dim, req.seed);
    if (in == "geocity") return gen_geocity_like(req.n, req.seed);
    throw std::invalid_argument(
        "kernel_factory: unknown input '" + in +
        "' for a point benchmark (valid: covtype, geocity, mnist, uniform)");
  }();
  pts.permute(order_permutation(pts, req.order, req.leaf_size, req.seed));
  return pts;
}

// Input generation for the body benchmarks; masses and velocities follow
// the position permutation (same bookkeeping as the harness).
BodySet make_bodies(const KernelRequest& req) {
  const std::string in = req.input.empty() ? "plummer" : req.input;
  BodySet bodies = [&] {
    if (in == "plummer") return gen_plummer(req.n, req.seed);
    if (in == "random_bodies") return gen_random_bodies(req.n, req.seed);
    throw std::invalid_argument(
        "kernel_factory: unknown input '" + in +
        "' for a body benchmark (valid: plummer, random_bodies)");
  }();
  auto perm = order_permutation(bodies.pos, req.order, req.leaf_size, req.seed);
  bodies.pos.permute(perm);
  const std::size_t n = bodies.pos.size();
  std::vector<float> m(n), v(3 * n);
  for (std::size_t j = 0; j < n; ++j) {
    m[j] = bodies.mass[perm[j]];
    for (int d = 0; d < 3; ++d)
      v[static_cast<std::size_t>(d) * n + j] =
          bodies.vel[static_cast<std::size_t>(d) * n + perm[j]];
  }
  bodies.mass = std::move(m);
  bodies.vel = std::move(v);
  return bodies;
}

// Each builder parks its data + tree + kernel in a bundle behind the
// handle's keep-alive, so the handle is self-contained. Kernels hold
// pointers into the bundle; members are filled in place (std::optional
// emplacement) and never moved afterwards.

struct BhBundle {
  BodySet bodies;
  Octree tree;
  std::optional<BarnesHutKernel> k;
};

std::shared_ptr<KernelHandle> build_bh(const KernelRequest& req,
                                       GpuAddressSpace& space) {
  auto b = std::make_shared<BhBundle>();
  b->bodies = make_bodies(req);
  b->tree = build_octree(b->bodies.pos, b->bodies.mass);
  b->k.emplace(b->tree, b->bodies.pos, req.bh_theta, req.bh_eps2, space);
  return make_kernel_handle(*b->k, b);
}

struct PcBundle {
  PointSet pts;
  KdTree tree;
  std::optional<PointCorrelationKernel> k;
};

std::shared_ptr<KernelHandle> build_pc(const KernelRequest& req,
                                       GpuAddressSpace& space) {
  auto b = std::make_shared<PcBundle>();
  b->pts = make_points(req);
  b->tree = build_kdtree(b->pts, req.leaf_size);
  const float r = pc_pick_radius(b->pts, req.pc_target_neighbors, req.seed);
  b->k.emplace(b->tree, b->pts, r, space);
  return make_kernel_handle(*b->k, b);
}

struct KnnBundle {
  PointSet pts;
  KdTree tree;
  std::optional<KnnKernel> k;
};

std::shared_ptr<KernelHandle> build_knn(const KernelRequest& req,
                                        GpuAddressSpace& space) {
  auto b = std::make_shared<KnnBundle>();
  b->pts = make_points(req);
  b->tree = build_kdtree(b->pts, req.leaf_size);
  b->k.emplace(b->tree, b->pts, req.k, space);
  return make_kernel_handle(*b->k, b);
}

struct NnBundle {
  PointSet pts;
  KdTreeNN tree;
  std::optional<NnKernel> k;
};

std::shared_ptr<KernelHandle> build_nn(const KernelRequest& req,
                                       GpuAddressSpace& space) {
  auto b = std::make_shared<NnBundle>();
  b->pts = make_points(req);
  b->tree = build_kdtree_nn(b->pts);
  b->k.emplace(b->tree, b->pts, space);
  return make_kernel_handle(*b->k, b);
}

struct VpBundle {
  PointSet pts;
  VpTree tree;
  std::optional<VpKernel> k;
};

std::shared_ptr<KernelHandle> build_vp(const KernelRequest& req,
                                       GpuAddressSpace& space) {
  auto b = std::make_shared<VpBundle>();
  b->pts = make_points(req);
  b->tree = build_vptree(b->pts, req.seed ^ 0x7b1fa2);
  b->k.emplace(b->tree, b->pts, space);
  return make_kernel_handle(*b->k, b);
}

struct PqBundle {
  PointSet pts;
  KdTree tree;
  std::optional<RopeKnnKernel> knn;
  std::optional<RopeNnKernel> nn;
  std::optional<FusedKernel<RopeKnnKernel, RopeNnKernel>> fused;
};

std::shared_ptr<PqBundle> build_pq_bundle(const KernelRequest& req,
                                          GpuAddressSpace& space,
                                          bool want_knn, bool want_nn) {
  auto b = std::make_shared<PqBundle>();
  b->pts = make_points(req);
  b->tree = build_kdtree(b->pts, req.leaf_size);
  if (want_knn) b->knn.emplace(b->tree, b->pts, req.k, space);
  if (want_nn) b->nn.emplace(b->tree, b->pts, space);
  return b;
}

std::shared_ptr<KernelHandle> build_rope_knn(const KernelRequest& req,
                                             GpuAddressSpace& space) {
  auto b = build_pq_bundle(req, space, /*want_knn=*/true, /*want_nn=*/false);
  return make_kernel_handle(*b->knn, b);
}

std::shared_ptr<KernelHandle> build_rope_nn(const KernelRequest& req,
                                            GpuAddressSpace& space) {
  auto b = build_pq_bundle(req, space, /*want_knn=*/false, /*want_nn=*/true);
  return make_kernel_handle(*b->nn, b);
}

std::shared_ptr<KernelHandle> build_fused_knn_nn(const KernelRequest& req,
                                                 GpuAddressSpace& space) {
  auto b = build_pq_bundle(req, space, /*want_knn=*/true, /*want_nn=*/true);
  b->fused.emplace(*b->knn, *b->nn);
  return make_kernel_handle(*b->fused, b);
}

// Two consecutive BH timesteps' force passes over a REFIT octree, fused
// into one walk. Step-0 forces come from the verified CPU executor
// (identical to any GPU variant's results), bodies advance one leapfrog
// step, and the t1 tree is a refit *copy* of the t0 tree -- same
// topology, node ids and ropes -- so the twin kernel shares the t0
// child-index records and the FusedKernel rope-identity check passes.
struct FusedBhBundle {
  BodySet bodies;   // t0 positions (kernel A reads these)
  PointSet pos1;    // t1 positions (kernel B reads these)
  Octree tree0;
  Octree tree1;
  std::optional<BarnesHutKernel> a;
  std::optional<BarnesHutKernel> b;
  std::optional<FusedKernel<BarnesHutKernel, BarnesHutKernel>> fused;
};

std::shared_ptr<KernelHandle> build_fused_bh_step(const KernelRequest& req,
                                                  GpuAddressSpace& space) {
  auto bun = std::make_shared<FusedBhBundle>();
  bun->bodies = make_bodies(req);
  bun->tree0 = build_octree(bun->bodies.pos, bun->bodies.mass);
  bun->a.emplace(bun->tree0, bun->bodies.pos, req.bh_theta, req.bh_eps2,
                 space);

  auto forces = run_cpu(*bun->a, CpuVariant::kRecursive, 1).results;
  bun->pos1 = bun->bodies.pos;
  std::vector<float> vel = bun->bodies.vel;
  bh_integrate(bun->pos1, vel, forces, req.bh_dt);

  bun->tree1 = bun->tree0;  // refit keeps topology/ids/ropes
  refit_octree(bun->tree1, bun->pos1, bun->bodies.mass);
  bun->b.emplace(bun->tree1, bun->pos1, req.bh_theta, req.bh_eps2, space,
                 *bun->a);
  bun->fused.emplace(*bun->a, *bun->b);
  return make_kernel_handle(*bun->fused, bun);
}

}  // namespace

void register_bench_kernels() {
  static const bool once = [] {
    KernelFactory& f = KernelFactory::instance();
    f.register_builder("bh", build_bh);
    f.register_builder("pc", build_pc);
    f.register_builder("knn", build_knn);
    f.register_builder("nn", build_nn);
    f.register_builder("vp", build_vp);
    f.register_builder("rope_knn", build_rope_knn);
    f.register_builder("rope_nn", build_rope_nn);
    f.register_builder("fused_knn_nn", build_fused_knn_nn);
    f.register_builder("fused_bh_step", build_fused_bh_step);
    return true;
  }();
  (void)once;
}

}  // namespace tt
