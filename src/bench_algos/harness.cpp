#include "bench_algos/harness.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "bench_algos/bh/barnes_hut.h"
#include "bench_algos/knn/knn.h"
#include "bench_algos/nn/nearest_neighbor.h"
#include "bench_algos/pc/point_correlation.h"
#include "bench_algos/vp/vantage_point.h"
#include "core/cpu_executors.h"
#include "core/gpu_executors.h"
#include "core/static_ropes.h"
#include "cpu/parallel.h"
#include "obs/chrome_trace.h"
#include "obs/profile.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"
#include "spatial/vptree.h"

namespace tt {

std::string algo_name(Algo a) {
  switch (a) {
    case Algo::kBH: return "Barnes-Hut";
    case Algo::kPC: return "PointCorrelation";
    case Algo::kKNN: return "kNearestNeighbor";
    case Algo::kNN: return "NearestNeighbor";
    case Algo::kVP: return "VantagePoint";
  }
  return "?";
}

std::string input_name(InputKind i) {
  switch (i) {
    case InputKind::kPlummer: return "Plummer";
    case InputKind::kRandomBodies: return "Random";
    case InputKind::kCovtype: return "Covtype";
    case InputKind::kMnist: return "Mnist";
    case InputKind::kUniform: return "Random";
    case InputKind::kGeocity: return "Geocity";
  }
  return "?";
}

std::vector<InputKind> inputs_for(Algo a) {
  if (a == Algo::kBH)
    return {InputKind::kPlummer, InputKind::kRandomBodies};
  return {InputKind::kCovtype, InputKind::kMnist, InputKind::kUniform,
          InputKind::kGeocity};
}

ir::AnalysisReport analysis_for(Algo a) {
  switch (a) {
    case Algo::kBH: return ir::analyze(bh_ir());
    case Algo::kPC: return ir::analyze(pc_ir());
    case Algo::kKNN: return ir::analyze(knn_ir());
    case Algo::kNN: return ir::analyze(nn_ir());
    case Algo::kVP: return ir::analyze(vp_ir());
  }
  throw std::logic_error("analysis_for: bad algo");
}

namespace {

VariantResult to_variant(const KernelStats& stats, const TimeBreakdown& time,
                         double avg_nodes, double sim_wall_ms) {
  VariantResult v;
  v.stats = stats;
  v.time = time;
  v.time_ms = time.total_ms;
  v.avg_nodes = avg_nodes;
  v.sim_wall_ms = sim_wall_ms;
  return v;
}

// Per-warp work expansion (Table 2): lockstep union size over the longest
// individual traversal in the warp (the non-lockstep completion bound).
Summary work_expansion(const std::vector<std::uint32_t>& per_point_visits,
                       const std::vector<std::uint32_t>& per_warp_pops,
                       int warp_size) {
  RunningStats rs;
  for (std::size_t w = 0; w < per_warp_pops.size(); ++w) {
    std::uint32_t longest = 0;
    std::size_t begin = w * static_cast<std::size_t>(warp_size);
    std::size_t end = std::min(per_point_visits.size(),
                               begin + static_cast<std::size_t>(warp_size));
    for (std::size_t i = begin; i < end; ++i)
      longest = std::max(longest, per_point_visits[i]);
    if (longest == 0) continue;
    rs.add(static_cast<double>(per_warp_pops[w]) / longest);
  }
  return rs.summary();
}

// Runs the CPU baselines and all five GPU variants for one kernel, filling
// the variant columns of `row`. `equal` compares two Result values.
template <TraversalKernel K, class Eq>
void run_all(BenchRow& row, const BenchConfig& cfg, const K& k,
             GpuAddressSpace& space, Eq&& equal) {
  // Copy-in/copy-out accounting (section 5.2): everything registered so
  // far is kernel input (tree + points); the stack arenas the executors
  // add below are device-internal and never cross the bus.
  row.upload_bytes = space.footprint_bytes();
  row.download_bytes =
      static_cast<std::uint64_t>(sizeof(typename K::Result)) * k.num_points();

  // CPU: the original recursive implementation, measured for real.
  auto cpu1 = run_cpu(k, CpuVariant::kRecursive, 1);
  int tmax = cfg.cpu_threads > 0 ? cfg.cpu_threads : hardware_threads();
  auto cpuN = run_cpu(k, CpuVariant::kRecursive, tmax);
  row.cpu_t1_ms = cpu1.wall_ms;
  row.cpu_tmax_ms = cpuN.wall_ms;
  row.cpu_threads_measured = tmax;
  row.cpu_visits = cpu1.total_visits;

  // Simulate the eight GPU variants. A rope-stack overflow (run_gpu_sim
  // throws) fails only that variant: its error string is recorded and the
  // remaining variants still produce measurements. Stackless variants are
  // pre-checked for eligibility (guided kernels have no canonical rope
  // order) and reported as skipped rather than attempted.
  std::array<std::vector<typename K::Result>, kNumVariants> gpu_results;
  std::vector<std::uint32_t> nolockstep_visits;
  std::vector<std::uint32_t> lockstep_pops;
  for (Variant v : kAllVariants) {
    if (!cfg.variants.contains(v)) {
      row.result(v) = VariantResult{};
      row.result(v).error =
          std::string("skipped: excluded by --variant filter (") +
          variant_name(v) + ")";
      continue;
    }
    const std::string why = kernel_variant_ineligible_reason(k, v);
    if (!why.empty()) {
      row.result(v) = VariantResult{};
      row.result(v).error = "skipped: " + why;
      continue;
    }
    try {
      GpuMode mode = GpuMode::from(v);
      mode.profile_samples = cfg.profile_samples;
      mode.profile_seed = cfg.profile_seed;
      obs::TraceSink* tsink = nullptr;
      if (cfg.chrome)
        tsink = &cfg.chrome->begin_launch(
            std::string(kernel_display_name<K>()) + "/" + variant_name(v));
      obs::ProfileSink psink;
      auto g = run_gpu_sim(k, space, cfg.device, mode, tsink,
                           cfg.profile ? &psink : nullptr);
      // Per-buffer counter tracks next to this launch's warp timeline.
      if (tsink) cfg.chrome->set_launch_memory(g.stats.memory);
      row.result(v) =
          to_variant(g.stats, g.time, g.avg_nodes(), g.sim_wall_ms);
      row.result(v).selection = g.selection;
      row.result(v).profile = std::move(g.profile);
      if (v == Variant::kAutoNolockstep)
        nolockstep_visits = std::move(g.per_point_visits);
      else if (v == Variant::kAutoLockstep)
        lockstep_pops = std::move(g.per_warp_pops);
      gpu_results[static_cast<std::size_t>(v)] = std::move(g.results);
    } catch (const std::runtime_error& e) {
      row.result(v) = VariantResult{};
      row.result(v).error = e.what();
    }
  }

  // Table 2 needs both autoropes variants; skip it if either overflowed.
  if (!nolockstep_visits.empty() && !lockstep_pops.empty())
    row.work_expansion = work_expansion(nolockstep_visits, lockstep_pops,
                                        cfg.device.warp_size);

  if (cfg.verify) {
    auto cpu_auto = run_cpu(k, CpuVariant::kAutoropes, 1);
    auto check = [&](const std::vector<typename K::Result>& got,
                     const char* what) {
      for (std::size_t i = 0; i < got.size(); ++i)
        if (!equal(cpu1.results[i], got[i]))
          throw std::runtime_error(std::string("variant mismatch (") + what +
                                   ") at point " + std::to_string(i));
    };
    check(cpu_auto.results, "cpu autoropes");
    for (Variant v : kAllVariants)
      if (row.result(v).ok())
        check(gpu_results[static_cast<std::size_t>(v)], variant_name(v));
  }
}

// Fold another timestep's measurements into the running row: times and
// visit counters add; per-point averages stay averages of the whole run;
// work expansion becomes the running mean over steps.
void accumulate(BenchRow& row, const BenchRow& step, int steps_so_far) {
  double w = 1.0 / steps_so_far;
  auto add_variant = [w](VariantResult& a, const VariantResult& b) {
    // One failed timestep poisons the variant's whole-run measurement.
    if (!b.ok() && a.ok()) a.error = b.error;
    if (!a.ok()) return;
    a.time_ms += b.time_ms;  // total traversal time, like the paper
    a.time.compute_ms += b.time.compute_ms;
    a.time.memory_ms += b.time.memory_ms;
    a.time.total_ms += b.time.total_ms;
    a.time.memory_bound = a.time.memory_ms > a.time.compute_ms;
    a.avg_nodes = a.avg_nodes * (1.0 - w) + b.avg_nodes * w;  // per step
    a.time.imbalance =
        a.time.imbalance * (1.0 - w) + b.time.imbalance * w;  // per step
    a.stats.merge(b.stats);
    a.sim_wall_ms += b.sim_wall_ms;
    if (b.selection) {
      if (!a.selection) {
        a.selection = b.selection;
      } else {
        // Samples and charged cycles add across timesteps; similarity
        // stays a per-sample mean; `chosen` keeps the first dispatch.
        const std::uint64_t total = a.selection->samples + b.selection->samples;
        if (total > 0) {
          const double wa = static_cast<double>(a.selection->samples);
          const double wb = static_cast<double>(b.selection->samples);
          a.selection->mean_similarity =
              (a.selection->mean_similarity * wa +
               b.selection->mean_similarity * wb) /
              static_cast<double>(total);
          a.selection->baseline_similarity =
              (a.selection->baseline_similarity * wa +
               b.selection->baseline_similarity * wb) /
              static_cast<double>(total);
        }
        a.selection->samples = total;
        a.selection->sampling_cycles += b.selection->sampling_cycles;
      }
    }
    if (b.profile) {
      if (!a.profile)
        a.profile = b.profile;
      else
        a.profile->merge(*b.profile);
    }
  };
  for (Variant v : kAllVariants) add_variant(row.result(v), step.result(v));
  row.cpu_t1_ms += step.cpu_t1_ms;
  row.cpu_tmax_ms += step.cpu_tmax_ms;
  row.cpu_visits += step.cpu_visits;
  row.upload_bytes += step.upload_bytes;  // tree re-uploaded per step
  row.download_bytes += step.download_bytes;
  row.launches += step.launches;  // each step is its own kernel launch
  row.work_expansion.mean =
      row.work_expansion.mean * (1.0 - w) + step.work_expansion.mean * w;
  row.work_expansion.stddev =
      row.work_expansion.stddev * (1.0 - w) + step.work_expansion.stddev * w;
}

PointSet make_tree_input(const BenchConfig& cfg) {
  switch (cfg.input) {
    case InputKind::kCovtype:
      return gen_covtype_like(cfg.n, cfg.dim, cfg.seed);
    case InputKind::kMnist:
      return gen_mnist_like(cfg.n, cfg.dim, cfg.seed);
    case InputKind::kUniform:
      return gen_uniform(cfg.n, cfg.dim, cfg.seed);
    case InputKind::kGeocity:
      return gen_geocity_like(cfg.n, cfg.seed);
    default:
      throw std::invalid_argument("make_tree_input: body input for tree algo");
  }
}

void apply_order(PointSet& pts, const BenchConfig& cfg) {
  if (cfg.sorted) {
    // Spatial sort (section 4.4): Morton order in low dimensions, kd-tree
    // leaf order otherwise.
    auto perm = pts.dim() <= 3 ? morton_order(pts)
                               : tree_order(pts, cfg.leaf_size);
    pts.permute(perm);
  } else {
    auto perm = shuffled_order(pts.size(), cfg.seed ^ 0x5bd1e995);
    pts.permute(perm);
  }
}

// Generate + order the Barnes-Hut body set (shared by the solo and
// batched paths so both traverse the identical input).
BodySet make_bh_input(const BenchConfig& cfg) {
  if (cfg.input != InputKind::kPlummer && cfg.input != InputKind::kRandomBodies)
    throw std::invalid_argument("run_bench: BH needs a body input");
  BodySet bodies = cfg.input == InputKind::kPlummer
                       ? gen_plummer(cfg.n, cfg.seed)
                       : gen_random_bodies(cfg.n, cfg.seed);
  auto perm = cfg.sorted ? morton_order(bodies.pos)
                         : shuffled_order(cfg.n, cfg.seed ^ 0x5bd1e995);
  bodies.pos.permute(perm);
  {  // masses/velocities follow the position permutation
    std::vector<float> m(cfg.n), v(3 * cfg.n);
    for (std::size_t j = 0; j < cfg.n; ++j) {
      m[j] = bodies.mass[perm[j]];
      for (int d = 0; d < 3; ++d)
        v[static_cast<std::size_t>(d) * cfg.n + j] =
            bodies.vel[static_cast<std::size_t>(d) * cfg.n + perm[j]];
    }
    bodies.mass = std::move(m);
    bodies.vel = std::move(v);
  }
  return bodies;
}

bool nearly_equal(float a, float b, float tol) {
  if (a == b) return true;
  if (std::isinf(a) || std::isinf(b)) return a == b;
  float scale = std::max({1.0f, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace

BenchRow run_bench(const BenchConfig& cfg) {
  BenchRow row;
  row.config = cfg;
  GpuAddressSpace space;

  switch (cfg.algo) {
    case Algo::kBH: {
      BodySet bodies = make_bh_input(cfg);
      // The paper integrates several timesteps, rebuilding the octree each
      // step; traversal metrics accumulate across steps.
      int steps = std::max(1, cfg.bh_timesteps);
      for (int step = 0; step < steps; ++step) {
        GpuAddressSpace step_space;
        Octree tree = build_octree(bodies.pos, bodies.mass);
        BarnesHutKernel k(tree, bodies.pos, cfg.bh_theta, cfg.bh_eps2,
                          step == 0 ? space : step_space);
        BenchRow step_row;
        step_row.config = cfg;
        run_all(step_row, cfg, k, step == 0 ? space : step_space,
                [](const BhForce& a, const BhForce& b) {
                  return nearly_equal(a.ax, b.ax, 1e-4f) &&
                         nearly_equal(a.ay, b.ay, 1e-4f) &&
                         nearly_equal(a.az, b.az, 1e-4f);
                });
        if (step == 0) {
          row = step_row;
          row.config = cfg;
        } else {
          accumulate(row, step_row, step + 1);
        }
        if (step + 1 < steps) {
          // Advance with the verified CPU result (identical across
          // variants) so later steps traverse an evolved tree.
          auto cpu = run_cpu(k, CpuVariant::kAutoropes, 2);
          bh_integrate(bodies.pos, bodies.vel, cpu.results, cfg.bh_dt);
        }
      }
      break;
    }
    case Algo::kPC: {
      PointSet pts = make_tree_input(cfg);
      apply_order(pts, cfg);
      KdTree tree = build_kdtree(pts, cfg.leaf_size);
      float r = pc_pick_radius(pts, cfg.pc_target_neighbors, cfg.seed);
      PointCorrelationKernel k(tree, pts, r, space);
      run_all(row, cfg, k, space,
              [](std::uint32_t a, std::uint32_t b) { return a == b; });
      break;
    }
    case Algo::kKNN: {
      PointSet pts = make_tree_input(cfg);
      apply_order(pts, cfg);
      KdTree tree = build_kdtree(pts, cfg.leaf_size);
      KnnKernel k(tree, pts, cfg.k, space);
      run_all(row, cfg, k, space, [](const KnnResult& a, const KnnResult& b) {
        return nearly_equal(a.kth_d2, b.kth_d2, 1e-4f) &&
               nearly_equal(a.sum_d2, b.sum_d2, 1e-3f);
      });
      break;
    }
    case Algo::kNN: {
      PointSet pts = make_tree_input(cfg);
      apply_order(pts, cfg);
      KdTreeNN tree = build_kdtree_nn(pts);
      NnKernel k(tree, pts, space);
      run_all(row, cfg, k, space, [](const NnResult& a, const NnResult& b) {
        return nearly_equal(a.best_d2, b.best_d2, 1e-4f);
      });
      break;
    }
    case Algo::kVP: {
      PointSet pts = make_tree_input(cfg);
      apply_order(pts, cfg);
      VpTree tree = build_vptree(pts, cfg.seed ^ 0x7b1fa2);
      VpKernel k(tree, pts, space);
      run_all(row, cfg, k, space, [](const VpResult& a, const VpResult& b) {
        return nearly_equal(a.best_d, b.best_d, 1e-4f);
      });
      break;
    }
  }
  return row;
}

namespace {

// Build `k` (referencing data held in `owners`) and wrap it in a handle
// that keeps all of it alive.
template <class K>
std::shared_ptr<KernelHandle> owning_handle(
    std::shared_ptr<K> k, std::vector<std::shared_ptr<void>> owners) {
  owners.push_back(k);
  auto keep = std::make_shared<std::vector<std::shared_ptr<void>>>(
      std::move(owners));
  return make_kernel_handle(*k, std::move(keep));
}

}  // namespace

// Construct one item's kernel exactly the way run_bench does for its solo
// row (same generators, ordering, tree builders, radius picking), so the
// batched or served launch traverses the identical input in an
// identically laid-out address space.
std::unique_ptr<PreparedKernel> prepare_kernel(const BenchConfig& cfg) {
  auto out = std::make_unique<PreparedKernel>();
  switch (cfg.algo) {
    case Algo::kBH: {
      auto bodies = std::make_shared<BodySet>(make_bh_input(cfg));
      auto tree =
          std::make_shared<Octree>(build_octree(bodies->pos, bodies->mass));
      auto k = std::make_shared<BarnesHutKernel>(
          *tree, bodies->pos, cfg.bh_theta, cfg.bh_eps2, out->space);
      out->handle = owning_handle(k, {bodies, tree});
      break;
    }
    case Algo::kPC: {
      auto pts = std::make_shared<PointSet>(make_tree_input(cfg));
      apply_order(*pts, cfg);
      auto tree = std::make_shared<KdTree>(build_kdtree(*pts, cfg.leaf_size));
      float r = pc_pick_radius(*pts, cfg.pc_target_neighbors, cfg.seed);
      auto k = std::make_shared<PointCorrelationKernel>(*tree, *pts, r,
                                                        out->space);
      out->handle = owning_handle(k, {pts, tree});
      break;
    }
    case Algo::kKNN: {
      auto pts = std::make_shared<PointSet>(make_tree_input(cfg));
      apply_order(*pts, cfg);
      auto tree = std::make_shared<KdTree>(build_kdtree(*pts, cfg.leaf_size));
      auto k = std::make_shared<KnnKernel>(*tree, *pts, cfg.k, out->space);
      out->handle = owning_handle(k, {pts, tree});
      break;
    }
    case Algo::kNN: {
      auto pts = std::make_shared<PointSet>(make_tree_input(cfg));
      apply_order(*pts, cfg);
      auto tree = std::make_shared<KdTreeNN>(build_kdtree_nn(*pts));
      auto k = std::make_shared<NnKernel>(*tree, *pts, out->space);
      out->handle = owning_handle(k, {pts, tree});
      break;
    }
    case Algo::kVP: {
      auto pts = std::make_shared<PointSet>(make_tree_input(cfg));
      apply_order(*pts, cfg);
      auto tree =
          std::make_shared<VpTree>(build_vptree(*pts, cfg.seed ^ 0x7b1fa2));
      auto k = std::make_shared<VpKernel>(*tree, *pts, out->space);
      out->handle = owning_handle(k, {pts, tree});
      break;
    }
  }
  // Copy-in/copy-out accounting, as in run_all: everything registered so
  // far (tree + points) crosses the bus; the stack arena the batched
  // executor adds later is device-internal.
  out->upload_bytes = out->space.footprint_bytes();
  out->download_bytes = static_cast<std::uint64_t>(
      out->handle->result_stride() * out->handle->num_points());
  return out;
}

BatchResult run_batch(const BatchConfig& cfg) {
  if (cfg.items.empty())
    throw std::invalid_argument("run_batch: batch has no items");
  BatchResult out;
  out.variant = cfg.variant;
  out.policy = cfg.policy;

  // Closed-batch serving session: everything admitted at t=0, drained as
  // one wave -- byte-identical to the pre-session run_gpu_batch path.
  ServingSession session(
      ServingConfig::closed_batch(cfg.device, cfg.policy, cfg.items.size()));
  std::vector<std::unique_ptr<PreparedKernel>> prepared;
  // Per-launch profiler sinks; unique_ptrs keep the addresses handed to
  // the specs stable while the vector grows.
  std::vector<std::unique_ptr<obs::ProfileSink>> psinks;
  prepared.reserve(cfg.items.size());
  for (const BenchConfig& item : cfg.items) {
    prepared.push_back(prepare_kernel(item));
    PreparedKernel& pl = *prepared.back();
    QuerySet q;
    q.spec.kernel = pl.handle;
    q.spec.space = &pl.space;
    q.spec.mode = GpuMode::from(cfg.variant);
    q.spec.mode.grid_limit = cfg.grid_limit;
    q.spec.mode.profile_samples = item.profile_samples;
    q.spec.mode.profile_seed = item.profile_seed;
    q.upload_bytes = pl.upload_bytes;
    q.download_bytes = pl.download_bytes;
    if (cfg.chrome)
      q.spec.trace = &cfg.chrome->begin_launch(pl.handle->name());
    if (cfg.profile) {
      psinks.push_back(std::make_unique<obs::ProfileSink>());
      q.spec.profile = psinks.back().get();
    }
    session.submit(std::move(q), 0.0);
  }
  session.flush();
  BatchRun run = session.take_closed_run();
  out.residency = run.residency;
  out.total_chunks = run.total_chunks;
  out.rounds = run.rounds;
  out.switches = run.switches;
  out.sim_wall_ms = run.sim_wall_ms;

  out.kernels.reserve(run.launches.size());
  for (std::size_t i = 0; i < run.launches.size(); ++i) {
    const LaunchResult& lr = run.launches[i];
    BatchKernelRow row;
    row.config = cfg.items[i];
    row.kernel_name = lr.kernel_name;
    row.upload_bytes = prepared[i]->upload_bytes;
    row.download_bytes = prepared[i]->download_bytes;
    if (lr.ok()) {
      row.result.stats = lr.stats;
      row.result.time = lr.time;
      row.result.time_ms = lr.time.total_ms;
      row.result.avg_nodes = lr.avg_nodes();
      row.result.selection = lr.selection;
      row.result.profile = lr.profile;
      row.avg_nodes = row.result.avg_nodes;
    } else {
      row.result.error = lr.error;
    }
    out.upload_bytes += row.upload_bytes;
    out.download_bytes += row.download_bytes;
    out.kernels.push_back(std::move(row));
  }
  return out;
}

BatchConfig default_table1_batch() {
  BatchConfig batch;
  for (Algo a : {Algo::kBH, Algo::kPC, Algo::kKNN, Algo::kNN, Algo::kVP}) {
    BenchConfig c;
    c.algo = a;
    c.input = inputs_for(a).front();
    c.sorted = true;
    batch.items.push_back(c);
  }
  return batch;
}

ShardingRunSummary run_sharding(const ShardingConfig& config) {
  if (config.items.empty())
    throw std::invalid_argument("run_sharding: no items to shard");
  ShardingRunSummary out;
  out.devices = std::max<std::size_t>(config.devices, 1);
  out.chunk_points = std::max<std::size_t>(config.chunk_points, 1);
  out.policy = config.policy;
  out.variant = config.variant;
  out.transfer = config.transfer;

  DeviceGroupConfig group;
  group.devices = out.devices;
  group.device = config.device;
  group.transfer = config.transfer;
  group.policy = config.policy;
  group.chunk_points = out.chunk_points;
  group.chrome = config.chrome;

  out.kernels.reserve(config.items.size());
  for (const BenchConfig& item : config.items) {
    std::unique_ptr<PreparedKernel> pl = prepare_kernel(item);
    LaunchSpec spec;
    spec.kernel = pl->handle;
    spec.space = &pl->space;
    spec.mode = GpuMode::from(config.variant);
    spec.mode.grid_limit = config.grid_limit;
    spec.mode.profile_samples = item.profile_samples;
    spec.mode.profile_seed = item.profile_seed;

    ShardedRun r =
        run_sharded(spec, pl->upload_bytes, pl->download_bytes, group);
    ShardingKernelReport rep;
    rep.kernel_name = r.merged.kernel_name.empty() ? pl->handle->name()
                                                   : r.merged.kernel_name;
    rep.n_points = r.merged.n_points;
    rep.n_chunks = r.merged.n_warps;
    rep.variant = r.merged.variant;
    rep.single_device_ms = r.single_device_ms;
    rep.makespan_ms = r.makespan_ms;
    rep.speedup = r.speedup;
    rep.devices = std::move(r.devices);
    rep.error = r.merged.error;
    out.kernels.push_back(std::move(rep));
  }
  return out;
}

std::vector<CpuSweepPoint> cpu_sweep(const BenchRow& row, bool lockstep,
                                     const std::vector<int>& thread_counts) {
  const VariantResult& v = row.result(lockstep ? Variant::kAutoLockstep
                                               : Variant::kAutoNolockstep);
  std::vector<CpuSweepPoint> out;
  out.reserve(thread_counts.size());
  for (int t : thread_counts) {
    CpuSweepPoint p;
    p.threads = t;
    p.cpu_ms = row.cpu_model.time_ms(row.cpu_t1_ms, t);
    p.ratio_vs_gpu = v.time_ms / p.cpu_ms;
    out.push_back(p);
  }
  return out;
}

}  // namespace tt
