#include "bench_algos/nn/nearest_neighbor.h"

#include <stdexcept>

#include "core/rope_stack.h"

namespace tt {

NnKernel::NnKernel(const KdTreeNN& tree, const PointSet& queries,
                   GpuAddressSpace& space)
    : tree_(&tree), queries_(&queries), dim_(tree.dim) {
  if (queries.dim() != tree.dim)
    throw std::invalid_argument("NnKernel: dim mismatch");
  stack_bound_ = rope_stack_bound(tree.topo.max_depth(), 2);
  // nodes0: node point coordinates + split dim; nodes1: children. Field
  // maps feed the per-field traffic attribution (simt/memory_attr.h).
  const auto w = static_cast<std::uint32_t>(dim_) * 4;
  nodes0_ = space.register_buffer(
      "nn_nodes0", static_cast<std::uint64_t>(w) + 4,
      static_cast<std::uint64_t>(tree.topo.n_nodes),
      {{"coords", 0, w}, {"split_dim", w, 4}});
  nodes1_ = space.register_buffer(
      "nn_nodes1", 8, static_cast<std::uint64_t>(tree.topo.n_nodes),
      {{"children", 0, 8}});
  queries_buf_ = space.register_buffer(
      "nn_queries", 4, static_cast<std::uint64_t>(dim_) * queries.size());
}

std::vector<NnResult> nn_brute_force(const PointSet& data,
                                     const PointSet& queries) {
  std::vector<NnResult> out(queries.size());
  float q[kMaxDim];
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries.gather(i, q);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < data.size(); ++j) {
      if (j == i) continue;
      best = std::min(best, data.sq_dist(j, q));
    }
    out[i].best_d2 = static_cast<float>(best);
  }
  return out;
}

ir::TraversalFunc nn_ir() {
  // Same shape as the kNN body (Figure 5) but the update runs at every
  // visited node (the node stores a point) before the guided descent.
  ir::TraversalFunc f;
  f.name = "nearest_neighbor";
  f.blocks.resize(6);
  f.blocks[0].term = ir::Block::Term::kBranch;  // if (bound > best) return
  f.blocks[0].cond = 0;
  f.blocks[0].cond_point_dependent = true;
  f.blocks[0].succ_true = 5;
  f.blocks[0].succ_false = 1;
  ir::Stmt upd;  // update best with this node's point
  upd.kind = ir::Stmt::Kind::kUpdate;
  upd.id = 0;
  f.blocks[1].stmts.push_back(upd);
  f.blocks[1].term = ir::Block::Term::kBranch;  // if (is_leaf) return
  f.blocks[1].cond = 1;
  f.blocks[1].cond_point_dependent = false;
  f.blocks[1].succ_true = 5;
  f.blocks[1].succ_false = 2;
  f.blocks[2].term = ir::Block::Term::kBranch;  // if (q below split)
  f.blocks[2].cond = 2;
  f.blocks[2].cond_point_dependent = true;
  f.blocks[2].succ_true = 3;
  f.blocks[2].succ_false = 4;
  auto call = [](int id, int slot) {
    ir::Stmt s;
    s.kind = ir::Stmt::Kind::kCall;
    s.id = id;
    s.child_slot = slot;
    s.arg_expr = 1;  // per-child bound expression
    return s;
  };
  f.blocks[3].stmts = {call(0, 0), call(1, 1)};
  f.blocks[3].term = ir::Block::Term::kReturn;
  f.blocks[4].stmts = {call(2, 1), call(3, 0)};
  f.blocks[4].term = ir::Block::Term::kReturn;
  f.blocks[5].term = ir::Block::Term::kReturn;
  return f;
}

}  // namespace tt
