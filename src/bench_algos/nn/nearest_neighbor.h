// Nearest-Neighbor over the point-node kd-tree (the paper's NN benchmark:
// "a variation of nearest neighbor search with a different implementation
// of the kd-tree structure", section 6.1.2).
//
// Guided, two call sets. Unlike the bucket tree, every node stores a data
// point, so updates happen at every visit; the truncation bound for a far
// subtree is the splitting-plane distance computed at the parent, which is
// point-specific -- the canonical *per-lane* rope-stack argument (LArg).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/ir/traversal_ir.h"
#include "core/traversal_kernel.h"
#include "simt/address_space.h"
#include "spatial/kdtree.h"

namespace tt {

struct NnResult {
  float best_d2 = std::numeric_limits<float>::infinity();
  friend bool operator==(const NnResult&, const NnResult&) = default;
};

class NnKernel {
 public:
  struct State {
    float q[kMaxDim];
    float best_d2 = std::numeric_limits<float>::infinity();
    std::uint32_t self = 0;
  };
  using Result = NnResult;
  using UArg = Empty;
  struct LArg {
    // Squared lower bound on the distance from q to any point in this
    // subtree (0 for the near child, plane distance^2 for the far child).
    float min_d2 = 0;
  };
  static constexpr int kFanout = 2;
  static constexpr const char* kName = "nearest_neighbor";
  static constexpr int kNumCallSets = 2;
  static constexpr bool kCallSetsEquivalent = true;

  NnKernel(const KdTreeNN& tree, const PointSet& queries,
           GpuAddressSpace& space);

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_points() const { return queries_->size(); }
  [[nodiscard]] UArg root_uarg() const { return {}; }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] int stack_bound() const { return stack_bound_; }

  template <class Mem>
  State init(std::uint32_t pid, Mem& mem, int lane) const {
    const std::size_t n = queries_->size();
    State s;
    for (int d = 0; d < dim_; ++d) {
      mem.lane_load(lane, queries_buf_,
                    static_cast<std::uint64_t>(d) * n + pid);
      s.q[d] = queries_->at(pid, d);
    }
    s.self = pid;
    return s;
  }

  template <class Mem>
  bool visit(NodeId n, const UArg&, const LArg& la, State& st, Mem& mem,
             int lane) const {
    if (la.min_d2 > st.best_d2) return false;  // subtree cannot improve
    mem.lane_load(lane, nodes0_, static_cast<std::uint64_t>(n));
    if (static_cast<std::uint32_t>(tree_->point_id[n]) != st.self) {
      double d2 = 0;
      const float* c = &tree_->coords[static_cast<std::size_t>(n) * dim_];
      for (int d = 0; d < dim_; ++d) {
        double delta = static_cast<double>(c[d]) - st.q[d];
        d2 += delta * delta;
      }
      if (d2 < st.best_d2) st.best_d2 = static_cast<float>(d2);
    }
    return !tree_->topo.is_leaf(n);
  }

  [[nodiscard]] int choose_callset(NodeId n, const State& st) const {
    int sd = tree_->split_dim[n];
    float sv = tree_->coords[static_cast<std::size_t>(n) * dim_ + sd];
    return st.q[sd] <= sv ? 0 : 1;  // 0: below-first
  }

  template <class Mem>
  int children(NodeId n, const UArg&, int callset, const State& st,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    mem.lane_load(lane, nodes1_, static_cast<std::uint64_t>(n));
    int sd = tree_->split_dim[n];
    float sv = tree_->coords[static_cast<std::size_t>(n) * dim_ + sd];
    float plane = st.q[sd] - sv;
    float plane_d2 = plane * plane;
    // The half-space containing q gets bound 0; the far side cannot hold
    // anything closer than the splitting plane.
    int near_slot = st.q[sd] <= sv ? KdTreeNN::kBelow : KdTreeNN::kAbove;
    NodeId first, second;
    float first_bound, second_bound;
    if (callset == 0) {
      first = tree_->topo.child(n, KdTreeNN::kBelow);
      second = tree_->topo.child(n, KdTreeNN::kAbove);
      first_bound = near_slot == KdTreeNN::kBelow ? 0.f : plane_d2;
      second_bound = near_slot == KdTreeNN::kAbove ? 0.f : plane_d2;
    } else {
      first = tree_->topo.child(n, KdTreeNN::kAbove);
      second = tree_->topo.child(n, KdTreeNN::kBelow);
      first_bound = near_slot == KdTreeNN::kAbove ? 0.f : plane_d2;
      second_bound = near_slot == KdTreeNN::kBelow ? 0.f : plane_d2;
    }
    int cnt = 0;
    if (first != kNullNode) {
      out[cnt].node = first;
      out[cnt].larg = {first_bound};
      ++cnt;
    }
    if (second != kNullNode) {
      out[cnt].node = second;
      out[cnt].larg = {second_bound};
      ++cnt;
    }
    return cnt;
  }

  [[nodiscard]] Result finish(const State& st) const {
    return {st.best_d2};
  }

 private:
  const KdTreeNN* tree_;
  const PointSet* queries_;
  int dim_;
  int stack_bound_;
  BufferId nodes0_, nodes1_, queries_buf_;
};

std::vector<NnResult> nn_brute_force(const PointSet& data,
                                     const PointSet& queries);

ir::TraversalFunc nn_ir();

}  // namespace tt
