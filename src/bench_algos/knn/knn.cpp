#include "bench_algos/knn/knn.h"

#include <stdexcept>

#include "core/rope_stack.h"

namespace tt {

KnnKernel::KnnKernel(const KdTree& tree, const PointSet& queries, int k,
                     GpuAddressSpace& space)
    : tree_(&tree),
      queries_(&queries),
      data_(&queries),
      dim_(tree.dim),
      k_(k) {
  if (queries.dim() != tree.dim)
    throw std::invalid_argument("KnnKernel: dim mismatch");
  if (k < 1 || k > kMaxK)
    throw std::invalid_argument("KnnKernel: k out of [1, kMaxK]");
  if (static_cast<std::size_t>(k) >= queries.size())
    throw std::invalid_argument("KnnKernel: k >= number of points");
  stack_bound_ = rope_stack_bound(tree.topo.max_depth(), 2);
  // nodes0 carries the truncation-test fields (bbox) plus the split plane
  // used by the call-set choice. Field maps feed the per-field traffic
  // attribution (simt/memory_attr.h).
  const auto w = static_cast<std::uint32_t>(dim_) * 4;
  nodes0_ = space.register_buffer(
      "knn_nodes0", static_cast<std::uint64_t>(2) * w + 8,
      static_cast<std::uint64_t>(tree.topo.n_nodes),
      {{"bbox_min", 0, w}, {"bbox_max", w, w}, {"split_plane", 2 * w, 8}});
  nodes1_ = space.register_buffer(
      "knn_nodes1", 16, static_cast<std::uint64_t>(tree.topo.n_nodes),
      {{"children", 0, 8}, {"leaf_range", 8, 8}});
  leafpts_ = space.register_buffer(
      "knn_leaf_points", static_cast<std::uint64_t>(dim_) * 4,
      tree.data_perm.size());
  queries_buf_ = space.register_buffer(
      "knn_queries", 4, static_cast<std::uint64_t>(dim_) * queries.size());
}

std::vector<KnnResult> knn_brute_force(const PointSet& data,
                                       const PointSet& queries, int k) {
  std::vector<KnnResult> out(queries.size());
  float q[kMaxDim];
  for (std::size_t i = 0; i < queries.size(); ++i) {
    KnnHeap heap;
    heap.k = k;
    queries.gather(i, q);
    for (std::size_t j = 0; j < data.size(); ++j) {
      if (j == i) continue;
      heap.push(static_cast<float>(data.sq_dist(j, q)),
                static_cast<std::int32_t>(j));
    }
    out[i].kth_d2 = heap.worst();
    out[i].found = heap.size;
    for (int h = 0; h < heap.size; ++h) {
      out[i].sum_d2 += heap.d2[h];
      out[i].ids[h] = heap.id[h];
    }
  }
  return out;
}

ir::TraversalFunc knn_ir() {
  // Figure 5: guard, leaf update, then either (near, far) or (far, near).
  ir::TraversalFunc f;
  f.name = "knn";
  f.blocks.resize(7);
  f.blocks[0].term = ir::Block::Term::kBranch;  // if (!can_correlate) return
  f.blocks[0].cond = 0;
  f.blocks[0].cond_point_dependent = true;
  f.blocks[0].succ_true = 6;
  f.blocks[0].succ_false = 1;
  f.blocks[1].term = ir::Block::Term::kBranch;  // if (is_leaf) {update;return}
  f.blocks[1].cond = 1;
  f.blocks[1].cond_point_dependent = false;
  f.blocks[1].succ_true = 5;
  f.blocks[1].succ_false = 2;
  f.blocks[2].term = ir::Block::Term::kBranch;  // if (closer_to_left)
  f.blocks[2].cond = 2;
  f.blocks[2].cond_point_dependent = true;  // the guided choice
  f.blocks[2].succ_true = 3;
  f.blocks[2].succ_false = 4;
  auto call = [](int id, int slot) {
    ir::Stmt s;
    s.kind = ir::Stmt::Kind::kCall;
    s.id = id;
    s.child_slot = slot;
    s.child_point_dependent = false;
    return s;
  };
  f.blocks[3].stmts = {call(0, 0), call(1, 1)};  // left then right
  f.blocks[3].term = ir::Block::Term::kReturn;
  f.blocks[4].stmts = {call(2, 1), call(3, 0)};  // right then left
  f.blocks[4].term = ir::Block::Term::kReturn;
  ir::Stmt upd;
  upd.kind = ir::Stmt::Kind::kUpdate;
  upd.id = 0;
  f.blocks[5].stmts.push_back(upd);
  f.blocks[5].term = ir::Block::Term::kReturn;
  f.blocks[6].term = ir::Block::Term::kReturn;
  return f;
}

}  // namespace tt
