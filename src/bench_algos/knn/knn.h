// k-Nearest-Neighbor search over a bucket kd-tree (paper section 6.1.2).
// Guided traversal with two call sets (near-child-first vs far-child-first,
// the two recursive-call orders of Figure 5); the call sets are
// semantically equivalent (annotation kCallSetsEquivalent), enabling the
// section-4.3 majority-vote lockstep variant.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/ir/traversal_ir.h"
#include "core/traversal_kernel.h"
#include "simt/address_space.h"
#include "spatial/kdtree.h"

namespace tt {

// Fixed-capacity max-heap over squared distances: the per-point register
// state of the kNN traversal. Capacity bounds k at compile time.
inline constexpr int kMaxK = 16;

struct KnnHeap {
  float d2[kMaxK] = {};
  std::int32_t id[kMaxK] = {};
  int size = 0;
  int k = 1;

  [[nodiscard]] float worst() const {
    return size == static_cast<int>(k) ? d2[0]
                                       : std::numeric_limits<float>::infinity();
  }
  void push(float v) { push(v, -1); }
  void push(float v, std::int32_t who) {
    if (size < k) {
      d2[size] = v;
      id[size] = who;
      ++size;
      // sift up
      int i = size - 1;
      while (i > 0) {
        int p = (i - 1) / 2;
        if (d2[p] >= d2[i]) break;
        swap_at(p, i);
        i = p;
      }
    } else if (v < d2[0]) {
      d2[0] = v;
      id[0] = who;
      // sift down
      int i = 0;
      for (;;) {
        int l = 2 * i + 1, r = 2 * i + 2, m = i;
        if (l < size && d2[l] > d2[m]) m = l;
        if (r < size && d2[r] > d2[m]) m = r;
        if (m == i) break;
        swap_at(m, i);
        i = m;
      }
    }
  }

 private:
  void swap_at(int a, int b) {
    float td = d2[a];
    d2[a] = d2[b];
    d2[b] = td;
    std::int32_t ti = id[a];
    id[a] = id[b];
    id[b] = ti;
  }
};

struct KnnResult {
  float kth_d2 = 0;  // squared distance of the k-th neighbor
  float sum_d2 = 0;  // order-independent checksum of the k distances
  int found = 0;     // neighbors actually found (== k unless n is tiny)
  std::int32_t ids[kMaxK] = {};  // the neighbors (heap order)
  friend bool operator==(const KnnResult&, const KnnResult&) = default;
};

class KnnKernel {
 public:
  struct State {
    float q[kMaxDim];
    KnnHeap heap;
    std::uint32_t self = 0;
  };
  using Result = KnnResult;
  using UArg = Empty;
  using LArg = Empty;
  static constexpr int kFanout = 2;
  static constexpr const char* kName = "knn";
  static constexpr int kNumCallSets = 2;
  static constexpr bool kCallSetsEquivalent = true;

  KnnKernel(const KdTree& tree, const PointSet& queries, int k,
            GpuAddressSpace& space);

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_points() const { return queries_->size(); }
  [[nodiscard]] UArg root_uarg() const { return {}; }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] int stack_bound() const { return stack_bound_; }
  [[nodiscard]] int k() const { return k_; }

  template <class Mem>
  State init(std::uint32_t pid, Mem& mem, int lane) const {
    const std::size_t n = queries_->size();
    State s;
    for (int d = 0; d < dim_; ++d) {
      mem.lane_load(lane, queries_buf_,
                    static_cast<std::uint64_t>(d) * n + pid);
      s.q[d] = queries_->at(pid, d);
    }
    s.heap.k = k_;
    s.self = pid;
    return s;
  }

  template <class Mem>
  bool visit(NodeId n, const UArg&, const LArg&, State& st, Mem& mem,
             int lane) const {
    mem.lane_load(lane, nodes0_, static_cast<std::uint64_t>(n));
    if (tree_->box_sq_dist(n, st.q) > st.heap.worst()) return false;
    if (!tree_->topo.is_leaf(n)) return true;
    for (std::int32_t i = tree_->leaf_begin[n]; i < tree_->leaf_end[n]; ++i) {
      mem.lane_load(lane, leafpts_, static_cast<std::uint64_t>(i));
      std::uint32_t p = tree_->data_perm[static_cast<std::size_t>(i)];
      if (p == st.self) continue;  // a point is not its own neighbor
      st.heap.push(static_cast<float>(data_->sq_dist(p, st.q)),
                   static_cast<std::int32_t>(p));
    }
    return false;
  }

  // Call set 0: the child whose half-space contains q first (Figure 5's
  // closer_to_left); call set 1: the other order.
  [[nodiscard]] int choose_callset(NodeId n, const State& st) const {
    int sd = tree_->split_dim[n];
    if (sd < 0) return 0;
    return st.q[sd] <= tree_->split_val[n] ? 0 : 1;
  }

  template <class Mem>
  int children(NodeId n, const UArg&, int callset, const State&,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    mem.lane_load(lane, nodes1_, static_cast<std::uint64_t>(n));
    NodeId l = tree_->topo.child(n, 0);
    NodeId r = tree_->topo.child(n, 1);
    NodeId first = callset == 0 ? l : r;
    NodeId second = callset == 0 ? r : l;
    int cnt = 0;
    if (first != kNullNode) out[cnt++].node = first;
    if (second != kNullNode) out[cnt++].node = second;
    return cnt;
  }

  [[nodiscard]] Result finish(const State& st) const {
    KnnResult r;
    r.kth_d2 = st.heap.worst();
    r.found = st.heap.size;
    for (int i = 0; i < st.heap.size; ++i) {
      r.sum_d2 += st.heap.d2[i];
      r.ids[i] = st.heap.id[i];
    }
    return r;
  }

 private:
  const KdTree* tree_;
  const PointSet* queries_;
  const PointSet* data_;
  int dim_, k_;
  int stack_bound_;
  BufferId nodes0_, nodes1_, leafpts_, queries_buf_;
};

// Brute-force reference (returns the same checksums as KnnKernel).
std::vector<KnnResult> knn_brute_force(const PointSet& data,
                                       const PointSet& queries, int k);

// IR description (Figure 5): two call sets {near,far} / {far,near}.
ir::TraversalFunc knn_ir();

}  // namespace tt
