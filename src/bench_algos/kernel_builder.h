// Build one benchmark's data + tree + kernel for a given point order and
// hand the kernel to a visitor. Shared by the auto_select acceptance test
// and bench/selection_sweep, which both need "the Table-1 kernel for algo
// X with the points in order Y" without the harness's CPU baselines and
// per-variant loop. Single-timestep view only: BH builds the initial
// octree (harness.cpp owns the multi-timestep integration loop).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bench_algos/bh/barnes_hut.h"
#include "bench_algos/harness.h"
#include "bench_algos/knn/knn.h"
#include "bench_algos/nn/nearest_neighbor.h"
#include "bench_algos/pc/point_correlation.h"
#include "bench_algos/vp/vantage_point.h"
#include "data/generators.h"
#include "data/sorting.h"
#include "simt/address_space.h"
#include "spatial/kdtree.h"
#include "spatial/octree.h"
#include "spatial/vptree.h"

namespace tt {

// How the query points are laid out before the tree build: the two
// "sorted" layouts of section 4.4 (Morton for low dimensions, kd-tree
// leaf order for high) and the adversarial shuffled layout.
enum class PointOrder { kMorton, kTree, kShuffled };

[[nodiscard]] inline const char* point_order_name(PointOrder o) {
  switch (o) {
    case PointOrder::kMorton: return "morton";
    case PointOrder::kTree: return "tree";
    case PointOrder::kShuffled: return "shuffled";
  }
  return "?";
}

inline std::vector<std::uint32_t> order_permutation(const PointSet& pts,
                                                    PointOrder order,
                                                    const BenchConfig& cfg) {
  switch (order) {
    case PointOrder::kMorton: return morton_order(pts);
    case PointOrder::kTree: return tree_order(pts, cfg.leaf_size);
    case PointOrder::kShuffled:
      return shuffled_order(pts.size(), cfg.seed ^ 0x5bd1e995);
  }
  throw std::logic_error("order_permutation: bad order");
}

// Generate cfg.algo's input, permute it into `order`, build the tree and
// call fn(kernel). Buffers register into `space` exactly like run_bench,
// so run_gpu_sim on the visited kernel models the same address space.
template <class Fn>
void with_bench_kernel(const BenchConfig& cfg, PointOrder order,
                       GpuAddressSpace& space, Fn&& fn) {
  if (cfg.algo == Algo::kBH) {
    BodySet bodies = cfg.input == InputKind::kRandomBodies
                         ? gen_random_bodies(cfg.n, cfg.seed)
                         : gen_plummer(cfg.n, cfg.seed);
    auto perm = order_permutation(bodies.pos, order, cfg);
    bodies.pos.permute(perm);
    std::vector<float> mass(cfg.n);
    for (std::size_t j = 0; j < cfg.n; ++j) mass[j] = bodies.mass[perm[j]];
    bodies.mass = std::move(mass);
    Octree tree = build_octree(bodies.pos, bodies.mass);
    BarnesHutKernel k(tree, bodies.pos, cfg.bh_theta, cfg.bh_eps2, space);
    fn(k);
    return;
  }

  PointSet pts = [&] {
    switch (cfg.input) {
      case InputKind::kCovtype:
        return gen_covtype_like(cfg.n, cfg.dim, cfg.seed);
      case InputKind::kMnist: return gen_mnist_like(cfg.n, cfg.dim, cfg.seed);
      case InputKind::kUniform: return gen_uniform(cfg.n, cfg.dim, cfg.seed);
      case InputKind::kGeocity: return gen_geocity_like(cfg.n, cfg.seed);
      default:
        throw std::invalid_argument(
            "with_bench_kernel: body input for tree algo");
    }
  }();
  pts.permute(order_permutation(pts, order, cfg));

  switch (cfg.algo) {
    case Algo::kPC: {
      KdTree tree = build_kdtree(pts, cfg.leaf_size);
      float r = pc_pick_radius(pts, cfg.pc_target_neighbors, cfg.seed);
      PointCorrelationKernel k(tree, pts, r, space);
      fn(k);
      return;
    }
    case Algo::kKNN: {
      KdTree tree = build_kdtree(pts, cfg.leaf_size);
      KnnKernel k(tree, pts, cfg.k, space);
      fn(k);
      return;
    }
    case Algo::kNN: {
      KdTreeNN tree = build_kdtree_nn(pts);
      NnKernel k(tree, pts, space);
      fn(k);
      return;
    }
    case Algo::kVP: {
      VpTree tree = build_vptree(pts, cfg.seed ^ 0x7b1fa2);
      VpKernel k(tree, pts, space);
      fn(k);
      return;
    }
    case Algo::kBH: break;  // handled above
  }
  throw std::logic_error("with_bench_kernel: bad algo");
}

}  // namespace tt
