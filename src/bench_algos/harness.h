// Shared experiment harness: builds a benchmark/input pair exactly the way
// the paper's evaluation does (generate -> order (sorted/unsorted) -> build
// tree -> run every variant), and returns the measurements behind Table 1,
// Table 2 and Figures 10/11.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/batch_scheduler.h"
#include "core/device_group.h"
#include "core/serving.h"
#include "core/ir/callset_analysis.h"
#include "core/variant.h"
#include "cpu/scaling_model.h"
#include "obs/profile.h"
#include "simt/cost_model.h"
#include "simt/device_config.h"
#include "simt/kernel_stats.h"
#include "simt/transfer_model.h"
#include "util/stats.h"

namespace tt {

namespace obs {
class ChromeTraceCollector;  // obs/chrome_trace.h
}

enum class Algo { kBH, kPC, kKNN, kNN, kVP };
enum class InputKind {
  kPlummer,       // BH only
  kRandomBodies,  // BH only
  kCovtype,
  kMnist,
  kUniform,
  kGeocity,
};

std::string algo_name(Algo a);
std::string input_name(InputKind i);
// The paper's benchmark/input grid (BH x {plummer, random-bodies}; others x
// {covtype, mnist, uniform(=the paper's Random), geocity}).
std::vector<InputKind> inputs_for(Algo a);
// Static call-set analysis of the algorithm's IR description.
ir::AnalysisReport analysis_for(Algo a);

struct BenchConfig {
  Algo algo = Algo::kPC;
  InputKind input = InputKind::kUniform;
  std::size_t n = 8192;  // points (or bodies)
  bool sorted = true;
  std::uint64_t seed = 42;

  int dim = 7;                       // projected dimensionality
  int k = 8;                         // kNN
  double pc_target_neighbors = 32;   // sets the PC radius on scaled inputs
  float bh_theta = 0.5f;
  float bh_eps2 = 1e-4f;
  int bh_timesteps = 1;  // the paper integrates 5 steps; 1 keeps runs short
  float bh_dt = 0.0125f;
  int leaf_size = 8;                 // bucket kd-tree leaves

  int cpu_threads = 0;   // 0 => hardware_threads() for the measured run
  bool verify = true;    // cross-check all variants' results agree
  DeviceConfig device;

  // auto_select sampler knobs (the --profile-samples/--profile-seed CLI
  // flags): how many adjacent traversal pairs the section-4.4 profiler
  // draws per launch, and the deterministic seed it draws them with.
  std::size_t profile_samples = 32;
  std::uint64_t profile_seed = 1;

  // Which GPU variants run_bench simulates (the --variant CLI filter,
  // parsed by VariantSet::from_names). A disabled variant is reported
  // through VariantResult::error ("skipped: ...") with zeroed numbers,
  // like a failed one.
  VariantSet variants = VariantSet::all();

  // Cycle-attribution profiler (the --profile CLI flag): when set, every
  // variant's run carries an obs::ProfileSink and VariantResult::profile
  // is filled (BH accumulates it across timesteps via
  // obs::ProfileReport::merge).
  bool profile = false;
  // Chrome-trace export (the --chrome-trace CLI flag): when non-null,
  // every GPU launch opens a track in the collector (named
  // "<kernel>/<variant>") and runs with that track's TraceSink. The
  // collector is owned by the caller; the harness only appends launches.
  obs::ChromeTraceCollector* chrome = nullptr;
};

struct VariantResult {
  double time_ms = 0;       // modelled GPU time (== time.total_ms)
  double avg_nodes = 0;     // the paper's "Avg. # Nodes" column
  KernelStats stats;
  TimeBreakdown time;       // the cost model's full breakdown
  double sim_wall_ms = 0;
  // auto_select only: the launch-time decision record (exported as the
  // "selection" block of the RunReport JSON). BH accumulates it across
  // timesteps: samples and sampling_cycles sum, similarity averages, and
  // `chosen` keeps the first timestep's dispatch.
  std::optional<SelectionInfo> selection;
  // Set when BenchConfig::profile was on: the variant's cycle-attribution
  // profile (obs/profile.h). BH merges it across timesteps, so the
  // attribution invariant (bucket sum == stats.instr_cycles) holds for
  // the whole accumulated run.
  std::optional<obs::ProfileReport> profile;
  // Empty on success. Set (e.g. "rope stack overflow ...") when this
  // variant's simulation failed; its numbers are then all zero while the
  // other variants of the row stay valid.
  std::string error;
  [[nodiscard]] bool ok() const { return error.empty(); }
};

struct BenchRow {
  BenchConfig config;
  // GPU variants, indexed by Variant (see core/variant.h).
  std::array<VariantResult, kNumVariants> variants;
  [[nodiscard]] VariantResult& result(Variant v) {
    return variants[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const VariantResult& result(Variant v) const {
    return variants[static_cast<std::size_t>(v)];
  }
  // CPU measurements (real) and scaling model.
  double cpu_t1_ms = 0;            // measured, 1 thread
  double cpu_tmax_ms = 0;          // measured, cpu_threads threads
  int cpu_threads_measured = 1;
  std::uint64_t cpu_visits = 0;
  CpuScalingModel cpu_model;

  // Table 2: per-warp work expansion of the lockstep traversal.
  Summary work_expansion;

  // Section 5.2's copy-in/copy-out: bytes shipped to/from the device and
  // the modelled PCIe time (not part of the paper's traversal-time
  // columns, reported alongside for end-to-end judgement). `launches`
  // counts the kernel launches behind the accumulated bytes -- 1 for
  // single-shot rows, bh_timesteps for multi-timestep BH rows (each step
  // re-uploads the rebuilt octree and pays its own launch overhead).
  std::uint64_t upload_bytes = 0;
  std::uint64_t download_bytes = 0;
  int launches = 1;
  TransferModel transfer;
  [[nodiscard]] double transfer_ms() const {
    return transfer.round_trip_ms(upload_bytes, download_bytes, launches);
  }

  // Derived columns (Table 1).
  double speedup_vs_1(const VariantResult& v) const {
    return cpu_t1_ms / v.time_ms;
  }
  double speedup_vs_32(const VariantResult& v) const {
    return cpu_model.time_ms(cpu_t1_ms, 32) / v.time_ms;
  }
  // "Improv. vs Recurse": like-for-like autoropes vs recursive GPU.
  double improvement_vs_recursive(bool lockstep) const {
    const VariantResult& a = result(lockstep ? Variant::kAutoLockstep
                                             : Variant::kAutoNolockstep);
    const VariantResult& r = result(lockstep ? Variant::kRecLockstep
                                             : Variant::kRecNolockstep);
    return r.time_ms / a.time_ms - 1.0;
  }
};

// Run all variants for one benchmark/input/order cell. A variant whose
// simulation fails (rope-stack overflow) is reported through its
// VariantResult::error field instead of aborting the row, so the other
// variants' measurements survive. Throws on variant *result divergence*
// when config.verify is set (that is a correctness bug, not a capacity
// limit) and on invalid configurations.
BenchRow run_bench(const BenchConfig& config);

// ---------------------------------------------------------------------
// Batched multi-kernel runs (core/serving.h behind the harness).
// ---------------------------------------------------------------------

// One prepared benchmark kernel, fully owned: the launch's address space
// plus a handle whose keep-alive parks the generated input, tree and
// kernel object so everything outlives the run. Built exactly the way
// run_bench builds the item's solo row (same generators, ordering, tree
// builders, radius picking). This is the unit bench/serving submits as a
// core QuerySet, and what run_batch builds per item.
struct PreparedKernel {
  GpuAddressSpace space;
  std::shared_ptr<KernelHandle> handle;
  std::uint64_t upload_bytes = 0;    // tree + points crossing the bus
  std::uint64_t download_bytes = 0;  // result_stride * num_points back
};

// BH builds the initial octree only -- one timestep.
[[nodiscard]] std::unique_ptr<PreparedKernel> prepare_kernel(
    const BenchConfig& cfg);

// One batched harness run: every item becomes one LaunchSpec (own input,
// own tree, own address space -- built exactly like its run_bench solo
// row) and all launches share a single simulated device residency.
struct BatchConfig {
  std::vector<BenchConfig> items;
  // The composition every launch simulates. auto_select (the default)
  // resolves per launch, like solo.
  Variant variant = Variant::kAutoSelect;
  BatchPolicy policy = BatchPolicy::kRoundRobin;
  std::size_t grid_limit = 0;  // Figure 9b strip-mining, per launch
  DeviceConfig device;         // one GPU; items' device fields are ignored
  // Same observability knobs as BenchConfig: per-launch profiles into
  // BatchKernelRow::result.profile, and one chrome-trace track per launch
  // (named after the kernel) when `chrome` is set.
  bool profile = false;
  obs::ChromeTraceCollector* chrome = nullptr;
};

// Per-kernel row of a batched run: the launch's isolated measurements
// plus its solo transfer accounting (what it would have paid alone).
struct BatchKernelRow {
  BenchConfig config;       // the item that produced this launch
  std::string kernel_name;  // K::kName
  VariantResult result;     // same shape as a solo variant column
  double avg_nodes = 0;
  std::uint64_t upload_bytes = 0;
  std::uint64_t download_bytes = 0;
  [[nodiscard]] double solo_transfer_ms(const TransferModel& t) const {
    return t.round_trip_ms(upload_bytes, download_bytes);
  }
};

struct BatchResult {
  std::vector<BatchKernelRow> kernels;
  Variant variant = Variant::kAutoSelect;
  BatchPolicy policy = BatchPolicy::kRoundRobin;
  // Schedule accounting (see BatchSchedule).
  std::size_t residency = 0;
  std::size_t total_chunks = 0;
  std::size_t rounds = 0;
  std::size_t switches = 0;
  // Batch-level transfer: all launches' bytes over one amortized round
  // trip (a single launch overhead for the whole batch).
  std::uint64_t upload_bytes = 0;
  std::uint64_t download_bytes = 0;
  TransferModel transfer;
  double sim_wall_ms = 0;

  [[nodiscard]] double amortized_transfer_ms() const {
    return transfer.round_trip_ms(upload_bytes, download_bytes, 1);
  }
  // What the same kernels pay as separate solo launches. Strictly larger
  // than amortized_transfer_ms for >= 2 kernels: same bytes, but one
  // launch overhead per kernel instead of one per batch.
  [[nodiscard]] double summed_solo_transfer_ms() const {
    double s = 0;
    for (const BatchKernelRow& k : kernels) s += k.solo_transfer_ms(transfer);
    return s;
  }
};

// Build every item's kernel and run them as one batched launch. Results
// are byte-identical to each item's solo run (pinned by
// tests/core/batch_scheduler_test.cpp); only launch/transfer accounting
// changes. BH items run a single timestep (multi-timestep accumulation is
// a solo-row concept). Throws std::invalid_argument on an empty batch.
BatchResult run_batch(const BatchConfig& config);

// The five Table-1 benchmarks (first input of each, sorted) as one batch.
[[nodiscard]] BatchConfig default_table1_batch();

// ---------------------------------------------------------------------
// Multi-device sharded runs (core/device_group.h behind the harness).
// ---------------------------------------------------------------------

// One sharded harness run: every item becomes one LaunchSpec (built
// exactly like its run_bench solo row) and each launch's point range is
// sharded across `devices` simulated devices with pipelined transfer
// overlap. Kernels run one after another (the group serves one launch at
// a time), so the pool's makespan is the summed per-kernel makespan.
struct ShardingConfig {
  std::vector<BenchConfig> items;
  // The composition every launch simulates; auto_select resolves once per
  // launch on the baseline run and the shards reuse that decision.
  Variant variant = Variant::kAutoSelect;
  BatchPolicy policy = BatchPolicy::kWorkStealing;
  std::size_t devices = 2;
  std::size_t chunk_points = 1024;  // pipelined upload granularity
  std::size_t grid_limit = 0;       // Figure 9b strip-mining, per device
  DeviceConfig device;              // each device of the homogeneous group
  TransferModel transfer;
  // Per-device Chrome tracks "dev<d>/<kernel>" (copy + compute overlap).
  obs::ChromeTraceCollector* chrome = nullptr;
};

// Build every item's kernel and shard it across the device group. The
// merged results are verified byte-identical to the single-device
// baseline inside run_sharded; a divergence (or a baseline failure)
// reports through the kernel's error field. Throws std::invalid_argument
// on an empty item list.
[[nodiscard]] ShardingRunSummary run_sharding(const ShardingConfig& config);

// Figure 10/11 series: CPU-performance-vs-GPU ratio for each thread count,
// normalized so GPU == 1 (values above 1 mean the CPU is faster).
struct CpuSweepPoint {
  int threads;
  double cpu_ms;         // modelled from measured t1
  double ratio_vs_gpu;   // gpu_ms / cpu_ms
};
std::vector<CpuSweepPoint> cpu_sweep(const BenchRow& row, bool lockstep,
                                     const std::vector<int>& thread_counts);

}  // namespace tt
