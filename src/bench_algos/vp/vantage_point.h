// Nearest-neighbor search over a vantage-point tree (Yianilos; the paper's
// VP benchmark). Guided, two call sets (inside-first when the query falls
// within the vantage radius, outside-first otherwise). The subtree
// admissibility bound |d(q,vp) - mu| is computed at the parent from the
// query's own vantage distance: a per-lane rope-stack argument.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/ir/traversal_ir.h"
#include "core/traversal_kernel.h"
#include "simt/address_space.h"
#include "spatial/vptree.h"

namespace tt {

struct VpResult {
  float best_d = std::numeric_limits<float>::infinity();
  friend bool operator==(const VpResult&, const VpResult&) = default;
};

class VpKernel {
 public:
  struct State {
    float q[kMaxDim];
    float best_d = std::numeric_limits<float>::infinity();  // tau
    float last_d = 0;  // d(q, vp) computed by the latest visit
    std::uint32_t self = 0;
  };
  using Result = VpResult;
  using UArg = Empty;
  struct LArg {
    float min_d = 0;  // lower bound on d(q, x) for x in this subtree
  };
  static constexpr int kFanout = 2;
  static constexpr const char* kName = "vantage_point";
  static constexpr int kNumCallSets = 2;
  static constexpr bool kCallSetsEquivalent = true;

  VpKernel(const VpTree& tree, const PointSet& queries,
           GpuAddressSpace& space);

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_points() const { return queries_->size(); }
  [[nodiscard]] UArg root_uarg() const { return {}; }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] int stack_bound() const { return stack_bound_; }

  template <class Mem>
  State init(std::uint32_t pid, Mem& mem, int lane) const {
    const std::size_t n = queries_->size();
    State s;
    for (int d = 0; d < dim_; ++d) {
      mem.lane_load(lane, queries_buf_,
                    static_cast<std::uint64_t>(d) * n + pid);
      s.q[d] = queries_->at(pid, d);
    }
    s.self = pid;
    return s;
  }

  template <class Mem>
  bool visit(NodeId n, const UArg&, const LArg& la, State& st, Mem& mem,
             int lane) const {
    if (la.min_d > st.best_d) return false;
    mem.lane_load(lane, nodes0_, static_cast<std::uint64_t>(n));
    const float* c = &tree_->coords[static_cast<std::size_t>(n) * dim_];
    double d2 = 0;
    for (int d = 0; d < dim_; ++d) {
      double delta = static_cast<double>(c[d]) - st.q[d];
      d2 += delta * delta;
    }
    float dist = static_cast<float>(std::sqrt(d2));
    st.last_d = dist;
    if (static_cast<std::uint32_t>(tree_->point_id[n]) != st.self &&
        dist < st.best_d)
      st.best_d = dist;
    return !tree_->topo.is_leaf(n);
  }

  [[nodiscard]] int choose_callset(NodeId n, const State& st) const {
    return st.last_d < tree_->mu[n] ? 0 : 1;  // 0: inside-first
  }

  template <class Mem>
  int children(NodeId n, const UArg&, int callset, const State& st,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    mem.lane_load(lane, nodes1_, static_cast<std::uint64_t>(n));
    float mu = tree_->mu[n];
    float inside_bound = st.last_d > mu ? st.last_d - mu : 0.f;
    float outside_bound = mu > st.last_d ? mu - st.last_d : 0.f;
    NodeId inside = tree_->topo.child(n, VpTree::kInside);
    NodeId outside = tree_->topo.child(n, VpTree::kOutside);
    NodeId first = callset == 0 ? inside : outside;
    NodeId second = callset == 0 ? outside : inside;
    float first_bound = callset == 0 ? inside_bound : outside_bound;
    float second_bound = callset == 0 ? outside_bound : inside_bound;
    int cnt = 0;
    if (first != kNullNode) {
      out[cnt].node = first;
      out[cnt].larg = {first_bound};
      ++cnt;
    }
    if (second != kNullNode) {
      out[cnt].node = second;
      out[cnt].larg = {second_bound};
      ++cnt;
    }
    return cnt;
  }

  [[nodiscard]] Result finish(const State& st) const {
    return {st.best_d};
  }

 private:
  const VpTree* tree_;
  const PointSet* queries_;
  int dim_;
  int stack_bound_;
  BufferId nodes0_, nodes1_, queries_buf_;
};

std::vector<VpResult> vp_brute_force(const PointSet& data,
                                     const PointSet& queries);

ir::TraversalFunc vp_ir();

}  // namespace tt
