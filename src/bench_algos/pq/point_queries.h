// Unguided point-query kernels over the bucket kd-tree: rope-walk k-NN
// and rope-walk NN. The classic guided formulations (knn/knn.h's
// split-plane call ordering, nn/nearest_neighbor.h's per-lane distance
// bound) are ineligible for both static ropes and fusion -- ropes encode
// one canonical child order and fusion needs state-free child
// enumeration. These two reformulate the same queries as unguided
// traversals of the canonical child order with box-distance pruning
// (exactly PointCorrelation's shape), which makes them
// StacklessCompatibleKernels and therefore fusable by
// core/kernel_compose.h: fused k-NN + NN over one kd-tree is the
// ROADMAP's "one rope walk with a merged truncation condition".
//
// Determinism contract: results are independent of traversal order.
// Candidates are ranked by the lexicographic (d2, id) total order;
// subtrees are pruned only when the box distance *strictly* exceeds the
// current worst kept distance, so a tied candidate with a smaller id is
// never lost. The kept set is then exactly the k minima of the full
// candidate set under (d2, id) -- byte-identical across every variant,
// device count and fused/sequential execution. finish() emits the kept
// set sorted by (d2, id) into a padding-free Result.
//
// Both kernels register their tree/query records through ensure_buffer
// under shared "pq_*" names, so two kernels over the same tree and point
// set address the SAME simulated buffers -- the precondition for the
// fused kernel's shared-load elision (simt/warp_memory.h).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/static_ropes.h"
#include "core/traversal_kernel.h"
#include "simt/address_space.h"
#include "spatial/kdtree.h"
#include "spatial/point_set.h"

namespace tt {

inline constexpr int kPqMaxK = 16;

// Padding-free (all 4-byte members): fused Results are memcmp'd.
struct RopeKnnResult {
  float kth_d2 = 0;               // largest kept squared distance
  std::int32_t found = 0;         // kept neighbors (k, or fewer points)
  std::int32_t ids[kPqMaxK] = {}; // kept ids sorted by (d2, id); 0-padded
  friend bool operator==(const RopeKnnResult&, const RopeKnnResult&) = default;
};

struct RopeNnResult {
  float best_d2 = 0;
  std::int32_t id = -1;
  friend bool operator==(const RopeNnResult&, const RopeNnResult&) = default;
};

// Self-query k-nearest-neighbors (excluding the query point itself) over
// a bucket kd-tree, as an unguided fanout-2 traversal.
class RopeKnnKernel {
 public:
  struct State {
    float q[kMaxDim];
    double d2[kPqMaxK];
    std::int32_t id[kPqMaxK];
    std::int32_t found = 0;
    std::uint32_t self = 0;
  };
  using Result = RopeKnnResult;
  using UArg = Empty;
  using LArg = Empty;
  static constexpr int kFanout = 2;
  static constexpr const char* kName = "rope_knn";
  static constexpr int kNumCallSets = 1;
  static constexpr bool kCallSetsEquivalent = true;

  // `points` is both the query set and the set the tree was built over
  // (self-queries, like the paper's PC workload). 1 <= k <= kPqMaxK.
  RopeKnnKernel(const KdTree& tree, const PointSet& points, int k,
                GpuAddressSpace& space);

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_points() const { return points_->size(); }
  [[nodiscard]] UArg root_uarg() const { return {}; }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] int stack_bound() const { return stack_bound_; }
  [[nodiscard]] int k() const { return k_; }

  template <class Mem>
  State init(std::uint32_t pid, Mem& mem, int lane) const {
    const std::size_t n = points_->size();
    State s{};
    for (int d = 0; d < dim_; ++d) {
      mem.lane_load(lane, queries_,
                    static_cast<std::uint64_t>(d) * n + pid);
      s.q[d] = points_->at(pid, d);
    }
    s.self = pid;
    return s;
  }

  template <class Mem>
  bool visit(NodeId n, const UArg&, const LArg&, State& st, Mem& mem,
             int lane) const {
    mem.lane_load(lane, nodes0_, static_cast<std::uint64_t>(n));
    const double box_d2 = tree_->box_sq_dist(n, st.q);
    // Strict >: a box at exactly the worst distance may still hold a
    // tied candidate with a smaller id.
    if (st.found == k_ && box_d2 > worst_d2(st)) return false;
    if (!tree_->topo.is_leaf(n)) return true;
    for (std::int32_t i = tree_->leaf_begin[n]; i < tree_->leaf_end[n]; ++i) {
      mem.lane_load(lane, leafpts_, static_cast<std::uint64_t>(i));
      const std::uint32_t p = tree_->data_perm[static_cast<std::size_t>(i)];
      if (p == st.self) continue;
      double d2 = 0;
      for (int d = 0; d < dim_; ++d) {
        const double delta =
            static_cast<double>(points_->at(p, d)) - st.q[d];
        d2 += delta * delta;
      }
      offer(st, d2, static_cast<std::int32_t>(p));
    }
    return false;
  }

  [[nodiscard]] int choose_callset(NodeId, const State&) const { return 0; }

  template <class Mem>
  int children(NodeId n, const UArg&, int /*callset*/, const State&,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    mem.lane_load(lane, nodes1_, static_cast<std::uint64_t>(n));
    int cnt = 0;
    for (int c = 0; c < 2; ++c) {
      NodeId ch = tree_->topo.child(n, c);
      if (ch == kNullNode) continue;
      out[cnt].node = ch;
      ++cnt;
    }
    return cnt;
  }

  [[nodiscard]] Result finish(const State& st) const;

  [[nodiscard]] UArg uarg_at(NodeId) const { return {}; }
  [[nodiscard]] const StaticRopes& ropes() const { return ropes_; }
  [[nodiscard]] std::vector<std::int32_t> node_buffers() const {
    return {nodes0_, nodes1_};
  }

 private:
  // Index of the lexicographically-largest kept (d2, id) pair.
  [[nodiscard]] static int worst_index(const State& st) {
    int w = 0;
    for (int i = 1; i < st.found; ++i)
      if (st.d2[i] > st.d2[w] ||
          (st.d2[i] == st.d2[w] && st.id[i] > st.id[w]))
        w = i;
    return w;
  }
  [[nodiscard]] static double worst_d2(const State& st) {
    return st.d2[worst_index(st)];
  }
  // Keep the k minima under (d2, id): order of offers cannot change the
  // final set.
  void offer(State& st, double d2, std::int32_t id) const {
    if (st.found < k_) {
      st.d2[st.found] = d2;
      st.id[st.found] = id;
      ++st.found;
      return;
    }
    const int w = worst_index(st);
    if (d2 < st.d2[w] || (d2 == st.d2[w] && id < st.id[w])) {
      st.d2[w] = d2;
      st.id[w] = id;
    }
  }

  const KdTree* tree_;
  const PointSet* points_;
  int dim_;
  int k_;
  int stack_bound_;
  StaticRopes ropes_;
  BufferId nodes0_, nodes1_, leafpts_, queries_;
};

// Self-query nearest neighbor (excluding self) over the same bucket
// kd-tree -- the k = 1 shape with a scalar best instead of a kept set.
// Its truncation condition is tighter than k-NN's, which is what makes
// the fused pair exercise the merged-truncation rule.
class RopeNnKernel {
 public:
  struct State {
    float q[kMaxDim];
    double best_d2;
    std::int32_t best_id;
    std::uint32_t self = 0;
  };
  using Result = RopeNnResult;
  using UArg = Empty;
  using LArg = Empty;
  static constexpr int kFanout = 2;
  static constexpr const char* kName = "rope_nn";
  static constexpr int kNumCallSets = 1;
  static constexpr bool kCallSetsEquivalent = true;

  RopeNnKernel(const KdTree& tree, const PointSet& points,
               GpuAddressSpace& space);

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_points() const { return points_->size(); }
  [[nodiscard]] UArg root_uarg() const { return {}; }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] int stack_bound() const { return stack_bound_; }

  template <class Mem>
  State init(std::uint32_t pid, Mem& mem, int lane) const {
    const std::size_t n = points_->size();
    State s{};
    for (int d = 0; d < dim_; ++d) {
      mem.lane_load(lane, queries_,
                    static_cast<std::uint64_t>(d) * n + pid);
      s.q[d] = points_->at(pid, d);
    }
    s.best_d2 = std::numeric_limits<double>::infinity();
    s.best_id = -1;
    s.self = pid;
    return s;
  }

  template <class Mem>
  bool visit(NodeId n, const UArg&, const LArg&, State& st, Mem& mem,
             int lane) const {
    mem.lane_load(lane, nodes0_, static_cast<std::uint64_t>(n));
    const double box_d2 = tree_->box_sq_dist(n, st.q);
    if (box_d2 > st.best_d2) return false;  // strict: keep id tie-break
    if (!tree_->topo.is_leaf(n)) return true;
    for (std::int32_t i = tree_->leaf_begin[n]; i < tree_->leaf_end[n]; ++i) {
      mem.lane_load(lane, leafpts_, static_cast<std::uint64_t>(i));
      const std::uint32_t p = tree_->data_perm[static_cast<std::size_t>(i)];
      if (p == st.self) continue;
      double d2 = 0;
      for (int d = 0; d < dim_; ++d) {
        const double delta =
            static_cast<double>(points_->at(p, d)) - st.q[d];
        d2 += delta * delta;
      }
      const std::int32_t id = static_cast<std::int32_t>(p);
      if (d2 < st.best_d2 || (d2 == st.best_d2 && id < st.best_id)) {
        st.best_d2 = d2;
        st.best_id = id;
      }
    }
    return false;
  }

  [[nodiscard]] int choose_callset(NodeId, const State&) const { return 0; }

  template <class Mem>
  int children(NodeId n, const UArg&, int /*callset*/, const State&,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    mem.lane_load(lane, nodes1_, static_cast<std::uint64_t>(n));
    int cnt = 0;
    for (int c = 0; c < 2; ++c) {
      NodeId ch = tree_->topo.child(n, c);
      if (ch == kNullNode) continue;
      out[cnt].node = ch;
      ++cnt;
    }
    return cnt;
  }

  [[nodiscard]] Result finish(const State& st) const {
    Result r;
    r.best_d2 = static_cast<float>(st.best_d2);
    r.id = st.best_id;
    return r;
  }

  [[nodiscard]] UArg uarg_at(NodeId) const { return {}; }
  [[nodiscard]] const StaticRopes& ropes() const { return ropes_; }
  [[nodiscard]] std::vector<std::int32_t> node_buffers() const {
    return {nodes0_, nodes1_};
  }

 private:
  const KdTree* tree_;
  const PointSet* points_;
  int dim_;
  int stack_bound_;
  StaticRopes ropes_;
  BufferId nodes0_, nodes1_, leafpts_, queries_;
};

// Brute-force references replicating the kernels' arithmetic bit for bit
// (float query gather, per-dimension double deltas, (d2, id) ranking).
std::vector<RopeKnnResult> pq_knn_brute_force(const PointSet& points, int k);
std::vector<RopeNnResult> pq_nn_brute_force(const PointSet& points);

}  // namespace tt
