#include "bench_algos/pq/point_queries.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/rope_stack.h"

namespace tt {
namespace {

struct PqBuffers {
  BufferId nodes0, nodes1, leafpts, queries;
};

// Shared "pq_*" names: a second kernel over the same tree and point set
// resolves to the SAME simulated buffers (ensure_buffer reuses on
// matching name/element size), which is what lets the fused kernel's
// duplicate node loads collapse (shared-load elision).
PqBuffers ensure_pq_buffers(const KdTree& tree, const PointSet& points,
                            GpuAddressSpace& space) {
  PqBuffers b;
  const auto w = static_cast<std::uint32_t>(tree.dim) * 4;
  b.nodes0 = space.ensure_buffer(
      "pq_nodes0", static_cast<std::uint64_t>(2) * w,
      static_cast<std::uint64_t>(tree.topo.n_nodes),
      {{"bbox_min", 0, w}, {"bbox_max", w, w}});
  b.nodes1 = space.ensure_buffer(
      "pq_nodes1", 16, static_cast<std::uint64_t>(tree.topo.n_nodes),
      {{"children", 0, 8}, {"leaf_range", 8, 8}});
  b.leafpts = space.ensure_buffer(
      "pq_leaf_points", static_cast<std::uint64_t>(tree.dim) * 4,
      tree.data_perm.size());
  b.queries = space.ensure_buffer(
      "pq_queries", 4,
      static_cast<std::uint64_t>(tree.dim) * points.size());
  return b;
}

void check_pq_inputs(const char* who, const KdTree& tree,
                     const PointSet& points) {
  if (points.dim() != tree.dim)
    throw std::invalid_argument(std::string(who) + ": dim mismatch");
  if (tree.data_perm.size() != points.size())
    throw std::invalid_argument(
        std::string(who) +
        ": tree was not built over the query point set (self-queries)");
}

}  // namespace

RopeKnnKernel::RopeKnnKernel(const KdTree& tree, const PointSet& points,
                             int k, GpuAddressSpace& space)
    : tree_(&tree), points_(&points), dim_(tree.dim), k_(k) {
  check_pq_inputs("RopeKnnKernel", tree, points);
  if (k < 1 || k > kPqMaxK)
    throw std::invalid_argument("RopeKnnKernel: k must be in [1, " +
                                std::to_string(kPqMaxK) + "]");
  stack_bound_ = rope_stack_bound(tree.topo.max_depth(), 2);
  ropes_ = try_install_ropes(tree.topo);
  const PqBuffers b = ensure_pq_buffers(tree, points, space);
  nodes0_ = b.nodes0;
  nodes1_ = b.nodes1;
  leafpts_ = b.leafpts;
  queries_ = b.queries;
}

RopeKnnKernel::Result RopeKnnKernel::finish(const State& st) const {
  std::array<std::pair<double, std::int32_t>, kPqMaxK> kept;
  for (int i = 0; i < st.found; ++i) kept[i] = {st.d2[i], st.id[i]};
  std::sort(kept.begin(), kept.begin() + st.found);
  Result r{};
  r.found = st.found;
  for (int i = 0; i < st.found; ++i) r.ids[i] = kept[i].second;
  r.kth_d2 = st.found > 0
                 ? static_cast<float>(kept[st.found - 1].first)
                 : std::numeric_limits<float>::infinity();
  return r;
}

RopeNnKernel::RopeNnKernel(const KdTree& tree, const PointSet& points,
                           GpuAddressSpace& space)
    : tree_(&tree), points_(&points), dim_(tree.dim) {
  check_pq_inputs("RopeNnKernel", tree, points);
  stack_bound_ = rope_stack_bound(tree.topo.max_depth(), 2);
  ropes_ = try_install_ropes(tree.topo);
  const PqBuffers b = ensure_pq_buffers(tree, points, space);
  nodes0_ = b.nodes0;
  nodes1_ = b.nodes1;
  leafpts_ = b.leafpts;
  queries_ = b.queries;
}

std::vector<RopeKnnResult> pq_knn_brute_force(const PointSet& points, int k) {
  const std::size_t n = points.size();
  const int dim = points.dim();
  std::vector<RopeKnnResult> out(n);
  float q[kMaxDim];
  std::vector<std::pair<double, std::int32_t>> cand;
  for (std::size_t i = 0; i < n; ++i) {
    points.gather(i, q);
    cand.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double d2 = 0;
      for (int d = 0; d < dim; ++d) {
        const double delta = static_cast<double>(points.at(j, d)) - q[d];
        d2 += delta * delta;
      }
      cand.emplace_back(d2, static_cast<std::int32_t>(j));
    }
    std::sort(cand.begin(), cand.end());
    const int found =
        static_cast<int>(std::min<std::size_t>(cand.size(), k));
    RopeKnnResult r{};
    r.found = found;
    for (int m = 0; m < found; ++m) r.ids[m] = cand[m].second;
    r.kth_d2 = found > 0 ? static_cast<float>(cand[found - 1].first)
                         : std::numeric_limits<float>::infinity();
    out[i] = r;
  }
  return out;
}

std::vector<RopeNnResult> pq_nn_brute_force(const PointSet& points) {
  const std::size_t n = points.size();
  const int dim = points.dim();
  std::vector<RopeNnResult> out(n);
  float q[kMaxDim];
  for (std::size_t i = 0; i < n; ++i) {
    points.gather(i, q);
    double best = std::numeric_limits<double>::infinity();
    std::int32_t best_id = -1;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double d2 = 0;
      for (int d = 0; d < dim; ++d) {
        const double delta = static_cast<double>(points.at(j, d)) - q[d];
        d2 += delta * delta;
      }
      const std::int32_t id = static_cast<std::int32_t>(j);
      if (d2 < best || (d2 == best && id < best_id)) {
        best = d2;
        best_id = id;
      }
    }
    out[i].best_d2 = static_cast<float>(best);
    out[i].id = best_id;
  }
  return out;
}

}  // namespace tt
