// Two-point correlation (paper section 6.1.2): for every point, count the
// points within radius r by traversing a bucket kd-tree. Unguided, single
// call set, fanout 2 -- the direct instantiation of Figure 4.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ir/traversal_ir.h"
#include "core/static_ropes.h"
#include "core/traversal_kernel.h"
#include "simt/address_space.h"
#include "spatial/kdtree.h"

namespace tt {

// Node-record storage layout (the paper's section-5 usage-based struct
// splitting, made selectable so bench/memprof can measure the decision
// instead of asserting it):
//   kSplit       -- nodes0 (traversal-hot bbox) and nodes1 (children +
//                   leaf range) as separate arrays; the paper's choice and
//                   the default everywhere else.
//   kInterleaved -- one combined record per node: every visit drags the
//                   cold payload bytes through the memory system alongside
//                   the bbox it actually tests.
enum class NodeLayout { kSplit, kInterleaved };

class PointCorrelationKernel {
 public:
  struct State {
    float q[kMaxDim];
    std::uint32_t count = 0;
  };
  using Result = std::uint32_t;  // neighbors within r (excluding self)
  using UArg = Empty;
  using LArg = Empty;
  static constexpr int kFanout = 2;
  static constexpr const char* kName = "point_correlation";
  static constexpr int kNumCallSets = 1;
  static constexpr bool kCallSetsEquivalent = true;

  PointCorrelationKernel(const KdTree& tree, const PointSet& queries,
                         float radius, GpuAddressSpace& space,
                         NodeLayout layout = NodeLayout::kSplit);

  [[nodiscard]] NodeId root() const { return 0; }
  [[nodiscard]] std::size_t num_points() const { return queries_->size(); }
  [[nodiscard]] UArg root_uarg() const { return {}; }
  [[nodiscard]] LArg root_larg() const { return {}; }
  [[nodiscard]] int stack_bound() const { return stack_bound_; }

  template <class Mem>
  State init(std::uint32_t pid, Mem& mem, int lane) const {
    const std::size_t n = queries_->size();
    State s;
    for (int d = 0; d < dim_; ++d) {
      mem.lane_load(lane, queries_buf_,
                    static_cast<std::uint64_t>(d) * n + pid);
      s.q[d] = queries_->at(pid, d);
    }
    return s;
  }

  template <class Mem>
  bool visit(NodeId n, const UArg&, const LArg&, State& st, Mem& mem,
             int lane) const {
    mem.lane_load(lane, nodes0_, static_cast<std::uint64_t>(n));
    if (tree_->box_sq_dist(n, st.q) > r2_) return false;  // can_correlate
    if (!tree_->topo.is_leaf(n)) return true;
    // Leaf: scan the bucket; each stored point is one more load of the
    // permuted leaf-point array (contiguous per leaf).
    for (std::int32_t i = tree_->leaf_begin[n]; i < tree_->leaf_end[n]; ++i) {
      mem.lane_load(lane, leafpts_, static_cast<std::uint64_t>(i));
      std::uint32_t p = tree_->data_perm[static_cast<std::size_t>(i)];
      double d2 = 0;
      for (int d = 0; d < dim_; ++d) {
        double delta = static_cast<double>(data_->at(p, d)) - st.q[d];
        d2 += delta * delta;
      }
      if (d2 <= r2_) ++st.count;
    }
    return false;
  }

  [[nodiscard]] int choose_callset(NodeId, const State&) const { return 0; }

  template <class Mem>
  int children(NodeId n, const UArg&, int /*callset*/, const State&,
               Child<UArg, LArg>* out, Mem& mem, int lane) const {
    mem.lane_load(lane, nodes1_, static_cast<std::uint64_t>(n));
    int cnt = 0;
    for (int k = 0; k < 2; ++k) {
      NodeId c = tree_->topo.child(n, k);
      if (c == kNullNode) continue;
      out[cnt].node = c;
      ++cnt;
    }
    return cnt;
  }

  [[nodiscard]] Result finish(const State& st) const {
    // The query point is a member of the data set and always matches
    // itself; report "other points in radius" like the paper.
    return st.count > 0 ? st.count - 1 : 0;
  }

  // Static-ropes baseline support: PC carries no traversal arguments.
  [[nodiscard]] UArg uarg_at(NodeId) const { return {}; }

  // Stackless-variant support (StacklessCompatibleKernel): the ropes
  // installed over the kd-tree at construction, and the node buffers the
  // shared-memory top-of-tree cache may front.
  [[nodiscard]] const StaticRopes& ropes() const { return ropes_; }
  [[nodiscard]] std::vector<std::int32_t> node_buffers() const {
    if (nodes0_ == nodes1_) return {nodes0_};  // kInterleaved: one record
    return {nodes0_, nodes1_};
  }

  [[nodiscard]] float radius() const { return radius_; }

 private:
  const KdTree* tree_;
  const PointSet* queries_;
  const PointSet* data_;
  int dim_;
  float radius_, r2_;
  int stack_bound_;
  StaticRopes ropes_;
  BufferId nodes0_, nodes1_, leafpts_, queries_buf_;
};

// Brute-force reference.
std::vector<std::uint32_t> pc_brute_force(const PointSet& data,
                                          const PointSet& queries,
                                          float radius);

// Pick a radius giving roughly `target_mean_neighbors` matches per query
// (sampled estimate), so scaled-down inputs keep paper-like truncation.
float pc_pick_radius(const PointSet& data, double target_mean_neighbors,
                     std::uint64_t seed);

// IR description (Figure 4): one call set {left, right}.
ir::TraversalFunc pc_ir();

}  // namespace tt
