#include "bench_algos/pc/point_correlation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/rope_stack.h"
#include "util/rng.h"

namespace tt {

PointCorrelationKernel::PointCorrelationKernel(const KdTree& tree,
                                               const PointSet& queries,
                                               float radius,
                                               GpuAddressSpace& space,
                                               NodeLayout layout)
    : tree_(&tree),
      queries_(&queries),
      data_(nullptr),
      dim_(tree.dim),
      radius_(radius),
      r2_(radius * radius) {
  if (queries.dim() != tree.dim)
    throw std::invalid_argument("PointCorrelationKernel: dim mismatch");
  if (radius < 0)
    throw std::invalid_argument("PointCorrelationKernel: negative radius");
  // The tree's leaf buckets index into the set it was built over; for the
  // paper's self-correlation workload that is the query set itself.
  data_ = &queries;
  stack_bound_ = rope_stack_bound(tree.topo.max_depth(), 2);
  ropes_ = try_install_ropes(tree.topo);
  // nodes0: bounding box (2 * dim floats); nodes1: children + leaf range.
  // Field metadata drives the per-field traffic attribution
  // (simt/memory_attr.h); kInterleaved registers one combined record so
  // bench/memprof can measure the section-5 split decision.
  const auto w = static_cast<std::uint32_t>(dim_) * 4;
  const auto n_nodes = static_cast<std::uint64_t>(tree.topo.n_nodes);
  if (layout == NodeLayout::kInterleaved) {
    nodes0_ = space.register_buffer(
        "pc_nodes", std::uint64_t{2} * w + 16, n_nodes,
        {{"bbox_min", 0, w},
         {"bbox_max", w, w},
         {"children", 2 * w, 8},
         {"leaf_range", 2 * w + 8, 8}});
    nodes1_ = nodes0_;
  } else {
    nodes0_ = space.register_buffer(
        "pc_nodes0", std::uint64_t{2} * w, n_nodes,
        {{"bbox_min", 0, w}, {"bbox_max", w, w}});
    nodes1_ = space.register_buffer(
        "pc_nodes1", 16, n_nodes,
        {{"children", 0, 8}, {"leaf_range", 8, 8}});
  }
  leafpts_ = space.register_buffer(
      "pc_leaf_points", static_cast<std::uint64_t>(dim_) * 4,
      tree.data_perm.size());
  queries_buf_ = space.register_buffer("pc_queries", 4,
                                       static_cast<std::uint64_t>(dim_) *
                                           queries.size());
}

std::vector<std::uint32_t> pc_brute_force(const PointSet& data,
                                          const PointSet& queries,
                                          float radius) {
  const double r2 = static_cast<double>(radius) * radius;
  std::vector<std::uint32_t> out(queries.size(), 0);
  float q[kMaxDim];
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries.gather(i, q);
    std::uint32_t c = 0;
    for (std::size_t j = 0; j < data.size(); ++j)
      if (data.sq_dist(j, q) <= r2) ++c;
    out[i] = c > 0 ? c - 1 : 0;
  }
  return out;
}

float pc_pick_radius(const PointSet& data, double target_mean_neighbors,
                     std::uint64_t seed) {
  if (data.size() < 2) return 0.f;
  // Sample pairwise distances; pick the quantile whose expected match count
  // equals the target: P(d <= r) ~= target / n.
  Pcg32 rng(seed, 13);
  constexpr std::size_t kSamples = 4096;
  std::vector<double> d2s;
  d2s.reserve(kSamples);
  float q[kMaxDim];
  for (std::size_t s = 0; s < kSamples; ++s) {
    auto a = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint32_t>(data.size())));
    auto b = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint32_t>(data.size())));
    if (a == b) continue;
    data.gather(a, q);
    d2s.push_back(data.sq_dist(b, q));
  }
  std::sort(d2s.begin(), d2s.end());
  double frac = std::min(
      1.0, target_mean_neighbors / static_cast<double>(data.size()));
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(d2s.size()));
  idx = std::min(idx, d2s.size() - 1);
  return static_cast<float>(std::sqrt(d2s[idx]));
}

ir::TraversalFunc pc_ir() {
  // Figure 4: truncation guard, leaf update, else recurse(left), recurse(right).
  ir::TraversalFunc f;
  f.name = "point_correlation";
  f.blocks.resize(5);
  // block 0: if (!can_correlate) return;  (block 4 is the bare return)
  f.blocks[0].term = ir::Block::Term::kBranch;
  f.blocks[0].cond = 0;  // "cannot correlate"
  f.blocks[0].cond_point_dependent = true;
  f.blocks[0].succ_true = 4;   // truncate: plain return
  f.blocks[0].succ_false = 1;  // continue
  // block 1: if (is_leaf) { update; return } else -> block 2
  f.blocks[1].term = ir::Block::Term::kBranch;
  f.blocks[1].cond = 1;  // "is leaf"
  f.blocks[1].cond_point_dependent = false;
  f.blocks[1].succ_true = 3;  // leaf: update then return
  f.blocks[1].succ_false = 2;
  // block 2: recurse(left); recurse(right)
  for (int k = 0; k < 2; ++k) {
    ir::Stmt call;
    call.kind = ir::Stmt::Kind::kCall;
    call.id = k;
    call.child_slot = k;
    call.child_point_dependent = false;
    f.blocks[2].stmts.push_back(call);
  }
  f.blocks[2].term = ir::Block::Term::kReturn;
  // block 3: leaf update; return. block 4: bare return.
  ir::Stmt upd;
  upd.kind = ir::Stmt::Kind::kUpdate;
  upd.id = 0;
  f.blocks[3].stmts.push_back(upd);
  f.blocks[3].term = ir::Block::Term::kReturn;
  f.blocks[4].term = ir::Block::Term::kReturn;
  return f;
}

}  // namespace tt
