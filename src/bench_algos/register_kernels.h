// Registration of the benchmark kernels with core's KernelFactory
// (core/kernel_factory.h). The registry mechanics live in core; the
// builders -- which need the data generators, tree builders and kernel
// types -- live here, above tt_data. Call register_bench_kernels() once
// before KernelFactory::make; repeated calls are no-ops.
//
// Registered names:
//   bh, pc, knn, nn, vp         -- the five Table-1 kernels
//   rope_knn, rope_nn           -- unguided rope-walk point queries
//   fused_knn_nn                -- FusedKernel(rope_knn, rope_nn), one tree
//   fused_bh_step               -- FusedKernel of two BH timesteps over a
//                                  refit (not rebuilt) octree
#pragma once

#include <cstdint>
#include <vector>

#include "core/kernel_factory.h"
#include "spatial/point_set.h"

namespace tt {

void register_bench_kernels();

// The layout permutation KernelRequest::order names: morton_order /
// tree_order(leaf_size) / shuffled_order(seed ^ 0x5bd1e995). (Previously
// kernel_builder.h's helper; the builders and bench/selection_sweep's
// Morton gating both use it.)
[[nodiscard]] std::vector<std::uint32_t> order_permutation(
    const PointSet& pts, PointOrder order, int leaf_size, std::uint64_t seed);

}  // namespace tt
