#include "obs/json.h"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tt::obs {

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  assert(ec == std::errc());
  std::string s(buf, p);
  // Bare integers round-trip as doubles, but "1e+22"-style output needs no
  // fixup; only ensure integral values read back as numbers (they do).
  return s;
}

std::string json_number(std::uint64_t v) { return std::to_string(v); }
std::string json_number(std::int64_t v) { return std::to_string(v); }

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(&os), indent_(indent) {}

void JsonWriter::raw(const std::string& s) { (*os_) << s; }

void JsonWriter::comma_and_newline() {
  if (key_pending_) {  // value directly follows its key
    key_pending_ = false;
    return;
  }
  if (!first_) raw(",");
  if (depth_ > 0) {
    raw("\n");
    raw(std::string(static_cast<std::size_t>(depth_ * indent_), ' '));
  }
  first_ = false;
}

void JsonWriter::begin_object() {
  comma_and_newline();
  raw("{");
  ++depth_;
  first_ = true;
}

void JsonWriter::end_object() {
  --depth_;
  if (!first_) {
    raw("\n");
    raw(std::string(static_cast<std::size_t>(depth_ * indent_), ' '));
  }
  raw("}");
  first_ = false;
  if (depth_ == 0) raw("\n");
}

void JsonWriter::begin_array() {
  comma_and_newline();
  raw("[");
  ++depth_;
  first_ = true;
}

void JsonWriter::end_array() {
  --depth_;
  if (!first_) {
    raw("\n");
    raw(std::string(static_cast<std::size_t>(depth_ * indent_), ' '));
  }
  raw("]");
  first_ = false;
}

void JsonWriter::key(const std::string& k) {
  comma_and_newline();
  raw("\"" + json_escape(k) + "\": ");
  key_pending_ = true;
}

void JsonWriter::member(const std::string& k, const std::string& v) {
  key(k);
  comma_and_newline();
  raw("\"" + json_escape(v) + "\"");
}
void JsonWriter::member(const std::string& k, const char* v) {
  member(k, std::string(v));
}
void JsonWriter::member(const std::string& k, double v) {
  key(k);
  comma_and_newline();
  raw(json_number(v));
}
void JsonWriter::member(const std::string& k, std::uint64_t v) {
  key(k);
  comma_and_newline();
  raw(json_number(v));
}
void JsonWriter::member(const std::string& k, std::int64_t v) {
  key(k);
  comma_and_newline();
  raw(json_number(v));
}
void JsonWriter::member(const std::string& k, int v) {
  member(k, static_cast<std::int64_t>(v));
}
void JsonWriter::member(const std::string& k, bool v) {
  key(k);
  comma_and_newline();
  raw(v ? "true" : "false");
}
void JsonWriter::member_null(const std::string& k) {
  key(k);
  comma_and_newline();
  raw("null");
}
void JsonWriter::member_object(const std::string& k) {
  key(k);
  begin_object();
}
void JsonWriter::member_array(const std::string& k) {
  key(k);
  begin_array();
}

void JsonWriter::value(const std::string& v) {
  comma_and_newline();
  raw("\"" + json_escape(v) + "\"");
}
void JsonWriter::value(double v) {
  comma_and_newline();
  raw(json_number(v));
}
void JsonWriter::value(std::uint64_t v) {
  comma_and_newline();
  raw(json_number(v));
}
void JsonWriter::value(bool v) {
  comma_and_newline();
  raw(v ? "true" : "false");
}
void JsonWriter::value_null() {
  comma_and_newline();
  raw("null");
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

const JsonValue* JsonValue::find(const std::string& k) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [key, val] : obj_v)
    if (key == k) return val.get();
  return nullptr;
}

double JsonValue::as_number() const {
  if (type != Type::kNumber) throw std::runtime_error("json: not a number");
  return num_v;
}
std::uint64_t JsonValue::as_uint() const {
  double d = as_number();
  if (d < 0) throw std::runtime_error("json: negative where uint expected");
  return static_cast<std::uint64_t>(d);
}
const std::string& JsonValue::as_string() const {
  if (type != Type::kString) throw std::runtime_error("json: not a string");
  return str_v;
}
bool JsonValue::as_bool() const {
  if (type != Type::kBool) throw std::runtime_error("json: not a bool");
  return bool_v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValuePtr parse() {
    JsonValuePtr v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_lit(const char* lit) {
    std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValuePtr parse_value() {
    skip_ws();
    auto v = std::make_shared<JsonValue>();
    char c = peek();
    if (c == '{') {
      v->type = JsonValue::Type::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string_raw();
        skip_ws();
        expect(':');
        v->obj_v.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v->type = JsonValue::Type::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v->arr_v.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v->type = JsonValue::Type::kString;
      v->str_v = parse_string_raw();
      return v;
    }
    if (consume_lit("null")) return v;
    if (consume_lit("true")) {
      v->type = JsonValue::Type::kBool;
      v->bool_v = true;
      return v;
    }
    if (consume_lit("false")) {
      v->type = JsonValue::Type::kBool;
      return v;
    }
    // Number.
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    double num = 0;
    auto [p, ec] = std::from_chars(s_.data() + start, s_.data() + pos_, num);
    if (ec != std::errc() || p != s_.data() + pos_) fail("bad number");
    v->type = JsonValue::Type::kNumber;
    v->num_v = num;
    return v;
  }

  std::string parse_string_raw() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The writer only emits \u for control characters; decode the
          // basic-plane code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValuePtr json_parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace tt::obs
