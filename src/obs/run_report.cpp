#include "obs/run_report.h"

#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "obs/profile.h"
#include "simt/cost_model.h"

#ifndef TT_GIT_SHA
#define TT_GIT_SHA "unknown"
#endif

namespace tt::obs {

namespace {

void write_summary(JsonWriter& w, const Summary& s) {
  w.begin_object();
  w.member("count", static_cast<std::uint64_t>(s.count));
  w.member("mean", s.mean);
  w.member("stddev", s.stddev);
  w.member("min", s.min);
  w.member("max", s.max);
  w.end_object();
}

void write_kernel_stats(JsonWriter& w, const KernelStats& s) {
  w.begin_object();
  w.member("load_instructions", s.load_instructions);
  w.member("dram_transactions", s.dram_transactions);
  w.member("l2_hit_transactions", s.l2_hit_transactions);
  w.member("dram_bytes", s.dram_bytes);
  w.member("instr_cycles", s.instr_cycles);
  w.member("warp_steps", s.warp_steps);
  w.member("lane_visits", s.lane_visits);
  w.member("warp_pops", s.warp_pops);
  w.member("calls", s.calls);
  w.member("votes", s.votes);
  w.member("active_lane_sum", s.active_lane_sum);
  w.member("peak_stack_entries", s.peak_stack_entries);
  w.member("smem_cache_hits", s.smem_cache_hits);
  w.member("smem_cache_misses", s.smem_cache_misses);
  w.member("shared_loads_elided", s.shared_loads_elided);
  w.end_object();
}

void write_time(JsonWriter& w, const TimeBreakdown& t) {
  w.begin_object();
  w.member("compute_ms", t.compute_ms);
  w.member("memory_ms", t.memory_ms);
  w.member("total_ms", t.total_ms);
  w.member("memory_bound", t.memory_bound);
  w.member("imbalance", t.imbalance);
  w.end_object();
}

void write_device(JsonWriter& w, const DeviceConfig& d) {
  w.begin_object();
  w.member("warp_size", d.warp_size);
  w.member("num_sms", d.num_sms);
  w.member("resident_warps_per_sm", d.resident_warps_per_sm);
  w.member("clock_ghz", d.clock_ghz);
  w.member("mem_bandwidth_gbps", d.mem_bandwidth_gbps);
  w.member("transaction_bytes", d.transaction_bytes);
  w.member("l2_bytes", static_cast<std::uint64_t>(d.l2_bytes));
  w.member("l2_line_bytes", d.l2_line_bytes);
  w.member("l2_assoc", d.l2_assoc);
  w.member("model_l2", d.model_l2);
  w.member("shared_mem_per_sm", static_cast<std::uint64_t>(d.shared_mem_per_sm));
  w.member("c_visit", d.c_visit);
  w.member("c_step", d.c_step);
  w.member("c_call", d.c_call);
  w.member("c_vote", d.c_vote);
  w.member("c_smem", d.c_smem);
  w.member("c_l2hit", d.c_l2hit);
  w.member("stack_entry_bytes", d.stack_entry_bytes);
  w.member("frame_bytes", d.frame_bytes);
  w.end_object();
}

void write_config(JsonWriter& w, const BenchConfig& c) {
  w.begin_object();
  w.member("algo", algo_name(c.algo));
  w.member("input", input_name(c.input));
  w.member("n", static_cast<std::uint64_t>(c.n));
  w.member("sorted", c.sorted);
  w.member("seed", c.seed);
  w.member("dim", c.dim);
  w.member("k", c.k);
  w.member("pc_target_neighbors", c.pc_target_neighbors);
  w.member("bh_theta", static_cast<double>(c.bh_theta));
  w.member("bh_timesteps", c.bh_timesteps);
  w.member("leaf_size", c.leaf_size);
  w.end_object();
}

void write_latency(JsonWriter& w, const LatencySummary& s) {
  w.begin_object();
  w.member("count", static_cast<std::uint64_t>(s.count));
  w.member("mean", s.mean);
  w.member("p50", s.p50);
  w.member("p95", s.p95);
  w.member("p99", s.p99);
  w.member("max", s.max);
  w.end_object();
}

void write_selection(JsonWriter& w, const SelectionInfo& s) {
  w.begin_object();
  w.member("mean_similarity", s.mean_similarity);
  w.member("baseline_similarity", s.baseline_similarity);
  w.member("samples", s.samples);
  w.member("threshold", s.threshold);
  w.member("chosen", variant_name(s.chosen));
  w.member("sampling_cycles", s.sampling_cycles);
  w.end_object();
}

}  // namespace

MetricsRegistry metrics_for_row(const BenchRow& row) {
  MetricsRegistry reg;
  for (Variant v : kAllVariants) {
    const VariantResult& r = row.result(v);
    if (!r.ok()) continue;
    std::string prefix = std::string("gpu/") + variant_name(v) + "/";
    register_kernel_stats(reg, r.stats, prefix);
    register_time_breakdown(reg, r.time, prefix);
    if (r.selection) {
      reg.add_counter(prefix + "selection/samples", r.selection->samples);
      reg.add_counter(prefix + "selection/chose_lockstep",
                      r.selection->chosen == Variant::kAutoLockstep ? 1 : 0);
      reg.set_gauge(prefix + "selection/mean_similarity",
                    r.selection->mean_similarity);
      reg.set_gauge(prefix + "selection/baseline_similarity",
                    r.selection->baseline_similarity);
      reg.set_gauge(prefix + "selection/threshold", r.selection->threshold);
      reg.set_gauge(prefix + "selection/sampling_cycles",
                    r.selection->sampling_cycles);
    }
    if (r.profile) {
      for (std::size_t b = 0; b < kNumCycleBuckets; ++b)
        reg.set_gauge(prefix + "profile/" +
                          cycle_bucket_name(static_cast<CycleBucket>(b)) +
                          "_cycles",
                      r.profile->buckets[b]);
      reg.set_gauge(prefix + "profile/memory_cycles",
                    r.profile->memory_cycles);
    }
  }
  register_cpu_model(reg, row.cpu_model, "cpu/");
  register_transfer_model(reg, row.transfer, row.upload_bytes,
                          row.download_bytes, "transfer/", row.launches);
  return reg;
}

MetricsRegistry metrics_for_batch(const BatchResult& batch) {
  MetricsRegistry reg;
  for (const BatchKernelRow& k : batch.kernels) {
    if (!k.result.ok()) continue;
    std::string prefix = "gpu/batch/" + k.kernel_name + "/";
    register_kernel_stats(reg, k.result.stats, prefix);
    register_time_breakdown(reg, k.result.time, prefix);
    if (k.result.profile) {
      for (std::size_t b = 0; b < kNumCycleBuckets; ++b)
        reg.set_gauge(prefix + "profile/" +
                          cycle_bucket_name(static_cast<CycleBucket>(b)) +
                          "_cycles",
                      k.result.profile->buckets[b]);
      reg.set_gauge(prefix + "profile/memory_cycles",
                    k.result.profile->memory_cycles);
    }
  }
  reg.add_counter("gpu/batch/kernels",
                  static_cast<std::uint64_t>(batch.kernels.size()));
  reg.add_counter("gpu/batch/residency",
                  static_cast<std::uint64_t>(batch.residency));
  reg.add_counter("gpu/batch/total_chunks",
                  static_cast<std::uint64_t>(batch.total_chunks));
  reg.add_counter("gpu/batch/rounds",
                  static_cast<std::uint64_t>(batch.rounds));
  reg.add_counter("gpu/batch/switches",
                  static_cast<std::uint64_t>(batch.switches));
  reg.set_gauge("gpu/batch/transfer/amortized_ms",
                batch.amortized_transfer_ms());
  reg.set_gauge("gpu/batch/transfer/summed_solo_ms",
                batch.summed_solo_transfer_ms());
  return reg;
}

MetricsRegistry metrics_for_sharding(const ShardingRunSummary& sharding) {
  MetricsRegistry reg;
  reg.add_counter("sharding/devices",
                  static_cast<std::uint64_t>(sharding.devices));
  reg.add_counter("sharding/chunk_points",
                  static_cast<std::uint64_t>(sharding.chunk_points));
  reg.add_counter("sharding/kernels",
                  static_cast<std::uint64_t>(sharding.kernels.size()));
  reg.set_gauge("sharding/single_device_ms", sharding.single_device_ms());
  reg.set_gauge("sharding/makespan_ms", sharding.makespan_ms());
  reg.set_gauge("sharding/speedup", sharding.speedup());
  double copy_in = 0;
  double overlap = 0;
  for (const ShardingKernelReport& k : sharding.kernels) {
    for (const DeviceShard& d : k.devices) {
      copy_in += d.transfer.copy_in_ms;
      overlap += d.transfer.overlap_ms;
      std::string prefix =
          "sharding/" + k.kernel_name + "/dev" + std::to_string(d.device) + "/";
      reg.add_counter(prefix + "chunks", static_cast<std::uint64_t>(d.chunks));
      reg.add_counter(prefix + "steals", static_cast<std::uint64_t>(d.steals));
      reg.set_gauge(prefix + "busy_ms", d.busy_ms);
      reg.set_gauge(prefix + "overlap_ms", d.transfer.overlap_ms);
    }
  }
  reg.set_gauge("sharding/transfer/copy_in_ms", copy_in);
  reg.set_gauge("sharding/transfer/overlap_ms", overlap);
  reg.set_gauge("sharding/transfer/overlap_efficiency",
                copy_in > 0 ? overlap / copy_in : 0.0);
  return reg;
}

MetricsRegistry metrics_for_fusion(const FusionRunSummary& fusion) {
  MetricsRegistry reg;
  reg.add_counter("fusion/pairs",
                  static_cast<std::uint64_t>(fusion.pairs.size()));
  for (const FusionPairReport& p : fusion.pairs) {
    for (const FusionVariantRow& r : p.variants) {
      if (!r.ok) continue;
      std::string prefix =
          "fusion/" + p.fused_name + "/" + variant_name(r.variant) + "/";
      reg.add_counter(prefix + "fused_lane_visits", r.fused.lane_visits);
      reg.add_counter(prefix + "sequential_lane_visits",
                      r.sequential.lane_visits);
      reg.add_counter(prefix + "shared_loads_elided",
                      r.fused.shared_loads_elided);
      reg.add_counter(prefix + "byte_identical", r.byte_identical ? 1 : 0);
      reg.set_gauge(prefix + "visit_cycles_saved", r.visit_cycles_saved());
      reg.set_gauge(prefix + "mem_stall_cycles_saved",
                    r.mem_stall_cycles_saved());
      reg.set_gauge(prefix + "fused_total_ms", r.fused_time.total_ms);
      reg.set_gauge(prefix + "sequential_total_ms",
                    r.sequential_time.total_ms);
    }
  }
  return reg;
}

MetricsRegistry metrics_for_serving(const ServingRunSummary& serving) {
  MetricsRegistry reg;
  const ServingReport& r = serving.report;
  reg.add_counter("serving/devices",
                  static_cast<std::uint64_t>(r.devices));
  reg.add_counter("serving/queries/submitted",
                  static_cast<std::uint64_t>(r.submitted));
  reg.add_counter("serving/queries/completed",
                  static_cast<std::uint64_t>(r.completed));
  reg.add_counter("serving/queries/dropped",
                  static_cast<std::uint64_t>(r.dropped));
  reg.add_counter("serving/queries/failed",
                  static_cast<std::uint64_t>(r.failed));
  reg.add_counter("serving/drains",
                  static_cast<std::uint64_t>(r.drains.size()));
  reg.add_counter("serving/queue/depth_max",
                  static_cast<std::uint64_t>(r.queue_depth_max));
  reg.set_gauge("serving/queue/depth_mean", r.queue_depth.mean);
  reg.set_gauge("serving/rate_qps", serving.rate_qps);
  reg.set_gauge("serving/throughput_qps", r.throughput_qps());
  reg.set_gauge("serving/occupancy", r.occupancy());
  reg.set_gauge("serving/latency/mean_ms", r.latency.mean);
  reg.set_gauge("serving/latency/p50_ms", r.latency.p50);
  reg.set_gauge("serving/latency/p95_ms", r.latency.p95);
  reg.set_gauge("serving/latency/p99_ms", r.latency.p99);
  reg.set_gauge("serving/latency/max_ms", r.latency.max);
  reg.set_gauge("serving/queue_delay/mean_ms", r.queue_delay.mean);
  reg.set_gauge("serving/queue_delay/p50_ms", r.queue_delay.p50);
  reg.set_gauge("serving/queue_delay/p95_ms", r.queue_delay.p95);
  reg.set_gauge("serving/queue_delay/p99_ms", r.queue_delay.p99);
  reg.set_gauge("serving/transfer/amortized_ms", r.amortized_transfer_ms());
  reg.set_gauge("serving/transfer/summed_solo_ms",
                r.summed_solo_transfer_ms());
  return reg;
}

RunReport::RunReport(std::string generator)
    : generator_(std::move(generator)) {}

void RunReport::add_table(const std::string& name, const Table& table,
                          bool volatile_data) {
  tables_.push_back(NamedTable{name, table, volatile_data});
}

void RunReport::write(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.member("schema", kRunReportSchema);
  w.member("generator", generator_);
  w.member("git_sha", TT_GIT_SHA);
  if (seed_) w.member("seed", *seed_);
  w.member("include_volatile", include_volatile_);
  if (device_) {
    w.key("device");
    write_device(w, *device_);
  }

  w.member_array("rows");
  for (const BenchRow& row : rows_) {
    w.begin_object();
    w.key("config");
    write_config(w, row.config);

    w.member_object("variants");
    for (Variant v : kAllVariants) {
      const VariantResult& r = row.result(v);
      w.member_object(variant_name(v));
      w.member("ok", r.ok());
      if (!r.ok()) w.member("error", r.error);
      w.member("time_ms", r.time_ms);
      w.member("avg_nodes", r.avg_nodes);
      w.key("stats");
      write_kernel_stats(w, r.stats);
      w.key("time");
      write_time(w, r.time);
      if (r.selection) {
        w.key("selection");
        write_selection(w, *r.selection);
      }
      if (r.profile) {
        w.key("profile");
        write_profile_json(w, *r.profile);
      }
      if (include_memory_ && !r.stats.memory.empty()) {
        w.key("memory");
        write_memory_json(w, r.stats.memory);
      }
      if (include_volatile_) w.member("sim_wall_ms", r.sim_wall_ms);
      w.end_object();
    }
    w.end_object();  // variants

    w.member_object("cpu");
    w.member("visits", row.cpu_visits);
    w.member("model_beta", row.cpu_model.beta);
    w.member("model_speedup_at_32", row.cpu_model.speedup(32));
    if (include_volatile_) {
      // Environment-dependent: the host thread count and wall timings vary
      // across machines and OMP settings, so the default report (which must
      // be byte-identical for a given seed) omits them.
      w.member("threads_measured", row.cpu_threads_measured);
      w.member("t1_ms", row.cpu_t1_ms);
      w.member("tmax_ms", row.cpu_tmax_ms);
    }
    w.end_object();

    w.key("work_expansion");
    write_summary(w, row.work_expansion);

    w.member_object("transfer");
    w.member("upload_bytes", row.upload_bytes);
    w.member("download_bytes", row.download_bytes);
    w.member("launches", row.launches);
    w.member("pcie_gbps", row.transfer.pcie_gbps);
    w.member("launch_overhead_ms", row.transfer.launch_overhead_ms);
    w.member("round_trip_ms", row.transfer_ms());
    w.end_object();

    w.key("metrics");
    metrics_for_row(row).write_json(w);

    w.end_object();  // row
  }
  w.end_array();

  if (batch_) {
    const BatchResult& b = *batch_;
    w.member_object("batch");
    w.member("variant", variant_name(b.variant));
    w.member("policy", batch_policy_name(b.policy));
    w.member("residency", static_cast<std::uint64_t>(b.residency));
    w.member("total_chunks", static_cast<std::uint64_t>(b.total_chunks));
    w.member("rounds", static_cast<std::uint64_t>(b.rounds));
    w.member("switches", static_cast<std::uint64_t>(b.switches));

    w.member_array("kernels");
    for (const BatchKernelRow& k : b.kernels) {
      w.begin_object();
      w.member("kernel", k.kernel_name);
      w.key("config");
      write_config(w, k.config);
      w.member("ok", k.result.ok());
      if (!k.result.ok()) w.member("error", k.result.error);
      w.member("time_ms", k.result.time_ms);
      w.member("avg_nodes", k.avg_nodes);
      w.key("stats");
      write_kernel_stats(w, k.result.stats);
      w.key("time");
      write_time(w, k.result.time);
      if (k.result.selection) {
        w.key("selection");
        write_selection(w, *k.result.selection);
      }
      if (k.result.profile) {
        w.key("profile");
        write_profile_json(w, *k.result.profile);
      }
      if (include_memory_ && !k.result.stats.memory.empty()) {
        w.key("memory");
        write_memory_json(w, k.result.stats.memory);
      }
      w.member("upload_bytes", k.upload_bytes);
      w.member("download_bytes", k.download_bytes);
      w.member("solo_transfer_ms", k.solo_transfer_ms(b.transfer));
      w.end_object();
    }
    w.end_array();

    w.member_object("transfer");
    w.member("upload_bytes", b.upload_bytes);
    w.member("download_bytes", b.download_bytes);
    w.member("pcie_gbps", b.transfer.pcie_gbps);
    w.member("launch_overhead_ms", b.transfer.launch_overhead_ms);
    w.member("amortized_ms", b.amortized_transfer_ms());
    w.member("summed_solo_ms", b.summed_solo_transfer_ms());
    w.end_object();

    w.key("metrics");
    metrics_for_batch(b).write_json(w);

    if (include_volatile_) w.member("sim_wall_ms", b.sim_wall_ms);
    w.end_object();  // batch
  }

  if (serving_) {
    const ServingRunSummary& s = *serving_;
    const ServingReport& r = s.report;
    w.member_object("serving");
    w.member("arrivals", s.arrivals);
    w.member("rate_qps", s.rate_qps);
    w.member("queries", static_cast<std::uint64_t>(s.n_queries));
    w.member("devices", static_cast<std::uint64_t>(r.devices));
    w.member("shard_chunk", static_cast<std::uint64_t>(r.shard_chunk));
    w.member("variant", variant_name(s.variant));
    w.member("policy", batch_policy_name(s.policy));
    w.member_object("drain_policy");
    w.member("max_batch", static_cast<std::uint64_t>(s.drain.max_batch));
    w.member("max_delay_ms", s.drain.max_delay_ms);
    w.end_object();
    w.member("queue_capacity", static_cast<std::uint64_t>(s.queue_capacity));

    w.member("submitted", static_cast<std::uint64_t>(r.submitted));
    w.member("completed", static_cast<std::uint64_t>(r.completed));
    w.member("dropped", static_cast<std::uint64_t>(r.dropped));
    w.member("failed", static_cast<std::uint64_t>(r.failed));
    w.member("span_ms", r.span_ms());
    w.member("throughput_qps", r.throughput_qps());
    w.member("occupancy", r.occupancy());
    w.key("latency_ms");
    write_latency(w, r.latency);
    w.key("queue_delay_ms");
    write_latency(w, r.queue_delay);
    w.member_object("queue");
    w.member("depth_max", static_cast<std::uint64_t>(r.queue_depth_max));
    w.member("depth_mean", r.queue_depth.mean);
    w.member("depth_stddev", r.queue_depth.stddev);
    w.end_object();
    w.member_object("transfer");
    w.member("amortized_ms", r.amortized_transfer_ms());
    w.member("summed_solo_ms", r.summed_solo_transfer_ms());
    w.member("pcie_gbps", s.transfer.pcie_gbps);
    w.member("launch_overhead_ms", s.transfer.launch_overhead_ms);
    w.end_object();

    w.member_array("drains");
    for (const DrainRecord& d : r.drains) {
      w.begin_object();
      w.member("trigger_ms", d.trigger_ms);
      w.member("dispatch_ms", d.dispatch_ms);
      w.member("device", static_cast<std::uint64_t>(d.device));
      w.member("queries", static_cast<std::uint64_t>(d.n_queries));
      w.member("queue_depth_before",
               static_cast<std::uint64_t>(d.queue_depth_before));
      w.member("cold_launches", static_cast<std::uint64_t>(d.cold_launches));
      w.member("transfer_ms", d.transfer_ms);
      w.member("solo_transfer_ms", d.solo_transfer_ms);
      w.member("compute_ms", d.compute_ms);
      w.member("service_ms", d.service_ms);
      w.member("residency", static_cast<std::uint64_t>(d.residency));
      w.member("total_chunks", static_cast<std::uint64_t>(d.total_chunks));
      w.member("rounds", static_cast<std::uint64_t>(d.rounds));
      w.member("switches", static_cast<std::uint64_t>(d.switches));
      w.end_object();
    }
    w.end_array();

    w.member_array("sweep");
    for (const ServingSweepPoint& p : s.sweep) {
      w.begin_object();
      w.member("max_delay_ms", p.max_delay_ms);
      w.member("max_batch", static_cast<std::uint64_t>(p.max_batch));
      w.member("drains", static_cast<std::uint64_t>(p.drains));
      w.member("mean_batch", p.mean_batch);
      w.member("p50_ms", p.p50_ms);
      w.member("p95_ms", p.p95_ms);
      w.member("p99_ms", p.p99_ms);
      w.member("throughput_qps", p.throughput_qps);
      w.member("transfer_saved_ms", p.transfer_saved_ms);
      w.end_object();
    }
    w.end_array();

    w.key("metrics");
    metrics_for_serving(s).write_json(w);
    w.end_object();  // serving
  }

  if (sharding_) {
    const ShardingRunSummary& s = *sharding_;
    w.member_object("devices");
    w.member("devices", static_cast<std::uint64_t>(s.devices));
    w.member("chunk_points", static_cast<std::uint64_t>(s.chunk_points));
    w.member("policy", batch_policy_name(s.policy));
    w.member("variant", variant_name(s.variant));
    w.member("single_device_ms", s.single_device_ms());
    w.member("makespan_ms", s.makespan_ms());
    w.member("speedup", s.speedup());

    w.member_array("kernels");
    for (const ShardingKernelReport& k : s.kernels) {
      w.begin_object();
      w.member("kernel", k.kernel_name);
      w.member("ok", k.ok());
      if (!k.ok()) w.member("error", k.error);
      w.member("points", static_cast<std::uint64_t>(k.n_points));
      w.member("chunks", static_cast<std::uint64_t>(k.n_chunks));
      w.member("variant", variant_name(k.variant));
      w.member("single_device_ms", k.single_device_ms);
      w.member("makespan_ms", k.makespan_ms);
      w.member("speedup", k.speedup);
      w.member_array("per_device");
      for (const DeviceShard& d : k.devices) {
        w.begin_object();
        w.member("device", static_cast<std::uint64_t>(d.device));
        w.member("chunks", static_cast<std::uint64_t>(d.chunks));
        w.member("points", static_cast<std::uint64_t>(d.points));
        w.member("rounds", static_cast<std::uint64_t>(d.rounds));
        w.member("steals", static_cast<std::uint64_t>(d.steals));
        w.member("cost", d.cost);
        w.member("upload_bytes", d.upload_bytes);
        w.member("download_bytes", d.download_bytes);
        w.member("copy_chunks", static_cast<std::uint64_t>(d.transfer.chunks));
        w.member("compute_ms", d.time.total_ms);
        w.member("copy_in_ms", d.transfer.copy_in_ms);
        w.member("copy_out_ms", d.transfer.copy_out_ms);
        w.member("overlap_ms", d.transfer.overlap_ms);
        w.member("exposed_ms", d.transfer.exposed_ms);
        w.member("busy_ms", d.busy_ms);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();

    w.member_object("transfer");
    w.member("pcie_gbps", s.transfer.pcie_gbps);
    w.member("launch_overhead_ms", s.transfer.launch_overhead_ms);
    w.end_object();

    w.member_array("sweep");
    for (const ShardingSweepPoint& p : s.sweep) {
      w.begin_object();
      w.member("devices", static_cast<std::uint64_t>(p.devices));
      w.member("chunk_points", static_cast<std::uint64_t>(p.chunk_points));
      w.member("single_device_ms", p.single_device_ms);
      w.member("makespan_ms", p.makespan_ms);
      w.member("speedup", p.speedup);
      w.member("copy_in_ms", p.copy_in_ms);
      w.member("overlap_ms", p.overlap_ms);
      w.member("exposed_ms", p.exposed_ms);
      w.member("overlap_efficiency", p.overlap_efficiency);
      w.end_object();
    }
    w.end_array();

    w.key("metrics");
    metrics_for_sharding(s).write_json(w);
    w.end_object();  // devices
  }

  if (fusion_) {
    const FusionRunSummary& f = *fusion_;
    w.member_object("fusion");
    w.member_array("pairs");
    for (const FusionPairReport& p : f.pairs) {
      w.begin_object();
      w.member("fused", p.fused_name);
      w.member("first", p.first_name);
      w.member("second", p.second_name);
      w.member("points", p.n_points);
      w.member_array("variants");
      for (const FusionVariantRow& r : p.variants) {
        w.begin_object();
        w.member("variant", variant_name(r.variant));
        w.member("ok", r.ok);
        if (!r.ok) {
          w.member("error", r.error);
          w.end_object();
          continue;
        }
        w.member("byte_identical", r.byte_identical);
        w.key("fused_stats");
        write_kernel_stats(w, r.fused);
        w.key("fused_time");
        write_time(w, r.fused_time);
        w.key("sequential_stats");
        write_kernel_stats(w, r.sequential);
        w.key("sequential_time");
        write_time(w, r.sequential_time);
        w.member("visit_cycles_saved", r.visit_cycles_saved());
        w.member("mem_stall_cycles_saved", r.mem_stall_cycles_saved());
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("metrics");
    metrics_for_fusion(f).write_json(w);
    w.end_object();  // fusion
  }

  w.member_array("tables");
  for (const NamedTable& t : tables_) {
    if (t.volatile_data && !include_volatile_) continue;
    w.begin_object();
    w.member("name", t.name);
    w.member_array("header");
    for (const std::string& h : t.table.header()) w.value(h);
    w.end_array();
    w.member_array("rows");
    for (const auto& cells : t.table.data()) {
      w.begin_array();
      for (const std::string& c : cells) w.value(c);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.end_object();  // the writer newline-terminates the document at depth 0
}

std::string RunReport::to_string() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

bool RunReport::write_file(const std::string& path, std::string* err) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    if (err) *err = "cannot open " + path + " for writing";
    return false;
  }
  write(os);
  os.flush();
  if (!os) {
    if (err) *err = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace tt::obs
