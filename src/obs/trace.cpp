#include "obs/trace.h"

#include <stdexcept>

#include "obs/json.h"

namespace tt::obs {

const char* trace_event_name(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kPop: return "pop";
    case TraceEventKind::kVisit: return "visit";
    case TraceEventKind::kTruncate: return "truncate";
    case TraceEventKind::kPush: return "push";
    case TraceEventKind::kVote: return "vote";
    case TraceEventKind::kCall: return "call";
    case TraceEventKind::kReturn: return "return";
    case TraceEventKind::kSelect: return "select";
    case TraceEventKind::kChunk: return "chunk";
    case TraceEventKind::kCopy: return "copy";
  }
  return "?";
}

TraceEventKind trace_event_kind_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kNumTraceEventKinds; ++i) {
    const auto k = static_cast<TraceEventKind>(i);
    if (name == trace_event_name(k)) return k;
  }
  std::string valid;
  for (std::size_t i = 0; i < kNumTraceEventKinds; ++i) {
    if (!valid.empty()) valid += ", ";
    valid += trace_event_name(static_cast<TraceEventKind>(i));
  }
  throw std::invalid_argument("trace_event_kind_from_name: unknown event '" +
                              name + "' (valid: " + valid + ")");
}

WarpTracer::WarpTracer(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void WarpTracer::begin_warp(std::uint32_t warp) {
  warp_ = warp;
  head_ = 0;
  count_ = 0;
  seq_ = 0;
  dropped_ = 0;
}

std::vector<TraceEvent> WarpTracer::drain() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

TraceSink::TraceSink(std::size_t capacity_per_warp)
    : capacity_(capacity_per_warp == 0 ? 1 : capacity_per_warp) {}

void TraceSink::begin(std::size_t n_warps, int n_threads) {
  if (n_threads < 1) n_threads = 1;
  rings_.clear();
  rings_.reserve(static_cast<std::size_t>(n_threads));
  for (int t = 0; t < n_threads; ++t) rings_.emplace_back(capacity_);
  per_warp_.assign(n_warps, {});
  dropped_.assign(n_warps, 0);
  launch_.clear();
}

void TraceSink::record_launch(TraceEventKind kind, std::uint32_t node,
                              std::uint32_t mask, std::uint32_t depth,
                              std::uint32_t aux) {
  TraceEvent e;
  e.warp = 0xffffffffu;
  e.seq = static_cast<std::uint32_t>(launch_.size());
  e.kind = kind;
  e.node = node;
  e.mask = mask;
  e.depth = depth;
  e.aux = aux;
  launch_.push_back(e);
}

WarpTracer& TraceSink::ring(int thread_id) {
  return rings_.at(static_cast<std::size_t>(thread_id));
}

void TraceSink::commit(std::uint32_t warp, const WarpTracer& tracer) {
  auto& slot = per_warp_.at(warp);
  // Strip-mined grids revisit the same logical warp slot only for distinct
  // chunks; appending keeps one chronological stream per logical warp.
  auto events = tracer.drain();
  slot.insert(slot.end(), events.begin(), events.end());
  dropped_.at(warp) += tracer.dropped();
}

const std::vector<TraceEvent>& TraceSink::events_for(
    std::uint32_t warp) const {
  return per_warp_.at(warp);
}

std::uint64_t TraceSink::dropped_for(std::uint32_t warp) const {
  return dropped_.at(warp);
}

std::uint64_t TraceSink::total_dropped() const {
  std::uint64_t n = 0;
  for (auto d : dropped_) n += d;
  return n;
}

std::size_t TraceSink::total_events() const {
  std::size_t n = launch_.size();
  for (const auto& v : per_warp_) n += v.size();
  return n;
}

std::vector<TraceEvent> TraceSink::merged() const {
  std::vector<TraceEvent> out;
  out.reserve(total_events());
  // per_warp_ is indexed by warp and each slot is already seq-ordered, so
  // plain concatenation *is* the (warp, seq) sort. Launch-scope events use
  // warp = 0xffffffff, past any real warp index, so they come last.
  for (const auto& v : per_warp_) out.insert(out.end(), v.begin(), v.end());
  out.insert(out.end(), launch_.begin(), launch_.end());
  return out;
}

namespace {
void write_event(JsonWriter& w, const TraceEvent& e) {
  w.begin_object();
  w.member("seq", static_cast<std::uint64_t>(e.seq));
  w.member("kind", trace_event_name(e.kind));
  if (e.node != 0xffffffffu)
    w.member("node", static_cast<std::uint64_t>(e.node));
  w.member("mask", static_cast<std::uint64_t>(e.mask));
  w.member("depth", static_cast<std::uint64_t>(e.depth));
  if (e.aux != 0) w.member("aux", static_cast<std::uint64_t>(e.aux));
  w.end_object();
}
}  // namespace

void TraceSink::write_json(JsonWriter& w) const {
  w.begin_array();
  for (std::size_t warp = 0; warp < per_warp_.size(); ++warp) {
    if (per_warp_[warp].empty() && dropped_[warp] == 0) continue;
    w.begin_object();
    w.member("warp", static_cast<std::uint64_t>(warp));
    w.member("dropped", dropped_[warp]);
    w.member_array("events");
    for (const TraceEvent& e : per_warp_[warp]) write_event(w, e);
    w.end_array();
    w.end_object();
  }
  if (!launch_.empty()) {
    w.begin_object();
    w.member("launch", true);
    w.member("dropped", std::uint64_t{0});
    w.member_array("events");
    for (const TraceEvent& e : launch_) write_event(w, e);
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

}  // namespace tt::obs
