#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "obs/json.h"
#include "simt/cost_model.h"

namespace tt::obs {

void MetricsRegistry::add_counter(const std::string& name,
                                  std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double sample) {
  histograms_[name].stats.add(sample);
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  if (it == counters_.end())
    throw std::out_of_range("MetricsRegistry: no counter '" + name + "'");
  return it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    throw std::out_of_range("MetricsRegistry: no gauge '" + name + "'");
  return it->second;
}

Summary MetricsRegistry::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    throw std::out_of_range("MetricsRegistry: no histogram '" + name + "'");
  return it->second.stats.summary();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) {
    auto [it, inserted] = gauges_.emplace(name, v);
    if (!inserted && it->second != v) {
      ++gauge_conflicts_;
      it->second = std::max(it->second, v);  // order-independent resolution
    }
  }
  for (const auto& [name, h] : other.histograms_)
    histograms_[name].stats.merge(h.stats);
  gauge_conflicts_ += other.gauge_conflicts_;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.member_object("counters");
  for (const auto& [name, v] : counters_) w.member(name, v);
  w.end_object();
  w.member_object("gauges");
  for (const auto& [name, v] : gauges_) w.member(name, v);
  w.end_object();
  w.member_object("histograms");
  for (const auto& [name, h] : histograms_) {
    Summary s = h.stats.summary();
    w.member_object(name);
    w.member("count", static_cast<std::uint64_t>(s.count));
    w.member("mean", s.mean);
    w.member("stddev", s.stddev);
    w.member("min", s.min);
    w.member("max", s.max);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void register_kernel_stats(MetricsRegistry& reg, const KernelStats& stats,
                           const std::string& prefix) {
  reg.add_counter(prefix + "load_instructions", stats.load_instructions);
  reg.add_counter(prefix + "dram_transactions", stats.dram_transactions);
  reg.add_counter(prefix + "l2_hit_transactions", stats.l2_hit_transactions);
  reg.add_counter(prefix + "dram_bytes", stats.dram_bytes);
  reg.add_counter(prefix + "warp_steps", stats.warp_steps);
  reg.add_counter(prefix + "lane_visits", stats.lane_visits);
  reg.add_counter(prefix + "warp_pops", stats.warp_pops);
  reg.add_counter(prefix + "calls", stats.calls);
  reg.add_counter(prefix + "votes", stats.votes);
  reg.add_counter(prefix + "active_lane_sum", stats.active_lane_sum);
  reg.set_gauge(prefix + "instr_cycles", stats.instr_cycles);
  reg.set_gauge(prefix + "peak_stack_entries",
                static_cast<double>(stats.peak_stack_entries));
  if (stats.warp_steps > 0)
    reg.set_gauge(prefix + "mean_active_lanes",
                  static_cast<double>(stats.active_lane_sum) /
                      static_cast<double>(stats.warp_steps));
  // Stackless variants only: the modelled shared-memory node cache.
  // Stack-based variants never touch the cache, so their registries (and
  // any fixture captured from them) are unchanged.
  if (stats.smem_cache_hits + stats.smem_cache_misses > 0) {
    reg.add_counter(prefix + "smem_cache_hits", stats.smem_cache_hits);
    reg.add_counter(prefix + "smem_cache_misses", stats.smem_cache_misses);
    reg.set_gauge(prefix + "smem_cache_hit_rate",
                  static_cast<double>(stats.smem_cache_hits) /
                      static_cast<double>(stats.smem_cache_hits +
                                          stats.smem_cache_misses));
  }
}

void register_time_breakdown(MetricsRegistry& reg, const TimeBreakdown& time,
                             const std::string& prefix) {
  reg.set_gauge(prefix + "compute_ms", time.compute_ms);
  reg.set_gauge(prefix + "memory_ms", time.memory_ms);
  reg.set_gauge(prefix + "total_ms", time.total_ms);
  reg.set_gauge(prefix + "memory_bound", time.memory_bound ? 1.0 : 0.0);
  reg.set_gauge(prefix + "imbalance", time.imbalance);
}

void register_cpu_model(MetricsRegistry& reg, const CpuScalingModel& model,
                        const std::string& prefix) {
  reg.set_gauge(prefix + "beta", model.beta);
  reg.set_gauge(prefix + "speedup_at_32", model.speedup(32));
}

void register_transfer_model(MetricsRegistry& reg, const TransferModel& model,
                             std::uint64_t upload_bytes,
                             std::uint64_t download_bytes,
                             const std::string& prefix, int launches) {
  reg.add_counter(prefix + "upload_bytes", upload_bytes);
  reg.add_counter(prefix + "download_bytes", download_bytes);
  reg.add_counter(prefix + "launches", static_cast<std::uint64_t>(launches));
  reg.set_gauge(prefix + "pcie_gbps", model.pcie_gbps);
  reg.set_gauge(prefix + "round_trip_ms",
                model.round_trip_ms(upload_bytes, download_bytes, launches));
}

}  // namespace tt::obs
