#include "obs/profile.h"

#include <algorithm>
#include <bit>

#include "obs/json.h"

namespace tt::obs {

namespace {

std::uint32_t lane_count(std::uint32_t mask) {
  return static_cast<std::uint32_t>(std::popcount(mask));
}

}  // namespace

void ProfileCollector::on_step(std::uint32_t depth, int active) {
  if (depth_.size() <= depth) depth_.resize(depth + 1);
  ProfileDepthBin& bin = depth_[depth];
  ++bin.steps;
  bin.active_lane_sum += static_cast<std::uint64_t>(active);
}

void ProfileCollector::on_event(TraceEventKind kind, std::uint32_t node,
                                std::uint32_t mask, std::uint32_t depth,
                                std::uint32_t /*aux*/) {
  switch (kind) {
    case TraceEventKind::kVisit:
      // Warp-uniform visits only: the non-lockstep per-lane variant emits
      // kVisit with node = 0xffffffff (lanes visit distinct nodes), which
      // cannot be attributed to one tree node.
      if (node != 0xffffffffu) {
        NodeAgg& agg = nodes_[node];
        ++agg.warp_visits;
        agg.active_lane_sum += lane_count(mask);
      }
      break;
    case TraceEventKind::kTruncate: {
      if (depth_.size() <= depth) depth_.resize(depth + 1);
      depth_[depth].truncated_lanes += lane_count(mask);
      if (node != 0xffffffffu) nodes_[node].truncated_lanes += lane_count(mask);
      break;
    }
    default:
      break;  // pops, pushes, votes, calls carry no extra attribution
  }
}

void ProfileCollector::merge(const ProfileCollector& o) {
  if (depth_.size() < o.depth_.size()) depth_.resize(o.depth_.size());
  for (std::size_t d = 0; d < o.depth_.size(); ++d) {
    depth_[d].steps += o.depth_[d].steps;
    depth_[d].active_lane_sum += o.depth_[d].active_lane_sum;
    depth_[d].truncated_lanes += o.depth_[d].truncated_lanes;
  }
  for (const auto& [node, agg] : o.nodes_) {
    NodeAgg& mine = nodes_[node];
    mine.warp_visits += agg.warp_visits;
    mine.active_lane_sum += agg.active_lane_sum;
    mine.truncated_lanes += agg.truncated_lanes;
  }
}

void ProfileCollector::clear() {
  depth_.clear();
  nodes_.clear();
}

void ProfileSink::begin(int n_threads) {
  if (n_threads < 1) n_threads = 1;
  pool_.assign(static_cast<std::size_t>(n_threads), ProfileCollector{});
}

ProfileCollector& ProfileSink::collector(int thread_id) {
  return pool_.at(static_cast<std::size_t>(thread_id));
}

ProfileCollector ProfileSink::merged() const {
  ProfileCollector out;
  for (const ProfileCollector& c : pool_) out.merge(c);
  return out;
}

std::uint64_t ProfileReport::depth_steps() const {
  std::uint64_t s = 0;
  for (const ProfileDepthBin& b : depth) s += b.steps;
  return s;
}

std::uint64_t ProfileReport::depth_active() const {
  std::uint64_t s = 0;
  for (const ProfileDepthBin& b : depth) s += b.active_lane_sum;
  return s;
}

namespace {

void rank_hot_nodes(std::vector<ProfileHotNode>& nodes, std::size_t top_k) {
  std::sort(nodes.begin(), nodes.end(),
            [](const ProfileHotNode& a, const ProfileHotNode& b) {
              if (a.warp_visits != b.warp_visits)
                return a.warp_visits > b.warp_visits;
              return a.node < b.node;  // deterministic tie-break
            });
  if (nodes.size() > top_k) nodes.resize(top_k);
}

}  // namespace

void ProfileReport::merge(const ProfileReport& o) {
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b) buckets[b] += o.buckets[b];
  instr_cycles += o.instr_cycles;
  memory_cycles += o.memory_cycles;
  warp_steps += o.warp_steps;
  active_lane_sum += o.active_lane_sum;
  if (depth.size() < o.depth.size()) depth.resize(o.depth.size());
  for (std::size_t d = 0; d < o.depth.size(); ++d) {
    depth[d].steps += o.depth[d].steps;
    depth[d].active_lane_sum += o.depth[d].active_lane_sum;
    depth[d].truncated_lanes += o.depth[d].truncated_lanes;
  }
  std::map<std::uint32_t, ProfileHotNode> by_node;
  for (const ProfileHotNode& n : hot_nodes) by_node[n.node] = n;
  for (const ProfileHotNode& n : o.hot_nodes) {
    ProfileHotNode& mine = by_node[n.node];
    mine.node = n.node;
    mine.warp_visits += n.warp_visits;
    mine.active_lane_sum += n.active_lane_sum;
    mine.truncated_lanes += n.truncated_lanes;
  }
  top_k = std::max(top_k, o.top_k);
  hot_nodes.clear();
  hot_nodes.reserve(by_node.size());
  for (const auto& [node, agg] : by_node) hot_nodes.push_back(agg);
  rank_hot_nodes(hot_nodes, top_k);
}

ProfileReport make_profile_report(const KernelStats& stats,
                                  const DeviceConfig& cfg,
                                  const ProfileCollector* collector,
                                  std::size_t top_k) {
  ProfileReport p;
  p.buckets = stats.cycle_buckets;
  p.instr_cycles = stats.instr_cycles;
  // The bandwidth bottleneck of the dual cost model, expressed in device
  // cycles (same formula as estimate_time: bytes over sustained bandwidth,
  // scaled by the core clock).
  const double bytes_per_ms = cfg.mem_bandwidth_gbps * 1e6;
  const double cycles_per_ms = cfg.clock_ghz * 1e6;
  p.memory_cycles =
      static_cast<double>(stats.dram_bytes) / bytes_per_ms * cycles_per_ms;
  p.warp_steps = stats.warp_steps;
  p.active_lane_sum = stats.active_lane_sum;
  p.top_k = top_k;
  if (collector) {
    p.depth = collector->depth_bins();
    p.hot_nodes.reserve(collector->nodes().size());
    for (const auto& [node, agg] : collector->nodes()) {
      ProfileHotNode n;
      n.node = node;
      n.warp_visits = agg.warp_visits;
      n.active_lane_sum = agg.active_lane_sum;
      n.truncated_lanes = agg.truncated_lanes;
      p.hot_nodes.push_back(n);
    }
    rank_hot_nodes(p.hot_nodes, top_k);
  }
  return p;
}

void write_profile_json(JsonWriter& w, const ProfileReport& p) {
  w.begin_object();
  w.member("instr_cycles", p.instr_cycles);
  w.member("memory_cycles", p.memory_cycles);
  w.member("warp_steps", p.warp_steps);
  w.member("active_lane_sum", p.active_lane_sum);
  w.member_object("buckets");
  for (std::size_t b = 0; b < kNumCycleBuckets; ++b)
    w.member(cycle_bucket_name(static_cast<CycleBucket>(b)), p.buckets[b]);
  w.end_object();
  w.member_array("depth_histogram");
  for (std::size_t d = 0; d < p.depth.size(); ++d) {
    const ProfileDepthBin& bin = p.depth[d];
    w.begin_object();
    w.member("depth", static_cast<std::uint64_t>(d));
    w.member("steps", bin.steps);
    w.member("active_lane_sum", bin.active_lane_sum);
    w.member("truncated_lanes", bin.truncated_lanes);
    w.member("mean_active", bin.mean_active());
    w.end_object();
  }
  w.end_array();
  w.member_array("hot_nodes");
  for (const ProfileHotNode& n : p.hot_nodes) {
    w.begin_object();
    w.member("node", static_cast<std::uint64_t>(n.node));
    w.member("warp_visits", n.warp_visits);
    w.member("active_lane_sum", n.active_lane_sum);
    w.member("truncated_lanes", n.truncated_lanes);
    w.member("mean_active_lanes", n.mean_active_lanes());
    w.member("truncation_rate", n.truncation_rate());
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_memory_json(JsonWriter& w, const MemoryAttribution& m) {
  w.begin_object();
  w.member_array("buffers");
  for (const BufferTraffic* r : m.sorted_rows()) {
    w.begin_object();
    w.member("name", r->name);
    w.member("elem_bytes", r->elem_bytes);
    w.member("load_groups", r->load_groups);
    w.member("replayed_loads", r->replayed_loads);
    w.member("issued_segments", r->issued_segments);
    w.member("ideal_segments", r->ideal_segments);
    w.member("coalescing_efficiency", r->coalescing_efficiency());
    w.member("l2_hit_transactions", r->l2_hit_transactions);
    w.member("dram_transactions", r->dram_transactions);
    w.member("dram_bytes", r->dram_bytes);
    w.member("smem_cache_hits", r->smem_cache_hits);
    w.member("smem_cache_misses", r->smem_cache_misses);
    w.member("mem_stall_cycles", r->mem_stall_cycles);
    if (!r->fields.empty()) {
      w.member_array("fields");
      for (const FieldTraffic& f : r->fields) {
        w.begin_object();
        w.member("name", f.name);
        w.member("offset", static_cast<std::uint64_t>(f.offset));
        w.member("bytes", static_cast<std::uint64_t>(f.bytes));
        w.member("transactions", f.transactions);
        w.member("l2_hit", f.l2_hit);
        w.member("dram", f.dram);
        w.member("dram_bytes", f.dram_bytes);
        w.member("smem_cache_hits", f.smem_cache_hits);
        w.member("mem_stall_cycles", f.mem_stall_cycles);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::vector<const BufferTraffic*> hot_buffers(const MemoryAttribution& m,
                                              std::size_t top_k) {
  std::vector<const BufferTraffic*> out;
  for (const BufferTraffic& r : m.rows())
    if (r.issued_segments > 0) out.push_back(&r);
  std::sort(out.begin(), out.end(),
            [](const BufferTraffic* a, const BufferTraffic* b) {
              if (a->dram_transactions != b->dram_transactions)
                return a->dram_transactions > b->dram_transactions;
              return a->name < b->name;
            });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

}  // namespace tt::obs
