// Chrome trace-event export of merged warp traces, loadable in Perfetto /
// chrome://tracing.
//
// A ChromeTraceCollector owns one TraceSink per launch: the caller opens a
// track with begin_launch(name), hands the returned sink to run_gpu_sim /
// LaunchSpec::trace, and write_file() serializes every launch as one
// chrome *process* (pid = launch index, named by a process_name metadata
// event) whose *threads* are the launch's warps -- one event row per warp,
// ts = the per-warp sequence number. Launch-scope events (warp 0xffffffff:
// the auto_select kSelect decision) land on a dedicated "launch" thread
// row; batched kChunk events keep their kernel-id payload in args. The
// output is deterministic for a deterministic trace (merged() order), so
// OMP_NUM_THREADS=1 vs N produce byte-identical files.
//
// Serving runs (core/serving.h) name their tracks "drain<i>/<kernel>" --
// one process per executed launch of each admission wave, capped by
// ServingConfig::max_drain_tracks -- so queueing and wave formation are
// visible next to the warp activity in Perfetto.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "simt/memory_attr.h"

namespace tt::obs {

class ChromeTraceCollector {
 public:
  explicit ChromeTraceCollector(std::size_t capacity_per_warp = 4096);

  // Open the next launch's track. The returned sink is owned by the
  // collector and stays valid for its lifetime; pass it to run_gpu_sim or
  // LaunchSpec::trace (those call begin() themselves). Tracks serialize in
  // begin_launch order.
  [[nodiscard]] TraceSink& begin_launch(std::string name);

  // Attach the most recent launch's per-buffer traffic attribution
  // (simt/memory_attr.h). write_json then emits one counter track
  // ("ph":"C", name "mem:<buffer>") per buffer with traffic on the
  // launch's process row -- DRAM vs L2-hit transactions and smem
  // node-cache hits stack next to the warp timeline in Perfetto. A launch
  // without an attached attribution (or an empty one) gets no counter
  // tracks. No-op before the first begin_launch.
  void set_launch_memory(const MemoryAttribution& m);

  [[nodiscard]] std::size_t n_launches() const { return launches_.size(); }
  [[nodiscard]] const std::string& launch_name(std::size_t i) const {
    return launches_.at(i).name;
  }
  // Trace events across all launches (metadata records not included) --
  // matches the sum of the launches' TraceSink::total_events().
  [[nodiscard]] std::size_t total_events() const;

  // {"traceEvents": [...]} -- the JSON object format, which Perfetto and
  // chrome://tracing both accept.
  void write_json(std::ostream& os) const;
  // Returns false and fills *err (if non-null) on I/O failure.
  bool write_file(const std::string& path, std::string* err = nullptr) const;

 private:
  struct Launch {
    std::string name;
    // unique_ptr keeps sink addresses stable across begin_launch calls.
    std::unique_ptr<TraceSink> sink;
    MemoryAttribution memory;  // empty unless set_launch_memory was called
  };
  std::size_t capacity_;
  std::vector<Launch> launches_;
};

}  // namespace tt::obs
