// Dependency-free JSON support for the observability layer.
//
// The writer emits keys in insertion order and formats numbers with
// std::to_chars (shortest round-trip form), so a report built from the
// same values is byte-identical across runs -- the property the RunReport
// determinism guarantee rests on. The parser is a small recursive-descent
// reader used by round-trip tests and the json_validate tool; it accepts
// exactly the JSON the writer produces (plus whitespace).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace tt::obs {

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

std::string json_escape(const std::string& s);
// Shortest round-trip decimal form; "null" for non-finite values.
std::string json_number(double v);
std::string json_number(std::uint64_t v);
std::string json_number(std::int64_t v);

// Streaming writer with explicit structure calls. Keys appear in call
// order; the caller is responsible for balanced begin/end pairs (checked
// with asserts in debug builds via depth bookkeeping).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent = 2);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Object members.
  void key(const std::string& k);
  void member(const std::string& k, const std::string& v);
  void member(const std::string& k, const char* v);
  void member(const std::string& k, double v);
  void member(const std::string& k, std::uint64_t v);
  void member(const std::string& k, std::int64_t v);
  void member(const std::string& k, int v);
  void member(const std::string& k, bool v);
  void member_null(const std::string& k);
  void member_object(const std::string& k);  // key + begin_object
  void member_array(const std::string& k);   // key + begin_array

  // Array elements.
  void value(const std::string& v);
  void value(double v);
  void value(std::uint64_t v);
  void value(bool v);
  void value_null();

 private:
  void comma_and_newline();
  void raw(const std::string& s);

  std::ostream* os_;
  int indent_;
  int depth_ = 0;
  bool first_ = true;      // no element yet at the current level
  bool key_pending_ = false;
};

// ---------------------------------------------------------------------
// Parser (for tests/validation, not a general-purpose library).
// ---------------------------------------------------------------------

class JsonValue;
using JsonValuePtr = std::shared_ptr<JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_v = false;
  double num_v = 0;
  std::string str_v;
  std::vector<JsonValuePtr> arr_v;
  // Parse preserves insertion order for round-trip checks.
  std::vector<std::pair<std::string, JsonValuePtr>> obj_v;

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }

  // Object lookup; nullptr when missing or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& k) const;
  // Checked accessors -- throw std::runtime_error on type mismatch.
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] bool as_bool() const;
};

// Throws std::runtime_error with an offset-tagged message on malformed
// input or trailing garbage.
JsonValuePtr json_parse(const std::string& text);

}  // namespace tt::obs
