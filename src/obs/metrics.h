// MetricsRegistry: a flat, named registry of counters, gauges and
// histograms that every measured subsystem (KernelStats, the cost model's
// TimeBreakdown, the CPU scaling model, the transfer model) exports into.
//
// Names are slash-separated paths ("gpu/auto_lockstep/lane_visits").
// Storage is an ordered map, so iteration -- and therefore JSON emission
// and merge results -- is deterministic regardless of registration order.
// Merging two registries is commutative on counters (sum) and histograms
// (Welford-state merge); gauges must agree or the merge keeps the max and
// counts the conflict, so merge(a,b) == merge(b,a) always holds.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "cpu/scaling_model.h"
#include "simt/kernel_stats.h"
#include "simt/transfer_model.h"
#include "util/stats.h"

namespace tt {
struct TimeBreakdown;  // simt/cost_model.h
}

namespace tt::obs {

class JsonWriter;

struct Histogram {
  RunningStats stats;
};

class MetricsRegistry {
 public:
  // Counters accumulate; repeated calls with the same name add.
  void add_counter(const std::string& name, std::uint64_t delta);
  // Gauges are point-in-time values; repeated calls overwrite.
  void set_gauge(const std::string& name, double value);
  // Histograms accumulate observations (Welford summary).
  void observe(const std::string& name, double sample);

  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  [[nodiscard]] Summary histogram(const std::string& name) const;
  [[nodiscard]] bool has_counter(const std::string& name) const {
    return counters_.count(name) != 0;
  }
  [[nodiscard]] bool has_gauge(const std::string& name) const {
    return gauges_.count(name) != 0;
  }
  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Commutative, associative merge (see header comment). `gauge_conflicts`
  // counts gauges present in both registries with differing values.
  void merge(const MetricsRegistry& other);
  [[nodiscard]] std::uint64_t gauge_conflicts() const {
    return gauge_conflicts_;
  }

  // Deterministic emission: three sorted sections, keys in name order.
  void write_json(JsonWriter& w) const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::uint64_t gauge_conflicts_ = 0;
};

// Exporters: one per measured subsystem. `prefix` is prepended verbatim
// (pass e.g. "gpu/auto_lockstep/").
void register_kernel_stats(MetricsRegistry& reg, const KernelStats& stats,
                           const std::string& prefix);
void register_time_breakdown(MetricsRegistry& reg, const TimeBreakdown& time,
                             const std::string& prefix);
void register_cpu_model(MetricsRegistry& reg, const CpuScalingModel& model,
                        const std::string& prefix);
// `launches` is the kernel-launch count behind the bytes (multi-timestep
// rows pay the launch overhead per step; see TransferModel::round_trip_ms).
void register_transfer_model(MetricsRegistry& reg, const TransferModel& model,
                             std::uint64_t upload_bytes,
                             std::uint64_t download_bytes,
                             const std::string& prefix, int launches = 1);

}  // namespace tt::obs
