// Opt-in per-warp execution tracing for the simulated GPU executors.
//
// Every warp loop in core/gpu_executors.h carries an optional WarpTracer*;
// when tracing is off the pointer is null and the hooks cost one branch.
// When on, each traversal step appends compact per-step records (event
// kind, node, active-lane mask, stack depth) to a ring buffer owned by the
// executing OpenMP thread and reused across the warps that thread
// simulates. At the end of each warp the ring's retained events are
// committed into the sink's slot for that *logical* warp.
//
// Determinism: the ring capacity bounds events *per warp* (the ring is
// reset at warp start), and every event carries a per-warp sequence
// number, so which events survive -- and the merged order, sorted by
// (warp, seq) -- is independent of how OpenMP schedules warps to threads.
//
// Reconciliation invariants (pinned by tests/obs/trace_test.cpp):
//   sum over kVisit events of popcount(mask)  == KernelStats::lane_visits
//   count of kPop events (lockstep variants)  == KernelStats::warp_pops
//   count of kVote events                     == KernelStats::votes
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tt::obs {

class JsonWriter;

enum class TraceEventKind : std::uint8_t {
  kPop = 0,       // rope-stack pop (lockstep: one per warp-level entry;
                  // non-lockstep: one per step, mask = lanes that popped)
  kVisit = 1,     // visit executed; mask = lanes that ran the visit
  kTruncate = 2,  // mask = lanes whose visit returned "do not descend"
  kPush = 3,      // child pushed (lockstep: per child; non-lockstep: one
                  // per step, aux = total pushes across lanes)
  kVote = 4,      // warp ballot / majority vote; aux = vote outcome
  kCall = 5,      // recursive variants: call frame spilled
  kReturn = 6,    // recursive variants: frame restored
  kSelect = 7,    // auto_select launch decision (launch-scope, not per-warp;
                  // aux = 1 if lockstep was chosen, mask = sample count)
  kChunk = 8,     // batched runs only: chunk start, aux = owning kernel id
                  // (the launch's index within the batch), node = first
                  // point id of the chunk, mask = the chunk's lane mask.
                  // Solo runs never emit it, so solo traces are unchanged.
  kCopy = 9,      // sharded runs only (core/device_group.h): one pipelined
                  // upload chunk crossing the bus (launch-scope; node =
                  // chunk index, mask = points in the chunk, aux = device).
                  // Rendered next to the device's warp rows, so copy /
                  // compute overlap is visible per device in Perfetto.
};

// Number of TraceEventKind values. A new kind must extend trace_event_name
// and trace_event_kind_from_name too -- the exhaustiveness test in
// tests/obs/trace_test.cpp walks [0, kNumTraceEventKinds) and fails on an
// unnamed or non-round-tripping value.
inline constexpr std::size_t kNumTraceEventKinds = 10;

const char* trace_event_name(TraceEventKind k);
// Inverse of trace_event_name; throws std::invalid_argument on an unknown
// name (the error lists the valid ones).
TraceEventKind trace_event_kind_from_name(const std::string& name);

struct TraceEvent {
  std::uint32_t warp = 0;
  std::uint32_t seq = 0;   // per-warp, starts at 0
  TraceEventKind kind = TraceEventKind::kPop;
  std::uint32_t node = 0xffffffffu;  // kNullNode when not warp-uniform
  std::uint32_t mask = 0;            // active-lane mask for the event
  std::uint32_t depth = 0;           // stack depth after the operation
  std::uint32_t aux = 0;             // kind-specific payload
};

// Per-thread bounded ring. Keeps the *most recent* `capacity` events of
// the current warp; older events are overwritten and counted as dropped.
class WarpTracer {
 public:
  explicit WarpTracer(std::size_t capacity = 4096);

  void begin_warp(std::uint32_t warp);

  void record(TraceEventKind kind, std::uint32_t node, std::uint32_t mask,
              std::uint32_t depth, std::uint32_t aux = 0) {
    TraceEvent e;
    e.warp = warp_;
    e.seq = seq_++;
    e.kind = kind;
    e.node = node;
    e.mask = mask;
    e.depth = depth;
    e.aux = aux;
    if (count_ < ring_.size()) {
      ring_[(head_ + count_) % ring_.size()] = e;
      ++count_;
    } else {
      ring_[head_] = e;
      head_ = (head_ + 1) % ring_.size();
      ++dropped_;
    }
  }

  [[nodiscard]] std::uint32_t warp() const { return warp_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t size() const { return count_; }
  // Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> drain() const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;   // index of the oldest retained event
  std::size_t count_ = 0;  // retained events
  std::uint32_t warp_ = 0;
  std::uint32_t seq_ = 0;
  std::uint64_t dropped_ = 0;
};

class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity_per_warp = 4096);

  // Called by run_gpu_sim before launching warps. Resets prior contents.
  // `n_threads` sizes the per-OpenMP-thread ring pool.
  void begin(std::size_t n_warps, int n_threads);

  // The executing thread's ring (thread_id = omp_get_thread_num()).
  [[nodiscard]] WarpTracer& ring(int thread_id);

  // Commit the ring's retained events as logical warp `warp`'s trace.
  // Each warp is simulated by exactly one thread, so slots never race.
  void commit(std::uint32_t warp, const WarpTracer& tracer);

  // Launch-scope event (not tied to any warp): e.g. the auto_select
  // kSelect decision. Recorded with warp = 0xffffffff so merged() keeps
  // its (warp, seq) order with launch events after all per-warp events.
  // Called from the serial part of run_gpu_sim only.
  void record_launch(TraceEventKind kind, std::uint32_t node,
                     std::uint32_t mask, std::uint32_t depth,
                     std::uint32_t aux = 0);

  [[nodiscard]] std::size_t n_warps() const { return per_warp_.size(); }
  [[nodiscard]] const std::vector<TraceEvent>& launch_events() const {
    return launch_;
  }
  [[nodiscard]] const std::vector<TraceEvent>& events_for(
      std::uint32_t warp) const;
  [[nodiscard]] std::uint64_t dropped_for(std::uint32_t warp) const;
  [[nodiscard]] std::uint64_t total_dropped() const;
  [[nodiscard]] std::size_t total_events() const;

  // All warps' events concatenated in (warp, seq) order -- deterministic.
  [[nodiscard]] std::vector<TraceEvent> merged() const;

  // Event stream as JSON (array of per-warp objects), deterministic.
  void write_json(JsonWriter& w) const;

  [[nodiscard]] std::size_t capacity_per_warp() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::vector<WarpTracer> rings_;                  // one per OpenMP thread
  std::vector<std::vector<TraceEvent>> per_warp_;  // committed traces
  std::vector<std::uint64_t> dropped_;
  std::vector<TraceEvent> launch_;                 // launch-scope events
};

}  // namespace tt::obs
