#include "obs/chrome_trace.h"

#include <bit>
#include <fstream>

#include "obs/json.h"

namespace tt::obs {

ChromeTraceCollector::ChromeTraceCollector(std::size_t capacity_per_warp)
    : capacity_(capacity_per_warp == 0 ? 1 : capacity_per_warp) {}

TraceSink& ChromeTraceCollector::begin_launch(std::string name) {
  launches_.push_back(
      Launch{std::move(name), std::make_unique<TraceSink>(capacity_), {}});
  return *launches_.back().sink;
}

void ChromeTraceCollector::set_launch_memory(const MemoryAttribution& m) {
  if (launches_.empty()) return;
  launches_.back().memory = m;
}

std::size_t ChromeTraceCollector::total_events() const {
  std::size_t n = 0;
  for (const Launch& l : launches_) n += l.sink->total_events();
  return n;
}

namespace {

// Launch-scope events (TraceSink::record_launch) use warp 0xffffffff; give
// them their own named thread row.
constexpr std::uint64_t kLaunchTid = 0xffffffffull;

void write_metadata(JsonWriter& w, const char* what, std::uint64_t pid,
                    const std::string& name, const std::uint64_t* tid) {
  w.begin_object();
  w.member("name", what);
  w.member("ph", "M");
  w.member("pid", pid);
  if (tid) w.member("tid", *tid);
  w.member_object("args");
  w.member("name", name);
  w.end_object();
  w.end_object();
}

void write_event(JsonWriter& w, std::uint64_t pid, const TraceEvent& e) {
  w.begin_object();
  w.member("name", trace_event_name(e.kind));
  w.member("ph", "X");
  w.member("pid", pid);
  w.member("tid", static_cast<std::uint64_t>(e.warp));
  // The simulator has no wall clock; the per-warp sequence number is the
  // timeline, one "microsecond" per event.
  w.member("ts", static_cast<std::uint64_t>(e.seq));
  w.member("dur", std::uint64_t{1});
  w.member_object("args");
  if (e.node != 0xffffffffu)
    w.member("node", static_cast<std::uint64_t>(e.node));
  w.member("mask", static_cast<std::uint64_t>(e.mask));
  w.member("active", static_cast<std::uint64_t>(std::popcount(e.mask)));
  w.member("depth", static_cast<std::uint64_t>(e.depth));
  if (e.aux != 0) w.member("aux", static_cast<std::uint64_t>(e.aux));
  w.end_object();
  w.end_object();
}

// One counter track per buffer: the launch's transaction split, drawn by
// Perfetto as a stacked area next to the warp rows. The simulator has no
// wall clock, so the whole launch's traffic lands at ts = 0.
void write_memory_counters(JsonWriter& w, std::uint64_t pid,
                           const MemoryAttribution& m) {
  for (const BufferTraffic* r : m.sorted_rows()) {
    if (r->issued_segments == 0) continue;
    w.begin_object();
    w.member("name", "mem:" + r->name);
    w.member("ph", "C");
    w.member("pid", pid);
    w.member("ts", std::uint64_t{0});
    w.member_object("args");
    w.member("dram_transactions", r->dram_transactions);
    w.member("l2_hit_transactions", r->l2_hit_transactions);
    w.member("smem_cache_hits", r->smem_cache_hits);
    w.end_object();
    w.end_object();
  }
}

}  // namespace

void ChromeTraceCollector::write_json(std::ostream& os) const {
  JsonWriter w(os);
  w.begin_object();
  w.member_array("traceEvents");
  for (std::size_t i = 0; i < launches_.size(); ++i) {
    const Launch& l = launches_[i];
    const auto pid = static_cast<std::uint64_t>(i);
    write_metadata(w, "process_name", pid, l.name, nullptr);
    if (!l.sink->launch_events().empty())
      write_metadata(w, "thread_name", pid, "launch", &kLaunchTid);
    for (const TraceEvent& e : l.sink->merged()) write_event(w, pid, e);
    if (!l.memory.empty()) write_memory_counters(w, pid, l.memory);
  }
  w.end_array();
  w.member("displayTimeUnit", "ms");
  w.end_object();
}

bool ChromeTraceCollector::write_file(const std::string& path,
                                      std::string* err) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    if (err) *err = "cannot open " + path + " for writing";
    return false;
  }
  write_json(os);
  os.flush();
  if (!os) {
    if (err) *err = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace tt::obs
