// RunReport: schema-versioned JSON export of a benchmark run.
//
// A report bundles everything needed to interpret (and re-plot) a run
// without the binary that produced it: the device model, every BenchRow
// with all five variants' counters and modelled time breakdowns, the
// emitted human tables, and a MetricsRegistry snapshot per row. Reports
// are deterministic -- measured wall-clock values (cpu_t1_ms, sim_wall_ms
// and everything derived from them) are excluded unless `include_volatile`
// is set -- so re-running the same binary with the same flags produces a
// byte-identical file. Schema changes bump kRunReportSchema.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "bench_algos/harness.h"
#include "core/device_group.h"
#include "obs/metrics.h"
#include "util/csv.h"

namespace tt::obs {

// v2: adds the optional "selection" block to variant objects (the
// auto_select launch decision) and the gpu/auto_select/selection/*
// metrics. Golden fixtures captured at v1 are compared legacy-variant-only
// by tools/json_validate --golden.
// v3: adds the optional top-level "batch" block (one batched multi-kernel
// run: per-kernel rows + amortized-vs-summed transfer accounting) and the
// "launches" member of each row's transfer object. Older fixtures stay
// comparable: --golden prunes both additions.
// v4: adds the optional "profile" block to variant and batch-kernel
// objects (the obs/profile.h cycle-attribution report: per-layer bucket
// split, memory cycles, per-depth divergence histogram, hot-node table)
// and the gpu/<variant>/profile/* gauges. Emitted only when the run
// carried a ProfileSink (--profile), so default reports are unchanged;
// --golden prunes the additions.
// v5: adds the optional top-level "serving" block (core/serving.h: an
// open-loop ServingSession run -- arrival scenario, throughput,
// p50/p95/p99 modelled latency and queue-delay percentiles, queue-depth
// gauges, per-drain records, and the drain-cadence sweep) plus its
// serving/* metrics registry. Emitted only by bench/serving; --golden
// prunes it, so older fixtures stay comparable.
// v6: adds the optional top-level "devices" block (core/device_group.h:
// a multi-device sharded run -- per-kernel single-device-vs-makespan
// comparison, per-device chunk/point/steal accounting and pipelined
// copy/compute overlap attribution, plus the devices x chunk-size sweep)
// with its sharding/* metrics registry; the serving block gains a
// "devices" count and each drain record its dispatched "device". Emitted
// only by bench/sharding (and multi-device serving runs); --golden prunes
// the block, so older fixtures stay comparable.
// v7: adds the stackless variant family (stackless_lockstep,
// stackless_nolockstep, index_walk) to every row's "variants" object and
// the shared-memory node-cache counters (smem_cache_hits,
// smem_cache_misses) to each variant's stats block, with
// gpu/<variant>/smem_cache_* gauges in the row registries. Validation is
// version-aware: v6 fixtures stay fully validatable (stackless blocks are
// only required from v7 on) and --golden prunes the new variants and
// counters, so v1 goldens keep comparing.
// v8: adds the optional top-level "fusion" block (core/kernel_compose.h:
// fused traversal kernels measured against their sequential baselines --
// per pair and per variant, the fused run's stats/time next to the
// constituents' summed stats/time, the byte-identity verdict, and the
// derived visit / mem_stall cycle savings) with its fusion/* metrics
// registry, plus the "shared_loads_elided" counter in every stats block
// (nonzero only for fused kernels, whose constituents hit the same node
// records). tools/json_validate re-derives the fused-visits <= summed
// constituent visits invariant; --golden prunes the block and the new
// counter, so older fixtures keep comparing.
// v9: adds the optional "memory" block to variant and batch-kernel objects
// (the obs/profile.h write_memory_json export of simt/memory_attr.h): per
// registered buffer, the launch's load groups, replayed loads,
// issued-vs-ideal 128-byte segments (coalescing efficiency), L2-hit /
// DRAM transaction and byte splits, smem node-cache hits/misses and the
// derived mem-stall cycles -- with a nested per-field table where the
// buffer registered field metadata. Emitted only under --profile
// (set_include_memory), so default reports are unchanged;
// tools/json_validate re-derives the row-sum == aggregate-KernelStats
// invariants and --golden prunes the block.
inline constexpr const char* kRunReportSchema = "treetrav.run_report/v9";

// One (fused pair, variant) measurement from bench/fusion: the fused
// kernel's run next to its sequential baseline -- the same constituents
// run back to back under the same variant, counters summed. The cycle
// savings are derived from the two stats' bucket splits.
struct FusionVariantRow {
  Variant variant = Variant::kAutoNolockstep;
  bool ok = true;
  std::string error;            // the canonical ineligibility reason
  bool byte_identical = false;  // fused Result{a,b} == the solo results
  KernelStats fused;
  TimeBreakdown fused_time;
  KernelStats sequential;
  TimeBreakdown sequential_time;

  [[nodiscard]] double bucket_saved(CycleBucket b) const {
    const auto i = static_cast<std::size_t>(b);
    return sequential.cycle_buckets[i] - fused.cycle_buckets[i];
  }
  [[nodiscard]] double visit_cycles_saved() const {
    return bucket_saved(CycleBucket::kVisit);
  }
  [[nodiscard]] double mem_stall_cycles_saved() const {
    return bucket_saved(CycleBucket::kMemStall);
  }
};

struct FusionPairReport {
  std::string fused_name;   // e.g. "fused(rope_knn+rope_nn)"
  std::string first_name;   // constituent A
  std::string second_name;  // constituent B
  std::uint64_t n_points = 0;
  std::vector<FusionVariantRow> variants;
};

struct FusionRunSummary {
  std::vector<FusionPairReport> pairs;
};

// Registry for the fusion block: per pair x variant, the fused/sequential
// visit counts and the derived cycle savings under
// "fusion/<pair>/<variant>/".
MetricsRegistry metrics_for_fusion(const FusionRunSummary& fusion);

// Build the per-row registry: all five variants' KernelStats and
// TimeBreakdowns under "gpu/<variant>/", the CPU scaling model under
// "cpu/" and the transfer model under "transfer/". Failed variants
// contribute nothing but an error gauge is not needed -- the row JSON
// carries the error string.
MetricsRegistry metrics_for_row(const BenchRow& row);

// Registry for the batch block: per-kernel stats/time under
// "gpu/batch/<kernel>/", schedule accounting (residency, chunks, rounds,
// switches) and the amortized/summed transfer split under "gpu/batch/".
MetricsRegistry metrics_for_batch(const BatchResult& batch);

// Registry for the serving block: query counters and queue-depth /
// occupancy gauges under "serving/queue/" and "serving/", latency and
// queue-delay percentiles under "serving/latency/" and
// "serving/queue_delay/", and the wave-amortized transfer split under
// "serving/transfer/".
MetricsRegistry metrics_for_serving(const ServingRunSummary& serving);

// Registry for the devices block: group-level makespan / speedup /
// overlap-efficiency gauges under "sharding/" and per-kernel per-device
// busy and overlap gauges under "sharding/<kernel>/dev<i>/".
MetricsRegistry metrics_for_sharding(const ShardingRunSummary& sharding);

class RunReport {
 public:
  // `generator` names the producing binary ("table1", "ablation_ropes"...).
  explicit RunReport(std::string generator);

  void set_seed(std::uint64_t seed) { seed_ = seed; }
  void set_device(const DeviceConfig& device) { device_ = device; }
  // Include measured wall-clock values (breaks byte-identity across runs).
  void set_include_volatile(bool v) { include_volatile_ = v; }
  // Emit each variant's / batch kernel's "memory" attribution block
  // (schema v9). Off by default: attribution is always collected, but the
  // block is only exported for --profile runs, mirroring the v4 "profile"
  // block's gating.
  void set_include_memory(bool v) { include_memory_ = v; }

  void add_row(const BenchRow& row) { rows_.push_back(row); }
  // Attach a batched multi-kernel run; at most one per report (a later
  // call replaces the earlier block).
  void set_batch(const BatchResult& batch) { batch_ = batch; }
  // Attach an open-loop serving run (core/serving.h); at most one per
  // report (a later call replaces the earlier block).
  void set_serving(const ServingRunSummary& serving) { serving_ = serving; }
  // Attach a multi-device sharded run (core/device_group.h); at most one
  // per report (a later call replaces the earlier block).
  void set_sharding(const ShardingRunSummary& sharding) {
    sharding_ = sharding;
  }
  // Attach a fused-vs-sequential comparison (core/kernel_compose.h); at
  // most one per report (a later call replaces the earlier block).
  void set_fusion(const FusionRunSummary& fusion) { fusion_ = fusion; }
  // Tables whose cells embed measured wall-clock values (e.g. table1's
  // speedup-vs-CPU columns) must pass volatile_data = true; they are then
  // only emitted when include_volatile is set, keeping the default report
  // byte-identical across runs.
  void add_table(const std::string& name, const Table& table,
                 bool volatile_data = false);

  [[nodiscard]] std::size_t n_rows() const { return rows_.size(); }

  void write(std::ostream& os) const;
  // Convenience: serialize to a string (used by tests).
  [[nodiscard]] std::string to_string() const;
  // Returns false and fills *err (if non-null) when the file cannot be
  // written; never throws.
  bool write_file(const std::string& path, std::string* err = nullptr) const;

 private:
  std::string generator_;
  std::optional<std::uint64_t> seed_;
  std::optional<DeviceConfig> device_;
  bool include_volatile_ = false;
  bool include_memory_ = false;
  std::vector<BenchRow> rows_;
  std::optional<BatchResult> batch_;
  std::optional<ServingRunSummary> serving_;
  std::optional<ShardingRunSummary> sharding_;
  std::optional<FusionRunSummary> fusion_;
  struct NamedTable {
    std::string name;
    Table table;
    bool volatile_data;
  };
  std::vector<NamedTable> tables_;
};

}  // namespace tt::obs
