// Cycle-attribution profiler: per-layer cost breakdown, per-depth
// divergence histograms and a top-K hot-node table for one GPU launch.
//
// Three pieces:
//
//   ProfileCollector / ProfileSink
//     The collection side. A ProfileCollector aggregates the warp engine's
//     event stream (the same single emit site that feeds WarpTracer) plus
//     a profile-only per-step hook into per-depth divergence bins and a
//     per-node visit table. A ProfileSink owns one collector per OpenMP
//     thread -- the executing thread aggregates locally, and merged()
//     folds the pool with commutative integer sums, so the result is
//     byte-identical under OMP_NUM_THREADS=1 vs N (same contract as
//     TraceSink).
//
//   ProfileReport
//     The exported measurement: the KernelStats cycle-bucket split (one
//     entry per CycleBucket -- which executor layer spent the cycles), the
//     bandwidth model's memory cycles (the cost model's other bottleneck
//     axis, NOT part of the instruction-cycle reconciliation), the
//     per-depth divergence histogram and the hot-node table. The
//     attribution invariant -- bucket_sum() == instr_cycles, exact --
//     holds by construction (see KernelStats::charge) and is pinned by
//     tests/core/variant_fuzz_test.cpp and tools/json_validate.
//
//   write_profile_json
//     The schema-v4 "profile" block (obs/run_report.h), shared by the
//     RunReport exporter and tests.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "obs/trace.h"
#include "simt/device_config.h"
#include "simt/kernel_stats.h"

namespace tt::obs {

class JsonWriter;

// One stack-depth bin of the divergence timeline: how many warp steps ran
// at this depth, with how many active lanes, and how many lane-visits were
// truncated there.
struct ProfileDepthBin {
  std::uint64_t steps = 0;
  std::uint64_t active_lane_sum = 0;
  std::uint64_t truncated_lanes = 0;
  [[nodiscard]] double mean_active() const {
    return steps == 0 ? 0.0
                      : static_cast<double>(active_lane_sum) /
                            static_cast<double>(steps);
  }
};

// One row of the hot-node table: a tree node ranked by how many warp-level
// visit events it received. Only warp-uniform visits contribute (lockstep
// union visits and rec_nolockstep leader-group visits carry the node id;
// the per-lane non-lockstep variant visits distinct nodes per lane, so its
// events are anonymous and the table stays empty -- by design, not a bug).
struct ProfileHotNode {
  std::uint32_t node = 0;
  std::uint64_t warp_visits = 0;
  std::uint64_t active_lane_sum = 0;   // lanes active across those visits
  std::uint64_t truncated_lanes = 0;   // lanes whose visit voted "stop"
  [[nodiscard]] double mean_active_lanes() const {
    return warp_visits == 0 ? 0.0
                            : static_cast<double>(active_lane_sum) /
                                  static_cast<double>(warp_visits);
  }
  [[nodiscard]] double truncation_rate() const {
    return active_lane_sum == 0 ? 0.0
                                : static_cast<double>(truncated_lanes) /
                                      static_cast<double>(active_lane_sum);
  }
};

// Per-thread aggregation state. All fields are integer accumulators, so
// merging collectors is commutative and the merged result is independent
// of OpenMP scheduling.
class ProfileCollector {
 public:
  // Profile-only per-step hook: called once per warp step by every
  // convergence policy (WarpEngine::profile_step), with the step's stack
  // depth and active-lane count. Summed over bins this reconciles exactly
  // with KernelStats::warp_steps / active_lane_sum.
  void on_step(std::uint32_t depth, int active);

  // The warp engine's single emit site forwards every trace event here
  // (WarpEngine::emit). Only kVisit / kTruncate contribute.
  void on_event(TraceEventKind kind, std::uint32_t node, std::uint32_t mask,
                std::uint32_t depth, std::uint32_t aux);

  void merge(const ProfileCollector& o);
  void clear();

  [[nodiscard]] const std::vector<ProfileDepthBin>& depth_bins() const {
    return depth_;
  }
  struct NodeAgg {
    std::uint64_t warp_visits = 0;
    std::uint64_t active_lane_sum = 0;
    std::uint64_t truncated_lanes = 0;
  };
  [[nodiscard]] const std::map<std::uint32_t, NodeAgg>& nodes() const {
    return nodes_;
  }

 private:
  std::vector<ProfileDepthBin> depth_;
  std::map<std::uint32_t, NodeAgg> nodes_;
};

// The per-OpenMP-thread collector pool of one launch (mirrors TraceSink's
// ring pool). begin() is called from the serial part of run_gpu_sim /
// run_gpu_batch; each executing thread then aggregates into its own
// collector, and merged() folds the pool deterministically.
class ProfileSink {
 public:
  // Resets prior contents; `n_threads` sizes the pool.
  void begin(int n_threads);
  [[nodiscard]] ProfileCollector& collector(int thread_id);
  [[nodiscard]] std::size_t n_collectors() const { return pool_.size(); }
  [[nodiscard]] ProfileCollector merged() const;

 private:
  std::vector<ProfileCollector> pool_;
};

// The exported per-launch (or per-variant) profile.
struct ProfileReport {
  // instr_cycles split by CycleBucket (index = static_cast<size_t>(bucket)).
  std::array<double, kNumCycleBuckets> buckets{};
  double instr_cycles = 0;   // reconciliation target: == bucket sum, exact
  // The bandwidth model's cycles for the launch's DRAM traffic (the other
  // axis of the dual-bottleneck cost model; not included in the sum).
  double memory_cycles = 0;
  std::uint64_t warp_steps = 0;       // == sum of depth[].steps, exact
  std::uint64_t active_lane_sum = 0;  // == sum of depth[].active_lane_sum
  std::vector<ProfileDepthBin> depth;      // index = stack depth
  std::vector<ProfileHotNode> hot_nodes;   // sorted: visits desc, node asc
  std::size_t top_k = 16;  // requested table size

  [[nodiscard]] double bucket_sum() const {
    double s = 0;
    for (double v : buckets) s += v;
    return s;
  }
  // The attribution invariant, checked with exact equality: every charge
  // is an integer-valued double, so the sums are exact.
  [[nodiscard]] bool reconciles() const {
    return bucket_sum() == instr_cycles && depth_steps() == warp_steps &&
           depth_active() == active_lane_sum;
  }
  [[nodiscard]] std::uint64_t depth_steps() const;
  [[nodiscard]] std::uint64_t depth_active() const;

  // Timestep accumulation (BH): buckets / cycles / histograms add; the
  // hot-node tables merge by node id and re-rank (an approximation only
  // when a node fell outside a step's top-K -- counts never double).
  void merge(const ProfileReport& o);
};

// Build the report from a launch's merged stats + collector. Call AFTER
// any auto_select sampling charge so the reconciliation covers the full
// launch. `collector` may be null (bucket split only, empty histograms).
[[nodiscard]] ProfileReport make_profile_report(
    const KernelStats& stats, const DeviceConfig& cfg,
    const ProfileCollector* collector = nullptr, std::size_t top_k = 16);

// The schema-v4 "profile" block (see obs/run_report.h).
void write_profile_json(JsonWriter& w, const ProfileReport& p);

// The schema-v9 "memory" block (see obs/run_report.h): the per-buffer /
// per-field traffic attribution of one launch (simt/memory_attr.h),
// buffers sorted by name, fields in registration order plus the implicit
// "(other)" share. The invariants tools/json_validate re-derives -- row
// sums == the variant's aggregate KernelStats counters, field sums ==
// their buffer's row, coalescing efficiency in (0, 1] -- hold with exact
// equality (every accumulated value is a multiple of 2^-7, see
// simt/memory_attr.h).
void write_memory_json(JsonWriter& w, const MemoryAttribution& m);

// Human-facing rendering of the same table: the per-buffer hot rows of
// `m` ranked by DRAM transactions (desc, name tiebreak), at most `top_k`.
[[nodiscard]] std::vector<const BufferTraffic*> hot_buffers(
    const MemoryAttribution& m, std::size_t top_k);

}  // namespace tt::obs
