// Per-buffer / per-field memory-traffic attribution ("the memory
// telescope"): where every 128-byte transaction of a launch went.
//
// WarpMemory::commit() is the single charge site. For each issued segment
// it resolves the owning buffer (GpuAddressSpace::buffer_at -- exact,
// because 256-byte buffer bases mean a 128-byte segment never spans two
// buffers) and charges the transaction, its L2-hit/DRAM outcome, the
// smem-node-cache outcome and the derived mem-stall cycles into that
// buffer's row. Buffers registered with field metadata additionally split
// each transaction across the fields it overlaps, proportionally to byte
// overlap. Because the transaction size is a power of two (128), every
// per-field share is an exact dyadic rational (k/128) in binary floating
// point, so the invariants below hold with *exact* equality -- the same
// discipline as the cycle-bucket split (DESIGN.md section 7):
//
//   sum over rows of l2_hit / dram / dram_bytes / smem hits+misses /
//     load_groups / mem_stall  ==  the aggregate KernelStats counters
//   sum over a row's fields (incl. the implicit "(other)" share for
//     unannotated bytes)       ==  that row, measure by measure
//   coalescing efficiency      ==  ideal_segments / issued_segments, in
//                                  (0, 1] for every row with traffic
//
// Rows merge by buffer *name* (not id), so per-warp tables, sharded
// devices and multi-timestep accumulations all fold with the same
// commutative sums as the rest of KernelStats. All accumulated doubles
// are multiples of 2^-7 at moderate magnitude, so the sums are exact
// under any merge order -- OMP_NUM_THREADS and device count cannot skew
// the table.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "simt/address_space.h"

namespace tt {

// One field's share of its buffer's traffic. The fractional measures
// (transactions, l2_hit, dram, smem_cache_hits) count "share of a
// transaction" in units of 1/128; dram_bytes and mem_stall_cycles are the
// byte overlap resp. the stall cycles weighted by it.
struct FieldTraffic {
  std::string name;
  std::uint32_t offset = 0;  // byte offset within the element
  std::uint32_t bytes = 0;   // field width ("(other)" rows report 0)
  double transactions = 0;
  double l2_hit = 0;
  double dram = 0;
  double dram_bytes = 0;
  double smem_cache_hits = 0;
  double mem_stall_cycles = 0;

  void merge(const FieldTraffic& o) {
    transactions += o.transactions;
    l2_hit += o.l2_hit;
    dram += o.dram;
    dram_bytes += o.dram_bytes;
    smem_cache_hits += o.smem_cache_hits;
    mem_stall_cycles += o.mem_stall_cycles;
  }
};

// One buffer's row of the attribution table.
struct BufferTraffic {
  std::string name;  // "(unmapped)" for raw addresses outside any buffer
  std::uint64_t elem_bytes = 0;

  std::uint64_t load_groups = 0;      // warp-wide load issues charged here
  std::uint64_t replayed_loads = 0;   // rank > 0 issues (divergent counts)
  std::uint64_t issued_segments = 0;  // 128B transactions issued
  std::uint64_t ideal_segments = 0;   // ceil(union bytes / 128) per group
  std::uint64_t l2_hit_transactions = 0;
  std::uint64_t dram_transactions = 0;
  std::uint64_t dram_bytes = 0;
  std::uint64_t smem_cache_hits = 0;
  std::uint64_t smem_cache_misses = 0;
  double mem_stall_cycles = 0;
  std::vector<FieldTraffic> fields;  // empty when no field map registered

  // Ideal over issued segments: 1.0 means every issued transaction was
  // fully packed with needed bytes; low values flag poor coalescing.
  [[nodiscard]] double coalescing_efficiency() const {
    return issued_segments == 0
               ? 1.0
               : static_cast<double>(ideal_segments) /
                     static_cast<double>(issued_segments);
  }

  void merge(const BufferTraffic& o) {
    load_groups += o.load_groups;
    replayed_loads += o.replayed_loads;
    issued_segments += o.issued_segments;
    ideal_segments += o.ideal_segments;
    l2_hit_transactions += o.l2_hit_transactions;
    dram_transactions += o.dram_transactions;
    dram_bytes += o.dram_bytes;
    smem_cache_hits += o.smem_cache_hits;
    smem_cache_misses += o.smem_cache_misses;
    mem_stall_cycles += o.mem_stall_cycles;
    for (const FieldTraffic& f : o.fields) {
      auto it = std::find_if(
          fields.begin(), fields.end(),
          [&](const FieldTraffic& m) { return m.name == f.name; });
      if (it == fields.end())
        fields.push_back(f);
      else
        it->merge(f);
    }
  }
};

class MemoryAttribution {
 public:
  // The row for buffer `id` of `space` (id < 0: the "(unmapped)" row),
  // created on first touch with the buffer's name, element size and field
  // list (plus the implicit trailing "(other)" share when fields exist).
  // The id -> row index cache makes the per-segment charge O(1) after the
  // first touch; rows survive merges keyed by name only.
  [[nodiscard]] BufferTraffic& row(BufferId id, const GpuAddressSpace& space) {
    const std::size_t slot = id < 0 ? 0 : static_cast<std::size_t>(id) + 1;
    if (slot >= by_id_.size()) by_id_.resize(slot + 1, -1);
    if (by_id_[slot] >= 0) return rows_[static_cast<std::size_t>(by_id_[slot])];
    BufferTraffic r;
    if (id < 0) {
      r.name = "(unmapped)";
    } else {
      r.name = space.name(id);
      r.elem_bytes = space.elem_bytes(id);
      const std::vector<BufferField>& fs = space.fields(id);
      if (!fs.empty()) {
        for (const BufferField& f : fs) {
          FieldTraffic ft;
          ft.name = f.name;
          ft.offset = f.offset;
          ft.bytes = f.bytes;
          r.fields.push_back(std::move(ft));
        }
        FieldTraffic other;
        other.name = "(other)";
        r.fields.push_back(std::move(other));
      }
    }
    // Two generations of the same name share one row: find-or-append.
    std::size_t at = rows_.size();
    for (std::size_t i = 0; i < rows_.size(); ++i)
      if (rows_[i].name == r.name) {
        at = i;
        break;
      }
    if (at == rows_.size()) rows_.push_back(std::move(r));
    by_id_[slot] = static_cast<std::int32_t>(at);
    return rows_[at];
  }

  [[nodiscard]] const std::vector<BufferTraffic>& rows() const {
    return rows_;
  }
  [[nodiscard]] bool empty() const { return rows_.empty(); }

  // Rows sorted by name -- the canonical export order (first-touch order
  // is execution detail; reports and merges must not depend on it).
  [[nodiscard]] std::vector<const BufferTraffic*> sorted_rows() const {
    std::vector<const BufferTraffic*> out;
    out.reserve(rows_.size());
    for (const BufferTraffic& r : rows_) out.push_back(&r);
    std::sort(out.begin(), out.end(),
              [](const BufferTraffic* a, const BufferTraffic* b) {
                return a->name < b->name;
              });
    return out;
  }

  // The worst-coalesced rows (efficiency ascending, name tiebreak), at
  // most `k`, rows with no issued segments excluded.
  [[nodiscard]] std::vector<const BufferTraffic*> worst_coalesced(
      std::size_t k) const {
    std::vector<const BufferTraffic*> out;
    for (const BufferTraffic& r : rows_)
      if (r.issued_segments > 0) out.push_back(&r);
    std::sort(out.begin(), out.end(),
              [](const BufferTraffic* a, const BufferTraffic* b) {
                const double ea = a->coalescing_efficiency();
                const double eb = b->coalescing_efficiency();
                if (ea != eb) return ea < eb;
                return a->name < b->name;
              });
    if (out.size() > k) out.resize(k);
    return out;
  }

  void merge(const MemoryAttribution& o) {
    for (const BufferTraffic& r : o.rows_) {
      auto it = std::find_if(
          rows_.begin(), rows_.end(),
          [&](const BufferTraffic& m) { return m.name == r.name; });
      if (it == rows_.end())
        rows_.push_back(r);
      else
        it->merge(r);
    }
    // Row indices may have shifted / new rows appended from a foreign
    // table: the id cache is only valid for rows this instance created.
    by_id_.clear();
  }

 private:
  std::vector<BufferTraffic> rows_;
  std::vector<std::int32_t> by_id_;  // BufferId + 1 -> rows_ index (-1 unset)
};

}  // namespace tt
