// Warp-parallel simulation driver.
//
// Warps are mutually independent in the machine model (each owns a private
// L2 slice, see l2cache.h), so the host parallelizes across them with
// OpenMP and merges per-warp stats deterministically afterwards. The
// traversal-variant-specific warp loops live in core/gpu_executors.h; this
// header only knows how to fan warps out and collect counters.
#pragma once

#include <cstddef>
#include <vector>

#include <omp.h>

#include "simt/device_config.h"
#include "simt/kernel_stats.h"
#include "simt/l2cache.h"

namespace tt {

// fn(warp_index, stats, l2_slice_or_null) simulates one warp. Returns the
// per-warp stats so cost models can account for inter-warp load imbalance.
template <class WarpFn>
std::vector<KernelStats> run_warps(std::size_t n_warps,
                                   const DeviceConfig& cfg, WarpFn&& fn) {
  std::vector<KernelStats> per_warp(n_warps);

  std::size_t resident =
      std::min<std::size_t>(n_warps == 0 ? 1 : n_warps,
                            static_cast<std::size_t>(cfg.max_resident_warps()));
  std::size_t slice_bytes = cfg.l2_bytes / resident;

#pragma omp parallel
  {
    // One reusable slice per host thread; reset between warps.
    L2Cache slice(slice_bytes, cfg.l2_line_bytes, cfg.l2_assoc);
#pragma omp for schedule(dynamic, 8)
    for (std::int64_t w = 0; w < static_cast<std::int64_t>(n_warps); ++w) {
      slice.clear();
      fn(static_cast<std::size_t>(w), per_warp[static_cast<std::size_t>(w)],
         cfg.model_l2 ? &slice : nullptr);
    }
  }
  return per_warp;
}

inline KernelStats merge_stats(const std::vector<KernelStats>& per_warp) {
  KernelStats total;
  for (const KernelStats& s : per_warp) total.merge(s);
  return total;
}

inline std::vector<double> instr_cycles_of(
    const std::vector<KernelStats>& per_warp) {
  std::vector<double> cycles;
  cycles.reserve(per_warp.size());
  for (const KernelStats& s : per_warp) cycles.push_back(s.instr_cycles);
  return cycles;
}

}  // namespace tt
