#include "simt/coalescing.h"

#include <algorithm>

namespace tt {

std::size_t segments_touched(std::span<const LaneAccess> accesses,
                             std::uint32_t segment_bytes,
                             std::vector<std::uint64_t>& segments_out) {
  segments_out.clear();
  for (const LaneAccess& a : accesses) {
    if (a.bytes == 0) continue;
    std::uint64_t first = a.addr / segment_bytes;
    std::uint64_t last = (a.addr + a.bytes - 1) / segment_bytes;
    for (std::uint64_t s = first; s <= last; ++s) segments_out.push_back(s);
  }
  std::sort(segments_out.begin(), segments_out.end());
  segments_out.erase(std::unique(segments_out.begin(), segments_out.end()),
                     segments_out.end());
  return segments_out.size();
}

}  // namespace tt
