#include "simt/l2cache.h"

#include <bit>
#include <stdexcept>

namespace tt {

L2Cache::L2Cache(std::size_t capacity_bytes, int line_bytes, int assoc)
    : line_bytes_(line_bytes), assoc_(assoc) {
  if (line_bytes <= 0 || assoc <= 0)
    throw std::invalid_argument("L2Cache: bad geometry");
  std::size_t lines = capacity_bytes / static_cast<std::size_t>(line_bytes);
  std::size_t sets = lines / static_cast<std::size_t>(assoc);
  sets_ = sets == 0 ? 1 : std::bit_floor(sets);
  ways_.assign(sets_ * static_cast<std::size_t>(assoc_), Way{});
}

bool L2Cache::access(std::uint64_t addr) {
  std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  std::size_t set = static_cast<std::size_t>(line) & (sets_ - 1);
  std::uint64_t tag = line / sets_;
  Way* base = &ways_[set * static_cast<std::size_t>(assoc_)];
  ++tick_;
  int victim = 0;
  for (int w = 0; w < assoc_; ++w) {
    if (base[w].tag == tag) {
      base[w].lru = tick_;
      return true;
    }
    if (base[w].lru < base[victim].lru) victim = w;
  }
  base[victim].tag = tag;
  base[victim].lru = tick_;
  return false;
}

void L2Cache::clear() {
  ways_.assign(ways_.size(), Way{});
  tick_ = 0;
}

}  // namespace tt
