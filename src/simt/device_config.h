// Machine description for the software SIMT machine.
//
// Defaults model the paper's Tesla C2070 (Fermi GF100): 14 SMs x 32 lanes,
// 1.15 GHz, 6 GB GDDR5 at ~144 GB/s, 768 KB L2 with 128-byte lines, up to
// 48 resident warps per SM. Instruction-cost constants are in *warp-cycles*
// (one warp-wide instruction issue); see DESIGN.md section 6 for the
// calibration rationale. All experiments go through this struct, so cost
// sensitivity studies only touch one place.
#pragma once

#include <cstddef>

namespace tt {

struct DeviceConfig {
  // Topology.
  int warp_size = 32;
  int num_sms = 14;
  int resident_warps_per_sm = 48;
  double clock_ghz = 1.15;

  // Memory system.
  double mem_bandwidth_gbps = 144.0;  // sustained global throughput
  int transaction_bytes = 128;        // coalescing segment size
  std::size_t l2_bytes = 768 * 1024;
  int l2_line_bytes = 128;
  int l2_assoc = 16;
  bool model_l2 = true;
  std::size_t shared_mem_per_sm = 48 * 1024;  // 48K smem / 16K L1 split

  // Instruction costs (warp-cycles per warp-wide operation).
  double c_visit = 24;  // truncation test + node update arithmetic
  double c_step = 8;    // traversal-loop bookkeeping per iteration
  double c_call = 40;   // call/return pair overhead (recursive variant)
  double c_vote = 4;    // warp ballot / majority vote
  double c_smem = 2;    // shared-memory stack push or pop
  double c_l2hit = 2;   // L2-serviced transaction (throughput cost)

  // Storage shapes.
  int stack_entry_bytes = 8;  // node id + packed argument, global rope stack
  int frame_bytes = 32;       // per-call local-memory frame, recursive variant

  [[nodiscard]] int max_resident_warps() const {
    return num_sms * resident_warps_per_sm;
  }
};

}  // namespace tt
