// Host <-> device transfer model (paper section 5.2: "we must also copy
// any data to and from the GPU that is live-in and -out of the point
// loop", plus the linearized tree upload before the kernel launch).
//
// The paper's Table 1 reports traversal time only; this model lets the
// harness additionally report end-to-end numbers so users can judge when
// the offload amortizes. PCIe 2.0 x16, the C2070's bus: ~6 GB/s effective.
#pragma once

#include <cstdint>

namespace tt {

struct TransferModel {
  double pcie_gbps = 6.0;       // effective host<->device throughput
  double launch_overhead_ms = 0.01;  // per kernel launch

  [[nodiscard]] double upload_ms(std::uint64_t bytes) const {
    return launch_overhead_ms + static_cast<double>(bytes) / (pcie_gbps * 1e6);
  }
  [[nodiscard]] double download_ms(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / (pcie_gbps * 1e6);
  }
  // Tree + points up, results back. `launches` is the number of kernel
  // launches the bytes were shipped across: a multi-timestep run pays the
  // launch overhead once per step, a batched multi-kernel run pays it
  // once for the whole batch (upload_ms already includes one).
  [[nodiscard]] double round_trip_ms(std::uint64_t up_bytes,
                                     std::uint64_t down_bytes,
                                     int launches = 1) const {
    return static_cast<double>(launches - 1) * launch_overhead_ms +
           upload_ms(up_bytes) + download_ms(down_bytes);
  }
};

}  // namespace tt
