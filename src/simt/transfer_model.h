// Host <-> device transfer model (paper section 5.2: "we must also copy
// any data to and from the GPU that is live-in and -out of the point
// loop", plus the linearized tree upload before the kernel launch).
//
// The paper's Table 1 reports traversal time only; this model lets the
// harness additionally report end-to-end numbers so users can judge when
// the offload amortizes. PCIe 2.0 x16, the C2070's bus: ~6 GB/s effective.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace tt {

// One pipelined (double-buffered) transfer+compute timeline: the upload is
// split into `chunks` pieces and copy-in of chunk k+1 overlaps compute of
// chunk k, so part of the bus time hides under the kernel. overlap_ms is
// the hidden part, exposed_ms the transfer that still extends the
// timeline; total_ms == exposed_ms + compute_ms by construction.
struct PipelinedTransfer {
  std::size_t chunks = 1;
  double copy_in_ms = 0;   // upload bus time (launch overhead excluded)
  double copy_out_ms = 0;  // download bus time
  double compute_ms = 0;
  double overlap_ms = 0;   // copy-in hidden under compute
  double exposed_ms = 0;   // overhead + copy_in + copy_out - overlap
  double total_ms = 0;     // exposed + compute
};

struct TransferModel {
  double pcie_gbps = 6.0;       // effective host<->device throughput
  double launch_overhead_ms = 0.01;  // per kernel launch

  [[nodiscard]] double upload_ms(std::uint64_t bytes) const {
    return launch_overhead_ms + static_cast<double>(bytes) / (pcie_gbps * 1e6);
  }
  [[nodiscard]] double download_ms(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / (pcie_gbps * 1e6);
  }
  // Tree + points up, results back. `launches` is the number of kernel
  // launches the bytes were shipped across: a multi-timestep run pays the
  // launch overhead once per step, a batched multi-kernel run pays it
  // once for the whole batch (upload_ms already includes one).
  [[nodiscard]] double round_trip_ms(std::uint64_t up_bytes,
                                     std::uint64_t down_bytes,
                                     int launches = 1) const {
    return static_cast<double>(launches - 1) * launch_overhead_ms +
           upload_ms(up_bytes) + download_ms(down_bytes);
  }

  // Pipelined mode (multi-device sharding): the upload is strip-mined into
  // `chunks` equal pieces and chunk k+1's copy-in overlaps chunk k's
  // compute. With per-chunk upload u and compute c the makespan is
  //   overhead + u + (chunks-1) * max(u, c) + c + copy_out
  // which algebraically equals the single-shot round trip plus compute
  // minus (chunks-1) * min(u, c) -- that difference is overlap_ms. The
  // download stays synchronous (results exist only after the last chunk).
  // chunks <= 1 degrades exactly to round_trip_ms(up, down, 1) + compute:
  // the single-shot path is byte-identical.
  [[nodiscard]] PipelinedTransfer pipelined_round_trip(
      std::uint64_t up_bytes, std::uint64_t down_bytes, double compute_ms,
      std::size_t chunks) const {
    PipelinedTransfer p;
    p.chunks = chunks < 1 ? 1 : chunks;
    p.copy_in_ms = static_cast<double>(up_bytes) / (pcie_gbps * 1e6);
    p.copy_out_ms = download_ms(down_bytes);
    p.compute_ms = compute_ms;
    if (p.chunks > 1) {
      const double u = p.copy_in_ms / static_cast<double>(p.chunks);
      const double c = compute_ms / static_cast<double>(p.chunks);
      p.overlap_ms = static_cast<double>(p.chunks - 1) * std::min(u, c);
    }
    p.exposed_ms =
        launch_overhead_ms + p.copy_in_ms + p.copy_out_ms - p.overlap_ms;
    p.total_ms = p.exposed_ms + compute_ms;
    return p;
  }
};

}  // namespace tt
