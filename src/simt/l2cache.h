// Set-associative LRU cache model for the device L2.
//
// Each simulated warp owns a private slice of the shared L2 (capacity
// divided by the number of resident warps); this keeps warp simulations
// independent and deterministic under the host's OpenMP scheduling while
// still capturing the reuse that makes repeated upper-tree visits cheap.
#pragma once

#include <cstdint>
#include <vector>

namespace tt {

class L2Cache {
 public:
  // capacity_bytes is rounded down to a power-of-two set count.
  L2Cache(std::size_t capacity_bytes, int line_bytes, int assoc);

  // True on hit. Misses install the line (allocate-on-read).
  bool access(std::uint64_t addr);

  [[nodiscard]] std::size_t num_sets() const { return sets_; }
  [[nodiscard]] int assoc() const { return assoc_; }
  void clear();

 private:
  struct Way {
    std::uint64_t tag = ~std::uint64_t{0};
    std::uint64_t lru = 0;
  };
  std::size_t sets_;
  int line_bytes_;
  int assoc_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_;  // [set * assoc_ + w]
};

}  // namespace tt
