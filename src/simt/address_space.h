// Simulated GPU global address space.
//
// Device-resident arrays (split node structs, point SoA planes, interleaved
// rope stacks) register here and get non-overlapping base addresses; the
// coalescing model then works on real byte addresses, exactly as the
// hardware's memory controller would see them.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace tt {

using BufferId = std::int32_t;

class GpuAddressSpace {
 public:
  BufferId register_buffer(std::string name, std::uint64_t elem_bytes,
                           std::uint64_t n_elems) {
    if (elem_bytes == 0) throw std::invalid_argument("zero-size element");
    Buffer b;
    b.name = std::move(name);
    b.elem_bytes = elem_bytes;
    b.n_elems = n_elems;
    // 256-byte alignment, matching cudaMalloc guarantees.
    b.base = (next_ + 255) & ~std::uint64_t{255};
    next_ = b.base + elem_bytes * n_elems;
    buffers_.push_back(std::move(b));
    return static_cast<BufferId>(buffers_.size() - 1);
  }

  // Idempotent variant: repeated launches reuse their scratch allocations
  // (stack arenas, rope tables) instead of leaking fresh address ranges --
  // which also keeps back-to-back simulations bit-deterministic.
  BufferId ensure_buffer(const std::string& name, std::uint64_t elem_bytes,
                         std::uint64_t n_elems) {
    for (std::size_t i = 0; i < buffers_.size(); ++i) {
      const Buffer& b = buffers_[i];
      if (b.name == name && b.elem_bytes == elem_bytes &&
          b.n_elems >= n_elems)
        return static_cast<BufferId>(i);
    }
    return register_buffer(name, elem_bytes, n_elems);
  }

  [[nodiscard]] std::uint64_t addr(BufferId b, std::uint64_t index) const {
    const Buffer& buf = buffers_[static_cast<std::size_t>(b)];
    return buf.base + index * buf.elem_bytes;
  }
  [[nodiscard]] std::uint64_t elem_bytes(BufferId b) const {
    return buffers_[static_cast<std::size_t>(b)].elem_bytes;
  }
  [[nodiscard]] const std::string& name(BufferId b) const {
    return buffers_[static_cast<std::size_t>(b)].name;
  }
  [[nodiscard]] std::size_t num_buffers() const { return buffers_.size(); }
  [[nodiscard]] std::uint64_t footprint_bytes() const { return next_; }

 private:
  struct Buffer {
    std::string name;
    std::uint64_t base = 0;
    std::uint64_t elem_bytes = 0;
    std::uint64_t n_elems = 0;
  };
  std::vector<Buffer> buffers_;
  std::uint64_t next_ = 0;
};

}  // namespace tt
