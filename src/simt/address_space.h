// Simulated GPU global address space.
//
// Device-resident arrays (split node structs, point SoA planes, interleaved
// rope stacks) register here and get non-overlapping base addresses; the
// coalescing model then works on real byte addresses, exactly as the
// hardware's memory controller would see them.
//
// Buffers may carry per-element *field metadata* ({name, offset, bytes}
// spans inside one element): the memory-attribution layer
// (simt/memory_attr.h, charged from WarpMemory::commit) uses it to split
// each 128-byte transaction's traffic across the fields it overlaps, which
// is what makes the paper's section-5 usage-based struct splitting
// (nodes0/nodes1) measurable instead of argued.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace tt {

using BufferId = std::int32_t;

// One named byte span inside a buffer element. Fields must be disjoint and
// in-bounds; they need not cover the whole element (uncovered bytes are
// attributed to an implicit "(other)" share by the attribution layer).
struct BufferField {
  std::string name;
  std::uint32_t offset = 0;
  std::uint32_t bytes = 0;
};

class GpuAddressSpace {
 public:
  BufferId register_buffer(std::string name, std::uint64_t elem_bytes,
                           std::uint64_t n_elems) {
    return register_buffer(std::move(name), elem_bytes, n_elems, {});
  }

  // Registration with field metadata. Throws when a field is empty, leaves
  // the element, or overlaps another field -- a wrong field map would make
  // the per-field attribution silently misleading, so it fails loudly.
  BufferId register_buffer(std::string name, std::uint64_t elem_bytes,
                           std::uint64_t n_elems,
                           std::vector<BufferField> fields) {
    if (elem_bytes == 0) throw std::invalid_argument("zero-size element");
    validate_fields(name, elem_bytes, fields);
    Buffer b;
    b.name = std::move(name);
    b.elem_bytes = elem_bytes;
    b.n_elems = n_elems;
    b.fields = std::move(fields);
    // 256-byte alignment, matching cudaMalloc guarantees.
    b.base = (next_ + 255) & ~std::uint64_t{255};
    next_ = b.base + elem_bytes * n_elems;
    buffers_.push_back(std::move(b));
    return static_cast<BufferId>(buffers_.size() - 1);
  }

  // Idempotent variant: repeated launches reuse their scratch allocations
  // (stack arenas, rope tables) instead of leaking fresh address ranges --
  // which also keeps back-to-back simulations bit-deterministic. Matching
  // scans newest-first: when a name was re-registered at a larger size
  // (a new logical generation), a later smaller request must resolve to
  // that latest generation, not to the abandoned first one -- per-field
  // and per-buffer attribution keys off the buffer a launch actually
  // addresses.
  BufferId ensure_buffer(const std::string& name, std::uint64_t elem_bytes,
                         std::uint64_t n_elems) {
    return ensure_buffer(name, elem_bytes, n_elems, {});
  }

  // ensure_buffer with field metadata; `fields` only applies when the call
  // registers (a reused generation keeps its original field map).
  BufferId ensure_buffer(const std::string& name, std::uint64_t elem_bytes,
                         std::uint64_t n_elems,
                         std::vector<BufferField> fields) {
    for (std::size_t i = buffers_.size(); i-- > 0;) {
      const Buffer& b = buffers_[i];
      if (b.name == name && b.elem_bytes == elem_bytes &&
          b.n_elems >= n_elems)
        return static_cast<BufferId>(i);
    }
    return register_buffer(name, elem_bytes, n_elems, std::move(fields));
  }

  [[nodiscard]] std::uint64_t addr(BufferId b, std::uint64_t index) const {
    const Buffer& buf = buffers_[static_cast<std::size_t>(b)];
    return buf.base + index * buf.elem_bytes;
  }
  [[nodiscard]] std::uint64_t elem_bytes(BufferId b) const {
    return buffers_[static_cast<std::size_t>(b)].elem_bytes;
  }
  [[nodiscard]] const std::string& name(BufferId b) const {
    return buffers_[static_cast<std::size_t>(b)].name;
  }
  [[nodiscard]] const std::vector<BufferField>& fields(BufferId b) const {
    return buffers_[static_cast<std::size_t>(b)].fields;
  }
  [[nodiscard]] std::size_t num_buffers() const { return buffers_.size(); }
  [[nodiscard]] std::uint64_t footprint_bytes() const { return next_; }

  // The buffer whose live extent [base, base + elem_bytes * n_elems)
  // contains `a`, or -1 (alignment padding, or an address no registration
  // covers). Bases are strictly increasing in registration order, so this
  // is a binary search. Because bases are 256-byte aligned and transactions
  // are 128 bytes, a 128-byte segment never spans two buffers' live bytes:
  // the segment containing a buffer's first byte starts exactly at its
  // base -- so attributing a whole segment by its start address is exact.
  [[nodiscard]] BufferId buffer_at(std::uint64_t a) const {
    auto it = std::upper_bound(
        buffers_.begin(), buffers_.end(), a,
        [](std::uint64_t x, const Buffer& b) { return x < b.base; });
    if (it == buffers_.begin()) return -1;
    --it;
    if (a >= it->base + it->elem_bytes * it->n_elems) return -1;
    return static_cast<BufferId>(it - buffers_.begin());
  }

  // Bytes of field `f` of buffer `b` overlapped by the absolute byte range
  // [lo, hi). Closed form over whole elements plus the partial head/tail,
  // so the per-segment attribution charge stays O(#fields). The range is
  // clamped to the buffer's live extent.
  [[nodiscard]] std::uint64_t field_overlap(BufferId b, std::size_t f,
                                            std::uint64_t lo,
                                            std::uint64_t hi) const {
    const Buffer& buf = buffers_[static_cast<std::size_t>(b)];
    const BufferField& fld = buf.fields[f];
    const std::uint64_t end = buf.base + buf.elem_bytes * buf.n_elems;
    lo = std::max(lo, buf.base);
    hi = std::min(hi, end);
    if (lo >= hi) return 0;
    const std::uint64_t E = buf.elem_bytes;
    const std::uint64_t ka = (lo - buf.base) / E, ra = (lo - buf.base) % E;
    const std::uint64_t kb = (hi - 1 - buf.base) / E;
    const std::uint64_t rb = hi - buf.base - kb * E;  // in (0, E]
    if (ka == kb) return prefix_bytes(fld, rb) - prefix_bytes(fld, ra);
    return (fld.bytes - prefix_bytes(fld, ra)) + (kb - ka - 1) * fld.bytes +
           prefix_bytes(fld, rb);
  }

 private:
  // Bytes of `fld` inside the element prefix [0, x).
  [[nodiscard]] static std::uint64_t prefix_bytes(const BufferField& fld,
                                                  std::uint64_t x) {
    if (x <= fld.offset) return 0;
    return std::min<std::uint64_t>(x - fld.offset, fld.bytes);
  }

  static void validate_fields(const std::string& name,
                              std::uint64_t elem_bytes,
                              const std::vector<BufferField>& fields) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
    for (const BufferField& f : fields) {
      if (f.bytes == 0)
        throw std::invalid_argument("buffer '" + name + "': empty field '" +
                                    f.name + "'");
      if (static_cast<std::uint64_t>(f.offset) + f.bytes > elem_bytes)
        throw std::invalid_argument("buffer '" + name + "': field '" +
                                    f.name + "' leaves the element");
      spans.emplace_back(f.offset, static_cast<std::uint64_t>(f.offset) +
                                       f.bytes);
    }
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i)
      if (spans[i].first < spans[i - 1].second)
        throw std::invalid_argument("buffer '" + name +
                                    "': overlapping fields");
  }

  struct Buffer {
    std::string name;
    std::uint64_t base = 0;
    std::uint64_t elem_bytes = 0;
    std::uint64_t n_elems = 0;
    std::vector<BufferField> fields;
  };
  std::vector<Buffer> buffers_;
  std::uint64_t next_ = 0;
};

}  // namespace tt
