// Per-warp memory front end: lanes record the addresses their current
// instruction touches, commit() groups them into 128-byte transactions
// (replaying the load once per extra access when lanes need different
// numbers of elements, as the hardware serializes divergent access counts),
// filters them through the warp's L2 slice, and charges the stats.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "simt/address_space.h"
#include "simt/coalescing.h"
#include "simt/device_config.h"
#include "simt/kernel_stats.h"
#include "simt/l2cache.h"
#include "simt/smem_cache.h"

namespace tt {

class WarpMemory {
 public:
  // `smem_cache` (stackless variants only) sits in front of the L2 for
  // node-buffer transactions; null means no cache modelled.
  WarpMemory(const GpuAddressSpace& space, const DeviceConfig& cfg,
             L2Cache* l2, KernelStats& stats,
             const SmemNodeCache* smem_cache = nullptr)
      : space_(&space), cfg_(&cfg), l2_(l2), stats_(&stats),
        smem_cache_(smem_cache) {}

  // Record that `lane` reads element `idx` of `buf` during the current
  // warp-wide load group. A lane may record several accesses to the same
  // buffer (e.g. scanning a leaf bucket); each rank k across lanes becomes
  // one replayed load instruction.
  void lane_load(int lane, BufferId buf, std::uint64_t idx) {
    pending_.push_back(Pending{buf, space_->addr(buf, idx),
                               static_cast<std::uint32_t>(space_->elem_bytes(buf)),
                               static_cast<std::uint16_t>(lane), false});
  }

  // Raw-address variant for addresses no registration covers (tests,
  // cache probes). Grouped with stack traffic and attributed "(unmapped)".
  void lane_load_raw(int lane, std::uint64_t addr, std::uint32_t bytes) {
    pending_.push_back(Pending{kRawBuf, addr, bytes,
                               static_cast<std::uint16_t>(lane), true});
  }

  // Policy-facing entry point for rope-stack / call-frame traffic: the
  // stack policies (core/stack_policy.h) own the address computation and
  // record their push/pop/spill bytes through this, so stack accounting is
  // recognizable at the call site. The pending entry carries the *real*
  // registered BufferId of the arena the address lands in (rope_stack /
  // local_frames, resolved by GpuAddressSpace::buffer_at), so attribution
  // reports stack traffic by name like every other buffer -- but commit()
  // still groups it under the dedicated stack key, preserving the exact
  // transaction grouping (and hence the stateful L2 access order) the
  // golden fixtures pin.
  void lane_stack_traffic(int lane, std::uint64_t addr, std::uint32_t bytes) {
    pending_.push_back(Pending{space_->buffer_at(addr), addr, bytes,
                               static_cast<std::uint16_t>(lane), true});
  }

  // Shared-load elision (fused kernels, core/kernel_compose.h): when on,
  // commit() serves duplicate (buffer, address, lane) accesses within one
  // window once, counting the rest as shared_loads_elided. Stack traffic
  // is never elided: pushes are distinct writes even when a slot address
  // repeats. Off by default so monolithic kernels' accounting is
  // untouched.
  void set_shared_load_elision(bool on) { shared_load_elision_ = on; }

  // Issue the recorded accesses and clear. Returns DRAM transactions issued.
  std::uint64_t commit();

  [[nodiscard]] const GpuAddressSpace& space() const { return *space_; }

 private:
  static constexpr BufferId kRawBuf = -2;
  // commit()'s group/sort key: stack traffic keeps the historical -2 key
  // regardless of the arena id it attributes to, so transaction grouping
  // is unchanged by attribution.
  static constexpr BufferId kStackGroup = -2;
  struct Pending {
    BufferId buf;   // attribution identity (may be < 0: unmapped raw)
    std::uint64_t addr;
    std::uint32_t bytes;
    std::uint16_t lane;
    bool stack;     // group under kStackGroup; never elided
  };
  [[nodiscard]] static BufferId group_key(const Pending& p) {
    return p.stack ? kStackGroup : p.buf;
  }
  const GpuAddressSpace* space_;
  const DeviceConfig* cfg_;
  L2Cache* l2_;  // may be null (L2 modelling off)
  KernelStats* stats_;
  const SmemNodeCache* smem_cache_;  // may be null (no cache modelled)
  bool shared_load_elision_ = false;
  std::vector<Pending> pending_;
  std::vector<LaneAccess> group_;
  std::vector<std::uint64_t> segs_;
  std::vector<std::uint32_t> elide_order_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ideal_scratch_;
};

}  // namespace tt
