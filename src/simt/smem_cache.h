// Modelled shared-memory top-of-tree node cache for the stackless
// variants (core/variant.h kStackless* / kIndexWalk).
//
// With no per-warp traversal stack, the shared-memory bytes the WarpStack
// record used to occupy are free; this model repurposes them as a
// read-only cache of the first `cached_nodes` elements of each node
// buffer. Under the left-biased DFS linearization low node ids ARE the
// top of the tree, which every traversal crosses, so a prefix cache is
// the best static use of the bytes.
//
// The cache sits in front of the L2 in WarpMemory::commit: a 128-byte
// transaction whose start address falls inside a cached prefix is
// serviced at shared-memory latency (c_smem, charged to mem_stall) and
// never reaches L2 or DRAM; a transaction inside a node buffer but past
// the prefix counts as a miss and takes the normal L2/DRAM path; traffic
// to any other buffer (queries, leaf points, ropes) bypasses the cache
// entirely and is not counted either way. Hit rate = hits/(hits+misses)
// is therefore a property of the node-buffer traffic alone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simt/address_space.h"

namespace tt {

class SmemNodeCache {
 public:
  enum class Lookup : std::uint8_t { kHit, kMiss, kBypass };

  // Fronts the first min(n_nodes, capacity_bytes / bytes_per_node)
  // elements of each buffer in `node_bufs`, where bytes_per_node sums the
  // buffers' element sizes (a node's split struct occupies one slot in
  // every plane). All buffers must already be registered in `space`.
  [[nodiscard]] static SmemNodeCache build(const GpuAddressSpace& space,
                                           const std::vector<BufferId>& node_bufs,
                                           std::size_t n_nodes,
                                           std::size_t capacity_bytes) {
    SmemNodeCache c;
    c.capacity_bytes_ = capacity_bytes;
    std::uint64_t bytes_per_node = 0;
    for (BufferId b : node_bufs) bytes_per_node += space.elem_bytes(b);
    if (bytes_per_node > 0)
      c.cached_nodes_ = std::min<std::size_t>(
          n_nodes, static_cast<std::size_t>(capacity_bytes / bytes_per_node));
    for (BufferId b : node_bufs) {
      Range r;
      r.begin = space.addr(b, 0);
      r.cached_end = r.begin + c.cached_nodes_ * space.elem_bytes(b);
      r.end = r.begin + n_nodes * space.elem_bytes(b);
      c.ranges_.push_back(r);
    }
    return c;
  }

  // Classify one transaction by its start byte address.
  [[nodiscard]] Lookup lookup(std::uint64_t seg_addr) const {
    for (const Range& r : ranges_) {
      if (seg_addr < r.begin || seg_addr >= r.end) continue;
      return seg_addr < r.cached_end ? Lookup::kHit : Lookup::kMiss;
    }
    return Lookup::kBypass;
  }

  [[nodiscard]] std::size_t cached_nodes() const { return cached_nodes_; }
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Range {
    std::uint64_t begin = 0;       // buffer base
    std::uint64_t cached_end = 0;  // one past the cached prefix
    std::uint64_t end = 0;         // one past the whole buffer
  };
  std::vector<Range> ranges_;
  std::size_t cached_nodes_ = 0;
  std::size_t capacity_bytes_ = 0;
};

}  // namespace tt
