// Event counts -> simulated time.
//
// Dual-bottleneck (roofline-style) model: with tens of resident warps per
// SM, latency is hidden and the kernel is limited either by warp-instruction
// issue (each SM retires about one warp-wide instruction per cycle) or by
// DRAM throughput. Divergence and serialization show up as extra
// instruction cycles; lost coalescing shows up as extra transactions.
#pragma once

#include <cstddef>
#include <span>

#include "simt/device_config.h"
#include "simt/kernel_stats.h"

namespace tt {

struct TimeBreakdown {
  double compute_ms = 0;
  double memory_ms = 0;
  double total_ms = 0;  // max of the two
  bool memory_bound = false;
  // Makespan / ideal-balance ratio when per-warp cycles were provided
  // (1.0 = perfectly balanced warps).
  double imbalance = 1.0;
};

// `n_warps` caps the SMs that can be kept busy (a grid smaller than the SM
// count cannot use the whole chip); 0 means "assume a full grid".
TimeBreakdown estimate_time(const KernelStats& stats, const DeviceConfig& cfg,
                            std::size_t n_warps = 0);

// Imbalance-aware variant (the paper's Geocity discussion: "traversals in
// a warp may have very different lengths, leading to load imbalance and
// hence poor performance", section 6.2). Warps are assigned to SMs in
// launch order (hardware block scheduling); the compute time becomes the
// slowest SM's share instead of the perfectly-balanced average.
TimeBreakdown estimate_time_balanced(std::span<const double> per_warp_cycles,
                                     const KernelStats& stats,
                                     const DeviceConfig& cfg);

}  // namespace tt
