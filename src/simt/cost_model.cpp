#include "simt/cost_model.h"

#include <algorithm>
#include <vector>

namespace tt {

TimeBreakdown estimate_time(const KernelStats& stats, const DeviceConfig& cfg,
                            std::size_t n_warps) {
  TimeBreakdown t;
  // instr_cycles accumulates per-warp serial cycles across all warps; the
  // device retires warps across num_sms SMs in parallel (resident warps
  // overlap to hide latency, but issue bandwidth is one warp-instruction
  // per SM-cycle, which the per-cycle costs already express). A grid with
  // fewer warps than SMs cannot occupy the whole chip.
  double usable_sms = static_cast<double>(cfg.num_sms);
  if (n_warps > 0 && n_warps < static_cast<std::size_t>(cfg.num_sms))
    usable_sms = static_cast<double>(n_warps);
  double cycles_per_ms = cfg.clock_ghz * 1e6;
  t.compute_ms = stats.instr_cycles / (usable_sms * cycles_per_ms);
  double bytes_per_ms = cfg.mem_bandwidth_gbps * 1e6;  // 1 GB/s = 1e6 B/ms
  t.memory_ms = static_cast<double>(stats.dram_bytes) / bytes_per_ms;
  t.total_ms = std::max(t.compute_ms, t.memory_ms);
  t.memory_bound = t.memory_ms > t.compute_ms;
  return t;
}

TimeBreakdown estimate_time_balanced(std::span<const double> per_warp_cycles,
                                     const KernelStats& stats,
                                     const DeviceConfig& cfg) {
  TimeBreakdown t = estimate_time(stats, cfg, per_warp_cycles.size());
  if (per_warp_cycles.empty()) return t;

  // Hardware block scheduling: warps land on SMs round-robin in launch
  // order; within an SM, resident warps interleave so the SM finishes when
  // the sum of its warps' cycles is retired.
  std::vector<double> sm_cycles(static_cast<std::size_t>(cfg.num_sms), 0.0);
  for (std::size_t w = 0; w < per_warp_cycles.size(); ++w)
    sm_cycles[w % sm_cycles.size()] += per_warp_cycles[w];
  double makespan = 0, total = 0;
  for (double c : sm_cycles) {
    makespan = std::max(makespan, c);
    total += c;
  }
  double busy_sms = std::min<double>(
      static_cast<double>(cfg.num_sms),
      static_cast<double>(per_warp_cycles.size()));
  double ideal = total / busy_sms;
  t.imbalance = ideal > 0 ? makespan / ideal : 1.0;

  double cycles_per_ms = cfg.clock_ghz * 1e6;
  t.compute_ms = makespan / cycles_per_ms;
  t.total_ms = std::max(t.compute_ms, t.memory_ms);
  t.memory_bound = t.memory_ms > t.compute_ms;
  return t;
}

}  // namespace tt
