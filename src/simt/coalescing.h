// Memory-coalescing model (paper section 2.2): threads of a warp achieve
// full throughput only when their accesses fall in the same 128-byte
// segments; the hardware groups a warp's addresses into as few segment
// transactions as possible. `segments_touched` reproduces that grouping.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tt {

struct LaneAccess {
  std::uint64_t addr = 0;
  std::uint32_t bytes = 0;
};

// Distinct `segment_bytes`-sized segments covered by the warp's accesses.
// Out-of-line so the scratch vector logic is shared; hot path is one sort
// over <= 32 entries. Appends touched segment ids to `segments_out`
// (cleared first) and returns the count.
std::size_t segments_touched(std::span<const LaneAccess> accesses,
                             std::uint32_t segment_bytes,
                             std::vector<std::uint64_t>& segments_out);

}  // namespace tt
