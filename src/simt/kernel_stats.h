// Event counters produced by the software SIMT machine. All the paper's
// quantitative claims (coalescing benefit, work expansion, divergence
// penalty) reduce to these counts; the cost model turns them into time.
#pragma once

#include <array>
#include <cstdint>

#include "simt/memory_attr.h"

namespace tt {

// Cycle-attribution buckets: every cycle charged to instr_cycles is tagged
// with the executor layer that spent it, so the profiler (obs/profile.h)
// can split a run's compute time per StackPolicy / ConvergencePolicy
// without re-instrumenting the executors. The taxonomy follows the charge
// sites, not the variants -- each variant simply lights up a different
// subset (DESIGN.md section 7).
enum class CycleBucket : std::uint8_t {
  kVisit = 0,     // node-visit work (c_visit, all convergence policies)
  kStep = 1,      // traversal-step control (c_step per warp step)
  kVote = 2,      // warp ballots / majority votes (c_vote)
  kCall = 3,      // call/return spills of the recursive variants (c_call)
  kStack = 4,     // rope-stack maintenance (c_smem per push / shared-mem op)
  kMemStall = 5,  // L2-serviced transaction issue stalls (c_l2hit)
  kSelect = 6,    // auto_select sampling charged at dispatch (section 4.4)
};
inline constexpr std::size_t kNumCycleBuckets = 7;

constexpr const char* cycle_bucket_name(CycleBucket b) {
  switch (b) {
    case CycleBucket::kVisit: return "visit";
    case CycleBucket::kStep: return "step";
    case CycleBucket::kVote: return "vote";
    case CycleBucket::kCall: return "call";
    case CycleBucket::kStack: return "stack";
    case CycleBucket::kMemStall: return "mem_stall";
    case CycleBucket::kSelect: return "select";
  }
  return "?";
}

struct KernelStats {
  // Memory system.
  std::uint64_t load_instructions = 0;   // warp-wide load issues
  std::uint64_t dram_transactions = 0;   // 128B segments missing L2
  std::uint64_t l2_hit_transactions = 0;
  std::uint64_t dram_bytes = 0;

  // Execution.
  double instr_cycles = 0;        // accumulated warp-cycles (compute side)
  std::uint64_t warp_steps = 0;   // traversal-loop iterations executed
  std::uint64_t lane_visits = 0;  // per-lane node visits (active lanes only)
  std::uint64_t warp_pops = 0;    // rope-stack pops at warp granularity
  std::uint64_t calls = 0;        // recursive variant: call+return pairs
  std::uint64_t votes = 0;        // warp ballots / majority votes

  // Divergence: mean active lanes per step = active_lane_sum / warp_steps.
  std::uint64_t active_lane_sum = 0;

  std::uint64_t peak_stack_entries = 0;  // deepest rope stack seen

  // Shared-memory node cache (stackless variants only, simt/smem_cache.h):
  // 128B node-buffer segments serviced from the cache vs falling through
  // to L2/DRAM. Both stay zero when no cache is attached.
  std::uint64_t smem_cache_hits = 0;
  std::uint64_t smem_cache_misses = 0;

  // Fused kernels (core/kernel_compose.h): duplicate per-lane node loads
  // served once per commit window because the constituents share node
  // records. Each elided load would otherwise have been (part of) a load
  // instruction plus its transactions; zero for monolithic kernels.
  std::uint64_t shared_loads_elided = 0;

  // Per-buffer / per-field split of the memory counters above, charged
  // segment by segment in WarpMemory::commit (simt/memory_attr.h). Always
  // collected -- the invariants (row sums == the aggregate counters here,
  // exact) are part of the machine's accounting contract, pinned by
  // tests/core/variant_fuzz_test.cpp and tools/json_validate; reports gate
  // the *export* behind --profile instead.
  MemoryAttribution memory;

  // Per-bucket split of instr_cycles. Invariant (exact, not approximate):
  // the bucket sum equals instr_cycles, because charge() is the only way
  // cycles enter either side and every per-event cost constant is an
  // integer-valued double -- integer sums are exact in binary floating
  // point regardless of accumulation order. Pinned by
  // tests/core/variant_fuzz_test.cpp and tools/json_validate.
  std::array<double, kNumCycleBuckets> cycle_buckets{};

  // -------------------------------------------------------------------
  // Policy-facing accounting API. The warp engine and its stack /
  // convergence policies (core/warp_engine.h, core/stack_policy.h,
  // core/convergence_policy.h) charge events through these named
  // operations instead of poking fields, so every variant's bookkeeping
  // reads as the machine event it models. Raw fields stay public for
  // merging and export. Every operation that spends cycles routes through
  // charge(), which tags the spend with its attribution bucket.
  // -------------------------------------------------------------------
  void charge(CycleBucket b, double cycles) {
    instr_cycles += cycles;
    cycle_buckets[static_cast<std::size_t>(b)] += cycles;
  }
  void note_warp_step(double step_cycles) {
    ++warp_steps;
    charge(CycleBucket::kStep, step_cycles);
  }
  void note_active_lanes(int active) {
    active_lane_sum += static_cast<std::uint64_t>(active);
  }
  void note_lane_visit() { ++lane_visits; }
  void note_warp_pop() { ++warp_pops; }
  void note_vote(double vote_cycles) {
    ++votes;
    charge(CycleBucket::kVote, vote_cycles);
  }
  void note_call(double call_cycles) {
    ++calls;
    charge(CycleBucket::kCall, call_cycles);
  }
  // Named cycle charges for the sites that used to pass untagged cycles:
  // visit work (union_visit_and_vote and the per-step visit phases),
  // rope-stack maintenance (StackPolicy pushes / shared-memory ops),
  // divergent-call-path work (rec_nolockstep's per-step c_call), memory
  // stalls (L2-hit transaction issue) and the auto_select sampling charge.
  void note_visit_cycles(double cycles) { charge(CycleBucket::kVisit, cycles); }
  void note_stack_cycles(double cycles) { charge(CycleBucket::kStack, cycles); }
  void note_call_cycles(double cycles) { charge(CycleBucket::kCall, cycles); }
  void note_mem_stall(double cycles) { charge(CycleBucket::kMemStall, cycles); }
  void note_sampling_cycles(double cycles) {
    charge(CycleBucket::kSelect, cycles);
  }
  void note_stack_depth(std::uint64_t entries) {
    if (entries > peak_stack_entries) peak_stack_entries = entries;
  }
  void note_smem_cache_hit() { ++smem_cache_hits; }
  void note_smem_cache_miss() { ++smem_cache_misses; }
  void note_shared_load_elided() { ++shared_loads_elided; }

  [[nodiscard]] double bucket_cycles(CycleBucket b) const {
    return cycle_buckets[static_cast<std::size_t>(b)];
  }
  [[nodiscard]] double bucket_sum() const {
    double s = 0;
    for (double v : cycle_buckets) s += v;
    return s;
  }

  void merge(const KernelStats& o) {
    load_instructions += o.load_instructions;
    dram_transactions += o.dram_transactions;
    l2_hit_transactions += o.l2_hit_transactions;
    dram_bytes += o.dram_bytes;
    instr_cycles += o.instr_cycles;
    warp_steps += o.warp_steps;
    lane_visits += o.lane_visits;
    warp_pops += o.warp_pops;
    calls += o.calls;
    votes += o.votes;
    active_lane_sum += o.active_lane_sum;
    if (o.peak_stack_entries > peak_stack_entries)
      peak_stack_entries = o.peak_stack_entries;
    smem_cache_hits += o.smem_cache_hits;
    smem_cache_misses += o.smem_cache_misses;
    shared_loads_elided += o.shared_loads_elided;
    memory.merge(o.memory);
    for (std::size_t b = 0; b < kNumCycleBuckets; ++b)
      cycle_buckets[b] += o.cycle_buckets[b];
  }
};

}  // namespace tt
