// Event counters produced by the software SIMT machine. All the paper's
// quantitative claims (coalescing benefit, work expansion, divergence
// penalty) reduce to these counts; the cost model turns them into time.
#pragma once

#include <cstdint>

namespace tt {

struct KernelStats {
  // Memory system.
  std::uint64_t load_instructions = 0;   // warp-wide load issues
  std::uint64_t dram_transactions = 0;   // 128B segments missing L2
  std::uint64_t l2_hit_transactions = 0;
  std::uint64_t dram_bytes = 0;

  // Execution.
  double instr_cycles = 0;        // accumulated warp-cycles (compute side)
  std::uint64_t warp_steps = 0;   // traversal-loop iterations executed
  std::uint64_t lane_visits = 0;  // per-lane node visits (active lanes only)
  std::uint64_t warp_pops = 0;    // rope-stack pops at warp granularity
  std::uint64_t calls = 0;        // recursive variant: call+return pairs
  std::uint64_t votes = 0;        // warp ballots / majority votes

  // Divergence: mean active lanes per step = active_lane_sum / warp_steps.
  std::uint64_t active_lane_sum = 0;

  std::uint64_t peak_stack_entries = 0;  // deepest rope stack seen

  // -------------------------------------------------------------------
  // Policy-facing accounting API. The warp engine and its stack /
  // convergence policies (core/warp_engine.h, core/stack_policy.h,
  // core/convergence_policy.h) charge events through these named
  // operations instead of poking fields, so every variant's bookkeeping
  // reads as the machine event it models. Raw fields stay public for
  // merging and export.
  // -------------------------------------------------------------------
  void note_warp_step(double step_cycles) {
    ++warp_steps;
    instr_cycles += step_cycles;
  }
  void note_active_lanes(int active) {
    active_lane_sum += static_cast<std::uint64_t>(active);
  }
  void note_lane_visit() { ++lane_visits; }
  void note_warp_pop() { ++warp_pops; }
  void note_vote(double vote_cycles) {
    ++votes;
    instr_cycles += vote_cycles;
  }
  void note_call(double call_cycles) {
    ++calls;
    instr_cycles += call_cycles;
  }
  void note_cycles(double cycles) { instr_cycles += cycles; }
  void note_stack_depth(std::uint64_t entries) {
    if (entries > peak_stack_entries) peak_stack_entries = entries;
  }

  void merge(const KernelStats& o) {
    load_instructions += o.load_instructions;
    dram_transactions += o.dram_transactions;
    l2_hit_transactions += o.l2_hit_transactions;
    dram_bytes += o.dram_bytes;
    instr_cycles += o.instr_cycles;
    warp_steps += o.warp_steps;
    lane_visits += o.lane_visits;
    warp_pops += o.warp_pops;
    calls += o.calls;
    votes += o.votes;
    active_lane_sum += o.active_lane_sum;
    if (o.peak_stack_entries > peak_stack_entries)
      peak_stack_entries = o.peak_stack_entries;
  }
};

}  // namespace tt
