#include "simt/warp_memory.h"

#include <algorithm>

namespace tt {

std::uint64_t WarpMemory::commit() {
  if (pending_.empty()) return 0;
  std::uint64_t dram = 0;
  const auto tb = static_cast<std::uint32_t>(cfg_->transaction_bytes);

  // Shared-load elision (fused kernels): a lane that records the same
  // (buffer, address) twice in one window -- both constituents touching
  // the same node record -- is served by a single load. Keep the first
  // occurrence, drop the rest, count the drops. Stack traffic is never
  // deduplicated: stack pushes are distinct writes even when a slot
  // address repeats.
  if (shared_load_elision_) {
    elide_order_.clear();
    for (std::uint32_t k = 0; k < pending_.size(); ++k) elide_order_.push_back(k);
    std::sort(elide_order_.begin(), elide_order_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const Pending& pa = pending_[a];
                const Pending& pb = pending_[b];
                if (pa.buf != pb.buf) return pa.buf < pb.buf;
                if (pa.lane != pb.lane) return pa.lane < pb.lane;
                if (pa.addr != pb.addr) return pa.addr < pb.addr;
                return a < b;
              });
    // Mark duplicates by overwriting their buf with a tombstone, then
    // compact in original order so rank grouping below is unaffected.
    constexpr BufferId kElided = -3;
    std::size_t last_kept = 0;
    for (std::size_t k = 1; k < elide_order_.size(); ++k) {
      const Pending& prev = pending_[elide_order_[last_kept]];
      Pending& cur = pending_[elide_order_[k]];
      if (!cur.stack && !prev.stack && cur.buf == prev.buf &&
          cur.lane == prev.lane && cur.addr == prev.addr) {
        cur.buf = kElided;
        stats_->note_shared_load_elided();
      } else {
        last_kept = k;
      }
    }
    std::erase_if(pending_, [](const Pending& p) { return p.buf == kElided; });
    if (pending_.empty()) return 0;
  }

  // Process one (group, rank) pair at a time: rank k holds every lane's
  // k-th access to that group, matching how the hardware replays a load
  // when lanes iterate different trip counts. The group key is the buffer
  // id for ordinary loads and the dedicated stack key for stack traffic
  // (Pending::stack), which keeps the transaction grouping -- and hence
  // the stateful L2 access order -- independent of which arena a stack
  // address resolves to for attribution.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const Pending& a, const Pending& b) {
                     const BufferId ka = group_key(a);
                     const BufferId kb = group_key(b);
                     if (ka != kb) return ka < kb;
                     return a.lane < b.lane;
                   });

  // Minimal segments that could have served the group's bytes if packed
  // perfectly: ceil(union-of-intervals / transaction size). Always >= 1
  // for a non-empty group and <= the issued segment count (each issued
  // segment holds at most `tb` of the union), so per-buffer coalescing
  // efficiency (ideal / issued) lands in (0, 1].
  auto ideal_segments_of_group = [&]() -> std::uint64_t {
    ideal_scratch_.clear();
    for (const LaneAccess& a : group_)
      ideal_scratch_.emplace_back(a.addr, a.addr + a.bytes);
    std::sort(ideal_scratch_.begin(), ideal_scratch_.end());
    std::uint64_t bytes = 0, lo = 0, hi = 0;
    bool open = false;
    for (const auto& [s, e] : ideal_scratch_) {
      if (!open || s > hi) {
        if (open) bytes += hi - lo;
        lo = s;
        hi = e;
        open = true;
      } else {
        hi = std::max(hi, e);
      }
    }
    if (open) bytes += hi - lo;
    return (bytes + tb - 1) / tb;
  };

  // Attribution charge for one issued segment: the row of the owning
  // buffer takes the transaction outcome and its stall cycles; buffers
  // with field metadata additionally split the charge across fields by
  // byte overlap. Shares are k/tb with tb a power of two, so every
  // accumulated value is an exact dyadic rational and the table's sums
  // reconcile with the aggregate counters exactly.
  enum class Outcome { kSmemHit, kL2Hit, kDram };
  auto charge_segment = [&](BufferId sb, std::uint64_t lo, Outcome out,
                            bool smem_miss) {
    BufferTraffic& row = stats_->memory.row(sb, *space_);
    if (smem_miss) ++row.smem_cache_misses;
    double stall = 0;
    switch (out) {
      case Outcome::kSmemHit:
        ++row.smem_cache_hits;
        stall = cfg_->c_smem;
        break;
      case Outcome::kL2Hit:
        ++row.l2_hit_transactions;
        stall = cfg_->c_l2hit;
        break;
      case Outcome::kDram:
        ++row.dram_transactions;
        row.dram_bytes += tb;
        break;
    }
    row.mem_stall_cycles += stall;
    if (sb < 0 || row.fields.empty()) return;
    // row.fields mirrors space_->fields(sb) in order, plus the trailing
    // "(other)" share for unannotated bytes (intra-element padding and
    // the segment tail past the buffer's live extent).
    const std::uint64_t hi = lo + tb;
    std::uint64_t claimed = 0;
    const std::size_t nf = row.fields.size();
    for (std::size_t f = 0; f < nf; ++f) {
      const std::uint64_t ov = f + 1 < nf
                                   ? space_->field_overlap(sb, f, lo, hi)
                                   : tb - claimed;
      claimed += f + 1 < nf ? ov : 0;
      if (ov == 0) continue;
      FieldTraffic& ft = row.fields[f];
      const double share = static_cast<double>(ov) / static_cast<double>(tb);
      ft.transactions += share;
      switch (out) {
        case Outcome::kSmemHit: ft.smem_cache_hits += share; break;
        case Outcome::kL2Hit: ft.l2_hit += share; break;
        case Outcome::kDram:
          ft.dram += share;
          ft.dram_bytes += static_cast<double>(ov);
          break;
      }
      ft.mem_stall_cycles += stall * share;
    }
  };

  std::size_t i = 0;
  std::array<std::uint16_t, 64> seen_count{};  // accesses so far per lane
  while (i < pending_.size()) {
    const BufferId gkey = group_key(pending_[i]);
    std::size_t j = i;
    while (j < pending_.size() && group_key(pending_[j]) == gkey) ++j;

    // Determine ranks within this group.
    seen_count.fill(0);
    std::uint16_t max_rank = 0;
    for (std::size_t k = i; k < j; ++k) {
      std::uint16_t r = seen_count[pending_[k].lane]++;
      max_rank = std::max(max_rank, static_cast<std::uint16_t>(r + 1));
    }

    for (std::uint16_t rank = 0; rank < max_rank; ++rank) {
      group_.clear();
      seen_count.fill(0);
      for (std::size_t k = i; k < j; ++k) {
        if (seen_count[pending_[k].lane]++ == rank)
          group_.push_back(LaneAccess{pending_[k].addr, pending_[k].bytes});
      }
      if (group_.empty()) continue;
      ++stats_->load_instructions;
      segments_touched(group_, tb, segs_);

      // Group-level attribution: the load issue, its replay status and
      // the issued/ideal segment counts all land on the group's buffer
      // (for the stack group: the arena its first address resolves to).
      const BufferId group_attr =
          gkey >= 0 ? gkey : space_->buffer_at(group_[0].addr);
      {
        BufferTraffic& row = stats_->memory.row(group_attr, *space_);
        ++row.load_groups;
        if (rank > 0) ++row.replayed_loads;
        row.issued_segments += segs_.size();
        row.ideal_segments += ideal_segments_of_group();
      }

      for (std::uint64_t seg : segs_) {
        const std::uint64_t seg_addr =
            seg * static_cast<std::uint64_t>(cfg_->transaction_bytes);
        const BufferId sb =
            gkey >= 0 ? gkey : space_->buffer_at(seg_addr);
        // Shared-memory node cache (stackless variants): a hit is served
        // at shared-memory latency and never reaches L2 or DRAM.
        bool smem_miss = false;
        if (smem_cache_ != nullptr) {
          SmemNodeCache::Lookup c = smem_cache_->lookup(seg_addr);
          if (c == SmemNodeCache::Lookup::kHit) {
            stats_->note_smem_cache_hit();
            stats_->note_mem_stall(cfg_->c_smem);
            charge_segment(sb, seg_addr, Outcome::kSmemHit, false);
            continue;
          }
          if (c == SmemNodeCache::Lookup::kMiss) {
            stats_->note_smem_cache_miss();
            smem_miss = true;
          }
        }
        bool hit = l2_ != nullptr && l2_->access(seg_addr);
        if (hit) {
          ++stats_->l2_hit_transactions;
          stats_->note_mem_stall(cfg_->c_l2hit);
          charge_segment(sb, seg_addr, Outcome::kL2Hit, smem_miss);
        } else {
          ++stats_->dram_transactions;
          ++dram;
          stats_->dram_bytes +=
              static_cast<std::uint64_t>(cfg_->transaction_bytes);
          charge_segment(sb, seg_addr, Outcome::kDram, smem_miss);
        }
      }
    }
    i = j;
  }
  pending_.clear();
  return dram;
}

}  // namespace tt
