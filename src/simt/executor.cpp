#include "simt/warp_memory.h"

#include <algorithm>

namespace tt {

std::uint64_t WarpMemory::commit() {
  if (pending_.empty()) return 0;
  std::uint64_t dram = 0;

  // Process one (buffer, rank) group at a time: rank k holds every lane's
  // k-th access to that buffer, matching how the hardware replays a load
  // when lanes iterate different trip counts.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const Pending& a, const Pending& b) {
                     if (a.buf != b.buf) return a.buf < b.buf;
                     return a.lane < b.lane;
                   });

  std::size_t i = 0;
  std::array<std::uint16_t, 64> seen_count{};  // accesses so far per lane
  while (i < pending_.size()) {
    std::size_t j = i;
    while (j < pending_.size() && pending_[j].buf == pending_[i].buf) ++j;

    // Determine ranks within this buffer group.
    seen_count.fill(0);
    std::uint16_t max_rank = 0;
    for (std::size_t k = i; k < j; ++k) {
      std::uint16_t r = seen_count[pending_[k].lane]++;
      max_rank = std::max(max_rank, static_cast<std::uint16_t>(r + 1));
    }

    for (std::uint16_t rank = 0; rank < max_rank; ++rank) {
      group_.clear();
      seen_count.fill(0);
      for (std::size_t k = i; k < j; ++k) {
        if (seen_count[pending_[k].lane]++ == rank)
          group_.push_back(LaneAccess{pending_[k].addr, pending_[k].bytes});
      }
      if (group_.empty()) continue;
      ++stats_->load_instructions;
      segments_touched(group_, static_cast<std::uint32_t>(cfg_->transaction_bytes),
                       segs_);
      for (std::uint64_t seg : segs_) {
        const std::uint64_t seg_addr =
            seg * static_cast<std::uint64_t>(cfg_->transaction_bytes);
        // Shared-memory node cache (stackless variants): a hit is served
        // at shared-memory latency and never reaches L2 or DRAM.
        if (smem_cache_ != nullptr) {
          SmemNodeCache::Lookup c = smem_cache_->lookup(seg_addr);
          if (c == SmemNodeCache::Lookup::kHit) {
            stats_->note_smem_cache_hit();
            stats_->note_mem_stall(cfg_->c_smem);
            continue;
          }
          if (c == SmemNodeCache::Lookup::kMiss)
            stats_->note_smem_cache_miss();
        }
        bool hit = l2_ != nullptr && l2_->access(seg_addr);
        if (hit) {
          ++stats_->l2_hit_transactions;
          stats_->note_mem_stall(cfg_->c_l2hit);
        } else {
          ++stats_->dram_transactions;
          ++dram;
          stats_->dram_bytes +=
              static_cast<std::uint64_t>(cfg_->transaction_bytes);
        }
      }
    }
    i = j;
  }
  pending_.clear();
  return dram;
}

}  // namespace tt
