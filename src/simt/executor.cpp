#include "simt/warp_memory.h"

#include <algorithm>

namespace tt {

std::uint64_t WarpMemory::commit() {
  if (pending_.empty()) return 0;
  std::uint64_t dram = 0;

  // Shared-load elision (fused kernels): a lane that records the same
  // (buffer, address) twice in one window -- both constituents touching
  // the same node record -- is served by a single load. Keep the first
  // occurrence, drop the rest, count the drops. Raw stack traffic
  // (buf < 0) is never deduplicated: stack pushes are distinct writes
  // even when a slot address repeats.
  if (shared_load_elision_) {
    elide_order_.clear();
    for (std::uint32_t k = 0; k < pending_.size(); ++k) elide_order_.push_back(k);
    std::sort(elide_order_.begin(), elide_order_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const Pending& pa = pending_[a];
                const Pending& pb = pending_[b];
                if (pa.buf != pb.buf) return pa.buf < pb.buf;
                if (pa.lane != pb.lane) return pa.lane < pb.lane;
                if (pa.addr != pb.addr) return pa.addr < pb.addr;
                return a < b;
              });
    // Mark duplicates by overwriting their buf with a tombstone, then
    // compact in original order so rank grouping below is unaffected.
    constexpr BufferId kElided = -3;
    std::size_t last_kept = 0;
    for (std::size_t k = 1; k < elide_order_.size(); ++k) {
      const Pending& prev = pending_[elide_order_[last_kept]];
      Pending& cur = pending_[elide_order_[k]];
      if (cur.buf >= 0 && cur.buf == prev.buf && cur.lane == prev.lane &&
          cur.addr == prev.addr) {
        cur.buf = kElided;
        stats_->note_shared_load_elided();
      } else {
        last_kept = k;
      }
    }
    std::erase_if(pending_, [](const Pending& p) { return p.buf == kElided; });
    if (pending_.empty()) return 0;
  }

  // Process one (buffer, rank) group at a time: rank k holds every lane's
  // k-th access to that buffer, matching how the hardware replays a load
  // when lanes iterate different trip counts.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const Pending& a, const Pending& b) {
                     if (a.buf != b.buf) return a.buf < b.buf;
                     return a.lane < b.lane;
                   });

  std::size_t i = 0;
  std::array<std::uint16_t, 64> seen_count{};  // accesses so far per lane
  while (i < pending_.size()) {
    std::size_t j = i;
    while (j < pending_.size() && pending_[j].buf == pending_[i].buf) ++j;

    // Determine ranks within this buffer group.
    seen_count.fill(0);
    std::uint16_t max_rank = 0;
    for (std::size_t k = i; k < j; ++k) {
      std::uint16_t r = seen_count[pending_[k].lane]++;
      max_rank = std::max(max_rank, static_cast<std::uint16_t>(r + 1));
    }

    for (std::uint16_t rank = 0; rank < max_rank; ++rank) {
      group_.clear();
      seen_count.fill(0);
      for (std::size_t k = i; k < j; ++k) {
        if (seen_count[pending_[k].lane]++ == rank)
          group_.push_back(LaneAccess{pending_[k].addr, pending_[k].bytes});
      }
      if (group_.empty()) continue;
      ++stats_->load_instructions;
      segments_touched(group_, static_cast<std::uint32_t>(cfg_->transaction_bytes),
                       segs_);
      for (std::uint64_t seg : segs_) {
        const std::uint64_t seg_addr =
            seg * static_cast<std::uint64_t>(cfg_->transaction_bytes);
        // Shared-memory node cache (stackless variants): a hit is served
        // at shared-memory latency and never reaches L2 or DRAM.
        if (smem_cache_ != nullptr) {
          SmemNodeCache::Lookup c = smem_cache_->lookup(seg_addr);
          if (c == SmemNodeCache::Lookup::kHit) {
            stats_->note_smem_cache_hit();
            stats_->note_mem_stall(cfg_->c_smem);
            continue;
          }
          if (c == SmemNodeCache::Lookup::kMiss)
            stats_->note_smem_cache_miss();
        }
        bool hit = l2_ != nullptr && l2_->access(seg_addr);
        if (hit) {
          ++stats_->l2_hit_transactions;
          stats_->note_mem_stall(cfg_->c_l2hit);
        } else {
          ++stats_->dram_transactions;
          ++dram;
          stats_->dram_bytes +=
              static_cast<std::uint64_t>(cfg_->transaction_bytes);
        }
      }
    }
    i = j;
  }
  pending_.clear();
  return dram;
}

}  // namespace tt
