#include "util/cli.h"

#include <charconv>
#include <iostream>
#include <stdexcept>

namespace tt {

Cli::Cli(std::string program_description)
    : description_(std::move(program_description)) {}

void Cli::add_flag(const std::string& name, bool default_value,
                   const std::string& help) {
  Option o;
  o.kind = Kind::kFlag;
  o.help = help;
  o.flag_value = default_value;
  options_.emplace(name, std::move(o));
}

void Cli::add_int(const std::string& name, std::int64_t default_value,
                  const std::string& help) {
  Option o;
  o.kind = Kind::kInt;
  o.help = help;
  o.int_value = default_value;
  options_.emplace(name, std::move(o));
}

void Cli::add_double(const std::string& name, double default_value,
                     const std::string& help) {
  Option o;
  o.kind = Kind::kDouble;
  o.help = help;
  o.double_value = default_value;
  options_.emplace(name, std::move(o));
}

void Cli::add_string(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  Option o;
  o.kind = Kind::kString;
  o.help = help;
  o.string_value = default_value;
  options_.emplace(name, std::move(o));
}

void Cli::set_from_string(Option& opt, const std::string& name,
                          const std::string& value) {
  switch (opt.kind) {
    case Kind::kFlag:
      if (value == "true" || value == "1")
        opt.flag_value = true;
      else if (value == "false" || value == "0")
        opt.flag_value = false;
      else
        throw std::invalid_argument("bad boolean for --" + name + ": " +
                                    value);
      break;
    case Kind::kInt: {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), v);
      if (ec != std::errc{} || p != value.data() + value.size())
        throw std::invalid_argument("bad integer for --" + name + ": " + value);
      opt.int_value = v;
      break;
    }
    case Kind::kDouble:
      try {
        std::size_t pos = 0;
        opt.double_value = std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument("trailing");
      } catch (const std::exception&) {
        throw std::invalid_argument("bad double for --" + name + ": " + value);
      }
      break;
    case Kind::kString:
      opt.string_value = value;
      break;
  }
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    }
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("positional arguments not supported: " + arg);
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }
    bool negated = false;
    auto it = options_.find(body);
    if (it == options_.end() && body.rfind("no-", 0) == 0) {
      it = options_.find(body.substr(3));
      negated = true;
    }
    if (it == options_.end()) {
      // Same shape as variant_from_name: name the offender, then list
      // everything that would have parsed (options_ iterates sorted).
      std::string msg = "unknown flag: --" + body + " (valid:";
      bool first = true;
      for (const auto& [name, opt] : options_) {
        msg += first ? " --" : ", --";
        msg += name;
        first = false;
      }
      msg += ")";
      throw std::invalid_argument(msg);
    }
    Option& opt = it->second;
    if (negated) {
      if (opt.kind != Kind::kFlag || has_value)
        throw std::invalid_argument("--no- prefix only valid for flags");
      opt.flag_value = false;
      continue;
    }
    if (opt.kind == Kind::kFlag && !has_value) {
      opt.flag_value = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc)
        throw std::invalid_argument("missing value for --" + body);
      value = argv[++i];
    }
    set_from_string(opt, body, value);
  }
  return true;
}

const Cli::Option& Cli::find(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  if (it == options_.end() || it->second.kind != kind)
    throw std::logic_error("option not registered with this type: " + name);
  return it->second;
}

bool Cli::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag).flag_value;
}
std::int64_t Cli::get_int(const std::string& name) const {
  return find(name, Kind::kInt).int_value;
}
double Cli::get_double(const std::string& name) const {
  return find(name, Kind::kDouble).double_value;
}
const std::string& Cli::get_string(const std::string& name) const {
  return find(name, Kind::kString).string_value;
}

void Cli::print_usage(std::ostream& os) const {
  os << description_ << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    switch (opt.kind) {
      case Kind::kFlag:
        os << " (flag, default " << (opt.flag_value ? "true" : "false") << ")";
        break;
      case Kind::kInt:
        os << "=<int> (default " << opt.int_value << ")";
        break;
      case Kind::kDouble:
        os << "=<float> (default " << opt.double_value << ")";
        break;
      case Kind::kString:
        os << "=<string> (default \"" << opt.string_value << "\")";
        break;
    }
    os << "\n      " << opt.help << "\n";
  }
}

}  // namespace tt
