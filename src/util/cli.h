// Minimal command-line flag parser for bench/example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--flag` /
// `--no-flag`. Unknown flags are an error so typos do not silently run the
// default experiment.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace tt {

class Cli {
 public:
  Cli(std::string program_description);

  // Registration. `help` is shown by --help.
  void add_flag(const std::string& name, bool default_value,
                const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  // Returns false if --help was requested (usage printed to stdout).
  // Throws std::invalid_argument on malformed/unknown flags.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  void print_usage(std::ostream& os) const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Option {
    Kind kind;
    std::string help;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };
  const Option& find(const std::string& name, Kind kind) const;
  void set_from_string(Option& opt, const std::string& name,
                       const std::string& value);

  std::string description_;
  std::map<std::string, Option> options_;
};

}  // namespace tt
