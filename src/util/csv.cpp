#include "util/csv.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace tt {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("empty table header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::write_aligned(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_fixed(double v, int digits) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(digits) << v;
  return ss.str();
}

std::string fmt_sci(double v, int digits) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(digits) << v;
  return ss.str();
}

std::string fmt_percent(double ratio_minus_one) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(0) << ratio_minus_one * 100.0 << '%';
  return ss.str();
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace tt
