// Wall-clock timing for the CPU-side (real) measurements.
#pragma once

#include <chrono>

namespace tt {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }
  [[nodiscard]] double elapsed_s() const { return elapsed_ms() / 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tt
