#include "util/rng.h"

#include <cmath>

namespace tt {

double Pcg32::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is offset away from zero so log() stays finite.
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  double u2 = next_double();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace tt
