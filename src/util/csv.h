// CSV and aligned-table emission for the benchmark harnesses. Every bench
// binary prints a human-readable table (mirroring the paper's layout) and
// can optionally dump machine-readable CSV for plotting.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace tt {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Cells are stringified by the caller; add_row checks arity.
  void add_row(std::vector<std::string> cells);

  void write_aligned(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers shared by harnesses.
std::string fmt_fixed(double v, int digits);
std::string fmt_sci(double v, int digits);
// "12.3%" style with sign, as the paper's improvement column.
std::string fmt_percent(double ratio_minus_one);

std::string csv_escape(const std::string& s);

}  // namespace tt
