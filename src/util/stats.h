// Small descriptive-statistics helpers used by the benchmark harnesses
// (Table 2 reports mean and standard deviation of per-warp work expansion)
// and by generator tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tt {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
};

// One-pass accumulator (Welford) -- numerically stable for long runs.
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] Summary summary() const;
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  double variance() const;
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

Summary summarize(std::span<const double> xs);

// p in [0,100]; linear interpolation between order statistics.
double percentile(std::vector<double> xs, double p);

}  // namespace tt
