#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tt {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  std::size_t n = n_ + other.n_;
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
}

Summary RunningStats::summary() const {
  Summary s;
  s.count = n_;
  s.mean = mean_;
  s.stddev = std::sqrt(variance());
  s.min = min_;
  s.max = max_;
  return s;
}

Summary summarize(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.summary();
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  std::sort(xs.begin(), xs.end());
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= xs.size()) return xs.back();
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

}  // namespace tt
