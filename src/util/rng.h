// Seeded, reproducible pseudo-random number generation.
//
// All stochastic pieces of the library (input generators, samplers,
// property tests) draw from Pcg32 so every experiment is replayable from a
// single 64-bit seed. PCG-XSH-RR 64/32 (O'Neill 2014): small state, good
// statistical quality, cheap enough to sit inside generator inner loops.
#pragma once

#include <cstdint>
#include <limits>

namespace tt {

class Pcg32 {
 public:
  // Streams with distinct `seq` values are independent even for equal seeds.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t seq = 0xda3e39cb94b95bdbULL) {
    state_ = 0U;
    inc_ = (seq << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  // Uniform in [0, bound) without modulo bias (Lemire rejection).
  std::uint32_t next_below(std::uint32_t bound) {
    std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      std::uint32_t t = (0u - bound) % bound;
      while (lo < t) {
        m = static_cast<std::uint64_t>(next_u32()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  float next_float() {
    return static_cast<float>(next_u32() >> 8) * 0x1.0p-24f;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Standard normal via Box-Muller (cached second variate).
  double normal();
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  // std::uniform_random_bit_generator interface, so Pcg32 plugs into
  // std::shuffle and friends.
  using result_type = std::uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u32(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace tt
