// Classic statically-installed ropes -- the prior-work technique (Popov et
// al. [21], Hapala et al. [6]; paper section 3, Figure 2) that autoropes
// generalizes. A preprocessing pass installs, at every node, a pointer to
// the next *new* node a traversal visits when the node's subtree is
// skipped. Traversal then needs no stack at all: descending moves to the
// first child, truncating follows the rope.
//
// The limitations the paper calls out are structural here too:
//   * ropes encode ONE canonical order, so only unguided (single-call-set)
//     traversals qualify;
//   * rope-stack arguments disappear -- anything the recursion passed down
//     must be recomputable from the node itself (RopeCompatibleKernel
//     requires `uarg_at(node)`);
//   * the preprocessing pass touches the whole tree before the first
//     traversal (bench/ablation_ropes.cpp measures that cost).
//
// With this library's left-biased DFS linearization the canonical
// traversal is simply increasing node ids: descend == n+1, and
// rope[n] == n + subtree_size(n).
#pragma once

#include <concepts>
#include <cstdint>
#include <string>
#include <vector>

#include "core/traversal_kernel.h"
#include "core/variant.h"
#include "spatial/linear_tree.h"

namespace tt {

struct StaticRopes {
  // rope[n]: node to visit when skipping n's subtree; kEndOfTraversal
  // when the traversal is finished.
  static constexpr NodeId kEndOfTraversal = -1;
  std::vector<NodeId> rope;
  double install_ms = 0;  // preprocessing cost of the install pass
};

// Preprocessing pass (prior work's tree rewrite). O(n). Throws
// std::invalid_argument unless the tree is in left-biased DFS layout
// (descend == n+1 is what the stackless walkers rely on).
StaticRopes install_ropes(const LinearTree& tree);

// True iff every node's first present child is n+1 (the left-biased DFS
// linearization every spatial builder emits; BFS relayouts are not).
[[nodiscard]] bool tree_is_dfs_layout(const LinearTree& tree);

// Kernel-constructor variant: returns empty ropes (rope.size() == 0)
// instead of throwing when the tree is not DFS-laid-out, so kernels over
// relayouted trees still construct and run the stack-based variants; the
// stackless launch paths reject empty ropes at dispatch.
StaticRopes try_install_ropes(const LinearTree& tree);

// Kernels eligible for rope-based traversal: unguided and able to
// recompute their uniform argument at any node (no stack to carry it).
template <class K>
concept RopeCompatibleKernel =
    TraversalKernel<K> && (K::kNumCallSets == 1) &&
    !kernel_has_lane_arg<K> &&
    requires(const K k, NodeId n) {
      { k.uarg_at(n) } -> std::same_as<typename K::UArg>;
    };

// Kernels eligible for the stackless Variant family: rope-compatible AND
// carrying their own installed ropes plus the list of node buffers the
// shared-memory cache may front (simt/smem_cache.h caches the low-DFS-id
// prefix of exactly these buffers).
template <class K>
concept StacklessCompatibleKernel =
    RopeCompatibleKernel<K> &&
    requires(const K k) {
      { k.ropes() } -> std::convertible_to<const StaticRopes&>;
      { k.node_buffers() } -> std::convertible_to<std::vector<std::int32_t>>;
    };

// index_walk (Wald-style arithmetic escape) additionally needs a binary
// left-biased DFS tree: the escape target is derivable by walking sibling
// extents, which the policy only does for fanout 2 (the spatial kd-trees).
template <class K>
inline constexpr bool kernel_index_walk_eligible =
    StacklessCompatibleKernel<K> && (K::kFanout == 2);

// Runtime eligibility of one (kernel type, variant) pair, usable from
// type-erased contexts (harness skip messages, fuzzer gating).
template <class K>
[[nodiscard]] constexpr bool kernel_variant_eligible(Variant v) {
  if (!variant_is_stackless(v)) return true;
  if constexpr (!StacklessCompatibleKernel<K>) {
    return false;
  } else {
    return v != Variant::kIndexWalk || kernel_index_walk_eligible<K>;
  }
}

// The one canonical spelling of every (kernel, variant) ineligibility.
// Every surface that reports the condition -- run_gpu_sim's throw, the
// launch API's throw, the harness's "skipped:" rows -- renders this string
// with its own prefix ("run_gpu_sim: " / "launch: " / "skipped: "), so the
// same failure reads identically everywhere (pinned by
// tests/core/static_ropes_test.cpp). Returns "" when the pair can run.
// Takes an instance because empty-rope detection (a BFS relayout stripped
// the ropes) is a runtime property, not a type-level one.
template <class K>
[[nodiscard]] std::string kernel_variant_ineligible_reason(const K& k,
                                                           Variant v) {
  if (!variant_is_stackless(v)) return {};
  if constexpr (!StacklessCompatibleKernel<K>) {
    (void)k;
    return std::string("variant ") + variant_name(v) +
           " requires a stackless-compatible (unguided, rope-carrying) "
           "kernel; " +
           kernel_display_name<K>() + " is ineligible";
  } else {
    if (v == Variant::kIndexWalk && !kernel_index_walk_eligible<K>)
      return std::string(
                 "variant index_walk requires a fanout-2 tree; kernel ") +
             kernel_display_name<K>() + " is ineligible";
    if (k.ropes().rope.empty())
      return std::string("variant ") + variant_name(v) +
             " needs ropes installed over a left-biased DFS tree; kernel " +
             kernel_display_name<K>() + " carries none (non-DFS relayout?)";
    return {};
  }
}

}  // namespace tt
