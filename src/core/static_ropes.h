// Classic statically-installed ropes -- the prior-work technique (Popov et
// al. [21], Hapala et al. [6]; paper section 3, Figure 2) that autoropes
// generalizes. A preprocessing pass installs, at every node, a pointer to
// the next *new* node a traversal visits when the node's subtree is
// skipped. Traversal then needs no stack at all: descending moves to the
// first child, truncating follows the rope.
//
// The limitations the paper calls out are structural here too:
//   * ropes encode ONE canonical order, so only unguided (single-call-set)
//     traversals qualify;
//   * rope-stack arguments disappear -- anything the recursion passed down
//     must be recomputable from the node itself (RopeCompatibleKernel
//     requires `uarg_at(node)`);
//   * the preprocessing pass touches the whole tree before the first
//     traversal (bench/ablation_ropes.cpp measures that cost).
//
// With this library's left-biased DFS linearization the canonical
// traversal is simply increasing node ids: descend == n+1, and
// rope[n] == n + subtree_size(n).
#pragma once

#include <concepts>
#include <cstdint>
#include <vector>

#include "core/traversal_kernel.h"
#include "spatial/linear_tree.h"

namespace tt {

struct StaticRopes {
  // rope[n]: node to visit when skipping n's subtree; kEndOfTraversal
  // when the traversal is finished.
  static constexpr NodeId kEndOfTraversal = -1;
  std::vector<NodeId> rope;
  double install_ms = 0;  // preprocessing cost of the install pass
};

// Preprocessing pass (prior work's tree rewrite). O(n).
StaticRopes install_ropes(const LinearTree& tree);

// Kernels eligible for rope-based traversal: unguided and able to
// recompute their uniform argument at any node (no stack to carry it).
template <class K>
concept RopeCompatibleKernel =
    TraversalKernel<K> && (K::kNumCallSets == 1) &&
    !kernel_has_lane_arg<K> &&
    requires(const K k, NodeId n) {
      { k.uarg_at(n) } -> std::same_as<typename K::UArg>;
    };

}  // namespace tt
