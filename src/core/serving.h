// Admission--dispatch layer over the type-erased launch API: the serving
// redesign of the batching surface (ROADMAP "sustained production
// traffic"; the metalfpga scheduler-VM sketch of "batch phases into one
// launch, minimize sync points" at the workload level).
//
// The one-shot run_gpu_batch(specs) entry point modelled a world where
// every query exists up front. Serving does not: queries arrive over
// time, and the interesting measurements are throughput, per-query
// latency percentiles and queue telemetry under an arrival process. The
// API here splits the old free function into the three pieces that world
// needs (DESIGN.md section 3.3):
//
//   run_launch_pool(specs, cfg)
//     The dispatch layer: the (launch, slot) concurrent-residency pool
//     that used to be run_gpu_batch's body. Resolves auto_select per
//     launch, simulates every slot, returns per-launch isolated
//     LaunchResults plus their shapes. Pure execution -- no policy, no
//     schedule accounting, no timing model.
//
//   ServingSession
//     The admission layer: a session object owning a ring-buffer
//     admission queue. submit(QuerySet, arrival_ms) enqueues work in
//     arrival order; the session drains on a configurable cadence
//     (DrainPolicy: max-batch-size / max-delay), dispatches each drained
//     wave through BatchScheduler + run_launch_pool, and derives
//     per-query completion times from the simulated cost model:
//     queueing delay (dispatch - arrival, including waiting for the
//     device to go idle) + the wave's amortized transfer + the launch's
//     modelled compute. Identical resubmissions of a (kernel, mode) pair
//     replay the first execution's measurements -- exact, because
//     batching is results-neutral by construction -- which is what makes
//     million-query traces affordable.
//
//   run_gpu_batch(specs, cfg, policy)
//     The legacy closed-batch shape, now a thin adapter: one session,
//     everything submitted at t=0, drained as a single wave. Byte-
//     identical to the pre-session implementation (pinned by
//     tests/core/batch_scheduler_test.cpp and the CI determinism job).
//
// All times on this layer are *modelled* milliseconds (cost model +
// TransferModel), so every serving number is deterministic for a given
// seed and byte-identical across OMP_NUM_THREADS settings.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "core/batch_scheduler.h"
#include "simt/device_config.h"
#include "simt/transfer_model.h"
#include "util/stats.h"

namespace tt {

namespace obs {
class ChromeTraceCollector;  // obs/chrome_trace.h
}

// ---------------------------------------------------------------------
// Dispatch layer: the concurrent-residency slot pool.
// ---------------------------------------------------------------------

// Result of simulating a set of LaunchSpecs as one device residency:
// per-launch isolated measurements (LaunchResult order == spec order)
// plus each launch's geometry, which the caller feeds to BatchScheduler
// for schedule accounting.
struct LaunchPool {
  std::vector<LaunchResult> launches;
  std::vector<LaunchGeometry> shapes;
  double sim_wall_ms = 0;  // host cost of the simulation (diagnostic)
};

// Simulate every spec's slots in one OpenMP pool. auto_select modes are
// resolved per launch (sampling charged to that launch's cost model);
// overflow reports through LaunchResult::error without poisoning sibling
// launches. Throws std::invalid_argument on a spec missing its kernel or
// space, or on auto_select with profile_samples == 0.
[[nodiscard]] LaunchPool run_launch_pool(std::span<const LaunchSpec> specs,
                                         const DeviceConfig& cfg);

// ---------------------------------------------------------------------
// Admission layer.
// ---------------------------------------------------------------------

// One unit of admitted work: a prepared kernel over its own address
// space, plus the bytes it ships across the bus (accounted per drained
// wave: one amortized round trip for the wave, vs one per query solo).
struct QuerySet {
  LaunchSpec spec;
  std::uint64_t upload_bytes = 0;
  std::uint64_t download_bytes = 0;
};

// When a pending wave dispatches: as soon as `max_batch` queries are
// queued, or when the oldest pending query has waited `max_delay_ms` of
// modelled time -- whichever comes first. The knob IS the serving
// trade-off: a longer delay forms bigger waves (fewer launch overheads,
// better transfer amortization) at the price of queueing latency.
struct DrainPolicy {
  std::size_t max_batch = 8;
  double max_delay_ms = 0.25;
};

struct ServingConfig {
  DeviceConfig device;
  // Simulated device count. Each drained wave dispatches to the
  // least-loaded device (earliest free, ties to the lowest index), so
  // open-loop throughput scales with the group size while per-wave
  // batching semantics stay unchanged. 1 keeps the single-device model
  // byte-for-byte.
  std::size_t devices = 1;
  // Pipelined wave uploads: when > 0, each drained wave's copy-in is
  // strip-mined into ceil(wave points / shard_chunk) chunks overlapped
  // with the wave's compute (simt/transfer_model.h pipelined mode), and
  // DrainRecord::transfer_ms records only the *exposed* portion. 0 keeps
  // the synchronous single-shot round trip byte-for-byte.
  std::size_t shard_chunk = 0;
  BatchPolicy policy = BatchPolicy::kRoundRobin;
  DrainPolicy drain;
  TransferModel transfer;
  // Ring-buffer admission queue capacity; a submit that finds the ring
  // full is dropped (counted, never silently).
  std::size_t queue_capacity = 4096;
  // Replay cached measurements for identical (kernel, mode) resubmissions
  // instead of re-simulating. Exact by the results-neutrality contract;
  // queries carrying their own trace/profile sinks always execute.
  bool reuse_identical = true;
  // Keep the drained wave's full BatchRun (results bytes included) for
  // take_closed_run() -- the closed-batch adapter path. Serving traffic
  // leaves this off so million-query runs keep only scalar telemetry.
  bool keep_batch_results = false;
  // When set, each drained wave's executed launches open Chrome-trace
  // tracks named "drain<i>/<kernel>", so admission waves are visible as
  // per-drain process tracks in Perfetto.
  obs::ChromeTraceCollector* chrome = nullptr;
  std::size_t max_drain_tracks = 32;  // cap on traced drains

  // The closed-batch shape: everything admitted up front, one wave.
  [[nodiscard]] static ServingConfig closed_batch(const DeviceConfig& device,
                                                  BatchPolicy policy,
                                                  std::size_t n_specs);
};

// Latency distribution over modelled per-query times.
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

// percentile() over one sorted pass; linear interpolation (util/stats.h).
[[nodiscard]] LatencySummary summarize_latency(std::vector<double> xs);

// One drained wave's accounting.
struct DrainRecord {
  double trigger_ms = 0;   // when the size/delay policy fired
  double dispatch_ms = 0;  // max(trigger, chosen device became idle)
  std::size_t device = 0;  // least-loaded device the wave dispatched to
  std::size_t n_queries = 0;
  std::size_t queue_depth_before = 0;  // pending count when fired
  std::size_t cold_launches = 0;       // executed (vs cache-replayed)
  // One amortized round trip for the wave; under pipelined uploads
  // (ServingConfig::shard_chunk > 0) only the exposed, non-overlapped
  // portion -- service_ms = transfer_ms + compute_ms either way.
  double transfer_ms = 0;
  double solo_transfer_ms = 0;  // what the same queries pay one-by-one
  double compute_ms = 0;        // sum of the wave's modelled kernel times
  double service_ms = 0;        // transfer + compute (device busy time)
  // BatchSchedule accounting over the wave under ServingConfig::policy.
  std::size_t residency = 0;
  std::size_t total_chunks = 0;
  std::size_t rounds = 0;
  std::size_t switches = 0;
};

struct ServingReport {
  std::size_t devices = 1;     // simulated devices serving the session
  std::size_t shard_chunk = 0;  // pipelined upload chunk (0 = single-shot)
  std::size_t submitted = 0;
  std::size_t completed = 0;  // admitted and served (failures included)
  std::size_t dropped = 0;    // ring buffer full at submit
  std::size_t failed = 0;     // served but errored (e.g. stack overflow)
  double first_arrival_ms = 0;
  double last_completion_ms = 0;
  double busy_ms = 0;  // total device service time
  std::size_t queue_depth_max = 0;
  Summary queue_depth;  // depth observed after each admit
  LatencySummary latency;      // completion - arrival
  LatencySummary queue_delay;  // dispatch - arrival
  std::vector<DrainRecord> drains;

  [[nodiscard]] double span_ms() const {
    return last_completion_ms > first_arrival_ms
               ? last_completion_ms - first_arrival_ms
               : 0;
  }
  [[nodiscard]] double throughput_qps() const {
    return span_ms() > 0 ? static_cast<double>(completed) / span_ms() * 1e3
                         : 0;
  }
  [[nodiscard]] double occupancy() const {
    // Busy time over the group's total capacity (span x devices).
    return span_ms() > 0
               ? busy_ms / (span_ms() * static_cast<double>(devices))
               : 0;
  }
  [[nodiscard]] double amortized_transfer_ms() const;
  [[nodiscard]] double summed_solo_transfer_ms() const;
};

// The session object. Lifecycle: submit(...) in non-decreasing arrival
// order, then flush() to drain the tail, then report(). Virtual time
// advances with the submitted arrival stamps; drains fire lazily as
// submissions (or flush) move time past their trigger. A wave that is
// size-triggered admits exactly the queries that formed it -- later
// arrivals wait for the next wave even if the device is still busy.
class ServingSession {
 public:
  explicit ServingSession(ServingConfig cfg);

  // Enqueue one query set at `arrival_ms` (modelled). Returns false when
  // the ring buffer is full and the query was dropped. Throws
  // std::invalid_argument on a missing kernel/space or on an arrival
  // stamp earlier than the previous submit.
  bool submit(QuerySet q, double arrival_ms);

  // Drain everything still pending (each residual wave fires at its
  // max-delay deadline, as if the timer expired after the last arrival).
  void flush();

  [[nodiscard]] std::size_t pending() const { return count_; }

  // Aggregate telemetry + percentiles over everything served so far.
  [[nodiscard]] ServingReport report() const;

  // Per-query modelled times, in completion order (tests; also the raw
  // series behind report()'s percentiles).
  [[nodiscard]] const std::vector<double>& latencies_ms() const {
    return latencies_;
  }
  [[nodiscard]] const std::vector<double>& queue_delays_ms() const {
    return queue_delays_;
  }

  // Closed-batch adapter support: the last drained wave's full BatchRun.
  // Only populated under ServingConfig::keep_batch_results; throws
  // std::logic_error otherwise.
  [[nodiscard]] BatchRun take_closed_run();

 private:
  struct Pending {
    QuerySet q;
    double arrival_ms = 0;
  };
  // Replayed measurement for an identical (kernel, mode) resubmission.
  // Holds the handle alive: the cache is keyed by the KernelHandle's
  // address, which is only a sound identity while that object exists --
  // without the keepalive, a recycled allocation could alias a dead
  // handle's key and replay the wrong kernel's measurements.
  struct CachedLaunch {
    std::shared_ptr<KernelHandle> keepalive;
    LaunchGeometry shape;
    Variant variant = Variant::kAutoNolockstep;
    double total_ms = 0;
    bool ok = true;
  };
  using CacheKey =
      std::tuple<const KernelHandle*, bool, bool, bool, bool, bool,
                 std::size_t, std::size_t, std::uint64_t>;
  static CacheKey cache_key(const LaunchSpec& spec);

  void advance_to(double now_ms);
  void fire(double trigger_ms);
  [[nodiscard]] const Pending& front() const { return ring_[head_]; }
  Pending pop_front();

  ServingConfig cfg_;
  std::vector<Pending> ring_;  // fixed-capacity ring buffer
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  double last_arrival_ms_ = 0;
  std::vector<double> device_free_ms_;  // per-device modelled idle time
  bool any_arrival_ = false;

  std::map<CacheKey, CachedLaunch> cache_;

  // Telemetry accumulators (scalars + per-drain records only, so memory
  // stays O(queries served) * 16 bytes even for million-query traces).
  std::size_t submitted_ = 0;
  std::size_t dropped_ = 0;
  std::size_t failed_ = 0;
  double first_arrival_ms_ = 0;
  double last_completion_ms_ = 0;
  double busy_ms_ = 0;
  std::size_t queue_depth_max_ = 0;
  RunningStats queue_depth_stats_;
  std::vector<double> latencies_;
  std::vector<double> queue_delays_;
  std::vector<DrainRecord> drains_;
  std::optional<BatchRun> closed_run_;
};

// ---------------------------------------------------------------------
// Open-loop arrival traces (modelled milliseconds, Pcg32-deterministic).
// ---------------------------------------------------------------------

// Poisson process: exponential inter-arrivals at `rate_qps` (queries per
// modelled second). Throws std::invalid_argument on rate_qps <= 0.
[[nodiscard]] std::vector<double> poisson_trace(std::size_t n,
                                                double rate_qps,
                                                std::uint64_t seed);

// On-off modulated Poisson: arrivals at `on_rate_qps` during `on_ms`
// windows, silence for `off_ms` between them (burst traffic). Throws
// std::invalid_argument on a non-positive rate or window.
[[nodiscard]] std::vector<double> bursty_trace(std::size_t n,
                                               double on_rate_qps,
                                               double on_ms, double off_ms,
                                               std::uint64_t seed);

// ---------------------------------------------------------------------
// Report-facing bundle (obs/run_report.h schema-v5 "serving" block).
// ---------------------------------------------------------------------

// One point of the drain-cadence sweep: the batching-delay vs transfer-
// amortization trade-off at a fixed max_delay_ms.
struct ServingSweepPoint {
  double max_delay_ms = 0;
  std::size_t max_batch = 0;
  std::size_t drains = 0;
  double mean_batch = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double throughput_qps = 0;
  double transfer_saved_ms = 0;  // summed-solo minus amortized transfer
};

// Everything the RunReport "serving" block serializes: the scenario, the
// headline session's report, and the optional cadence sweep.
struct ServingRunSummary {
  std::string arrivals;  // "poisson" | "bursty"
  double rate_qps = 0;
  std::size_t n_queries = 0;
  std::size_t devices = 1;
  std::size_t shard_chunk = 0;
  DrainPolicy drain;
  BatchPolicy policy = BatchPolicy::kRoundRobin;
  Variant variant = Variant::kAutoSelect;
  std::size_t queue_capacity = 0;
  TransferModel transfer;
  ServingReport report;
  std::vector<ServingSweepPoint> sweep;
};

}  // namespace tt
