#include "core/profiler.h"

#include <algorithm>

namespace tt {

double traversal_jaccard(std::vector<NodeId> a, std::vector<NodeId> b) {
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  if (a.empty() && b.empty()) return 1.0;
  std::size_t inter = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  std::size_t uni = a.size() + b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace tt
